package vc2m_test

import (
	"errors"
	"testing"

	"vc2m"
)

// TestCrossPlatformPipeline runs the full user pipeline — generate,
// allocate, validate, simulate — across every platform, distribution and
// analysis mode at a moderate load, asserting the end-to-end guarantee
// (schedulable implies zero misses) in each combination.
func TestCrossPlatformPipeline(t *testing.T) {
	platforms := []vc2m.Platform{vc2m.PlatformA, vc2m.PlatformB, vc2m.PlatformC}
	dists := []string{"uniform", "light", "medium", "heavy"}
	modes := []vc2m.Mode{vc2m.Flattening, vc2m.OverheadFree, vc2m.Auto}

	checked := 0
	for pi, plat := range platforms {
		for di, dist := range dists {
			sys, err := vc2m.GenerateWorkload(vc2m.WorkloadConfig{
				Platform:      plat,
				TargetRefUtil: 0.9,
				Distribution:  dist,
				Seed:          int64(100*pi + di),
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", plat.Name, dist, err)
			}
			for _, mode := range modes {
				a, err := vc2m.Allocate(sys, vc2m.Options{Mode: mode, Seed: 7})
				if errors.Is(err, vc2m.ErrNotSchedulable) {
					continue
				}
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", plat.Name, dist, mode, err)
				}
				if err := a.Validate(sys.Tasks()); err != nil {
					t.Errorf("%s/%s/%v: invalid allocation: %v", plat.Name, dist, mode, err)
					continue
				}
				res, err := vc2m.Simulate(a, 2300, vc2m.SimOptions{})
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", plat.Name, dist, mode, err)
				}
				if res.Missed != 0 {
					t.Errorf("%s/%s/%v: %d deadline misses on a schedulable allocation",
						plat.Name, dist, mode, res.Missed)
				}
				checked++
			}
		}
	}
	if checked < 12 {
		t.Fatalf("only %d pipeline combinations were schedulable; expected most of %d",
			checked, len(platforms)*len(dists)*len(modes))
	}
}

// TestPipelineWithRegulationAndOverheads exercises the optional simulator
// features together on one allocation: bandwidth regulation, context-switch
// cost with matching analysis-side inflation, and response collection.
func TestPipelineWithRegulationAndOverheads(t *testing.T) {
	sys, err := vc2m.GenerateWorkload(vc2m.WorkloadConfig{
		Platform:      vc2m.PlatformA,
		TargetRefUtil: 0.7,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := vc2m.Allocate(sys, vc2m.Options{
		Mode:      vc2m.Flattening,
		Overheads: vc2m.Overheads{VCPUPreemption: 0.5},
	})
	if errors.Is(err, vc2m.ErrNotSchedulable) {
		t.Skip("unschedulable with inflation at this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	memRate := map[string]float64{}
	budgets := make([]int64, len(a.Cores))
	for i := range budgets {
		budgets[i] = 100000 // generous: regulation armed but not binding
	}
	for _, task := range sys.Tasks() {
		memRate[task.ID] = 200
	}
	res, err := vc2m.Simulate(a, 2300, vc2m.SimOptions{
		RegulationPeriodMs: 1,
		BWBudgets:          budgets,
		MemRate:            memRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 {
		t.Errorf("%d misses with generous budgets and inflated analysis", res.Missed)
	}
	if res.BWReplenishments < 2200 {
		t.Errorf("regulator ticked %d times, want ~2300", res.BWReplenishments)
	}
}
