// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact at a reduced scale
// (so `go test -bench=.` finishes in minutes) and reports the headline
// quantities as custom metrics; the cmd/ tools run the full paper-scale
// sweeps. EXPERIMENTS.md records paper-versus-measured values.
package vc2m_test

import (
	"testing"

	"vc2m/internal/experiment"
	"vc2m/internal/interference"
	"vc2m/internal/membus"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
	"vc2m/internal/workload"
)

// --- Table 1: memory bandwidth regulator's overhead ---------------------

// BenchmarkTable1Throttle measures the BW enforcer path: the cost of the
// budget-exhausting request that marks the core throttled (Table 1,
// "Throttle"). Each iteration performs one throttling request; the
// amortized per-4-iterations replenish that re-arms the cores is part of
// the loop (it is the cheaper of the two paths and benchmarked separately
// below).
func BenchmarkTable1Throttle(b *testing.B) {
	reg, err := membus.New(membus.Config{
		Period:  timeunit.FromMillis(1),
		Budgets: []int64{1, 1, 1, 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Request(i % 4) // budget 1: every granted request throttles
		if i%4 == 3 {
			reg.Replenish()
		}
	}
}

// BenchmarkTable1Replenish measures the BW refiller: one full per-period
// budget replenishment across all cores (Table 1, "Memory BW budget
// replenishment").
func BenchmarkTable1Replenish(b *testing.B) {
	reg, err := membus.New(membus.Config{
		Period:  timeunit.FromMillis(1),
		Budgets: []int64{500, 500, 500, 500},
	})
	if err != nil {
		b.Fatal(err)
	}
	reg.OnReplenish = func(core int, wasThrottled bool) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 4; c++ {
			reg.RequestN(c, 500) // exhaust so the refill does full work
		}
		reg.Replenish()
	}
}

// BenchmarkTable1System runs the full regulated hypervisor simulation and
// reports the measured min/avg/max of both Table 1 handlers in
// microseconds, the form the paper's table uses.
func BenchmarkTable1System(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOverhead(experiment.OverheadConfig{
			VCPUs: 24, HorizonMs: 500, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throttle.Mean(), "us/throttle")
		b.ReportMetric(res.BWReplenish.Mean(), "us/bw-replenish")
	}
}

// --- Table 2: scheduler's overhead at 24 and 96 VCPUs --------------------

func benchTable2(b *testing.B, vcpus int) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOverhead(experiment.OverheadConfig{
			VCPUs: vcpus, HorizonMs: 500, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BudgetReplenish.Mean(), "us/budget-replenish")
		b.ReportMetric(res.Scheduling.Mean(), "us/schedule")
		b.ReportMetric(res.ContextSwitch.Mean(), "us/ctx-switch")
	}
}

// BenchmarkTable2VCPUs24 reproduces Table 2's 24-VCPU column group.
func BenchmarkTable2VCPUs24(b *testing.B) { benchTable2(b, 24) }

// BenchmarkTable2VCPUs96 reproduces Table 2's 96-VCPU column group; the
// paper's observation is that the per-event cost grows only slowly from
// the 24-VCPU configuration.
func BenchmarkTable2VCPUs96(b *testing.B) { benchTable2(b, 96) }

// --- Section 3.3: impact of resource isolation on WCET -------------------

// BenchmarkSec33Isolation reproduces the WCET-isolation study for a
// memory-bound benchmark: it reports the slowdown from unregulated
// co-running and the (smaller) slowdown under vC2M isolation.
func BenchmarkSec33Isolation(b *testing.B) {
	cfg := interference.DefaultConfig()
	cfg.OpsPerTask = 50000
	for i := 0; i < b.N; i++ {
		row, err := interference.Study(cfg, "canneal", 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.SharedSlowdown(), "x-shared")
		b.ReportMetric(row.IsolatedSlowdown(), "x-vc2m")
	}
}

// --- Figures 2 and 3: schedulability sweeps ------------------------------

// benchSched runs a reduced schedulability sweep and reports the knee
// utilization (the largest utilization with 100% schedulable tasksets) of
// the best vC2M solution and of the baseline — the two numbers behind the
// paper's "2.6x workload increase" headline.
func benchSched(b *testing.B, plat model.Platform, dist workload.Distribution) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSchedulability(experiment.SchedConfig{
			Platform:         plat,
			Dist:             dist,
			UtilMin:          0.2,
			UtilMax:          2.0,
			UtilStep:         0.2,
			TasksetsPerPoint: 5,
			Seed:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Knee("Heuristic (flattening)"), "knee-vc2m")
		b.ReportMetric(res.Knee("Baseline (existing CSA)"), "knee-baseline")
		b.ReportMetric(res.Knee("Heuristic (overhead-free CSA)"), "knee-overhead-free")
	}
}

// BenchmarkFig2aPlatformA reproduces Figure 2(a): Platform A (4 cores, 20
// partitions), uniform utilization distribution.
func BenchmarkFig2aPlatformA(b *testing.B) {
	benchSched(b, model.PlatformA, workload.Uniform)
}

// BenchmarkFig2bPlatformB reproduces Figure 2(b): Platform B (6 cores, 20
// partitions).
func BenchmarkFig2bPlatformB(b *testing.B) {
	benchSched(b, model.PlatformB, workload.Uniform)
}

// BenchmarkFig2cPlatformC reproduces Figure 2(c): Platform C (4 cores, 12
// partitions).
func BenchmarkFig2cPlatformC(b *testing.B) {
	benchSched(b, model.PlatformC, workload.Uniform)
}

// BenchmarkFig3aBimodalLight reproduces Figure 3(a): Platform A, bimodal
// light distribution.
func BenchmarkFig3aBimodalLight(b *testing.B) {
	benchSched(b, model.PlatformA, workload.BimodalLight)
}

// BenchmarkFig3bBimodalMedium reproduces Figure 3(b): bimodal medium.
func BenchmarkFig3bBimodalMedium(b *testing.B) {
	benchSched(b, model.PlatformA, workload.BimodalMedium)
}

// BenchmarkFig3cBimodalHeavy reproduces Figure 3(c): bimodal heavy.
func BenchmarkFig3cBimodalHeavy(b *testing.B) {
	benchSched(b, model.PlatformA, workload.BimodalHeavy)
}

// --- Figure 4: analysis running time -------------------------------------

// BenchmarkFig4RunningTime reproduces Figure 4: the mean per-taskset
// analysis time of the overhead-free heuristic versus the existing-CSA
// heuristic at high utilization. The paper's observation — the
// overhead-free analysis is roughly an order of magnitude faster — shows
// up as the ratio of the two reported metrics.
func BenchmarkFig4RunningTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSchedulability(experiment.SchedConfig{
			Platform:         model.PlatformA,
			Dist:             workload.Uniform,
			UtilMin:          1.5,
			UtilMax:          1.5,
			UtilStep:         1,
			TasksetsPerPoint: 10,
			Seed:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var of, ex float64
		for _, s := range res.Series {
			switch s.Solution {
			case "Heuristic (overhead-free CSA)":
				of = s.Points[0].AvgSeconds
			case "Heuristic (existing CSA)":
				ex = s.Points[0].AvgSeconds
			}
		}
		b.ReportMetric(of*1000, "ms/overhead-free")
		b.ReportMetric(ex*1000, "ms/existing-csa")
	}
}
