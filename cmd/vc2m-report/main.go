// vc2m-report works with the unified run reports produced by the other
// vC2M tools' -report-out flag (see package internal/report): it renders
// the JSON document as a self-contained HTML page, diffs two documents
// (identically-seeded runs must diff clean), and reconstructs the decision
// trail for a task, VCPU, core or sweep case — answering "why was this
// placed here?" and "which resource was binding when this was rejected?".
//
// Usage:
//
//	vc2m-report generate -in run.json [-html run.html]
//	vc2m-report diff a.json b.json
//	vc2m-report explain -in run.json <task|vcpu|core|case>
package main

import (
	"flag"
	"fmt"
	"os"

	"vc2m/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "generate":
		cmdGenerate(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "vc2m-report: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `vc2m-report <subcommand>:
  generate -in run.json [-html run.html]   validate the report and render HTML
  diff <a.json> <b.json>                   compare two reports (exit 0 iff identical)
  explain -in run.json <subject>           reconstruct a subject's decision trail
`)
}

// cmdGenerate validates the document and renders the HTML page. With no
// -html flag the HTML goes to stdout, so the subcommand doubles as a
// validator (`vc2m-report generate -in run.json >/dev/null`).
func cmdGenerate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	in := fs.String("in", "", "input report JSON (required)")
	htmlOut := fs.String("html", "", "write the HTML rendering here (default stdout)")
	parseInto(fs, args)
	if *in == "" {
		fatal(fmt.Errorf("generate: -in is required"))
	}
	doc, err := report.Load(*in)
	if err != nil {
		fatal(err)
	}
	page := report.RenderHTML(doc)
	if *htmlOut == "" {
		fmt.Print(page)
		return
	}
	if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d decision(s), kind %s)\n", *htmlOut, len(doc.Decisions), doc.Kind)
}

// cmdDiff exits 0 iff the two documents are identical — the acceptance
// check for reproducibility of identically-seeded runs.
func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	parseInto(fs, args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff: need exactly two report files, got %d", fs.NArg()))
	}
	a, err := report.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := report.Load(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	diffs := report.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Printf("reports identical (%d decision(s))\n", len(a.Decisions))
		return
	}
	fmt.Printf("%d difference(s):\n", len(diffs))
	for _, d := range diffs {
		fmt.Println("  " + d)
	}
	os.Exit(1)
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	in := fs.String("in", "", "input report JSON (required)")
	parseInto(fs, args)
	if *in == "" {
		fatal(fmt.Errorf("explain: -in is required"))
	}
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("explain: need exactly one subject (a task, VCPU, \"core N\" or sweep case), got %d args", fs.NArg()))
	}
	doc, err := report.Load(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Explain(doc, fs.Arg(0)))
}

// parseInto parses args, tolerating flags placed after positional
// arguments (e.g. `explain run.json -in run.json` is still an error, but
// `explain -in run.json t3` works as expected).
func parseInto(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vc2m-report:", err)
	os.Exit(1)
}
