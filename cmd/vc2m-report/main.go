// vc2m-report works with the unified run reports produced by the other
// vC2M tools' -report-out flag (see package internal/report): it renders
// the JSON document as a self-contained HTML page, diffs two documents
// (identically-seeded runs must diff clean), and reconstructs the decision
// trail for a task, VCPU, core or sweep case — answering "why was this
// placed here?" and "which resource was binding when this was rejected?".
//
// Usage:
//
//	vc2m-report generate -in run.json [-html run.html]
//	vc2m-report diff a.json b.json
//	vc2m-report explain -in run.json <task|vcpu|core|case>
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"vc2m/internal/obs"
	"vc2m/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// errDiffer marks the diff subcommand's "documents differ" outcome: the
// details were already printed, only the exit code remains.
var errDiffer = errors.New("reports differ")

// run is the defer-safe driver: subcommands return errors instead of
// os.Exit-ing mid-function.
func run(args []string) int {
	// Global flags (the shared -log-level/-log-json pair) are parsed ahead
	// of the subcommand: `vc2m-report -log-level debug diff a b`. Parsing
	// stops at the first non-flag argument, which is the subcommand.
	gfs := flag.NewFlagSet("vc2m-report", flag.ContinueOnError)
	gfs.SetOutput(io.Discard)
	logCfg := obs.LogFlags(gfs, "warn")
	if perr := gfs.Parse(args); perr != nil {
		usage()
		if errors.Is(perr, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	args = gfs.Args()
	lg, lerr := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "vc2m-report:", lerr)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-report")
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "generate":
		err = cmdGenerate(args[1:])
	case "diff":
		err = cmdDiff(args[1:])
	case "explain":
		err = cmdExplain(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "vc2m-report: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
	if errors.Is(err, errDiffer) {
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-report:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `vc2m-report <subcommand>:
  generate -in run.json [-html run.html]   validate the report and render HTML
  diff <a.json> <b.json>                   compare two reports (exit 0 iff identical)
  explain -in run.json <subject>           reconstruct a subject's decision trail

global flags (before the subcommand): -log-level <debug|info|warn|error|off>, -log-json
`)
}

// cmdGenerate validates the document and renders the HTML page. With no
// -html flag the HTML goes to stdout, so the subcommand doubles as a
// validator (`vc2m-report generate -in run.json >/dev/null`).
func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	in := fs.String("in", "", "input report JSON (required)")
	htmlOut := fs.String("html", "", "write the HTML rendering here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("generate: -in is required")
	}
	doc, err := report.Load(*in)
	if err != nil {
		return err
	}
	page := report.RenderHTML(doc)
	if *htmlOut == "" {
		fmt.Print(page)
		return nil
	}
	if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d decision(s), kind %s)\n", *htmlOut, len(doc.Decisions), doc.Kind)
	return nil
}

// cmdDiff exits 0 iff the two documents are identical — the acceptance
// check for reproducibility of identically-seeded runs.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: need exactly two report files, got %d", fs.NArg())
	}
	a, err := report.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := report.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := report.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Printf("reports identical (%d decision(s))\n", len(a.Decisions))
		return nil
	}
	fmt.Printf("%d difference(s):\n", len(diffs))
	for _, d := range diffs {
		fmt.Println("  " + d)
	}
	return errDiffer
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	in := fs.String("in", "", "input report JSON (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("explain: -in is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: need exactly one subject (a task, VCPU, \"core N\" or sweep case), got %d args", fs.NArg())
	}
	doc, err := report.Load(*in)
	if err != nil {
		return err
	}
	fmt.Print(report.Explain(doc, fs.Arg(0)))
	return nil
}
