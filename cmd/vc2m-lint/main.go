// vc2m-lint runs the repository's domain analyzers — the invariants the
// Go compiler cannot check — over module packages:
//
//   - nondet: wall-clock reads, global math/rand, order-leaking map
//     iteration (determinism is the premise of every reproduced figure);
//   - timeunit: tick/millisecond unit mixing across the timeunit.Ticks
//     boundary;
//   - nilsafe: nil-receiver guards on instrumentation hook methods
//     (trace sinks, metrics recorder);
//   - floateq: exact float ==/!= comparisons.
//
// The harness is stdlib-only (go/parser + go/types + go/importer). Test
// files are never analyzed. Intentional exceptions are annotated in the
// source with //vc2m:<directive> comments (see -list for each analyzer's
// directives); the exit status is 1 when unsuppressed diagnostics remain,
// 2 on usage or load errors.
//
// Examples:
//
//	vc2m-lint ./...
//	vc2m-lint -json ./internal/experiment
//	vc2m-lint -nondet=false -floateq=false ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit"
	"vc2m/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON object instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns from (inside the module)")
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-lint")

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*lintkit.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "vc2m-lint: every analyzer is disabled")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lintkit.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}

	res := lintkit.RunAnalyzers(pkgs, analyzers)
	if cwd, err := os.Getwd(); err == nil {
		res.RelativizeFiles(cwd)
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
	} else if err := res.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
