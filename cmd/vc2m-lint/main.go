// vc2m-lint runs the repository's domain analyzers — the invariants the
// Go compiler cannot check — over module packages:
//
//   - nondet: wall-clock reads, global math/rand, order-leaking map
//     iteration (determinism is the premise of every reproduced figure);
//   - timeunit: tick/millisecond unit mixing across the timeunit.Ticks
//     boundary;
//   - nilsafe: nil-receiver guards on instrumentation hook methods
//     (trace sinks, metrics recorder);
//   - floateq: exact float ==/!= comparisons;
//   - guardedby: //vc2m:guardedby lock-discipline annotations;
//   - ctxflow: context plumbing (no context.Background below the CLI
//     layer, no ctx fields, blocking constructs observe cancellation);
//   - closeflush: opened closers/flushers closed with the error handled;
//   - stagedrift: span-stage/provenance vocabulary cross-checks.
//
// The harness is stdlib-only (go/parser + go/types + go/importer). Test
// files are skipped unless -tests is given. Intentional exceptions are
// annotated in the source with //vc2m:<directive> comments (see -list for
// each analyzer's directives); pre-existing debt can be carried in a
// committed baseline file (-baseline, refreshed with -write-baseline).
// The exit status is 1 when unsuppressed, unbaselined diagnostics remain,
// 2 on usage or load errors.
//
// Examples:
//
//	vc2m-lint ./...
//	vc2m-lint -json ./internal/experiment
//	vc2m-lint -only nondet,floateq ./...
//	vc2m-lint -tests -baseline .vc2m-lint-baseline.json ./...
//	vc2m-lint -sarif lint.sarif ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit"
	"vc2m/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON object instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns from (inside the module)")
	tests := fs.Bool("tests", false, "also analyze _test.go files (in-package and external test packages)")
	only := fs.String("only", "", "comma-separated analyzer names to run (overrides the per-analyzer flags)")
	baselinePath := fs.String("baseline", "", "baseline file of grandfathered findings; matching diagnostics do not fail the run")
	writeBaseline := fs.String("write-baseline", "", "write the surviving diagnostics to this baseline file and exit 0")
	sarifPath := fs.String("sarif", "", "also write the result as SARIF v2.1.0 to this file")
	enabled := map[string]*bool{}
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-lint")

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*lintkit.Analyzer
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "vc2m-lint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	} else {
		for _, a := range lint.All() {
			if *enabled[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "vc2m-lint: every analyzer is disabled")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lintkit.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}

	res := lintkit.RunAnalyzers(pkgs, analyzers)
	if cwd, err := os.Getwd(); err == nil {
		res.RelativizeFiles(cwd)
	}

	if *writeBaseline != "" {
		b := lintkit.NewBaseline(res)
		if err := b.Save(*writeBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
		fmt.Printf("vc2m-lint: wrote %d baseline entr%s to %s\n",
			len(b.Entries), plural(len(b.Entries), "y", "ies"), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		b, err := lintkit.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
		for _, e := range res.ApplyBaseline(b) {
			fmt.Fprintf(os.Stderr, "vc2m-lint: stale baseline entry: %s [%s] %q (count %d) — tighten %s\n",
				e.File, e.Analyzer, e.Message, e.Count, *baselinePath)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
		if err := res.WriteSARIF(f, analyzers); err != nil {
			_ = f.Close()
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
	}

	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
			return 2
		}
	} else if err := res.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-lint:", err)
		return 2
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
