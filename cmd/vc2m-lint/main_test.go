package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtureModule lays out a throwaway module with one dirty package
// (a float compare and a suppressed one) and one clean test file, and
// returns its root.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixture\n\ngo 1.22\n",
		"dirty/dirty.go": `package dirty

func Bad(x float64) bool { return x == 1 }

func Excused(x float64) bool {
	return x == 0 //vc2m:floateq assigned sentinel, never computed
}
`,
		"dirty/dirty_test.go": `package dirty

import "testing"

func TestBad(t *testing.T) {
	if y := 2.0; y == 2 { // constant-folded: clean
		_ = Bad(y)
	}
	var z float64
	if z == 0.5 { // flagged only under -tests
		t.Fail()
	}
}
`,
	}
	for name, src := range files { //vc2m:ordered independent file writes; content is per-path
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// capture runs f with os.Stdout redirected to a pipe and returns what it
// wrote.
func capture(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for { //vc2m:ctxfree pipe drain; bounded by the writer closing
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				done <- sb.String()
				return
			}
		}
	}()
	defer func() {
		os.Stdout = orig
		_ = r.Close()
	}()
	f()
	_ = w.Close()
	return <-done
}

func TestRunExitCodes(t *testing.T) {
	root := writeFixtureModule(t)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"findings fail", []string{"-dir", root, "./..."}, 1},
		{"only a clean analyzer passes", []string{"-dir", root, "-only", "nondet", "./..."}, 0},
		{"unknown analyzer", []string{"-only", "bogus", "./..."}, 2},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"all analyzers disabled", []string{"-nondet=false", "-timeunit=false", "-nilsafe=false",
			"-floateq=false", "-guardedby=false", "-ctxflow=false", "-closeflush=false",
			"-stagedrift=false", "./..."}, 2},
		{"list exits clean", []string{"-list"}, 0},
		{"dir outside any module", []string{"-dir", t.TempDir()}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			_ = capture(t, func() { code = run(tc.args) })
			if code != tc.code {
				t.Errorf("run(%v) = %d, want %d", tc.args, code, tc.code)
			}
		})
	}
}

func TestRunJSONOutput(t *testing.T) {
	root := writeFixtureModule(t)
	var code int
	out := capture(t, func() { code = run([]string{"-dir", root, "-json", "./..."}) })
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var res struct {
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Suppressed int `json:"suppressed"`
		Baselined  int `json:"baselined"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Analyzer != "floateq" {
		t.Fatalf("diagnostics = %+v, want one floateq finding", res.Diagnostics)
	}
	if res.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want the excused compare", res.Suppressed)
	}
}

func TestRunTestsFlag(t *testing.T) {
	root := writeFixtureModule(t)
	var out string
	var code int
	out = capture(t, func() { code = run([]string{"-dir", root, "-tests", "./..."}) })
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "dirty_test.go") {
		t.Fatalf("-tests did not surface the test-file finding:\n%s", out)
	}
	out = capture(t, func() { code = run([]string{"-dir", root, "./..."}) })
	if strings.Contains(out, "dirty_test.go") {
		t.Fatalf("test-file finding reported without -tests:\n%s", out)
	}
}

func TestRunBaselineRoundTrip(t *testing.T) {
	root := writeFixtureModule(t)
	baseline := filepath.Join(root, "baseline.json")
	var code int
	_ = capture(t, func() { code = run([]string{"-dir", root, "-write-baseline", baseline, "./..."}) })
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0", code)
	}
	_ = capture(t, func() { code = run([]string{"-dir", root, "-baseline", baseline, "./..."}) })
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0", code)
	}
	// A finding the baseline does not know about still fails.
	extra := filepath.Join(root, "dirty", "extra.go")
	if err := os.WriteFile(extra, []byte("package dirty\n\nfunc New(x float64) bool { return x == 3 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() { code = run([]string{"-dir", root, "-baseline", baseline, "./..."}) })
	if code != 1 || !strings.Contains(out, "extra.go") {
		t.Fatalf("new finding over baseline: exit %d, out:\n%s", code, out)
	}
}

func TestRunSARIFOutput(t *testing.T) {
	root := writeFixtureModule(t)
	sarif := filepath.Join(root, "lint.sarif")
	var code int
	_ = capture(t, func() { code = run([]string{"-dir", root, "-sarif", sarif, "./..."}) })
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", log.Version, len(log.Runs))
	}
}
