// vc2m-runtime regenerates the running-time experiment of the paper's
// Figure 4: the average analysis time of each of the five solutions as a
// function of taskset reference utilization, on Platform A with the
// uniform utilization distribution.
//
// The reproducible content is the shape: the overhead-free analyses run in
// near-constant time while the existing-CSA solutions are an order of
// magnitude slower and grow with utilization (more tasks, more VCPUs, more
// minimum-budget searches). An interrupt (SIGINT or SIGTERM) stops the
// sweep at the next utilization point, flushes the completed points'
// tables and metrics, and exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: CSV files close on every exit path, and
// an interrupted sweep still flushes its completed utilization points.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-runtime", flag.ContinueOnError)
	platform := fs.String("platform", "A", "platform configuration: A, B or C")
	tasksets := fs.Int("tasksets", 10, "independent tasksets per utilization point (paper: 50)")
	min := fs.Float64("min", 0.2, "minimum taskset reference utilization")
	max := fs.Float64("max", 2.0, "maximum taskset reference utilization")
	step := fs.Float64("step", 0.2, "utilization step")
	seed := fs.Int64("seed", 1, "random seed")
	showMetrics := fs.Bool("metrics", false, "collect and print per-solution search-effort metrics (dbf/sbf evaluations, phase timings, ...)")
	metricsCSV := fs.String("metrics-csv", "", "also write the per-solution metrics to this CSV file (implies -metrics)")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-runtime:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-runtime")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := realMain(ctx, *platform, *tasksets, *min, *max, *step, *seed,
		*showMetrics, *metricsCSV); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-runtime:", err)
		return 1
	}
	return 0
}

func realMain(ctx context.Context, platform string, tasksets int, min, max, step float64, seed int64, showMetrics bool, metricsCSV string) error {
	plat, err := model.PlatformByName(platform)
	if err != nil {
		return err
	}
	collect := showMetrics || metricsCSV != ""
	res, runErr := experiment.RunSchedulability(experiment.SchedConfig{
		Platform:         plat,
		Dist:             workload.Uniform,
		UtilMin:          min,
		UtilMax:          max,
		UtilStep:         step,
		TasksetsPerPoint: tasksets,
		Seed:             seed,
		CollectMetrics:   collect,
		Context:          ctx,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rutilization points: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if res == nil {
		return runErr
	}
	// On an interrupt res holds the completed utilization points; flush
	// the tables, then surface the error.
	fmt.Println("# Figure 4: average running time per taskset (seconds)")
	fmt.Println(res.RuntimeTable())

	if collect {
		fmt.Println("# per-solution search-effort metrics")
		fmt.Print(res.MetricsTable())
	}
	if metricsCSV != "" {
		if err := writeCSVFile(metricsCSV, res.WriteMetricsCSV); err != nil {
			return err
		}
	}
	return runErr
}

// writeCSVFile streams one CSV writer into path, closing the file on
// every path.
func writeCSVFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
