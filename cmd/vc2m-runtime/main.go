// vc2m-runtime regenerates the running-time experiment of the paper's
// Figure 4: the average analysis time of each of the five solutions as a
// function of taskset reference utilization, on Platform A with the
// uniform utilization distribution.
//
// The reproducible content is the shape: the overhead-free analyses run in
// near-constant time while the existing-CSA solutions are an order of
// magnitude slower and grow with utilization (more tasks, more VCPUs, more
// minimum-budget searches).
package main

import (
	"flag"
	"fmt"
	"os"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/workload"
)

func main() {
	platform := flag.String("platform", "A", "platform configuration: A, B or C")
	tasksets := flag.Int("tasksets", 10, "independent tasksets per utilization point (paper: 50)")
	min := flag.Float64("min", 0.2, "minimum taskset reference utilization")
	max := flag.Float64("max", 2.0, "maximum taskset reference utilization")
	step := flag.Float64("step", 0.2, "utilization step")
	seed := flag.Int64("seed", 1, "random seed")
	showMetrics := flag.Bool("metrics", false, "collect and print per-solution search-effort metrics (dbf/sbf evaluations, phase timings, ...)")
	metricsCSV := flag.String("metrics-csv", "", "also write the per-solution metrics to this CSV file (implies -metrics)")
	flag.Parse()

	plat, err := model.PlatformByName(*platform)
	if err != nil {
		fatal(err)
	}
	collect := *showMetrics || *metricsCSV != ""
	res, err := experiment.RunSchedulability(experiment.SchedConfig{
		Platform:         plat,
		Dist:             workload.Uniform,
		UtilMin:          *min,
		UtilMax:          *max,
		UtilStep:         *step,
		TasksetsPerPoint: *tasksets,
		Seed:             *seed,
		CollectMetrics:   collect,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rutilization points: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("# Figure 4: average running time per taskset (seconds)")
	fmt.Println(res.RuntimeTable())

	if collect {
		fmt.Println("# per-solution search-effort metrics")
		fmt.Print(res.MetricsTable())
	}
	if *metricsCSV != "" {
		f, err := os.Create(*metricsCSV)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteMetricsCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsCSV)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vc2m-runtime:", err)
	os.Exit(1)
}
