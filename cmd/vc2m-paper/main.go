// vc2m-paper reproduces the paper's complete evaluation in one command:
// Figures 2(a-c) and 3(a-c), Figure 4, Tables 1 and 2, the Section 3.3
// isolation study, and this repository's two additions (the ablation and
// VM-count studies). Text tables and CSVs are written under -out.
//
// The default scale finishes in a few minutes; -tasksets 50 -step 0.05
// matches the paper's 1950 tasksets per figure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/profutil"
	"vc2m/internal/provenance"
	"vc2m/internal/report"
	"vc2m/internal/workload"
)

func main() {
	out := flag.String("out", "results", "output directory")
	tasksets := flag.Int("tasksets", 50, "tasksets per utilization point (paper: 50)")
	step := flag.Float64("step", 0.05, "utilization step (paper: 0.05)")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "tasksets/trials analyzed concurrently (results are identical at any value; use 1 when timing, e.g. for fig4)")
	provFlag := flag.Bool("provenance", false, "record per-taskset accept/reject provenance across all figure sweeps (implied by -report-out)")
	reportOut := flag.String("report-out", "", "write one unified sweep report JSON covering all figures here (inspect with vc2m-report)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// Figures 2 and 3: six schedulability sweeps.
	figures := []struct {
		name string
		plat model.Platform
		dist workload.Distribution
	}{
		{"fig2a", model.PlatformA, workload.Uniform},
		{"fig2b", model.PlatformB, workload.Uniform},
		{"fig2c", model.PlatformC, workload.Uniform},
		{"fig3a", model.PlatformA, workload.BimodalLight},
		{"fig3b", model.PlatformA, workload.BimodalMedium},
		{"fig3c", model.PlatformA, workload.BimodalHeavy},
	}
	// One recorder spans all sweeps; the per-figure ProvenanceLabel keeps
	// the sweep cases distinguishable ("fig3a/u=1.00/ts=7").
	var prov *provenance.Recorder
	if *provFlag || *reportOut != "" {
		prov = provenance.New()
	}

	var fig2a *experiment.SchedResult
	for _, fig := range figures {
		fmt.Fprintf(os.Stderr, "%s (platform %s, %s)...\n", fig.name, fig.plat.Name, fig.dist)
		res, err := experiment.RunSchedulability(experiment.SchedConfig{
			Platform:         fig.plat,
			Dist:             fig.dist,
			UtilStep:         *step,
			TasksetsPerPoint: *tasksets,
			Seed:             *seed,
			Parallel:         *parallel,
			Provenance:       prov,
			ProvenanceLabel:  fig.name,
		})
		if err != nil {
			fatal(err)
		}
		if fig.name == "fig2a" {
			fig2a = res
		}
		writeFile(*out, fig.name+".txt", res.FractionTable()+"\n"+res.Summary())
		writeCSV(*out, fig.name+".csv", res.WriteFractionsCSV)
	}
	if *reportOut != "" {
		doc := report.BuildSweep(report.SweepInput{
			Title:      fmt.Sprintf("vc2m-paper figure sweeps (seed %d)", *seed),
			Seed:       *seed,
			Platform:   model.PlatformA,
			Sweep:      fig2a.ReportSweep(),
			Provenance: prov,
		})
		if err := report.Save(*reportOut, doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", *reportOut)
	}

	// Figure 4: running times come from the fig2a sweep (same workloads).
	fmt.Fprintln(os.Stderr, "fig4 (running times)...")
	writeFile(*out, "fig4.txt", "# Figure 4: average running time per taskset (seconds)\n"+fig2a.RuntimeTable())
	writeCSV(*out, "fig4.csv", fig2a.WriteRuntimesCSV)

	// Tables 1 and 2.
	fmt.Fprintln(os.Stderr, "tables 1-2 (overheads)...")
	var tables string
	for i, vcpus := range []int{24, 96} {
		res, err := experiment.RunOverhead(experiment.OverheadConfig{
			VCPUs: vcpus, HorizonMs: 5000, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			tables += res.Table1() + "\nTable 2: Scheduler's overhead (us)\n"
			writeCSV(*out, "table1.csv", res.WriteCSV)
		}
		tables += res.Table2Row()
	}
	writeFile(*out, "tables12.txt", tables)

	// Section 3.3.
	fmt.Fprintln(os.Stderr, "section 3.3 (isolation)...")
	iso, err := experiment.RunIsolation(experiment.IsolationConfig{Ops: 150000, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	writeFile(*out, "sec33.txt", iso.Table())
	writeCSV(*out, "sec33.csv", iso.WriteCSV)

	// VM-count study (repository addition).
	fmt.Fprintln(os.Stderr, "vm-count study...")
	vmc, err := experiment.RunVMCount(experiment.VMCountConfig{
		Platform: model.PlatformA, Util: 1.0, Seed: *seed, Parallel: *parallel,
	})
	if err != nil {
		fatal(err)
	}
	writeFile(*out, "vmcount.txt", vmc.Table())

	// Partition-count and regulation-period sweeps (repository additions).
	fmt.Fprintln(os.Stderr, "partition sweep...")
	psweep, err := experiment.RunPartitionSweep(experiment.PartitionSweepConfig{Seed: *seed, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	writeFile(*out, "partition-sweep.txt", psweep.Table())

	fmt.Fprintln(os.Stderr, "regulation-period sweep...")
	rsweep, err := experiment.RunRegPeriodSweep(experiment.RegPeriodSweepConfig{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	writeFile(*out, "regperiod-sweep.txt", experiment.RegPeriodTable(rsweep))

	fmt.Fprintln(os.Stderr, "online admission study...")
	online, err := experiment.RunOnline(experiment.OnlineConfig{Seed: *seed, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	writeFile(*out, "online.txt", online.Table())

	if err := stopProf(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done; outputs in %s/\n", *out)
}

func writeFile(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func writeCSV(dir, name string, write func(w io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vc2m-paper:", err)
	os.Exit(1)
}
