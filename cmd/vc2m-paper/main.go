// vc2m-paper reproduces the paper's complete evaluation in one command:
// Figures 2(a-c) and 3(a-c), Figure 4, Tables 1 and 2, the Section 3.3
// isolation study, and this repository's two additions (the ablation and
// VM-count studies). Text tables and CSVs are written under -out.
//
// The default scale finishes in a few minutes; -tasksets 50 -step 0.05
// matches the paper's 1950 tasksets per figure. An interrupt (SIGINT or
// SIGTERM) stops the sweep at the next utilization point, flushes the
// figures completed so far, and exits non-zero.
//
// With -server the six figure sweeps are submitted to a vc2m-server
// daemon as sweep runs; each figure's report document is fetched and
// written under -out as <figure>.report.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"vc2m/client"
	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/profutil"
	"vc2m/internal/provenance"
	"vc2m/internal/report"
	"vc2m/internal/server"
	"vc2m/internal/workload"
)

// figures lists the six schedulability sweeps of Figures 2 and 3.
var figures = []struct {
	name string
	plat model.Platform
	dist workload.Distribution
}{
	{"fig2a", model.PlatformA, workload.Uniform},
	{"fig2b", model.PlatformB, workload.Uniform},
	{"fig2c", model.PlatformC, workload.Uniform},
	{"fig3a", model.PlatformA, workload.BimodalLight},
	{"fig3b", model.PlatformA, workload.BimodalMedium},
	{"fig3c", model.PlatformA, workload.BimodalHeavy},
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: every exit path unwinds through it, so
// profiles stop cleanly and partially-completed figures are flushed even
// when a later stage fails or the run is interrupted.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-paper", flag.ContinueOnError)
	out := fs.String("out", "results", "output directory")
	tasksets := fs.Int("tasksets", 50, "tasksets per utilization point (paper: 50)")
	step := fs.Float64("step", 0.05, "utilization step (paper: 0.05)")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", runtime.NumCPU(), "tasksets/trials analyzed concurrently (results are identical at any value; use 1 when timing, e.g. for fig4)")
	provFlag := fs.Bool("provenance", false, "record per-taskset accept/reject provenance across all figure sweeps (implied by -report-out)")
	reportOut := fs.String("report-out", "", "write one unified sweep report JSON covering all figures here (inspect with vc2m-report)")
	serverURL := fs.String("server", "", "submit the figure sweeps to a vc2m-server daemon at this URL instead of running in-process")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-paper:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-paper")

	// An interrupt cancels the sweep at the next utilization point; the
	// figures completed so far still flush below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := realMain(ctx, paperFlags{
		out: *out, tasksets: *tasksets, step: *step, seed: *seed,
		parallel: *parallel, provenance: *provFlag, reportOut: *reportOut,
		serverURL: *serverURL, cpuprofile: *cpuprofile, memprofile: *memprofile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-paper:", err)
		return 1
	}
	return 0
}

type paperFlags struct {
	out        string
	tasksets   int
	step       float64
	seed       int64
	parallel   int
	provenance bool
	reportOut  string
	serverURL  string
	cpuprofile string
	memprofile string
}

func realMain(ctx context.Context, f paperFlags) error {
	if err := os.MkdirAll(f.out, 0o755); err != nil {
		return err
	}
	if f.serverURL != "" {
		return runViaServer(ctx, f)
	}

	stopProf, err := profutil.Start(f.cpuprofile, f.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "vc2m-paper: profile:", perr)
		}
	}()

	// One recorder spans all sweeps; the per-figure ProvenanceLabel keeps
	// the sweep cases distinguishable ("fig3a/u=1.00/ts=7").
	var prov *provenance.Recorder
	if f.provenance || f.reportOut != "" {
		prov = provenance.New()
	}

	var fig2a *experiment.SchedResult
	for _, fig := range figures {
		fmt.Fprintf(os.Stderr, "%s (platform %s, %s)...\n", fig.name, fig.plat.Name, fig.dist)
		res, err := experiment.RunSchedulability(experiment.SchedConfig{
			Platform:         fig.plat,
			Dist:             fig.dist,
			UtilStep:         f.step,
			TasksetsPerPoint: f.tasksets,
			Seed:             f.seed,
			Parallel:         f.parallel,
			Provenance:       prov,
			ProvenanceLabel:  fig.name,
			Context:          ctx,
		})
		if res != nil {
			// Flush whatever completed — on an interrupt this preserves
			// the utilization points analyzed before the signal.
			if werr := writeFile(f.out, fig.name+".txt", res.FractionTable()+"\n"+res.Summary()); werr != nil && err == nil {
				err = werr
			}
			if werr := writeCSV(f.out, fig.name+".csv", res.WriteFractionsCSV); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			return err
		}
		if fig.name == "fig2a" {
			fig2a = res
		}
	}
	if f.reportOut != "" {
		doc := report.BuildSweep(report.SweepInput{
			Title:      fmt.Sprintf("vc2m-paper figure sweeps (seed %d)", f.seed),
			Seed:       f.seed,
			Platform:   model.PlatformA,
			Sweep:      fig2a.ReportSweep(),
			Provenance: prov,
		})
		if err := report.Save(f.reportOut, doc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", f.reportOut)
	}

	// Figure 4: running times come from the fig2a sweep (same workloads).
	fmt.Fprintln(os.Stderr, "fig4 (running times)...")
	if err := writeFile(f.out, "fig4.txt", "# Figure 4: average running time per taskset (seconds)\n"+fig2a.RuntimeTable()); err != nil {
		return err
	}
	if err := writeCSV(f.out, "fig4.csv", fig2a.WriteRuntimesCSV); err != nil {
		return err
	}

	// Tables 1 and 2.
	fmt.Fprintln(os.Stderr, "tables 1-2 (overheads)...")
	var tables string
	for i, vcpus := range []int{24, 96} {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := experiment.RunOverhead(experiment.OverheadConfig{
			VCPUs: vcpus, HorizonMs: 5000, Seed: f.seed,
		})
		if err != nil {
			return err
		}
		if i == 0 {
			tables += res.Table1() + "\nTable 2: Scheduler's overhead (us)\n"
			if err := writeCSV(f.out, "table1.csv", res.WriteCSV); err != nil {
				return err
			}
		}
		tables += res.Table2Row()
	}
	if err := writeFile(f.out, "tables12.txt", tables); err != nil {
		return err
	}

	// Section 3.3.
	fmt.Fprintln(os.Stderr, "section 3.3 (isolation)...")
	iso, err := experiment.RunIsolation(experiment.IsolationConfig{Ops: 150000, Seed: f.seed})
	if err != nil {
		return err
	}
	if err := writeFile(f.out, "sec33.txt", iso.Table()); err != nil {
		return err
	}
	if err := writeCSV(f.out, "sec33.csv", iso.WriteCSV); err != nil {
		return err
	}

	// VM-count study (repository addition).
	fmt.Fprintln(os.Stderr, "vm-count study...")
	vmc, err := experiment.RunVMCount(experiment.VMCountConfig{
		Platform: model.PlatformA, Util: 1.0, Seed: f.seed, Parallel: f.parallel,
	})
	if err != nil {
		return err
	}
	if err := writeFile(f.out, "vmcount.txt", vmc.Table()); err != nil {
		return err
	}

	// Partition-count and regulation-period sweeps (repository additions).
	fmt.Fprintln(os.Stderr, "partition sweep...")
	psweep, err := experiment.RunPartitionSweep(experiment.PartitionSweepConfig{Seed: f.seed, Parallel: f.parallel})
	if err != nil {
		return err
	}
	if err := writeFile(f.out, "partition-sweep.txt", psweep.Table()); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "regulation-period sweep...")
	rsweep, err := experiment.RunRegPeriodSweep(experiment.RegPeriodSweepConfig{Seed: f.seed})
	if err != nil {
		return err
	}
	if err := writeFile(f.out, "regperiod-sweep.txt", experiment.RegPeriodTable(rsweep)); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "online admission study...")
	online, err := experiment.RunOnline(experiment.OnlineConfig{Seed: f.seed, Parallel: f.parallel})
	if err != nil {
		return err
	}
	if err := writeFile(f.out, "online.txt", online.Table()); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "done; outputs in %s/\n", f.out)
	return nil
}

// runViaServer submits the six figure sweeps to a vc2m-server daemon,
// waits for each, and writes the fetched report documents under -out.
// Submission is concurrent — the daemon's worker pool sets the
// parallelism — and an interrupt cancels the waits, leaving the daemon to
// finish (or time out) the sweeps on its own.
func runViaServer(ctx context.Context, f paperFlags) error {
	c := client.New(f.serverURL, nil)
	ids := make(map[string]string, len(figures))
	for _, fig := range figures {
		sub, err := c.Submit(ctx, server.SubmitRequest{
			Kind:  server.KindSweep,
			Title: fmt.Sprintf("vc2m-paper %s sweep (seed %d)", fig.name, f.seed),
			Seed:  f.seed,
			Sweep: &server.SweepSpec{
				Platform:         fig.plat.Name,
				Dist:             fig.dist.String(),
				UtilStep:         f.step,
				TasksetsPerPoint: f.tasksets,
				Parallel:         f.parallel,
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s submitted as %s\n", fig.name, sub.ID)
		ids[fig.name] = sub.ID
	}
	var firstErr error
	for _, fig := range figures {
		id := ids[fig.name]
		st, err := c.Wait(ctx, id)
		if err != nil {
			return err
		}
		if st.State != server.StateDone {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s (%s) %s: %s", fig.name, id, st.State, st.Error)
			}
			continue
		}
		data, err := c.ReportBytes(ctx, id)
		if err != nil {
			return err
		}
		path := filepath.Join(f.out, fig.name+".report.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if firstErr != nil {
		return firstErr
	}
	fmt.Fprintf(os.Stderr, "done; reports in %s/ (inspect with vc2m-report)\n", f.out)
	return nil
}

func writeFile(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func writeCSV(dir, name string, write func(w io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
