// vc2m-trace works with flight-recorder traces captured from the
// hypervisor simulator (vc2m-sim -trace-jsonl, or any SimOptions.Trace
// sink): it converts JSONL captures to Chrome trace-event JSON for
// ui.perfetto.dev, renders ASCII Gantt charts, explains deadline misses,
// and summarizes stream contents.
//
// Subcommands:
//
//	vc2m-trace convert -in run.jsonl -out run.json   # Perfetto/Chrome JSON
//	vc2m-trace gantt -in run.jsonl -from 0 -to 100   # ASCII timeline
//	vc2m-trace diagnose -in run.jsonl                # miss causes
//	vc2m-trace stats -in run.jsonl                   # event counts
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"vc2m/internal/hypersim"
	"vc2m/internal/obs"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: subcommands return errors instead of
// os.Exit-ing mid-function, so deferred file closers always execute.
func run(args []string) int {
	// Global flags (the shared -log-level/-log-json pair) are parsed ahead
	// of the subcommand: `vc2m-trace -log-level debug convert ...`.
	gfs := flag.NewFlagSet("vc2m-trace", flag.ContinueOnError)
	gfs.SetOutput(io.Discard)
	logCfg := obs.LogFlags(gfs, "warn")
	if perr := gfs.Parse(args); perr != nil {
		usage()
		if errors.Is(perr, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	args = gfs.Args()
	lg, lerr := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "vc2m-trace:", lerr)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-trace")
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "convert":
		err = cmdConvert(args[1:])
	case "gantt":
		err = cmdGantt(args[1:])
	case "diagnose":
		err = cmdDiagnose(args[1:])
	case "stats":
		err = cmdStats(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "vc2m-trace: unknown subcommand %q\n\n", args[0])
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-trace:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: vc2m-trace <subcommand> [flags]

subcommands:
  convert   convert a JSONL trace to Chrome trace-event JSON (ui.perfetto.dev)
  gantt     render a window of the trace as per-core ASCII timelines
  diagnose  attribute every deadline miss in the trace to a cause
  stats     summarize the trace's event counts

run 'vc2m-trace <subcommand> -h' for flags. Capture traces with
'vc2m-sim -trace-jsonl run.jsonl' or a SimOptions.Trace sink.
Global flags (before the subcommand): -log-level <debug|info|warn|error|off>, -log-json.
`)
}

// readEvents loads a JSONL trace from path ("-" or "" means stdin).
func readEvents(path string) ([]trace.Event, error) {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close() //vc2m:closeflush read-only handle; the close error carries no data
		r = f
	}
	return trace.ReadJSONL(r)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	out := fs.String("out", "", "output Chrome trace JSON file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	events, err := readEvents(*in)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := trace.WriteChrome(w, events); err != nil {
		if f != nil {
			_ = f.Close()
		}
		return err
	}
	if f != nil {
		// The Chrome export is invalid JSON until fully flushed; a close
		// error means a truncated file, so it must fail the command.
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events); open it in ui.perfetto.dev\n", *out, len(events))
	}
	return nil
}

func cmdGantt(args []string) error {
	fs := flag.NewFlagSet("gantt", flag.ContinueOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	from := fs.Float64("from", 0, "window start in ms")
	to := fs.Float64("to", 0, "window end in ms (0 means the trace's end)")
	width := fs.Int("width", 100, "columns per row")
	if err := fs.Parse(args); err != nil {
		return err
	}

	events, err := readEvents(*in)
	if err != nil {
		return err
	}
	slices := hypersim.SlicesFromEvents(events)
	end := timeunit.FromMillis(*to)
	if *to <= 0 {
		for _, s := range slices {
			if s.End > end {
				end = s.End
			}
		}
	}
	fmt.Print(hypersim.RenderGantt(slices, timeunit.FromMillis(*from), end, *width))
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	events, err := readEvents(*in)
	if err != nil {
		return err
	}
	fmt.Print(trace.Diagnose(events).Render())
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	events, err := readEvents(*in)
	if err != nil {
		return err
	}
	counts := trace.CountByType(events)
	names := make([]string, 0, len(counts))
	for name := range counts { //vc2m:ordered keys are sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	var span timeunit.Ticks
	for _, ev := range events {
		if ev.Time > span {
			span = ev.Time
		}
	}
	fmt.Printf("%d events over %v\n", len(events), span)
	for _, name := range names {
		fmt.Printf("  %-16s %d\n", name, counts[name])
	}
	return nil
}
