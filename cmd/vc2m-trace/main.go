// vc2m-trace works with flight-recorder traces captured from the
// hypervisor simulator (vc2m-sim -trace-jsonl, or any SimOptions.Trace
// sink): it converts JSONL captures to Chrome trace-event JSON for
// ui.perfetto.dev, renders ASCII Gantt charts, explains deadline misses,
// and summarizes stream contents.
//
// Subcommands:
//
//	vc2m-trace convert -in run.jsonl -out run.json   # Perfetto/Chrome JSON
//	vc2m-trace gantt -in run.jsonl -from 0 -to 100   # ASCII timeline
//	vc2m-trace diagnose -in run.jsonl                # miss causes
//	vc2m-trace stats -in run.jsonl                   # event counts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"vc2m/internal/hypersim"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "convert":
		cmdConvert(os.Args[2:])
	case "gantt":
		cmdGantt(os.Args[2:])
	case "diagnose":
		cmdDiagnose(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "vc2m-trace: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: vc2m-trace <subcommand> [flags]

subcommands:
  convert   convert a JSONL trace to Chrome trace-event JSON (ui.perfetto.dev)
  gantt     render a window of the trace as per-core ASCII timelines
  diagnose  attribute every deadline miss in the trace to a cause
  stats     summarize the trace's event counts

run 'vc2m-trace <subcommand> -h' for flags. Capture traces with
'vc2m-sim -trace-jsonl run.jsonl' or a SimOptions.Trace sink.
`)
}

// readEvents loads a JSONL trace from path ("-" or "" means stdin).
func readEvents(path string) []trace.Event {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadJSONL(r)
	if err != nil {
		fatal(err)
	}
	return events
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	out := fs.String("out", "", "output Chrome trace JSON file (default stdout)")
	fs.Parse(args)

	events := readEvents(*in)
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := trace.WriteChrome(w, events); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d events); open it in ui.perfetto.dev\n", *out, len(events))
	}
}

func cmdGantt(args []string) {
	fs := flag.NewFlagSet("gantt", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	from := fs.Float64("from", 0, "window start in ms")
	to := fs.Float64("to", 0, "window end in ms (0 means the trace's end)")
	width := fs.Int("width", 100, "columns per row")
	fs.Parse(args)

	events := readEvents(*in)
	slices := hypersim.SlicesFromEvents(events)
	end := timeunit.FromMillis(*to)
	if *to <= 0 {
		for _, s := range slices {
			if s.End > end {
				end = s.End
			}
		}
	}
	fmt.Print(hypersim.RenderGantt(slices, timeunit.FromMillis(*from), end, *width))
}

func cmdDiagnose(args []string) {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	fs.Parse(args)

	rep := trace.Diagnose(readEvents(*in))
	fmt.Print(rep.Render())
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input JSONL trace (default stdin)")
	fs.Parse(args)

	events := readEvents(*in)
	counts := trace.CountByType(events)
	names := make([]string, 0, len(counts))
	for name := range counts { //vc2m:ordered keys are sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	var span timeunit.Ticks
	for _, ev := range events {
		if ev.Time > span {
			span = ev.Time
		}
	}
	fmt.Printf("%d events over %v\n", len(events), span)
	for _, name := range names {
		fmt.Printf("  %-16s %d\n", name, counts[name])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vc2m-trace:", err)
	os.Exit(1)
}
