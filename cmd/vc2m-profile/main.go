// vc2m-profile regenerates the Section 3.3 study "Impact of resource
// isolation on WCET": for each synthetic PARSEC benchmark it measures the
// execution time running alone, co-running with streaming interferers
// without isolation, and co-running under vC2M's cache partitioning plus
// bandwidth regulation.
//
// With -benchmark it additionally prints the benchmark's WCET profile
// e(c,b) slice — the measured dependence of execution time on the
// allocated cache and bandwidth partitions that the allocation algorithms
// consume.
package main

import (
	"flag"
	"fmt"
	"os"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/parsec"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: every exit path unwinds through it
// instead of os.Exit-ing mid-function.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-profile", flag.ContinueOnError)
	cores := fs.Int("cores", 4, "number of co-running cores")
	ops := fs.Int("ops", 100000, "operations per task")
	seed := fs.Int64("seed", 1, "random seed")
	benchmark := fs.String("benchmark", "", "also print this benchmark's slowdown profile s(c,b)")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-profile:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-profile")
	if err := realMain(*cores, *ops, *seed, *benchmark); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-profile:", err)
		return 1
	}
	return 0
}

func realMain(cores, ops int, seed int64, benchmark string) error {
	res, err := experiment.RunIsolation(experiment.IsolationConfig{
		Cores: cores, Ops: ops, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Table())

	if benchmark != "" {
		bm, err := parsec.ByName(benchmark)
		if err != nil {
			return err
		}
		p := model.PlatformA
		prof := bm.Profile(p)
		fmt.Printf("\nslowdown profile s(c,b) for %s on platform A (rows: cache c, cols: BW b)\n", bm.Name)
		fmt.Printf("%4s", "c\\b")
		for b := p.Bmin; b <= p.B; b += 2 {
			fmt.Printf(" %5d", b)
		}
		fmt.Println()
		for c := p.Cmin; c <= p.C; c += 2 {
			fmt.Printf("%4d", c)
			for b := p.Bmin; b <= p.B; b += 2 {
				fmt.Printf(" %5.2f", prof.At(c, b))
			}
			fmt.Println()
		}
		fmt.Printf("max slowdown s^max (cache disabled, worst BW): %.2f\n", bm.MaxSlowdown(p))
	}
	return nil
}
