// vc2m-top is a terminal live monitor for a running vc2m-server: htop for
// the allocation fleet. It tails the server's SSE run-lifecycle stream
// (GET /v1/events) for instant state changes and periodically scrapes the
// Prometheus text exposition (GET /metrics) and the JSON gauges
// (GET /api/metrics) for pool occupancy, per-stage latency and event-bus
// health — all through the same public surfaces any other client uses.
//
// Examples:
//
//	vc2m-top                            # watch http://127.0.0.1:8700
//	vc2m-top -url http://host:8700 -interval 1s
//	vc2m-top -once                      # print one snapshot and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"vc2m/client"
	"vc2m/internal/obs"
	"vc2m/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: every return path unwinds cleanly, so the
// SSE tail goroutine and the HTTP client are always released.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-top", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8700", "vc2m-server base URL")
	interval := fs.Duration("interval", 2*time.Second, "scrape/redraw interval")
	once := fs.Bool("once", false, "print one snapshot without ANSI control codes and exit")
	eventLines := fs.Int("events", 10, "recent lifecycle events shown in the live view")
	version := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println("vc2m-top", obs.GetBuildInfo())
		return 0
	}

	// Streaming wants no overall timeout; the snapshot requests bound
	// themselves per call via context.
	hc := &http.Client{}
	c := client.New(*url, hc)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		snap, err := scrape(ctx, c, hc, *url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-top:", err)
			return 1
		}
		render(os.Stdout, snap, nil, *url)
		return 0
	}

	// SSE tail: collect the most recent lifecycle events in a bounded ring,
	// reconnecting with Last-Event-ID until the context ends.
	tail := newEventTail(*eventLines)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tail.follow(ctx, c)
	}()
	defer wg.Wait()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		snap, err := scrape(ctx, c, hc, *url)
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err != nil {
			fmt.Printf("vc2m-top: %s unreachable: %v (retrying)\n", *url, err)
		} else {
			render(os.Stdout, snap, tail.recent(), *url)
		}
		select {
		case <-ctx.Done():
			fmt.Println("vc2m-top: bye")
			return 0
		case <-ticker.C:
		}
	}
}

// snapshot is one scrape of the server's observable state.
type snapshot struct {
	metrics server.ServiceMetrics
	runs    []server.RunStatus
	// stageLat maps pipeline stage -> (count, sum, exemplar trace) from
	// vc2m_stage_latency_seconds.
	stageLat map[string]stageStat
	runsBy   map[string]float64 // vc2m_runs_total by state
}

type stageStat struct {
	count, sum float64
	trace      string
}

// scrape gathers one snapshot: the JSON gauges, the run list, and the
// Prometheus exposition parsed through the same strict parser the smoke
// tests use.
func scrape(ctx context.Context, c *client.Client, hc *http.Client, base string) (*snapshot, error) {
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	m, err := c.Metrics(sctx)
	if err != nil {
		return nil, err
	}
	runs, err := c.Runs(sctx)
	if err != nil {
		return nil, err
	}
	snap := &snapshot{metrics: m, runs: runs, stageLat: map[string]stageStat{}, runsBy: map[string]float64{}}

	req, err := http.NewRequestWithContext(sctx, http.MethodGet, strings.TrimRight(base, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //vc2m:closeflush response body close errors are uninformative by contract
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parsing /metrics: %w", err)
	}
	for _, fam := range fams {
		switch fam.Name {
		case "vc2m_stage_latency_seconds":
			for _, s := range fam.Samples {
				stage := s.Labels["stage"]
				st := snap.stageLat[stage]
				switch {
				case strings.HasSuffix(s.Name, "_count"):
					st.count = s.Value
				case strings.HasSuffix(s.Name, "_sum"):
					st.sum = s.Value
				case s.Exemplar != nil:
					st.trace = s.Exemplar.Labels["trace_id"]
				}
				snap.stageLat[stage] = st
			}
		case "vc2m_runs_total":
			for _, s := range fam.Samples {
				snap.runsBy[s.Labels["state"]] = s.Value
			}
		}
	}
	return snap, nil
}

// render writes one snapshot (and, in live mode, the recent event tail)
// as a plain-text board.
func render(w io.Writer, snap *snapshot, events []server.RunEvent, base string) {
	m := snap.metrics
	fmt.Fprintf(w, "vc2m-top — %s\n", base)
	fmt.Fprintf(w, "pool    workers %d  in-queue %d/%d  submitted %d  draining %v\n",
		m.Workers, m.QueueLen, m.QueueCap, m.Submitted, m.Draining)
	fmt.Fprintf(w, "events  published %d  dropped %d  subscribers %d\n",
		m.EventsPublished, m.EventsDropped, m.EventSubscribers)

	states := make([]string, 0, len(m.ByState))
	for st := range m.ByState { //vc2m:ordered keys are sorted below
		states = append(states, string(st))
	}
	sort.Strings(states)
	parts := make([]string, 0, len(states))
	for _, st := range states {
		parts = append(parts, fmt.Sprintf("%s %d", st, m.ByState[server.State(st)]))
	}
	fmt.Fprintf(w, "runs    %s\n\n", strings.Join(parts, "  "))

	fmt.Fprintf(w, "%-14s %8s %12s %10s  %s\n", "STAGE", "COUNT", "TOTAL", "MEAN", "LAST TRACE")
	stages := make([]string, 0, len(snap.stageLat))
	for st := range snap.stageLat { //vc2m:ordered keys are sorted below
		stages = append(stages, st)
	}
	sort.Strings(stages)
	for _, stage := range stages {
		st := snap.stageLat[stage]
		if st.count == 0 { //vc2m:floateq zero is the never-observed sentinel; counts round-trip exactly
			continue
		}
		mean := st.sum / st.count
		fmt.Fprintf(w, "%-14s %8.0f %11.2fms %9.3fms  %s\n",
			stage, st.count, st.sum*1000, mean*1000, st.trace)
	}

	fmt.Fprintf(w, "\n%-8s %-6s %-9s %10s  %-18s %s\n", "RUN", "KIND", "STATE", "DECISIONS", "TRACE", "TITLE")
	// Newest first; the live board shows what is moving now.
	for i := len(snap.runs) - 1; i >= 0 && i >= len(snap.runs)-15; i-- {
		r := snap.runs[i]
		title := r.Title
		if len(title) > 40 {
			title = title[:37] + "..."
		}
		fmt.Fprintf(w, "%-8s %-6s %-9s %10d  %-18.16s %s\n",
			r.ID, r.Kind, r.State, r.Decisions, r.TraceID, title)
	}

	if events != nil {
		fmt.Fprintf(w, "\nrecent events (newest first):\n")
		for i := len(events) - 1; i >= 0; i-- {
			ev := events[i]
			extra := ""
			if ev.Stage != "" {
				extra = " @" + ev.Stage
			}
			if ev.Type == server.EventChurn {
				extra = fmt.Sprintf(" +%d/-%d (rej %d, mig %d)", ev.Admitted, ev.Departed, ev.Rejected, ev.Migrated)
			}
			if ev.Error != "" {
				extra += " — " + ev.Error
			}
			fmt.Fprintf(w, "  #%-6d %-14s %s%s\n", ev.Seq, ev.Type, ev.Run, extra)
		}
	}
}

// eventTail keeps the most recent lifecycle events from the SSE stream.
type eventTail struct {
	mu sync.Mutex
	//vc2m:guardedby mu
	ring []server.RunEvent
	max  int
}

func newEventTail(max int) *eventTail {
	if max <= 0 {
		max = 10
	}
	return &eventTail{max: max}
}

func (t *eventTail) add(ev server.RunEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = append(t.ring, ev)
	if len(t.ring) > t.max {
		n := copy(t.ring, t.ring[len(t.ring)-t.max:])
		t.ring = t.ring[:n]
	}
}

func (t *eventTail) recent() []server.RunEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]server.RunEvent, len(t.ring))
	copy(out, t.ring)
	return out
}

// follow tails GET /v1/events until ctx ends, reconnecting with
// Last-Event-ID after drops so no event is missed while the ring retains
// it.
func (t *eventTail) follow(ctx context.Context, c *client.Client) {
	var last uint64
	for ctx.Err() == nil {
		seq, _ := c.StreamEvents(ctx, last, func(ev server.RunEvent) error {
			t.add(ev)
			return nil
		})
		if seq > last {
			last = seq
		}
		if ctx.Err() != nil {
			return
		}
		// Server away or stream closed: pause briefly before redialing.
		timer := time.NewTimer(time.Second)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}
