// vc2m-overhead regenerates the run-time overhead measurements of the
// paper's Tables 1 and 2: the cost of the memory-bandwidth regulator's
// throttle and budget-replenishment handlers, and of the extended RTDS
// scheduler's budget replenishment, scheduling and context-switch paths,
// at 24 and 96 VCPUs.
//
// The paper measures microsecond interrupt paths inside Xen on Xeon
// hardware; this command measures the wall-clock cost of the hypervisor
// simulator's equivalent handlers. Absolute values are not comparable —
// the reproducible content is the relative shape (throttling is far
// cheaper than BW replenishment; scheduler costs grow slowly with the
// VCPU count).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vc2m/internal/experiment"
	"vc2m/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: the CSV file closes on every exit path.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-overhead", flag.ContinueOnError)
	vcpuList := fs.String("vcpus", "24,96", "comma-separated VCPU counts to measure (paper: 24,96)")
	horizon := fs.Float64("horizon", 2000, "simulated duration in ms")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "also write the first configuration's handler summaries to this CSV file")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-overhead:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-overhead")
	if err := realMain(*vcpuList, *horizon, *seed, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-overhead:", err)
		return 1
	}
	return 0
}

func realMain(vcpuList string, horizon float64, seed int64, csvPath string) error {
	var counts []int
	for _, s := range strings.Split(vcpuList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("invalid VCPU count %q", s)
		}
		counts = append(counts, n)
	}

	first, err := experiment.RunOverhead(experiment.OverheadConfig{
		VCPUs: counts[0], HorizonMs: horizon, Seed: seed,
	})
	if err != nil {
		return err
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := first.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Print(first.Table1())
	fmt.Printf("  (%d throttle events, %d BW replenishments over %.0f ms)\n\n",
		first.ThrottleEvents, first.BWReplenishments, horizon)

	fmt.Println("Table 2: Scheduler's overhead (us)")
	fmt.Print(first.Table2Row())
	for _, n := range counts[1:] {
		res, err := experiment.RunOverhead(experiment.OverheadConfig{
			VCPUs: n, HorizonMs: horizon, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Table2Row())
	}
	return nil
}
