// vc2m-sim is the end-to-end driver: it loads (or generates) a system,
// runs a vC2M allocation strategy on it, optionally executes the result on
// the hypervisor simulator, and reports the outcome. Systems and
// allocations are exchanged as JSON, so allocations can be produced once
// and inspected or replayed later.
//
// With -server it submits the run to a vc2m-server daemon instead of
// executing in-process; the fetched report is byte-identical to the local
// run with the same seeds.
//
// Examples:
//
//	vc2m-sim -gen-util 1.2 -gen-seed 7 -dump-system system.json
//	vc2m-sim -in system.json -mode flattening -out alloc.json
//	vc2m-sim -gen-util 1.0 -mode overheadfree -simulate 2200
//	vc2m-sim -server http://127.0.0.1:8700 -gen-util 1.0 -report-out run.json
//	vc2m-sim -gen-util 1.2 -mode existing -spans -spans-out spans.json
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vc2m"
	"vc2m/client"
	"vc2m/internal/alloc"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/profutil"
	"vc2m/internal/report"
	"vc2m/internal/server"
	"vc2m/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: every exit path unwinds through it, so
// deferred sink/file closers always execute and no partial output is
// silently truncated.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-sim", flag.ContinueOnError)
	in := fs.String("in", "", "input system JSON file (omit to generate a workload)")
	genUtil := fs.Float64("gen-util", 1.0, "generated workload's target reference utilization")
	genDist := fs.String("gen-dist", "uniform", "generated workload's distribution: uniform, light, medium, heavy")
	genSeed := fs.Int64("gen-seed", 1, "generated workload's seed")
	platform := fs.String("platform", "A", "platform for generated workloads: A, B or C")
	dumpSystem := fs.String("dump-system", "", "write the (generated) system JSON here and exit")
	mode := fs.String("mode", "flattening", "analysis mode: flattening, overheadfree or existing")
	seed := fs.Int64("seed", 0, "allocator seed")
	out := fs.String("out", "", "write the allocation JSON here")
	simulate := fs.Float64("simulate", 2200, "simulate the allocation for this many ms (0 to skip)")
	gantt := fs.Float64("gantt", 0, "render an execution Gantt chart for the first N ms of the simulation")
	showMetrics := fs.Bool("metrics", false, "record and print allocator and simulator metrics (search effort, scheduler events)")
	metricsCSV := fs.String("metrics-csv", "", "also write the metrics to this CSV file (implies -metrics)")
	traceOut := fs.String("trace-out", "", "write the simulation's flight-recorder trace as Chrome trace-event JSON (open in ui.perfetto.dev)")
	traceJSONL := fs.String("trace-jsonl", "", "write the simulation's flight-recorder trace as JSON lines (replay with vc2m-trace)")
	diagnose := fs.Bool("diagnose", false, "on deadline misses, print a per-task miss-cause breakdown")
	provFlag := fs.Bool("provenance", false, "record the allocator's decision stream and print it after the run")
	reportOut := fs.String("report-out", "", "write a unified run report JSON here (implies -provenance; inspect with vc2m-report)")
	serverURL := fs.String("server", "", "submit the run to a vc2m-server daemon at this URL instead of executing in-process")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	spansOut := fs.String("spans-out", "", "write the run's wall-clock stage spans as Chrome trace-event JSON (open in ui.perfetto.dev)")
	spans := fs.Bool("spans", false, "print a wall-clock stage-latency breakdown after the run")
	slowRun := fs.Duration("slow-run", 0, "log a per-stage breakdown if the run exceeds this wall time (0 disables)")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// An interrupt cancels the in-flight allocation (or the pending
	// server call); completed outputs flush on the way out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := realMain(ctx, simFlags{
		in: *in, genUtil: *genUtil, genDist: *genDist, genSeed: *genSeed,
		platform: *platform, dumpSystem: *dumpSystem, mode: *mode, seed: *seed,
		out: *out, simulate: *simulate, gantt: *gantt,
		showMetrics: *showMetrics, metricsCSV: *metricsCSV,
		traceOut: *traceOut, traceJSONL: *traceJSONL,
		diagnose: *diagnose, provenance: *provFlag, reportOut: *reportOut,
		serverURL: *serverURL, cpuprofile: *cpuprofile, memprofile: *memprofile,
		spansOut: *spansOut, spans: *spans, slowRun: *slowRun, logCfg: logCfg,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-sim:", err)
		return 1
	}
	return 0
}

type simFlags struct {
	in          string
	genUtil     float64
	genDist     string
	genSeed     int64
	platform    string
	dumpSystem  string
	mode        string
	seed        int64
	out         string
	simulate    float64
	gantt       float64
	showMetrics bool
	metricsCSV  string
	traceOut    string
	traceJSONL  string
	diagnose    bool
	provenance  bool
	reportOut   string
	serverURL   string
	cpuprofile  string
	memprofile  string
	spansOut    string
	spans       bool
	slowRun     time.Duration
	logCfg      *obs.LogConfig
}

func realMain(ctx context.Context, f simFlags) error {
	lg, err := f.logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		return err
	}
	if f.serverURL != "" {
		return runViaServer(ctx, f)
	}

	stopProf, err := profutil.Start(f.cpuprofile, f.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "vc2m-sim: profile:", perr)
		}
	}()

	// Wall-clock span instrumentation: one trace per invocation, rooted
	// at a "run" span the allocator and simulator hang their stage spans
	// under. Spans live strictly outside the report/allocation outputs,
	// so enabling them never changes a run's bytes. The trace finalizes
	// on every exit path — a rejected allocation is exactly the kind of
	// run worth profiling.
	var tr *obs.Trace
	var rootSpan *vc2m.Span
	if f.spansOut != "" || f.spans || f.slowRun > 0 {
		tr = obs.NewTrace()
		rootSpan = tr.StartSpan(obs.StageRun)
	}
	begin := time.Now() //vc2m:wallclock slow-run threshold is wall time by design
	defer func() {
		rootSpan.End()
		lg.LogSlow(tr, "vc2m-sim", time.Since(begin), f.slowRun) //vc2m:wallclock slow-run threshold is wall time by design
		if f.spans {
			fmt.Println("# wall-clock stage breakdown")
			_ = tr.WriteBreakdown(os.Stdout)
		}
		if f.spansOut != "" {
			if werr := writeSpans(f.spansOut, tr); werr != nil {
				fmt.Fprintln(os.Stderr, "vc2m-sim: spans:", werr)
			}
		}
	}()

	sys, err := loadOrGenerate(f.in, f.platform, f.genUtil, f.genDist, f.genSeed)
	if err != nil {
		return err
	}

	if f.dumpSystem != "" {
		data, err := model.EncodeSystem(sys)
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.dumpSystem, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d VMs, %d tasks, reference utilization %.2f)\n",
			f.dumpSystem, len(sys.VMs), len(sys.Tasks()), sys.RefUtil())
		return nil
	}

	m, modeName, err := parseMode(f.mode)
	if err != nil {
		return err
	}

	var rec *vc2m.MetricsRecorder
	if f.showMetrics || f.metricsCSV != "" {
		rec = vc2m.NewMetrics()
	}
	var prov *vc2m.ProvenanceRecorder
	if f.provenance || f.reportOut != "" {
		prov = vc2m.NewProvenance()
	}
	run := reportRun{path: f.reportOut, mode: modeName, seed: f.genSeed, sys: sys, metrics: rec, prov: prov}

	a, err := vc2m.Allocate(sys, vc2m.Options{Mode: m, Seed: f.seed, Metrics: rec, Provenance: prov, Context: ctx, Span: rootSpan})
	if err != nil {
		// The rejection is itself a result: persist the decision trail
		// (with the binding resource) before exiting non-zero.
		run.rejection = err
		if werr := run.write(); werr != nil {
			fmt.Fprintln(os.Stderr, "vc2m-sim: report:", werr)
		}
		return err
	}
	run.alloc = a
	fmt.Print(a.Report())

	if f.out != "" {
		data, err := model.EncodeAllocation(a)
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote allocation to %s\n", f.out)
	}

	if f.simulate > 0 {
		sink, closeSinks, err := openTraceSinks(f.traceOut, f.traceJSONL)
		if err != nil {
			return err
		}
		recordTrace := f.gantt > 0 || f.diagnose || f.reportOut != ""
		res, err := vc2m.Simulate(a, f.simulate, vc2m.SimOptions{RecordTrace: recordTrace, Trace: sink, Metrics: rec, Span: rootSpan})
		if cerr := closeSinks(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		run.sim = res
		fmt.Printf("simulated %.0f ms: %d jobs released, %d completed, %d deadline misses\n",
			f.simulate, res.Released, res.Completed, res.Missed)
		if f.gantt > 0 {
			fmt.Print(vc2m.RenderGantt(res, 0, f.gantt, 100))
		}
		if res.Missed > 0 && recordTrace {
			run.diag = vc2m.DiagnoseMisses(res.Events)
		}
		if f.diagnose && run.diag != nil {
			fmt.Print(run.diag.Render())
		}
		if res.Missed > 0 {
			if werr := run.write(); werr != nil {
				fmt.Fprintln(os.Stderr, "vc2m-sim: report:", werr)
			}
			return fmt.Errorf("allocation declared schedulable but missed deadlines")
		}
	}
	if err := run.write(); err != nil {
		return err
	}

	if f.provenance && prov != nil {
		fmt.Printf("# %d allocation decision(s)\n", prov.Len())
		for _, d := range prov.Decisions() {
			fmt.Println(report.FormatDecision(d))
		}
	}

	if rec != nil {
		snap := rec.Snapshot()
		fmt.Println("# allocator + simulator metrics")
		fmt.Print(snap.Table())
		if f.metricsCSV != "" {
			if err := writeMetricsCSV(f.metricsCSV, snap, modeName); err != nil {
				return err
			}
		}
	}
	return nil
}

// runViaServer submits the run to a vc2m-server daemon and fetches the
// report. The request carries the same title, seeds and spec as the
// in-process path, so the served document is byte-identical to a local
// run — the report is streamed back verbatim into -report-out.
func runViaServer(ctx context.Context, f simFlags) error {
	localOnly := []struct {
		name string
		set  bool
	}{
		{"-dump-system", f.dumpSystem != ""},
		{"-out", f.out != ""},
		{"-gantt", f.gantt > 0},
		{"-trace-out", f.traceOut != ""},
		{"-trace-jsonl", f.traceJSONL != ""},
		{"-metrics-csv", f.metricsCSV != ""},
		{"-cpuprofile", f.cpuprofile != ""},
		{"-memprofile", f.memprofile != ""},
		{"-spans-out", f.spansOut != ""},
		{"-spans", f.spans},
		{"-slow-run", f.slowRun > 0},
	}
	for _, flag := range localOnly {
		if flag.set {
			return fmt.Errorf("%s is local-only and cannot be combined with -server", flag.name)
		}
	}
	_, modeName, err := parseMode(f.mode)
	if err != nil {
		return err
	}
	req := server.SubmitRequest{
		Kind:       server.KindRun,
		Title:      fmt.Sprintf("vc2m-sim %s run (seed %d)", modeName, f.genSeed),
		Mode:       modeName,
		Seed:       f.seed,
		GenSeed:    f.genSeed,
		SimulateMs: f.simulate,
		Metrics:    f.showMetrics,
	}
	if f.in != "" {
		data, err := os.ReadFile(f.in)
		if err != nil {
			return err
		}
		sys, err := model.DecodeSystem(data)
		if err != nil {
			return err
		}
		req.System = sys
	} else {
		plat, err := model.PlatformByName(f.platform)
		if err != nil {
			return err
		}
		dist, err := workload.ParseDistribution(f.genDist)
		if err != nil {
			return err
		}
		req.Generate = &workload.Config{Platform: plat, TargetRefUtil: f.genUtil, Dist: dist}
	}

	c := client.New(f.serverURL, nil)
	sub, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("submitted as %s to %s\n", sub.ID, f.serverURL)
	st, err := c.Wait(ctx, sub.ID)
	if err != nil {
		return err
	}
	switch st.State {
	case server.StateDone:
	case server.StateFailed, server.StateCanceled:
		return fmt.Errorf("run %s %s: %s", st.ID, st.State, st.Error)
	}
	data, err := c.ReportBytes(ctx, sub.ID)
	if err != nil {
		return err
	}
	var doc report.Document
	if derr := json.Unmarshal(data, &doc); derr != nil {
		return derr
	}
	if f.reportOut != "" {
		if err := os.WriteFile(f.reportOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", f.reportOut)
	}
	if doc.Rejection != nil {
		return errors.New(doc.Rejection.Reason)
	}
	if doc.Allocation != nil {
		fmt.Printf("allocation: %s, %d cores, schedulable %v\n",
			doc.Allocation.Solution, len(doc.Allocation.Cores), doc.Allocation.Schedulable)
	}
	if doc.Sim != nil {
		fmt.Printf("simulated: %d jobs released, %d completed, %d deadline misses\n",
			doc.Sim.Released, doc.Sim.Completed, doc.Sim.Missed)
	}
	if f.provenance {
		fmt.Printf("# %d allocation decision(s)\n", len(doc.Decisions))
		for _, d := range doc.Decisions {
			fmt.Println(report.FormatDecision(d))
		}
	}
	if doc.Sim != nil && doc.Sim.Missed > 0 {
		return fmt.Errorf("allocation declared schedulable but missed deadlines")
	}
	return nil
}

// parseMode maps the -mode flag to the facade mode, returning the
// normalized name used in reports.
func parseMode(name string) (vc2m.Mode, string, error) {
	switch name {
	case "flattening":
		return vc2m.Flattening, "flattening", nil
	case "overheadfree", "overhead-free":
		return vc2m.OverheadFree, "overheadfree", nil
	case "existing":
		return vc2m.ExistingCSA, "existing", nil
	}
	return 0, "", fmt.Errorf("unknown mode %q", name)
}

// reportRun accumulates the sections of the unified run report as the
// driver progresses, so the document can be written at whichever point the
// run ends (allocation rejection, deadline misses, or clean completion).
type reportRun struct {
	path      string
	mode      string
	seed      int64
	sys       *vc2m.System
	alloc     *vc2m.Allocation
	rejection error
	sim       *vc2m.SimResult
	diag      *vc2m.MissReport
	metrics   *vc2m.MetricsRecorder
	prov      *vc2m.ProvenanceRecorder
}

// write builds and saves the report document; a no-op without -report-out.
func (r *reportRun) write() error {
	if r.path == "" {
		return nil
	}
	in := report.RunInput{
		Title:      fmt.Sprintf("vc2m-sim %s run (seed %d)", r.mode, r.seed),
		Seed:       r.seed,
		Mode:       r.mode,
		Platform:   r.sys.Platform,
		Allocation: r.alloc,
		Rejection:  toRejection(r.rejection),
		Sim:        r.sim,
		Diagnosis:  r.diag,
		Metrics:    r.metrics,
		Provenance: r.prov,
	}
	if err := report.Save(r.path, report.BuildRun(in)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", r.path)
	return nil
}

// toRejection translates an allocator error into the report's rejection
// section, preserving the binding resource(s) of a RejectionError.
func toRejection(err error) *report.Rejection {
	if err == nil {
		return nil
	}
	rej := &report.Rejection{Reason: err.Error(), Violated: []string{"cpu"}}
	if re, ok := alloc.AsRejection(err); ok {
		rej.Stage = re.Stage
		rej.Violated = rej.Violated[:0]
		for _, r := range re.Violated {
			rej.Violated = append(rej.Violated, string(r))
		}
	}
	return rej
}

// writeSpans exports the wall-clock span trace as Chrome trace-event
// JSON — same viewer as -trace-out, but the timeline is real elapsed time
// across pipeline stages, not simulated hypervisor time.
func writeSpans(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote spans to %s (open in ui.perfetto.dev)\n", path)
	return nil
}

// openTraceSinks builds the flight-recorder sink requested by the
// -trace-out / -trace-jsonl flags. The returned close function finalizes
// the output files (the Chrome export in particular is invalid JSON
// until closed) and must run before the process exits successfully.
func openTraceSinks(chromePath, jsonlPath string) (vc2m.TraceSink, func() error, error) {
	var sinks []vc2m.TraceSink
	var closers []func() error
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return nil, nil, err
		}
		cw := vc2m.NewTraceChrome(f)
		sinks = append(sinks, cw)
		closers = append(closers, cw.Close, f.Close)
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return nil, nil, err
		}
		jw := vc2m.NewTraceJSONL(f)
		sinks = append(sinks, jw)
		closers = append(closers, jw.Close, f.Close)
	}
	closeAll := func() error {
		for _, c := range closers {
			if err := c(); err != nil {
				return err
			}
		}
		if chromePath != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s (open in ui.perfetto.dev)\n", chromePath)
		}
		if jsonlPath != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s (inspect with vc2m-trace)\n", jsonlPath)
		}
		return nil
	}
	return vc2m.MultiTrace(sinks...), closeAll, nil
}

// writeMetricsCSV dumps the snapshot as (scope, kind, name, value, ...)
// rows, with the analysis mode as the scope.
func writeMetricsCSV(path string, snap vc2m.MetricsSnapshot, scope string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(metrics.CSVHeader()); err != nil {
		return err
	}
	for _, row := range snap.CSVRows(scope) {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func loadOrGenerate(in, platform string, util float64, dist string, seed int64) (*vc2m.System, error) {
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return model.DecodeSystem(data)
	}
	plat, err := model.PlatformByName(platform)
	if err != nil {
		return nil, err
	}
	return vc2m.GenerateWorkload(vc2m.WorkloadConfig{
		Platform:      plat,
		TargetRefUtil: util,
		Distribution:  dist,
		Seed:          seed,
	})
}
