// vc2m-sim is the end-to-end driver: it loads (or generates) a system,
// runs a vC2M allocation strategy on it, optionally executes the result on
// the hypervisor simulator, and reports the outcome. Systems and
// allocations are exchanged as JSON, so allocations can be produced once
// and inspected or replayed later.
//
// Examples:
//
//	vc2m-sim -gen-util 1.2 -gen-seed 7 -dump-system system.json
//	vc2m-sim -in system.json -mode flattening -out alloc.json
//	vc2m-sim -gen-util 1.0 -mode overheadfree -simulate 2200
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"vc2m"
	"vc2m/internal/alloc"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/profutil"
	"vc2m/internal/report"
)

func main() {
	in := flag.String("in", "", "input system JSON file (omit to generate a workload)")
	genUtil := flag.Float64("gen-util", 1.0, "generated workload's target reference utilization")
	genDist := flag.String("gen-dist", "uniform", "generated workload's distribution: uniform, light, medium, heavy")
	genSeed := flag.Int64("gen-seed", 1, "generated workload's seed")
	platform := flag.String("platform", "A", "platform for generated workloads: A, B or C")
	dumpSystem := flag.String("dump-system", "", "write the (generated) system JSON here and exit")
	mode := flag.String("mode", "flattening", "analysis mode: flattening, overheadfree or existing")
	seed := flag.Int64("seed", 0, "allocator seed")
	out := flag.String("out", "", "write the allocation JSON here")
	simulate := flag.Float64("simulate", 2200, "simulate the allocation for this many ms (0 to skip)")
	gantt := flag.Float64("gantt", 0, "render an execution Gantt chart for the first N ms of the simulation")
	showMetrics := flag.Bool("metrics", false, "record and print allocator and simulator metrics (search effort, scheduler events)")
	metricsCSV := flag.String("metrics-csv", "", "also write the metrics to this CSV file (implies -metrics)")
	traceOut := flag.String("trace-out", "", "write the simulation's flight-recorder trace as Chrome trace-event JSON (open in ui.perfetto.dev)")
	traceJSONL := flag.String("trace-jsonl", "", "write the simulation's flight-recorder trace as JSON lines (replay with vc2m-trace)")
	diagnose := flag.Bool("diagnose", false, "on deadline misses, print a per-task miss-cause breakdown")
	provFlag := flag.Bool("provenance", false, "record the allocator's decision stream and print it after the run")
	reportOut := flag.String("report-out", "", "write a unified run report JSON here (implies -provenance; inspect with vc2m-report)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	sys := loadOrGenerate(*in, *platform, *genUtil, *genDist, *genSeed)

	if *dumpSystem != "" {
		data, err := model.EncodeSystem(sys)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*dumpSystem, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d VMs, %d tasks, reference utilization %.2f)\n",
			*dumpSystem, len(sys.VMs), len(sys.Tasks()), sys.RefUtil())
		return
	}

	var m vc2m.Mode
	switch *mode {
	case "flattening":
		m = vc2m.Flattening
	case "overheadfree", "overhead-free":
		m = vc2m.OverheadFree
	case "existing":
		m = vc2m.ExistingCSA
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	var rec *vc2m.MetricsRecorder
	if *showMetrics || *metricsCSV != "" {
		rec = vc2m.NewMetrics()
	}
	var prov *vc2m.ProvenanceRecorder
	if *provFlag || *reportOut != "" {
		prov = vc2m.NewProvenance()
	}
	run := reportRun{path: *reportOut, mode: *mode, seed: *genSeed, sys: sys, metrics: rec, prov: prov}

	a, err := vc2m.Allocate(sys, vc2m.Options{Mode: m, Seed: *seed, Metrics: rec, Provenance: prov})
	if err != nil {
		// The rejection is itself a result: persist the decision trail
		// (with the binding resource) before exiting non-zero.
		run.rejection = err
		run.write()
		fatal(err)
	}
	run.alloc = a
	fmt.Print(a.Report())

	if *out != "" {
		data, err := model.EncodeAllocation(a)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote allocation to %s\n", *out)
	}

	if *simulate > 0 {
		sink, closeSinks := openTraceSinks(*traceOut, *traceJSONL)
		recordTrace := *gantt > 0 || *diagnose || *reportOut != ""
		res, err := vc2m.Simulate(a, *simulate, vc2m.SimOptions{RecordTrace: recordTrace, Trace: sink, Metrics: rec})
		if err != nil {
			fatal(err)
		}
		closeSinks()
		run.sim = res
		fmt.Printf("simulated %.0f ms: %d jobs released, %d completed, %d deadline misses\n",
			*simulate, res.Released, res.Completed, res.Missed)
		if *gantt > 0 {
			fmt.Print(vc2m.RenderGantt(res, 0, *gantt, 100))
		}
		if res.Missed > 0 && recordTrace {
			run.diag = vc2m.DiagnoseMisses(res.Events)
		}
		if *diagnose && run.diag != nil {
			fmt.Print(run.diag.Render())
		}
		if res.Missed > 0 {
			run.write()
			fatal(fmt.Errorf("allocation declared schedulable but missed deadlines"))
		}
	}
	run.write()

	if *provFlag && prov != nil {
		fmt.Printf("# %d allocation decision(s)\n", prov.Len())
		for _, d := range prov.Decisions() {
			fmt.Println(report.FormatDecision(d))
		}
	}

	if rec != nil {
		snap := rec.Snapshot()
		fmt.Println("# allocator + simulator metrics")
		fmt.Print(snap.Table())
		if *metricsCSV != "" {
			writeMetricsCSV(*metricsCSV, snap, *mode)
		}
	}

	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// reportRun accumulates the sections of the unified run report as the
// driver progresses, so the document can be written at whichever point the
// run ends (allocation rejection, deadline misses, or clean completion).
type reportRun struct {
	path      string
	mode      string
	seed      int64
	sys       *vc2m.System
	alloc     *vc2m.Allocation
	rejection error
	sim       *vc2m.SimResult
	diag      *vc2m.MissReport
	metrics   *vc2m.MetricsRecorder
	prov      *vc2m.ProvenanceRecorder
}

// write builds and saves the report document; a no-op without -report-out.
func (r *reportRun) write() {
	if r.path == "" {
		return
	}
	in := report.RunInput{
		Title:      fmt.Sprintf("vc2m-sim %s run (seed %d)", r.mode, r.seed),
		Seed:       r.seed,
		Mode:       r.mode,
		Platform:   r.sys.Platform,
		Allocation: r.alloc,
		Rejection:  toRejection(r.rejection),
		Sim:        r.sim,
		Diagnosis:  r.diag,
		Metrics:    r.metrics,
		Provenance: r.prov,
	}
	if err := report.Save(r.path, report.BuildRun(in)); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", r.path)
}

// toRejection translates an allocator error into the report's rejection
// section, preserving the binding resource(s) of a RejectionError.
func toRejection(err error) *report.Rejection {
	if err == nil {
		return nil
	}
	rej := &report.Rejection{Reason: err.Error(), Violated: []string{"cpu"}}
	if re, ok := alloc.AsRejection(err); ok {
		rej.Stage = re.Stage
		rej.Violated = rej.Violated[:0]
		for _, r := range re.Violated {
			rej.Violated = append(rej.Violated, string(r))
		}
	}
	return rej
}

// openTraceSinks builds the flight-recorder sink requested by the
// -trace-out / -trace-jsonl flags. The returned close function finalizes
// the output files (the Chrome export in particular is invalid JSON
// until closed) and must run before the process exits successfully.
func openTraceSinks(chromePath, jsonlPath string) (vc2m.TraceSink, func()) {
	var sinks []vc2m.TraceSink
	var closers []func() error
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			fatal(err)
		}
		cw := vc2m.NewTraceChrome(f)
		sinks = append(sinks, cw)
		closers = append(closers, cw.Close, f.Close)
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			fatal(err)
		}
		jw := vc2m.NewTraceJSONL(f)
		sinks = append(sinks, jw)
		closers = append(closers, jw.Close, f.Close)
	}
	return vc2m.MultiTrace(sinks...), func() {
		for _, c := range closers {
			if err := c(); err != nil {
				fatal(err)
			}
		}
		if chromePath != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s (open in ui.perfetto.dev)\n", chromePath)
		}
		if jsonlPath != "" {
			fmt.Fprintf(os.Stderr, "wrote trace to %s (inspect with vc2m-trace)\n", jsonlPath)
		}
	}
}

// writeMetricsCSV dumps the snapshot as (scope, kind, name, value, ...)
// rows, with the analysis mode as the scope.
func writeMetricsCSV(path string, snap vc2m.MetricsSnapshot, scope string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	cw := csv.NewWriter(f)
	if err := cw.Write(metrics.CSVHeader()); err != nil {
		fatal(err)
	}
	for _, row := range snap.CSVRows(scope) {
		if err := cw.Write(row); err != nil {
			fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func loadOrGenerate(in, platform string, util float64, dist string, seed int64) *vc2m.System {
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			fatal(err)
		}
		sys, err := model.DecodeSystem(data)
		if err != nil {
			fatal(err)
		}
		return sys
	}
	plat, err := model.PlatformByName(platform)
	if err != nil {
		fatal(err)
	}
	sys, err := vc2m.GenerateWorkload(vc2m.WorkloadConfig{
		Platform:      plat,
		TargetRefUtil: util,
		Distribution:  dist,
		Seed:          seed,
	})
	if err != nil {
		fatal(err)
	}
	return sys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vc2m-sim:", err)
	os.Exit(1)
}
