// vc2m-server is the vC2M allocation daemon: a long-running HTTP/JSON
// service that accepts taskset/VM/platform specs, runs allocations
// concurrently on a bounded worker pool, and serves each run's report
// document and live provenance stream. See internal/server for the API
// and package client for the typed Go client.
//
// Examples:
//
//	vc2m-server -addr 127.0.0.1:8700
//	vc2m-server -addr 127.0.0.1:0 -ready-file addr.txt -workers 4
//	vc2m-server -vm 3 -core 4 -cache 12 -bw 12        # with demo inventory
//
// SIGINT/SIGTERM drain gracefully: in-flight runs complete, their
// reports are retained for late fetches until the listener closes, and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/server"
	"vc2m/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: every return path unwinds cleanly, so
// the listener, ready file and worker pool are always released.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-server", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8700", "listen address (port 0 picks an ephemeral port)")
	workers := fs.Int("workers", 2, "concurrent allocation workers")
	queue := fs.Int("queue", 64, "pending-run queue capacity")
	runTimeout := fs.Duration("run-timeout", 10*time.Minute, "per-run execution bound (0 disables)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request bound for non-streaming endpoints")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Minute, "shutdown drain bound before in-flight runs are canceled")
	readyFile := fs.String("ready-file", "", "write the bound address here once listening (for scripts)")
	slowRun := fs.Duration("slow-run", 0, "log a per-stage wall-clock breakdown for runs slower than this (0 disables)")
	debugRoutes := fs.Bool("debug-routes", false, "serve GET /debug/panic for verifying the recovery middleware")
	version := fs.Bool("version", false, "print the build identity and exit")
	logCfg := obs.LogFlags(fs, "info")

	// vcsim-style synthetic inventory: a generated demo system submitted
	// at startup, so a fresh daemon has browsable state immediately.
	demoVMs := fs.Int("vm", 0, "demo inventory: VM count (0 disables the demo run)")
	demoCores := fs.Int("core", 4, "demo inventory: platform cores")
	demoCache := fs.Int("cache", 12, "demo inventory: cache partitions")
	demoBW := fs.Int("bw", 12, "demo inventory: memory-bandwidth partitions")
	demoUtil := fs.Float64("demo-util", 1.0, "demo inventory: taskset reference utilization")
	demoSeed := fs.Int64("demo-seed", 1, "demo inventory: generation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println("vc2m-server", obs.GetBuildInfo())
		return 0
	}
	logger, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-server:", err)
		return 2
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		Queue:          *queue,
		RunTimeout:     *runTimeout,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
		SlowRun:        *slowRun,
		DebugRoutes:    *debugRoutes,
	})
	srv.Start()

	if *demoVMs > 0 {
		if err := seedDemo(srv, *demoVMs, *demoCores, *demoCache, *demoBW, *demoUtil, *demoSeed); err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-server: demo inventory:", err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-server:", err)
		return 1
	}
	defer ln.Close() //vc2m:closeflush backstop only; http.Server owns and closes the listener
	bound := ln.Addr().String()
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vc2m-server:", err)
			return 1
		}
		defer os.Remove(*readyFile)
	}
	fmt.Printf("vc2m-server listening on %s (%d workers, queue %d)\n", bound, *workers, *queue)
	logger.Info("listening", "addr", bound, "workers", *workers, "queue", *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "vc2m-server:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the
	// worker pool — in-flight runs complete and their reports flush into
	// the registry before the process exits 0.
	fmt.Println("vc2m-server: signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-server: drain:", err)
		_ = hs.Close()
		return 1
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-server: http shutdown:", err)
		return 1
	}
	fmt.Println("vc2m-server: drained, exiting")
	return 0
}

// seedDemo submits one generated run on a synthetic platform, mirroring
// vcsim's instant inventory: -vm/-core/-cache/-bw describe the hardware
// and fleet, and the resulting allocation is immediately listable.
func seedDemo(srv *server.Server, vms, cores, cache, bw int, util float64, seed int64) error {
	plat := model.Platform{Name: "synthetic", M: cores, C: cache, B: bw, Cmin: 2, Bmin: 1}
	if cache < 2*cores {
		// Tiny platforms cannot give every core the 2-partition minimum;
		// fall back to 1 so -core 8 -cache 8 still forms a valid demo.
		plat.Cmin = 1
	}
	if err := plat.Validate(); err != nil {
		return err
	}
	run, err := srv.Submit(server.SubmitRequest{
		Kind:  server.KindRun,
		Title: fmt.Sprintf("demo inventory (%d VMs on %dx%dc/%db)", vms, cores, cache, bw),
		Generate: &workload.Config{
			Platform:      plat,
			TargetRefUtil: util,
			NumVMs:        vms,
		},
		GenSeed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("vc2m-server: demo inventory submitted as %s\n", run.ID())
	return nil
}
