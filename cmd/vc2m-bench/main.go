// vc2m-bench runs the repository's fixed macro-benchmark suite (hypersim
// event-loop throughput, existing-CSA demand evaluation, per-allocator
// Allocate cost, schedulability-sweep throughput) and writes a
// machine-readable BENCH_<stamp>.json report.
//
// The committed reports under results/ form the performance trajectory:
// compare two with `vc2m-bench -compare old.json new.json`, or eyeball the
// "speedup" fields, which pit each optimized hot path against its retained
// reference implementation. CI runs `vc2m-bench -quick -check <baseline>`
// to catch schema drift (renamed or dropped benchmarks) without caring
// about machine-dependent values.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"vc2m/internal/bench"
	"vc2m/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: every exit path unwinds through it
// instead of os.Exit-ing mid-function.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "smoke-test sizes (CI); values are not comparable to full runs")
	runs := fs.Int("runs", 0, "repetitions per benchmark, median reported (default 3, 1 with -quick)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "worker count for the sweep benchmark")
	out := fs.String("out", "results", "directory for BENCH_<stamp>.json ('-' writes JSON to stdout)")
	only := fs.String("only", "", "run only benchmarks whose names start with this prefix (e.g. 'churn'); the report is then a subset, not a -check baseline")
	check := fs.String("check", "", "compare the run's JSON schema against this committed baseline; exit 1 on drift")
	compare := fs.String("compare", "", "compare a second report file against -check (no benchmarks are run)")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-bench:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-bench")
	if err := realMain(*quick, *runs, *parallel, *out, *only, *check, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-bench:", err)
		return 1
	}
	return 0
}

func realMain(quick bool, runs, parallel int, out, only, check, compare string) error {
	if compare != "" {
		if check == "" {
			return fmt.Errorf("-compare requires -check <baseline.json>")
		}
		baseRep, err := loadReport(check)
		if err != nil {
			return err
		}
		curRep, err := loadReport(compare)
		if err != nil {
			return err
		}
		printComparison(baseRep, curRep)
		return nil
	}

	if only != "" && check != "" {
		return fmt.Errorf("-only produces a subset report and cannot be schema-checked with -check")
	}
	rep, err := bench.RunAll(bench.Options{Quick: quick, Runs: runs, Parallel: parallel, Only: only})
	if err != nil {
		return err
	}
	rep.Stamp = time.Now().UTC().Format("20060102T150405Z") //vc2m:wallclock report stamp

	for _, r := range rep.Results {
		line := fmt.Sprintf("%-28s %14.0f %s", r.Name, r.Value, r.Metric)
		if r.Baseline != nil {
			line += fmt.Sprintf("  (%.2fx vs %s)", r.Speedup, r.Baseline.Name)
		}
		fmt.Fprintln(os.Stderr, line)
	}

	data, err := rep.Marshal()
	if err != nil {
		return err
	}
	if out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(out, "BENCH_"+rep.Stamp+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if check != "" {
		baseRep, err := loadReport(check)
		if err != nil {
			return err
		}
		diffs := bench.CompareSchema(baseRep, rep)
		if len(diffs) > 0 {
			fmt.Fprintln(os.Stderr, "benchmark schema drifted from committed baseline:")
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, "  -", d)
			}
			return fmt.Errorf("schema drift against %s", check)
		}
		fmt.Fprintf(os.Stderr, "schema matches %s\n", check)
	}
	return nil
}

func loadReport(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.ParseReport(data)
}

// printComparison renders a benchstat-style old/new table for two reports.
func printComparison(old, new_ *bench.Report) {
	fmt.Printf("%-28s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	newByName := map[string]bench.Result{}
	for _, r := range new_.Results {
		newByName[r.Name] = r
	}
	for _, o := range old.Results {
		n, ok := newByName[o.Name]
		if !ok {
			fmt.Printf("%-28s %14.0f %14s\n", o.Name, o.Value, "(gone)")
			continue
		}
		delta := "n/a"
		if o.Value > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.Value-o.Value)/o.Value)
		}
		fmt.Printf("%-28s %14.0f %14.0f %8s\n", o.Name, o.Value, n.Value, delta)
	}
}
