// vc2m-sched regenerates the schedulability experiments of the paper's
// Figures 2 and 3: the fraction of schedulable tasksets as a function of
// taskset reference utilization, for the five solutions, on a chosen
// platform and task-utilization distribution.
//
// Figure 2: -dist uniform with -platform A, B and C.
// Figure 3: -platform A with -dist light, medium and heavy.
//
// The full paper-scale run is -tasksets 50 over utilization 0.1..2.0 step
// 0.05 (1950 tasksets); the default uses a coarser grid so the command
// finishes in seconds. Output is a utilization-indexed table of fractions
// plus a knee/area summary. An interrupt (SIGINT or SIGTERM) stops the
// sweep at the next utilization point, flushes the completed points'
// tables, CSVs and metrics, and exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/plot"
	"vc2m/internal/profutil"
	"vc2m/internal/provenance"
	"vc2m/internal/report"
	"vc2m/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the defer-safe driver: deferred closers (profiles, CSV files)
// execute on every exit path, and an interrupted sweep still flushes the
// utilization points completed before the signal.
func run(args []string) int {
	fs := flag.NewFlagSet("vc2m-sched", flag.ContinueOnError)
	platform := fs.String("platform", "A", "platform configuration: A (4 cores, 20 partitions), B (6, 20) or C (4, 12)")
	dist := fs.String("dist", "uniform", "task utilization distribution: uniform, light, medium or heavy")
	tasksets := fs.Int("tasksets", 10, "independent tasksets per utilization point (paper: 50)")
	min := fs.Float64("min", 0.1, "minimum taskset reference utilization")
	max := fs.Float64("max", 2.0, "maximum taskset reference utilization")
	step := fs.Float64("step", 0.1, "utilization step (paper: 0.05)")
	seed := fs.Int64("seed", 1, "random seed")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	doPlot := fs.Bool("plot", false, "render the curves as an ASCII chart (the figure itself)")
	csvPath := fs.String("csv", "", "also write the fraction series to this CSV file")
	parallel := fs.Int("parallel", runtime.NumCPU(), "tasksets analyzed concurrently (results are identical at any value; use 1 when timing)")
	showMetrics := fs.Bool("metrics", false, "collect and print per-solution search-effort metrics (dbf/sbf evaluations, phase timings, ...)")
	metricsCSV := fs.String("metrics-csv", "", "also write the per-solution metrics to this CSV file (implies -metrics)")
	provFlag := fs.Bool("provenance", false, "record per-taskset accept/reject provenance (implied by -report-out)")
	reportOut := fs.String("report-out", "", "write a unified sweep report JSON here (inspect with vc2m-report)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	logCfg := obs.LogFlags(fs, "warn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	lg, err := logCfg.Build(os.Stderr, obs.GetBuildInfo().LogAttrs()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-sched:", err)
		return 2
	}
	lg.Debug("starting", "cmd", "vc2m-sched")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := realMain(ctx, schedFlags{
		platform: *platform, dist: *dist, tasksets: *tasksets,
		min: *min, max: *max, step: *step, seed: *seed,
		quiet: *quiet, doPlot: *doPlot, csvPath: *csvPath, parallel: *parallel,
		showMetrics: *showMetrics, metricsCSV: *metricsCSV,
		provenance: *provFlag, reportOut: *reportOut,
		cpuprofile: *cpuprofile, memprofile: *memprofile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "vc2m-sched:", err)
		return 1
	}
	return 0
}

type schedFlags struct {
	platform    string
	dist        string
	tasksets    int
	min         float64
	max         float64
	step        float64
	seed        int64
	quiet       bool
	doPlot      bool
	csvPath     string
	parallel    int
	showMetrics bool
	metricsCSV  string
	provenance  bool
	reportOut   string
	cpuprofile  string
	memprofile  string
}

func realMain(ctx context.Context, f schedFlags) error {
	stopProf, err := profutil.Start(f.cpuprofile, f.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "vc2m-sched: profile:", perr)
		}
	}()

	plat, err := model.PlatformByName(f.platform)
	if err != nil {
		return err
	}
	d, err := workload.ParseDistribution(f.dist)
	if err != nil {
		return err
	}

	cfg := experiment.SchedConfig{
		Platform:         plat,
		Dist:             d,
		UtilMin:          f.min,
		UtilMax:          f.max,
		UtilStep:         f.step,
		TasksetsPerPoint: f.tasksets,
		Seed:             f.seed,
		Parallel:         f.parallel,
		CollectMetrics:   f.showMetrics || f.metricsCSV != "",
		Context:          ctx,
	}
	var prov *provenance.Recorder
	if f.provenance || f.reportOut != "" {
		prov = provenance.New()
		cfg.Provenance = prov
	}
	if !f.quiet {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rutilization points: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	res, runErr := experiment.RunSchedulability(cfg)
	if res == nil {
		return runErr
	}
	// On an interrupt res holds the completed utilization points; flush
	// everything below, then surface the error.
	fmt.Println(res.FractionTable())
	fmt.Println(res.Summary())

	if f.reportOut != "" {
		doc := report.BuildSweep(report.SweepInput{
			Title:      fmt.Sprintf("vc2m-sched %s/%s sweep (seed %d)", plat.Name, d, f.seed),
			Seed:       f.seed,
			Platform:   plat,
			Sweep:      res.ReportSweep(),
			Provenance: prov,
		})
		if err := report.Save(f.reportOut, doc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", f.reportOut)
	}
	if f.provenance && prov != nil {
		pareto := report.RejectionPareto(&report.Document{Decisions: prov.Decisions()})
		fmt.Printf("# %d decision(s) recorded; rejections by binding resource:\n", prov.Len())
		for _, e := range pareto {
			fmt.Printf("  %-6s %d\n", e.Resource, e.Count)
		}
	}

	if cfg.CollectMetrics {
		fmt.Println("# per-solution search-effort metrics")
		fmt.Print(res.MetricsTable())
	}
	if f.metricsCSV != "" {
		if err := writeCSVFile(f.metricsCSV, res.WriteMetricsCSV); err != nil {
			return err
		}
	}
	if f.csvPath != "" {
		if err := writeCSVFile(f.csvPath, res.WriteFractionsCSV); err != nil {
			return err
		}
	}

	if f.doPlot {
		var series []plot.Series
		for _, s := range res.FractionSeries() {
			series = append(series, plot.Series{Name: s.Name, X: s.X, Y: s.Y})
		}
		chart, err := plot.Render(plot.Config{
			Title: fmt.Sprintf("Fraction of schedulable tasksets (platform %s, %s)", plat.Name, d),
			YMin:  0, YMax: 1,
			XLabel: "taskset reference utilization", YLabel: "schedulable fraction",
		}, series...)
		if err != nil {
			return err
		}
		fmt.Println(chart)
	}
	return runErr
}

// writeCSVFile streams one CSV writer into path, closing the file on
// every path.
func writeCSVFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
