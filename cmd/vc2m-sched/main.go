// vc2m-sched regenerates the schedulability experiments of the paper's
// Figures 2 and 3: the fraction of schedulable tasksets as a function of
// taskset reference utilization, for the five solutions, on a chosen
// platform and task-utilization distribution.
//
// Figure 2: -dist uniform with -platform A, B and C.
// Figure 3: -platform A with -dist light, medium and heavy.
//
// The full paper-scale run is -tasksets 50 over utilization 0.1..2.0 step
// 0.05 (1950 tasksets); the default uses a coarser grid so the command
// finishes in seconds. Output is a utilization-indexed table of fractions
// plus a knee/area summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/plot"
	"vc2m/internal/profutil"
	"vc2m/internal/provenance"
	"vc2m/internal/report"
	"vc2m/internal/workload"
)

func main() {
	platform := flag.String("platform", "A", "platform configuration: A (4 cores, 20 partitions), B (6, 20) or C (4, 12)")
	dist := flag.String("dist", "uniform", "task utilization distribution: uniform, light, medium or heavy")
	tasksets := flag.Int("tasksets", 10, "independent tasksets per utilization point (paper: 50)")
	min := flag.Float64("min", 0.1, "minimum taskset reference utilization")
	max := flag.Float64("max", 2.0, "maximum taskset reference utilization")
	step := flag.Float64("step", 0.1, "utilization step (paper: 0.05)")
	seed := flag.Int64("seed", 1, "random seed")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	doPlot := flag.Bool("plot", false, "render the curves as an ASCII chart (the figure itself)")
	csvPath := flag.String("csv", "", "also write the fraction series to this CSV file")
	parallel := flag.Int("parallel", runtime.NumCPU(), "tasksets analyzed concurrently (results are identical at any value; use 1 when timing)")
	showMetrics := flag.Bool("metrics", false, "collect and print per-solution search-effort metrics (dbf/sbf evaluations, phase timings, ...)")
	metricsCSV := flag.String("metrics-csv", "", "also write the per-solution metrics to this CSV file (implies -metrics)")
	provFlag := flag.Bool("provenance", false, "record per-taskset accept/reject provenance (implied by -report-out)")
	reportOut := flag.String("report-out", "", "write a unified sweep report JSON here (inspect with vc2m-report)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profutil.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	plat, err := model.PlatformByName(*platform)
	if err != nil {
		fatal(err)
	}
	d, err := workload.ParseDistribution(*dist)
	if err != nil {
		fatal(err)
	}

	cfg := experiment.SchedConfig{
		Platform:         plat,
		Dist:             d,
		UtilMin:          *min,
		UtilMax:          *max,
		UtilStep:         *step,
		TasksetsPerPoint: *tasksets,
		Seed:             *seed,
		Parallel:         *parallel,
		CollectMetrics:   *showMetrics || *metricsCSV != "",
	}
	var prov *provenance.Recorder
	if *provFlag || *reportOut != "" {
		prov = provenance.New()
		cfg.Provenance = prov
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rutilization points: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	res, err := experiment.RunSchedulability(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.FractionTable())
	fmt.Println(res.Summary())

	if *reportOut != "" {
		doc := report.BuildSweep(report.SweepInput{
			Title:      fmt.Sprintf("vc2m-sched %s/%s sweep (seed %d)", plat.Name, d, *seed),
			Seed:       *seed,
			Platform:   plat,
			Sweep:      res.ReportSweep(),
			Provenance: prov,
		})
		if err := report.Save(*reportOut, doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s (inspect with vc2m-report)\n", *reportOut)
	}
	if *provFlag && prov != nil {
		pareto := report.RejectionPareto(&report.Document{Decisions: prov.Decisions()})
		fmt.Printf("# %d decision(s) recorded; rejections by binding resource:\n", prov.Len())
		for _, e := range pareto {
			fmt.Printf("  %-6s %d\n", e.Resource, e.Count)
		}
	}

	if cfg.CollectMetrics {
		fmt.Println("# per-solution search-effort metrics")
		fmt.Print(res.MetricsTable())
	}
	if *metricsCSV != "" {
		f, err := os.Create(*metricsCSV)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteMetricsCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsCSV)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteFractionsCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}

	if *doPlot {
		var series []plot.Series
		for _, s := range res.FractionSeries() {
			series = append(series, plot.Series{Name: s.Name, X: s.X, Y: s.Y})
		}
		chart, err := plot.Render(plot.Config{
			Title: fmt.Sprintf("Fraction of schedulable tasksets (platform %s, %s)", plat.Name, d),
			YMin:  0, YMax: 1,
			XLabel: "taskset reference utilization", YLabel: "schedulable fraction",
		}, series...)
		if err != nil {
			fatal(err)
		}
		fmt.Println(chart)
	}

	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vc2m-sched:", err)
	os.Exit(1)
}
