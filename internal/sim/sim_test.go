package sim

import (
	"testing"

	"vc2m/internal/timeunit"
)

func TestEmptyEngine(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine should return false")
	}
	if e.Now() != 0 {
		t.Error("clock should start at 0")
	}
	if n := e.Run(1000); n != 0 {
		t.Errorf("Run on empty engine executed %d events", n)
	}
}

func TestEventOrderByTime(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, PrioDefault, func() { order = append(order, 3) })
	e.At(10, PrioDefault, func() { order = append(order, 1) })
	e.At(20, PrioDefault, func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Errorf("clock = %v, want 30", e.Now())
	}
}

func TestEventOrderByPriority(t *testing.T) {
	var e Engine
	var order []string
	e.At(10, PrioSchedule, func() { order = append(order, "sched") })
	e.At(10, PrioReplenish, func() { order = append(order, "replenish") })
	e.At(10, PrioRelease, func() { order = append(order, "release") })
	e.Run(100)
	want := []string{"replenish", "release", "sched"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventOrderBySequence(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, PrioDefault, func() { order = append(order, i) })
	}
	e.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-priority events reordered: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	var at timeunit.Ticks
	e.At(100, PrioDefault, func() {
		e.After(50, PrioDefault, func() { at = e.Now() })
	})
	e.Run(1000)
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestPastEventPanics(t *testing.T) {
	var e Engine
	e.At(100, PrioDefault, func() {})
	e.Run(1000)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(50, PrioDefault, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, PrioDefault, func() {})
}

func TestRunHorizon(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, PrioDefault, func() { fired++ })
	e.At(20, PrioDefault, func() { fired++ })
	e.At(30, PrioDefault, func() { fired++ })
	if n := e.Run(20); n != 2 {
		t.Errorf("Run(20) executed %d events, want 2", n)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	var e Engine
	e.At(10, PrioDefault, func() {})
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("clock = %v, want 500", e.Now())
	}
}

func TestPeriodicSelfRescheduling(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(100, PrioReplenish, tick)
	}
	e.At(0, PrioReplenish, tick)
	e.Run(1000)
	// Fires at 0, 100, ..., 1000 inclusive.
	if count != 11 {
		t.Errorf("periodic event fired %d times, want 11", count)
	}
}

func TestStepsCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 5; i++ {
		e.At(timeunit.Ticks(i), PrioDefault, func() {})
	}
	e.Run(100)
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	build := func() ([]int, *Engine) {
		var order []int
		e := &Engine{}
		for i := 0; i < 100; i++ {
			i := i
			e.At(timeunit.Ticks(i%7), (i*3)%4, func() { order = append(order, i) })
		}
		return order, e
	}
	o1, e1 := build()
	e1.Run(100)
	r1 := append([]int(nil), o1...)
	o2, e2 := build()
	e2.Run(100)
	for i := range r1 {
		if r1[i] != o2[i] {
			t.Fatal("identical schedules executed in different orders")
		}
	}
}
