// Package sim provides the deterministic discrete-event engine underneath
// the hypervisor simulator (package hypersim) and the interference
// workbench (package interference).
//
// Events are ordered by (time, priority, sequence): two events at the same
// instant fire in priority order, and two events with equal priority fire
// in the order they were scheduled. This total order makes every simulation
// in this repository reproducible bit-for-bit, which the well-regulated
// VCPU execution of vC2M (Theorem 2) depends on: its proof requires a
// deterministic tie-breaking rule among VCPUs with equal deadlines, and a
// nondeterministic event queue would silently break it.
package sim

import (
	"fmt"

	"vc2m/internal/timeunit"
)

// Priorities for simultaneous events. Lower fires first. Budget refill must
// precede scheduling so a replenished VCPU is visible to the scheduler
// invoked at the same instant; job releases precede scheduling for the same
// reason.
const (
	PrioReplenish = 0
	PrioRelease   = 1
	PrioRegulator = 2
	PrioSchedule  = 3
	PrioDefault   = 5
)

type event struct {
	at   timeunit.Ticks
	prio int
	seq  uint64
	fn   func()
}

// less is the (time, priority, sequence) total order.
func (a *event) less(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use with the clock at 0.
//
// The event queue is a binary min-heap stored by value in one slice. The
// engine executes one event per scheduler slice, budget replenishment and
// job release of every simulated run, so the queue is the hottest data
// structure in the repository: keeping events inline (instead of the
// container/heap pattern of one pointer allocation plus an interface
// conversion per event) roughly halves the event-loop's allocation count
// and keeps sift operations on contiguous memory.
type Engine struct {
	now    timeunit.Ticks
	seq    uint64
	queue  []event
	nSteps uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() timeunit.Ticks { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t with the given priority. It
// panics if t is in the past (events may be scheduled for the current
// instant).
func (e *Engine) At(t timeunit.Ticks, prio int, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, now is %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, prio: prio, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d timeunit.Ticks, prio int, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, prio, fn)
}

// push inserts ev and sifts it up to its heap position. The sift shifts
// displaced parents down into the hole and writes ev once at its final
// slot, instead of swapping at every level: each event carries a closure
// pointer, so every write pays a GC write barrier, and halving the writes
// measurably speeds up the event loop.
func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.less(&q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

// pop removes and returns the minimum event. It must not be called on an
// empty queue. Like push, the sift moves the hole down and writes the
// displaced last element once, to halve the write-barrier traffic.
func (e *Engine) pop() event {
	q := e.queue
	min := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the closure for GC
	e.queue = q[:n]
	q = e.queue

	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && q[r].less(&q[l]) {
			child = r
		}
		if !q[child].less(&last) {
			break
		}
		q[i] = q[child]
		i = child
	}
	if n > 0 {
		q[i] = last
	}
	return min
}

// Step executes the next event and reports whether one was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nSteps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// the horizon. The clock is left at the last executed event (or advanced to
// the horizon if RunTo semantics are needed, use RunUntil). It returns the
// number of events executed.
func (e *Engine) Run(horizon timeunit.Ticks) uint64 {
	var n uint64
	for len(e.queue) > 0 && e.queue[0].at <= horizon {
		e.Step()
		n++
	}
	return n
}

// RunUntil is Run followed by advancing the clock to the horizon, so that
// subsequent After calls measure from the horizon.
func (e *Engine) RunUntil(horizon timeunit.Ticks) uint64 {
	n := e.Run(horizon)
	if e.now < horizon {
		e.now = horizon
	}
	return n
}
