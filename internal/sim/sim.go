// Package sim provides the deterministic discrete-event engine underneath
// the hypervisor simulator (package hypersim) and the interference
// workbench (package interference).
//
// Events are ordered by (time, priority, sequence): two events at the same
// instant fire in priority order, and two events with equal priority fire
// in the order they were scheduled. This total order makes every simulation
// in this repository reproducible bit-for-bit, which the well-regulated
// VCPU execution of vC2M (Theorem 2) depends on: its proof requires a
// deterministic tie-breaking rule among VCPUs with equal deadlines, and a
// nondeterministic event queue would silently break it.
package sim

import (
	"container/heap"
	"fmt"

	"vc2m/internal/timeunit"
)

// Priorities for simultaneous events. Lower fires first. Budget refill must
// precede scheduling so a replenished VCPU is visible to the scheduler
// invoked at the same instant; job releases precede scheduling for the same
// reason.
const (
	PrioReplenish = 0
	PrioRelease   = 1
	PrioRegulator = 2
	PrioSchedule  = 3
	PrioDefault   = 5
)

type event struct {
	at   timeunit.Ticks
	prio int
	seq  uint64
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use with the clock at 0.
type Engine struct {
	now    timeunit.Ticks
	seq    uint64
	queue  eventQueue
	nSteps uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() timeunit.Ticks { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t with the given priority. It
// panics if t is in the past (events may be scheduled for the current
// instant).
func (e *Engine) At(t timeunit.Ticks, prio int, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, now is %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, prio: prio, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d timeunit.Ticks, prio int, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, prio, fn)
}

// Step executes the next event and reports whether one was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.nSteps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// the horizon. The clock is left at the last executed event (or advanced to
// the horizon if RunTo semantics are needed, use RunUntil). It returns the
// number of events executed.
func (e *Engine) Run(horizon timeunit.Ticks) uint64 {
	var n uint64
	for len(e.queue) > 0 && e.queue[0].at <= horizon {
		e.Step()
		n++
	}
	return n
}

// RunUntil is Run followed by advancing the clock to the horizon, so that
// subsequent After calls measure from the horizon.
func (e *Engine) RunUntil(horizon timeunit.Ticks) uint64 {
	n := e.Run(horizon)
	if e.now < horizon {
		e.now = horizon
	}
	return n
}
