package metrics

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// TimerStats is the rendered form of one timing summary. All values are in
// seconds.
type TimerStats struct {
	N    int     `json:"n"`
	Min  float64 `json:"min_sec"`
	Mean float64 `json:"mean_sec"`
	Max  float64 `json:"max_sec"`
	Sum  float64 `json:"sum_sec"`
}

// Snapshot is an immutable view of a Recorder's contents, the unit of
// rendering and serialization. Empty maps are nil so that a round trip
// through JSON compares equal.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]float64    `json:"gauges,omitempty"`
	Timers   map[string]TimerStats `json:"timers,omitempty"`
}

// Empty reports whether nothing was recorded.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Timers) == 0
}

// JSON renders the snapshot as indented JSON with deterministic key order
// (encoding/json sorts map keys).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSnapshot is the inverse of JSON.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: parse snapshot: %w", err)
	}
	return s, nil
}

// Table renders the snapshot as an aligned text table: one block per kind
// (counters, gauges, timers), rows sorted by name. An empty snapshot
// renders as a single informative line.
func (s Snapshot) Table() string {
	if s.Empty() {
		return "(no metrics recorded)\n"
	}
	width := 0
	for _, m := range [][]string{sortedKeys(s.Counters), sortedKeys(s.Gauges), sortedKeys(s.Timers)} {
		for _, k := range m {
			if len(k) > width {
				width = len(k)
			}
		}
	}
	var b strings.Builder
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "%-*s %14s\n", width, "counter", "value")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "%-*s %14d\n", width, k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "%-*s %14s\n", width, "gauge", "value")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "%-*s %14.6g\n", width, k, s.Gauges[k])
		}
	}
	if len(s.Timers) > 0 {
		fmt.Fprintf(&b, "%-*s %8s %12s %12s %12s %12s\n",
			width, "timer", "n", "min(ms)", "mean(ms)", "max(ms)", "sum(ms)")
		for _, k := range sortedKeys(s.Timers) {
			t := s.Timers[k]
			fmt.Fprintf(&b, "%-*s %8d %12.4f %12.4f %12.4f %12.4f\n",
				width, k, t.N, t.Min*1e3, t.Mean*1e3, t.Max*1e3, t.Sum*1e3)
		}
	}
	return b.String()
}

// CSVHeader returns the column names matching CSVRows.
func CSVHeader() []string {
	return []string{"scope", "kind", "name", "value", "n", "min_sec", "mean_sec", "max_sec"}
}

// CSVRows flattens the snapshot into CSV records (without header): counters
// and gauges fill only the value column; timers fill value with the sum of
// observations plus the n/min/mean/max columns. The scope column lets rows
// from several snapshots (e.g. one per solution) share one file.
func (s Snapshot) CSVRows(scope string) [][]string {
	var rows [][]string
	for _, k := range sortedKeys(s.Counters) {
		rows = append(rows, []string{scope, "counter", k,
			strconv.FormatInt(s.Counters[k], 10), "", "", "", ""})
	}
	for _, k := range sortedKeys(s.Gauges) {
		rows = append(rows, []string{scope, "gauge", k,
			formatFloat(s.Gauges[k]), "", "", "", ""})
	}
	for _, k := range sortedKeys(s.Timers) {
		t := s.Timers[k]
		rows = append(rows, []string{scope, "timer", k,
			formatFloat(t.Sum), strconv.Itoa(t.N),
			formatFloat(t.Min), formatFloat(t.Mean), formatFloat(t.Max)})
	}
	return rows
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
