package metrics

import "testing"

// BenchmarkNilRecorder measures the disabled-path cost every instrumented
// call site pays: a nil check. Compare against BenchmarkLiveRecorder for
// the enabled-path cost (mutex + map update).
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Add("csa.sbf.evals", 64)
	}
}

func BenchmarkLiveRecorder(b *testing.B) {
	r := New()
	for i := 0; i < b.N; i++ {
		r.Add("csa.sbf.evals", 64)
	}
}

func BenchmarkNilTime(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		r.Time("alloc.phase2.seconds")()
	}
}
