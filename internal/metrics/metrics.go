// Package metrics provides the lightweight counters/gauges/timers recorder
// that instruments vC2M's analysis stack: the compositional analyses
// (dbf/sbf checkpoint evaluations, minimum-budget searches), the allocation
// heuristic (KMeans iterations, permutations tried, Phase 2 partition
// grants, Phase 3 migrations), the hypervisor simulator (context switches,
// throttles, replenishments) and the experiment harnesses (per-point wall
// time). It exists so that wall-clock differences between solutions — e.g.
// the order-of-magnitude running-time gap of the paper's Figure 4 — can be
// explained from counter evidence rather than observed as opaque totals.
//
// Design constraints, in order:
//
//   - Disabled must be free: every method is safe and a no-op on a nil
//     *Recorder, so instrumented code paths carry only a nil check when
//     metrics are off. Call sites in hot loops accumulate locally and add
//     once per call.
//   - Deterministic: counters are int64 sums, so totals are bit-identical
//     across runs with the same seed regardless of goroutine interleaving.
//   - Concurrent: a Recorder may be shared by the goroutines of a parallel
//     schedulability sweep; all methods are mutex-protected.
//
// Timing histograms are backed by stats.Summary (min/mean/max/stddev) and
// record wall-clock observations, so — unlike counters — their values vary
// run to run; comparisons should lean on the counters.
package metrics

import (
	"sort"
	"sync"
	"time"

	"vc2m/internal/stats"
)

// Recorder accumulates named counters, gauges and timing summaries. The
// zero value is NOT ready for use — construct with New. A nil *Recorder is
// a valid no-op sink: every method checks the receiver, so instrumented
// code never needs its own guard.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	timers   map[string]*stats.Summary
}

// New returns an empty, enabled recorder.
func New() *Recorder {
	return &Recorder{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		timers:   map[string]*stats.Summary{},
	}
}

// Enabled reports whether the recorder actually records (i.e. is non-nil).
// Instrumented call sites that would pay to *assemble* a metric (not just
// to report it) may use this to skip the assembly entirely.
func (r *Recorder) Enabled() bool { return r != nil }

// Inc adds 1 to the named counter.
func (r *Recorder) Inc(name string) {
	if r == nil {
		return
	}
	r.Add(name, 1)
}

// Add adds delta to the named counter, creating it at zero first. Adding a
// zero delta registers the counter, which makes "this solution performed 0
// evaluations" visible in renderings.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets the named gauge to v (last write wins).
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records one observation (in seconds, by convention) into the
// named timing summary.
func (r *Recorder) Observe(name string, seconds float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t := r.timers[name]
	if t == nil {
		t = &stats.Summary{}
		r.timers[name] = t
	}
	t.Add(seconds)
	r.mu.Unlock()
}

// Time starts a wall-clock measurement and returns the function that stops
// it and records the elapsed seconds under name. On a nil recorder the
// clock is never read.
func (r *Recorder) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()                                            //vc2m:wallclock timers measure wall time by design
	return func() { r.Observe(name, time.Since(start).Seconds()) } //vc2m:wallclock
}

// Counter returns the named counter's value (0 when absent).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the named gauge's value (0 when absent).
func (r *Recorder) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Reset discards everything recorded so far.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = map[string]int64{}
	r.gauges = map[string]float64{}
	r.timers = map[string]*stats.Summary{}
	r.mu.Unlock()
}

// Snapshot returns an immutable copy of everything recorded so far. A nil
// recorder yields the zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters { //vc2m:ordered map-to-map copy
			s.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges { //vc2m:ordered map-to-map copy
			s.Gauges[k] = v
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStats, len(r.timers))
		for k, t := range r.timers { //vc2m:ordered map-to-map copy
			s.Timers[k] = TimerStats{
				N:    t.N(),
				Min:  t.Min(),
				Mean: t.Mean(),
				Max:  t.Max(),
				Sum:  t.Mean() * float64(t.N()),
			}
		}
	}
	return s
}

// sortedKeys returns the map's keys in sorted order, the deterministic
// iteration order used by every rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //vc2m:ordered keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
