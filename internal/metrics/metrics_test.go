package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderSafe exercises every method on a nil *Recorder — the
// default state of every instrumented call site.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	r.Inc("a")
	r.Add("a", 5)
	r.SetGauge("g", 1.5)
	r.Observe("t", 0.25)
	stop := r.Time("t")
	stop()
	r.Reset()
	if got := r.Counter("a"); got != 0 {
		t.Errorf("nil Counter = %d, want 0", got)
	}
	if got := r.Gauge("g"); got != 0 {
		t.Errorf("nil Gauge = %v, want 0", got)
	}
	if s := r.Snapshot(); !s.Empty() {
		t.Errorf("nil Snapshot not empty: %+v", s)
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	r.Inc("x")
	r.Add("x", 9)
	r.Add("zero", 0) // registers the key
	r.SetGauge("g", 2)
	r.SetGauge("g", 3) // last write wins
	if got := r.Counter("x"); got != 10 {
		t.Errorf("Counter(x) = %d, want 10", got)
	}
	if got := r.Counter("zero"); got != 0 {
		t.Errorf("Counter(zero) = %d, want 0", got)
	}
	if got := r.Gauge("g"); got != 3 {
		t.Errorf("Gauge(g) = %v, want 3", got)
	}
	s := r.Snapshot()
	if _, ok := s.Counters["zero"]; !ok {
		t.Error("zero-delta Add did not register the counter in the snapshot")
	}
	r.Reset()
	if !r.Snapshot().Empty() {
		t.Error("Reset left data behind")
	}
}

// TestConcurrentDeterminism drives a shared recorder from many goroutines
// (as the parallel schedulability sweep does) and checks the counter totals
// are the exact sums regardless of interleaving.
func TestConcurrentDeterminism(t *testing.T) {
	const workers, perWorker = 16, 1000
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc("events")
				r.Add("bulk", 3)
				r.Observe("lat", 0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("events"); got != workers*perWorker {
		t.Errorf("events = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("bulk"); got != 3*workers*perWorker {
		t.Errorf("bulk = %d, want %d", got, 3*workers*perWorker)
	}
	if got := r.Snapshot().Timers["lat"].N; got != workers*perWorker {
		t.Errorf("timer n = %d, want %d", got, workers*perWorker)
	}
}

// TestRepeatedRunsBitIdentical replays the same deterministic recording
// twice and requires identical snapshots (counters and gauges; timers use
// synthetic observations so they are deterministic here too).
func TestRepeatedRunsBitIdentical(t *testing.T) {
	record := func() Snapshot {
		r := New()
		for i := 0; i < 100; i++ {
			r.Add("csa.sbf.evals", int64(i%7))
			r.Inc("alloc.phase2.grants")
			r.Observe("alloc.phase1.seconds", float64(i)*0.001)
		}
		r.SetGauge("m", 4)
		return r.Snapshot()
	}
	a, b := record(), record()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated runs differ:\n%+v\n%+v", a, b)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add("c.one", 42)
	r.Add("c.two", 7)
	r.SetGauge("g.load", 0.75)
	r.Observe("t.phase", 0.5)
	r.Observe("t.phase", 1.5)
	want := r.Snapshot()

	data, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JSON round trip changed the snapshot:\nwant %+v\ngot  %+v", want, got)
	}

	// The empty snapshot round-trips too.
	data, err = Snapshot{}.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Errorf("empty snapshot round trip not empty: %+v", got)
	}

	if _, err := ParseSnapshot([]byte("{nope")); err == nil {
		t.Error("ParseSnapshot accepted malformed JSON")
	}
}

func TestTableRendering(t *testing.T) {
	r := New()
	r.Add("b.counter", 2)
	r.Add("a.counter", 1)
	r.SetGauge("g.one", 1.25)
	r.Observe("t.slow", 0.002)
	table := r.Snapshot().Table()

	for _, want := range []string{"a.counter", "b.counter", "g.one", "t.slow", "counter", "gauge", "timer"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// Counters render sorted by name.
	if strings.Index(table, "a.counter") > strings.Index(table, "b.counter") {
		t.Errorf("counters not sorted:\n%s", table)
	}
	if got := (Snapshot{}).Table(); !strings.Contains(got, "no metrics") {
		t.Errorf("empty table = %q", got)
	}
}

func TestCSVRows(t *testing.T) {
	r := New()
	r.Add("c", 5)
	r.SetGauge("g", 1.5)
	r.Observe("t", 2)
	rows := r.Snapshot().CSVRows("solA")
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	header := CSVHeader()
	for _, row := range rows {
		if len(row) != len(header) {
			t.Fatalf("row width %d != header width %d", len(row), len(header))
		}
		if row[0] != "solA" {
			t.Errorf("scope = %q, want solA", row[0])
		}
	}
	if rows[0][1] != "counter" || rows[0][3] != "5" {
		t.Errorf("counter row = %v", rows[0])
	}
	if rows[2][1] != "timer" || rows[2][4] != "1" {
		t.Errorf("timer row = %v", rows[2])
	}
}

func TestTimerStats(t *testing.T) {
	r := New()
	r.Observe("t", 1)
	r.Observe("t", 3)
	ts := r.Snapshot().Timers["t"]
	if ts.N != 2 || ts.Min != 1 || ts.Max != 3 || ts.Mean != 2 || ts.Sum != 4 {
		t.Errorf("timer stats = %+v", ts)
	}
}
