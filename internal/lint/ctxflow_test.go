package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

// TestCtxFlowGolden pins the context-flow rules: no context.Background
// below the CLI layer, no contexts in struct fields, and blocking
// selects/loops must observe cancellation.
func TestCtxFlowGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/ctxflow", lint.CtxFlow)
}
