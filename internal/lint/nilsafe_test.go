package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

// TestNilSafeGolden drives the interface-registry path: fixture types
// implementing the real trace.Sink.
func TestNilSafeGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/nilsafe", lint.NilSafe)
}

// TestNilSafeConcreteHookGolden drives the concrete-type registry path
// (the one that covers metrics.Recorder on the real tree) against a
// fixture registry.
func TestNilSafeConcreteHookGolden(t *testing.T) {
	analyzer := lint.NewNilSafe([]lint.HookSpec{
		{Pkg: "vc2m/internal/lint/testdata/src/nilsafehooks", Type: "Recorder"},
	})
	linttest.RunGolden(t, "testdata/src/nilsafehooks", analyzer)
}
