package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

// TestNilSafeGolden drives the interface-registry path: fixture types
// implementing the real trace.Sink.
func TestNilSafeGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/nilsafe", lint.NilSafe)
}

// TestNilSafeConcreteHookGolden drives the concrete-type registry path
// (the one that covers metrics.Recorder, obs.Span and obs.Logger on the
// real tree) against a fixture registry mirroring those hook shapes.
func TestNilSafeConcreteHookGolden(t *testing.T) {
	analyzer := lint.NewNilSafe([]lint.HookSpec{
		{Pkg: "vc2m/internal/lint/testdata/src/nilsafehooks", Type: "Recorder"},
		{Pkg: "vc2m/internal/lint/testdata/src/nilsafehooks", Type: "Span"},
		{Pkg: "vc2m/internal/lint/testdata/src/nilsafehooks", Type: "Logger"},
	})
	linttest.RunGolden(t, "testdata/src/nilsafehooks", analyzer)
}
