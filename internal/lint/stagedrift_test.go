package lint_test

import (
	"strings"

	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

// TestStageDriftGolden pins the vocabulary cross-checks against a fixture
// that doubles as its own span-stage package: duplicate constants, an
// incomplete KnownStages, a rotten golden line, and annotated stage-set
// literals in all three vocabularies.
func TestStageDriftGolden(t *testing.T) {
	analyzer := lint.NewStageDrift(lint.StageDriftConfig{
		ObsPkg:        "vc2m/internal/lint/testdata/src/stagedrift",
		ProvenancePkg: "vc2m/internal/lint/testdata/src/stagedriftprov",
		GoldenFile:    "testdata/stages.golden",
	})
	linttest.RunGolden(t, "testdata/src/stagedrift", analyzer)
}

// stagesStub is a well-formed span-stage package for fixture modules: two
// constants, a complete KnownStages and a matching golden alongside it.
const stagesStub = `package stages

const (
	StageAlpha = "alpha"
	StageBeta  = "beta"
)

func KnownStages() []string { return []string{StageAlpha, StageBeta} }
`

// TestStageDriftMisuse covers the directive-misuse diagnostics that golden
// fixtures cannot express: a // want comment cannot ride on a //vc2m:
// directive line (they would share one comment group), so these cases run
// through throwaway modules instead.
func TestStageDriftMisuse(t *testing.T) {
	cases := []struct {
		name     string
		use      string // body of package use
		imports  bool   // import the stages package
		noStages bool   // leave the stages package out of the module
		wantSub  string
	}{
		{
			name: "unknown vocabulary",
			use: `//vc2m:stageset martian
var s = []string{"alpha"}
`,
			imports: true,
			wantSub: "unknown vocabulary",
		},
		{
			name: "missing vocabulary",
			use: `//vc2m:stageset
var s = []string{"alpha"}
`,
			imports: true,
			wantSub: "needs a vocabulary",
		},
		{
			name: "no composite literal in reach",
			use: `//vc2m:stageset span
var n = 42
`,
			imports: true,
			wantSub: "no composite literal",
		},
		{
			name: "span package not in the analyzed module",
			use: `//vc2m:stageset span
var s = []string{"alpha"}
`,
			noStages: true,
			wantSub:  "is not available from this package",
		},
		{
			name: "provenance package not in the analyzed module",
			use: `//vc2m:stageset provenance-subset
var s = []string{"alpha"}
`,
			noStages: true,
			wantSub:  "is not available from this package",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analyzer := lint.NewStageDrift(lint.StageDriftConfig{
				ObsPkg:        "m/stages",
				ProvenancePkg: "m/prov",
				GoldenFile:    "stages.golden",
			})
			src := "package use\n\n"
			if tc.imports {
				src += "import \"m/stages\"\n\nvar _ = stages.StageAlpha\n\n"
			}
			src += tc.use
			files := map[string]string{"use/use.go": src}
			if !tc.noStages {
				files["stages/stages.go"] = stagesStub
				files["stages/stages.golden"] = "alpha\nbeta\n"
			}
			fx := linttest.Fixture{Module: "m", Files: files}
			res := linttest.Analyze(t, fx, analyzer)
			found := false
			for _, d := range res.Diagnostics {
				if strings.Contains(d.Message, tc.wantSub) {
					found = true
				}
			}
			if !found {
				t.Errorf("no diagnostic containing %q; got %v", tc.wantSub, linttest.Messages(res.Diagnostics))
			}
		})
	}
}
