package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

func TestNondeterminismGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/nondet", lint.Nondeterminism)
}
