package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

func TestNondeterminismGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/nondet", lint.Nondeterminism)
}

// TestNondeterminismTable exercises the determinism rules over throwaway
// fixture modules: the wall-clock and global-rand bans, map-iteration
// ordering, and the //vc2m: escape hatches for each.
func TestNondeterminismTable(t *testing.T) {
	cases := []struct {
		name       string
		module     string
		files      map[string]string
		diags      int
		suppressed int
	}{
		{
			name: "time.Now and time.Since flagged",
			files: map[string]string{"a.go": `package a

import "time"

func f() time.Duration { return time.Since(time.Now()) }
`},
			diags: 2,
		},
		{
			name: "wallclock directive suppresses measurement code",
			files: map[string]string{"a.go": `package a

import "time"

func f() time.Time {
	return time.Now() //vc2m:wallclock measurement-only
}
`},
			suppressed: 1,
		},
		{
			name: "time.Sleep and timers untouched",
			files: map[string]string{"a.go": `package a

import "time"

func f() { time.Sleep(time.Millisecond) }
`},
		},
		{
			name: "global math/rand draw is mandatory (no escape hatch)",
			files: map[string]string{"a.go": `package a

import "math/rand"

func f() float64 {
	return rand.Float64() //vc2m:wallclock the wrong word, and rand has none
}
`},
			diags: 1,
		},
		{
			name: "naming a rand type is harmless, drawing from it is not",
			files: map[string]string{"a.go": `package a

import "math/rand"

func f(r *rand.Rand) *rand.Rand { return r }

func g(r *rand.Rand) float64 { return r.Float64() }
`},
			diags: 1,
		},
		{
			name:   "the rngutil package itself may touch math/rand",
			module: "vc2m",
			files: map[string]string{"internal/rngutil/r.go": `package rngutil

import "math/rand"

func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`},
		},
		{
			name: "map range flagged, sorted-keys rewrite clean",
			files: map[string]string{"a.go": `package a

import "sort"

func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for range keys {
	}
	return keys
}
`},
			diags: 1,
		},
		{
			name: "ordered directive suppresses a map range",
			files: map[string]string{"a.go": `package a

func f(m map[string]int) int {
	n := 0
	for _, v := range m { //vc2m:ordered sum is order-independent
		n += v
	}
	return n
}
`},
			suppressed: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := linttest.Analyze(t, linttest.Fixture{Module: tc.module, Files: tc.files}, lint.Nondeterminism)
			if got := len(res.Diagnostics); got != tc.diags {
				t.Errorf("diagnostics = %d, want %d: %v", got, tc.diags, linttest.Messages(res.Diagnostics))
			}
			if got := len(res.Suppressed); got != tc.suppressed {
				t.Errorf("suppressed = %d, want %d: %v", got, tc.suppressed, linttest.Messages(res.Suppressed))
			}
		})
	}
}
