package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vc2m/internal/lintkit"
)

// HookSpec registers one family of instrumentation hook types with the
// nilsafe analyzer. Exactly one of Type or Interface is set:
//
//   - Type names a concrete hook type (e.g. metrics.Recorder) checked
//     directly;
//   - Interface names an interface (e.g. trace.Sink); every named type
//     whose pointer implements it is a hook.
type HookSpec struct {
	// Pkg is the import path defining Type or Interface.
	Pkg string
	// Type is a concrete hook type's name.
	Type string
	// Interface is a hook interface's name.
	Interface string
}

// DefaultHooks are the repo's registered instrumentation hooks: every
// trace.Sink and provenance.Sink implementation (including unexported
// ones like the allocation server's pubSub broadcast sink), the
// metrics.Recorder, the provenance.Recorder, the shared trace.LineWriter
// they stream through, and the observability layer's obs.Span and
// obs.Logger handles. Their documented contract is that a nil receiver is
// the disabled state and every method is a safe no-op on it.
var DefaultHooks = []HookSpec{
	{Pkg: "vc2m/internal/trace", Interface: "Sink"},
	{Pkg: "vc2m/internal/trace", Type: "LineWriter"},
	{Pkg: "vc2m/internal/metrics", Type: "Recorder"},
	{Pkg: "vc2m/internal/provenance", Interface: "Sink"},
	{Pkg: "vc2m/internal/provenance", Type: "Recorder"},
	{Pkg: "vc2m/internal/obs", Type: "Span"},
	{Pkg: "vc2m/internal/obs", Type: "Logger"},
}

// NilSafe checks, for every registered hook type, that each exported
// pointer-receiver method begins with a nil-receiver guard, so the
// zero-cost-when-off contract can never regress silently. Accepted guard
// shapes, as the method's first statement:
//
//	if r == nil { ... }        // or r != nil
//	return r != nil            // predicate methods like Enabled
//
// An empty method body is trivially nil-safe and accepted. The check is
// mandatory — there is no suppression directive — because a single
// unguarded method turns "tracing off" into a crash.
var NilSafe = NewNilSafe(DefaultHooks)

// NewNilSafe builds a nilsafe analyzer over a custom hook registry; tests
// use it to point the analyzer at fixture types.
func NewNilSafe(hooks []HookSpec) *lintkit.Analyzer {
	a := &lintkit.Analyzer{
		Name: "nilsafe",
		Doc: "requires every exported pointer-receiver method on registered hook types " +
			"(trace.Sink implementations, metrics.Recorder) to begin with a nil-receiver guard",
	}
	a.Run = func(pass *lintkit.Pass) { runNilSafe(pass, hooks) }
	return a
}

func runNilSafe(pass *lintkit.Pass, hooks []HookSpec) {
	concrete, ifaces := resolveHooks(pass.Pkg, hooks)
	if len(concrete) == 0 && len(ifaces) == 0 {
		return
	}
	isHook := func(named *types.Named) bool {
		if concrete[named.Obj()] {
			return true
		}
		for _, iface := range ifaces {
			if types.Implements(types.NewPointer(named), iface) {
				return true
			}
		}
		return false
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			named := pointerReceiverBase(pass, fn.Recv.List[0])
			if named == nil || named.Obj().Pkg() != pass.Pkg || !isHook(named) {
				continue
			}
			if len(fn.Body.List) == 0 {
				continue // an empty body cannot dereference the receiver
			}
			recvObj := receiverVar(pass, fn.Recv.List[0])
			if recvObj == nil {
				pass.Reportf(fn.Pos(),
					"exported hook method (*%s).%s has an unnamed receiver; name it and guard nil first",
					named.Obj().Name(), fn.Name.Name)
				continue
			}
			if beginsWithNilGuard(pass, fn.Body.List[0], recvObj) {
				continue
			}
			pass.Reportf(fn.Pos(),
				"exported hook method (*%s).%s must begin with a nil-receiver guard "+
					"(hook types promise to be safe no-ops when nil)",
				named.Obj().Name(), fn.Name.Name)
		}
	}
}

// resolveHooks maps the registry onto pkg's type universe: the set of
// concrete hook type names and the hook interfaces, drawn from pkg itself
// or its direct imports.
func resolveHooks(pkg *types.Package, hooks []HookSpec) (map[*types.TypeName]bool, []*types.Interface) {
	lookup := func(path, name string) types.Object {
		var in *types.Package
		if pkg.Path() == path {
			in = pkg
		} else {
			for _, imp := range pkg.Imports() {
				if imp.Path() == path {
					in = imp
					break
				}
			}
		}
		if in == nil {
			return nil
		}
		return in.Scope().Lookup(name)
	}
	concrete := map[*types.TypeName]bool{}
	var ifaces []*types.Interface
	for _, h := range hooks {
		switch {
		case h.Type != "":
			if tn, ok := lookup(h.Pkg, h.Type).(*types.TypeName); ok {
				concrete[tn] = true
			}
		case h.Interface != "":
			if tn, ok := lookup(h.Pkg, h.Interface).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					ifaces = append(ifaces, iface)
				}
			}
		}
	}
	return concrete, ifaces
}

// pointerReceiverBase returns the named type N when the receiver is *N
// (possibly generic), and nil for value receivers.
func pointerReceiverBase(pass *lintkit.Pass, recv *ast.Field) *types.Named {
	t := pass.TypeOf(recv.Type)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, _ := ptr.Elem().(*types.Named)
	return named
}

// receiverVar returns the receiver's variable object, or nil when the
// receiver is unnamed or blank.
func receiverVar(pass *lintkit.Pass, recv *ast.Field) types.Object {
	if len(recv.Names) != 1 || recv.Names[0].Name == "_" {
		return nil
	}
	return pass.Info.Defs[recv.Names[0]]
}

// beginsWithNilGuard reports whether stmt is a recognized nil guard for
// the receiver object recv.
func beginsWithNilGuard(pass *lintkit.Pass, stmt ast.Stmt, recv types.Object) bool {
	isNilCompare := func(e ast.Expr) bool {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return false
		}
		isRecv := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && pass.Info.Uses[id] == recv
		}
		isNil := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok {
				return false
			}
			_, isNilObj := pass.Info.Uses[id].(*types.Nil)
			return isNilObj
		}
		return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
	}
	switch s := stmt.(type) {
	case *ast.IfStmt:
		return s.Init == nil && isNilCompare(s.Cond)
	case *ast.ReturnStmt:
		// Predicate methods may guard by returning the comparison itself,
		// e.g. Enabled() bool { return r != nil }.
		for _, res := range s.Results {
			found := false
			ast.Inspect(res, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && isNilCompare(e) {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}
