package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

// TestGuardedByGolden pins the lock-discipline analysis: guarded-field
// accesses, defer-held locks, branch merging, //vc2m:locked call
// contracts, fresh-local exemption and the unguarded suppression.
func TestGuardedByGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/guardedby", lint.GuardedBy)
}
