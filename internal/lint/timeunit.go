package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vc2m/internal/lintkit"
)

// timeunitPath is the package defining the tick representation.
const timeunitPath = "vc2m/internal/timeunit"

// TimeUnit enforces the tick/millisecond unit discipline at the
// boundaries go/types cannot see. The repo's convention (documented in
// package timeunit) is that float64 values carry milliseconds and
// timeunit.Ticks carries integer microseconds; mixing them through bare
// conversions silently rescales by 1000. Three rules, all exempt inside
// package timeunit itself (it owns the blessed converters):
//
//   - T1: converting a non-constant float expression to Ticks. A float in
//     this codebase is milliseconds, so Ticks(ms) mis-reads it as
//     microseconds; use FromMillis / FromMillisCeil / FromMillisFloor.
//   - T2: converting a Ticks expression to a float type. The result is
//     tick-valued but will flow into millisecond arithmetic; use
//     Ticks.Millis().
//   - T3: multiplying two Ticks-valued operands. Time x time is not a
//     time quantity; a dimensionless count must enter the product as an
//     untyped constant or an integer-to-Ticks conversion (t *
//     timeunit.Ticks(n)), both of which are exempt.
//
// A deliberate exception (none exist today) would be annotated
// //vc2m:units with a justification.
var TimeUnit = &lintkit.Analyzer{
	Name: "timeunit",
	Doc: "flags tick/millisecond unit mixing: float->Ticks conversions (use FromMillis*), " +
		"Ticks->float conversions (use Millis()), and Ticks*Ticks products; " +
		"suppress with //vc2m:units",
	Run: runTimeUnit,
}

func runTimeUnit(pass *lintkit.Pass) {
	if pass.Pkg.Path() == timeunitPath {
		return
	}
	ticks := ticksTypeOf(pass.Pkg)
	if ticks == nil {
		return
	}
	isTicks := func(t types.Type) bool { return t != nil && types.Identical(t, ticks) }
	isFloat := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		return ok && tv.Value != nil
	}
	// countConversion reports whether e is Ticks(x) for an integer x — the
	// idiom marking a dimensionless count inside a product.
	countConversion := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() || !isTicks(tv.Type) {
			return false
		}
		argT := pass.TypeOf(call.Args[0])
		if argT == nil || isTicks(argT) {
			return false
		}
		b, ok := argT.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[n.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				target := tv.Type
				arg := n.Args[0]
				argT := pass.TypeOf(arg)
				if argT == nil || isConst(arg) {
					return true
				}
				if isTicks(target) && isFloat(argT) {
					pass.ReportSuppressible(n.Pos(), "units",
						"conversion of float value %s (milliseconds by convention) to timeunit.Ticks "+
							"rescales it as microseconds; use timeunit.FromMillis/FromMillisCeil/FromMillisFloor",
						exprString(pass.Fset, arg))
				} else if isFloat(target) && isTicks(argT) {
					pass.ReportSuppressible(n.Pos(), "units",
						"conversion of timeunit.Ticks value %s to %s leaks tick-valued numbers into "+
							"millisecond arithmetic; use the Millis() method",
						exprString(pass.Fset, arg), target)
				}
			case *ast.BinaryExpr:
				if n.Op != token.MUL {
					return true
				}
				if !isTicks(pass.TypeOf(n.X)) || !isTicks(pass.TypeOf(n.Y)) {
					return true
				}
				if isConst(n.X) || isConst(n.Y) || countConversion(n.X) || countConversion(n.Y) {
					return true
				}
				pass.ReportSuppressible(n.OpPos, "units",
					"product of two timeunit.Ticks values (%s * %s) is not a time quantity; "+
						"enter dimensionless counts as timeunit.Ticks(n) conversions or constants",
					exprString(pass.Fset, n.X), exprString(pass.Fset, n.Y))
			}
			return true
		})
	}
}

// ticksTypeOf finds the timeunit.Ticks type through pkg's imports, or nil
// when the package never touches tick-valued time.
func ticksTypeOf(pkg *types.Package) types.Type {
	var tu *types.Package
	if pkg.Path() == timeunitPath {
		tu = pkg
	} else {
		for _, imp := range pkg.Imports() {
			if imp.Path() == timeunitPath {
				tu = imp
				break
			}
		}
	}
	if tu == nil {
		return nil
	}
	obj, ok := tu.Scope().Lookup("Ticks").(*types.TypeName)
	if !ok {
		return nil
	}
	return obj.Type()
}
