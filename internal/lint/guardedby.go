package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"vc2m/internal/lintkit"
)

// GuardedBy enforces annotated lock discipline. A struct field tagged
//
//	mu    sync.Mutex
//	state RunState //vc2m:guardedby mu
//
// may only be read or written while the named sibling mutex is held. The
// analyzer tracks acquired locks through each function body as printed
// lock paths ("s.mu", "r.f.mu"): X.Lock()/X.RLock() adds the path,
// X.Unlock()/X.RUnlock() removes it, and a deferred unlock holds the lock
// to the end of the function. Branches are merged conservatively — a lock
// state survives an if/else only when every non-terminating branch keeps
// it — and function literals start with an empty lock set because they
// may run on another goroutine.
//
// Two companion directives refine the analysis:
//
//   - //vc2m:locked <mu> on a function or method declares the caller
//     holds the receiver's <mu> before calling (the classic "fooLocked"
//     contract, checked at every statically-resolved call site).
//   - //vc2m:unguarded <reason> suppresses one access the analysis gets
//     wrong (freshly published values, single-goroutine phases).
//
// Values built locally from a composite literal or new() are exempt until
// they escape: a constructor filling fields before the first publication
// needs no lock.
var GuardedBy = &lintkit.Analyzer{
	Name: "guardedby",
	Doc:  "fields tagged //vc2m:guardedby <mu> are only accessed with the named mutex held",
	Run:  runGuardedBy,
}

// lockedFact marks a function whose callers must hold the receiver path's
// mutex, exported so cross-package call sites are checked too.
type lockedFact struct {
	mu string
}

func runGuardedBy(pass *lintkit.Pass) {
	dirs := directivesByLine(pass)
	guarded := collectGuardedFields(pass, dirs)
	locked := collectLockedFuncs(pass, dirs)
	for _, lf := range locked {
		pass.ExportObjectFact(lf.fn, lockedFact{mu: lf.mu})
	}
	lockedByFn := map[*types.Func]string{}
	for _, lf := range locked {
		lockedByFn[lf.fn] = lf.mu
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := &lockWalker{
				pass:    pass,
				guarded: guarded,
				locked:  lockedByFn,
				held:    map[string]bool{},
				fresh:   map[types.Object]bool{},
			}
			if mu, ok := funcDirectiveArg(dirs, pass.Fset, fd, "locked"); ok {
				st.held[recvLockPath(fd, mu)] = true
			}
			st.stmt(fd.Body)
		}
	}
}

// guardedField resolves one //vc2m:guardedby annotation: the field object
// and the sibling path of its mutex.
type collectedLock struct {
	fn *types.Func
	mu string
}

// collectGuardedFields resolves every //vc2m:guardedby <mu> annotation on
// a struct field (trailing comment or the line above) to the field's
// types.Var, validating that single-segment mutex names exist as sibling
// fields.
func collectGuardedFields(pass *lintkit.Pass, dirs lineDirectives) map[*types.Var]string {
	guarded := map[*types.Var]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					siblings[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				if len(f.Names) == 0 {
					continue // embedded fields carry no annotation
				}
				pos := pass.Fset.Position(f.Pos())
				d, ok := dirs.at(pos.Filename, pos.Line, "guardedby")
				if !ok {
					d, ok = dirs.at(pos.Filename, pos.Line-1, "guardedby")
				}
				if !ok {
					continue
				}
				mu, _, _ := strings.Cut(d.Args, " ")
				if mu == "" {
					pass.Reportf(f.Pos(), "//vc2m:guardedby needs the mutex field name, e.g. //vc2m:guardedby mu")
					continue
				}
				if !strings.Contains(mu, ".") && !siblings[mu] {
					pass.Reportf(f.Pos(), "//vc2m:guardedby names %q, which is not a field of this struct", mu)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// collectLockedFuncs resolves every //vc2m:locked <mu> annotation on a
// function declaration, in source order.
func collectLockedFuncs(pass *lintkit.Pass, dirs lineDirectives) []collectedLock {
	var out []collectedLock
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			mu, ok := funcDirectiveArg(dirs, pass.Fset, fd, "locked")
			if !ok {
				continue
			}
			if mu == "" {
				pass.Reportf(fd.Pos(), "//vc2m:locked needs the held mutex path, e.g. //vc2m:locked mu")
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out = append(out, collectedLock{fn: fn, mu: mu})
			}
		}
	}
	return out
}

// funcDirectiveArg finds a //vc2m:<word> directive attached to a function
// declaration — anywhere in its doc comment, or on the line above the
// declaration — and returns the first argument token.
func funcDirectiveArg(dirs lineDirectives, fset *token.FileSet, fd *ast.FuncDecl, word string) (string, bool) {
	pos := fset.Position(fd.Pos())
	from := pos.Line - 1
	if fd.Doc != nil {
		from = fset.Position(fd.Doc.Pos()).Line
	}
	for line := from; line <= pos.Line; line++ {
		if d, ok := dirs.at(pos.Filename, line, word); ok {
			arg, _, _ := strings.Cut(d.Args, " ")
			return arg, true
		}
	}
	return "", false
}

// recvLockPath turns a //vc2m:locked argument into the lock path held at
// entry: "<recv>.<mu>" for methods, the argument verbatim for functions.
func recvLockPath(fd *ast.FuncDecl, mu string) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		return fd.Recv.List[0].Names[0].Name + "." + mu
	}
	return mu
}

// lockWalker tracks the held lock set through one function body in source
// order.
type lockWalker struct {
	pass    *lintkit.Pass
	guarded map[*types.Var]string
	locked  map[*types.Func]string
	held    map[string]bool
	fresh   map[types.Object]bool
}

func (w *lockWalker) clone() *lockWalker {
	c := &lockWalker{
		pass:    w.pass,
		guarded: w.guarded,
		locked:  w.locked,
		held:    map[string]bool{},
		fresh:   map[types.Object]bool{},
	}
	for k := range w.held { //vc2m:ordered set copy, order cannot escape
		c.held[k] = true
	}
	for k := range w.fresh { //vc2m:ordered set copy, order cannot escape
		c.fresh[k] = true
	}
	return c
}

// intersectHeld drops every lock the branch walker released, merging a
// non-terminating branch back into the fall-through state.
func (w *lockWalker) intersectHeld(branch *lockWalker) {
	for k := range w.held { //vc2m:ordered set intersection, order cannot escape
		if !branch.held[k] {
			delete(w.held, k)
		}
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			w.stmt(sub)
		}
	case *ast.ExprStmt:
		w.expr(s.X, false)
	case *ast.DeferStmt:
		w.deferred(s.Call)
	case *ast.GoStmt:
		// The goroutine runs concurrently: check its body with an empty
		// lock set and no fresh locals.
		for _, arg := range s.Call.Args {
			w.expr(arg, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			g := &lockWalker{pass: w.pass, guarded: w.guarded, locked: w.locked,
				held: map[string]bool{}, fresh: map[types.Object]bool{}}
			g.stmt(lit.Body)
		} else {
			w.expr(s.Call.Fun, false)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, false)
		}
		for _, lhs := range s.Lhs {
			w.expr(lhs, false)
		}
		if s.Tok == token.DEFINE {
			w.markFresh(s.Lhs, s.Rhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false)
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.markFresh(lhs, vs.Values)
				}
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, false)
		then := w.clone()
		then.stmt(s.Body)
		if !terminates(s.Body) {
			w.intersectHeld(then)
		}
		if s.Else != nil {
			els := w.clone()
			els.stmt(s.Else)
			if ifTerminates := blockOrStmtTerminates(s.Else); !ifTerminates {
				w.intersectHeld(els)
			}
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, false)
		body := w.clone()
		body.stmt(s.Body)
		body.stmt(s.Post)
		w.intersectHeld(body)
	case *ast.RangeStmt:
		w.expr(s.X, false)
		body := w.clone()
		body.stmt(s.Body)
		w.intersectHeld(body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag, false)
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		w.caseBodies(s.Body)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, false)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, false)
		w.expr(s.Value, false)
	case *ast.IncDecStmt:
		w.expr(s.X, false)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// caseBodies checks each case clause against a snapshot of the current
// lock state; a lock acquired inside one case never leaks past the switch.
func (w *lockWalker) caseBodies(body *ast.BlockStmt) {
	for _, c := range body.List {
		branch := w.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				branch.expr(e, false)
			}
			for _, s := range c.Body {
				branch.stmt(s)
			}
		case *ast.CommClause:
			branch.stmt(c.Comm)
			for _, s := range c.Body {
				branch.stmt(s)
			}
		}
	}
}

// deferred handles defer statements: a deferred unlock keeps the lock held
// for the rest of the function, and a deferred closure's accesses are
// checked against the current lock state without mutating it.
func (w *lockWalker) deferred(call *ast.CallExpr) {
	for _, arg := range call.Args {
		w.expr(arg, false)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		body := w.clone()
		body.stmt(lit.Body)
		return
	}
	w.expr(call.Fun, true)
}

// markFresh records locals initialized from a composite literal or new():
// nothing else can reference them yet, so unguarded field writes are fine
// until they escape.
func (w *lockWalker) markFresh(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		if !isFreshValue(w.pass, rhs[i]) {
			continue
		}
		if obj := w.pass.Info.Defs[id]; obj != nil {
			w.fresh[obj] = true
		}
	}
}

func isFreshValue(pass *lintkit.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// expr walks an expression in evaluation order, applying lock effects of
// Lock/Unlock calls and checking every guarded field selection.
func (w *lockWalker) expr(e ast.Expr, inDefer bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		w.expr(e.X, inDefer)
		w.checkSelector(e)
	case *ast.CallExpr:
		if w.applyLockEffect(e, inDefer) {
			return
		}
		w.checkLockedCallee(e)
		w.expr(e.Fun, inDefer)
		for _, a := range e.Args {
			w.expr(a, inDefer)
		}
	case *ast.FuncLit:
		// A closure may run on another goroutine; check it lock-free.
		c := &lockWalker{pass: w.pass, guarded: w.guarded, locked: w.locked,
			held: map[string]bool{}, fresh: map[types.Object]bool{}}
		c.stmt(e.Body)
	case *ast.ParenExpr:
		w.expr(e.X, inDefer)
	case *ast.StarExpr:
		w.expr(e.X, inDefer)
	case *ast.UnaryExpr:
		w.expr(e.X, inDefer)
	case *ast.BinaryExpr:
		w.expr(e.X, inDefer)
		w.expr(e.Y, inDefer)
	case *ast.IndexExpr:
		w.expr(e.X, inDefer)
		w.expr(e.Index, inDefer)
	case *ast.SliceExpr:
		w.expr(e.X, inDefer)
		w.expr(e.Low, inDefer)
		w.expr(e.High, inDefer)
		w.expr(e.Max, inDefer)
	case *ast.TypeAssertExpr:
		w.expr(e.X, inDefer)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, inDefer)
				continue
			}
			w.expr(el, inDefer)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, inDefer)
		w.expr(e.Value, inDefer)
	}
}

// applyLockEffect recognizes X.Lock/RLock/Unlock/RUnlock on a sync
// (RW)Mutex and updates the held set; it returns true when the call was a
// lock operation (its receiver needs no guarded-field check).
func (w *lockWalker) applyLockEffect(call *ast.CallExpr, inDefer bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	name := sel.Sel.Name
	var acquire bool
	switch name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return false
	}
	if !isMutexType(w.pass.TypeOf(sel.X)) {
		return false
	}
	path := pathString(w.pass.Fset, sel.X)
	if acquire {
		w.held[path] = true
	} else if !inDefer {
		delete(w.held, path)
	}
	return true
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkSelector reports a guarded field accessed without its mutex held.
func (w *lockWalker) checkSelector(sel *ast.SelectorExpr) {
	s, ok := w.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, ok := w.guarded[field]
	if !ok {
		return
	}
	base := pathString(w.pass.Fset, sel.X)
	if w.held[base+"."+mu] {
		return
	}
	if w.isFreshBase(sel.X) {
		return
	}
	w.pass.ReportSuppressible(sel.Sel.Pos(), "unguarded",
		"%s.%s is guarded by %s.%s, which is not held here", base, field.Name(), base, mu)
}

// checkLockedCallee reports a call to a //vc2m:locked function made
// without the contracted mutex held.
func (w *lockWalker) checkLockedCallee(call *ast.CallExpr) {
	callee := lintkit.CalleeFunc(w.pass, call)
	if callee == nil {
		return
	}
	mu, ok := w.locked[callee]
	if !ok {
		if f, found := w.pass.ObjectFact(callee); found {
			if lf, isLocked := f.(lockedFact); isLocked {
				mu, ok = lf.mu, true
			}
		}
	}
	if !ok {
		return
	}
	var need string
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if _, isMethod := w.pass.Info.Selections[sel]; isMethod {
			need = pathString(w.pass.Fset, sel.X) + "." + mu
		} else {
			need = mu // package-qualified function: path is absolute
		}
	} else {
		need = mu
	}
	if w.held[need] {
		return
	}
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && w.isFreshBase(sel.X) {
		return
	}
	w.pass.ReportSuppressible(call.Pos(), "unguarded",
		"call to %s requires %s held (//vc2m:locked)", callee.Name(), need)
}

// isFreshBase reports whether the access root is a local this function
// built itself (composite literal / new) and not yet published.
func (w *lockWalker) isFreshBase(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := w.pass.Info.Uses[x]; obj != nil && w.fresh[obj] {
				return true
			}
			return false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// terminates reports whether a block always transfers control away
// (return, branch, panic) when it finishes.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func blockOrStmtTerminates(s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return terminates(b)
	}
	return stmtTerminates(s)
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body) && blockOrStmtTerminates(s.Else)
	}
	return false
}

// pathString renders a lock/receiver path exactly (no truncation) so held
// set keys compare reliably.
func pathString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
