// Package floateqfix exercises the floateq analyzer: exact comparisons
// between float operands, including named float types and suppressions.
package floateqfix

// Celsius checks that named types with float underlying are covered.
type Celsius float64

func Eq(a, b float64) bool {
	return a == b // want `exact float comparison a == b`
}

func Neq(a, b float64) bool {
	return a != b // want `exact float comparison a != b`
}

func NamedEq(a, b Celsius) bool {
	return a == b // want `exact float comparison a == b`
}

func Float32Eq(a, b float32) bool {
	return a == b // want `exact float comparison a == b`
}

func VarConstEq(a float64) bool {
	return a == 0.3 // want `exact float comparison a == 0\.3`
}

func ZeroSentinel(a float64) bool {
	return a == 0 // want `exact float comparison a == 0`
}

func SuppressedSentinel(a float64) bool {
	return a == 0 //vc2m:floateq fixture for an assigned-only sentinel
}

func IntEq(a, b int) bool {
	return a == b
}

func ConstConst() bool {
	return 1.5 == 3.0/2.0
}

func Ordered(a, b float64) bool {
	return a < b
}
