// Package guardedbyfix exercises the guardedby analyzer: fields annotated
// //vc2m:guardedby <mu> must only be touched with the named mutex held.
package guardedbyfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //vc2m:guardedby mu
	//vc2m:guardedby mu
	last  string
	label string // unannotated: free to access
}

// Good locks around every access.
func (c *counter) Good(v string) {
	c.mu.Lock()
	c.n++
	c.last = v
	c.mu.Unlock()
	c.label = v
}

// GoodDefer holds the lock to the end of the function via defer.
func (c *counter) GoodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GoodBranchUnlock unlocks only on the early-return path, so the
// fall-through still holds the lock.
func (c *counter) GoodBranchUnlock(v string) {
	c.mu.Lock()
	if v == "" {
		c.mu.Unlock()
		return
	}
	c.last = v
	c.mu.Unlock()
}

// Bad reads and writes without the lock.
func (c *counter) Bad(v string) int {
	c.last = v // want "c.last is guarded by c.mu, which is not held here"
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}

// BadAfterUnlock releases too early.
func (c *counter) BadAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}

// BadClosure loses the lock inside a function literal, which may run on
// another goroutine.
func (c *counter) BadClosure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want "c.n is guarded by c.mu, which is not held here"
	}
}

// GoodClosureLocksItself is the correct shape for escaping closures.
func (c *counter) GoodClosureLocksItself() func() int {
	return func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
}

// bump requires the caller to hold c.mu.
//
//vc2m:locked mu
func (c *counter) bump() {
	c.n++
}

// GoodLockedCall holds the lock across the contracted call.
func (c *counter) GoodLockedCall() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

// BadLockedCall calls the //vc2m:locked method without the lock.
func (c *counter) BadLockedCall() {
	c.bump() // want "call to bump requires c.mu held"
}

// NewCounter fills fields before the value is published: fresh locals are
// exempt.
func NewCounter(label string) *counter {
	c := &counter{label: label}
	c.n = 1
	c.last = "init"
	return c
}

// Suppressed documents a deliberate unguarded read.
func Suppressed(c *counter) int {
	return c.n //vc2m:unguarded read-only snapshot for logs, staleness is fine
}

type badDecl struct {
	mu sync.Mutex
	//vc2m:guardedby missing
	a int // want "not a field of this struct"
	//vc2m:guardedby
	b int // want "needs the mutex field name"
}
