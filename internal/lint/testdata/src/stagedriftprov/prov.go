// Package stagedriftprovfix is the provenance-vocabulary fixture for the
// stagedrift analyzer: the decision stage and kind constants a consumer
// package's annotated literals are checked against.
package stagedriftprovfix

// Decision stages.
const (
	StageMap    = "map"
	StageDerive = "derive"
)

// Decision kinds.
const (
	KindPlace  = "place"
	KindAccept = "accept"
)
