// Package ctxflowfix exercises the ctxflow analyzer: contexts flow down
// from the CLI roots as parameters, and blocking constructs observe them.
package ctxflowfix

import (
	"context"
	"time"
)

// BadBackground manufactures a context below the CLI layer.
func BadBackground() context.Context {
	return context.Background() // want "context.Background below the CLI layer"
}

// BadTODO is the same smell with a different name.
func BadTODO() context.Context {
	return context.TODO() // want "context.TODO below the CLI layer"
}

// SuppressedBackground documents a deliberately detached lifetime.
func SuppressedBackground() context.Context {
	return context.Background() //vc2m:bgctx run outlives the submitting request by design
}

type badHolder struct {
	ctx context.Context // want "struct field ctx stores a context.Context"
}

type goodConfig struct {
	//vc2m:ctxfield optional root override, documented on Options
	Context context.Context
	Name    string // non-context fields are fine
}

// BadSelect blocks forever without observing any context.
func BadSelect(done, other chan struct{}) {
	select { // want "select without default never observes a context"
	case <-done:
	case <-other:
	}
}

// GoodSelect has a cancellation case.
func GoodSelect(ctx context.Context, done chan struct{}) {
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// GoodPollSelect is non-blocking thanks to default.
func GoodPollSelect(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// BadChannelLoop pumps a channel forever with no way to stop it.
func BadChannelLoop(in chan int) int {
	total := 0
	for { // want `channel loop \(for \{\.\.\.\}\) never observes a context`
		total += <-in
	}
}

// GoodChannelLoop checks cancellation each iteration.
func GoodChannelLoop(ctx context.Context, in chan int) int {
	total := 0
	for {
		select {
		case v := <-in:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// GoodComputeLoop is an infinite loop with no channel operations: it
// terminates through its own break and needs no context.
func GoodComputeLoop(n int) int {
	v := n
	for {
		if v <= 1 {
			return v
		}
		v /= 2
	}
}

// BadRangeChan drains a channel with no cancellation path.
func BadRangeChan(in chan int) (total int) {
	for v := range in { // want "range over channel never observes a context"
		total += v
	}
	return total
}

// SuppressedRangeChan documents why draining to channel close is correct.
func SuppressedRangeChan(in chan int) (total int) {
	for v := range in { //vc2m:ctxfree producer closes the channel on shutdown
		total += v
	}
	return total
}

// GoodRangeChanWithCtx mentions the context in the body.
func GoodRangeChanWithCtx(ctx context.Context, in chan int) (total int) {
	for v := range in {
		if ctx.Err() != nil {
			return total
		}
		total += v
	}
	return total
}

// sleeper exists so the fixture uses time and stays realistic.
func sleeper() { time.Sleep(0) }
