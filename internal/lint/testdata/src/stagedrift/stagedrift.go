// Package stagedriftfix exercises the stagedrift analyzer. This package
// doubles as the span-vocabulary source (Stage* constants, KnownStages)
// and as a consumer with annotated stage-set literals.
package stagedriftfix

import prov "vc2m/internal/lint/testdata/src/stagedriftprov"

// Span stages.
const (
	StageAlpha = "alpha"
	StageBeta  = "beta"
	StageGamma = "gamma"
	StageDup   = "alpha" // want `span stage constant StageDup duplicates the value "alpha" of StageAlpha`
)

// KnownStages forgets StageGamma, and the golden fixture carries a line
// that names no stage — both reported here.
func KnownStages() []string { // want `KnownStages\(\) is missing span stage StageGamma` `golden testdata/stages.golden names "bogus-golden-line"`
	return []string{StageAlpha, StageBeta}
}

// goodSpanSet covers every span stage.
//
//vc2m:stageset span
var goodSpanSet = []string{StageAlpha, StageBeta, StageGamma}

// badSpanSet drops two stages and invents one.
//
//vc2m:stageset span
var badSpanSet = []string{StageAlpha, "bogus"} // want `"bogus" is not a span stage` `missing span stage "beta" \(StageBeta\)` `missing span stage "gamma" \(StageGamma\)`

// goodSubset only has to stay inside the vocabulary.
//
//vc2m:stageset span-subset
var goodSubset = []string{StageBeta}

// badSubset names a stage that does not exist.
//
//vc2m:stageset span-subset
var badSubset = []string{"nope"} // want `"nope" is not a span stage`

// goodProvTable pairs provenance stages with kinds, recursed through the
// nested struct literals.
//
//vc2m:stageset provenance-subset
var goodProvTable = []struct{ stage, kind string }{
	{prov.StageMap, prov.KindPlace},
	{prov.StageDerive, prov.KindAccept},
}

// badProvTable smuggles in a value from neither vocabulary.
//
//vc2m:stageset provenance-subset
var badProvTable = []struct{ stage, kind string }{
	{prov.StageMap, "nope"}, // want `"nope" is not a provenance stage or kind`
}
