// Package closeflushfix exercises the closeflush analyzer: opened sinks
// are closed on all paths with the error checked or explicitly discarded.
package closeflushfix

import (
	"io"
	"os"
)

// sink is a minimal closer/flusher for the constructor rules.
type sink struct{ f *os.File }

// NewSink is recognized as an opener by its New* prefix and closer result.
func NewSink(path string) (*sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &sink{f: f}, nil
}

func (s *sink) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *sink) Close() error                { return s.f.Close() }
func (s *sink) Flush() error                { return nil }

// GoodCheckedClose is the blessed shape for written files: deferred
// backstop plus a checked close on the success path.
func GoodCheckedClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// BadBareClose drops the close error on the error path without saying so.
func BadBareClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // want `f.Close\(\) error is silently dropped`
		return err
	}
	return f.Close()
}

// GoodExplicitDiscard makes the drop visible.
func GoodExplicitDiscard(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// BadDeferOnly loses write errors: the only close is deferred.
func BadDeferOnly(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) discards the error on every path`
	_, err = f.Write(data)
	return err
}

// SuppressedDeferOnly documents a read-only handle where the close error
// is uninteresting.
func SuppressedDeferOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //vc2m:closeflush read-only handle, close error carries no data
	return io.ReadAll(f)
}

// BadNeverClosed opens a file and leaks it.
func BadNeverClosed(path string, data []byte) error {
	f, err := os.Create(path) // want "f is opened here but never closed, flushed or handed off"
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	return err
}

// closeHelper closes its argument for the caller; the analyzer learns
// this and credits call sites.
func closeHelper(c io.Closer) error {
	return c.Close()
}

// chainedHelper closes through another helper, exercising the call-graph
// fixpoint.
func chainedHelper(c io.Closer) error {
	return closeHelper(c)
}

// GoodClosedByHelper hands the file to a closing helper.
func GoodClosedByHelper(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return chainedHelper(f)
}

// GoodReturned transfers ownership to the caller.
func GoodReturned(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// GoodConstructorClose closes a New*-acquired sink.
func GoodConstructorClose(path string) error {
	s, err := NewSink(path)
	if err != nil {
		return err
	}
	return s.Close()
}

// BadConstructorLeak leaks a New*-acquired sink.
func BadConstructorLeak(path string, data []byte) error {
	s, err := NewSink(path) // want "s is opened here but never closed, flushed or handed off"
	if err != nil {
		return err
	}
	_, err = s.Write(data)
	return err
}

// GoodMethodValue registers the closer for later shutdown.
func GoodMethodValue(path string, closers *[]func() error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	*closers = append(*closers, f.Close)
	return nil
}
