// Package unitfix exercises the timeunit analyzer: conversions that cross
// the tick/millisecond boundary without the blessed converters, and
// dimensionally bogus tick products.
package unitfix

import "vc2m/internal/timeunit"

func BadMsToTicks(ms float64) timeunit.Ticks {
	return timeunit.Ticks(ms) // want `conversion of float value ms .* use timeunit\.FromMillis`
}

func GoodMsToTicks(ms float64) timeunit.Ticks {
	return timeunit.FromMillis(ms)
}

func BadTicksToFloat(t timeunit.Ticks) float64 {
	return float64(t) // want `conversion of timeunit\.Ticks value t to float64 .* Millis\(\)`
}

func GoodTicksToFloat(t timeunit.Ticks) float64 {
	return t.Millis()
}

// TickPlusMs is the canonical mixed-unit bug: adding a millisecond value
// to a tick value through a bare conversion.
func TickPlusMs(t timeunit.Ticks, ms float64) timeunit.Ticks {
	return t + timeunit.Ticks(ms) // want `conversion of float value ms`
}

func GoodTickPlusMs(t timeunit.Ticks, ms float64) timeunit.Ticks {
	return t + timeunit.FromMillis(ms)
}

func BadProduct(a, b timeunit.Ticks) timeunit.Ticks {
	return a * b // want `product of two timeunit\.Ticks values`
}

func SuppressedProduct(a, b timeunit.Ticks) timeunit.Ticks {
	return a * b //vc2m:units fixture for a justified exception
}

func GoodCountScale(t timeunit.Ticks, n int) timeunit.Ticks {
	return t * timeunit.Ticks(n)
}

func GoodConstScale(t timeunit.Ticks) timeunit.Ticks {
	return 2 * t
}

func GoodPerMilli(t timeunit.Ticks) timeunit.Ticks {
	return t / timeunit.TicksPerMilli
}

func GoodConstConversion() timeunit.Ticks {
	return timeunit.Ticks(1000)
}

func IntConversionIsFine(t timeunit.Ticks) int64 {
	return int64(t)
}
