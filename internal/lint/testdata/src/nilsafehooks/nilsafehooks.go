// Package nilsafehooks exercises the nilsafe analyzer's concrete-type
// registry (the metrics.Recorder path): the test registers Recorder below
// as a hook type by name, without any interface involved.
package nilsafehooks

// Recorder mimics the shape of metrics.Recorder.
type Recorder struct {
	counters map[string]int64
}

func (r *Recorder) Add(name string, delta int64) { // want `\(\*Recorder\)\.Add must begin with a nil-receiver guard`
	r.counters[name] += delta
}

func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

func (r *Recorder) Enabled() bool { return r != nil }

// Bystander is not registered, so its unguarded method is fine.
type Bystander struct {
	n int
}

func (b *Bystander) Inc() {
	b.n++
}
