// Package nilsafehooks exercises the nilsafe analyzer's concrete-type
// registry (the metrics.Recorder path): the test registers Recorder below
// as a hook type by name, without any interface involved.
package nilsafehooks

// Recorder mimics the shape of metrics.Recorder.
type Recorder struct {
	counters map[string]int64
}

func (r *Recorder) Add(name string, delta int64) { // want `\(\*Recorder\)\.Add must begin with a nil-receiver guard`
	r.counters[name] += delta
}

func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

func (r *Recorder) Enabled() bool { return r != nil }

// Span mimics the shape of obs.Span: a handle whose nil value is the
// spans-disabled state, mutated by End and the attribute setters.
type Span struct {
	name string
	done bool
}

func (s *Span) End() { // want `\(\*Span\)\.End must begin with a nil-receiver guard`
	s.done = true
}

func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.name = key + "=" + value
}

// Logger mimics the shape of obs.Logger: the nil logger drops everything.
type Logger struct {
	level int
}

func (l *Logger) Enabled() bool { return l != nil }

func (l *Logger) Info(msg string, args ...any) { // want `\(\*Logger\)\.Info must begin with a nil-receiver guard`
	_ = msg
	_ = args
	l.level++
}

func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	_ = msg
	_ = args
}

// Bystander is not registered, so its unguarded method is fine.
type Bystander struct {
	n int
}

func (b *Bystander) Inc() {
	b.n++
}
