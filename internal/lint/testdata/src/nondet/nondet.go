// Package nondetfix exercises the nondet analyzer: wall-clock reads,
// global math/rand, and map iteration, with and without suppressions.
package nondetfix

import (
	"math/rand"
	"sort"
	"time"
)

func WallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `time\.Since reads the wall clock`
}

func MeasuredWallClock() time.Time {
	return time.Now() //vc2m:wallclock measurement-only fixture site
}

func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn bypasses seeded randomness`
}

func SeededButStillGlobal() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `math/rand\.New` `math/rand\.NewSource`
}

func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m iterates in randomized order`
		total += v
	}
	return total
}

func SumValuesOrdered(m map[string]int) int {
	total := 0
	//vc2m:ordered summation is commutative
	for _, v := range m {
		total += v
	}
	return total
}

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //vc2m:ordered keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func SliceRangeIsFine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
