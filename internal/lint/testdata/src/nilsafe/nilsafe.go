// Package nilsafefix exercises the nilsafe analyzer's interface-driven
// registry: types implementing trace.Sink must nil-guard every exported
// pointer-receiver method.
package nilsafefix

import (
	"vc2m/internal/provenance"
	"vc2m/internal/trace"
)

// GoodSink guards every exported pointer method.
type GoodSink struct {
	events []trace.Event
}

func (g *GoodSink) Record(ev trace.Event) {
	if g == nil {
		return
	}
	g.events = append(g.events, ev)
}

func (g *GoodSink) Len() int {
	if g == nil {
		return 0
	}
	return len(g.events)
}

// Enabled guards by returning the nil comparison itself.
func (g *GoodSink) Enabled() bool { return g != nil }

// Clear has an empty body, which is trivially nil-safe.
func (g *GoodSink) Clear() {}

func (g *GoodSink) grow() { // unexported methods are not part of the contract
	g.events = append(g.events, trace.Event{})
}

// BadSink implements trace.Sink but skips the guards.
type BadSink struct {
	n int
}

func (b *BadSink) Record(ev trace.Event) { // want `\(\*BadSink\)\.Record must begin with a nil-receiver guard`
	b.n++
}

func (b *BadSink) Count() int { // want `\(\*BadSink\)\.Count must begin with a nil-receiver guard`
	return b.n
}

// AnonSink's receiver cannot be guarded because it is unnamed.
type AnonSink struct {
	n int
}

func (*AnonSink) Record(ev trace.Event) { // want `\(\*AnonSink\)\.Record has an unnamed receiver`
	_ = ev
}

// NotASink has unguarded pointer methods but implements no hook
// interface, so it is out of scope.
type NotASink struct {
	n int
}

func (s *NotASink) Bump() {
	s.n++
}

// ValueSink implements trace.Sink with a value receiver; value receivers
// cannot be nil and are exempt.
type ValueSink struct{}

func (ValueSink) Record(ev trace.Event) {
	_ = ev
}

// provSink mirrors the allocation server's unexported pubSub broadcast
// sink: unexported types implementing provenance.Sink are hooks too, so
// the server's live-stream wakeup path keeps its nil-receiver contract.
type provSink struct {
	n int
}

func (p *provSink) Record(d provenance.Decision) { // want `\(\*provSink\)\.Record must begin with a nil-receiver guard`
	p.n++
	_ = d
}

// guardedProvSink is the compliant version of the same hook.
type guardedProvSink struct {
	n int
}

func (p *guardedProvSink) Record(d provenance.Decision) {
	if p == nil {
		return
	}
	p.n++
	_ = d
}
