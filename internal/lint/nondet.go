package lint

import (
	"go/ast"
	"go/types"

	"vc2m/internal/lintkit"
)

// rngutilPath is the module's deterministic RNG wrapper; it is the one
// package allowed to touch math/rand.
const rngutilPath = "vc2m/internal/rngutil"

// Nondeterminism flags constructs that can make two runs with the same
// seed diverge:
//
//   - time.Now / time.Since calls. The simulators are discrete-event
//     machines with their own clocks; wall-clock reads belong only in
//     explicit overhead measurement. Intentional measurement sites are
//     annotated //vc2m:wallclock.
//   - any use of the global math/rand package outside internal/rngutil.
//     Experiments must draw from a seeded rngutil.RNG so identical
//     invocations reproduce identical tasksets. Not suppressible.
//   - range over a map. Iteration order is randomized by the runtime and
//     leaks into results the moment the loop appends, prints or
//     accumulates order-sensitively. Loops whose body is provably
//     order-insensitive (commutative folds, set copies, or key collection
//     followed by sorting) are annotated //vc2m:ordered.
var Nondeterminism = &lintkit.Analyzer{
	Name: "nondet",
	Doc: "flags wall-clock reads (time.Now/Since), global math/rand use, and map iteration " +
		"whose order can escape into results; suppress with //vc2m:wallclock (measurement) " +
		"or //vc2m:ordered (order-insensitive loop)",
	Run: runNondeterminism,
}

func runNondeterminism(pass *lintkit.Pass) {
	allowRand := pass.Pkg.Path() == rngutilPath
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if name := obj.Name(); name == "Now" || name == "Since" {
						pass.ReportSuppressible(n.Pos(), "wallclock",
							"time.%s reads the wall clock and breaks run-to-run determinism; "+
								"use the simulator clock, or annotate //vc2m:wallclock for measurement-only code", name)
					}
				case "math/rand", "math/rand/v2":
					if _, isType := obj.(*types.TypeName); isType {
						return true // naming a rand type is harmless; drawing from it is not
					}
					if !allowRand {
						pass.Reportf(n.Pos(),
							"global %s.%s bypasses seeded randomness; draw from vc2m/internal/rngutil instead",
							obj.Pkg().Path(), obj.Name())
					}
				}
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.ReportSuppressible(n.For, "ordered",
						"range over map %s iterates in randomized order; iterate sorted keys, "+
							"or annotate //vc2m:ordered if order cannot escape",
						exprString(pass.Fset, n.X))
				}
			}
			return true
		})
	}
}
