// Package lint holds vc2m-lint's domain analyzers: the invariants that
// make this repository a faithful reproduction of the DAC 2019 vC2M paper
// but that the Go compiler cannot check.
//
//   - nondet: bit-exact determinism. Identical seeds must reproduce
//     identical tables, traces and figures, so wall-clock reads, global
//     math/rand and order-leaking map iteration are flagged.
//   - timeunit: tick/millisecond unit discipline. The analyses work in
//     float64 milliseconds and the simulators in integer microsecond
//     ticks (timeunit.Ticks); every crossing must go through the blessed
//     converters.
//   - nilsafe: the nil-receiver no-op contract of the instrumentation
//     hooks (trace sinks, the metrics recorder), whose zero-cost-when-off
//     guarantee holds only if every exported pointer method guards nil.
//   - floateq: exact float comparison, the "silently wrong numbers" class
//     behind past Welford and utilization-grid bugs.
//   - guardedby: annotated lock discipline — fields tagged
//     //vc2m:guardedby <mu> are only touched with the named mutex held,
//     and //vc2m:locked functions are only called under it.
//   - ctxflow: cancellation plumbing — contexts flow down from the CLI
//     roots as parameters, never manufactured below main or hoarded in
//     structs, and blocking selects/loops observe them.
//   - closeflush: sink hygiene — opened closers/flushers are closed on
//     all paths with the error checked or explicitly discarded.
//   - stagedrift: the span-stage, provenance and preregistered-metric
//     vocabularies (plus the span_stages golden) cannot drift apart.
//
// Each analyzer documents its rules and suppression directives on its
// variable. All eight run over ./... via `make lint` and in CI.
package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"

	"vc2m/internal/lintkit"
)

// All returns every vc2m analyzer, in stable order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{Nondeterminism, TimeUnit, NilSafe, FloatEq, GuardedBy, CtxFlow, CloseFlush, StageDrift}
}

// ByName returns the analyzer with the given Name, or nil.
func ByName(name string) *lintkit.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// exprString renders an expression compactly for diagnostics, truncating
// long expressions.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "expression"
	}
	s := buf.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
