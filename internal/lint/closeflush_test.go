package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

// TestCloseFlushGolden pins the sink-hygiene rules: dropped Close errors,
// defer-only closes on written files, leaked openers, and the
// cross-function closing-helper facts.
func TestCloseFlushGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/closeflush", lint.CloseFlush)
}
