package lint_test

import (
	"strings"
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

func TestFloatEqGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/floateq", lint.FloatEq)
}

// TestFloatEqTable drives the analyzer over throwaway fixture modules,
// covering the shapes the golden file cannot: suppression placement,
// multi-file packages and the precise diagnostic/suppression split.
func TestFloatEqTable(t *testing.T) {
	cases := []struct {
		name       string
		files      map[string]string
		diags      int // surviving diagnostics
		suppressed int
		wantSub    string // substring of the first diagnostic, when any
	}{
		{
			name: "equality and inequality both flagged",
			files: map[string]string{"a.go": `package a

func f(x, y float64) bool { return x == y || x != y }
`},
			diags:   2,
			wantSub: "exact float comparison x == y",
		},
		{
			name: "const-to-const compare exempt",
			files: map[string]string{"a.go": `package a

const eps = 1e-9

func f() bool { return eps == 1e-9 }
`},
		},
		{
			name: "integer compares exempt",
			files: map[string]string{"a.go": `package a

func f(x, y int) bool { return x == y }
`},
		},
		{
			name: "float32 flagged too",
			files: map[string]string{"a.go": `package a

func f(x, y float32) bool { return x == y }
`},
			diags:   1,
			wantSub: "exact float comparison",
		},
		{
			name: "directive on the offending line suppresses",
			files: map[string]string{"a.go": `package a

func f(x float64) bool {
	return x == 0 //vc2m:floateq zero is an assigned sentinel, never computed
}
`},
			suppressed: 1,
		},
		{
			name: "directive on the line above suppresses",
			files: map[string]string{"a.go": `package a

func f(x float64) bool {
	//vc2m:floateq zero is an assigned sentinel, never computed
	return x == 0
}
`},
			suppressed: 1,
		},
		{
			name: "wrong directive word does not suppress",
			files: map[string]string{"a.go": `package a

func f(x float64) bool {
	return x == 0 //vc2m:ordered not the word floateq wants
}
`},
			diags: 1,
		},
		{
			name: "findings surface from every file of a package",
			files: map[string]string{
				"a.go": "package a\n\nfunc f(x float64) bool { return x == 1 }\n",
				"b.go": "package a\n\nfunc g(x float64) bool { return x != 2 }\n",
			},
			diags: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := linttest.Analyze(t, linttest.Fixture{Files: tc.files}, lint.FloatEq)
			if got := len(res.Diagnostics); got != tc.diags {
				t.Errorf("diagnostics = %d, want %d: %v", got, tc.diags, linttest.Messages(res.Diagnostics))
			}
			if got := len(res.Suppressed); got != tc.suppressed {
				t.Errorf("suppressed = %d, want %d: %v", got, tc.suppressed, linttest.Messages(res.Suppressed))
			}
			if tc.wantSub != "" && len(res.Diagnostics) > 0 &&
				!strings.Contains(res.Diagnostics[0].Message, tc.wantSub) {
				t.Errorf("diagnostic %q does not contain %q", res.Diagnostics[0].Message, tc.wantSub)
			}
		})
	}
}
