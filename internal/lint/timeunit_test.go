package lint_test

import (
	"testing"

	"vc2m/internal/lint"
	"vc2m/internal/lintkit/linttest"
)

func TestTimeUnitGolden(t *testing.T) {
	linttest.RunGolden(t, "testdata/src/timeunit", lint.TimeUnit)
}

// timeunitStub declares just enough of the blessed package for the
// analyzer to resolve timeunit.Ticks inside a fixture module named vc2m.
const timeunitStub = `package timeunit

type Ticks int64

func FromMillis(ms float64) Ticks  { return Ticks(ms * 1000) }
func (t Ticks) Millis() float64    { return float64(t) / 1000 }
`

// TestTimeUnitTable exercises the three unit-mixing rules (float→Ticks,
// Ticks→float, Ticks×Ticks) and their exemptions over fixture modules that
// carry their own vc2m/internal/timeunit stub.
func TestTimeUnitTable(t *testing.T) {
	cases := []struct {
		name       string
		src        string // body of package a, importing timeunit as tu
		diags      int
		suppressed int
	}{
		{
			name: "float to Ticks conversion flagged",
			src: `func f(ms float64) tu.Ticks {
	return tu.Ticks(ms)
}`,
			diags: 1,
		},
		{
			name: "FromMillis is the blessed crossing",
			src: `func f(ms float64) tu.Ticks {
	return tu.FromMillis(ms)
}`,
		},
		{
			name: "constant conversion exempt",
			src: `func f() tu.Ticks {
	return tu.Ticks(1000)
}`,
		},
		{
			name: "Ticks to float conversion flagged",
			src: `func f(t tu.Ticks) float64 {
	return float64(t)
}`,
			diags: 1,
		},
		{
			name: "Millis is the blessed crossing back",
			src: `func f(t tu.Ticks) float64 {
	return t.Millis()
}`,
		},
		{
			name: "Ticks times Ticks flagged",
			src: `func f(a, b tu.Ticks) tu.Ticks {
	return a * b
}`,
			diags: 1,
		},
		{
			name: "count entering a product as a conversion is exempt",
			src: `func f(t tu.Ticks, n int) tu.Ticks {
	return t * tu.Ticks(n)
}`,
		},
		{
			name: "count entering a product as a constant is exempt",
			src: `func f(t tu.Ticks) tu.Ticks {
	return t * 3
}`,
		},
		{
			name: "units directive suppresses a deliberate crossing",
			src: `func f(t tu.Ticks) float64 {
	return float64(t) //vc2m:units plotting code wants raw tick counts
}`,
			suppressed: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := linttest.Fixture{
				Module: "vc2m",
				Files: map[string]string{
					"internal/timeunit/timeunit.go": timeunitStub,
					"a/a.go":                        "package a\n\nimport tu \"vc2m/internal/timeunit\"\n\n" + tc.src + "\n",
				},
			}
			res := linttest.Analyze(t, fx, lint.TimeUnit)
			if got := len(res.Diagnostics); got != tc.diags {
				t.Errorf("diagnostics = %d, want %d: %v", got, tc.diags, linttest.Messages(res.Diagnostics))
			}
			if got := len(res.Suppressed); got != tc.suppressed {
				t.Errorf("suppressed = %d, want %d: %v", got, tc.suppressed, linttest.Messages(res.Suppressed))
			}
		})
	}
}

// TestTimeUnitExemptInsideBlessedPackage pins the rule that package
// timeunit itself — owner of the converters — is never flagged.
func TestTimeUnitExemptInsideBlessedPackage(t *testing.T) {
	fx := linttest.Fixture{
		Module: "vc2m",
		Files:  map[string]string{"internal/timeunit/timeunit.go": timeunitStub},
	}
	res := linttest.Analyze(t, fx, lint.TimeUnit)
	if len(res.Diagnostics)+len(res.Suppressed) != 0 {
		t.Errorf("blessed package flagged: %v %v",
			linttest.Messages(res.Diagnostics), linttest.Messages(res.Suppressed))
	}
}
