package lint

import (
	"vc2m/internal/lintkit"
)

// lineDirectives indexes a pass's parsed //vc2m: directives by file and
// line for the annotation-driven analyzers (guardedby, stagedrift), which
// read directive arguments rather than just suppressing diagnostics.
type lineDirectives map[string]map[int][]lintkit.Directive

func directivesByLine(pass *lintkit.Pass) lineDirectives {
	idx := lineDirectives{}
	for _, d := range pass.Directives {
		lines := idx[d.File]
		if lines == nil {
			lines = map[int][]lintkit.Directive{}
			idx[d.File] = lines
		}
		lines[d.Line] = append(lines[d.Line], d)
	}
	return idx
}

// at returns the first directive with the given word on file:line.
func (idx lineDirectives) at(file string, line int, word string) (lintkit.Directive, bool) {
	for _, d := range idx[file][line] {
		if d.Word == word {
			return d, true
		}
	}
	return lintkit.Directive{}, false
}
