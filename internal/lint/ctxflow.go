package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vc2m/internal/lintkit"
)

// CtxFlow enforces the repository's cancellation-flow discipline. The CLI
// binaries create the root context (signal.NotifyContext) and everything
// below receives it as a parameter; runs stay cancelable end to end only
// if no layer manufactures or hoards contexts. Three rules:
//
//   - bgctx: context.Background()/context.TODO() may only be called in
//     package main, the module-root facade, and _test.go files. Library
//     code that needs a context must accept one.
//     Suppress: //vc2m:bgctx <reason> (e.g. a deliberately detached
//     lifetime, or an API that demands a context it never uses).
//
//   - ctxfield: storing a context.Context in a struct hides the request
//     lifetime from callers and is almost always a plumbing shortcut.
//     Suppress: //vc2m:ctxfield <reason> on the field (the repo's config
//     structs are the reviewed exceptions).
//
//   - ctxfree: a blocking construct that cannot observe cancellation — a
//     select with no default case, a conditionless for loop performing
//     channel operations, or a range over a channel — must mention a
//     context-typed expression somewhere inside (ctx.Done() in a case,
//     run.execCtx in the body, ...). Purely computational loops are
//     exempt; they terminate on their own.
//     Suppress: //vc2m:ctxfree <reason>.
var CtxFlow = &lintkit.Analyzer{
	Name: "ctxflow",
	Doc:  "contexts flow down from the CLI roots: no context.Background below main, no ctx in structs, blocking loops and selects observe cancellation",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *lintkit.Pass) {
	rootExempt := pass.Pkg.Name() == "main" || !strings.Contains(pass.Pkg.Path(), "/")
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		testFile := strings.HasSuffix(fname, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if rootExempt || testFile {
					return true
				}
				if name, ok := contextConstructor(pass, n); ok {
					pass.ReportSuppressible(n.Pos(), "bgctx",
						"context.%s below the CLI layer: accept a context from the caller instead", name)
				}
			case *ast.StructType:
				checkCtxFields(pass, n)
			}
			return true
		})
		checkBlocking(pass, file)
	}
}

// contextConstructor reports whether call is context.Background() or
// context.TODO().
func contextConstructor(pass *lintkit.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkCtxFields(pass *lintkit.Pass, st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			continue
		}
		if !isContextType(pass.TypeOf(f.Type)) {
			continue
		}
		pass.ReportSuppressible(f.Pos(), "ctxfield",
			"struct field %s stores a context.Context: pass the context as a parameter instead", f.Names[0].Name)
	}
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkBlocking reports blocking constructs that never observe a context.
// Outermost-wins: once a construct is reported (or proven fine because it
// mentions a context anywhere inside), its children are not re-checked.
func checkBlocking(pass *lintkit.Pass, file *ast.File) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		blocking, pos, what := blockingConstruct(pass, n)
		if !blocking {
			return true
		}
		if mentionsContext(pass, n) {
			return false // cancellation observed; nested constructs inherit it
		}
		pass.ReportSuppressible(pos, "ctxfree",
			"%s never observes a context: add a ctx.Done() case or thread a context through", what)
		return false
	}
	ast.Inspect(file, walk)
}

// blockingConstruct classifies the cancellation-relevant blocking shapes.
func blockingConstruct(pass *lintkit.Pass, n ast.Node) (bool, token.Pos, string) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return false, 0, "" // default case: non-blocking poll
			}
		}
		return true, n.Pos(), "select without default"
	case *ast.ForStmt:
		if n.Cond != nil {
			return false, 0, ""
		}
		if !hasChannelOp(pass, n.Body) {
			return false, 0, "" // computational infinite loop; terminates via break/return
		}
		return true, n.Pos(), "channel loop (for {...})"
	case *ast.RangeStmt:
		if t := pass.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return true, n.Pos(), "range over channel"
			}
		}
	}
	return false, 0, ""
}

// hasChannelOp reports whether the block contains a channel send, receive
// or select — the operations that make an infinite loop block.
func hasChannelOp(pass *lintkit.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.FuncLit:
			return false // separate goroutine/closure: judged on its own
		}
		return !found
	})
	return found
}

// mentionsContext reports whether any expression inside n has type
// context.Context.
func mentionsContext(pass *lintkit.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if e, ok := m.(ast.Expr); ok && isContextType(pass.TypeOf(e)) {
			found = true
		}
		return !found
	})
	return found
}
