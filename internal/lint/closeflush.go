package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vc2m/internal/lintkit"
)

// CloseFlush enforces sink hygiene on everything the repo opens: files,
// trace sinks, provenance writers, buffered encoders. Three rules:
//
//   - closeerr: `x.Close()` or `x.Flush()` as a bare statement drops the
//     error that tells you the last buffered write failed. Check it, or
//     discard it explicitly with `_ = x.Close()` so the reviewer sees the
//     decision.
//
//   - deferclose: `defer x.Close()` silently discards the error on every
//     path. It is fine as a backstop when the success path also closes
//     with a checked error (the repo's blessed shape for written files);
//     a lone deferred close on a written sink loses write failures.
//
//   - unclosed: a value acquired from an opener (os.Create, os.Open, or a
//     New*/Open*/Create* constructor returning a closer) must be closed,
//     flushed, or handed off (returned, stored, passed to a function —
//     including helpers that close their argument, which the analyzer
//     tracks cross-function through exported facts).
//
// All three suppress with //vc2m:closeflush <reason>.
var CloseFlush = &lintkit.Analyzer{
	Name: "closeflush",
	Doc:  "opened closers/flushers are closed on all paths with the error checked or explicitly discarded",
	Run:  runCloseFlush,
}

// closesFact records which closer-typed parameters a function closes (or
// flushes) on behalf of its caller, exported so cross-package helper calls
// count as closing their argument.
type closesFact struct {
	params map[int]bool
}

func runCloseFlush(pass *lintkit.Pass) {
	closers := collectParamClosers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDroppedCloseErrors(pass, fd)
			checkDeferredCloses(pass, fd)
			checkUnclosed(pass, fd, closers)
		}
	}
}

// errorReturningCloseCall matches a method call x.Close() / x.Flush()
// whose signature returns exactly one error, and returns the receiver.
func errorReturningCloseCall(pass *lintkit.Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Close" && sel.Sel.Name != "Flush") || len(call.Args) != 0 {
		return nil, "", false
	}
	if s, found := pass.Info.Selections[sel]; !found || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	sig, isSig := pass.TypeOf(call.Fun).(*types.Signature)
	if !isSig || sig.Results().Len() != 1 {
		return nil, "", false
	}
	if named, isNamed := sig.Results().At(0).Type().(*types.Named); !isNamed || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// checkDroppedCloseErrors flags Close/Flush calls used as bare statements.
func checkDroppedCloseErrors(pass *lintkit.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := errorReturningCloseCall(pass, call); ok {
			pass.ReportSuppressible(call.Pos(), "closeflush",
				"%s.%s() error is silently dropped: check it or write _ = %s.%s()",
				pathString(pass.Fset, recv), name, pathString(pass.Fset, recv), name)
		}
		return true
	})
}

// checkDeferredCloses flags `defer x.Close()` with no checked close on the
// success path. A later close of the same receiver (in a return, an error
// check or an explicit discard) makes the deferred one a legitimate
// error-path backstop.
func checkDeferredCloses(pass *lintkit.Pass, fd *ast.FuncDecl) {
	// Gather the receivers closed anywhere outside a defer.
	checked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, _, ok := errorReturningCloseCall(pass, call); ok {
			checked[pathString(pass.Fset, recv)] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		recv, name, ok := errorReturningCloseCall(pass, def.Call)
		if !ok {
			return true
		}
		path := pathString(pass.Fset, recv)
		if checked[path] {
			return true
		}
		pass.ReportSuppressible(def.Pos(), "closeflush",
			"defer %s.%s() discards the error on every path: close with a checked error on the success path, or defer func() { _ = %s.%s() }()",
			path, name, path, name)
		return true
	})
}

// collectParamClosers computes, for every declared function, which of its
// closer-typed parameters it closes — directly or by passing them to
// another closing helper. Functions are processed callee-first using the
// package call graph so one extra pass reaches a fixpoint even through
// local helper chains; facts are exported for cross-package callers.
func collectParamClosers(pass *lintkit.Pass) map[*types.Func]map[int]bool {
	g := lintkit.BuildCallGraph(pass)
	var order []*types.Func
	seen := map[*types.Func]bool{}
	var post func(fn *types.Func)
	post = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, c := range g.Callees(fn) {
			if g.Decl(c) != nil {
				post(c)
			}
		}
		order = append(order, fn)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					post(fn)
				}
			}
		}
	}
	closers := map[*types.Func]map[int]bool{}
	for pass2 := 0; pass2 < 2; pass2++ {
		changed := false
		for _, fn := range order {
			fd := g.Decl(fn)
			if fd == nil {
				continue
			}
			params := closedParams(pass, fd, closers)
			if len(params) > len(closers[fn]) {
				closers[fn] = params
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range order {
		if len(closers[fn]) > 0 {
			pass.ExportObjectFact(fn, closesFact{params: closers[fn]})
		}
	}
	return closers
}

// closedParams returns the indices of fd's parameters that its body closes
// or flushes, directly or via a known closing helper.
func closedParams(pass *lintkit.Pass, fd *ast.FuncDecl, closers map[*types.Func]map[int]bool) map[int]bool {
	paramIdx := map[types.Object]int{}
	i := 0
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					paramIdx[obj] = i
				}
				i++
			}
		}
	}
	if len(paramIdx) == 0 {
		return nil
	}
	out := map[int]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Close" || sel.Sel.Name == "Flush") {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if idx, ok := paramIdx[pass.Info.Uses[id]]; ok {
					out[idx] = true
				}
			}
		}
		for argI, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			idx, isParam := paramIdx[pass.Info.Uses[id]]
			if !isParam {
				continue
			}
			if calleeCloses(pass, call, argI, closers) {
				out[idx] = true
			}
		}
		return true
	})
	return out
}

// calleeCloses reports whether the call's statically-resolved callee
// closes its argI-th parameter, consulting the local fixpoint first and
// imported facts second.
func calleeCloses(pass *lintkit.Pass, call *ast.CallExpr, argI int, closers map[*types.Func]map[int]bool) bool {
	callee := lintkit.CalleeFunc(pass, call)
	if callee == nil {
		return false
	}
	if params, ok := closers[callee]; ok {
		return params[argI]
	}
	if f, ok := pass.ObjectFact(callee); ok {
		if cf, ok := f.(closesFact); ok {
			return cf.params[argI]
		}
	}
	return false
}

// checkUnclosed flags opener results that are neither closed nor handed
// off before the function returns.
func checkUnclosed(pass *lintkit.Pass, fd *ast.FuncDecl, closers map[*types.Func]map[int]bool) {
	type acquisition struct {
		obj  types.Object
		name string
		pos  token.Pos
	}
	var acquired []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isOpenerCall(pass, call) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil || !isCloserType(obj.Type()) {
				continue
			}
			acquired = append(acquired, acquisition{obj: obj, name: id.Name, pos: id.Pos()})
		}
		return true
	})
	for _, acq := range acquired {
		if !closedOrEscapes(pass, fd, acq.obj, closers) {
			pass.ReportSuppressible(acq.pos, "closeflush",
				"%s is opened here but never closed, flushed or handed off", acq.name)
		}
	}
}

// isOpenerCall recognizes acquisition sites: the os file openers plus any
// New*/Open*/Create* constructor.
func isOpenerCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	fn := lintkit.CalleeFunc(pass, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		switch name {
		case "Create", "Open", "OpenFile", "CreateTemp":
			return true
		}
		return false
	}
	return hasAnyPrefix(name, "New", "Open", "Create")
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) > len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// isCloserType reports whether t (or *t) has a Close or Flush method
// returning error.
func isCloserType(t types.Type) bool {
	for _, name := range []string{"Close", "Flush"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Results().Len() != 1 {
			continue
		}
		if named, ok := sig.Results().At(0).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// closedOrEscapes reports whether obj is closed/flushed, or escapes the
// function (returned, stored, captured, or passed onward).
func closedOrEscapes(pass *lintkit.Pass, fd *ast.FuncDecl, obj types.Object, closers map[*types.Func]map[int]bool) bool {
	satisfied := false
	var inspect func(n ast.Node, inLit bool) bool
	// Walk with enough parent context to classify each use of obj.
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if satisfied {
				return false
			}
			if lit, ok := m.(*ast.FuncLit); ok && !inLit {
				walk(lit.Body, true)
				return false
			}
			return inspect(m, inLit)
		})
	}
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.Info.Uses[id] == obj
	}
	inspect = func(m ast.Node, inLit bool) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && usesObj(sel.X) {
				if sel.Sel.Name == "Close" || sel.Sel.Name == "Flush" {
					satisfied = true
				}
				return true
			}
			for argI, arg := range m.Args {
				if usesObj(arg) {
					// Handed to another function: closed there (tracked
					// via facts) or ownership transferred — either way
					// this function is off the hook.
					_ = calleeCloses(pass, m, argI, closers)
					satisfied = true
				}
			}
		case *ast.SelectorExpr:
			// Method value (f.Close appended to a closer list) or field
			// store base: receiver method values of Close/Flush satisfy.
			if usesObj(m.X) && (m.Sel.Name == "Close" || m.Sel.Name == "Flush") {
				satisfied = true
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if usesObj(r) {
					satisfied = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range m.Rhs {
				if usesObj(r) {
					satisfied = true // aliased or stored; tracking stops here
				}
			}
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if usesObj(el) {
					satisfied = true
				}
			}
		case *ast.SendStmt:
			if usesObj(m.Value) {
				satisfied = true
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND && usesObj(m.X) {
				satisfied = true
			}
		case *ast.Ident:
			if inLit && pass.Info.Uses[m] == obj {
				// Captured by a closure whose body does not close it:
				// lifetime is no longer this function's to judge.
				satisfied = true
			}
		}
		return true
	}
	walk(fd.Body, false)
	return satisfied
}
