package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vc2m/internal/lintkit"
)

// FloatEq flags == and != between floating-point operands. Exact float
// comparison is the "silently wrong numbers" bug family behind the Welford
// StdDev and UtilMin=0 fixes of earlier PRs: two mathematically equal
// values rarely compare equal after independent rounding. Compare with
// timeunit.AlmostEqual (or an explicit tolerance), or — for genuinely
// exact sentinel values that are only ever assigned, never computed —
// annotate //vc2m:floateq with a justification.
//
// Comparisons where both operands are compile-time constants are exempt
// (they are evaluated in exact precision), as are _test.go files, which
// vc2m-lint never loads.
var FloatEq = &lintkit.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between float operands outside tests; use timeunit.AlmostEqual or an " +
		"explicit tolerance, or annotate //vc2m:floateq for exact sentinel comparisons",
	Run: runFloatEq,
}

func runFloatEq(pass *lintkit.Pass) {
	isFloat := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		return ok && tv.Value != nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(bin.X) && !isFloat(bin.Y) {
				return true
			}
			if isConst(bin.X) && isConst(bin.Y) {
				return true
			}
			pass.ReportSuppressible(bin.OpPos, "floateq",
				"exact float comparison %s %s %s; use timeunit.AlmostEqual or an explicit "+
					"tolerance (//vc2m:floateq if the compare is a never-computed sentinel)",
				exprString(pass.Fset, bin.X), bin.Op, exprString(pass.Fset, bin.Y))
			return true
		})
	}
}
