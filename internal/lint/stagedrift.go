package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vc2m/internal/lintkit"
)

// StageDrift cross-checks the repository's observability vocabularies so
// they cannot drift apart silently. Three string sets describe the same
// pipeline: the obs package's span stage constants (Stage*), the
// provenance package's decision stages and kinds (Stage*, Kind*), and the
// committed span_stages.golden fixture. On top of those, any package may
// annotate a composite literal of stage names with
//
//	//vc2m:stageset span
//	var stageLatStages = []string{obs.StageRun, ...}
//
// and the analyzer checks the literal's value set against the vocabulary:
//
//   - span: exactly the obs Stage* values — a missing stage is reported
//     by name, so deleting one preregistration line fails the lint run.
//   - span-subset: every value is an obs Stage* value.
//   - provenance-subset: every constant string in the literal is a
//     provenance Stage* or Kind* value.
//
// On the obs package itself the analyzer additionally checks that Stage*
// values are distinct, that KnownStages() returns every one of them, and
// that each golden-fixture line names a real stage. All diagnostics are
// mandatory: vocabulary drift has no legitimate exception.
var StageDrift = NewStageDrift(StageDriftConfig{
	ObsPkg:        "vc2m/internal/obs",
	ProvenancePkg: "vc2m/internal/provenance",
	GoldenFile:    "testdata/span_stages.golden",
})

// StageDriftConfig points the analyzer at the packages defining the
// vocabularies; tests retarget it at fixture packages.
type StageDriftConfig struct {
	// ObsPkg is the import path of the package declaring the span Stage*
	// string constants and the KnownStages() function.
	ObsPkg string
	// ProvenancePkg is the import path of the package declaring the
	// provenance Stage* and Kind* string constants.
	ProvenancePkg string
	// GoldenFile is the stage-name fixture, relative to ObsPkg's
	// directory; empty skips the golden check.
	GoldenFile string
}

// NewStageDrift builds a stagedrift analyzer over the given vocabulary
// packages.
func NewStageDrift(cfg StageDriftConfig) *lintkit.Analyzer {
	return &lintkit.Analyzer{
		Name: "stagedrift",
		Doc:  "span stages, provenance stages/kinds, preregistered stage sets and the span_stages golden agree",
		Run: func(pass *lintkit.Pass) {
			sd := &stageDrift{cfg: cfg}
			sd.run(pass)
		},
	}
}

type stageDrift struct {
	cfg StageDriftConfig
}

const (
	spanStagesFact = "spanstages"
	provVocabFact  = "provvocab"
)

func (sd *stageDrift) run(pass *lintkit.Pass) {
	if pass.Pkg.Path() == sd.cfg.ObsPkg {
		sd.checkObsPackage(pass)
	}
	if pass.Pkg.Path() == sd.cfg.ProvenancePkg {
		sd.checkProvenancePackage(pass)
	}
	sd.checkStageSets(pass)
}

// stringConsts collects the package-scope string constants whose name has
// the given prefix, in declaration order.
type namedConst struct {
	name  string
	value string
	pos   token.Pos
}

func stringConsts(pass *lintkit.Pass, prefix string) []namedConst {
	var out []namedConst
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, prefix) {
						continue
					}
					c, ok := pass.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					out = append(out, namedConst{
						name:  name.Name,
						value: constant.StringVal(c.Val()),
						pos:   name.Pos(),
					})
				}
			}
		}
	}
	return out
}

func reportDuplicates(pass *lintkit.Pass, consts []namedConst, kind string) {
	byValue := map[string]string{}
	for _, c := range consts {
		if prev, ok := byValue[c.value]; ok {
			pass.Reportf(c.pos, "%s %s duplicates the value %q of %s", kind, c.name, c.value, prev)
			continue
		}
		byValue[c.value] = c.name
	}
}

// checkObsPackage validates the span vocabulary at its source: distinct
// Stage* values, a complete KnownStages(), golden lines that name real
// stages — and exports the value set for stageset literals elsewhere.
func (sd *stageDrift) checkObsPackage(pass *lintkit.Pass) {
	stages := stringConsts(pass, "Stage")
	reportDuplicates(pass, stages, "span stage constant")
	values := map[string]string{} // value -> const name
	for _, c := range stages {
		if _, dup := values[c.value]; !dup {
			values[c.value] = c.name
		}
	}
	pass.ExportPackageFact(spanStagesFact, values)

	var known *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "KnownStages" {
				known = fd
			}
		}
	}
	if known == nil {
		if len(stages) > 0 {
			pass.Reportf(stages[0].pos, "span stage constants exist but KnownStages() is not declared in this package")
		}
	} else {
		returned := map[string]bool{}
		ast.Inspect(known.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if c, ok := pass.Info.Uses[id].(*types.Const); ok && c.Val().Kind() == constant.String {
				returned[constant.StringVal(c.Val())] = true
			}
			return true
		})
		for _, c := range stages {
			if !returned[c.value] {
				pass.Reportf(known.Pos(), "KnownStages() is missing span stage %s (%q)", c.name, c.value)
			}
		}
	}

	if sd.cfg.GoldenFile == "" {
		return
	}
	goldenPos := token.NoPos
	if known != nil {
		goldenPos = known.Pos()
	} else if len(stages) > 0 {
		goldenPos = stages[0].pos
	} else {
		return
	}
	path := filepath.Join(pass.Dir, filepath.FromSlash(sd.cfg.GoldenFile))
	data, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(goldenPos, "cannot read span-stage golden %s: %v", sd.cfg.GoldenFile, err)
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if _, ok := values[line]; !ok {
			pass.Reportf(goldenPos, "golden %s names %q, which is not a span stage constant", sd.cfg.GoldenFile, line)
		}
	}
}

// checkProvenancePackage validates the decision vocabulary and exports the
// combined stage+kind value set.
func (sd *stageDrift) checkProvenancePackage(pass *lintkit.Pass) {
	stages := stringConsts(pass, "Stage")
	kinds := stringConsts(pass, "Kind")
	reportDuplicates(pass, stages, "provenance stage constant")
	reportDuplicates(pass, kinds, "provenance kind constant")
	values := map[string]string{}
	for _, c := range append(append([]namedConst{}, stages...), kinds...) {
		if _, dup := values[c.value]; !dup {
			values[c.value] = c.name
		}
	}
	pass.ExportPackageFact(provVocabFact, values)
}

// checkStageSets validates every //vc2m:stageset-annotated composite
// literal against its declared vocabulary.
func (sd *stageDrift) checkStageSets(pass *lintkit.Pass) {
	for _, d := range pass.Directives {
		if d.Word != "stageset" {
			continue
		}
		vocab, _, _ := strings.Cut(d.Args, " ")
		file := fileNamed(pass, d.File)
		if file == nil {
			continue
		}
		pos := lineStart(pass.Fset, file, d.Line)
		lit := compositeLitAtLine(pass, file, d.Line)
		if lit == nil {
			pass.Reportf(pos, "//vc2m:stageset has no composite literal on this or the next line")
			continue
		}
		switch vocab {
		case "span", "span-subset":
			spanValues, ok := sd.spanStages(pass)
			if !ok {
				pass.Reportf(lit.Pos(), "//vc2m:stageset %s: span stage package %s is not available from this package", vocab, sd.cfg.ObsPkg)
				continue
			}
			sd.checkSpanLiteral(pass, lit, spanValues, vocab == "span")
		case "provenance-subset":
			provValues, ok := sd.provVocab(pass)
			if !ok {
				pass.Reportf(lit.Pos(), "//vc2m:stageset provenance-subset: provenance package %s is not available from this package", sd.cfg.ProvenancePkg)
				continue
			}
			for _, el := range constStringsIn(pass, lit) {
				if _, known := provValues[el.value]; !known {
					pass.Reportf(el.pos, "%q is not a provenance stage or kind", el.value)
				}
			}
		case "":
			pass.Reportf(pos, "//vc2m:stageset needs a vocabulary: span, span-subset or provenance-subset")
		default:
			pass.Reportf(pos, "//vc2m:stageset %s: unknown vocabulary (want span, span-subset or provenance-subset)", vocab)
		}
	}
}

// checkSpanLiteral compares a stage-set literal against the span stage
// values; with equality required, missing stages are named one by one.
func (sd *stageDrift) checkSpanLiteral(pass *lintkit.Pass, lit *ast.CompositeLit, spanValues map[string]string, wantEqual bool) {
	have := map[string]bool{}
	for _, el := range constStringsIn(pass, lit) {
		if _, known := spanValues[el.value]; !known {
			pass.Reportf(el.pos, "%q is not a span stage", el.value)
			continue
		}
		have[el.value] = true
	}
	if !wantEqual {
		return
	}
	missing := make([]string, 0, len(spanValues))
	for v := range spanValues { //vc2m:ordered missing stages are sorted below
		if !have[v] {
			missing = append(missing, v)
		}
	}
	sort.Strings(missing)
	for _, v := range missing {
		pass.Reportf(lit.Pos(), "stage set is missing span stage %q (%s)", v, spanValues[v])
	}
}

// spanStages resolves the span stage value set: from the package fact when
// the obs package was analyzed in this run, else from the import graph.
func (sd *stageDrift) spanStages(pass *lintkit.Pass) (map[string]string, bool) {
	if f, ok := pass.PackageFact(sd.cfg.ObsPkg, spanStagesFact); ok {
		return f.(map[string]string), true
	}
	return importedStringConsts(pass, sd.cfg.ObsPkg, "Stage")
}

func (sd *stageDrift) provVocab(pass *lintkit.Pass) (map[string]string, bool) {
	if f, ok := pass.PackageFact(sd.cfg.ProvenancePkg, provVocabFact); ok {
		return f.(map[string]string), true
	}
	stages, ok1 := importedStringConsts(pass, sd.cfg.ProvenancePkg, "Stage")
	kinds, ok2 := importedStringConsts(pass, sd.cfg.ProvenancePkg, "Kind")
	if !ok1 && !ok2 {
		return nil, false
	}
	for v, n := range kinds { //vc2m:ordered merged into a lookup map, order irrelevant
		if _, dup := stages[v]; !dup {
			stages[v] = n
		}
	}
	return stages, true
}

// importedStringConsts scans an imported package's scope for exported
// string constants with the given name prefix — the fallback when the
// vocabulary package is outside the analyzed set.
func importedStringConsts(pass *lintkit.Pass, pkgPath, prefix string) (map[string]string, bool) {
	var pkg *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == pkgPath {
			pkg = imp
			break
		}
	}
	if pkg == nil {
		if pass.Pkg.Path() == pkgPath {
			pkg = pass.Pkg
		} else {
			return nil, false
		}
	}
	values := map[string]string{}
	for _, name := range pkg.Scope().Names() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		v := constant.StringVal(c.Val())
		if _, dup := values[v]; !dup {
			values[v] = name
		}
	}
	return values, true
}

// constStrings are the constant string elements of a stage-set literal.
type constString struct {
	value string
	pos   token.Pos
}

// constStringsIn collects every constant-string expression inside the
// literal (recursing through nested literals, so struct pair tables work).
func constStringsIn(pass *lintkit.Pass, lit *ast.CompositeLit) []constString {
	var out []constString
	var fromExpr func(e ast.Expr)
	fromExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				fromExpr(el)
			}
		case *ast.KeyValueExpr:
			fromExpr(e.Value)
		default:
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				out = append(out, constString{value: constant.StringVal(tv.Value), pos: e.Pos()})
			}
		}
	}
	for _, el := range lit.Elts {
		fromExpr(el)
	}
	return out
}

// fileNamed finds the pass file with the given filename.
func fileNamed(pass *lintkit.Pass, name string) *ast.File {
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename == name {
			return f
		}
	}
	return nil
}

// lineStart returns a position at the start of the given line.
func lineStart(fset *token.FileSet, file *ast.File, line int) token.Pos {
	tf := fset.File(file.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return file.Pos()
	}
	return tf.LineStart(line)
}

// compositeLitAtLine finds the outermost composite literal starting on
// line or line+1 of the file.
func compositeLitAtLine(pass *lintkit.Pass, file *ast.File, line int) *ast.CompositeLit {
	var found *ast.CompositeLit
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		l := pass.Fset.Position(lit.Pos()).Line
		if l == line || l == line+1 {
			found = lit
			return false
		}
		return true
	})
	return found
}
