package trace

import (
	"errors"
	"strings"
	"testing"
)

// failAfterWriter accepts the first n bytes, then fails every write.
type failAfterWriter struct {
	remaining int
	writes    int
}

var errDiskFull = errors.New("disk full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errDiskFull
	}
	w.remaining -= len(p)
	return len(p), nil
}

// Regression test for the flush-on-error contract shared by the trace and
// provenance JSONL sinks: an error surfacing at flush time must be
// reported by Close, and records after the first error must be dropped
// rather than silently "written" into a dead buffer.
func TestLineWriterFlushOnError(t *testing.T) {
	// The failing writer accepts nothing, but bufio buffers ~4KB, so the
	// error only surfaces when the buffer fills or Close flushes.
	fw := &failAfterWriter{remaining: 0}
	lw := NewLineWriter(fw)

	lw.Encode(map[string]int{"a": 1})
	if lw.Err() != nil {
		t.Fatalf("error before any flush: %v", lw.Err())
	}
	err := lw.Close()
	if err == nil {
		t.Fatal("Close after failed flush returned nil error")
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("Close error %v does not wrap the underlying write error", err)
	}
	if !strings.Contains(err.Error(), "flush") {
		t.Fatalf("Close error %q does not identify the flush", err)
	}
}

func TestLineWriterDropsAfterError(t *testing.T) {
	// Small acceptance window so the error surfaces mid-stream when the
	// bufio buffer (4KB) first fills.
	fw := &failAfterWriter{remaining: 10}
	lw := NewLineWriter(fw)

	big := strings.Repeat("x", 2048)
	for i := 0; i < 8; i++ {
		lw.Encode(map[string]string{"pad": big})
	}
	if lw.Err() == nil {
		t.Fatal("expected encode error once the buffer spilled into the failing writer")
	}
	countAtError := lw.Count()
	writesAtError := fw.writes

	// Everything after the first error must be dropped: no new counted
	// records, no further writes reaching the underlying writer.
	lw.Encode(map[string]string{"pad": big})
	if lw.Count() != countAtError {
		t.Fatalf("count advanced after error: %d -> %d", countAtError, lw.Count())
	}
	if err := lw.Close(); err == nil {
		t.Fatal("Close lost the recorded error")
	}
	if fw.writes != writesAtError {
		t.Fatalf("writer received %d extra writes after the first error", fw.writes-writesAtError)
	}
}

func TestLineWriterNil(t *testing.T) {
	var lw *LineWriter
	lw.Encode(42) // must not panic
	if lw.Count() != 0 || lw.Err() != nil || lw.Close() != nil {
		t.Fatal("nil LineWriter is not a clean no-op")
	}
}
