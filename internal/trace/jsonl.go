package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLWriter streams events as JSON lines (one object per line). It is
// the capture format for horizons too large to hold in memory: events are
// encoded and flushed through the shared LineWriter as they arrive, so
// memory use is constant in the horizon. ReadJSONL is the inverse.
type JSONLWriter struct {
	lw *LineWriter
}

// NewJSONLWriter wraps w. The caller owns w; call Close to flush before
// closing the underlying file.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{lw: NewLineWriter(w)}
}

// Record implements Sink. The first encoding error is retained and
// reported by Close; subsequent events are dropped. A nil writer drops
// everything.
func (w *JSONLWriter) Record(ev Event) {
	if w == nil {
		return
	}
	w.lw.Encode(ev)
}

// Events returns the number of events written so far (0 on nil).
func (w *JSONLWriter) Events() int {
	if w == nil {
		return 0
	}
	return w.lw.Count()
}

// Close flushes buffered output and returns the first error encountered
// while recording or flushing. It does not close the underlying writer.
// Closing a nil writer is a no-op.
func (w *JSONLWriter) Close() error {
	if w == nil {
		return nil
	}
	return w.lw.Close()
}

// ReadJSONL decodes a JSON-lines stream written by JSONLWriter. Blank
// lines are skipped; a malformed line aborts with an error naming its
// line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl read: %w", err)
	}
	return events, nil
}
