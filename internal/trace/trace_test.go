package trace

import (
	"reflect"
	"testing"

	"vc2m/internal/timeunit"
)

func TestEventTypeNames(t *testing.T) {
	for ty := EventType(0); ty < numEventTypes; ty++ {
		name := ty.String()
		if name == "" {
			t.Fatalf("type %d has no name", ty)
		}
		back, err := ParseEventType(name)
		if err != nil {
			t.Fatalf("ParseEventType(%q): %v", name, err)
		}
		if back != ty {
			t.Errorf("round trip %q: got %v want %v", name, back, ty)
		}
	}
	if _, err := ParseEventType("nope"); err == nil {
		t.Error("ParseEventType accepted an unknown name")
	}
}

func mkEvents(n int) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			Type: EventType(i % int(numEventTypes)),
			Time: timeunit.Ticks(i * 10),
			Core: i % 4,
			VCPU: "v",
		}
	}
	return events
}

func TestMemoryUnbounded(t *testing.T) {
	m := NewMemory()
	in := mkEvents(100)
	for _, ev := range in {
		m.Record(ev)
	}
	if m.Len() != 100 || m.Dropped() {
		t.Fatalf("len=%d dropped=%v", m.Len(), m.Dropped())
	}
	if !reflect.DeepEqual(m.Events(), in) {
		t.Error("events differ from input")
	}
	m.Reset()
	if m.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	m := NewRing(8)
	in := mkEvents(21)
	for _, ev := range in {
		m.Record(ev)
	}
	if m.Len() != 8 {
		t.Fatalf("len=%d, want 8", m.Len())
	}
	if !m.Dropped() {
		t.Error("ring should report drops")
	}
	got := m.Events()
	want := in[len(in)-8:]
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ring contents:\n got %v\nwant %v", got, want)
	}
	// Exactly at capacity: no drops, identity order.
	m2 := NewRing(4)
	for _, ev := range in[:4] {
		m2.Record(ev)
	}
	if m2.Dropped() || !reflect.DeepEqual(m2.Events(), in[:4]) {
		t.Error("at-capacity ring mangled events")
	}
	// Non-positive capacity degrades to unbounded.
	if NewRing(0).cap != 0 {
		t.Error("NewRing(0) should be unbounded")
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live sinks should be nil")
	}
	a := NewMemory()
	if Multi(nil, a) != Sink(a) {
		t.Error("Multi of one live sink should be that sink")
	}
	b := NewMemory()
	m := Multi(a, b)
	ev := Event{Type: EvThrottle, Time: 7, Core: 2}
	m.Record(ev)
	if a.Len() != 1 || b.Len() != 1 || a.Events()[0] != ev {
		t.Error("multi did not fan out")
	}
}

func TestCountByType(t *testing.T) {
	events := []Event{
		{Type: EvJobRelease}, {Type: EvJobRelease}, {Type: EvDeadlineMiss},
	}
	got := CountByType(events)
	if got["job_release"] != 2 || got["deadline_miss"] != 1 {
		t.Errorf("counts: %v", got)
	}
}
