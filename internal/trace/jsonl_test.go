package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vc2m/internal/timeunit"
)

// TestJSONLRoundTrip: writer -> reader reproduces the stream exactly,
// including every populated field.
func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Type: EvJobRelease, Time: 0, Core: 1, VCPU: "vm/flat-t1", Task: "t1",
			Deadline: 10000, Demand: 3000, WCET: 3000},
		{Type: EvVCPUReplenish, Time: 0, Core: 1, VCPU: "vm/flat-t1",
			Budget: 3000, Deadline: 10000},
		{Type: EvContextSwitch, Time: 0, Core: 1, VCPU: "vm/flat-t1", Task: "t1", From: "vm/flat-t0"},
		{Type: EvExecSlice, Time: 3000, Core: 1, VCPU: "vm/flat-t1", Task: "t1",
			Start: 0, Budget: 0},
		{Type: EvThrottle, Time: 500, Core: 0, VCPU: "v0"},
		{Type: EvBWReplenish, Time: 1000, Core: 0, Throttled: true},
		{Type: EvJobComplete, Time: 3000, Core: 1, VCPU: "vm/flat-t1", Task: "t1",
			Start: 0, Deadline: 10000},
		{Type: EvDeadlineMiss, Time: 10000, Core: 1, VCPU: "vm/flat-t1", Task: "t1",
			Deadline: 10000, Demand: timeunit.Ticks(42)},
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, ev := range in {
		w.Record(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != len(in) {
		t.Errorf("writer counted %d events, want %d", w.Events(), len(in))
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(in) {
		t.Errorf("%d lines written, want %d", lines, len(in))
	}

	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestEventWireByteIdentity: each event line re-encodes to the same
// bytes after a round trip, and every tick-valued field names its unit
// in the tag so captures cannot be misread as milliseconds.
func TestEventWireByteIdentity(t *testing.T) {
	in := Event{
		Type: EvJobRelease, Time: 123456, Core: 2, VCPU: "vm0/v1", Task: "t3",
		Start: 1, Deadline: 133456, Budget: 2500, Demand: 2000, WCET: 1800,
	}
	first, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("event changed in round trip:\n in: %+v\nout: %+v", in, back)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("event re-encoding drifted:\nfirst:  %s\nsecond: %s", first, second)
	}
	for _, want := range []string{`"t_ticks"`, `"start_ticks"`, `"deadline_ticks"`, `"budget_ticks"`, `"demand_ticks"`, `"wcet_ticks"`} {
		if !strings.Contains(string(first), want) {
			t.Errorf("event wire encoding missing unit-suffixed tag %s: %s", want, first)
		}
	}
}

func TestReadJSONLSkipsBlanksRejectsGarbage(t *testing.T) {
	good := `{"type":"throttle","t_ticks":5,"core":0}` + "\n\n" + `{"type":"bw_replenish","t_ticks":9,"core":0,"throttled":true}` + "\n"
	events, err := ReadJSONL(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Type != EvThrottle || !events[1].Throttled {
		t.Fatalf("parsed %+v", events)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"bogus","t_ticks":1,"core":0}` + "\n")); err == nil {
		t.Error("unknown event type accepted")
	}
}
