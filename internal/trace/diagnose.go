package trace

import (
	"fmt"
	"sort"
	"strings"

	"vc2m/internal/timeunit"
)

// MissCause classifies why a job was unfinished at its deadline.
type MissCause uint8

const (
	// CauseUnknown: the window shows no resource deprivation the analyzer
	// models (e.g. the demand simply exceeded what the window could hold
	// with the configured budgets).
	CauseUnknown MissCause = iota
	// CauseOverrun: the job's demand exceeded the task's declared WCET —
	// an injected (or real) execution-time overrun. The periodic-server
	// design contains the fault to the task's own VCPU.
	CauseOverrun
	// CauseThrottled: the core spent part of the job's window throttled
	// by the memory-bandwidth regulator, and that was the dominant
	// deprivation.
	CauseThrottled
	// CauseNoBudget: the task's VCPU was out of budget for part of the
	// window (the periodic server was exhausted — typically drained by a
	// co-located task), and that was the dominant deprivation.
	CauseNoBudget
	// CausePreempted: the core executed other, EDF-preferred VCPUs for
	// the dominant share of the window while the task's VCPU still had
	// budget.
	CausePreempted

	numCauses
)

var causeNames = [numCauses]string{
	CauseUnknown:   "unknown",
	CauseOverrun:   "demand-overrun",
	CauseThrottled: "core-throttled",
	CauseNoBudget:  "vcpu-out-of-budget",
	CausePreempted: "preempted",
}

// String returns the cause's stable name.
func (c MissCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// MissDiagnosis explains one deadline miss: the reconstructed state of
// the task's core and VCPU over the missed job's window [Release, At).
type MissDiagnosis struct {
	Task    string
	VCPU    string
	Core    int
	Release timeunit.Ticks // job release
	At      timeunit.Ticks // the missed deadline
	Cause   MissCause

	// Demand is the job's execution demand; WCET the task's declared
	// worst case (Demand > WCET marks an overrun); DemandLeft what was
	// still owed at the deadline.
	Demand     timeunit.Ticks
	WCET       timeunit.Ticks
	DemandLeft timeunit.Ticks

	// The window decomposition, as fractions of [Release, At):
	// ExecFrac     — the task's VCPU held the core;
	// ThrottledFrac— the core was throttled by the BW regulator;
	// StolenFrac   — the core executed other VCPUs;
	// ExhaustedFrac— the task's VCPU had zero budget remaining.
	// Exhausted overlaps Stolen/idle time (an exhausted VCPU cannot run),
	// so the fractions need not sum to 1.
	ExecFrac      float64
	ThrottledFrac float64
	StolenFrac    float64
	ExhaustedFrac float64
}

// String renders the diagnosis as one line.
func (d MissDiagnosis) String() string {
	return fmt.Sprintf(
		"%v task %s (vcpu %s, core %d): %s — window %v..%v: ran %.0f%%, throttled %.0f%%, other VCPUs %.0f%%, budget-exhausted %.0f%%; demand %v (wcet %v), %v unfinished",
		d.At, d.Task, d.VCPU, d.Core, d.Cause,
		d.Release, d.At,
		100*d.ExecFrac, 100*d.ThrottledFrac, 100*d.StolenFrac, 100*d.ExhaustedFrac,
		d.Demand, d.WCET, d.DemandLeft)
}

// CauseCounts tallies a task's misses per cause.
type CauseCounts map[MissCause]int

// Report aggregates the per-miss diagnoses of one event stream.
type Report struct {
	// Misses holds one diagnosis per EvDeadlineMiss, in stream order.
	Misses []MissDiagnosis
	// ByTask maps task ID to its per-cause miss counts.
	ByTask map[string]CauseCounts
}

// Render formats the report: a per-task cause summary followed by the
// individual misses.
func (r *Report) Render() string {
	var b strings.Builder
	if len(r.Misses) == 0 {
		b.WriteString("no deadline misses in trace\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d deadline miss(es)\n", len(r.Misses))
	tasks := make([]string, 0, len(r.ByTask))
	for id := range r.ByTask { //vc2m:ordered keys are sorted below
		tasks = append(tasks, id)
	}
	sort.Strings(tasks)
	for _, id := range tasks {
		counts := r.ByTask[id]
		parts := make([]string, 0, len(counts))
		for c := MissCause(0); c < numCauses; c++ {
			if n := counts[c]; n > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", n, c))
			}
		}
		fmt.Fprintf(&b, "  %s: %s\n", id, strings.Join(parts, ", "))
	}
	b.WriteString("details:\n")
	for _, d := range r.Misses {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// diagCore tracks one core's replayed state.
type diagCore struct {
	throttled    bool
	throttleFrom timeunit.Ticks
	throttledAcc timeunit.Ticks // closed throttle intervals
	execAcc      timeunit.Ticks // total executed (all VCPUs)
}

// diagVCPU tracks one VCPU's replayed state.
type diagVCPU struct {
	core         int
	budget       timeunit.Ticks
	exhausted    bool
	exhaustFrom  timeunit.Ticks
	exhaustedAcc timeunit.Ticks
	execAcc      timeunit.Ticks
}

// diagJob is a pending job: its release event plus accumulator snapshots
// taken at release, so window measures are O(1) at the deadline.
type diagJob struct {
	release       Event
	coreThrottled timeunit.Ticks
	coreExec      timeunit.Ticks
	vcpuExhausted timeunit.Ticks
	vcpuExec      timeunit.Ticks
	taskExec      timeunit.Ticks
}

// Diagnose replays an event stream and attributes every deadline miss to
// a cause by reconstructing, over the missed job's window, how much time
// the task's core spent throttled, executing other VCPUs, or with the
// task's own server out of budget.
//
// Attribution order: a demand overrun (Demand > WCET on the release)
// wins outright — the fault is the task's own; otherwise the largest of
// the three deprivation measures wins; a window with no deprivation at
// all is CauseUnknown. The stream must include EvExecSlice events (i.e.
// be recorded by a full sink, not a filtered one) for the replay to see
// execution; it tolerates truncated streams (a ring that dropped the
// prefix) by treating unseen state as zero.
func Diagnose(events []Event) *Report {
	cores := map[int]*diagCore{}
	vcpus := map[string]*diagVCPU{}
	// jobs is keyed by task; the simulator keeps at most one pending job
	// per task (later releases either miss or supersede the previous job).
	jobs := map[string]*diagJob{}
	taskExec := map[string]timeunit.Ticks{}

	core := func(id int) *diagCore {
		c := cores[id]
		if c == nil {
			c = &diagCore{}
			cores[id] = c
		}
		return c
	}
	vcpu := func(id string, coreID int) *diagVCPU {
		v := vcpus[id]
		if v == nil {
			v = &diagVCPU{core: coreID}
			vcpus[id] = v
		}
		return v
	}
	// throttledAt / exhaustedAt close the open interval at t.
	throttledAt := func(c *diagCore, t timeunit.Ticks) timeunit.Ticks {
		if c.throttled && t > c.throttleFrom {
			return c.throttledAcc + (t - c.throttleFrom)
		}
		return c.throttledAcc
	}
	exhaustedAt := func(v *diagVCPU, t timeunit.Ticks) timeunit.Ticks {
		if v.exhausted && t > v.exhaustFrom {
			return v.exhaustedAcc + (t - v.exhaustFrom)
		}
		return v.exhaustedAcc
	}

	rep := &Report{ByTask: map[string]CauseCounts{}}
	for _, ev := range events {
		switch ev.Type {
		case EvThrottle:
			c := core(ev.Core)
			if !c.throttled {
				c.throttled = true
				c.throttleFrom = ev.Time
			}
		case EvBWReplenish:
			c := core(ev.Core)
			if c.throttled {
				c.throttledAcc = throttledAt(c, ev.Time)
				c.throttled = false
			}
		case EvVCPUReplenish:
			v := vcpu(ev.VCPU, ev.Core)
			if v.exhausted {
				v.exhaustedAcc = exhaustedAt(v, ev.Time)
				v.exhausted = false
			}
			v.budget = ev.Budget
		case EvExecSlice:
			dur := ev.Time - ev.Start
			if dur <= 0 {
				continue
			}
			c := core(ev.Core)
			c.execAcc += dur
			v := vcpu(ev.VCPU, ev.Core)
			v.execAcc += dur
			v.budget = ev.Budget
			if v.budget <= 0 && !v.exhausted {
				v.exhausted = true
				v.exhaustFrom = ev.Time
			}
			if ev.Task != "" {
				taskExec[ev.Task] += dur
			}
		case EvJobRelease:
			c := core(ev.Core)
			v := vcpu(ev.VCPU, ev.Core)
			jobs[ev.Task] = &diagJob{
				release:       ev,
				coreThrottled: throttledAt(c, ev.Time),
				coreExec:      c.execAcc,
				vcpuExhausted: exhaustedAt(v, ev.Time),
				vcpuExec:      v.execAcc,
				taskExec:      taskExec[ev.Task],
			}
		case EvDeadlineMiss:
			c := core(ev.Core)
			v := vcpu(ev.VCPU, ev.Core)
			d := MissDiagnosis{
				Task: ev.Task, VCPU: ev.VCPU, Core: ev.Core,
				At: ev.Time, DemandLeft: ev.Demand,
			}
			var window, throttled, stolen, exhausted, exec timeunit.Ticks
			if job := jobs[ev.Task]; job != nil {
				d.Release = job.release.Time
				d.Demand = job.release.Demand
				d.WCET = job.release.WCET
				window = ev.Time - job.release.Time
				throttled = throttledAt(c, ev.Time) - job.coreThrottled
				exhausted = exhaustedAt(v, ev.Time) - job.vcpuExhausted
				stolen = (c.execAcc - job.coreExec) - (v.execAcc - job.vcpuExec)
				exec = taskExec[ev.Task] - job.taskExec
			}
			if window > 0 {
				d.ExecFrac = timeunit.Ratio(exec, window)
				d.ThrottledFrac = timeunit.Ratio(throttled, window)
				d.StolenFrac = timeunit.Ratio(stolen, window)
				d.ExhaustedFrac = timeunit.Ratio(exhausted, window)
			}
			switch {
			case d.Demand > 0 && d.WCET > 0 && d.Demand > d.WCET:
				d.Cause = CauseOverrun
			case throttled > 0 && throttled >= stolen && throttled >= exhausted:
				d.Cause = CauseThrottled
			case exhausted > 0 && exhausted >= stolen:
				d.Cause = CauseNoBudget
			case stolen > 0:
				d.Cause = CausePreempted
			default:
				d.Cause = CauseUnknown
			}
			rep.Misses = append(rep.Misses, d)
			counts := rep.ByTask[ev.Task]
			if counts == nil {
				counts = CauseCounts{}
				rep.ByTask[ev.Task] = counts
			}
			counts[d.Cause]++
		}
	}
	return rep
}
