// Package trace is the flight recorder of the hypervisor simulator: a
// typed event stream emitted from every scheduler and regulator handler in
// package hypersim, with pluggable sinks. It turns "the task set missed
// deadlines" into "core 2 was throttled for 40% of the window in which
// task t3 missed" — the per-event visibility that analysis frameworks for
// static-partitioning interference (SP-IMPact, H-MBR) rely on.
//
// The design mirrors package metrics: a nil Sink costs nothing on hot
// paths (emission sites guard with a single nil check and never assemble
// an Event), and the stream is bit-identical across runs with the same
// seed because the simulator itself is deterministic.
//
// Three sinks ship with the package:
//
//   - Memory: an in-memory slice or fixed-capacity ring (the flight
//     recorder proper — keep the last N events of a huge run);
//   - JSONLWriter: streaming JSON-lines for horizons too large to hold in
//     memory, with ReadJSONL as its inverse;
//   - ChromeWriter: Chrome trace-event JSON (Perfetto-compatible), so any
//     run opens in ui.perfetto.dev with one thread track per (core, VCPU)
//     and instant markers for deadline misses and throttles.
//
// On top of the stream, Diagnose (diagnose.go) reconstructs per-job
// resource deprivation and attributes every deadline miss to a cause.
package trace

import (
	"fmt"

	"vc2m/internal/timeunit"
)

// EventType discriminates the events of the stream.
type EventType uint8

// The event types, one per instrumented handler site in hypersim.
const (
	// EvJobRelease: a task released a job. Carries Deadline, the job's
	// execution Demand and the task's declared WCET (Demand > WCET means
	// an injected overrun).
	EvJobRelease EventType = iota
	// EvJobComplete: a job finished. Start holds the job's release time,
	// Deadline its deadline (Time > Deadline means it completed late).
	EvJobComplete
	// EvDeadlineMiss: a job was unfinished at its deadline. Demand holds
	// the execution still owed at that instant.
	EvDeadlineMiss
	// EvVCPUReplenish: a periodic-server budget replenishment. Budget
	// holds the refilled budget, Deadline the server's new deadline.
	EvVCPUReplenish
	// EvContextSwitch: a different VCPU took the core. VCPU/Task identify
	// the incoming slice (empty when the core goes idle), From the
	// outgoing VCPU (empty when the core was idle).
	EvContextSwitch
	// EvExecSlice: a charged execution slice [Start, Time) of VCPU on
	// Core, running Task (empty while consuming budget idle). Budget
	// holds the VCPU's budget remaining after the slice.
	EvExecSlice
	// EvThrottle: the BW enforcer throttled the core (PC overflow). VCPU
	// names the VCPU that was de-scheduled, if any.
	EvThrottle
	// EvBWReplenish: the BW refiller reset the core's bandwidth budget.
	// Throttled reports whether the core had been throttled this period.
	EvBWReplenish

	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	EvJobRelease:    "job_release",
	EvJobComplete:   "job_complete",
	EvDeadlineMiss:  "deadline_miss",
	EvVCPUReplenish: "vcpu_replenish",
	EvContextSwitch: "context_switch",
	EvExecSlice:     "exec_slice",
	EvThrottle:      "throttle",
	EvBWReplenish:   "bw_replenish",
}

// String returns the snake_case name used in every export format.
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event_type(%d)", uint8(t))
}

// ParseEventType is the inverse of String.
func ParseEventType(s string) (EventType, error) {
	for i, name := range eventTypeNames {
		if name == s {
			return EventType(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event type %q", s)
}

// MarshalJSON renders the type as its snake_case name.
func (t EventType) MarshalJSON() ([]byte, error) {
	if int(t) >= len(eventTypeNames) {
		return nil, fmt.Errorf("trace: cannot marshal event type %d", uint8(t))
	}
	return []byte(`"` + eventTypeNames[t] + `"`), nil
}

// UnmarshalJSON parses the snake_case name.
func (t *EventType) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("trace: event type must be a JSON string, got %s", data)
	}
	v, err := ParseEventType(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Event is one record of the flight-recorder stream. Every event carries
// its type, tick timestamp and core; the remaining fields are populated
// per type as documented on the Ev* constants. The struct is flat (no
// pointers beyond the strings, which alias the simulator's interned IDs)
// so a memory sink stores events without per-event allocation.
//
// The JSON tags are the trace wire schema (JSONL captures replayed by
// vc2m-trace and streamed by the allocation server). Every tick-valued
// field carries an explicit _ticks suffix so readers in other languages
// cannot mistake simulator ticks (microseconds) for milliseconds; the
// schema is covered by a byte-identity round-trip test.
type Event struct {
	Type EventType      `json:"type"`
	Time timeunit.Ticks `json:"t_ticks"`
	Core int            `json:"core"`
	VCPU string         `json:"vcpu,omitempty"`
	Task string         `json:"task,omitempty"`
	// From is the outgoing VCPU of a context switch.
	From string `json:"from,omitempty"`
	// Start is the slice start (EvExecSlice) or job release (EvJobComplete).
	Start timeunit.Ticks `json:"start_ticks,omitempty"`
	// Deadline is the job's or server's deadline.
	Deadline timeunit.Ticks `json:"deadline_ticks,omitempty"`
	// Budget is the VCPU budget: refilled value on EvVCPUReplenish,
	// remaining value after the slice on EvExecSlice.
	Budget timeunit.Ticks `json:"budget_ticks,omitempty"`
	// Demand is the job's execution demand: the full demand on
	// EvJobRelease, the unfinished remainder on EvDeadlineMiss.
	Demand timeunit.Ticks `json:"demand_ticks,omitempty"`
	// WCET is the task's declared worst-case execution time at the core's
	// allocation (EvJobRelease); Demand exceeding it marks an overrun.
	WCET timeunit.Ticks `json:"wcet_ticks,omitempty"`
	// Throttled reports whether the core had been throttled in the period
	// an EvBWReplenish closes.
	Throttled bool `json:"throttled,omitempty"`
}

// Sink receives the event stream. Implementations must tolerate events
// arriving in simulation order (non-decreasing Time) and must not retain
// the Event beyond Record unless they copy it (the struct is passed by
// value, so plain appends are safe).
//
// A nil Sink is the disabled state: emission sites check for nil before
// assembling the Event, so tracing off costs one pointer comparison.
type Sink interface {
	Record(Event)
}

// Memory is an in-memory sink: unbounded by default, or a fixed-capacity
// ring keeping the most recent events when constructed with NewRing — the
// classic flight-recorder configuration for long runs where only the
// window around a failure matters.
type Memory struct {
	events []Event
	cap    int
	head   int  // ring: index of the oldest event
	full   bool // ring: wrapped at least once
}

// NewMemory returns an unbounded in-memory sink.
func NewMemory() *Memory { return &Memory{} }

// NewRing returns a ring sink retaining the most recent capacity events.
// A non-positive capacity yields an unbounded sink.
func NewRing(capacity int) *Memory {
	if capacity <= 0 {
		return NewMemory()
	}
	return &Memory{cap: capacity, events: make([]Event, 0, capacity)}
}

// Record implements Sink. A nil *Memory drops the event: like every hook
// in this repository, a nil receiver is the disabled state.
func (m *Memory) Record(ev Event) {
	if m == nil {
		return
	}
	if m.cap <= 0 {
		m.events = append(m.events, ev)
		return
	}
	if len(m.events) < m.cap {
		m.events = append(m.events, ev)
		return
	}
	m.events[m.head] = ev
	m.head++
	if m.head == m.cap {
		m.head = 0
	}
	m.full = true
}

// Len returns the number of retained events (0 on a nil sink).
func (m *Memory) Len() int {
	if m == nil {
		return 0
	}
	return len(m.events)
}

// Dropped reports whether the ring has discarded events.
func (m *Memory) Dropped() bool {
	if m == nil {
		return false
	}
	return m.full
}

// Events returns the retained events in emission order. The slice is a
// copy only when the ring has wrapped; callers must not mutate it either
// way. A nil sink has no events.
func (m *Memory) Events() []Event {
	if m == nil {
		return nil
	}
	if !m.full || m.head == 0 {
		return m.events
	}
	out := make([]Event, 0, len(m.events))
	out = append(out, m.events[m.head:]...)
	out = append(out, m.events[:m.head]...)
	return out
}

// Reset discards everything recorded so far.
func (m *Memory) Reset() {
	if m == nil {
		return
	}
	m.events = m.events[:0]
	m.head = 0
	m.full = false
}

// Multi fans one stream out to several sinks, skipping nil entries. It
// returns nil when no non-nil sink remains, and the sink itself when only
// one does, so composition never adds an indirection for the common cases.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Record(ev Event) {
	for _, s := range m {
		s.Record(ev)
	}
}

// CountByType tallies a stream per event type — the cheap summary used by
// the CLI and by tests asserting stream shape.
func CountByType(events []Event) map[string]int {
	out := make(map[string]int, numEventTypes)
	for _, ev := range events {
		out[ev.Type.String()]++
	}
	return out
}
