package trace

import (
	"strings"
	"testing"
)

// TestDiagnoseSyntheticCauses drives the analyzer with hand-built streams
// isolating each cause. End-to-end streams from real simulations are
// exercised in package hypersim's trace tests.
func TestDiagnoseSyntheticCauses(t *testing.T) {
	t.Run("throttled", func(t *testing.T) {
		// Job of 5000 on a core throttled 6000 of the 10000 window.
		rep := Diagnose([]Event{
			{Type: EvVCPUReplenish, Time: 0, Core: 0, VCPU: "v", Budget: 5000},
			{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "v", Task: "t", Deadline: 10000, Demand: 5000, WCET: 5000},
			{Type: EvExecSlice, Time: 2000, Core: 0, VCPU: "v", Task: "t", Start: 0, Budget: 3000},
			{Type: EvThrottle, Time: 2000, Core: 0, VCPU: "v"},
			{Type: EvBWReplenish, Time: 8000, Core: 0, Throttled: true},
			{Type: EvExecSlice, Time: 10000, Core: 0, VCPU: "v", Task: "t", Start: 8000, Budget: 1000},
			{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v", Task: "t", Deadline: 10000, Demand: 1000},
		})
		if len(rep.Misses) != 1 {
			t.Fatalf("%d misses", len(rep.Misses))
		}
		d := rep.Misses[0]
		if d.Cause != CauseThrottled {
			t.Errorf("cause = %v, want %v (%+v)", d.Cause, CauseThrottled, d)
		}
		if d.ThrottledFrac < 0.59 || d.ThrottledFrac > 0.61 {
			t.Errorf("throttled fraction = %v, want 0.6", d.ThrottledFrac)
		}
		if d.ExecFrac < 0.39 || d.ExecFrac > 0.41 {
			t.Errorf("exec fraction = %v, want 0.4", d.ExecFrac)
		}
	})

	t.Run("overrun", func(t *testing.T) {
		// Demand 9000 against a declared WCET of 3000.
		rep := Diagnose([]Event{
			{Type: EvVCPUReplenish, Time: 0, Core: 0, VCPU: "v", Budget: 3000},
			{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "v", Task: "t", Deadline: 10000, Demand: 9000, WCET: 3000},
			{Type: EvExecSlice, Time: 3000, Core: 0, VCPU: "v", Task: "t", Start: 0, Budget: 0},
			{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v", Task: "t", Deadline: 10000, Demand: 6000},
		})
		if len(rep.Misses) != 1 || rep.Misses[0].Cause != CauseOverrun {
			t.Fatalf("diagnosis: %+v", rep.Misses)
		}
		// Overrun wins even though the VCPU also sat exhausted.
		if rep.Misses[0].ExhaustedFrac < 0.69 {
			t.Errorf("exhausted fraction = %v, want ~0.7", rep.Misses[0].ExhaustedFrac)
		}
	})

	t.Run("no-budget", func(t *testing.T) {
		// The victim's VCPU runs a co-located task that drains the whole
		// server; the victim itself never runs.
		rep := Diagnose([]Event{
			{Type: EvVCPUReplenish, Time: 0, Core: 0, VCPU: "v", Budget: 4000},
			{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "v", Task: "hog", Deadline: 10000, Demand: 8000, WCET: 2000},
			{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "v", Task: "victim", Deadline: 10000, Demand: 2000, WCET: 2000},
			{Type: EvExecSlice, Time: 4000, Core: 0, VCPU: "v", Task: "hog", Start: 0, Budget: 0},
			{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v", Task: "hog", Deadline: 10000, Demand: 4000},
			{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v", Task: "victim", Deadline: 10000, Demand: 2000},
		})
		if len(rep.Misses) != 2 {
			t.Fatalf("%d misses", len(rep.Misses))
		}
		if rep.Misses[0].Cause != CauseOverrun {
			t.Errorf("hog cause = %v, want %v", rep.Misses[0].Cause, CauseOverrun)
		}
		if rep.Misses[1].Cause != CauseNoBudget {
			t.Errorf("victim cause = %v, want %v", rep.Misses[1].Cause, CauseNoBudget)
		}
	})

	t.Run("preempted", func(t *testing.T) {
		// Another VCPU held the core most of the window while the task's
		// own server kept budget.
		rep := Diagnose([]Event{
			{Type: EvVCPUReplenish, Time: 0, Core: 0, VCPU: "v1", Budget: 6000},
			{Type: EvVCPUReplenish, Time: 0, Core: 0, VCPU: "v2", Budget: 6000},
			{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "v2", Task: "t2", Deadline: 10000, Demand: 6000, WCET: 6000},
			{Type: EvExecSlice, Time: 6000, Core: 0, VCPU: "v1", Task: "t1", Start: 0, Budget: 0},
			{Type: EvExecSlice, Time: 10000, Core: 0, VCPU: "v2", Task: "t2", Start: 6000, Budget: 2000},
			{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v2", Task: "t2", Deadline: 10000, Demand: 2000},
		})
		if len(rep.Misses) != 1 || rep.Misses[0].Cause != CausePreempted {
			t.Fatalf("diagnosis: %+v", rep.Misses)
		}
		if f := rep.Misses[0].StolenFrac; f < 0.59 || f > 0.61 {
			t.Errorf("stolen fraction = %v, want 0.6", f)
		}
	})

	t.Run("unknown-without-context", func(t *testing.T) {
		// A bare miss with no release or slices in the stream (ring
		// dropped the prefix): no deprivation visible.
		rep := Diagnose([]Event{
			{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v", Task: "t", Demand: 100},
		})
		if len(rep.Misses) != 1 || rep.Misses[0].Cause != CauseUnknown {
			t.Fatalf("diagnosis: %+v", rep.Misses)
		}
	})
}

func TestReportRender(t *testing.T) {
	rep := Diagnose(nil)
	if !strings.Contains(rep.Render(), "no deadline misses") {
		t.Error("empty report should say so")
	}
	rep = Diagnose([]Event{
		{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "v", Task: "t", Deadline: 10000, Demand: 9000, WCET: 3000},
		{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "v", Task: "t", Demand: 6000},
	})
	out := rep.Render()
	for _, want := range []string{"1 deadline miss", "t: 1 demand-overrun", "details:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
