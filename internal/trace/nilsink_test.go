package trace

import "testing"

// The nil-receiver tests below exercise every exported pointer-receiver
// method on the registered Sink implementations with a nil receiver — the
// state a sink has when tracing is disabled. They pin the invariant the
// nilsafe analyzer enforces statically: a nil sink is a valid no-op.

func TestNilMemorySafe(t *testing.T) {
	var m *Memory
	m.Record(Event{Type: EvExecSlice})
	if got := m.Len(); got != 0 {
		t.Errorf("nil Memory.Len() = %d, want 0", got)
	}
	if m.Dropped() {
		t.Error("nil Memory.Dropped() = true, want false")
	}
	if evs := m.Events(); evs != nil {
		t.Errorf("nil Memory.Events() = %v, want nil", evs)
	}
	m.Reset()
}

func TestNilJSONLWriterSafe(t *testing.T) {
	var w *JSONLWriter
	w.Record(Event{Type: EvExecSlice})
	if got := w.Events(); got != 0 {
		t.Errorf("nil JSONLWriter.Events() = %d, want 0", got)
	}
	if err := w.Close(); err != nil {
		t.Errorf("nil JSONLWriter.Close() = %v, want nil", err)
	}
}

func TestNilChromeWriterSafe(t *testing.T) {
	var c *ChromeWriter
	c.Record(Event{Type: EvExecSlice})
	if err := c.Close(); err != nil {
		t.Errorf("nil ChromeWriter.Close() = %v, want nil", err)
	}
}
