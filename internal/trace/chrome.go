package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeWriter exports the stream in the Chrome trace-event JSON format,
// which ui.perfetto.dev and chrome://tracing open directly. The mapping:
//
//   - each core becomes a process (pid = core index, named "core N");
//   - each (core, VCPU) pair becomes a thread track (named after the
//     VCPU), so per-VCPU execution reads as one lane per server;
//   - EvExecSlice becomes a complete ("X") duration event named after the
//     running task, or "(budget idle)" for idle budget consumption;
//   - EvDeadlineMiss becomes a thread-scoped instant marker on the
//     missing task's lane; EvThrottle a process-scoped instant marker on
//     the throttled core.
//
// Other event types carry no visual information beyond the above and are
// skipped; export them with JSONLWriter when completeness matters. Ticks
// are microseconds, which is exactly the "ts"/"dur" unit the format
// expects, so timestamps pass through unconverted.
//
// ChromeWriter streams: events are written as they arrive and only the
// (core, VCPU) -> tid table is retained, so it handles huge horizons. The
// JSON object is completed by Close.
type ChromeWriter struct {
	w       io.Writer
	tids    map[chromeKey]int
	started bool
	err     error
}

type chromeKey struct {
	core int
	vcpu string
}

// chromeEvent is one trace-event record; field order fixes the output
// byte-for-byte, which the golden-file test relies on.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeWriter wraps w. The caller owns w; call Close to complete the
// JSON document before closing the underlying file.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	return &ChromeWriter{w: w, tids: map[chromeKey]int{}}
}

// Record implements Sink. A nil writer drops everything.
func (c *ChromeWriter) Record(ev Event) {
	if c == nil {
		return
	}
	switch ev.Type {
	case EvExecSlice:
		name := ev.Task
		if name == "" {
			name = "(budget idle)"
		}
		dur := int64(ev.Time - ev.Start)
		if dur <= 0 {
			dur = 1 // the format treats dur<=0 as malformed
		}
		c.emit(chromeEvent{
			Name: name, Cat: "exec", Phase: "X",
			TS: int64(ev.Start), Dur: dur,
			PID: ev.Core, TID: c.tid(ev.Core, ev.VCPU),
		})
	case EvDeadlineMiss:
		c.emit(chromeEvent{
			Name: "miss " + ev.Task, Cat: "deadline", Phase: "i",
			TS: int64(ev.Time), PID: ev.Core, TID: c.tid(ev.Core, ev.VCPU),
			Scope: "t",
			Args:  map[string]any{"demand_left_us": int64(ev.Demand)},
		})
	case EvThrottle:
		c.emit(chromeEvent{
			Name: "throttle", Cat: "regulation", Phase: "i",
			TS: int64(ev.Time), PID: ev.Core, TID: c.tid(ev.Core, ev.VCPU),
			Scope: "p",
		})
	}
}

// tid returns the thread id for the (core, vcpu) pair, emitting the
// process/thread naming metadata on first sight.
func (c *ChromeWriter) tid(core int, vcpu string) int {
	if vcpu == "" {
		vcpu = "(none)"
	}
	k := chromeKey{core, vcpu}
	if tid, ok := c.tids[k]; ok {
		return tid
	}
	tid := len(c.tids) + 1
	c.tids[k] = tid
	// Name the process once, on its first thread.
	first := true
	for other := range c.tids { //vc2m:ordered existence scan; no order dependence
		if other.core == core && other != k {
			first = false
			break
		}
	}
	if first {
		c.emit(chromeEvent{
			Name: "process_name", Phase: "M", PID: core,
			Args: map[string]any{"name": fmt.Sprintf("core %d", core)},
		})
	}
	c.emit(chromeEvent{
		Name: "thread_name", Phase: "M", PID: core, TID: tid,
		Args: map[string]any{"name": vcpu},
	})
	return tid
}

func (c *ChromeWriter) emit(ev chromeEvent) {
	if c.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		c.err = fmt.Errorf("trace: chrome encode: %w", err)
		return
	}
	var prefix string
	if !c.started {
		prefix = `{"displayTimeUnit":"ms","traceEvents":[` + "\n"
		c.started = true
	} else {
		prefix = ",\n"
	}
	if _, err := io.WriteString(c.w, prefix); err != nil {
		c.err = fmt.Errorf("trace: chrome write: %w", err)
		return
	}
	if _, err := c.w.Write(data); err != nil {
		c.err = fmt.Errorf("trace: chrome write: %w", err)
	}
}

// Close completes the JSON document and returns the first error seen. It
// does not close the underlying writer. Closing a writer that recorded no
// events still produces a valid, empty trace document; closing a nil
// writer is a no-op.
func (c *ChromeWriter) Close() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	var tail string
	if !c.started {
		tail = `{"displayTimeUnit":"ms","traceEvents":[]}` + "\n"
	} else {
		tail = "\n]}\n"
	}
	if _, err := io.WriteString(c.w, tail); err != nil {
		c.err = fmt.Errorf("trace: chrome write: %w", err)
	}
	return c.err
}

// WriteChrome exports a complete event slice as a Chrome trace-event JSON
// document — the one-shot form of ChromeWriter used by the CLI converter.
func WriteChrome(w io.Writer, events []Event) error {
	cw := NewChromeWriter(w)
	for _, ev := range events {
		cw.Record(ev)
	}
	return cw.Close()
}
