package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// LineWriter is the shared buffered JSON-lines encoder behind the trace
// and provenance JSONL sinks: one object per line, encoded through a
// buffered writer so memory use is constant in the stream length, first
// error retained and reported by Close, records after an error dropped.
type LineWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

// NewLineWriter wraps w. The caller owns w; call Close to flush before
// closing the underlying file.
func NewLineWriter(w io.Writer) *LineWriter {
	bw := bufio.NewWriter(w)
	return &LineWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode writes v as one JSON line. The first error is retained (and
// reported by Close); subsequent values are dropped. A nil writer drops
// everything.
func (w *LineWriter) Encode(v any) {
	if w == nil {
		return
	}
	if w.err != nil {
		return
	}
	if err := w.enc.Encode(v); err != nil {
		w.err = fmt.Errorf("trace: jsonl encode: %w", err)
		return
	}
	w.n++
}

// Count returns the number of values successfully encoded (0 on nil).
func (w *LineWriter) Count() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Err returns the first error encountered so far, without flushing.
func (w *LineWriter) Err() error {
	if w == nil {
		return nil
	}
	return w.err
}

// Close flushes buffered output and returns the first error encountered
// while encoding or flushing. It does not close the underlying writer.
// Closing a nil writer is a no-op.
func (w *LineWriter) Close() error {
	if w == nil {
		return nil
	}
	if err := w.bw.Flush(); w.err == nil && err != nil {
		w.err = fmt.Errorf("trace: jsonl flush: %w", err)
	}
	return w.err
}
