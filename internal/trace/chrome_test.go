package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a small fixed stream covering every exported shape:
// two cores, two VCPUs on core 0, idle budget burn, a miss and a throttle.
func goldenEvents() []Event {
	return []Event{
		{Type: EvJobRelease, Time: 0, Core: 0, VCPU: "vm/flat-a", Task: "a", Deadline: 10000, Demand: 3000, WCET: 3000},
		{Type: EvExecSlice, Time: 3000, Core: 0, VCPU: "vm/flat-a", Task: "a", Start: 0, Budget: 0},
		{Type: EvExecSlice, Time: 5000, Core: 0, VCPU: "vm/wr-0", Task: "", Start: 3000, Budget: 1000},
		{Type: EvExecSlice, Time: 4000, Core: 1, VCPU: "vm2/flat-b", Task: "b", Start: 1000, Budget: 2000},
		{Type: EvThrottle, Time: 4500, Core: 1, VCPU: "vm2/flat-b", Task: "b"},
		{Type: EvBWReplenish, Time: 5000, Core: 1, Throttled: true},
		{Type: EvDeadlineMiss, Time: 10000, Core: 0, VCPU: "vm/flat-a", Task: "a", Deadline: 10000, Demand: 1200},
	}
}

// TestChromeGolden locks the exporter's exact output: the format is
// consumed by external tools (ui.perfetto.dev), so byte-level drift is a
// compatibility event that should be deliberate. Regenerate with
// `go test ./internal/trace -run TestChromeGolden -update`.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output drifted from golden file %s:\n%s", path, buf.String())
	}
}

// chromeDoc mirrors the Chrome trace-event JSON object model used for
// schema validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name  string `json:"name"`
		Phase string `json:"ph"`
		TS    *int64 `json:"ts"`
		Dur   int64  `json:"dur"`
		PID   *int   `json:"pid"`
		TID   *int   `json:"tid"`
		Scope string `json:"s"`
	} `json:"traceEvents"`
}

// TestChromeSchema validates the export as Chrome trace-event JSON: a
// well-formed document whose every record has a phase, timestamp (except
// metadata) and pid/tid, with duration events strictly positive.
func TestChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	var sliceCount, missCount, throttleCount int
	for i, ev := range doc.TraceEvents {
		if ev.Phase == "" || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		switch ev.Phase {
		case "X":
			sliceCount++
			if ev.Dur <= 0 {
				t.Errorf("event %d: non-positive duration %d", i, ev.Dur)
			}
			if ev.TS == nil {
				t.Errorf("event %d: duration event without ts", i)
			}
		case "i":
			if ev.Scope != "t" && ev.Scope != "p" {
				t.Errorf("event %d: instant scope %q", i, ev.Scope)
			}
			switch ev.Name {
			case "throttle":
				throttleCount++
			default:
				missCount++
			}
		case "M":
			// metadata: name only
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Phase)
		}
	}
	if sliceCount != 3 || missCount != 1 || throttleCount != 1 {
		t.Errorf("exported %d slices, %d misses, %d throttles; want 3/1/1",
			sliceCount, missCount, throttleCount)
	}
}

// TestChromeEmpty: a writer closed without events still yields a valid,
// empty document.
func TestChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewChromeWriter(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v (%s)", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty export has %d events", len(doc.TraceEvents))
	}
}
