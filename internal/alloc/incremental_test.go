package alloc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// ---- helpers -------------------------------------------------------------

// constVM builds a single-task VM whose WCET is resource-insensitive, so
// its flattened VCPU has the given bandwidth under every allocation.
func constVM(id string, util float64) *model.VM {
	const period = 100.0
	return &model.VM{ID: id, Tasks: []*model.Task{{
		ID: id + "-t0", VM: id, Period: period,
		WCET: model.ConstTable(model.PlatformA, util*period),
	}}}
}

// churnVCPU builds the flattened VCPU of constVM(id, util) directly, for
// hand-built previous layouts where the test controls every placement.
func churnVCPU(id string, idx int, util float64) *model.VCPU {
	const period = 100.0
	tbl := model.ConstTable(model.PlatformA, util*period)
	return &model.VCPU{
		ID: id + "-v0", VM: id, Index: idx, Period: period, Budget: tbl,
		SyncedRelease: true,
		Tasks: []*model.Task{{
			ID: id + "-t0", VM: id, Period: period, WCET: tbl,
		}},
	}
}

// vcpuPlacement is one VM's layout entry used for byte-comparison: the
// VCPU's full interface plus the physical core hosting it.
type vcpuPlacement struct {
	Core int         `json:"core"`
	VCPU *model.VCPU `json:"vcpu"`
}

// layoutOf extracts one VM's placements, sorted by VCPU ID, marshaled to
// bytes so tests compare layouts byte-for-byte.
func layoutOf(t *testing.T, a *model.Allocation, vmID string) []byte {
	t.Helper()
	var ps []vcpuPlacement
	for _, ca := range a.Cores {
		for _, v := range ca.VCPUs {
			if v.VM == vmID {
				ps = append(ps, vcpuPlacement{Core: ca.Core, VCPU: v})
			}
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].VCPU.ID < ps[j].VCPU.ID })
	b, err := json.Marshal(ps)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// allocBytes marshals a whole allocation for byte-identity checks.
func allocBytes(t *testing.T, a *model.Allocation) []byte {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// coreOfVCPUs maps every VCPU ID to its physical core.
func coreOfVCPUs(a *model.Allocation) map[string]int {
	out := map[string]int{}
	for _, ca := range a.Cores {
		for _, v := range ca.VCPUs {
			out[v.ID] = ca.Core
		}
	}
	return out
}

// fleetTasks collects the task set of the current fleet, sorted by VM ID
// for deterministic iteration.
func fleetTasks(fleet map[string]*model.VM) []*model.Task {
	ids := make([]string, 0, len(fleet))
	for id := range fleet { //vc2m:ordered keys are collected and sorted before use
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []*model.Task
	for _, id := range ids {
		out = append(out, fleet[id].Tasks...)
	}
	return out
}

// fleetVMs returns the fleet as a sorted slice, the System input for the
// from-scratch differential run.
func fleetVMs(fleet map[string]*model.VM) []*model.VM {
	ids := make([]string, 0, len(fleet))
	for id := range fleet { //vc2m:ordered keys are collected and sorted before use
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*model.VM, 0, len(ids))
	for _, id := range ids {
		out = append(out, fleet[id])
	}
	return out
}

// genChurnVM generates one arrival VM from the workload model, renamed so
// IDs never collide with the base fleet or other arrivals.
func genChurnVM(t *testing.T, seed int64, util float64, tag string) *model.VM {
	t.Helper()
	sys, err := workload.Generate(workload.Config{
		Platform:      model.PlatformA,
		TargetRefUtil: util,
		Dist:          workload.Uniform,
		NumVMs:        1,
	}, rngutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	vm := sys.VMs[0]
	vm.ID = tag
	for i, tk := range vm.Tasks {
		tk.ID = fmt.Sprintf("%s-t%d", tag, i)
		tk.VM = tag
	}
	return vm
}

// ---- the differential oracle --------------------------------------------

// TestIncrementalDifferentialEquivalence is the correctness anchor of the
// warm-start path: for randomized seeded churn sequences, after every
// event the incremental layout must validate against the final fleet's
// tasks (resource-budget feasibility: partition sums within C/B, every
// core utilization <= 1, every task mapped exactly once), and a
// from-scratch allocation of the same final VM set must agree on the
// schedulability verdict. Deterministically infeasible arrivals (a VCPU
// over bandwidth 1 under the full allocation) must be rejected by both
// paths. Runs across both CSA modes; `go test -race` covers the suite.
func TestIncrementalDifferentialEquivalence(t *testing.T) {
	modes := []struct {
		name string
		mode CSAMode
	}{
		{"flattening", Flattening},
		{"existing-csa", ExistingCSA},
	}
	const numSeeds = 50
	for _, m := range modes {
		for seed := int64(0); seed < numSeeds; seed++ {
			t.Run(fmt.Sprintf("%s/seed%02d", m.name, seed), func(t *testing.T) {
				t.Parallel()
				runChurnSequence(t, m.mode, seed)
			})
		}
	}
}

func runChurnSequence(t *testing.T, mode CSAMode, seed int64) {
	t.Helper()
	// Base fleet: start from a utilization where most seeds are
	// schedulable; fall back to lighter fleets for the rest so every seed
	// exercises the churn path.
	var cur *model.Allocation
	fleet := map[string]*model.VM{}
	for _, util := range []float64{0.9, 0.6, 0.3} {
		sys, err := workload.Generate(workload.Config{
			Platform:      model.PlatformA,
			TargetRefUtil: util,
			Dist:          workload.Uniform,
			NumVMs:        3,
		}, rngutil.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		h := &Heuristic{Mode: mode}
		a, err := h.Allocate(sys, rngutil.New(seed))
		if err == nil {
			cur = a
			for _, vm := range sys.VMs {
				fleet[vm.ID] = vm
			}
			break
		}
		if !errors.Is(err, model.ErrNotSchedulable) {
			t.Fatal(err)
		}
	}
	if cur == nil {
		t.Fatalf("no schedulable base fleet found for seed %d", seed)
	}

	// Arrival pool: small VMs the sequence draws from in order, plus one
	// deterministically infeasible "poison" VM injected mid-sequence.
	var pool []*model.VM
	for k := 0; k < 8; k++ {
		u := 0.2 + 0.05*float64(k%4)
		pool = append(pool, genChurnVM(t, seed*131+int64(k)+1, u, fmt.Sprintf("arr%d", k)))
	}
	poison := constVM("poison", 1.5)

	const events = 6
	const poisonEvent = 2
	rng := rngutil.New(seed ^ 0x5DEECE66D)
	nextArrival := 0
	for ev := 0; ev < events; ev++ {
		var delta Delta
		switch {
		case ev == poisonEvent:
			delta.Arrivals = []*model.VM{poison}
		case len(fleet) > 1 && rng.Int63()%2 == 0:
			ids := make([]string, 0, len(fleet))
			for id := range fleet { //vc2m:ordered keys are collected and sorted before use
				ids = append(ids, id)
			}
			sort.Strings(ids)
			delta.Departures = []string{ids[int(rng.Int63())%len(ids)]}
		default:
			if nextArrival >= len(pool) {
				continue
			}
			delta.Arrivals = []*model.VM{pool[nextArrival]}
			nextArrival++
		}

		before := allocBytes(t, cur)
		res, err := Incremental(cur, delta, IncrementalConfig{Mode: mode}, rngutil.New(seed*7+int64(ev)))
		if err != nil {
			t.Fatalf("event %d: Incremental: %v", ev, err)
		}
		if got := len(res.Admitted) + len(res.Rejected); got != len(delta.Arrivals) {
			t.Fatalf("event %d: %d arrivals, but %d admitted + %d rejected",
				ev, len(delta.Arrivals), len(res.Admitted), len(res.Rejected))
		}
		for _, id := range delta.Departures {
			delete(fleet, id)
		}
		for _, id := range res.Admitted {
			for _, vm := range delta.Arrivals {
				if vm.ID == id {
					fleet[id] = vm
				}
			}
		}

		// Resource-budget feasibility of the incremental layout against
		// the final fleet's tasks.
		tasks := fleetTasks(fleet)
		if err := res.Allocation.Validate(tasks); err != nil {
			t.Fatalf("event %d: incremental layout invalid: %v", ev, err)
		}

		if ev == poisonEvent {
			if len(res.Rejected) != 1 || res.Rejected[0] != poison.ID {
				t.Fatalf("event %d: poison VM not rejected (rejected=%v)", ev, res.Rejected)
			}
			// A pure-arrival rejection must leave the layout untouched.
			if string(before) != string(allocBytes(t, res.Allocation)) {
				t.Fatalf("event %d: rejected arrival changed the layout", ev)
			}
			// The from-scratch path must reject the same fleet+poison set.
			withPoison := append(append([]*model.VM(nil), fleetVMs(fleet)...), poison)
			h := &Heuristic{Mode: mode}
			if _, err := h.Allocate(&model.System{Platform: model.PlatformA, VMs: withPoison},
				rngutil.New(seed*13+int64(ev))); !errors.Is(err, model.ErrNotSchedulable) {
				t.Fatalf("event %d: from-scratch accepted the poison fleet (err=%v)", ev, err)
			}
		}

		// Differential verdict: the incremental layout is a schedulability
		// witness for the current fleet, so a from-scratch allocation of
		// the same VM set must also find it schedulable — and feasible.
		// The from-scratch heuristic is randomized (cluster permutations,
		// and under existing CSA even the derived interfaces depend on RNG
		// state), so it gets a handful of seeds before the verdicts are
		// declared to disagree.
		scratch, err := scratchAllocate(fleet, mode, seed*13+int64(ev))
		if err != nil {
			t.Fatalf("event %d: from-scratch disagrees: incremental admitted fleet %v but every scratch attempt failed: %v",
				ev, sortedKeys(fleet), err)
		}
		if err := scratch.Validate(tasks); err != nil {
			t.Fatalf("event %d: from-scratch layout invalid: %v", ev, err)
		}
		cur = res.Allocation
	}
}

// scratchAllocate runs the from-scratch heuristic on the fleet, retrying
// across a few seeds: the heuristic is randomized and incomplete, so one
// unlucky permutation draw must not read as a verdict disagreement.
func scratchAllocate(fleet map[string]*model.VM, mode CSAMode, baseSeed int64) (*model.Allocation, error) {
	sys := &model.System{Platform: model.PlatformA, VMs: fleetVMs(fleet)}
	var lastErr error
	for attempt := int64(0); attempt < 5; attempt++ {
		h := &Heuristic{Mode: mode}
		a, err := h.Allocate(sys, rngutil.New(baseSeed+attempt))
		if err == nil {
			return a, nil
		}
		if !errors.Is(err, model.ErrNotSchedulable) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

func sortedKeys(m map[string]*model.VM) []string {
	out := make([]string, 0, len(m))
	for k := range m { //vc2m:ordered keys are collected and sorted before use
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- property tests: layout-delta invariants ----------------------------

// handBuiltBase returns a fully hand-built schedulable layout on
// PlatformA: three cores, two 0.45-bandwidth VCPUs each, every partition
// granted (no spares) — so a warm placement of anything is impossible and
// an arrival must trigger a repack.
func handBuiltBase() *model.Allocation {
	mk := func(core, cache, bw int, vcpus ...*model.VCPU) *model.CoreAlloc {
		return &model.CoreAlloc{Core: core, Cache: cache, BW: bw, VCPUs: vcpus}
	}
	return &model.Allocation{
		Platform:    model.PlatformA,
		Schedulable: true,
		Solution:    "hand-built",
		Cores: []*model.CoreAlloc{
			mk(0, 8, 10, churnVCPU("vmA", 0, 0.45), churnVCPU("vmB", 1, 0.45)),
			mk(1, 6, 5, churnVCPU("vmC", 2, 0.45), churnVCPU("vmD", 3, 0.45)),
			mk(2, 6, 5, churnVCPU("vmE", 4, 0.45), churnVCPU("vmF", 5, 0.45)),
		},
	}
}

// slackBase is a layout with plenty of slack and free partitions, so
// arrivals warm-place without any repack.
func slackBase() *model.Allocation {
	return &model.Allocation{
		Platform:    model.PlatformA,
		Schedulable: true,
		Solution:    "hand-built",
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 4, BW: 4, VCPUs: []*model.VCPU{churnVCPU("vmA", 0, 0.5)}},
			{Core: 1, Cache: 4, BW: 4, VCPUs: []*model.VCPU{churnVCPU("vmB", 1, 0.5)}},
		},
	}
}

// TestIncrementalWarmKeepsUntouchedVMs: on the warm path (no repack),
// every untouched VM keeps byte-identical interfaces and placements, no
// migrations are reported, and the provenance stream holds no migrate
// decision — no phantom migrations.
func TestIncrementalWarmKeepsUntouchedVMs(t *testing.T) {
	prev := slackBase()
	prevLayouts := map[string][]byte{
		"vmA": layoutOf(t, prev, "vmA"),
		"vmB": layoutOf(t, prev, "vmB"),
	}
	prov := provenance.New()
	res, err := Incremental(prev, Delta{Arrivals: []*model.VM{constVM("vmNew", 0.4)}},
		IncrementalConfig{Mode: Flattening, Provenance: prov}, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Repacks != 0 {
		t.Fatalf("expected warm placement, got %d repacks", res.Repacks)
	}
	if len(res.Migrated) != 0 {
		t.Fatalf("warm placement reported migrations: %v", res.Migrated)
	}
	if len(res.Admitted) != 1 || res.Admitted[0] != "vmNew" {
		t.Fatalf("admitted = %v, want [vmNew]", res.Admitted)
	}
	for vm, want := range prevLayouts { //vc2m:ordered independent per-VM checks; order cannot affect the verdict
		if got := layoutOf(t, res.Allocation, vm); string(got) != string(want) {
			t.Errorf("untouched VM %s layout changed:\n  before %s\n  after  %s", vm, want, got)
		}
	}
	for _, d := range prov.Decisions() {
		if d.Kind == provenance.KindMigrate {
			t.Errorf("phantom migration recorded: %+v", d)
		}
	}
}

// TestIncrementalRepackMigratedSetExact: when the fallback repack fires,
// the provenance migrate decisions and IncrementalResult.Migrated name
// exactly the VCPUs whose physical core changed — computed independently
// by diffing the layouts — and nothing else.
func TestIncrementalRepackMigratedSetExact(t *testing.T) {
	prev := handBuiltBase()
	before := coreOfVCPUs(prev)
	prov := provenance.New()
	res, err := Incremental(prev, Delta{Arrivals: []*model.VM{constVM("vmG", 0.45)}},
		IncrementalConfig{Mode: Flattening, Provenance: prov}, rngutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 1 || res.Admitted[0] != "vmG" {
		t.Fatalf("admitted = %v (rejected = %v), want [vmG]", res.Admitted, res.Rejected)
	}
	if res.Repacks != 1 {
		t.Fatalf("repacks = %d, want 1 (no spare partition, every core loaded)", res.Repacks)
	}
	after := coreOfVCPUs(res.Allocation)
	moved := map[string]bool{}
	for id, c := range before { //vc2m:ordered builds an unordered membership set
		if after[id] != c {
			moved[id] = true
		}
	}
	gotResult := map[string]bool{}
	for _, id := range res.Migrated {
		if gotResult[id] {
			t.Errorf("Migrated lists %s twice", id)
		}
		gotResult[id] = true
	}
	gotProv := map[string]bool{}
	for _, d := range prov.Decisions() {
		if d.Stage == provenance.StageRepack && d.Kind == provenance.KindMigrate {
			if gotProv[d.Subject] {
				t.Errorf("migrate decision for %s recorded twice", d.Subject)
			}
			gotProv[d.Subject] = true
		}
	}
	for id := range moved { //vc2m:ordered independent membership checks; order cannot affect the verdict
		if !gotResult[id] {
			t.Errorf("VCPU %s moved (core %d -> %d) but is missing from Migrated", id, before[id], after[id])
		}
		if !gotProv[id] {
			t.Errorf("VCPU %s moved but has no migrate decision", id)
		}
	}
	for id := range gotResult { //vc2m:ordered independent membership checks; order cannot affect the verdict
		if !moved[id] {
			t.Errorf("phantom migration in result: %s did not change cores", id)
		}
	}
	for id := range gotProv { //vc2m:ordered independent membership checks; order cannot affect the verdict
		if !moved[id] {
			t.Errorf("phantom migrate decision: %s did not change cores", id)
		}
	}
	if err := res.Allocation.Validate(nil); err != nil {
		t.Fatalf("repacked layout invalid: %v", err)
	}
}

// TestIncrementalDepartureFreesCapacity: a departure returns an emptied
// core's partitions to the spare pool, and the next arrival warm-places
// into exactly that freed capacity — no repack needed even though the
// layout was saturated before the departure.
func TestIncrementalDepartureFreesCapacity(t *testing.T) {
	prev := handBuiltBase()
	prov := provenance.New()
	res, err := Incremental(prev, Delta{
		Departures: []string{"vmA", "vmB"}, // empties core 0, frees 8 cache + 10 bw
		Arrivals:   []*model.VM{constVM("vmG", 0.8)},
	}, IncrementalConfig{Mode: Flattening, Provenance: prov}, rngutil.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Departed; len(got) != 2 || got[0] != "vmA" || got[1] != "vmB" {
		t.Fatalf("departed = %v, want [vmA vmB]", got)
	}
	if len(res.Admitted) != 1 || res.Admitted[0] != "vmG" {
		t.Fatalf("admitted = %v (rejected %v), want [vmG]", res.Admitted, res.Rejected)
	}
	if res.Repacks != 0 {
		t.Fatalf("expected warm placement into freed capacity, got %d repacks", res.Repacks)
	}
	evicts := 0
	for _, d := range prov.Decisions() {
		if d.Stage == provenance.StageIncremental && d.Kind == provenance.KindEvict {
			evicts++
		}
	}
	if evicts != 2 {
		t.Fatalf("evict decisions = %d, want 2", evicts)
	}
	if err := res.Allocation.Validate(nil); err != nil {
		t.Fatalf("layout invalid after depart+arrive: %v", err)
	}
	for _, ca := range res.Allocation.Cores {
		for _, v := range ca.VCPUs {
			if v.VM == "vmA" || v.VM == "vmB" {
				t.Fatalf("departed VM %s still placed", v.VM)
			}
		}
	}
}

// TestIncrementalRejectLeavesLayoutUnchanged: a deterministically
// infeasible arrival is rejected (not an error) and the returned layout is
// byte-identical to the previous one.
func TestIncrementalRejectLeavesLayoutUnchanged(t *testing.T) {
	prev := slackBase()
	before := allocBytes(t, prev)
	res, err := Incremental(prev, Delta{Arrivals: []*model.VM{constVM("heavy", 1.5)}},
		IncrementalConfig{Mode: Flattening}, rngutil.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 || res.Rejected[0] != "heavy" {
		t.Fatalf("rejected = %v, want [heavy]", res.Rejected)
	}
	if len(res.Admitted) != 0 {
		t.Fatalf("admitted = %v, want none", res.Admitted)
	}
	if string(allocBytes(t, res.Allocation)) != string(before) {
		t.Fatal("rejected arrival changed the layout")
	}
}

// TestIncrementalEmptyDeltaIsIdentity: a no-op delta returns a layout
// byte-identical to the previous one.
func TestIncrementalEmptyDeltaIsIdentity(t *testing.T) {
	prev := handBuiltBase()
	res, err := Incremental(prev, Delta{}, IncrementalConfig{Mode: Flattening}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(allocBytes(t, res.Allocation)) != string(allocBytes(t, prev)) {
		t.Fatal("empty delta changed the layout")
	}
}

// TestIncrementalFromEmptyBase: warm-start admission works from an empty
// (zero-core) schedulable layout — the fleet bootstrap path the server and
// the fuzz harness use.
func TestIncrementalFromEmptyBase(t *testing.T) {
	prev := &model.Allocation{Platform: model.PlatformA, Schedulable: true}
	res, err := Incremental(prev, Delta{Arrivals: []*model.VM{
		constVM("vm0", 0.5), constVM("vm1", 0.5),
	}}, IncrementalConfig{Mode: Flattening}, rngutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admitted) != 2 {
		t.Fatalf("admitted = %v, want both VMs", res.Admitted)
	}
	if err := res.Allocation.Validate(nil); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalErrors: invalid input is an error (not a rejection) and
// never mutates the previous layout.
func TestIncrementalErrors(t *testing.T) {
	mismatched := &model.VM{ID: "vmX", Tasks: []*model.Task{{
		ID: "vmX-t0", VM: "vmX", Period: 100,
		WCET: model.ConstTable(model.PlatformC, 10), // PlatformC table on a PlatformA layout
	}}}
	cases := []struct {
		name  string
		prev  *model.Allocation
		delta Delta
	}{
		{"nil previous", nil, Delta{}},
		{"unschedulable previous", &model.Allocation{Platform: model.PlatformA}, Delta{}},
		{"unknown departure", slackBase(), Delta{Departures: []string{"ghost"}}},
		{"double departure", slackBase(), Delta{Departures: []string{"vmA", "vmA"}}},
		{"duplicate arrival", slackBase(), Delta{Arrivals: []*model.VM{constVM("vmA", 0.1)}}},
		{"duplicate arrival in delta", slackBase(),
			Delta{Arrivals: []*model.VM{constVM("vmN", 0.1), constVM("vmN", 0.1)}}},
		{"nil arrival", slackBase(), Delta{Arrivals: []*model.VM{nil}}},
		{"taskless arrival", slackBase(), Delta{Arrivals: []*model.VM{{ID: "vmT"}}}},
		{"mismatched table bounds", slackBase(), Delta{Arrivals: []*model.VM{mismatched}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var before []byte
			if tc.prev != nil {
				before = allocBytes(t, tc.prev)
			}
			_, err := Incremental(tc.prev, tc.delta, IncrementalConfig{Mode: Flattening}, nil)
			if err == nil {
				t.Fatal("expected an error")
			}
			if tc.prev != nil {
				if string(allocBytes(t, tc.prev)) != string(before) {
					t.Fatal("failed Incremental mutated the previous layout")
				}
			}
		})
	}
}
