package alloc

import (
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

// exhaustiveFeasible decides schedulability of a tiny system by brute
// force: it enumerates every task-to-core assignment and every split of
// cache and BW partitions across the used cores, accepting if some
// configuration gives every core utilization at most 1 under flattening
// (which is optimal for per-core EDF: VCPU bandwidth equals task
// utilization, so per-core feasibility is exactly sum of u_i(c,b) <= 1).
// Only usable for very small instances.
func exhaustiveFeasible(tasks []*model.Task, plat model.Platform) bool {
	assign := make([]int, len(tasks))
	var tryAssign func(i int) bool
	tryAssign = func(i int) bool {
		if i == len(tasks) {
			return feasibleSplit(tasks, assign, plat)
		}
		for c := 0; c < plat.M; c++ {
			assign[i] = c
			if tryAssign(i + 1) {
				return true
			}
		}
		return false
	}
	return tryAssign(0)
}

// feasibleSplit checks whether some partition split schedules the given
// task-to-core assignment.
func feasibleSplit(tasks []*model.Task, assign []int, plat model.Platform) bool {
	used := map[int]bool{}
	for _, c := range assign {
		used[c] = true
	}
	var cores []int
	for c := range used {
		cores = append(cores, c)
	}
	cache := make(map[int]int, len(cores))
	bw := make(map[int]int, len(cores))

	var tryCache func(i, left int) bool
	var tryBW func(i, left int) bool

	coreOK := func(c int) bool {
		var u float64
		for ti, tc := range assign {
			if tc == c {
				u += tasks[ti].Util(cache[c], bw[c])
			}
		}
		return u <= 1+1e-9
	}

	tryBW = func(i, left int) bool {
		if i == len(cores) {
			for _, c := range cores {
				if !coreOK(c) {
					return false
				}
			}
			return true
		}
		maxHere := left - plat.Bmin*(len(cores)-i-1)
		if maxHere > plat.B {
			maxHere = plat.B
		}
		for n := plat.Bmin; n <= maxHere; n++ {
			bw[cores[i]] = n
			if tryBW(i+1, left-n) {
				return true
			}
		}
		return false
	}
	tryCache = func(i, left int) bool {
		if i == len(cores) {
			return tryBW(0, plat.B)
		}
		maxHere := left - plat.Cmin*(len(cores)-i-1)
		if maxHere > plat.C {
			maxHere = plat.C
		}
		for n := plat.Cmin; n <= maxHere; n++ {
			cache[cores[i]] = n
			if tryCache(i+1, left-n) {
				return true
			}
		}
		return false
	}
	return tryCache(0, plat.C)
}

// tinyPlatform keeps the exhaustive search tractable.
var tinyPlatform = model.Platform{Name: "tiny", M: 2, C: 6, B: 6, Cmin: 1, Bmin: 1}

// randomTinyTasks builds 2-4 benchmark-profiled tasks on the tiny
// platform.
func randomTinyTasks(rng *rngutil.RNG) []*model.Task {
	n := 2 + rng.Intn(3)
	tasks := make([]*model.Task, n)
	for i := range tasks {
		bm := parsec.All[rng.Intn(len(parsec.All))]
		period := 100.0 * float64(int(1)<<uint(rng.Intn(3)))
		util := rng.Uniform(0.15, 0.6)
		tasks[i] = &model.Task{
			ID:        string(rune('a' + i)),
			VM:        "vm",
			Period:    period,
			WCET:      bm.WCETTable(tinyPlatform, period*util),
			Benchmark: bm.Name,
		}
	}
	return tasks
}

// TestAllocatorSoundAgainstExhaustive cross-checks the vC2M allocator
// against brute force on tiny instances: whenever the heuristic says
// schedulable, the exhaustive search must agree (soundness — the
// heuristic can never over-promise). The converse may fail (it is a
// heuristic), and the test reports how often it finds the feasible
// solutions that exist.
func TestAllocatorSoundAgainstExhaustive(t *testing.T) {
	h := &Heuristic{Mode: Flattening}
	rng := rngutil.New(2024)
	heuristicYes, exhaustiveYes := 0, 0
	for trial := 0; trial < 25; trial++ {
		tasks := randomTinyTasks(rng)
		sys := &model.System{Platform: tinyPlatform, VMs: []*model.VM{{ID: "vm", Tasks: tasks}}}
		_, err := h.Allocate(sys, rngutil.New(int64(trial)))
		heuristic := err == nil
		exhaustive := exhaustiveFeasible(tasks, tinyPlatform)
		if heuristic {
			heuristicYes++
		}
		if exhaustive {
			exhaustiveYes++
		}
		if heuristic && !exhaustive {
			t.Fatalf("trial %d: heuristic schedulable but exhaustive search finds no feasible configuration", trial)
		}
	}
	if exhaustiveYes == 0 {
		t.Fatal("no feasible instances generated; test has no power")
	}
	// The heuristic should find most feasible solutions on these tiny
	// instances.
	if heuristicYes*2 < exhaustiveYes {
		t.Errorf("heuristic found %d of %d feasible instances — suspiciously weak",
			heuristicYes, exhaustiveYes)
	}
}

// TestAllSolutionsSoundAgainstExhaustive is the randomized differential
// sweep over every allocator the paper compares (PaperSolutions): none may
// ever admit a system the brute-force search proves infeasible. The
// exhaustive oracle checks flattening feasibility, which is optimal for
// per-core EDF, so it upper-bounds every sound analysis — including the
// overhead-aware existing CSA, whose pessimism only shrinks the set of
// admitted systems. Instances are regenerated from independent root seeds
// so each run covers a fresh slice of the space deterministically.
func TestAllSolutionsSoundAgainstExhaustive(t *testing.T) {
	solutions := PaperSolutions()
	for _, rootSeed := range []int64{1, 77, 4099} {
		rng := rngutil.New(rootSeed)
		feasible := 0
		for trial := 0; trial < 20; trial++ {
			tasks := randomTinyTasks(rng)
			sys := &model.System{Platform: tinyPlatform, VMs: []*model.VM{{ID: "vm", Tasks: tasks}}}
			exhaustive := exhaustiveFeasible(tasks, tinyPlatform)
			if exhaustive {
				feasible++
			}
			for _, sol := range solutions {
				_, err := sol.Allocate(sys, rngutil.New(rootSeed*1000+int64(trial)))
				if err == nil && !exhaustive {
					t.Errorf("root %d trial %d: %s admits a system the exhaustive search proves infeasible",
						rootSeed, trial, sol.Name())
				}
			}
		}
		if feasible == 0 {
			t.Errorf("root %d: no feasible instances generated; sweep has no power", rootSeed)
		}
	}
}
