package alloc

import (
	"fmt"
	"math"
	"sort"

	"vc2m/internal/csa"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/parsec"
)

// baselineWCET returns a task's worst-case WCET as the baseline solution
// assumes it: the execution time with no cache allocated and worst-case
// memory bandwidth. When the task records its generating benchmark the
// exact e^max = e* x s^max is reconstructed; otherwise the worst
// allocatable configuration (Cmin, Bmin) is the closest representable
// value.
func baselineWCET(t *model.Task, plat model.Platform) float64 {
	if t.Benchmark != "" {
		if bm, err := parsec.ByName(t.Benchmark); err == nil {
			return t.RefWCET() * bm.MaxSlowdown(plat)
		}
	}
	return t.WCET.At(plat.Cmin, plat.Bmin)
}

// packExistingVCPUs packs one VM's tasks onto VCPUs using best-fit
// decreasing under the existing CSA with scalar worst-case WCETs: tasks
// are considered in decreasing worst-case utilization; each is added to
// the feasible VCPU whose resulting bandwidth is highest (tightest fit),
// where feasibility means the recomputed minimum periodic-resource budget
// still fits within the VCPU period. A new VCPU is opened when no
// existing one can take the task. It returns nil when some task is
// infeasible even on a dedicated VCPU.
func packExistingVCPUs(vm *model.VM, plat model.Platform, firstIndex int, rec *metrics.Recorder) []*model.VCPU {
	type bin struct {
		tasks  []*model.Task
		theta  float64 // current minimum budget
		period float64 // min task period
	}

	order := append([]*model.Task(nil), vm.Tasks...)
	sort.SliceStable(order, func(a, b int) bool {
		ua := baselineWCET(order[a], plat) / order[a].Period
		ub := baselineWCET(order[b], plat) / order[b].Period
		if ua != ub { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return ua > ub
		}
		return order[a].ID < order[b].ID
	})

	// tryPack computes the minimum budget for a candidate task group.
	tryPack := func(tasks []*model.Task) (theta, period float64, ok bool) {
		periods := make([]float64, len(tasks))
		wcets := make([]float64, len(tasks))
		period = math.Inf(1)
		for i, t := range tasks {
			periods[i] = t.Period
			wcets[i] = baselineWCET(t, plat)
			if t.Period < period {
				period = t.Period
			}
		}
		demand, err := csa.NewDemand(periods)
		if err != nil {
			return 0, 0, false
		}
		cps := demand.Checkpoints()
		rec.Add(csa.MetricDBFEvals, int64(len(cps)))
		theta, ok = csa.MinBudgetForDemandMetered(period, cps, demand.DBF(wcets), rec)
		return theta, period, ok
	}

	var bins []*bin
	for _, t := range order {
		bestBin := -1
		bestBW := -1.0
		var bestTheta, bestPeriod float64
		for i, bn := range bins {
			theta, period, ok := tryPack(append(append([]*model.Task(nil), bn.tasks...), t))
			if !ok {
				continue
			}
			if bw := theta / period; bw > bestBW {
				bestBin, bestBW, bestTheta, bestPeriod = i, bw, theta, period
			}
		}
		if bestBin >= 0 {
			bins[bestBin].tasks = append(bins[bestBin].tasks, t)
			bins[bestBin].theta, bins[bestBin].period = bestTheta, bestPeriod
			continue
		}
		theta, period, ok := tryPack([]*model.Task{t})
		if !ok {
			return nil // task infeasible even alone
		}
		bins = append(bins, &bin{tasks: []*model.Task{t}, theta: theta, period: period})
	}

	out := make([]*model.VCPU, len(bins))
	for i, bn := range bins {
		out[i] = &model.VCPU{
			ID:     fmt.Sprintf("%s/base-%d", vm.ID, firstIndex+i),
			VM:     vm.ID,
			Index:  firstIndex + i,
			Period: bn.period,
			Budget: model.ConstTable(plat, bn.theta),
			Tasks:  append([]*model.Task(nil), bn.tasks...),
		}
	}
	return out
}

// packVCPUsToCores places VCPUs onto at most m cores with best-fit
// decreasing on bandwidth under the (cache, bw) allocation every core will
// receive. It returns the per-core VCPU lists, or nil if some VCPU fits on
// no core.
func packVCPUsToCores(vcpus []*model.VCPU, m, cache, bw int) [][]*model.VCPU {
	order := append([]*model.VCPU(nil), vcpus...)
	sort.SliceStable(order, func(a, b int) bool {
		ba, bb := order[a].Bandwidth(cache, bw), order[b].Bandwidth(cache, bw)
		if ba != bb { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return ba > bb
		}
		return order[a].Index < order[b].Index
	})
	cores := make([][]*model.VCPU, m)
	loads := make([]float64, m)
	for _, v := range order {
		need := v.Bandwidth(cache, bw)
		best := -1
		for c := 0; c < m; c++ {
			if loads[c]+need > 1+schedEps {
				continue
			}
			if best == -1 || loads[c] > loads[best] {
				best = c // best-fit: highest current load that still fits
			}
		}
		if best == -1 {
			return nil
		}
		cores[best] = append(cores[best], v)
		loads[best] += need
	}
	return cores
}

// evenSplit returns the per-core partition count when dividing total
// partitions evenly among m cores, respecting the per-core maximum.
func evenSplit(total, m, max int) int {
	per := total / m
	if per > max {
		per = max
	}
	return per
}

// BaselineAllocate implements "Baseline (existing CSA)": VCPU parameters
// from the existing compositional analysis with worst-case WCETs (no
// cache, worst-case BW), best-fit bin packing of tasks onto VCPUs and of
// VCPUs onto cores, and an even partition split for hardware validity
// (the baseline analysis itself is resource-oblivious).
func BaselineAllocate(sys *model.System, plat model.Platform) (*model.Allocation, error) {
	return baselineAllocate(sys, plat, nil)
}

// baselineAllocate is BaselineAllocate with search-effort accounting on rec
// (nil-safe).
func baselineAllocate(sys *model.System, plat model.Platform, rec *metrics.Recorder) (*model.Allocation, error) {
	var vcpus []*model.VCPU
	for _, vm := range sys.VMs {
		packed := packExistingVCPUs(vm, plat, len(vcpus), rec)
		if packed == nil {
			return nil, model.ErrNotSchedulable
		}
		vcpus = append(vcpus, packed...)
	}
	rec.Add(MetricVCPUsBuilt, int64(len(vcpus)))
	for m := 1; m <= plat.M; m++ {
		rec.Inc(MetricMTried)
		cache := evenSplit(plat.C, m, plat.C)
		bw := evenSplit(plat.B, m, plat.B)
		if cache < plat.Cmin || bw < plat.Bmin {
			break
		}
		cores := packVCPUsToCores(vcpus, m, cache, bw)
		if cores == nil {
			continue
		}
		return coresToAllocation(cores, plat, cache, bw), nil
	}
	return nil, model.ErrNotSchedulable
}

// EvenlyPartitionAllocate implements "Evenly-partition (overhead-free
// CSA)": the overhead-free analysis on well-regulated VCPUs, but with
// cache and BW divided evenly among cores and plain best-fit bin packing
// of tasks onto VCPUs and VCPUs onto cores (no slowdown clustering, no
// incremental resource allocation, no load balancing).
func EvenlyPartitionAllocate(sys *model.System, plat model.Platform) (*model.Allocation, error) {
	return evenlyPartitionAllocate(sys, plat, nil)
}

// evenlyPartitionAllocate is EvenlyPartitionAllocate with search-effort
// accounting on rec (nil-safe). The overhead-free analysis performs no
// dbf/sbf evaluations, so only structural counters are recorded.
func evenlyPartitionAllocate(sys *model.System, plat model.Platform, rec *metrics.Recorder) (*model.Allocation, error) {
	for m := 1; m <= plat.M; m++ {
		rec.Inc(MetricMTried)
		cache := evenSplit(plat.C, m, plat.C)
		bw := evenSplit(plat.B, m, plat.B)
		if cache < plat.Cmin || bw < plat.Bmin {
			break
		}
		var vcpus []*model.VCPU
		feasible := true
		for _, vm := range sys.VMs {
			packed, err := packOverheadFreeVCPUs(vm, plat, cache, bw, len(vcpus))
			if err != nil {
				return nil, err
			}
			if packed == nil {
				feasible = false
				break
			}
			vcpus = append(vcpus, packed...)
		}
		if !feasible {
			continue
		}
		cores := packVCPUsToCores(vcpus, m, cache, bw)
		if cores == nil {
			continue
		}
		rec.Add(MetricVCPUsBuilt, int64(len(vcpus)))
		return coresToAllocation(cores, plat, cache, bw), nil
	}
	return nil, model.ErrNotSchedulable
}

// packOverheadFreeVCPUs packs one VM's tasks onto well-regulated VCPUs
// with best-fit decreasing on the tasks' utilization under the (cache, bw)
// allocation, opening a new VCPU whenever a task fits nowhere (a VCPU is
// feasible while its taskset utilization is at most 1, by Theorem 2). It
// returns nil when some task alone exceeds a full VCPU, and an error for
// non-harmonic tasksets.
func packOverheadFreeVCPUs(vm *model.VM, plat model.Platform, cache, bw, firstIndex int) ([]*model.VCPU, error) {
	order := append([]*model.Task(nil), vm.Tasks...)
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := order[a].Util(cache, bw), order[b].Util(cache, bw)
		if ua != ub { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return ua > ub
		}
		return order[a].ID < order[b].ID
	})
	var bins [][]*model.Task
	var loads []float64
	for _, t := range order {
		u := t.Util(cache, bw)
		if u > 1+schedEps {
			return nil, nil
		}
		best := -1
		for i, load := range loads {
			if load+u > 1+schedEps {
				continue
			}
			if best == -1 || loads[i] > loads[best] {
				best = i
			}
		}
		if best == -1 {
			bins = append(bins, nil)
			loads = append(loads, 0)
			best = len(bins) - 1
		}
		bins[best] = append(bins[best], t)
		loads[best] += u
	}
	out := make([]*model.VCPU, len(bins))
	for i, group := range bins {
		v, err := csa.WellRegulatedVCPU(group, firstIndex+i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// coresToAllocation freezes per-core VCPU lists with a uniform partition
// split into a model.Allocation.
func coresToAllocation(cores [][]*model.VCPU, plat model.Platform, cache, bw int) *model.Allocation {
	out := &model.Allocation{Platform: plat, Schedulable: true}
	for i, vs := range cores {
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core: i, Cache: cache, BW: bw,
			VCPUs: append([]*model.VCPU(nil), vs...),
		})
	}
	return out
}
