package alloc

import (
	"fmt"
	"math"
	"sort"

	"vc2m/internal/binpack"
	"vc2m/internal/csa"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/provenance"
)

// baselineWCET returns a task's worst-case WCET as the baseline solution
// assumes it: the execution time with no cache allocated and worst-case
// memory bandwidth. When the task records its generating benchmark the
// exact e^max = e* x s^max is reconstructed; otherwise the worst
// allocatable configuration (Cmin, Bmin) is the closest representable
// value.
func baselineWCET(t *model.Task, plat model.Platform) float64 {
	if t.Benchmark != "" {
		if bm, err := parsec.ByName(t.Benchmark); err == nil {
			return t.RefWCET() * bm.MaxSlowdown(plat)
		}
	}
	return t.WCET.At(plat.Cmin, plat.Bmin)
}

// packExistingVCPUs packs one VM's tasks onto VCPUs using best-fit
// decreasing under the existing CSA with scalar worst-case WCETs: tasks
// are considered in decreasing worst-case utilization; each is added to
// the feasible VCPU whose resulting bandwidth is highest (tightest fit),
// where feasibility means the recomputed minimum periodic-resource budget
// still fits within the VCPU period. A new VCPU is opened when no
// existing one can take the task. It returns (nil, task) when some task is
// infeasible even on a dedicated VCPU, naming the offender so rejections
// can be attributed.
func packExistingVCPUs(vm *model.VM, plat model.Platform, firstIndex int, rec *metrics.Recorder) ([]*model.VCPU, *model.Task) {
	type bin struct {
		tasks  []*model.Task
		theta  float64 // current minimum budget
		period float64 // min task period
	}

	order := append([]*model.Task(nil), vm.Tasks...)
	sort.SliceStable(order, func(a, b int) bool {
		ua := baselineWCET(order[a], plat) / order[a].Period
		ub := baselineWCET(order[b], plat) / order[b].Period
		if ua != ub { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return ua > ub
		}
		return order[a].ID < order[b].ID
	})

	// tryPack computes the minimum budget for a candidate task group.
	tryPack := func(tasks []*model.Task) (theta, period float64, ok bool) {
		periods := make([]float64, len(tasks))
		wcets := make([]float64, len(tasks))
		period = math.Inf(1)
		for i, t := range tasks {
			periods[i] = t.Period
			wcets[i] = baselineWCET(t, plat)
			if t.Period < period {
				period = t.Period
			}
		}
		demand, err := csa.NewDemand(periods)
		if err != nil {
			return 0, 0, false
		}
		cps := demand.Checkpoints()
		rec.Add(csa.MetricDBFEvals, int64(len(cps)))
		theta, ok = csa.MinBudgetForDemandMetered(period, cps, demand.DBF(wcets), rec)
		return theta, period, ok
	}

	var bins []*bin
	for _, t := range order {
		bestBin := -1
		bestBW := -1.0
		var bestTheta, bestPeriod float64
		for i, bn := range bins {
			theta, period, ok := tryPack(append(append([]*model.Task(nil), bn.tasks...), t))
			if !ok {
				continue
			}
			if bw := theta / period; bw > bestBW {
				bestBin, bestBW, bestTheta, bestPeriod = i, bw, theta, period
			}
		}
		if bestBin >= 0 {
			bins[bestBin].tasks = append(bins[bestBin].tasks, t)
			bins[bestBin].theta, bins[bestBin].period = bestTheta, bestPeriod
			continue
		}
		theta, period, ok := tryPack([]*model.Task{t})
		if !ok {
			return nil, t // task infeasible even alone
		}
		bins = append(bins, &bin{tasks: []*model.Task{t}, theta: theta, period: period})
	}

	out := make([]*model.VCPU, len(bins))
	for i, bn := range bins {
		out[i] = &model.VCPU{
			ID:     fmt.Sprintf("%s/base-%d", vm.ID, firstIndex+i),
			VM:     vm.ID,
			Index:  firstIndex + i,
			Period: bn.period,
			Budget: model.ConstTable(plat, bn.theta),
			Tasks:  append([]*model.Task(nil), bn.tasks...),
		}
	}
	return out, nil
}

// packVCPUsToCores places VCPUs onto at most m cores with best-fit
// decreasing on bandwidth under the (cache, bw) allocation every core will
// receive, delegating the packing itself to binpack.PackDecreasing (VCPUs
// arrive in index order, so binpack's original-index tie-break matches the
// VCPU-index tie-break used before the delegation). It returns the
// per-core VCPU lists, or nil if some VCPU fits on no core; per-VCPU
// placements and misfits are recorded on prov (nil-safe).
func packVCPUsToCores(vcpus []*model.VCPU, m, cache, bw int, prov *provenance.Recorder) [][]*model.VCPU {
	sizes := make([]float64, len(vcpus))
	for i, v := range vcpus {
		sizes[i] = v.Bandwidth(cache, bw)
	}
	res := binpack.PackDecreasing(sizes, m, 1, binpack.BestFit)
	if prov.Enabled() {
		recordBinpack(prov, res, vcpus, sizes, m, cache, bw)
	}
	if !res.OK {
		return nil
	}
	cores := make([][]*model.VCPU, m)
	for i, v := range vcpus {
		cores[res.Assign[i]] = append(cores[res.Assign[i]], v)
	}
	// Restore the pre-delegation within-core order (decreasing bandwidth,
	// index tie-break): downstream output is ordered by it.
	for _, vs := range cores {
		sort.SliceStable(vs, func(a, b int) bool {
			ba, bb := vs[a].Bandwidth(cache, bw), vs[b].Bandwidth(cache, bw)
			if ba != bb { //vc2m:floateq exact tie-break keeps the sort a strict weak order
				return ba > bb
			}
			return vs[a].Index < vs[b].Index
		})
	}
	return cores
}

// recordBinpack emits one place decision per packed VCPU.
func recordBinpack(prov *provenance.Recorder, res binpack.Result, vcpus []*model.VCPU, sizes []float64, m, cache, bw int) {
	for i, v := range vcpus {
		d := provenance.Decision{
			Stage: provenance.StageBinpack, Kind: provenance.KindPlace,
			Subject: v.ID, Cache: cache, BW: bw, Value: sizes[i],
		}
		if res.Assign[i] >= 0 {
			d.Target = fmt.Sprintf("core %d", res.Assign[i])
			d.Accepted = true
			d.Reason = "best-fit decreasing on bandwidth (value = VCPU bandwidth)"
		} else {
			d.Reason = fmt.Sprintf("bandwidth %.4g fits on none of %d cores (best-fit decreasing)", sizes[i], m)
			d.Violated = []provenance.Resource{provenance.CPU}
		}
		prov.Record(d)
	}
}

// evenSplit returns the per-core partition count when dividing total
// partitions evenly among m cores, respecting the per-core maximum.
func evenSplit(total, m, max int) int {
	per := total / m
	if per > max {
		per = max
	}
	return per
}

// BaselineAllocate implements "Baseline (existing CSA)": VCPU parameters
// from the existing compositional analysis with worst-case WCETs (no
// cache, worst-case BW), best-fit bin packing of tasks onto VCPUs and of
// VCPUs onto cores, and an even partition split for hardware validity
// (the baseline analysis itself is resource-oblivious).
func BaselineAllocate(sys *model.System, plat model.Platform) (*model.Allocation, error) {
	return baselineAllocate(sys, plat, nil, nil)
}

// baselineAllocate is BaselineAllocate with search-effort accounting on rec
// and decision provenance on prov (both nil-safe). The baseline analysis
// is resource-oblivious — VCPU bandwidths assume worst-case WCETs and do
// not shrink with partitions — so its rejections are always CPU-bound.
func baselineAllocate(sys *model.System, plat model.Platform, rec *metrics.Recorder, prov *provenance.Recorder) (*model.Allocation, error) {
	var vcpus []*model.VCPU
	for _, vm := range sys.VMs {
		packed, offending := packExistingVCPUs(vm, plat, len(vcpus), rec)
		if packed == nil {
			re := &RejectionError{
				Stage: provenance.StageBaseline,
				Reason: fmt.Sprintf("task %s is infeasible even on a dedicated VCPU under worst-case WCETs (existing CSA)",
					offending.ID),
				Violated: []provenance.Resource{provenance.CPU},
			}
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: provenance.StageBaseline, Kind: provenance.KindReject,
					Subject: offending.ID, Reason: re.Reason, Violated: re.Violated,
				})
			}
			return nil, re
		}
		vcpus = append(vcpus, packed...)
	}
	rec.Add(MetricVCPUsBuilt, int64(len(vcpus)))
	for m := 1; m <= plat.M; m++ {
		rec.Inc(MetricMTried)
		cache := evenSplit(plat.C, m, plat.C)
		bw := evenSplit(plat.B, m, plat.B)
		if cache < plat.Cmin || bw < plat.Bmin {
			break
		}
		cores := packVCPUsToCores(vcpus, m, cache, bw, prov)
		if cores == nil {
			continue
		}
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: provenance.StageBaseline, Kind: provenance.KindAccept,
				Subject: "system", Target: fmt.Sprintf("m=%d", m),
				Cache: cache, BW: bw, Value: float64(m), Accepted: true,
				Reason: fmt.Sprintf("%d baseline VCPUs packed onto %d cores under an even partition split", len(vcpus), m),
			})
		}
		return coresToAllocation(cores, plat, cache, bw), nil
	}
	re := &RejectionError{
		Stage: provenance.StageBaseline,
		Reason: fmt.Sprintf("%d baseline VCPUs (worst-case WCETs) pack onto no m in 1..%d cores",
			len(vcpus), plat.M),
		Violated: []provenance.Resource{provenance.CPU},
	}
	if prov.Enabled() {
		prov.Record(provenance.Decision{
			Stage: provenance.StageBaseline, Kind: provenance.KindReject,
			Subject: "system", Reason: re.Reason, Violated: re.Violated,
		})
	}
	return nil, re
}

// EvenlyPartitionAllocate implements "Evenly-partition (overhead-free
// CSA)": the overhead-free analysis on well-regulated VCPUs, but with
// cache and BW divided evenly among cores and plain best-fit bin packing
// of tasks onto VCPUs and VCPUs onto cores (no slowdown clustering, no
// incremental resource allocation, no load balancing).
func EvenlyPartitionAllocate(sys *model.System, plat model.Platform) (*model.Allocation, error) {
	return evenlyPartitionAllocate(sys, plat, nil, nil)
}

// evenlyPartitionAllocate is EvenlyPartitionAllocate with search-effort
// accounting on rec and decision provenance on prov (both nil-safe). The
// overhead-free analysis performs no dbf/sbf evaluations, so only
// structural counters are recorded. Failed core counts are classified per
// resource: a task too heavy for one VCPU under the even split may be
// curable by partitions the split withholds (cache/BW-starved) or heavy
// under even the full allocation (CPU-bound).
func evenlyPartitionAllocate(sys *model.System, plat model.Platform, rec *metrics.Recorder, prov *provenance.Recorder) (*model.Allocation, error) {
	var cpuN, cacheN, bwN int
	for m := 1; m <= plat.M; m++ {
		rec.Inc(MetricMTried)
		cache := evenSplit(plat.C, m, plat.C)
		bw := evenSplit(plat.B, m, plat.B)
		if cache < plat.Cmin || bw < plat.Bmin {
			break
		}
		var vcpus []*model.VCPU
		feasible := true
		for _, vm := range sys.VMs {
			packed, offending, err := packOverheadFreeVCPUs(vm, plat, cache, bw, len(vcpus))
			if err != nil {
				return nil, err
			}
			if packed == nil {
				feasible = false
				cause := evenSplitFailCause(offending, plat, cache, bw)
				if cause.cpu {
					cpuN++
				}
				if cause.cache {
					cacheN++
				}
				if cause.bw {
					bwN++
				}
				if prov.Enabled() {
					prov.Record(provenance.Decision{
						Stage: provenance.StageBaseline, Kind: provenance.KindAttempt,
						Subject: offending.ID, Target: fmt.Sprintf("m=%d", m),
						Cache: cache, BW: bw, Value: offending.Util(cache, bw),
						Reason:   fmt.Sprintf("task utilization %.4g > 1 under the even (%d,%d) split", offending.Util(cache, bw), cache, bw),
						Violated: cause.violated(),
					})
				}
				break
			}
			vcpus = append(vcpus, packed...)
		}
		if !feasible {
			continue
		}
		cores := packVCPUsToCores(vcpus, m, cache, bw, prov)
		if cores == nil {
			cpuN++
			continue
		}
		rec.Add(MetricVCPUsBuilt, int64(len(vcpus)))
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: provenance.StageBaseline, Kind: provenance.KindAccept,
				Subject: "system", Target: fmt.Sprintf("m=%d", m),
				Cache: cache, BW: bw, Value: float64(m), Accepted: true,
				Reason: fmt.Sprintf("%d well-regulated VCPUs packed onto %d cores under an even partition split", len(vcpus), m),
			})
		}
		return coresToAllocation(cores, plat, cache, bw), nil
	}
	re := &RejectionError{
		Stage:    provenance.StageBaseline,
		Reason:   fmt.Sprintf("no m in 1..%d is feasible under even partition splits (cpu-bound %d, cache-starved %d, bw-starved %d attempts)", plat.M, cpuN, cacheN, bwN),
		Violated: rankViolated(cpuN, cacheN, bwN),
	}
	if prov.Enabled() {
		prov.Record(provenance.Decision{
			Stage: provenance.StageBaseline, Kind: provenance.KindReject,
			Subject: "system", Reason: re.Reason, Violated: re.Violated,
		})
	}
	return nil, re
}

// evenSplitFailCause classifies a task that exceeds one full VCPU under
// the even (cache, bw) split: a resource the split withholds is implicated
// when restoring it (up to the platform cap) would bring the task back
// under 1; when even the full allocation leaves it above 1, it is
// CPU-bound.
func evenSplitFailCause(t *model.Task, plat model.Platform, cache, bw int) failCause {
	var f failCause
	if cache < plat.C && t.Util(plat.C, bw) <= 1+schedEps {
		f.cache = true
	}
	if bw < plat.B && t.Util(cache, plat.B) <= 1+schedEps {
		f.bw = true
	}
	if !f.cache && !f.bw {
		f.cpu = true
	}
	return f
}

// packOverheadFreeVCPUs packs one VM's tasks onto well-regulated VCPUs
// with best-fit decreasing on the tasks' utilization under the (cache, bw)
// allocation, opening a new VCPU whenever a task fits nowhere (a VCPU is
// feasible while its taskset utilization is at most 1, by Theorem 2). It
// returns (nil, task, nil) when some task alone exceeds a full VCPU,
// naming the offender, and an error for non-harmonic tasksets.
func packOverheadFreeVCPUs(vm *model.VM, plat model.Platform, cache, bw, firstIndex int) ([]*model.VCPU, *model.Task, error) {
	order := append([]*model.Task(nil), vm.Tasks...)
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := order[a].Util(cache, bw), order[b].Util(cache, bw)
		if ua != ub { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return ua > ub
		}
		return order[a].ID < order[b].ID
	})
	var bins [][]*model.Task
	var loads []float64
	for _, t := range order {
		u := t.Util(cache, bw)
		if u > 1+schedEps {
			return nil, t, nil
		}
		best := -1
		for i, load := range loads {
			if load+u > 1+schedEps {
				continue
			}
			if best == -1 || loads[i] > loads[best] {
				best = i
			}
		}
		if best == -1 {
			bins = append(bins, nil)
			loads = append(loads, 0)
			best = len(bins) - 1
		}
		bins[best] = append(bins[best], t)
		loads[best] += u
	}
	out := make([]*model.VCPU, len(bins))
	for i, group := range bins {
		v, err := csa.WellRegulatedVCPU(group, firstIndex+i)
		if err != nil {
			return nil, nil, err
		}
		out[i] = v
	}
	return out, nil, nil
}

// coresToAllocation freezes per-core VCPU lists with a uniform partition
// split into a model.Allocation.
func coresToAllocation(cores [][]*model.VCPU, plat model.Platform, cache, bw int) *model.Allocation {
	out := &model.Allocation{Platform: plat, Schedulable: true}
	for i, vs := range cores {
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core: i, Cache: cache, BW: bw,
			VCPUs: append([]*model.VCPU(nil), vs...),
		})
	}
	return out
}
