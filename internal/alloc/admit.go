package alloc

import (
	"fmt"

	"vc2m/internal/model"
	"vc2m/internal/rngutil"
)

// Admit performs online admission control: it tries to place a newly
// arriving VM's tasks onto an existing schedulable allocation without
// disturbing anything already placed — no existing VCPU migrates and no
// partition is taken away from a core. New VCPUs are computed with the
// given mode (flattening by default), placed on the core whose
// post-placement utilization is smallest; when no core can take a VCPU
// under its current partitions, spare (still unallocated) cache/BW
// partitions are granted greedily to the core where they reduce
// utilization most, mirroring Phase 2 of the offline algorithm.
//
// On success a new Allocation is returned (the input is not modified); on
// failure ErrNotSchedulable is returned and the running system is
// untouched — exactly the contract an online admission controller needs.
func Admit(existing *model.Allocation, vm *model.VM, mode CSAMode, rng *rngutil.RNG) (*model.Allocation, error) {
	if existing == nil || !existing.Schedulable {
		return nil, fmt.Errorf("alloc: Admit requires an existing schedulable allocation")
	}
	if rng == nil {
		rng = rngutil.New(0)
	}
	plat := existing.Platform

	firstIndex := 0
	for _, v := range existing.VCPUs() {
		if v.Index >= firstIndex {
			firstIndex = v.Index + 1
		}
	}
	newVCPUs, err := VMLevel(vm, plat, VMLevelConfig{Mode: mode}, firstIndex, rng)
	if err != nil {
		return nil, err
	}

	// Working copy: share VCPU pointers of existing cores (they are not
	// modified), copy the per-core slices and partition counts.
	cores := make([]*coreState, len(existing.Cores))
	coreIDs := make([]int, len(existing.Cores))
	for i, ca := range existing.Cores {
		cores[i] = &coreState{
			vcpus: append([]*model.VCPU(nil), ca.VCPUs...),
			cache: ca.Cache,
			bw:    ca.BW,
		}
		coreIDs[i] = ca.Core
	}
	spareCache := plat.C - existing.UsedCache()
	spareBW := plat.B - existing.UsedBW()

	// Bring unused physical cores into play (with the minimum partitions)
	// if the platform has them and spares allow.
	used := map[int]bool{}
	for _, id := range coreIDs {
		used[id] = true
	}
	for id := 0; id < plat.M; id++ {
		if used[id] {
			continue
		}
		if spareCache >= plat.Cmin && spareBW >= plat.Bmin {
			cores = append(cores, &coreState{cache: plat.Cmin, bw: plat.Bmin})
			coreIDs = append(coreIDs, id)
			spareCache -= plat.Cmin
			spareBW -= plat.Bmin
		}
	}

	for _, v := range newVCPUs {
		if placeBest(cores, v) {
			continue
		}
		// No core fits under current partitions: pick the host that would
		// be best after receiving every remaining spare partition, then
		// grant spares to it one by one until the VCPU fits. Committing
		// to one host avoids scattering grants across cores, none of
		// which would then become feasible.
		host := chooseGrowableHost(cores, plat, v, spareCache, spareBW)
		if host < 0 {
			return nil, model.ErrNotSchedulable
		}
		for !fitsOn(cores[host], v) {
			if !grantTo(cores[host], plat, v, &spareCache, &spareBW) {
				return nil, model.ErrNotSchedulable
			}
		}
		cores[host].vcpus = append(cores[host].vcpus, v)
		cores[host].touch()
	}

	out := &model.Allocation{
		Platform:    plat,
		Schedulable: true,
		Solution:    existing.Solution + " + admitted " + vm.ID,
	}
	for i, cs := range cores {
		if len(cs.vcpus) == 0 {
			continue
		}
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core:  coreIDs[i],
			Cache: cs.cache,
			BW:    cs.bw,
			VCPUs: cs.vcpus,
		})
	}
	return out, nil
}

// Release removes a VM's VCPUs from an allocation — the online departure
// path complementing Admit. Cores keep their partition grants (returning
// partitions to the spare pool is free capacity for the next Admit);
// cores left without VCPUs are dropped, releasing their partitions
// entirely. The input is not modified. Removing an unknown VM is an
// error, so callers notice double-releases.
func Release(existing *model.Allocation, vmID string) (*model.Allocation, error) {
	if existing == nil {
		return nil, fmt.Errorf("alloc: Release on nil allocation")
	}
	found := false
	out := &model.Allocation{
		Platform:    existing.Platform,
		Schedulable: existing.Schedulable,
		Solution:    existing.Solution + " - released " + vmID,
	}
	for _, ca := range existing.Cores {
		kept := make([]*model.VCPU, 0, len(ca.VCPUs))
		for _, v := range ca.VCPUs {
			if v.VM == vmID {
				found = true
				continue
			}
			kept = append(kept, v)
		}
		if len(kept) == 0 {
			continue
		}
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core: ca.Core, Cache: ca.Cache, BW: ca.BW, VCPUs: kept,
		})
	}
	if !found {
		return nil, fmt.Errorf("alloc: VM %q not present in allocation", vmID)
	}
	return out, nil
}

// placeBest puts v on the feasible core with the smallest resulting
// utilization; reports success.
func placeBest(cores []*coreState, v *model.VCPU) bool {
	best := -1
	bestUtil := 0.0
	for i, cs := range cores {
		after := cs.util() + v.Bandwidth(cs.cache, cs.bw)
		if !schedulable(after) {
			continue
		}
		if best == -1 || after < bestUtil {
			best, bestUtil = i, after
		}
	}
	if best == -1 {
		return false
	}
	cores[best].vcpus = append(cores[best].vcpus, v)
	cores[best].touch()
	return true
}

// fitsOn reports whether v fits on the core under its current partitions.
func fitsOn(cs *coreState, v *model.VCPU) bool {
	return schedulable(cs.util() + v.Bandwidth(cs.cache, cs.bw))
}

// chooseGrowableHost returns the index of the core with the smallest total
// utilization (including v) under the maximal partitions it could reach
// with the available spares, provided that utilization is schedulable; -1
// if no core can ever host v.
func chooseGrowableHost(cores []*coreState, plat model.Platform, v *model.VCPU, spareCache, spareBW int) int {
	best := -1
	bestUtil := 0.0
	for i, cs := range cores {
		maxC := cs.cache + spareCache
		if maxC > plat.C {
			maxC = plat.C
		}
		maxB := cs.bw + spareBW
		if maxB > plat.B {
			maxB = plat.B
		}
		after := cs.utilAt(maxC, maxB) + v.Bandwidth(maxC, maxB)
		if !schedulable(after) {
			continue
		}
		if best == -1 || after < bestUtil {
			best, bestUtil = i, after
		}
	}
	return best
}

// grantTo gives the host one spare partition, cache or BW, whichever
// reduces the host's prospective utilization (including v) more; reports
// whether a grant with positive effect happened.
func grantTo(cs *coreState, plat model.Platform, v *model.VCPU, spareCache, spareBW *int) bool {
	cur := cs.util() + v.Bandwidth(cs.cache, cs.bw)
	gainCache, gainBW := 0.0, 0.0
	if *spareCache > 0 && cs.cache < plat.C {
		gainCache = gain(cur, cs.utilAt(cs.cache+1, cs.bw)+v.Bandwidth(cs.cache+1, cs.bw))
	}
	if *spareBW > 0 && cs.bw < plat.B {
		gainBW = gain(cur, cs.utilAt(cs.cache, cs.bw+1)+v.Bandwidth(cs.cache, cs.bw+1))
	}
	switch {
	case gainCache <= schedEps && gainBW <= schedEps:
		return false
	case gainCache >= gainBW:
		cs.cache++
		*spareCache--
	default:
		cs.bw++
		*spareBW--
	}
	cs.touch()
	return true
}
