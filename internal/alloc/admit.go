package alloc

import (
	"fmt"

	"vc2m/internal/model"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
)

// Admit performs online admission control: it tries to place a newly
// arriving VM's tasks onto an existing schedulable allocation without
// disturbing anything already placed — no existing VCPU migrates and no
// partition is taken away from a core. New VCPUs are computed with the
// given mode (flattening by default), placed on the core whose
// post-placement utilization is smallest; when no core can take a VCPU
// under its current partitions, spare (still unallocated) cache/BW
// partitions are granted greedily to the core where they reduce
// utilization most, mirroring Phase 2 of the offline algorithm.
//
// On success a new Allocation is returned (the input is not modified); on
// failure ErrNotSchedulable (diagnosed as a *RejectionError naming every
// violated resource, not just the first one checked) is returned and the
// running system is untouched — exactly the contract an online admission
// controller needs.
func Admit(existing *model.Allocation, vm *model.VM, mode CSAMode, rng *rngutil.RNG) (*model.Allocation, error) {
	return AdmitProv(existing, vm, mode, rng, nil)
}

// AdmitProv is Admit with decision provenance: placements, spare-partition
// grants and the rejection diagnosis are recorded on prov (nil-safe).
func AdmitProv(existing *model.Allocation, vm *model.VM, mode CSAMode, rng *rngutil.RNG, prov *provenance.Recorder) (*model.Allocation, error) {
	if existing == nil || !existing.Schedulable {
		return nil, fmt.Errorf("alloc: Admit requires an existing schedulable allocation")
	}
	if rng == nil {
		rng = rngutil.New(0)
	}
	plat := existing.Platform

	firstIndex := 0
	for _, v := range existing.VCPUs() {
		if v.Index >= firstIndex {
			firstIndex = v.Index + 1
		}
	}
	newVCPUs, err := VMLevel(vm, plat, VMLevelConfig{Mode: mode, Provenance: prov}, firstIndex, rng)
	if err != nil {
		return nil, err
	}

	// Working copy: share VCPU pointers of existing cores (they are not
	// modified), copy the per-core slices and partition counts.
	cores := make([]*coreState, len(existing.Cores))
	coreIDs := make([]int, len(existing.Cores))
	for i, ca := range existing.Cores {
		cores[i] = &coreState{
			vcpus: append([]*model.VCPU(nil), ca.VCPUs...),
			cache: ca.Cache,
			bw:    ca.BW,
		}
		coreIDs[i] = ca.Core
	}
	spareCache := plat.C - existing.UsedCache()
	spareBW := plat.B - existing.UsedBW()

	cores, coreIDs = bringInIdleCores(cores, coreIDs, plat, &spareCache, &spareBW)

	for _, v := range newVCPUs {
		if re := placeOneGrowing(cores, coreIDs, plat, v, vm.ID, &spareCache, &spareBW, provenance.StageAdmit, prov); re != nil {
			return nil, re
		}
	}

	out := &model.Allocation{
		Platform:    plat,
		Schedulable: true,
		Solution:    existing.Solution + " + admitted " + vm.ID,
	}
	for i, cs := range cores {
		if len(cs.vcpus) == 0 {
			continue
		}
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core:  coreIDs[i],
			Cache: cs.cache,
			BW:    cs.bw,
			VCPUs: cs.vcpus,
		})
	}
	return out, nil
}

// Release removes a VM's VCPUs from an allocation — the online departure
// path complementing Admit. Cores keep their partition grants (returning
// partitions to the spare pool is free capacity for the next Admit);
// cores left without VCPUs are dropped, releasing their partitions
// entirely. The input is not modified. Removing an unknown VM is an
// error, so callers notice double-releases.
func Release(existing *model.Allocation, vmID string) (*model.Allocation, error) {
	if existing == nil {
		return nil, fmt.Errorf("alloc: Release on nil allocation")
	}
	found := false
	out := &model.Allocation{
		Platform:    existing.Platform,
		Schedulable: existing.Schedulable,
		Solution:    existing.Solution + " - released " + vmID,
	}
	for _, ca := range existing.Cores {
		kept := make([]*model.VCPU, 0, len(ca.VCPUs))
		for _, v := range ca.VCPUs {
			if v.VM == vmID {
				found = true
				continue
			}
			kept = append(kept, v)
		}
		if len(kept) == 0 {
			continue
		}
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core: ca.Core, Cache: ca.Cache, BW: ca.BW, VCPUs: kept,
		})
	}
	if !found {
		return nil, fmt.Errorf("alloc: VM %q not present in allocation", vmID)
	}
	return out, nil
}

// bringInIdleCores adds every unused physical core to the working set at
// the minimum partitions, as long as the spare pool can pay for them. Both
// the admission and the warm-start paths call it so freed capacity on idle
// cores is usable without a repack.
func bringInIdleCores(cores []*coreState, coreIDs []int, plat model.Platform, spareCache, spareBW *int) ([]*coreState, []int) {
	used := map[int]bool{}
	for _, id := range coreIDs {
		used[id] = true
	}
	for id := 0; id < plat.M; id++ {
		if used[id] {
			continue
		}
		if *spareCache >= plat.Cmin && *spareBW >= plat.Bmin {
			cores = append(cores, &coreState{cache: plat.Cmin, bw: plat.Bmin})
			coreIDs = append(coreIDs, id)
			*spareCache -= plat.Cmin
			*spareBW -= plat.Bmin
		}
	}
	return cores, coreIDs
}

// placeOneGrowing places one new VCPU without disturbing anything already
// placed: first on the feasible core with the smallest post-placement
// utilization, and failing that on the best host growable with spare
// partitions, granted one by one until the VCPU fits. It mutates cores and
// the spare pool on success; on failure it returns a RejectionError naming
// every binding resource and leaves no partial grant behind only in the
// sense that the caller owns the (possibly trial) state. stage names the
// provenance stage decisions are recorded under, so online admission
// ("admit") and warm-start re-allocation ("incremental") share the
// mechanics but keep distinct decision trails.
func placeOneGrowing(cores []*coreState, coreIDs []int, plat model.Platform, v *model.VCPU, vmID string, spareCache, spareBW *int, stage string, prov *provenance.Recorder) *RejectionError {
	if placed := placeBest(cores, v); placed >= 0 {
		if prov.Enabled() {
			cs := cores[placed]
			prov.Record(provenance.Decision{
				Stage: stage, Kind: provenance.KindPlace,
				Subject: v.ID, Target: fmt.Sprintf("core %d", coreIDs[placed]),
				Cache: cs.cache, BW: cs.bw,
				Value: cs.util(), Accepted: true,
				Reason: "smallest post-placement utilization among feasible cores",
			})
		}
		return nil
	}
	// No core fits under current partitions: pick the host that would
	// be best after receiving every remaining spare partition, then
	// grant spares to it one by one until the VCPU fits. Committing
	// to one host avoids scattering grants across cores, none of
	// which would then become feasible.
	host := chooseGrowableHost(cores, plat, v, *spareCache, *spareBW)
	if host < 0 {
		re := &RejectionError{
			Stage: stage,
			Reason: fmt.Sprintf("VCPU %s of VM %s fits on no core even after granting every spare partition (%d cache, %d bw left)",
				v.ID, vmID, *spareCache, *spareBW),
			Violated: admitHopeless(cores, plat, v, *spareCache, *spareBW).violated(),
		}
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: stage, Kind: provenance.KindReject,
				Subject: v.ID, Value: v.RefBandwidth(),
				Reason: re.Reason, Violated: re.Violated,
			})
		}
		return re
	}
	for !fitsOn(cores[host], v) {
		granted, isCache := grantTo(cores[host], plat, v, spareCache, spareBW)
		if !granted {
			re := &RejectionError{
				Stage: stage,
				Reason: fmt.Sprintf("no spare partition still helps VCPU %s on core %d (%d cache, %d bw left)",
					v.ID, coreIDs[host], *spareCache, *spareBW),
				Violated: grantViolations(cores[host], plat, v, *spareCache, *spareBW).violated(),
			}
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: stage, Kind: provenance.KindReject,
					Subject: v.ID, Target: fmt.Sprintf("core %d", coreIDs[host]),
					Cache: cores[host].cache, BW: cores[host].bw,
					Reason: re.Reason, Violated: re.Violated,
				})
			}
			return re
		}
		if prov.Enabled() {
			kind := provenance.Cache
			if !isCache {
				kind = provenance.BW
			}
			prov.Record(provenance.Decision{
				Stage: stage, Kind: provenance.KindGrant,
				Subject: fmt.Sprintf("core %d", coreIDs[host]), Target: string(kind),
				Cache: cores[host].cache, BW: cores[host].bw, Accepted: true,
				Reason: fmt.Sprintf("spare %s partition granted so VCPU %s can fit", kind, v.ID),
			})
		}
	}
	cores[host].vcpus = append(cores[host].vcpus, v)
	cores[host].touch()
	if prov.Enabled() {
		cs := cores[host]
		prov.Record(provenance.Decision{
			Stage: stage, Kind: provenance.KindPlace,
			Subject: v.ID, Target: fmt.Sprintf("core %d", coreIDs[host]),
			Cache: cs.cache, BW: cs.bw,
			Value: cs.util(), Accepted: true,
			Reason: "placed after growing the host with spare partitions",
		})
	}
	return nil
}

// placeBest puts v on the feasible core with the smallest resulting
// utilization and returns that core's index, or -1 when no core fits.
func placeBest(cores []*coreState, v *model.VCPU) int {
	best := -1
	bestUtil := 0.0
	for i, cs := range cores {
		after := cs.util() + v.Bandwidth(cs.cache, cs.bw)
		if !schedulable(after) {
			continue
		}
		if best == -1 || after < bestUtil {
			best, bestUtil = i, after
		}
	}
	if best == -1 {
		return -1
	}
	cores[best].vcpus = append(cores[best].vcpus, v)
	cores[best].touch()
	return best
}

// fitsOn reports whether v fits on the core under its current partitions.
func fitsOn(cs *coreState, v *model.VCPU) bool {
	return schedulable(cs.util() + v.Bandwidth(cs.cache, cs.bw))
}

// chooseGrowableHost returns the index of the core with the smallest total
// utilization (including v) under the maximal partitions it could reach
// with the available spares, provided that utilization is schedulable; -1
// if no core can ever host v.
func chooseGrowableHost(cores []*coreState, plat model.Platform, v *model.VCPU, spareCache, spareBW int) int {
	best := -1
	bestUtil := 0.0
	for i, cs := range cores {
		maxC := cs.cache + spareCache
		if maxC > plat.C {
			maxC = plat.C
		}
		maxB := cs.bw + spareBW
		if maxB > plat.B {
			maxB = plat.B
		}
		after := cs.utilAt(maxC, maxB) + v.Bandwidth(maxC, maxB)
		if !schedulable(after) {
			continue
		}
		if best == -1 || after < bestUtil {
			best, bestUtil = i, after
		}
	}
	return best
}

// grantTo gives the host one spare partition, cache or BW, whichever
// reduces the host's prospective utilization (including v) more; it
// reports whether a grant with positive effect happened and which kind
// it was.
func grantTo(cs *coreState, plat model.Platform, v *model.VCPU, spareCache, spareBW *int) (granted, isCache bool) {
	cur := cs.util() + v.Bandwidth(cs.cache, cs.bw)
	gainCache, gainBW := 0.0, 0.0
	if *spareCache > 0 && cs.cache < plat.C {
		gainCache = gain(cur, cs.utilAt(cs.cache+1, cs.bw)+v.Bandwidth(cs.cache+1, cs.bw))
	}
	if *spareBW > 0 && cs.bw < plat.B {
		gainBW = gain(cur, cs.utilAt(cs.cache, cs.bw+1)+v.Bandwidth(cs.cache, cs.bw+1))
	}
	switch {
	case gainCache <= schedEps && gainBW <= schedEps:
		return false, false
	case gainCache >= gainBW:
		cs.cache++
		*spareCache--
		isCache = true
	default:
		cs.bw++
		*spareBW--
	}
	cs.touch()
	return true, isCache
}

// grantViolations classifies a grantTo failure, naming EVERY resource that
// blocked the admission rather than whichever check happened first: a
// resource is violated when one more partition of it would still reduce
// the prospective utilization (so the core is starved of it) but the spare
// pool is empty; when no partition helps at all the admission is
// CPU-bound.
func grantViolations(cs *coreState, plat model.Platform, v *model.VCPU, spareCache, spareBW int) failCause {
	cur := cs.util() + v.Bandwidth(cs.cache, cs.bw)
	var f failCause
	if cs.cache < plat.C && gain(cur, cs.utilAt(cs.cache+1, cs.bw)+v.Bandwidth(cs.cache+1, cs.bw)) > schedEps && spareCache == 0 {
		f.cache = true
	}
	if cs.bw < plat.B && gain(cur, cs.utilAt(cs.cache, cs.bw+1)+v.Bandwidth(cs.cache, cs.bw+1)) > schedEps && spareBW == 0 {
		f.bw = true
	}
	if !f.cache && !f.bw {
		f.cpu = true
	}
	return f
}

// admitHopeless classifies a chooseGrowableHost failure: for every core,
// either the VCPU is CPU-bound (over 1 even under the platform's full
// partitions) or the spare pool is too small to grow the core far enough
// (cache- and/or BW-starved). The union across cores names every binding
// resource.
func admitHopeless(cores []*coreState, plat model.Platform, v *model.VCPU, spareCache, spareBW int) failCause {
	var f failCause
	for _, cs := range cores {
		if !schedulable(cs.utilAt(plat.C, plat.B) + v.Bandwidth(plat.C, plat.B)) {
			f.cpu = true
			continue
		}
		// The core would fit v under full partitions; the spare pool is
		// what stopped it from getting there.
		if cs.cache+spareCache < plat.C {
			f.cache = true
		}
		if cs.bw+spareBW < plat.B {
			f.bw = true
		}
	}
	return f
}
