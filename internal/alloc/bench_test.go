package alloc

import (
	"errors"
	"testing"

	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

func benchSystem(b *testing.B, util float64) *model.System {
	b.Helper()
	sys, err := workload.Generate(workload.Config{
		Platform:      model.PlatformA,
		TargetRefUtil: util,
		Dist:          workload.Uniform,
	}, rngutil.New(42))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchAllocator(b *testing.B, a Allocator, util float64) {
	sys := benchSystem(b, util)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(sys, rngutil.New(int64(i))); err != nil &&
			!errors.Is(err, model.ErrNotSchedulable) {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicFlattening(b *testing.B) {
	benchAllocator(b, &Heuristic{Mode: Flattening}, 1.0)
}

func BenchmarkHeuristicOverheadFree(b *testing.B) {
	benchAllocator(b, &Heuristic{Mode: OverheadFree}, 1.0)
}

func BenchmarkHeuristicExistingCSA(b *testing.B) {
	benchAllocator(b, &Heuristic{Mode: ExistingCSA}, 1.0)
}

func BenchmarkBaseline(b *testing.B) {
	benchAllocator(b, Baseline{}, 1.0)
}

func BenchmarkEvenlyPartition(b *testing.B) {
	benchAllocator(b, EvenlyPartition{}, 1.0)
}

// BenchmarkHeuristicExistingCSAMetrics is the live-recorder counterpart of
// BenchmarkHeuristicExistingCSA; comparing the two (and the nil-recorder
// default above) bounds the recording overhead.
func BenchmarkHeuristicExistingCSAMetrics(b *testing.B) {
	benchAllocator(b, &Heuristic{Mode: ExistingCSA, Metrics: metrics.New()}, 1.0)
}
