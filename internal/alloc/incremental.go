package alloc

import (
	"fmt"
	"sort"

	"vc2m/internal/csa"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
)

// Delta is one churn step against a running allocation: VMs leaving the
// fleet and VMs arriving. Departures are applied first, so a delta that
// departs and re-arrives the same VM ID is a replacement.
type Delta struct {
	// Arrivals are the VMs asking to join, processed in order.
	Arrivals []*model.VM
	// Departures are the IDs of VMs leaving. Departing an unknown VM is an
	// error (so callers notice double-releases), exactly like Release.
	Departures []string
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Arrivals) == 0 && len(d.Departures) == 0 }

// IncrementalConfig parameterizes warm-start re-allocation.
type IncrementalConfig struct {
	// Mode selects the VM-level analysis for arriving VMs. Untouched VMs
	// never have their interfaces recomputed, whatever the mode.
	Mode CSAMode
	// Clusters is the VM-level KMeans cluster count (0 defaults like
	// VMLevelConfig).
	Clusters int
	// Hyper configures the full-repack fallback. Its Overheads field is
	// ignored: the warm-start path inflates arriving VCPUs itself (see
	// Overheads below), and surviving VCPUs were inflated when they were
	// first allocated, so a repack inflating again would double-charge.
	Hyper HyperConfig
	// Overheads inflates the budgets of arriving VMs' VCPUs, mirroring
	// what HyperLevel does on the from-scratch path; zero disables.
	Overheads csa.Overheads
	// Metrics, when non-nil, records churn counters and the warm-start
	// timer (nil disables recording at no cost).
	Metrics *metrics.Recorder
	// Provenance, when non-nil, records every admit/evict verdict, every
	// warm placement and grant, and one migrate decision per VCPU a repack
	// moved (nil disables recording at one pointer compare per site).
	Provenance *provenance.Recorder
	// Span, when non-nil, is the parent under which one alloc.incremental
	// span is opened per Incremental call (nil disables at no cost).
	Span *obs.Span
}

// IncrementalResult is the outcome of one warm-start re-allocation.
type IncrementalResult struct {
	// Allocation is the layout after the delta. It is always schedulable:
	// arrivals that would break schedulability are rejected, not placed.
	Allocation *model.Allocation
	// Admitted and Rejected partition the delta's arrivals by verdict, in
	// arrival order.
	Admitted []string
	Rejected []string
	// Departed lists the departures applied, in departure order.
	Departed []string
	// Migrated lists every VCPU ID a repack moved to a different physical
	// core, deduplicated, in discovery order. Warm placements never
	// migrate anything, so this is empty while Repacks is 0.
	Migrated []string
	// Repacks counts how many arrivals fell back to a full hypervisor-
	// level repack because freed/slack capacity could not host them.
	Repacks int
}

// incrementalState is the mutable working layout threaded through one
// Incremental call: core assignments, the spare partition pool, and the
// identity sets used to validate arrivals against the running fleet.
type incrementalState struct {
	plat       model.Platform
	cores      []*coreState
	coreIDs    []int
	spareCache int
	spareBW    int
	vms        map[string]bool   // VM IDs currently placed
	taskOwner  map[string]string // task ID -> owning VM ID
	nextIndex  int               // next fresh VCPU index
}

// Incremental applies a churn delta to a previous schedulable allocation
// without recomputing the fleet: departures free their VCPUs (and, when a
// core empties, its partitions), and each arrival is first warm-placed into
// freed/slack capacity — reusing the admission mechanics and, crucially,
// the memoized budget tables of every untouched VM — before falling back to
// one full hypervisor-level repack of the union. Only the arriving VM's
// interfaces are derived; everything already placed keeps its VCPU objects
// (and their demand tables) by pointer.
//
// Arrivals that fit nowhere are rejected in the result, not returned as an
// error; the layout then does not change for that VM. Errors are reserved
// for invalid input (nil/unschedulable previous layout, unknown departure,
// duplicate VM or task IDs, malformed tasks) and leave no partial state:
// prev is never modified.
//
// The equivalence contract, enforced by the differential test suite: after
// any churn sequence the resulting allocation validates against the final
// VM set's tasks (every budget within C/B, every core utilization <= 1,
// every task mapped exactly once) — i.e. it is schedulable-equivalent to a
// from-scratch allocation of the same final fleet.
func Incremental(prev *model.Allocation, delta Delta, cfg IncrementalConfig, rng *rngutil.RNG) (*IncrementalResult, error) {
	if prev == nil || !prev.Schedulable {
		return nil, fmt.Errorf("alloc: Incremental requires an existing schedulable allocation")
	}
	if err := prev.Platform.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rngutil.New(0)
	}
	rec := cfg.Metrics
	prov := cfg.Provenance
	rec.Inc(MetricIncrementalCalls)
	sp := cfg.Span.Child(obs.StageIncremental)
	stop := rec.Time(MetricIncrementalSeconds)

	st := newIncrementalState(prev)
	res := &IncrementalResult{}

	for _, id := range delta.Departures {
		if err := st.depart(id, prov); err != nil {
			stop()
			sp.End()
			return nil, err
		}
		rec.Inc(MetricIncrementalEvicts)
		res.Departed = append(res.Departed, id)
	}

	seen := map[string]bool{}
	for _, vm := range delta.Arrivals {
		if err := st.validateArrival(vm, seen); err != nil {
			stop()
			sp.End()
			return nil, err
		}
		seen[vm.ID] = true
		vcpus, err := VMLevel(vm, st.plat, VMLevelConfig{
			Mode: cfg.Mode, Clusters: cfg.Clusters,
			Metrics: rec, Provenance: prov, Span: sp,
		}, st.nextIndex, rng)
		if err != nil {
			stop()
			sp.End()
			return nil, err
		}
		for i, v := range vcpus {
			vcpus[i] = cfg.Overheads.InflateVCPU(v)
			if vcpus[i].Index >= st.nextIndex {
				st.nextIndex = vcpus[i].Index + 1
			}
		}
		verdict := st.admit(vm, vcpus, cfg, rng, res)
		if verdict {
			rec.Inc(MetricIncrementalAdmits)
			res.Admitted = append(res.Admitted, vm.ID)
		} else {
			rec.Inc(MetricIncrementalRejects)
			res.Rejected = append(res.Rejected, vm.ID)
		}
	}

	res.Allocation = st.freeze(prev.Solution)
	stop()
	sp.SetInt("admitted", int64(len(res.Admitted)))
	sp.SetInt("rejected", int64(len(res.Rejected)))
	sp.SetInt("departed", int64(len(res.Departed)))
	sp.SetInt("repacks", int64(res.Repacks))
	sp.End()
	return res, nil
}

// newIncrementalState copies prev into a mutable working layout. VCPU
// objects are shared by pointer (they are never mutated); the per-core
// slices and partition counts are copied.
func newIncrementalState(prev *model.Allocation) *incrementalState {
	st := &incrementalState{
		plat:      prev.Platform,
		vms:       map[string]bool{},
		taskOwner: map[string]string{},
	}
	for _, ca := range prev.Cores {
		st.cores = append(st.cores, &coreState{
			vcpus: append([]*model.VCPU(nil), ca.VCPUs...),
			cache: ca.Cache,
			bw:    ca.BW,
		})
		st.coreIDs = append(st.coreIDs, ca.Core)
		for _, v := range ca.VCPUs {
			st.vms[v.VM] = true
			for _, t := range v.Tasks {
				st.taskOwner[t.ID] = v.VM
			}
			if v.Index >= st.nextIndex {
				st.nextIndex = v.Index + 1
			}
		}
	}
	st.spareCache = prev.Platform.C - prev.UsedCache()
	st.spareBW = prev.Platform.B - prev.UsedBW()
	return st
}

// depart removes one VM's VCPUs; cores left empty release their partitions
// back to the spare pool entirely, so the next arrival can re-grow them
// where demand actually is.
func (st *incrementalState) depart(vmID string, prov *provenance.Recorder) error {
	if !st.vms[vmID] {
		return fmt.Errorf("alloc: Incremental departure of VM %q not present in allocation", vmID)
	}
	freedCache, freedBW, freedVCPUs := 0, 0, 0
	for i := 0; i < len(st.cores); i++ {
		cs := st.cores[i]
		kept := make([]*model.VCPU, 0, len(cs.vcpus))
		for _, v := range cs.vcpus {
			if v.VM == vmID {
				freedVCPUs++
				continue
			}
			kept = append(kept, v)
		}
		if len(kept) == len(cs.vcpus) {
			continue
		}
		cs.vcpus = kept
		cs.touch()
		if len(cs.vcpus) == 0 {
			freedCache += cs.cache
			freedBW += cs.bw
			st.spareCache += cs.cache
			st.spareBW += cs.bw
			st.cores = append(st.cores[:i], st.cores[i+1:]...)
			st.coreIDs = append(st.coreIDs[:i], st.coreIDs[i+1:]...)
			i--
		}
	}
	delete(st.vms, vmID)
	for tid, owner := range st.taskOwner { //vc2m:ordered only deletes matching entries; order cannot escape
		if owner == vmID {
			delete(st.taskOwner, tid)
		}
	}
	if prov.Enabled() {
		prov.Record(provenance.Decision{
			Stage: provenance.StageIncremental, Kind: provenance.KindEvict,
			Subject: vmID, Cache: freedCache, BW: freedBW,
			Value: float64(freedVCPUs), Accepted: true,
			Reason: fmt.Sprintf("departure freed %d VCPUs, %d cache and %d bw partitions returned to the spare pool",
				freedVCPUs, freedCache, freedBW),
		})
	}
	return nil
}

// validateArrival rejects malformed or colliding arrivals as errors before
// any state changes: the same conditions a from-scratch System.Validate of
// the final fleet would flag, plus WCET-table bounds (so churn deltas from
// untrusted input — the fuzz harness, the server API — can never drive a
// ResourceTable lookup out of range and panic).
func (st *incrementalState) validateArrival(vm *model.VM, seen map[string]bool) error {
	if vm == nil {
		return fmt.Errorf("alloc: Incremental arrival is nil")
	}
	if vm.ID == "" {
		return fmt.Errorf("alloc: Incremental arrival with empty VM ID")
	}
	if st.vms[vm.ID] || seen[vm.ID] {
		return fmt.Errorf("alloc: Incremental arrival of duplicate VM %q", vm.ID)
	}
	if len(vm.Tasks) == 0 {
		return fmt.Errorf("alloc: Incremental arrival %q has no tasks", vm.ID)
	}
	local := map[string]bool{}
	for _, t := range vm.Tasks {
		if t == nil {
			return fmt.Errorf("alloc: Incremental arrival %q has a nil task", vm.ID)
		}
		// The VM-level analyses stamp each VCPU with its task's VM
		// back-reference, and departures later match VCPUs by that field —
		// so an unattributable task would strand its VCPUs in the layout
		// forever. Fill in an omitted back-reference, reject a wrong one.
		if t.VM == "" {
			t.VM = vm.ID
		} else if t.VM != vm.ID {
			return fmt.Errorf("alloc: Incremental arrival %q: task %s claims VM %q", vm.ID, t.ID, t.VM)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("alloc: Incremental arrival %q: %w", vm.ID, err)
		}
		cmin, cmax, bmin, bmax := t.WCET.Bounds()
		if cmin != st.plat.Cmin || cmax != st.plat.C || bmin != st.plat.Bmin || bmax != st.plat.B {
			return fmt.Errorf("alloc: Incremental arrival %q: task %s WCET table c[%d,%d] b[%d,%d] does not cover platform c[%d,%d] b[%d,%d]",
				vm.ID, t.ID, cmin, cmax, bmin, bmax, st.plat.Cmin, st.plat.C, st.plat.Bmin, st.plat.B)
		}
		if owner, taken := st.taskOwner[t.ID]; taken {
			return fmt.Errorf("alloc: Incremental arrival %q: task ID %q already owned by VM %q", vm.ID, t.ID, owner)
		}
		if local[t.ID] {
			return fmt.Errorf("alloc: Incremental arrival %q: duplicate task ID %q", vm.ID, t.ID)
		}
		local[t.ID] = true
	}
	return nil
}

// admit decides one arrival: the deterministic infeasibility screen first
// (a VCPU over bandwidth 1 under the full allocation is hopeless on every
// path, warm or cold), then a warm placement trial on a cloned layout, then
// the full repack fallback. It reports whether the VM was admitted; on
// rejection the working layout is unchanged.
func (st *incrementalState) admit(vm *model.VM, vcpus []*model.VCPU, cfg IncrementalConfig, rng *rngutil.RNG, res *IncrementalResult) bool {
	prov := cfg.Provenance
	for _, v := range vcpus {
		if !schedulable(v.RefBandwidth()) {
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: provenance.StageIncremental, Kind: provenance.KindReject,
					Subject: vm.ID, Target: v.ID,
					Cache: st.plat.C, BW: st.plat.B,
					Value: v.RefBandwidth(),
					Reason: fmt.Sprintf("VCPU %s needs bandwidth %.3f > 1 even under the full (C,B) allocation",
						v.ID, v.RefBandwidth()),
					Violated: []provenance.Resource{provenance.CPU},
				})
			}
			return false
		}
	}

	if st.warmPlace(vm, vcpus, cfg) {
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: provenance.StageIncremental, Kind: provenance.KindAdmit,
				Subject: vm.ID, Value: float64(len(vcpus)), Accepted: true,
				Reason: fmt.Sprintf("warm-placed %d VCPUs into freed/slack capacity, nothing migrated", len(vcpus)),
			})
		}
		st.absorb(vm)
		return true
	}
	if st.repack(vm, vcpus, cfg, rng, res) {
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: provenance.StageIncremental, Kind: provenance.KindAdmit,
				Subject: vm.ID, Value: float64(len(vcpus)), Accepted: true,
				Reason: "admitted by full repack after warm placement failed",
			})
		}
		st.absorb(vm)
		return true
	}
	if prov.Enabled() {
		prov.Record(provenance.Decision{
			Stage: provenance.StageIncremental, Kind: provenance.KindReject,
			Subject: vm.ID, Value: float64(len(vcpus)),
			Reason:   "neither warm placement nor a full repack can host the VM",
			Violated: []provenance.Resource{provenance.CPU, provenance.Cache, provenance.BW},
		})
	}
	return false
}

// absorb registers an admitted VM's identity in the working sets.
func (st *incrementalState) absorb(vm *model.VM) {
	st.vms[vm.ID] = true
	for _, t := range vm.Tasks {
		st.taskOwner[t.ID] = vm.ID
	}
}

// warmPlace tries the arrival on a cloned layout using the admission
// mechanics (placeBest, growable hosts, idle-core bring-in) and commits the
// clone only when every VCPU fits — a failed trial leaves the working
// layout untouched, so the repack fallback starts from a clean slate.
func (st *incrementalState) warmPlace(vm *model.VM, vcpus []*model.VCPU, cfg IncrementalConfig) bool {
	trial := make([]*coreState, len(st.cores))
	for i, cs := range st.cores {
		trial[i] = &coreState{
			vcpus: append([]*model.VCPU(nil), cs.vcpus...),
			cache: cs.cache,
			bw:    cs.bw,
		}
	}
	trialIDs := append([]int(nil), st.coreIDs...)
	spareCache, spareBW := st.spareCache, st.spareBW
	trial, trialIDs = bringInIdleCores(trial, trialIDs, st.plat, &spareCache, &spareBW)
	for _, v := range vcpus {
		if re := placeOneGrowing(trial, trialIDs, st.plat, v, vm.ID, &spareCache, &spareBW, provenance.StageIncremental, cfg.Provenance); re != nil {
			return false
		}
	}
	// Commit, returning cores the trial brought in but never used (and
	// their minimum partitions) to the spare pool.
	st.cores = st.cores[:0]
	st.coreIDs = st.coreIDs[:0]
	for i, cs := range trial {
		if len(cs.vcpus) == 0 {
			spareCache += cs.cache
			spareBW += cs.bw
			continue
		}
		st.cores = append(st.cores, cs)
		st.coreIDs = append(st.coreIDs, trialIDs[i])
	}
	st.spareCache, st.spareBW = spareCache, spareBW
	return true
}

// repack is the fallback: one full hypervisor-level search over the union
// of every placed VCPU and the arrival. The union's budgets are already
// inflated (survivors at their original allocation, the arrival by
// Incremental), so the search runs with zero Overheads. On success the new
// cores are relabeled to maximize overlap with the old physical cores and
// one migrate decision is recorded per VCPU that actually moved.
func (st *incrementalState) repack(vm *model.VM, vcpus []*model.VCPU, cfg IncrementalConfig, rng *rngutil.RNG, res *IncrementalResult) bool {
	prov := cfg.Provenance
	prevCore := map[string]int{}
	union := make([]*model.VCPU, 0, len(vcpus))
	for i, cs := range st.cores {
		for _, v := range cs.vcpus {
			prevCore[v.ID] = st.coreIDs[i]
			union = append(union, v)
		}
	}
	union = append(union, vcpus...)

	hyCfg := cfg.Hyper
	hyCfg.Overheads = csa.Overheads{}
	hyCfg.Metrics = cfg.Metrics
	hyCfg.Provenance = prov
	hyCfg.Span = cfg.Span
	// Warm-start hint: the survivors already occupy len(st.cores) cores and
	// the union adds a VM on top, so core counts below that almost never
	// pack — skip them instead of burning MaxIters failed packings on each.
	// Respect an explicit caller hint if it is larger.
	if hyCfg.MinCores < len(st.cores) {
		hyCfg.MinCores = len(st.cores)
	}
	a, err := HyperLevel(union, st.plat, hyCfg, rng)
	if err != nil {
		return false
	}
	cfg.Metrics.Inc(MetricIncrementalRepacks)
	res.Repacks++
	relabelCores(prevCore, a)

	st.cores = st.cores[:0]
	st.coreIDs = st.coreIDs[:0]
	for _, ca := range a.Cores {
		st.cores = append(st.cores, &coreState{
			vcpus: append([]*model.VCPU(nil), ca.VCPUs...),
			cache: ca.Cache,
			bw:    ca.BW,
		})
		st.coreIDs = append(st.coreIDs, ca.Core)
		for _, v := range ca.VCPUs {
			old, existed := prevCore[v.ID]
			if !existed || old == ca.Core {
				continue
			}
			if !contains(res.Migrated, v.ID) {
				res.Migrated = append(res.Migrated, v.ID)
			}
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: provenance.StageRepack, Kind: provenance.KindMigrate,
					Subject: v.ID, Target: fmt.Sprintf("core %d -> core %d", old, ca.Core),
					Cache: ca.Cache, BW: ca.BW, Accepted: true,
					Reason: fmt.Sprintf("full repack to admit VM %s moved this VCPU", vm.ID),
				})
			}
		}
	}
	st.spareCache = st.plat.C - a.UsedCache()
	st.spareBW = st.plat.B - a.UsedBW()
	return true
}

// relabelCores renames a repacked allocation's cores (HyperLevel numbers
// them 0..m-1) to the physical IDs they overlap most with in the previous
// layout, greedily, ties broken deterministically; unmatched cores take the
// lowest unused IDs. Without this, a repack that reproduces the old layout
// under a permuted numbering would read as a fleet-wide migration — the
// phantom migrations the property tests forbid.
func relabelCores(prevCore map[string]int, a *model.Allocation) {
	n := len(a.Cores)
	overlap := make([]map[int]int, n)
	for i, ca := range a.Cores {
		overlap[i] = map[int]int{}
		for _, v := range ca.VCPUs {
			if old, ok := prevCore[v.ID]; ok {
				overlap[i][old]++
			}
		}
	}
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	usedID := map[int]bool{}
	for {
		bestCore, bestOld, bestCnt := -1, -1, 0
		for i := range a.Cores {
			if assigned[i] >= 0 {
				continue
			}
			olds := make([]int, 0, len(overlap[i]))
			for o := range overlap[i] { //vc2m:ordered keys are collected and sorted before use
				olds = append(olds, o)
			}
			sort.Ints(olds)
			for _, o := range olds {
				if usedID[o] {
					continue
				}
				if c := overlap[i][o]; c > bestCnt {
					bestCore, bestOld, bestCnt = i, o, c
				}
			}
		}
		if bestCore < 0 {
			break
		}
		assigned[bestCore] = bestOld
		usedID[bestOld] = true
	}
	next := 0
	for i := range a.Cores {
		if assigned[i] >= 0 {
			continue
		}
		for usedID[next] {
			next++
		}
		assigned[i] = next
		usedID[next] = true
	}
	for i, ca := range a.Cores {
		ca.Core = assigned[i]
	}
	sort.Slice(a.Cores, func(x, y int) bool { return a.Cores[x].Core < a.Cores[y].Core })
}

// contains reports whether list holds s; churn deltas move a handful of
// VCPUs, so a linear scan beats allocating a set.
func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// freeze builds the final Allocation from the working layout, keeping the
// previous solution label (an incremental layout is still the product of
// the same solution, applied over time).
func (st *incrementalState) freeze(solution string) *model.Allocation {
	out := &model.Allocation{
		Platform:    st.plat,
		Schedulable: true,
		Solution:    solution,
	}
	for i, cs := range st.cores {
		if len(cs.vcpus) == 0 {
			continue
		}
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core:  st.coreIDs[i],
			Cache: cs.cache,
			BW:    cs.bw,
			VCPUs: append([]*model.VCPU(nil), cs.vcpus...),
		})
	}
	return out
}
