package alloc

import (
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// countSchedulable runs the allocator over several generated tasksets and
// returns how many it schedules.
func countSchedulable(t *testing.T, h *Heuristic, target float64, n int) int {
	t.Helper()
	ok := 0
	for seed := int64(0); seed < int64(n); seed++ {
		sys, err := workload.Generate(workload.Config{
			Platform:      model.PlatformA,
			TargetRefUtil: target,
			Dist:          workload.Uniform,
		}, rngutil.New(9000+seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Allocate(sys, rngutil.New(seed)); err == nil {
			ok++
		}
	}
	return ok
}

func TestAblationSwitchesStillProduceValidAllocations(t *testing.T) {
	cfgs := map[string]HyperConfig{
		"no-clustering":     {NoClustering: true},
		"no-load-balance":   {NoLoadBalance: true},
		"no-resource-grow":  {NoResourceGrowth: true},
		"all-ablations-off": {},
	}
	sys, err := workload.Generate(workload.Config{
		Platform:      model.PlatformA,
		TargetRefUtil: 0.8,
		Dist:          workload.Uniform,
	}, rngutil.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range cfgs {
		h := &Heuristic{Mode: OverheadFree, Hyper: cfg}
		a, err := h.Allocate(sys, rngutil.New(1))
		if err != nil {
			continue // an ablated variant may legitimately fail
		}
		if err := a.Validate(sys.Tasks()); err != nil {
			t.Errorf("%s: invalid allocation: %v", name, err)
		}
	}
}

func TestAblationFullHeuristicDominates(t *testing.T) {
	// At a load near the full heuristic's knee, each ablation must not
	// schedule more tasksets than the complete algorithm (the paper's
	// claim that combining the ingredients is what matters).
	const target, n = 1.7, 10
	full := countSchedulable(t, &Heuristic{Mode: OverheadFree}, target, n)
	for name, cfg := range map[string]HyperConfig{
		"no-clustering":    {NoClustering: true},
		"no-load-balance":  {NoLoadBalance: true},
		"no-resource-grow": {NoResourceGrowth: true},
	} {
		ablated := countSchedulable(t, &Heuristic{Mode: OverheadFree, Hyper: cfg}, target, n)
		if ablated > full {
			t.Errorf("%s schedules %d/%d tasksets, full heuristic only %d/%d",
				name, ablated, n, full, n)
		}
	}
}

func TestAblationResourceGrowthMatters(t *testing.T) {
	// The demand-driven Phase 2 must beat an even split somewhere: find a
	// load level where the gap shows.
	found := false
	for _, target := range []float64{1.5, 1.7, 1.9} {
		full := countSchedulable(t, &Heuristic{Mode: OverheadFree}, target, 10)
		even := countSchedulable(t, &Heuristic{Mode: OverheadFree,
			Hyper: HyperConfig{NoResourceGrowth: true}}, target, 10)
		if full > even {
			found = true
			break
		}
	}
	if !found {
		t.Error("demand-driven resource allocation never beat the even split")
	}
}
