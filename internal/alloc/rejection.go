package alloc

import (
	"errors"
	"fmt"
	"strings"

	"vc2m/internal/model"
	"vc2m/internal/provenance"
)

// RejectionError is the diagnosed form of model.ErrNotSchedulable: it
// names the allocation stage that gave up, a human-readable reason, and
// EVERY resource constraint that contributed to the failure — not just
// the first one checked. Callers that only care about schedulability keep
// using errors.Is(err, model.ErrNotSchedulable); callers that want the
// diagnosis unwrap with AsRejection.
type RejectionError struct {
	// Stage is the provenance stage that rejected (e.g. "hyper", "admit").
	Stage string
	// Reason summarizes the failure in one line.
	Reason string
	// Violated lists every binding resource, most-binding first.
	Violated []provenance.Resource
}

// Error implements error.
func (e *RejectionError) Error() string {
	names := make([]string, len(e.Violated))
	for i, r := range e.Violated {
		names[i] = string(r)
	}
	msg := fmt.Sprintf("%v [%s: binding %s]", model.ErrNotSchedulable, e.Stage, strings.Join(names, ","))
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	return msg
}

// Unwrap makes errors.Is(err, model.ErrNotSchedulable) hold for every
// RejectionError, so existing callers are oblivious to the diagnosis.
func (e *RejectionError) Unwrap() error { return model.ErrNotSchedulable }

// Binding returns the primary (most-binding) violated resource, or "" when
// none was recorded.
func (e *RejectionError) Binding() provenance.Resource {
	if len(e.Violated) == 0 {
		return ""
	}
	return e.Violated[0]
}

// AsRejection extracts the diagnosed rejection from an error chain.
func AsRejection(err error) (*RejectionError, bool) {
	var re *RejectionError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// failCause classifies, per resource, why a packing attempt failed.
// Multiple flags may be set at once: a two-core packing can be CPU-bound
// on one core and cache-starved on another, and the rejection must report
// both rather than whichever was checked first.
type failCause struct {
	cpu, cache, bw bool
}

// or merges two causes.
func (f failCause) or(g failCause) failCause {
	return failCause{cpu: f.cpu || g.cpu, cache: f.cache || g.cache, bw: f.bw || g.bw}
}

// violated renders the cause as a resource list in the canonical order
// (cpu, cache, bw). An empty cause defaults to CPU: the attempt failed
// with no partition able to help, which is the compute-bound story.
func (f failCause) violated() []provenance.Resource {
	var out []provenance.Resource
	if f.cpu {
		out = append(out, provenance.CPU)
	}
	if f.cache {
		out = append(out, provenance.Cache)
	}
	if f.bw {
		out = append(out, provenance.BW)
	}
	if len(out) == 0 {
		out = []provenance.Resource{provenance.CPU}
	}
	return out
}

// coreFailCause classifies one unschedulable core under its current
// partitions: a resource is implicated when one more partition of it
// (within the per-core cap) would still reduce the core's utilization —
// the core is starved of that resource — and CPU is implicated when no
// partition helps at all.
func coreFailCause(cs *coreState, plat model.Platform) failCause {
	u := cs.util()
	var f failCause
	if cs.cache < plat.C && gain(u, cs.utilAt(cs.cache+1, cs.bw)) > schedEps {
		f.cache = true
	}
	if cs.bw < plat.B && gain(u, cs.utilAt(cs.cache, cs.bw+1)) > schedEps {
		f.bw = true
	}
	if !f.cache && !f.bw {
		f.cpu = true
	}
	return f
}

// rankViolated orders resources by how often they bound failed attempts,
// most frequent first, with the canonical cpu/cache/bw order breaking
// ties. An all-zero tally falls back to CPU.
func rankViolated(cpuN, cacheN, bwN int) []provenance.Resource {
	type rc struct {
		r provenance.Resource
		n int
	}
	ranked := []rc{{provenance.CPU, cpuN}, {provenance.Cache, cacheN}, {provenance.BW, bwN}}
	// Three elements: stable selection by hand keeps the order deterministic.
	for i := 0; i < len(ranked); i++ {
		best := i
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].n > ranked[best].n {
				best = j
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	var out []provenance.Resource
	for _, e := range ranked {
		if e.n > 0 {
			out = append(out, e.r)
		}
	}
	if len(out) == 0 {
		out = []provenance.Resource{provenance.CPU}
	}
	return out
}
