package alloc

import (
	"reflect"
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/metrics"
	"vc2m/internal/rngutil"
)

// runWithRecorder allocates the system with a fresh recorder attached and
// returns the resulting counter snapshot.
func runWithRecorder(t *testing.T, a Allocator, target float64, sysSeed, allocSeed int64) map[string]int64 {
	t.Helper()
	rec := metrics.New()
	ms, ok := a.(MetricsSetter)
	if !ok {
		t.Fatalf("%s does not implement MetricsSetter", a.Name())
	}
	ms.SetMetrics(rec)
	sys := genSystem(t, target, sysSeed)
	if _, err := a.Allocate(sys, rngutil.New(allocSeed)); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return rec.Snapshot().Counters
}

// TestPaperSolutionsImplementMetricsSetter checks every paper solution can
// take a recorder through the optional interface.
func TestPaperSolutionsImplementMetricsSetter(t *testing.T) {
	for _, sol := range PaperSolutions() {
		if _, ok := sol.(MetricsSetter); !ok {
			t.Errorf("%s does not implement MetricsSetter", sol.Name())
		}
	}
}

// TestHeuristicMetricsDeterministic runs the same seeded allocation twice
// and requires bit-identical counters — the recorder must not perturb or
// depend on scheduling.
func TestHeuristicMetricsDeterministic(t *testing.T) {
	for _, mode := range []CSAMode{ExistingCSA, OverheadFree, Flattening} {
		a := runWithRecorder(t, &Heuristic{Mode: mode}, 0.8, 3, 7)
		b := runWithRecorder(t, &Heuristic{Mode: mode}, 0.8, 3, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %v: counters differ across identical runs:\n%v\n%v", mode, a, b)
		}
	}
}

// TestExistingCSACountsAnalysisEffort checks the existing CSA records the
// dbf/sbf work that explains its Figure-4 running-time premium, and that
// the overhead-free analyses record none (the acceptance criterion asks
// for a 10x ratio; the true ratio is infinite).
func TestExistingCSACountsAnalysisEffort(t *testing.T) {
	existing := runWithRecorder(t, &Heuristic{Mode: ExistingCSA}, 0.8, 3, 7)
	free := runWithRecorder(t, &Heuristic{Mode: OverheadFree}, 0.8, 3, 7)

	if existing[csa.MetricDBFEvals] == 0 || existing[csa.MetricSBFEvals] == 0 {
		t.Fatalf("existing CSA recorded no dbf/sbf evaluations: %v", existing)
	}
	if free[csa.MetricDBFEvals] != 0 || free[csa.MetricSBFEvals] != 0 {
		t.Fatalf("overhead-free CSA recorded dbf/sbf evaluations: %v", free)
	}
	if existing[csa.MetricDBFEvals] < 10*(free[csa.MetricDBFEvals]+1) {
		t.Errorf("dbf evals: existing %d < 10x overhead-free %d",
			existing[csa.MetricDBFEvals], free[csa.MetricDBFEvals])
	}
	if existing[csa.MetricMinBudgetIters] == 0 {
		t.Errorf("existing CSA recorded no bisection iterations")
	}
}

// TestBaselineMetrics checks the baseline solution's counters: it uses the
// existing CSA per candidate packing, so it must record budget searches.
func TestBaselineMetrics(t *testing.T) {
	got := runWithRecorder(t, &Baseline{}, 0.6, 5, 0)
	if got[MetricAllocCalls] != 1 || got[MetricAllocSchedulable] != 1 {
		t.Errorf("calls/schedulable = %d/%d, want 1/1",
			got[MetricAllocCalls], got[MetricAllocSchedulable])
	}
	if got[csa.MetricMinBudgetCalls] == 0 || got[csa.MetricDBFEvals] == 0 {
		t.Errorf("baseline recorded no budget searches: %v", got)
	}
	if got[MetricVCPUsBuilt] == 0 {
		t.Errorf("baseline recorded no VCPUs built")
	}
}

// TestAllocatorsRunWithoutRecorder checks the nil-recorder default path on
// every paper solution: allocation succeeds with no recorder attached.
func TestAllocatorsRunWithoutRecorder(t *testing.T) {
	sys := genSystem(t, 0.6, 5)
	for _, sol := range PaperSolutions() {
		if _, err := sol.Allocate(sys, rngutil.New(1)); err != nil {
			t.Errorf("%s without recorder: %v", sol.Name(), err)
		}
	}
}
