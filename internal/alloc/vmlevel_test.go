package alloc

import (
	"errors"
	"math"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

func mkVM(id string, tasks ...*model.Task) *model.VM {
	for _, t := range tasks {
		t.VM = id
	}
	return &model.VM{ID: id, Tasks: tasks}
}

func TestCSAModeString(t *testing.T) {
	cases := map[CSAMode]string{
		Flattening:   "flattening",
		OverheadFree: "overhead-free CSA",
		ExistingCSA:  "existing CSA",
		CSAMode(99):  "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestVMLevelFlattening(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 10),
		model.SimpleTask("t2", p, 200, 30),
	)
	vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: Flattening}, 5, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vcpus) != 2 {
		t.Fatalf("flattening produced %d VCPUs, want 2 (one per task)", len(vcpus))
	}
	for i, v := range vcpus {
		if !v.SyncedRelease {
			t.Errorf("VCPU %d lacks SyncedRelease", i)
		}
		if v.Index != 5+i {
			t.Errorf("VCPU %d index = %d, want %d", i, v.Index, 5+i)
		}
		if v.Period != vm.Tasks[i].Period {
			t.Errorf("VCPU %d period = %v, want task period %v", i, v.Period, vm.Tasks[i].Period)
		}
	}
}

func TestVMLevelFlatteningRespectsVCPULimit(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 10),
		model.SimpleTask("t2", p, 200, 30),
	)
	vm.MaxVCPUs = 1
	_, err := VMLevel(vm, p, VMLevelConfig{Mode: Flattening}, 0, rngutil.New(1))
	if !errors.Is(err, ErrTooManyTasks) {
		t.Errorf("expected ErrTooManyTasks, got %v", err)
	}
}

func TestVMLevelEmptyVM(t *testing.T) {
	if _, err := VMLevel(&model.VM{ID: "e"}, model.PlatformA,
		VMLevelConfig{Mode: Flattening}, 0, rngutil.New(1)); err == nil {
		t.Error("empty VM accepted")
	}
}

func TestVMLevelUnknownMode(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1", model.SimpleTask("t1", p, 100, 10))
	if _, err := VMLevel(vm, p, VMLevelConfig{Mode: CSAMode(42)}, 0, rngutil.New(1)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestVMLevelOverheadFreeCoversAllTasksOnce(t *testing.T) {
	p := model.PlatformA
	bmNames := []string{"streamcluster", "swaptions", "canneal", "blackscholes", "ferret", "dedup"}
	var tasks []*model.Task
	for i, name := range bmNames {
		bm, _ := parsec.ByName(name)
		period := 100.0 * float64(int(1)<<uint(i%3))
		tasks = append(tasks, &model.Task{
			ID: name, Period: period,
			WCET:      bm.WCETTable(p, period*0.15),
			Benchmark: name,
		})
	}
	vm := mkVM("vm1", tasks...)
	vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: OverheadFree}, 0, rngutil.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(vcpus) == 0 || len(vcpus) > p.M {
		t.Fatalf("produced %d VCPUs, want between 1 and %d (min(#tasks, M))", len(vcpus), p.M)
	}
	seen := map[string]int{}
	for _, v := range vcpus {
		if !v.WellRegulated {
			t.Errorf("VCPU %s not marked well-regulated", v.ID)
		}
		var util float64
		for _, task := range v.Tasks {
			seen[task.ID]++
			util += task.RefUtil()
		}
		// Theorem 2: zero abstraction overhead.
		if math.Abs(v.RefBandwidth()-util) > 1e-9 {
			t.Errorf("VCPU %s bandwidth %v != taskset utilization %v", v.ID, v.RefBandwidth(), util)
		}
	}
	for _, task := range tasks {
		if seen[task.ID] != 1 {
			t.Errorf("task %s mapped %d times, want 1", task.ID, seen[task.ID])
		}
	}
}

func TestVMLevelExistingCSAProducesBudgets(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 10),
		model.SimpleTask("t2", p, 200, 20),
	)
	vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: ExistingCSA}, 0, rngutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var taskUtil, vcpuBW float64
	for _, v := range vcpus {
		vcpuBW += v.RefBandwidth()
	}
	for _, task := range vm.Tasks {
		taskUtil += task.RefUtil()
	}
	// The existing CSA carries abstraction overhead: strictly more
	// bandwidth than the taskset utilization.
	if vcpuBW <= taskUtil {
		t.Errorf("existing CSA bandwidth %v should exceed utilization %v", vcpuBW, taskUtil)
	}
}

func TestVMLevelOverheadFreeRejectsNonHarmonic(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 10),
		model.SimpleTask("t2", p, 150, 10),
	)
	// With one VCPU forced (M=1 means m=1), both tasks land together and
	// Theorem 2's harmonicity requirement fails.
	small := model.Platform{Name: "one", M: 1, C: 20, B: 20, Cmin: 2, Bmin: 1}
	if _, err := VMLevel(vm, small, VMLevelConfig{Mode: OverheadFree}, 0, rngutil.New(1)); err == nil {
		t.Error("non-harmonic taskset accepted by overhead-free analysis")
	}
}

func TestVMLevelExistingCSAHandlesNonHarmonic(t *testing.T) {
	// The existing analysis does not require harmonic periods (its demand
	// machinery quantizes to ticks and takes the LCM).
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 10),
		model.SimpleTask("t2", p, 150, 15),
	)
	small := model.Platform{Name: "one", M: 1, C: 20, B: 20, Cmin: 2, Bmin: 1}
	vcpus, err := VMLevel(vm, small, VMLevelConfig{Mode: ExistingCSA}, 0, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vcpus) != 1 {
		t.Fatalf("got %d VCPUs, want 1 on a single-core platform", len(vcpus))
	}
	// Bandwidth strictly above the 0.2 utilization (abstraction overhead).
	if bw := vcpus[0].RefBandwidth(); bw <= 0.2 {
		t.Errorf("bandwidth %v should exceed the taskset utilization 0.2", bw)
	}
}

func TestVMLevelSingleTask(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1", model.SimpleTask("t1", p, 100, 10))
	for _, mode := range []CSAMode{Flattening, OverheadFree, ExistingCSA} {
		vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: mode}, 0, rngutil.New(1))
		if err != nil {
			t.Errorf("mode %v: %v", mode, err)
			continue
		}
		if len(vcpus) != 1 {
			t.Errorf("mode %v: %d VCPUs, want 1", mode, len(vcpus))
		}
	}
}

func TestVMLevelRespectsMaxVCPUs(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 5),
		model.SimpleTask("t2", p, 100, 5),
		model.SimpleTask("t3", p, 100, 5),
	)
	vm.MaxVCPUs = 2
	vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: OverheadFree}, 0, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vcpus) > 2 {
		t.Errorf("produced %d VCPUs, limit is 2", len(vcpus))
	}
}

func TestApportion(t *testing.T) {
	groups := [][]int{{0, 1, 2}, {3, 4}, {5}}
	counts := apportion([]float64{0.6, 0.3, 0.1}, groups, 4)
	total := 0
	for c, n := range counts {
		if n < 1 {
			t.Errorf("cluster %d got %d VCPUs, want at least 1", c, n)
		}
		if n > len(groups[c]) {
			t.Errorf("cluster %d got %d VCPUs for %d tasks", c, n, len(groups[c]))
		}
		total += n
	}
	if total != 4 {
		t.Errorf("apportioned %d VCPUs, want 4", total)
	}
	// The heaviest cluster receives the extra VCPU.
	if counts[0] != 2 {
		t.Errorf("heaviest cluster got %d, want 2: %v", counts[0], counts)
	}
}

func TestApportionSaturation(t *testing.T) {
	// More VCPUs than tasks: every cluster saturates at its task count.
	groups := [][]int{{0}, {1}}
	counts := apportion([]float64{0.5, 0.5}, groups, 10)
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("saturated apportion = %v, want [1 1]", counts)
	}
}

func TestApportionZeroUtil(t *testing.T) {
	groups := [][]int{{0, 1}, {2}}
	counts := apportion([]float64{0, 0}, groups, 3)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 3 {
		t.Errorf("zero-util apportion total = %d, want 3 (%v)", total, counts)
	}
}

func TestClampVector(t *testing.T) {
	v := clampVector([]float64{1, math.Inf(1), math.NaN(), 200})
	for i, x := range v {
		if x > slowdownCap || math.IsNaN(x) {
			t.Errorf("entry %d = %v not clamped", i, x)
		}
	}
	if v[0] != 1 {
		t.Error("finite small entries must pass through")
	}
}
