package alloc

import (
	"context"

	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
)

// Allocator is a complete allocation strategy: given a system, it computes
// the tasks-to-VCPUs mapping, the VCPUs-to-cores mapping and the per-core
// cache/BW partition counts, or reports the system unschedulable.
type Allocator interface {
	// Name returns the legend label used in the paper's figures.
	Name() string
	// Allocate computes an allocation. It returns model.ErrNotSchedulable
	// when the strategy finds no feasible allocation; any other error
	// indicates a precondition violation (e.g. non-harmonic periods for
	// the overhead-free analysis).
	Allocate(sys *model.System, rng *rngutil.RNG) (*model.Allocation, error)
}

// Heuristic is vC2M's allocator: the VM-level clustering/packing algorithm
// combined with the hypervisor-level three-phase heuristic, parameterized
// by the analysis used for VCPU budgets.
type Heuristic struct {
	// Mode selects the VM-level analysis.
	Mode CSAMode
	// VMLevel configures task clustering; the Mode field inside is
	// overridden by Mode.
	VMLevel VMLevelConfig
	// Hyper configures the hypervisor-level search.
	Hyper HyperConfig
	// Metrics, when non-nil, records search-effort counters and per-phase
	// timings across both allocation levels (see the Metric* constants and
	// the csa.Metric* constants). Nil disables recording at no cost.
	Metrics *metrics.Recorder
	// Provenance, when non-nil, records the full decision stream across
	// both allocation levels (see package provenance). Nil disables
	// recording at no cost.
	Provenance *provenance.Recorder
	// Ctx, when non-nil, is polled between VMs and between hypervisor-
	// level packing attempts: a canceled context aborts the allocation
	// with the context's error instead of running the search to
	// completion. Nil disables the checks.
	//vc2m:ctxfield optional cancellation hook on a config struct; nil runs to completion
	Ctx context.Context
	// Span, when non-nil, is the parent under which the allocator opens
	// wall-clock stage spans: alloc.vmlevel and alloc.hyper children here,
	// csa.derive and alloc.phase1/2/3 grandchildren below. Nil disables
	// span recording at no cost; spans never influence the result.
	Span *obs.Span
}

// Name implements Allocator.
func (h *Heuristic) Name() string { return "Heuristic (" + h.Mode.String() + ")" }

// SetMetrics implements MetricsSetter.
func (h *Heuristic) SetMetrics(r *metrics.Recorder) { h.Metrics = r }

// SetProvenance implements ProvenanceSetter.
func (h *Heuristic) SetProvenance(p *provenance.Recorder) { h.Provenance = p }

// SetContext implements ContextSetter.
func (h *Heuristic) SetContext(ctx context.Context) { h.Ctx = ctx }

// SetSpan implements SpanSetter.
func (h *Heuristic) SetSpan(sp *obs.Span) { h.Span = sp }

// Allocate implements Allocator. A nil RNG falls back to a fixed seed, so
// the call is deterministic either way.
func (h *Heuristic) Allocate(sys *model.System, rng *rngutil.RNG) (*model.Allocation, error) {
	if rng == nil {
		rng = rngutil.New(0)
	}
	rec := h.Metrics
	rec.Inc(MetricAllocCalls)
	vmCfg := h.VMLevel
	vmCfg.Mode = h.Mode
	if rec != nil {
		vmCfg.Metrics = rec
	}
	hyCfg := h.Hyper
	if rec != nil {
		hyCfg.Metrics = rec
	}
	if h.Provenance != nil {
		vmCfg.Provenance = h.Provenance
		hyCfg.Provenance = h.Provenance
	}
	if h.Ctx != nil {
		hyCfg.Ctx = h.Ctx
	}
	vmSpan := h.Span.Child(obs.StageVMLevel)
	vmCfg.Span = vmSpan
	stopVM := rec.Time(MetricVMLevelSeconds)
	var vcpus []*model.VCPU
	for _, vm := range sys.VMs {
		if h.Ctx != nil {
			if err := h.Ctx.Err(); err != nil {
				stopVM()
				vmSpan.End()
				return nil, err
			}
		}
		vs, err := VMLevel(vm, sys.Platform, vmCfg, len(vcpus), rng)
		if err != nil {
			stopVM()
			vmSpan.End()
			return nil, err
		}
		vcpus = append(vcpus, vs...)
	}
	stopVM()
	vmSpan.SetInt("vms", int64(len(sys.VMs)))
	vmSpan.SetInt("vcpus", int64(len(vcpus)))
	vmSpan.End()
	rec.Add(MetricVCPUsBuilt, int64(len(vcpus)))
	hySpan := h.Span.Child(obs.StageHyper)
	hyCfg.Span = hySpan
	stopHyper := rec.Time(MetricHyperSeconds)
	a, err := HyperLevel(vcpus, sys.Platform, hyCfg, rng)
	stopHyper()
	hySpan.SetInt("vcpus", int64(len(vcpus)))
	hySpan.End()
	if err != nil {
		return nil, err
	}
	rec.Inc(MetricAllocSchedulable)
	a.Solution = h.Name()
	return a, nil
}

// EvenlyPartition is the "Evenly-partition (overhead-free CSA)" solution.
type EvenlyPartition struct {
	// Metrics, when non-nil, records search-effort counters.
	Metrics *metrics.Recorder
	// Provenance, when non-nil, records packing decisions and rejections.
	Provenance *provenance.Recorder
}

// Name implements Allocator.
func (EvenlyPartition) Name() string { return "Evenly-partition (overhead-free CSA)" }

// SetMetrics implements MetricsSetter.
func (e *EvenlyPartition) SetMetrics(r *metrics.Recorder) { e.Metrics = r }

// SetProvenance implements ProvenanceSetter.
func (e *EvenlyPartition) SetProvenance(p *provenance.Recorder) { e.Provenance = p }

// Allocate implements Allocator.
func (e EvenlyPartition) Allocate(sys *model.System, _ *rngutil.RNG) (*model.Allocation, error) {
	e.Metrics.Inc(MetricAllocCalls)
	a, err := evenlyPartitionAllocate(sys, sys.Platform, e.Metrics, e.Provenance)
	if err != nil {
		return nil, err
	}
	e.Metrics.Inc(MetricAllocSchedulable)
	a.Solution = EvenlyPartition{}.Name()
	return a, nil
}

// Baseline is the "Baseline (existing CSA)" solution.
type Baseline struct {
	// Metrics, when non-nil, records search-effort counters.
	Metrics *metrics.Recorder
	// Provenance, when non-nil, records packing decisions and rejections.
	Provenance *provenance.Recorder
}

// Name implements Allocator.
func (Baseline) Name() string { return "Baseline (existing CSA)" }

// SetMetrics implements MetricsSetter.
func (b *Baseline) SetMetrics(r *metrics.Recorder) { b.Metrics = r }

// SetProvenance implements ProvenanceSetter.
func (b *Baseline) SetProvenance(p *provenance.Recorder) { b.Provenance = p }

// Allocate implements Allocator.
func (b Baseline) Allocate(sys *model.System, _ *rngutil.RNG) (*model.Allocation, error) {
	b.Metrics.Inc(MetricAllocCalls)
	a, err := baselineAllocate(sys, sys.Platform, b.Metrics, b.Provenance)
	if err != nil {
		return nil, err
	}
	b.Metrics.Inc(MetricAllocSchedulable)
	a.Solution = Baseline{}.Name()
	return a, nil
}

// PaperSolutions returns the five solutions evaluated in Section 5, in the
// legend order of Figures 2-4: Baseline (existing CSA), Evenly-partition
// (overhead-free CSA), Heuristic (existing CSA), Heuristic (overhead-free
// CSA), Heuristic (flattening). All entries are pointers so that callers
// can attach a metrics recorder through MetricsSetter.
func PaperSolutions() []Allocator {
	return []Allocator{
		&Baseline{},
		&EvenlyPartition{},
		&Heuristic{Mode: ExistingCSA},
		&Heuristic{Mode: OverheadFree},
		&Heuristic{Mode: Flattening},
	}
}
