package alloc

import (
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
)

// Allocator is a complete allocation strategy: given a system, it computes
// the tasks-to-VCPUs mapping, the VCPUs-to-cores mapping and the per-core
// cache/BW partition counts, or reports the system unschedulable.
type Allocator interface {
	// Name returns the legend label used in the paper's figures.
	Name() string
	// Allocate computes an allocation. It returns model.ErrNotSchedulable
	// when the strategy finds no feasible allocation; any other error
	// indicates a precondition violation (e.g. non-harmonic periods for
	// the overhead-free analysis).
	Allocate(sys *model.System, rng *rngutil.RNG) (*model.Allocation, error)
}

// Heuristic is vC2M's allocator: the VM-level clustering/packing algorithm
// combined with the hypervisor-level three-phase heuristic, parameterized
// by the analysis used for VCPU budgets.
type Heuristic struct {
	// Mode selects the VM-level analysis.
	Mode CSAMode
	// VMLevel configures task clustering; the Mode field inside is
	// overridden by Mode.
	VMLevel VMLevelConfig
	// Hyper configures the hypervisor-level search.
	Hyper HyperConfig
}

// Name implements Allocator.
func (h *Heuristic) Name() string { return "Heuristic (" + h.Mode.String() + ")" }

// Allocate implements Allocator. A nil RNG falls back to a fixed seed, so
// the call is deterministic either way.
func (h *Heuristic) Allocate(sys *model.System, rng *rngutil.RNG) (*model.Allocation, error) {
	if rng == nil {
		rng = rngutil.New(0)
	}
	vmCfg := h.VMLevel
	vmCfg.Mode = h.Mode
	var vcpus []*model.VCPU
	for _, vm := range sys.VMs {
		vs, err := VMLevel(vm, sys.Platform, vmCfg, len(vcpus), rng)
		if err != nil {
			return nil, err
		}
		vcpus = append(vcpus, vs...)
	}
	a, err := HyperLevel(vcpus, sys.Platform, h.Hyper, rng)
	if err != nil {
		return nil, err
	}
	a.Solution = h.Name()
	return a, nil
}

// EvenlyPartition is the "Evenly-partition (overhead-free CSA)" solution.
type EvenlyPartition struct{}

// Name implements Allocator.
func (EvenlyPartition) Name() string { return "Evenly-partition (overhead-free CSA)" }

// Allocate implements Allocator.
func (EvenlyPartition) Allocate(sys *model.System, _ *rngutil.RNG) (*model.Allocation, error) {
	a, err := EvenlyPartitionAllocate(sys, sys.Platform)
	if err != nil {
		return nil, err
	}
	a.Solution = EvenlyPartition{}.Name()
	return a, nil
}

// Baseline is the "Baseline (existing CSA)" solution.
type Baseline struct{}

// Name implements Allocator.
func (Baseline) Name() string { return "Baseline (existing CSA)" }

// Allocate implements Allocator.
func (Baseline) Allocate(sys *model.System, _ *rngutil.RNG) (*model.Allocation, error) {
	a, err := BaselineAllocate(sys, sys.Platform)
	if err != nil {
		return nil, err
	}
	a.Solution = Baseline{}.Name()
	return a, nil
}

// PaperSolutions returns the five solutions evaluated in Section 5, in the
// legend order of Figures 2-4: Baseline (existing CSA), Evenly-partition
// (overhead-free CSA), Heuristic (existing CSA), Heuristic (overhead-free
// CSA), Heuristic (flattening).
func PaperSolutions() []Allocator {
	return []Allocator{
		Baseline{},
		EvenlyPartition{},
		&Heuristic{Mode: ExistingCSA},
		&Heuristic{Mode: OverheadFree},
		&Heuristic{Mode: Flattening},
	}
}
