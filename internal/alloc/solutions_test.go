package alloc

import (
	"errors"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

func genSystem(t *testing.T, target float64, seed int64) *model.System {
	t.Helper()
	sys, err := workload.Generate(workload.Config{
		Platform:      model.PlatformA,
		TargetRefUtil: target,
		Dist:          workload.Uniform,
	}, rngutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPaperSolutionsNamesAndOrder(t *testing.T) {
	want := []string{
		"Baseline (existing CSA)",
		"Evenly-partition (overhead-free CSA)",
		"Heuristic (existing CSA)",
		"Heuristic (overhead-free CSA)",
		"Heuristic (flattening)",
	}
	sols := PaperSolutions()
	if len(sols) != len(want) {
		t.Fatalf("PaperSolutions returned %d solutions, want %d", len(sols), len(want))
	}
	for i, s := range sols {
		if s.Name() != want[i] {
			t.Errorf("solution %d = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestAllSolutionsScheduleLightWorkload(t *testing.T) {
	// A very light taskset must be schedulable under every solution.
	sys := genSystem(t, 0.2, 1)
	for _, sol := range PaperSolutions() {
		a, err := sol.Allocate(sys, rngutil.New(10))
		if err != nil {
			t.Errorf("%s: light workload unschedulable: %v", sol.Name(), err)
			continue
		}
		if !a.Schedulable {
			t.Errorf("%s: allocation not marked schedulable", sol.Name())
		}
		if a.Solution != sol.Name() {
			t.Errorf("%s: allocation labeled %q", sol.Name(), a.Solution)
		}
		if err := a.Validate(sys.Tasks()); err != nil {
			t.Errorf("%s: allocation invalid: %v", sol.Name(), err)
		}
	}
}

func TestAllSolutionsRejectImpossibleWorkload(t *testing.T) {
	// Reference utilization far above the platform's 4 cores.
	sys := genSystem(t, 6.0, 2)
	for _, sol := range PaperSolutions() {
		_, err := sol.Allocate(sys, rngutil.New(11))
		if !errors.Is(err, model.ErrNotSchedulable) {
			t.Errorf("%s: expected ErrNotSchedulable for utilization 6.0 on 4 cores, got %v",
				sol.Name(), err)
		}
	}
}

func TestVC2MBeatsBaseline(t *testing.T) {
	// The headline result: at moderate utilizations vC2M schedules
	// tasksets the baseline cannot. Checked across seeds; flattening must
	// win strictly more often than baseline and never lose to it.
	flat := &Heuristic{Mode: Flattening}
	base := Baseline{}
	flatWins, baseWins := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		sys := genSystem(t, 1.0, 100+seed)
		_, errF := flat.Allocate(sys, rngutil.New(7))
		_, errB := base.Allocate(sys, rngutil.New(7))
		if errF == nil && errB != nil {
			flatWins++
		}
		if errB == nil && errF != nil {
			baseWins++
		}
	}
	if flatWins == 0 {
		t.Error("flattening never scheduled a taskset the baseline missed at utilization 1.0")
	}
	if baseWins > 0 {
		t.Errorf("baseline scheduled %d tasksets that flattening missed", baseWins)
	}
}

func TestOverheadFreeTracksFlattening(t *testing.T) {
	// Section 5.2: the overhead-free analysis performs close to
	// flattening. At light-to-moderate load they should agree.
	flat := &Heuristic{Mode: Flattening}
	of := &Heuristic{Mode: OverheadFree}
	agree, total := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		sys := genSystem(t, 0.8, 200+seed)
		_, errF := flat.Allocate(sys, rngutil.New(7))
		_, errO := of.Allocate(sys, rngutil.New(7))
		total++
		if (errF == nil) == (errO == nil) {
			agree++
		}
	}
	if agree < total*7/10 {
		t.Errorf("flattening and overhead-free agree on only %d/%d tasksets", agree, total)
	}
}

func TestHeuristicAllocationsValidate(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sys := genSystem(t, 1.2, 300+seed)
		for _, sol := range PaperSolutions() {
			a, err := sol.Allocate(sys, rngutil.New(seed))
			if err != nil {
				continue
			}
			if err := a.Validate(sys.Tasks()); err != nil {
				t.Errorf("seed %d %s: %v", seed, sol.Name(), err)
			}
		}
	}
}

func TestBaselineUnaffectedByRNG(t *testing.T) {
	sys := genSystem(t, 0.5, 5)
	a1, err1 := Baseline{}.Allocate(sys, rngutil.New(1))
	a2, err2 := Baseline{}.Allocate(sys, rngutil.New(999))
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("baseline result depends on RNG")
	}
	if err1 == nil && len(a1.Cores) != len(a2.Cores) {
		t.Error("baseline core count depends on RNG")
	}
}

func TestEvenlyPartitionUsesEvenSplit(t *testing.T) {
	sys := genSystem(t, 0.8, 6)
	a, err := EvenlyPartition{}.Allocate(sys, rngutil.New(1))
	if err != nil {
		t.Skipf("unschedulable: %v", err)
	}
	if len(a.Cores) == 0 {
		t.Fatal("no cores used")
	}
	c0, b0 := a.Cores[0].Cache, a.Cores[0].BW
	for _, core := range a.Cores {
		if core.Cache != c0 || core.BW != b0 {
			t.Errorf("evenly-partition produced uneven split: core %d has (%d,%d), core 0 has (%d,%d)",
				core.Core, core.Cache, core.BW, c0, b0)
		}
	}
}

func TestEvenSplit(t *testing.T) {
	cases := []struct{ total, m, max, want int }{
		{20, 4, 20, 5},
		{20, 3, 20, 6},
		{12, 4, 12, 3},
		{20, 1, 20, 20},
	}
	for _, c := range cases {
		if got := evenSplit(c.total, c.m, c.max); got != c.want {
			t.Errorf("evenSplit(%d,%d,%d) = %d, want %d", c.total, c.m, c.max, got, c.want)
		}
	}
}
