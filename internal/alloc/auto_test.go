package alloc

import (
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/rngutil"
)

func TestAutoModeFlattensWhenAllowed(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 10),
		model.SimpleTask("t2", p, 200, 30),
	)
	vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: Auto}, 0, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vcpus) != 2 {
		t.Fatalf("Auto without a VCPU limit produced %d VCPUs, want 2 (flattening)", len(vcpus))
	}
	for _, v := range vcpus {
		if !v.SyncedRelease {
			t.Errorf("VCPU %s not flattened", v.ID)
		}
	}
}

func TestAutoModeFallsBackToWellRegulated(t *testing.T) {
	p := model.PlatformA
	vm := mkVM("vm1",
		model.SimpleTask("t1", p, 100, 5),
		model.SimpleTask("t2", p, 200, 10),
		model.SimpleTask("t3", p, 400, 20),
	)
	vm.MaxVCPUs = 2 // fewer VCPUs than tasks: flattening impossible
	vcpus, err := VMLevel(vm, p, VMLevelConfig{Mode: Auto}, 0, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vcpus) > 2 {
		t.Fatalf("Auto produced %d VCPUs, VM limit is 2", len(vcpus))
	}
	for _, v := range vcpus {
		if !v.WellRegulated {
			t.Errorf("VCPU %s should be well-regulated in the fallback path", v.ID)
		}
	}
}

func TestAutoModeMixedVMs(t *testing.T) {
	// One unconstrained VM (flattened) and one constrained VM
	// (well-regulated) in the same system, end to end.
	p := model.PlatformA
	vmA := mkVM("vmA",
		model.SimpleTask("a1", p, 100, 10),
		model.SimpleTask("a2", p, 200, 20),
	)
	vmB := mkVM("vmB",
		model.SimpleTask("b1", p, 100, 5),
		model.SimpleTask("b2", p, 200, 10),
		model.SimpleTask("b3", p, 400, 20),
	)
	vmB.MaxVCPUs = 1
	sys := &model.System{Platform: p, VMs: []*model.VM{vmA, vmB}}
	h := &Heuristic{Mode: Auto}
	a, err := h.Allocate(sys, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(sys.Tasks()); err != nil {
		t.Fatal(err)
	}
	flattened, regulated := 0, 0
	for _, v := range a.VCPUs() {
		switch {
		case v.SyncedRelease:
			flattened++
		case v.WellRegulated:
			regulated++
		}
	}
	if flattened != 2 {
		t.Errorf("flattened VCPUs = %d, want 2 (vmA)", flattened)
	}
	if regulated != 1 {
		t.Errorf("well-regulated VCPUs = %d, want 1 (vmB, limit 1)", regulated)
	}
	if h.Name() != "Heuristic (auto)" {
		t.Errorf("name = %q", h.Name())
	}
}
