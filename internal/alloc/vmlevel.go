// Package alloc implements vC2M's resource allocation algorithms
// (Sections 4.2 and 4.3 of the paper) and the baseline solutions used in
// the evaluation (Section 5).
//
// Allocation happens at two levels. The VM-level step maps each VM's tasks
// onto VCPUs and computes the VCPUs' cache/BW-dependent parameters, using
// one of three analyses: flattening (Theorem 1), the overhead-free
// analysis on well-regulated VCPUs (Theorem 2), or the existing
// compositional analysis (Shin & Lee). The hypervisor-level step maps the
// resulting VCPUs onto physical cores and distributes cache and bandwidth
// partitions to the cores so that every core's EDF utilization is at most
// one.
package alloc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vc2m/internal/csa"
	"vc2m/internal/kmeans"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
)

// CSAMode selects how VCPU parameters are computed at the VM level.
type CSAMode int

const (
	// Flattening maps each task to a dedicated VCPU with a synchronized
	// release (Theorem 1). Zero abstraction overhead; requires the VM to
	// support at least as many VCPUs as tasks.
	Flattening CSAMode = iota
	// OverheadFree packs tasks onto well-regulated VCPUs analyzed with
	// Theorem 2. Zero abstraction overhead; requires harmonic periods.
	OverheadFree
	// ExistingCSA packs tasks the same way but computes VCPU budgets with
	// the periodic resource model of Shin & Lee [13], which carries the
	// abstraction overhead the paper eliminates.
	ExistingCSA
	// Auto is the paper's complete strategy: flattening for every VM that
	// can host one VCPU per task (the common case), falling back to
	// well-regulated VCPUs (Theorem 2) for VMs whose task count exceeds
	// their VCPU limit. Both paths are overhead-free.
	Auto
)

// String returns the mode name used in the figures.
func (m CSAMode) String() string {
	switch m {
	case Flattening:
		return "flattening"
	case OverheadFree:
		return "overhead-free CSA"
	case ExistingCSA:
		return "existing CSA"
	case Auto:
		return "auto"
	default:
		return "unknown"
	}
}

// ErrTooManyTasks is returned by the flattening strategy when a VM's task
// count exceeds its VCPU limit.
var ErrTooManyTasks = errors.New("alloc: VM has more tasks than its VCPU limit allows")

// VMLevelConfig parameterizes the VM-level allocation.
type VMLevelConfig struct {
	// Mode selects the analysis used for VCPU parameters.
	Mode CSAMode
	// Clusters is the number of KMeans clusters used to group tasks by
	// slowdown similarity; 0 defaults to min(3, #tasks).
	Clusters int
	// Metrics, when non-nil, records clustering and analysis effort
	// (nil disables recording at no cost).
	Metrics *metrics.Recorder
	// Provenance, when non-nil, records the task-to-VCPU mapping and each
	// VCPU's derived interface (nil disables recording at no cost).
	Provenance *provenance.Recorder
	// Span, when non-nil, is the parent under which one csa.derive span is
	// opened per derived VCPU interface (nil disables at no cost).
	Span *obs.Span
}

// slowdownCap bounds slowdown-vector entries used for clustering. Budget
// tables produced by the existing CSA may contain +Inf for infeasible
// allocations; clamping keeps KMeans distances finite without affecting
// the grouping of feasible profiles.
const slowdownCap = 50.0

// VMLevel maps the VM's tasks onto VCPUs per the configuration and returns
// the VCPUs with their parameter tables. Indices are assigned starting at
// firstIndex so that VCPUs across VMs receive distinct tie-breaking
// indices.
func VMLevel(vm *model.VM, plat model.Platform, cfg VMLevelConfig, firstIndex int, rng *rngutil.RNG) ([]*model.VCPU, error) {
	if len(vm.Tasks) == 0 {
		return nil, fmt.Errorf("alloc: VM %s has no tasks", vm.ID)
	}
	switch cfg.Mode {
	case Flattening:
		return flattenVM(vm, firstIndex, cfg.Provenance)
	case OverheadFree, ExistingCSA:
		return clusterPackVM(vm, plat, cfg, firstIndex, rng)
	case Auto:
		if vm.MaxVCPUs == 0 || len(vm.Tasks) <= vm.MaxVCPUs {
			return flattenVM(vm, firstIndex, cfg.Provenance)
		}
		cfg.Mode = OverheadFree
		return clusterPackVM(vm, plat, cfg, firstIndex, rng)
	default:
		return nil, fmt.Errorf("alloc: unknown CSA mode %d", cfg.Mode)
	}
}

// flattenVM applies Theorem 1: one VCPU per task.
func flattenVM(vm *model.VM, firstIndex int, prov *provenance.Recorder) ([]*model.VCPU, error) {
	if vm.MaxVCPUs > 0 && len(vm.Tasks) > vm.MaxVCPUs {
		return nil, fmt.Errorf("%w: VM %s has %d tasks, limit %d",
			ErrTooManyTasks, vm.ID, len(vm.Tasks), vm.MaxVCPUs)
	}
	out := make([]*model.VCPU, len(vm.Tasks))
	for i, t := range vm.Tasks {
		out[i] = csa.FlattenVCPU(t, firstIndex+i)
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: provenance.StageVMLevel, Kind: provenance.KindMap,
				Subject: t.ID, Target: out[i].ID, Accepted: true,
				Value:  t.RefUtil(),
				Reason: "flattening (Theorem 1): dedicated VCPU mirroring the task, zero abstraction overhead",
			})
		}
	}
	return out, nil
}

// clusterPackVM implements the VM-level heuristic of Section 4.2 for the
// overhead-free and existing analyses: group tasks with similar slowdown
// vectors via KMeans, give each cluster a VCPU count proportional to its
// reference utilization (m VCPUs total, m = min(#tasks, #cores)), pack
// tasks within each cluster onto its VCPUs in decreasing reference
// utilization onto the least-loaded VCPU, and compute each VCPU's
// parameters with the selected analysis.
func clusterPackVM(vm *model.VM, plat model.Platform, cfg VMLevelConfig, firstIndex int, rng *rngutil.RNG) ([]*model.VCPU, error) {
	tasks := vm.Tasks
	m := len(tasks)
	if plat.M < m {
		m = plat.M
	}
	if vm.MaxVCPUs > 0 && vm.MaxVCPUs < m {
		m = vm.MaxVCPUs
	}

	k := cfg.Clusters
	if k <= 0 {
		k = 3
	}
	if k > m {
		k = m
	}

	points := make([][]float64, len(tasks))
	for i, t := range tasks {
		points[i] = clampVector(t.WCET.Slowdown())
	}
	clustering := kmeans.Cluster(points, k, rng)
	rec := cfg.Metrics
	rec.Inc(MetricKMeansRuns)
	rec.Add(MetricKMeansIters, int64(clustering.Iterations))

	// Group task indices per cluster.
	groups := make([][]int, clustering.K)
	groupUtil := make([]float64, clustering.K)
	for i, c := range clustering.Assign {
		groups[c] = append(groups[c], i)
		groupUtil[c] += tasks[i].RefUtil()
	}

	counts := apportion(groupUtil, groups, m)

	var vcpuTasks [][]*model.Task
	for c, idxs := range groups {
		// Sort cluster tasks by decreasing reference utilization
		// (deterministic tie-break by index).
		sort.SliceStable(idxs, func(a, b int) bool {
			ua, ub := tasks[idxs[a]].RefUtil(), tasks[idxs[b]].RefUtil()
			if ua != ub { //vc2m:floateq exact tie-break keeps the sort a strict weak order
				return ua > ub
			}
			return idxs[a] < idxs[b]
		})
		bins := make([][]*model.Task, counts[c])
		loads := make([]float64, counts[c])
		for _, ti := range idxs {
			// Least-loaded VCPU of this cluster, to balance loads.
			best := 0
			for b := 1; b < len(loads); b++ {
				if loads[b] < loads[best] {
					best = b
				}
			}
			bins[best] = append(bins[best], tasks[ti])
			loads[best] += tasks[ti].RefUtil()
		}
		for _, bin := range bins {
			if len(bin) > 0 {
				vcpuTasks = append(vcpuTasks, bin)
			}
		}
	}

	prov := cfg.Provenance
	out := make([]*model.VCPU, 0, len(vcpuTasks))
	for i, group := range vcpuTasks {
		idx := firstIndex + i
		var v *model.VCPU
		dsp := cfg.Span.Child(obs.StageCSADerive)
		dsp.SetAttr("analysis", cfg.Mode.String())
		dsp.SetInt("tasks", int64(len(group)))
		switch cfg.Mode {
		case OverheadFree:
			wr, err := csa.WellRegulatedVCPU(group, idx)
			if err != nil {
				dsp.End()
				return nil, fmt.Errorf("alloc: VM %s: %w", vm.ID, err)
			}
			v = wr
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: provenance.StageCSA, Kind: provenance.KindInterface,
					Subject: v.ID, Cache: plat.C, BW: plat.B,
					Value: v.RefBandwidth(), Accepted: true,
					Reason: fmt.Sprintf("well-regulated (Theorem 2): period %.4g, bandwidth equals taskset utilization (zero abstraction overhead)", v.Period),
				})
			}
		case ExistingCSA:
			ex, _, err := csa.ExistingVCPUObs(group, idx, plat, rec, prov, dsp)
			if err != nil {
				dsp.End()
				return nil, fmt.Errorf("alloc: VM %s: %w", vm.ID, err)
			}
			v = ex
		}
		if v != nil {
			dsp.SetAttr("vcpu", v.ID)
		}
		dsp.End()
		if prov.Enabled() {
			for _, t := range group {
				prov.Record(provenance.Decision{
					Stage: provenance.StageVMLevel, Kind: provenance.KindMap,
					Subject: t.ID, Target: v.ID, Accepted: true,
					Value:  t.RefUtil(),
					Reason: fmt.Sprintf("cluster packing (%s): least-loaded VCPU of the task's slowdown cluster", cfg.Mode),
				})
			}
		}
		out = append(out, v)
	}
	return out, nil
}

// apportion distributes total VCPUs across clusters proportionally to
// their utilization, guaranteeing at least one per non-empty cluster and
// never more than the cluster's task count, using the largest-remainder
// method. Any slack left by the task-count caps is given to the clusters
// with the largest utilization per VCPU.
func apportion(utils []float64, groups [][]int, total int) []int {
	k := len(utils)
	counts := make([]int, k)
	if k == 0 {
		return counts
	}
	var sum float64
	for _, u := range utils {
		sum += u
	}
	remaining := total
	// Baseline: one VCPU per non-empty cluster.
	for c := range counts {
		if len(groups[c]) > 0 {
			counts[c] = 1
			remaining--
		}
	}
	if remaining <= 0 {
		return counts
	}
	// Proportional shares of what is left.
	type rem struct {
		c    int
		frac float64
	}
	var rems []rem
	if sum > 0 {
		for c := range counts {
			if len(groups[c]) == 0 {
				continue
			}
			share := utils[c] / sum * float64(remaining)
			whole := int(share)
			cap := len(groups[c]) - counts[c]
			if whole > cap {
				whole = cap
			}
			counts[c] += whole
			rems = append(rems, rem{c, share - float64(whole)})
		}
	} else {
		for c := range counts {
			if len(groups[c]) > 0 {
				rems = append(rems, rem{c, float64(len(groups[c]))})
			}
		}
	}
	used := 0
	for _, n := range counts {
		used += n
	}
	left := total - used
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for left > 0 {
		granted := false
		for _, r := range rems {
			if left == 0 {
				break
			}
			if counts[r.c] < len(groups[r.c]) {
				counts[r.c]++
				left--
				granted = true
			}
		}
		if !granted {
			break // every cluster saturated at one VCPU per task
		}
	}
	return counts
}

// clampVector caps entries (existing-CSA budget tables may contain +Inf).
func clampVector(v []float64) []float64 {
	for i, x := range v {
		if x > slowdownCap || math.IsInf(x, 1) || math.IsNaN(x) {
			v[i] = slowdownCap
		}
	}
	return v
}
