package alloc

import (
	"bytes"
	"fmt"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/rngutil"
)

// fuzzArrival decodes one arrival op into a VM: the op argument picks the
// utilization (0.05 + 0.07·arg, so both admissible and hopeless VMs occur)
// and the task count (1–3, spread over distinct periods). Returns the VM
// and the largest single-task utilization, which drives the deterministic
// rejection oracle below.
func fuzzArrival(id string, arg int) (*model.VM, float64) {
	n := 1 + arg%3
	util := 0.05 + 0.07*float64(arg)
	per := util / float64(n)
	periods := []float64{100, 200, 400}
	vm := &model.VM{ID: id}
	for i := 0; i < n; i++ {
		p := periods[i%len(periods)]
		vm.Tasks = append(vm.Tasks, model.SimpleTask(fmt.Sprintf("%s-t%d", id, i), model.PlatformA, p, per*p))
	}
	return vm, per
}

// FuzzIncrementalChurn drives Incremental with arbitrary interleavings of
// arrivals, departures, empty deltas, and invalid departures decoded from
// the fuzz input. After every event the surviving layout must pass
// Allocation.Validate for the exact fleet task set — which bounds every
// core's cache/bandwidth grants by the platform totals (no resource leaks)
// and every core's utilization by 1 — and a VM whose tasks cannot fit any
// single core (per-task utilization > 1) must be rejected, matching the
// from-scratch allocator's deterministic quick screen. Errors must leave
// the previous layout byte-identical; empty deltas must be identities.
func FuzzIncrementalChurn(f *testing.F) {
	// Ops: b&3 selects the kind, b>>2 the argument (see the switch below).
	f.Add([]byte{0, 1, 0x04, 0x08, 0x01, 0x02, 0x0c, 0x03})             // arrive/depart/empty/ghost mix
	f.Add([]byte{1, 7, 0x10, 0x20, 0x40, 0x01, 0x01, 0x01})             // existing CSA, drain to empty
	f.Add([]byte{0, 3, 0xfc, 0x04})                                     // hopeless arrival then a small one
	f.Add([]byte{1, 0, 0x04, 0x24, 0x44, 0x64, 0x84, 0xa4, 0xc4, 0xe4}) // fill until rejections start

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		mode := Flattening
		if data[0]%2 == 1 {
			mode = ExistingCSA
		}
		seed := int64(data[1]) + 1
		ops := data[2:]
		if len(ops) > 48 {
			ops = ops[:48]
		}

		cur := &model.Allocation{Platform: model.PlatformA, Schedulable: true}
		fleet := map[string]*model.VM{}
		next := 0
		for i, b := range ops {
			op, arg := b&3, int(b>>2)
			var delta Delta
			var arrived *model.VM
			maxTaskUtil := 0.0
			wantErr := false
			switch op {
			case 0: // arrival
				arrived, maxTaskUtil = fuzzArrival(fmt.Sprintf("vm%d", next), arg)
				next++
				delta = Delta{Arrivals: []*model.VM{arrived}}
			case 1: // departure of a present VM
				ids := sortedKeys(fleet)
				if len(ids) == 0 {
					continue
				}
				delta = Delta{Departures: []string{ids[arg%len(ids)]}}
			case 2: // empty delta: must be an identity
				delta = Delta{}
			case 3: // departure of an unknown VM: must error, layout untouched
				delta = Delta{Departures: []string{"ghost"}}
				wantErr = true
			}

			before := allocBytes(t, cur)
			cfg := IncrementalConfig{Mode: mode, Hyper: HyperConfig{MaxIters: 4}}
			res, err := Incremental(cur, delta, cfg, rngutil.New(seed+int64(i)))
			if wantErr {
				if err == nil {
					t.Fatalf("op %d: unknown departure accepted", i)
				}
				if !bytes.Equal(before, allocBytes(t, cur)) {
					t.Fatalf("op %d: error mutated the previous layout", i)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d (%d): unexpected error: %v", i, op, err)
			}
			if !bytes.Equal(before, allocBytes(t, cur)) {
				t.Fatalf("op %d: Incremental mutated its input layout", i)
			}
			if op == 2 && !bytes.Equal(before, allocBytes(t, res.Allocation)) {
				t.Fatalf("op %d: empty delta changed the layout", i)
			}

			// Verdict accounting: every arrival lands in exactly one of
			// Admitted/Rejected, and a task no core can host is never admitted.
			if arrived != nil {
				adm := contains(res.Admitted, arrived.ID)
				rej := contains(res.Rejected, arrived.ID)
				if adm == rej {
					t.Fatalf("op %d: arrival %s admitted=%v rejected=%v", i, arrived.ID, adm, rej)
				}
				if adm {
					fleet[arrived.ID] = arrived
				}
				if maxTaskUtil > 1 && adm {
					t.Fatalf("op %d: admitted %s with per-task util %.2f > 1 (from-scratch would reject)",
						i, arrived.ID, maxTaskUtil)
				}
			}
			for _, id := range res.Departed {
				if _, ok := fleet[id]; !ok {
					t.Fatalf("op %d: departed unknown VM %s", i, id)
				}
				delete(fleet, id)
			}
			if len(res.Departed) != len(delta.Departures) {
				t.Fatalf("op %d: departed %v for departures %v", i, res.Departed, delta.Departures)
			}

			// The surviving layout must stay a verified witness: every fleet
			// task mapped exactly once, per-core grants within the platform
			// budgets, per-core utilization schedulable.
			if err := res.Allocation.Validate(fleetTasks(fleet)); err != nil {
				t.Fatalf("op %d: layout invalid after event: %v", i, err)
			}
			cur = res.Allocation
		}
	})
}
