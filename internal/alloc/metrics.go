package alloc

import (
	"context"

	"vc2m/internal/metrics"
	"vc2m/internal/obs"
	"vc2m/internal/provenance"
)

// Counter and timer names recorded by the allocators when a recorder is
// attached (see Heuristic.Metrics and MetricsSetter). Together with the
// csa.* counters they form the per-solution search-effort profile that the
// experiment harness reports.
const (
	// MetricAllocCalls counts Allocate invocations; MetricAllocSchedulable
	// counts the ones that returned a feasible allocation.
	MetricAllocCalls       = "alloc.allocate.calls"
	MetricAllocSchedulable = "alloc.allocate.schedulable"
	// MetricVCPUsBuilt counts VCPUs produced by the VM level.
	MetricVCPUsBuilt = "alloc.vcpus.built"
	// MetricKMeansRuns / MetricKMeansIters count clustering invocations and
	// their Lloyd iterations (VM level and hypervisor level combined).
	MetricKMeansRuns  = "alloc.kmeans.runs"
	MetricKMeansIters = "alloc.kmeans.iterations"
	// MetricMTried counts core counts m examined by the outer loop.
	MetricMTried = "alloc.hyper.m_tried"
	// MetricPermutations counts cluster permutations tried (one Phase 1
	// packing each).
	MetricPermutations  = "alloc.hyper.permutations"
	MetricPhase1Packing = "alloc.phase1.packings"
	// MetricPhase2Calls counts Phase 2 invocations; MetricPhase2Attempts
	// counts candidate partition-grant evaluations (gain computations);
	// MetricPhase2Grants counts partitions actually granted.
	MetricPhase2Calls    = "alloc.phase2.calls"
	MetricPhase2Attempts = "alloc.phase2.grant_attempts"
	MetricPhase2Grants   = "alloc.phase2.grants"
	// MetricPhase3Rounds counts load-balancing rounds;
	// MetricPhase3Migrations counts VCPU migrations performed.
	MetricPhase3Rounds     = "alloc.phase3.rounds"
	MetricPhase3Migrations = "alloc.phase3.migrations"
	// MetricIncrementalCalls counts Incremental invocations (one churn
	// delta each); MetricIncrementalAdmits/Rejects count arrival verdicts,
	// MetricIncrementalEvicts counts departures applied, and
	// MetricIncrementalRepacks counts arrivals that fell back to a full
	// hypervisor-level repack instead of a warm placement.
	MetricIncrementalCalls   = "alloc.incremental.calls"
	MetricIncrementalAdmits  = "alloc.incremental.admits"
	MetricIncrementalRejects = "alloc.incremental.rejects"
	MetricIncrementalEvicts  = "alloc.incremental.evicts"
	MetricIncrementalRepacks = "alloc.incremental.repacks"

	// Wall-time timers (seconds per invocation).
	MetricVMLevelSeconds     = "alloc.vmlevel.seconds"
	MetricHyperSeconds       = "alloc.hyper.seconds"
	MetricPhase1Seconds      = "alloc.phase1.seconds"
	MetricPhase2Seconds      = "alloc.phase2.seconds"
	MetricPhase3Seconds      = "alloc.phase3.seconds"
	MetricIncrementalSeconds = "alloc.incremental.seconds"
)

// MetricsSetter is implemented by allocators that can record search-effort
// metrics. The experiment harness uses it to attach one recorder per
// solution without widening the Allocator interface.
type MetricsSetter interface {
	SetMetrics(*metrics.Recorder)
}

// ProvenanceSetter is implemented by allocators that can record their
// decision stream (see package provenance). Like MetricsSetter, it lets
// harnesses attach a recorder without widening the Allocator interface.
type ProvenanceSetter interface {
	SetProvenance(*provenance.Recorder)
}

// ContextSetter is implemented by allocators whose search polls a
// cancellation context (see Heuristic.Ctx). Harnesses and the allocation
// server use it to make long searches abortable without widening the
// Allocator interface.
type ContextSetter interface {
	SetContext(context.Context)
}

// SpanSetter is implemented by allocators that open wall-clock stage
// spans under a parent span (see Heuristic.Span and package obs).
// Harnesses and the allocation server use it to attach a span without
// widening the Allocator interface.
type SpanSetter interface {
	SetSpan(*obs.Span)
}
