package alloc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"vc2m/internal/csa"
	"vc2m/internal/kmeans"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
)

// HyperConfig parameterizes the hypervisor-level allocation of Section 4.3.
type HyperConfig struct {
	// MaxIters is the number of random cluster permutations tried per core
	// count (the user-defined iteration bound of the paper); 0 defaults
	// to 10.
	MaxIters int
	// Clusters is the KMeans cluster count for grouping VCPUs by slowdown
	// similarity; 0 defaults to min(3, #VCPUs).
	Clusters int
	// MaxBalanceRounds bounds the Phase 3 <-> Phase 2 loop per packing;
	// 0 defaults to 16.
	MaxBalanceRounds int
	// MinCores is a warm-start hint: the search starts at m = MinCores
	// instead of m = 1, skipping core counts the caller already knows are
	// too small (the incremental repack passes the surviving layout's core
	// count — a fleet that needed k cores before an arrival will not fit on
	// fewer with one more VM). 0 or 1 preserves the full search.
	MinCores int
	// Overheads inflates VCPU budgets for intra-core preemption and
	// completion overhead before allocation ([17]); zero disables.
	Overheads csa.Overheads
	// Metrics, when non-nil, records search-effort counters and per-phase
	// timings (nil disables recording at no cost).
	Metrics *metrics.Recorder
	// Provenance, when non-nil, records every packing attempt, partition
	// grant, migration and the final verdict with the binding resources
	// (nil disables recording at one pointer compare per site).
	Provenance *provenance.Recorder
	// Ctx, when non-nil, is polled between packing attempts: a canceled
	// context aborts the search and HyperLevel returns the context's
	// error. Long-running services (the allocation server, interruptible
	// sweeps) use it to stop abandoned allocations promptly; a nil Ctx
	// costs one comparison per attempt.
	//vc2m:ctxfield optional cancellation hook on a config struct; nil runs to completion
	Ctx context.Context
	// Span, when non-nil, is the parent under which one alloc.phase1/2/3
	// span is opened per phase invocation, mirroring the Metric*Seconds
	// timers (nil disables at no cost).
	Span *obs.Span

	// Ablation switches, used by the design-choice benchmarks to quantify
	// what each ingredient of the heuristic contributes.

	// NoClustering places all VCPUs in a single cluster, removing the
	// slowdown-similarity grouping.
	NoClustering bool
	// NoLoadBalance skips Phase 3 (the migration of VCPUs away from
	// unschedulable cores), retrying Phase 1 with a new permutation
	// instead.
	NoLoadBalance bool
	// NoResourceGrowth replaces Phase 2's demand-driven partition grants
	// with an even split of all partitions across the cores.
	NoResourceGrowth bool
}

func (cfg HyperConfig) withDefaults(n int) HyperConfig {
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 10
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 3
	}
	if cfg.Clusters > n && n > 0 {
		cfg.Clusters = n
	}
	if cfg.MaxBalanceRounds <= 0 {
		cfg.MaxBalanceRounds = 16
	}
	return cfg
}

// coreState is a core's working assignment during the search.
type coreState struct {
	vcpus []*model.VCPU
	cache int
	bw    int

	// memoUtil caches util(): Phase 2 and Phase 3 (and online admission)
	// re-evaluate each core's utilization many times between mutations, and
	// each evaluation walks every hosted VCPU. Any mutation of vcpus, cache
	// or bw must go through touch() to invalidate the memo.
	memoUtil  float64
	memoValid bool
}

// touch invalidates the memoized utilization after a mutation.
func (cs *coreState) touch() { cs.memoValid = false }

// util returns the core's total VCPU bandwidth under its current partition
// allocation; +Inf entries (existing-CSA infeasible allocations) propagate.
func (cs *coreState) util() float64 {
	if !cs.memoValid {
		cs.memoUtil = cs.utilAt(cs.cache, cs.bw)
		cs.memoValid = true
	}
	return cs.memoUtil
}

// utilAt evaluates the core's bandwidth under a hypothetical allocation.
func (cs *coreState) utilAt(cache, bw int) float64 {
	var u float64
	for _, v := range cs.vcpus {
		u += v.Bandwidth(cache, bw)
	}
	return u
}

const schedEps = 1e-9

func schedulable(u float64) bool { return u <= 1+schedEps }

// HyperLevel maps VCPUs onto cores and allocates cache/BW partitions per
// the heuristic of Section 4.3: it tries m = 1..M cores; for each m it
// clusters VCPUs by slowdown similarity and repeats (Phase 1) packing under
// a random cluster permutation, (Phase 2) incremental resource allocation,
// and (Phase 3) load balancing, until the system is schedulable or the
// iteration budget is exhausted. It returns model.ErrNotSchedulable when no
// feasible allocation is found.
func HyperLevel(vcpus []*model.VCPU, plat model.Platform, cfg HyperConfig, rng *rngutil.RNG) (*model.Allocation, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if len(vcpus) == 0 {
		return &model.Allocation{Platform: plat, Schedulable: true}, nil
	}
	cfg = cfg.withDefaults(len(vcpus))
	rec := cfg.Metrics
	prov := cfg.Provenance

	inflated := make([]*model.VCPU, len(vcpus))
	for i, v := range vcpus {
		inflated[i] = cfg.Overheads.InflateVCPU(v)
	}

	// Quick infeasibility screen: a VCPU whose bandwidth exceeds 1 even
	// under the full allocation can never be scheduled.
	for _, v := range inflated {
		if !schedulable(v.RefBandwidth()) {
			re := &RejectionError{
				Stage: provenance.StageHyper,
				Reason: fmt.Sprintf("VCPU %s needs bandwidth %.3f > 1 even under the full (C,B) allocation",
					v.ID, v.RefBandwidth()),
				Violated: []provenance.Resource{provenance.CPU},
			}
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: provenance.StageHyper, Kind: provenance.KindReject,
					Subject: v.ID, Cache: plat.C, BW: plat.B,
					Value: v.RefBandwidth(), Reason: re.Reason, Violated: re.Violated,
				})
			}
			return nil, re
		}
	}

	var groups [][]*model.VCPU
	if cfg.NoClustering {
		groups = [][]*model.VCPU{append([]*model.VCPU(nil), inflated...)}
	} else {
		points := make([][]float64, len(inflated))
		for i, v := range inflated {
			points[i] = clampVector(v.Budget.Slowdown())
		}
		clustering := kmeans.Cluster(points, cfg.Clusters, rng)
		rec.Inc(MetricKMeansRuns)
		rec.Add(MetricKMeansIters, int64(clustering.Iterations))
		groups = make([][]*model.VCPU, clustering.K)
		for i, c := range clustering.Assign {
			groups[c] = append(groups[c], inflated[i])
		}
	}
	// Within each cluster, sort by decreasing reference utilization once.
	for _, g := range groups {
		sort.SliceStable(g, func(a, b int) bool {
			ua, ub := g[a].RefBandwidth(), g[b].RefBandwidth()
			if ua != ub { //vc2m:floateq exact tie-break keeps the sort a strict weak order
				return ua > ub
			}
			return g[a].Index < g[b].Index
		})
	}

	var scratch packScratch
	var attempts int
	var cpuN, cacheN, bwN int // how often each resource bound a failed attempt
	mStart := 1
	if cfg.MinCores > mStart {
		mStart = cfg.MinCores
	}
	for m := mStart; m <= plat.M; m++ {
		if plat.Cmin*m > plat.C || plat.Bmin*m > plat.B {
			break // not enough partitions to give every core its minimum
		}
		rec.Inc(MetricMTried)
		for iter := 0; iter < cfg.MaxIters; iter++ {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, fmt.Errorf("alloc: search canceled after %d attempts: %w", attempts, err)
				}
			}
			perm := rng.Perm(len(groups))
			rec.Inc(MetricPermutations)
			sp1 := cfg.Span.Child(obs.StagePhase1)
			stop := rec.Time(MetricPhase1Seconds)
			cores := packPhase1(groups, perm, m, &scratch)
			stop()
			sp1.SetInt("m", int64(m))
			sp1.SetInt("iter", int64(iter))
			sp1.End()
			rec.Inc(MetricPhase1Packing)
			attempts++
			ok, cause := allocateAndBalance(cores, plat, cfg)
			if ok {
				if prov.Enabled() {
					recordPlacements(prov, cores)
					prov.Record(provenance.Decision{
						Stage: provenance.StageHyper, Kind: provenance.KindAccept,
						Subject: "system", Target: fmt.Sprintf("m=%d", m),
						Value: float64(m), Accepted: true,
						Reason: fmt.Sprintf("schedulable on %d cores at iteration %d", m, iter),
					})
				}
				return buildAllocation(cores, plat), nil
			}
			if cause.cpu {
				cpuN++
			}
			if cause.cache {
				cacheN++
			}
			if cause.bw {
				bwN++
			}
			if prov.Enabled() {
				prov.Record(provenance.Decision{
					Stage: provenance.StageHyper, Kind: provenance.KindAttempt,
					Subject:  fmt.Sprintf("m=%d iter=%d", m, iter),
					Value:    totalOverload(cores),
					Reason:   "packing attempt left unschedulable cores (value = total overload)",
					Violated: cause.violated(),
				})
			}
		}
	}
	re := &RejectionError{
		Stage:    provenance.StageHyper,
		Reason:   fmt.Sprintf("no feasible packing in %d attempts (cpu-bound %d, cache-starved %d, bw-starved %d)", attempts, cpuN, cacheN, bwN),
		Violated: rankViolated(cpuN, cacheN, bwN),
	}
	if prov.Enabled() {
		prov.Record(provenance.Decision{
			Stage: provenance.StageHyper, Kind: provenance.KindReject,
			Subject: "system", Reason: re.Reason, Violated: re.Violated,
		})
	}
	return nil, re
}

// recordPlacements emits one place decision per VCPU of a successful
// packing, capturing the final core map and partition context.
func recordPlacements(prov *provenance.Recorder, cores []*coreState) {
	for i, cs := range cores {
		for _, v := range cs.vcpus {
			prov.Record(provenance.Decision{
				Stage: provenance.StageHyper, Kind: provenance.KindPlace,
				Subject: v.ID, Target: fmt.Sprintf("core %d", i),
				Cache: cs.cache, BW: cs.bw,
				Value: v.Bandwidth(cs.cache, cs.bw), Accepted: true,
				Reason: "final placement (value = VCPU bandwidth under the core's partitions)",
			})
		}
	}
}

// packScratch is the reusable working memory of packPhase1: one HyperLevel
// search runs up to MaxIters * M packings, and without the scratch every
// one of them allocated fresh core states and a load vector. buildAllocation
// copies the per-core VCPU slices, so reusing the backing arrays across
// iterations is safe.
type packScratch struct {
	states  []coreState
	cores   []*coreState
	refLoad []float64
}

func (s *packScratch) reset(m int) ([]*coreState, []float64) {
	if cap(s.states) < m {
		s.states = make([]coreState, m)
		s.cores = make([]*coreState, m)
		s.refLoad = make([]float64, m)
	}
	s.states = s.states[:m]
	s.cores = s.cores[:m]
	s.refLoad = s.refLoad[:m]
	for i := range s.states {
		s.states[i].vcpus = s.states[i].vcpus[:0]
		s.states[i].cache, s.states[i].bw = 0, 0
		s.states[i].touch()
		s.cores[i] = &s.states[i]
		s.refLoad[i] = 0
	}
	return s.cores, s.refLoad
}

// packPhase1 packs VCPUs onto m cores: clusters are visited in permutation
// order, VCPUs within a cluster in decreasing reference utilization, each
// placed on the core with the smallest total reference utilization so that
// all cores end up with similar loads.
func packPhase1(groups [][]*model.VCPU, perm []int, m int, scratch *packScratch) []*coreState {
	cores, refLoad := scratch.reset(m)
	for _, g := range perm {
		for _, v := range groups[g] {
			best := 0
			for c := 1; c < m; c++ {
				if refLoad[c] < refLoad[best] {
					best = c
				}
			}
			cores[best].vcpus = append(cores[best].vcpus, v)
			cores[best].touch()
			refLoad[best] += v.RefBandwidth()
		}
	}
	return cores
}

// allocateAndBalance runs Phase 2 (resource allocation) and Phase 3 (load
// balancing) alternately until the system is schedulable, balancing stops
// helping, or the round budget is exhausted. It reports success; on
// success the cores hold their final VCPU and partition assignments, and
// on failure the cause classifies the binding resources of the last
// Phase 2 failure.
func allocateAndBalance(cores []*coreState, plat model.Platform, cfg HyperConfig) (bool, failCause) {
	rec := cfg.Metrics
	prov := cfg.Provenance
	phase2 := allocatePhase2
	if cfg.NoResourceGrowth {
		phase2 = allocateEven
	}
	var cause failCause
	runPhase2 := func() bool {
		rec.Inc(MetricPhase2Calls)
		sp2 := cfg.Span.Child(obs.StagePhase2)
		stop := rec.Time(MetricPhase2Seconds)
		var ok bool
		ok, cause = phase2(cores, plat, rec, prov)
		stop()
		sp2.End()
		return ok
	}
	if runPhase2() {
		return true, failCause{}
	}
	if cfg.NoLoadBalance {
		return false, cause
	}
	prevOverload := totalOverload(cores)
	for round := 0; round < cfg.MaxBalanceRounds; round++ {
		rec.Inc(MetricPhase3Rounds)
		sp3 := cfg.Span.Child(obs.StagePhase3)
		stop := rec.Time(MetricPhase3Seconds)
		moved := balancePhase3(cores, rec, prov)
		stop()
		sp3.End()
		if !moved {
			return false, cause // no migration possible: no benefit in balancing
		}
		if runPhase2() {
			return true, failCause{}
		}
		over := totalOverload(cores)
		if over >= prevOverload-schedEps {
			return false, cause // balancing no longer helps
		}
		prevOverload = over
	}
	return false, cause
}

// allocateEven is the NoResourceGrowth ablation: every core receives an
// equal share of the partitions regardless of demand.
func allocateEven(cores []*coreState, plat model.Platform, _ *metrics.Recorder, _ *provenance.Recorder) (bool, failCause) {
	cache := plat.C / len(cores)
	bw := plat.B / len(cores)
	if cache < plat.Cmin || bw < plat.Bmin {
		return false, failCause{cache: cache < plat.Cmin, bw: bw < plat.Bmin}
	}
	ok := true
	var cause failCause
	for _, cs := range cores {
		cs.cache, cs.bw = cache, bw
		cs.touch()
		if !schedulable(cs.util()) {
			ok = false
			cause = cause.or(coreFailCause(cs, plat))
		}
	}
	if ok {
		cause = failCause{}
	}
	return ok, cause
}

// allocatePhase2 distributes cache and BW partitions: every core starts at
// (Cmin, Bmin); while some core is unschedulable and spare partitions
// remain, the unschedulable core with the highest utilization reduction
// from one extra partition (cache or BW, whichever helps it more) receives
// that partition. It reports whether all cores became schedulable; on
// failure the cause classifies every still-unschedulable core.
func allocatePhase2(cores []*coreState, plat model.Platform, rec *metrics.Recorder, prov *provenance.Recorder) (bool, failCause) {
	for _, cs := range cores {
		cs.cache, cs.bw = plat.Cmin, plat.Bmin
		cs.touch()
	}
	spareCache := plat.C - plat.Cmin*len(cores)
	spareBW := plat.B - plat.Bmin*len(cores)
	if spareCache < 0 || spareBW < 0 {
		return false, failCause{cache: spareCache < 0, bw: spareBW < 0}
	}

	var attempts, grants int64
	if rec != nil {
		defer func() {
			rec.Add(MetricPhase2Attempts, attempts)
			rec.Add(MetricPhase2Grants, grants)
		}()
	}
	for {
		allOK := true
		bestCore, bestIsCache := -1, false
		bestGain := 0.0
		for i, cs := range cores {
			u := cs.util()
			if schedulable(u) {
				continue
			}
			allOK = false
			if spareCache > 0 && cs.cache < plat.C {
				attempts++
				if g := gain(u, cs.utilAt(cs.cache+1, cs.bw)); g > bestGain {
					bestGain, bestCore, bestIsCache = g, i, true
				}
			}
			if spareBW > 0 && cs.bw < plat.B {
				attempts++
				if g := gain(u, cs.utilAt(cs.cache, cs.bw+1)); g > bestGain {
					bestGain, bestCore, bestIsCache = g, i, false
				}
			}
		}
		if allOK {
			return true, failCause{}
		}
		if bestCore < 0 || bestGain <= schedEps {
			// No partition helps any unschedulable core: classify each of
			// them so the rejection names every binding resource.
			var cause failCause
			for _, cs := range cores {
				if !schedulable(cs.util()) {
					cause = cause.or(coreFailCause(cs, plat))
				}
			}
			return false, cause
		}
		grants++
		if prov.Enabled() {
			kind := provenance.Cache
			if !bestIsCache {
				kind = provenance.BW
			}
			cs := cores[bestCore]
			prov.Record(provenance.Decision{
				Stage: provenance.StagePhase2, Kind: provenance.KindGrant,
				Subject: fmt.Sprintf("core %d", bestCore), Target: string(kind),
				Cache: cs.cache, BW: cs.bw,
				Value: bestGain, Accepted: true,
				Reason: fmt.Sprintf("best utilization gain %.4g among unschedulable cores", bestGain),
			})
		}
		if bestIsCache {
			cores[bestCore].cache++
			spareCache--
		} else {
			cores[bestCore].bw++
			spareBW--
		}
		cores[bestCore].touch()
	}
}

// gain returns the utilization reduction achieved by an extra partition,
// treating a transition from an infeasible (+Inf) to a finite utilization
// as a very large gain so that such cores are prioritized.
func gain(old, new_ float64) float64 {
	if math.IsInf(old, 1) {
		if math.IsInf(new_, 1) {
			return 0
		}
		return 1e18 - new_
	}
	return old - new_
}

// balancePhase3 migrates one VCPU from each unschedulable core to the
// schedulable core that will have the smallest utilization after the
// migration. It reports whether at least one migration happened.
func balancePhase3(cores []*coreState, rec *metrics.Recorder, prov *provenance.Recorder) bool {
	var migrations int64
	var order []int // reused by every pickMigration call in this pass
	for si, src := range cores {
		for !schedulable(src.util()) {
			var vi int
			var dst *coreState
			vi, dst, order = pickMigration(cores, src, order)
			if vi < 0 {
				break // nowhere to move anything
			}
			v := src.vcpus[vi]
			src.vcpus = append(src.vcpus[:vi], src.vcpus[vi+1:]...)
			src.touch()
			dst.vcpus = append(dst.vcpus, v)
			dst.touch()
			migrations++
			if prov.Enabled() {
				di := coreIndexOf(cores, dst)
				prov.Record(provenance.Decision{
					Stage: provenance.StagePhase3, Kind: provenance.KindMigrate,
					Subject: v.ID, Target: fmt.Sprintf("core %d -> core %d", si, di),
					Cache: dst.cache, BW: dst.bw,
					Value: dst.util(), Accepted: true,
					Reason: "migrated off an overloaded core to the least-utilized schedulable core",
				})
			}
		}
	}
	rec.Add(MetricPhase3Migrations, migrations)
	return migrations > 0
}

// coreIndexOf returns the index of cs in cores (-1 if absent); only used
// on the provenance path, where readable core names beat pointer identity.
func coreIndexOf(cores []*coreState, cs *coreState) int {
	for i, c := range cores {
		if c == cs {
			return i
		}
	}
	return -1
}

// pickMigration chooses which VCPU of src to migrate and its destination:
// the largest-bandwidth VCPU on src, placed onto the schedulable core
// whose post-migration utilization is smallest. It returns (-1, nil) when
// no schedulable destination can accept any VCPU while staying
// schedulable. The scratch slice is reused for the candidate ordering and
// returned so the caller can thread it through repeated calls.
func pickMigration(cores []*coreState, src *coreState, scratch []int) (int, *coreState, []int) {
	order := scratch[:0]
	for i := range src.vcpus {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return src.vcpus[order[a]].RefBandwidth() > src.vcpus[order[b]].RefBandwidth()
	})
	for _, vi := range order {
		v := src.vcpus[vi]
		var best *coreState
		bestUtil := math.Inf(1)
		for _, dst := range cores {
			if dst == src || !schedulable(dst.util()) {
				continue
			}
			after := dst.util() + v.Bandwidth(dst.cache, dst.bw)
			if schedulable(after) && after < bestUtil {
				best, bestUtil = dst, after
			}
		}
		if best != nil {
			return vi, best, order
		}
	}
	return -1, nil, order
}

// totalOverload sums each core's utilization excess over 1, the progress
// metric for the balancing loop. Infinite utilizations are clamped so the
// metric stays comparable.
func totalOverload(cores []*coreState) float64 {
	var over float64
	for _, cs := range cores {
		u := cs.util()
		if math.IsInf(u, 1) {
			u = 1e18
		}
		if u > 1 {
			over += u - 1
		}
	}
	return over
}

// buildAllocation freezes the search state into a model.Allocation.
func buildAllocation(cores []*coreState, plat model.Platform) *model.Allocation {
	out := &model.Allocation{Platform: plat, Schedulable: true}
	for i, cs := range cores {
		out.Cores = append(out.Cores, &model.CoreAlloc{
			Core:  i,
			Cache: cs.cache,
			BW:    cs.bw,
			VCPUs: append([]*model.VCPU(nil), cs.vcpus...),
		})
	}
	return out
}
