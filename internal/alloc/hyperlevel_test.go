package alloc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

// constVCPU builds a resource-insensitive VCPU with the given bandwidth.
func constVCPU(id string, idx int, p model.Platform, period, budget float64) *model.VCPU {
	return &model.VCPU{ID: id, VM: "vm", Index: idx, Period: period,
		Budget: model.ConstTable(p, budget)}
}

// sensitiveVCPU builds a VCPU whose budget shrinks with cache and BW, from
// a benchmark profile.
func sensitiveVCPU(id string, idx int, p model.Platform, bmName string, period, refBudget float64) *model.VCPU {
	bm, err := parsec.ByName(bmName)
	if err != nil {
		panic(err)
	}
	return &model.VCPU{ID: id, VM: "vm", Index: idx, Period: period,
		Budget: bm.WCETTable(p, refBudget)}
}

func TestHyperLevelEmpty(t *testing.T) {
	a, err := HyperLevel(nil, model.PlatformA, HyperConfig{}, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedulable || len(a.Cores) != 0 {
		t.Errorf("empty input should be trivially schedulable with no cores: %+v", a)
	}
}

func TestHyperLevelSingleVCPU(t *testing.T) {
	p := model.PlatformA
	v := constVCPU("v1", 0, p, 100, 50)
	a, err := HyperLevel([]*model.VCPU{v}, p, HyperConfig{}, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cores) != 1 {
		t.Fatalf("used %d cores, want 1", len(a.Cores))
	}
	if err := a.Validate(nil); err != nil {
		t.Errorf("allocation invalid: %v", err)
	}
}

func TestHyperLevelUsesMinimalCores(t *testing.T) {
	// Two VCPUs of bandwidth 0.4 fit one core; the m-loop must find m=1.
	p := model.PlatformA
	vs := []*model.VCPU{
		constVCPU("v1", 0, p, 100, 40),
		constVCPU("v2", 1, p, 100, 40),
	}
	a, err := HyperLevel(vs, p, HyperConfig{}, rngutil.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cores) != 1 {
		t.Errorf("used %d cores, want 1 (total bandwidth 0.8)", len(a.Cores))
	}
}

func TestHyperLevelSpreadsWhenNeeded(t *testing.T) {
	p := model.PlatformA
	vs := []*model.VCPU{
		constVCPU("v1", 0, p, 100, 70),
		constVCPU("v2", 1, p, 100, 70),
		constVCPU("v3", 2, p, 100, 70),
	}
	a, err := HyperLevel(vs, p, HyperConfig{}, rngutil.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cores) != 3 {
		t.Errorf("used %d cores, want 3 (bandwidth 0.7 each)", len(a.Cores))
	}
	if err := a.Validate(nil); err != nil {
		t.Errorf("allocation invalid: %v", err)
	}
}

func TestHyperLevelUnschedulable(t *testing.T) {
	p := model.PlatformA
	var vs []*model.VCPU
	for i := 0; i < 5; i++ { // 5 x 0.9 > 4 cores
		vs = append(vs, constVCPU("v", i, p, 100, 90))
	}
	_, err := HyperLevel(vs, p, HyperConfig{}, rngutil.New(4))
	if !errors.Is(err, model.ErrNotSchedulable) {
		t.Errorf("expected ErrNotSchedulable, got %v", err)
	}
}

func TestHyperLevelRejectsOverloadedVCPU(t *testing.T) {
	p := model.PlatformA
	v := constVCPU("v1", 0, p, 100, 120) // bandwidth 1.2 even at full allocation
	_, err := HyperLevel([]*model.VCPU{v}, p, HyperConfig{}, rngutil.New(5))
	if !errors.Is(err, model.ErrNotSchedulable) {
		t.Errorf("expected ErrNotSchedulable, got %v", err)
	}
}

func TestHyperLevelGrowsResourcesForSensitiveVCPUs(t *testing.T) {
	// A memory-bound VCPU that is unschedulable at (Cmin, Bmin) but
	// schedulable with more partitions: Phase 2 must grant them.
	p := model.PlatformA
	v := sensitiveVCPU("v1", 0, p, "streamcluster", 100, 60)
	// At full allocation bandwidth = 0.6; at (Cmin, Bmin) the slowdown
	// makes it > 1.
	if v.Bandwidth(p.Cmin, p.Bmin) <= 1 {
		t.Skip("profile not steep enough for this scenario")
	}
	a, err := HyperLevel([]*model.VCPU{v}, p, HyperConfig{}, rngutil.New(6))
	if err != nil {
		t.Fatal(err)
	}
	core := a.Cores[0]
	if core.Cache == p.Cmin && core.BW == p.Bmin {
		t.Error("Phase 2 did not grant partitions to an unschedulable core")
	}
	if u := core.Utilization(); u > 1+1e-9 {
		t.Errorf("core still unschedulable: utilization %v", u)
	}
}

func TestHyperLevelRespectsPartitionTotals(t *testing.T) {
	p := model.PlatformC // only 12 partitions
	var vs []*model.VCPU
	names := []string{"streamcluster", "canneal", "facesim", "vips"}
	for i, n := range names {
		vs = append(vs, sensitiveVCPU(n, i, p, n, 100, 35))
	}
	a, err := HyperLevel(vs, p, HyperConfig{}, rngutil.New(7))
	if err != nil {
		if errors.Is(err, model.ErrNotSchedulable) {
			return // acceptable: resources genuinely insufficient
		}
		t.Fatal(err)
	}
	if a.UsedCache() > p.C || a.UsedBW() > p.B {
		t.Errorf("partition totals %d/%d exceed platform %d/%d",
			a.UsedCache(), a.UsedBW(), p.C, p.B)
	}
	if err := a.Validate(nil); err != nil {
		t.Errorf("allocation invalid: %v", err)
	}
}

func TestHyperLevelAppliesOverheadInflation(t *testing.T) {
	p := model.PlatformA
	// Bandwidth 0.5 each; with heavy inflation they cannot share a core.
	mk := func(i int) *model.VCPU { return constVCPU("v", i, p, 100, 50) }
	plain, err := HyperLevel([]*model.VCPU{mk(0), mk(1)}, p, HyperConfig{}, rngutil.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Cores) != 1 {
		t.Fatalf("without inflation want 1 core, got %d", len(plain.Cores))
	}
	inflated, err := HyperLevel([]*model.VCPU{mk(0), mk(1)}, p,
		HyperConfig{Overheads: csa.Overheads{VCPUPreemption: 20}}, rngutil.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(inflated.Cores) < 2 {
		t.Errorf("with 20ms inflation per period want 2 cores, got %d", len(inflated.Cores))
	}
}

func TestGainHandlesInfinities(t *testing.T) {
	if g := gain(math.Inf(1), math.Inf(1)); g != 0 {
		t.Errorf("gain(Inf, Inf) = %v, want 0", g)
	}
	if g := gain(math.Inf(1), 0.5); g < 1e17 {
		t.Errorf("gain(Inf, finite) = %v, want very large", g)
	}
	if g := gain(1.5, 1.2); math.Abs(g-0.3) > 1e-12 {
		t.Errorf("gain(1.5, 1.2) = %v, want 0.3", g)
	}
}

func TestHyperLevelDeterministic(t *testing.T) {
	p := model.PlatformA
	mk := func() []*model.VCPU {
		return []*model.VCPU{
			sensitiveVCPU("a", 0, p, "streamcluster", 100, 30),
			sensitiveVCPU("b", 1, p, "swaptions", 200, 60),
			sensitiveVCPU("c", 2, p, "dedup", 400, 100),
		}
	}
	a1, err1 := HyperLevel(mk(), p, HyperConfig{}, rngutil.New(99))
	a2, err2 := HyperLevel(mk(), p, HyperConfig{}, rngutil.New(99))
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("determinism broken: %v vs %v", err1, err2)
	}
	if err1 != nil {
		return
	}
	if len(a1.Cores) != len(a2.Cores) {
		t.Fatalf("same seed used %d vs %d cores", len(a1.Cores), len(a2.Cores))
	}
	for i := range a1.Cores {
		if a1.Cores[i].Cache != a2.Cores[i].Cache || a1.Cores[i].BW != a2.Cores[i].BW {
			t.Errorf("core %d partition allocation differs between identical runs", i)
		}
	}
}

func TestHyperLevelGuaranteedPackingProperty(t *testing.T) {
	// Sufficient condition: resource-insensitive VCPUs each of bandwidth
	// at most 0.4 with total at most 0.6*M always pack (worst-fit
	// balancing keeps every core within avg + max <= 1.0). The heuristic
	// must never fail such instances.
	f := func(raw []uint8) bool {
		p := model.PlatformA
		var vs []*model.VCPU
		var total float64
		for i, r := range raw {
			bwv := 0.05 + float64(r%36)/100 // in [0.05, 0.40]
			if total+bwv > 0.6*float64(p.M) {
				break
			}
			total += bwv
			vs = append(vs, constVCPU("v", i, p, 100, bwv*100))
		}
		if len(vs) == 0 {
			return true
		}
		_, err := HyperLevel(vs, p, HyperConfig{}, rngutil.New(1))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHyperLevelMonotoneInResources(t *testing.T) {
	// A VCPU set schedulable on Platform C (12 partitions) must remain so
	// on Platform A (20 partitions, same cores).
	pc, pa := model.PlatformC, model.PlatformA
	mkFor := func(p model.Platform) []*model.VCPU {
		return []*model.VCPU{
			sensitiveVCPU("a", 0, p, "ferret", 100, 30),
			sensitiveVCPU("b", 1, p, "vips", 200, 70),
			sensitiveVCPU("c", 2, p, "x264", 400, 120),
		}
	}
	_, errC := HyperLevel(mkFor(pc), pc, HyperConfig{}, rngutil.New(11))
	if errC != nil {
		t.Skipf("base case unschedulable: %v", errC)
	}
	if _, errA := HyperLevel(mkFor(pa), pa, HyperConfig{}, rngutil.New(11)); errA != nil {
		t.Errorf("schedulable on C but not on richer A: %v", errA)
	}
}
