package alloc

import (
	"errors"
	"fmt"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

// baseAllocation builds a lightly loaded schedulable allocation to admit
// into.
func baseAllocation(t *testing.T) (*model.Allocation, []*model.Task) {
	t.Helper()
	vm := mkVM("vm0",
		model.SimpleTask("t1", model.PlatformA, 100, 20),
		model.SimpleTask("t2", model.PlatformA, 200, 40),
	)
	sys := &model.System{Platform: model.PlatformA, VMs: []*model.VM{vm}}
	h := &Heuristic{Mode: Flattening}
	a, err := h.Allocate(sys, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return a, sys.Tasks()
}

func TestAdmitPlacesNewVM(t *testing.T) {
	a, baseTasks := baseAllocation(t)
	newVM := mkVM("vm1",
		model.SimpleTask("n1", model.PlatformA, 100, 15),
		model.SimpleTask("n2", model.PlatformA, 400, 60),
	)
	out, err := Admit(a, newVM, Flattening, rngutil.New(2))
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]*model.Task(nil), baseTasks...), newVM.Tasks...)
	if err := out.Validate(all); err != nil {
		t.Fatalf("admitted allocation invalid: %v", err)
	}
	// The original allocation is untouched.
	if err := a.Validate(baseTasks); err != nil {
		t.Fatalf("original allocation mutated: %v", err)
	}
}

func TestAdmitDoesNotMoveExistingVCPUs(t *testing.T) {
	a, _ := baseAllocation(t)
	before := map[string]int{}
	for _, core := range a.Cores {
		for _, v := range core.VCPUs {
			before[v.ID] = core.Core
		}
	}
	newVM := mkVM("vm1", model.SimpleTask("n1", model.PlatformA, 100, 30))
	out, err := Admit(a, newVM, Flattening, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range out.Cores {
		for _, v := range core.VCPUs {
			if want, ok := before[v.ID]; ok && want != core.Core {
				t.Errorf("existing VCPU %s moved from core %d to %d", v.ID, want, core.Core)
			}
		}
	}
	// Partition counts of pre-existing cores never shrink.
	for _, oldCore := range a.Cores {
		for _, newCore := range out.Cores {
			if newCore.Core == oldCore.Core {
				if newCore.Cache < oldCore.Cache || newCore.BW < oldCore.BW {
					t.Errorf("core %d partitions shrank: (%d,%d) -> (%d,%d)",
						oldCore.Core, oldCore.Cache, oldCore.BW, newCore.Cache, newCore.BW)
				}
			}
		}
	}
}

func TestAdmitGrowsResourcesForHungryVM(t *testing.T) {
	a, _ := baseAllocation(t)
	bm, err := parsec.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	hungry := &model.Task{ID: "hungry", VM: "vm1", Period: 100,
		WCET: bm.WCETTable(model.PlatformA, 55), Benchmark: "streamcluster"}
	newVM := &model.VM{ID: "vm1", Tasks: []*model.Task{hungry}}
	out, err := Admit(a, newVM, Flattening, nil)
	if err != nil {
		t.Fatalf("hungry VM not admitted despite ample spare partitions: %v", err)
	}
	// The host core must have been granted more than the baseline
	// partitions for the memory-bound task to fit (bandwidth at (2,1) is
	// far above 1).
	for _, core := range out.Cores {
		for _, v := range core.VCPUs {
			if len(v.Tasks) == 1 && v.Tasks[0].ID == "hungry" {
				if core.Cache == model.PlatformA.Cmin && core.BW == model.PlatformA.Bmin {
					t.Error("hungry task admitted without granting partitions")
				}
			}
		}
	}
}

func TestAdmitRejectsOverload(t *testing.T) {
	a, _ := baseAllocation(t)
	var tasks []*model.Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, model.SimpleTask(string(rune('a'+i)), model.PlatformA, 100, 90))
	}
	newVM := mkVM("vm1", tasks...)
	if _, err := Admit(a, newVM, Flattening, nil); !errors.Is(err, model.ErrNotSchedulable) {
		t.Errorf("expected ErrNotSchedulable, got %v", err)
	}
	// And the original remains valid.
	if !a.Schedulable {
		t.Error("original allocation corrupted by rejected admission")
	}
}

func TestAdmitRequiresSchedulableBase(t *testing.T) {
	bad := &model.Allocation{Platform: model.PlatformA}
	newVM := mkVM("vm1", model.SimpleTask("n1", model.PlatformA, 100, 10))
	if _, err := Admit(bad, newVM, Flattening, nil); err == nil {
		t.Error("unschedulable base accepted")
	}
	if _, err := Admit(nil, newVM, Flattening, nil); err == nil {
		t.Error("nil base accepted")
	}
}

func TestReleaseRemovesVM(t *testing.T) {
	a, baseTasks := baseAllocation(t)
	newVM := mkVM("vm1", model.SimpleTask("n1", model.PlatformA, 100, 30))
	grown, err := Admit(a, newVM, Flattening, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Release(grown, "vm1")
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(baseTasks); err != nil {
		t.Fatalf("post-release allocation invalid: %v", err)
	}
	for _, v := range back.VCPUs() {
		if v.VM == "vm1" {
			t.Error("released VM's VCPU still present")
		}
	}
	// Double release errors.
	if _, err := Release(back, "vm1"); err == nil {
		t.Error("double release accepted")
	}
	if _, err := Release(nil, "x"); err == nil {
		t.Error("nil allocation accepted")
	}
}

func TestAdmitReleaseChurn(t *testing.T) {
	// Admit/release churn: the allocation stays valid and capacity is
	// reusable — a VM admitted, released, and re-admitted always fits.
	a, baseTasks := baseAllocation(t)
	vmSpec := func() *model.VM {
		return mkVM("churn", model.SimpleTask("c1", model.PlatformA, 100, 40))
	}
	for round := 0; round < 5; round++ {
		vm := vmSpec()
		grown, err := Admit(a, vm, Flattening, rngutil.New(int64(round)))
		if err != nil {
			t.Fatalf("round %d: admission failed: %v", round, err)
		}
		all := append(append([]*model.Task(nil), baseTasks...), vm.Tasks...)
		if err := grown.Validate(all); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		a, err = Release(grown, "churn")
		if err != nil {
			t.Fatalf("round %d: release failed: %v", round, err)
		}
	}
}

func TestAdmitPropertyAlwaysValid(t *testing.T) {
	// Property: for random VM streams, every successful admission yields
	// an allocation satisfying all structural invariants, and every
	// rejection leaves the previous allocation intact.
	base, baseTasks := baseAllocation(t)
	rng := rngutil.New(12345)
	a := base
	all := append([]*model.Task(nil), baseTasks...)
	for i := 0; i < 30; i++ {
		bm := parsec.All[rng.Intn(len(parsec.All))]
		period := 100.0 * float64(int(1)<<uint(rng.Intn(3)))
		ref := period * rng.Uniform(0.05, 0.5)
		task := &model.Task{
			ID: fmt.Sprintf("p%d", i), VM: fmt.Sprintf("pvm%d", i),
			Period: period, WCET: bm.WCETTable(model.PlatformA, ref), Benchmark: bm.Name,
		}
		vm := &model.VM{ID: task.VM, Tasks: []*model.Task{task}}
		next, err := Admit(a, vm, Flattening, rngutil.New(int64(i)))
		if err != nil {
			continue
		}
		all = append(all, task)
		if err := next.Validate(all); err != nil {
			t.Fatalf("admission %d produced invalid allocation: %v", i, err)
		}
		a = next
	}
}

func TestAdmitSequential(t *testing.T) {
	// Admitting several VMs one after another keeps every intermediate
	// allocation valid; eventually admission fails cleanly.
	a, baseTasks := baseAllocation(t)
	all := append([]*model.Task(nil), baseTasks...)
	admitted := 0
	for i := 0; i < 12; i++ {
		vm := mkVM(string(rune('A'+i)),
			model.SimpleTask(string(rune('A'+i))+"-x", model.PlatformA, 100, 25))
		next, err := Admit(a, vm, Flattening, rngutil.New(int64(i)))
		if errors.Is(err, model.ErrNotSchedulable) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, vm.Tasks...)
		if err := next.Validate(all); err != nil {
			t.Fatalf("after admission %d: %v", i, err)
		}
		a = next
		admitted++
	}
	// 4 cores, each admitted task has utilization 0.25 at full resources;
	// around a dozen should fit minus the base load and partition limits.
	if admitted < 6 {
		t.Errorf("only %d VMs admitted; expected several on a mostly idle platform", admitted)
	}
}
