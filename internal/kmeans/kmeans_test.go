package kmeans

import (
	"testing"
	"testing/quick"

	"vc2m/internal/rngutil"
)

func TestEmptyInput(t *testing.T) {
	r := Cluster(nil, 3, rngutil.New(1))
	if len(r.Assign) != 0 || r.K != 0 {
		t.Errorf("empty input should yield empty result, got %+v", r)
	}
}

func TestPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cluster with k=0 did not panic")
		}
	}()
	Cluster([][]float64{{1}}, 0, rngutil.New(1))
}

func TestPanicsOnMixedDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cluster with mixed dimensions did not panic")
		}
	}()
	Cluster([][]float64{{1, 2}, {1}}, 1, rngutil.New(1))
}

func TestSinglePoint(t *testing.T) {
	r := Cluster([][]float64{{3, 4}}, 5, rngutil.New(1))
	if r.K != 1 || r.Assign[0] != 0 {
		t.Errorf("single point: got %+v", r)
	}
}

func TestTwoWellSeparatedClusters(t *testing.T) {
	pts := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1}, {10.1, 10.1},
	}
	r := Cluster(pts, 2, rngutil.New(42))
	if r.K != 2 {
		t.Fatalf("K = %d, want 2", r.K)
	}
	// All of the first four must share a label, all of the last four the other.
	for i := 1; i < 4; i++ {
		if r.Assign[i] != r.Assign[0] {
			t.Errorf("point %d not clustered with point 0: %v", i, r.Assign)
		}
	}
	for i := 5; i < 8; i++ {
		if r.Assign[i] != r.Assign[4] {
			t.Errorf("point %d not clustered with point 4: %v", i, r.Assign)
		}
	}
	if r.Assign[0] == r.Assign[4] {
		t.Errorf("separated groups merged: %v", r.Assign)
	}
}

func TestThreeClustersInSlowdownSpace(t *testing.T) {
	// Mimic slowdown vectors: flat (compute-bound), steep (memory-bound),
	// and intermediate profiles.
	flat := []float64{1.05, 1.02, 1.01, 1.0}
	steep := []float64{4.0, 2.5, 1.6, 1.0}
	mid := []float64{2.0, 1.6, 1.3, 1.0}
	var pts [][]float64
	for i := 0; i < 5; i++ {
		pts = append(pts, jitter(flat, float64(i)*0.001))
		pts = append(pts, jitter(steep, float64(i)*0.001))
		pts = append(pts, jitter(mid, float64(i)*0.001))
	}
	r := Cluster(pts, 3, rngutil.New(7))
	if r.K != 3 {
		t.Fatalf("K = %d, want 3", r.K)
	}
	// Points of the same family (index mod 3) must share a cluster.
	for fam := 0; fam < 3; fam++ {
		want := r.Assign[fam]
		for i := fam; i < len(pts); i += 3 {
			if r.Assign[i] != want {
				t.Errorf("family %d split across clusters: %v", fam, r.Assign)
			}
		}
	}
}

func jitter(p []float64, d float64) []float64 {
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v + d
	}
	return out
}

func TestDeterministicUnderSeed(t *testing.T) {
	pts := [][]float64{{1}, {2}, {9}, {10}, {5}, {6}}
	a := Cluster(pts, 3, rngutil.New(123))
	b := Cluster(pts, 3, rngutil.New(123))
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed produced different assignments: %v vs %v", a.Assign, b.Assign)
		}
	}
}

func TestKLargerThanN(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	r := Cluster(pts, 10, rngutil.New(5))
	if r.K > 3 {
		t.Errorf("K = %d exceeds number of points", r.K)
	}
	for _, a := range r.Assign {
		if a < 0 || a >= r.K {
			t.Errorf("assignment %d out of range [0,%d)", a, r.K)
		}
	}
}

func TestIdenticalPoints(t *testing.T) {
	pts := [][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}}
	r := Cluster(pts, 3, rngutil.New(9))
	for _, a := range r.Assign {
		if a < 0 || a >= r.K {
			t.Errorf("invalid assignment for identical points: %+v", r)
		}
	}
	if Inertia(pts, r) != 0 {
		t.Errorf("identical points should have zero inertia, got %v", Inertia(pts, r))
	}
}

func TestAssignmentsAlwaysValid(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([][]float64, len(raw))
		for i, v := range raw {
			pts[i] = []float64{float64(v), float64(v % 7)}
		}
		k := int(kRaw%8) + 1
		r := Cluster(pts, k, rngutil.New(77))
		if len(r.Assign) != len(pts) {
			return false
		}
		if r.K != len(r.Centers) {
			return false
		}
		used := make([]bool, r.K)
		for _, a := range r.Assign {
			if a < 0 || a >= r.K {
				return false
			}
			used[a] = true
		}
		for _, u := range used {
			if !u { // compact() must drop empty clusters
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}, {20}, {21}, {22}}
	r1 := Cluster(pts, 1, rngutil.New(3))
	r3 := Cluster(pts, 3, rngutil.New(3))
	if Inertia(pts, r3) >= Inertia(pts, r1) {
		t.Errorf("inertia with k=3 (%v) not below k=1 (%v)",
			Inertia(pts, r3), Inertia(pts, r1))
	}
}
