package kmeans

import (
	"testing"

	"vc2m/internal/rngutil"
)

func BenchmarkCluster(b *testing.B) {
	// 100 points in the slowdown-vector dimensionality of Platform A
	// (19 x 20 = 380), 3 clusters — the hypervisor-level clustering load.
	rng := rngutil.New(1)
	points := make([][]float64, 100)
	for i := range points {
		p := make([]float64, 380)
		base := 1 + rng.Float64()*3
		for d := range p {
			p[d] = base * (1 + rng.Float64()*0.1)
		}
		points[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(points, 3, rngutil.New(int64(i)))
	}
}
