// Package kmeans implements Lloyd's algorithm with kmeans++ seeding for
// clustering slowdown vectors.
//
// Both allocation levels in vC2M group entities (tasks at the VM level,
// VCPUs at the hypervisor level) with similar sensitivity to cache and
// memory-bandwidth resources, so that the partitions granted to a VCPU or a
// core benefit everything placed on it. A slowdown vector is a point in
// R^((C-Cmin+1)*(B-Bmin+1)); Euclidean distance between two such points is a
// natural similarity measure because entries are normalized slowdowns
// (s(C,B) = 1 for everything).
//
// The implementation is fully deterministic under a caller-supplied RNG.
package kmeans

import (
	"math"

	"vc2m/internal/rngutil"
)

// Result holds the outcome of a clustering run.
type Result struct {
	// Assign maps each input point index to a cluster index in [0, K).
	Assign []int
	// Centers holds the final cluster centroids.
	Centers [][]float64
	// K is the number of non-empty clusters actually produced (always equal
	// to len(Centers); empty clusters are dropped and indices compacted).
	K int
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
}

// maxIterations bounds the Lloyd loop; the clustering problems in this
// repository (tens to hundreds of points, k <= 8) converge in far fewer.
const maxIterations = 100

// Cluster partitions points into at most k clusters and returns the
// assignment. It panics if k <= 0. If there are fewer distinct points than
// k, fewer clusters are returned. An empty point set yields an empty result.
// All points must have the same dimension; Cluster panics otherwise.
func Cluster(points [][]float64, k int, rng *rngutil.RNG) Result {
	if k <= 0 {
		panic("kmeans: k must be positive")
	}
	n := len(points)
	if n == 0 {
		return Result{Assign: []int{}, Centers: [][]float64{}}
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			panic("kmeans: points with inconsistent dimensions")
		}
	}
	if k > n {
		k = n
	}

	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}

	iter := 0
	for ; iter < maxIterations; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			if assign[i] != prev[i] {
				changed = true
			}
		}
		if !changed {
			break
		}
		copy(prev, assign)

		// Recompute centroids.
		counts := make([]int, len(centers))
		for c := range centers {
			for d := 0; d < dim; d++ {
				centers[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// current center, a standard fix that keeps k stable when
				// the data supports it.
				centers[c] = clonePoint(points[farthestPoint(points, centers, assign)])
				continue
			}
			for d := 0; d < dim; d++ {
				centers[c][d] /= float64(counts[c])
			}
		}
	}

	return compact(assign, centers, iter)
}

// seedPlusPlus picks k initial centers with the kmeans++ strategy: the first
// uniformly, each subsequent one with probability proportional to its
// squared distance from the nearest chosen center.
func seedPlusPlus(points [][]float64, k int, rng *rngutil.RNG) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	centers = append(centers, clonePoint(points[rng.Intn(n)]))
	d2 := make([]float64, n)
	for len(centers) < k {
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
		}
		centers = append(centers, clonePoint(points[rng.Choice(d2)]))
	}
	return centers
}

// farthestPoint returns the index of the point with the greatest distance to
// its assigned center.
func farthestPoint(points [][]float64, centers [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		d := sqDist(p, centers[assign[i]])
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// compact removes empty clusters and renumbers assignments densely.
func compact(assign []int, centers [][]float64, iters int) Result {
	used := make([]bool, len(centers))
	for _, a := range assign {
		used[a] = true
	}
	remap := make([]int, len(centers))
	var kept [][]float64
	for c := range centers {
		if used[c] {
			remap[c] = len(kept)
			kept = append(kept, centers[c])
		} else {
			remap[c] = -1
		}
	}
	out := make([]int, len(assign))
	for i, a := range assign {
		out[i] = remap[a]
	}
	return Result{Assign: out, Centers: kept, K: len(kept), Iterations: iters}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clonePoint(p []float64) []float64 {
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// Inertia returns the total within-cluster sum of squared distances for a
// result, a standard clustering-quality metric used in tests.
func Inertia(points [][]float64, r Result) float64 {
	var total float64
	for i, p := range points {
		total += sqDist(p, r.Centers[r.Assign[i]])
	}
	return total
}
