package workload

import (
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Platform: model.PlatformA, TargetRefUtil: 1.5, Dist: Uniform}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, rngutil.New(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSuiteCoverageAcrossLargeTaskset(t *testing.T) {
	// A large generated population should draw on every benchmark profile.
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		sys, err := Generate(Config{
			Platform: model.PlatformA, TargetRefUtil: 2.0, Dist: Uniform,
		}, rngutil.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range sys.Tasks() {
			seen[task.Benchmark] = true
		}
	}
	for _, name := range parsec.Names() {
		if !seen[name] {
			t.Errorf("benchmark %s never drawn across 20 tasksets", name)
		}
	}
}
