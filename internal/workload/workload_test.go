package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

func gen(t *testing.T, cfg Config, seed int64) *model.System {
	t.Helper()
	sys, err := Generate(cfg, rngutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDistributionString(t *testing.T) {
	cases := map[Distribution]string{
		Uniform:          "uniform",
		BimodalLight:     "bimodal-light",
		BimodalMedium:    "bimodal-medium",
		BimodalHeavy:     "bimodal-heavy",
		Distribution(99): "unknown",
	}
	for d, want := range cases { //vc2m:ordered test-case map; order only affects error interleaving
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for _, name := range []string{"uniform", "light", "medium", "heavy",
		"bimodal-light", "bimodal-medium", "bimodal-heavy"} {
		if _, err := ParseDistribution(name); err != nil {
			t.Errorf("ParseDistribution(%q): %v", name, err)
		}
	}
	if _, err := ParseDistribution("gaussian"); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestGenerateValidSystem(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 1.0, Dist: Uniform}, 1)
	if err := sys.Validate(); err != nil {
		t.Fatalf("generated system invalid: %v", err)
	}
	if len(sys.Tasks()) == 0 {
		t.Fatal("no tasks generated")
	}
}

func TestGenerateReachesTarget(t *testing.T) {
	for _, target := range []float64{0.1, 0.5, 1.0, 2.0} {
		sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: target, Dist: Uniform}, 7)
		got := sys.RefUtil()
		if got < target {
			t.Errorf("target %v: total reference utilization %v below target", target, got)
		}
		// One task overshoot at most: each task's reference utilization is
		// below its drawn utilization (s^max >= 1), itself at most 0.9.
		if got > target+0.9 {
			t.Errorf("target %v: total reference utilization %v overshoots", target, got)
		}
	}
}

func TestGeneratePeriodsHarmonicAndInRange(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 2.0, Dist: Uniform}, 11)
	var periods []float64
	for _, task := range sys.Tasks() {
		if task.Period < 100-1e-9 || task.Period > 1100+1e-9 {
			t.Errorf("task %s period %v outside [100, 1100]", task.ID, task.Period)
		}
		periods = append(periods, task.Period)
	}
	if !csa.HarmonicPeriods(periods) {
		t.Error("generated periods are not harmonic")
	}
}

func TestGenerateUtilizationsMatchDistribution(t *testing.T) {
	// The drawn utilization is e^max / p; reconstruct it and check range.
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 5.0, Dist: Uniform}, 13)
	for _, task := range sys.Tasks() {
		bm, err := parsec.ByName(task.Benchmark)
		if err != nil {
			t.Fatalf("task %s has unknown benchmark: %v", task.ID, err)
		}
		uMax := task.RefWCET() * bm.MaxSlowdown(model.PlatformA) / task.Period
		if uMax < 0.1-1e-9 || uMax > 0.4+1e-9 {
			t.Errorf("task %s drawn utilization %v outside [0.1, 0.4]", task.ID, uMax)
		}
	}
}

func TestGenerateBimodalHeavyHasHeavyTasks(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 5.0, Dist: BimodalHeavy}, 17)
	heavy := 0
	for _, task := range sys.Tasks() {
		bm, _ := parsec.ByName(task.Benchmark)
		uMax := task.RefWCET() * bm.MaxSlowdown(model.PlatformA) / task.Period
		if uMax >= 0.5 {
			heavy++
		}
	}
	if heavy == 0 {
		t.Error("bimodal-heavy generated no heavy tasks")
	}
}

func TestGenerateWCETTablesMonotone(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformC, TargetRefUtil: 1.0, Dist: Uniform}, 19)
	for _, task := range sys.Tasks() {
		if err := task.WCET.CheckMonotone(); err != nil {
			t.Errorf("task %s: %v", task.ID, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Platform: model.PlatformA, TargetRefUtil: 1.0, Dist: Uniform}
	a := gen(t, cfg, 42)
	b := gen(t, cfg, 42)
	ta, tb := a.Tasks(), b.Tasks()
	if len(ta) != len(tb) {
		t.Fatalf("same seed produced %d vs %d tasks", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i].Period != tb[i].Period || ta[i].RefWCET() != tb[i].RefWCET() ||
			ta[i].Benchmark != tb[i].Benchmark {
			t.Fatalf("same seed diverged at task %d", i)
		}
	}
}

func TestGenerateVMSpread(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 3.0, Dist: Uniform, NumVMs: 3}, 23)
	if len(sys.VMs) != 3 {
		t.Fatalf("got %d VMs, want 3", len(sys.VMs))
	}
	// Round-robin keeps VM sizes within one task of each other.
	min, max := len(sys.VMs[0].Tasks), len(sys.VMs[0].Tasks)
	for _, vm := range sys.VMs {
		if n := len(vm.Tasks); n < min {
			min = n
		} else if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("VM task counts spread %d..%d, want round-robin balance", min, max)
	}
}

func TestGenerateTinyTargetDropsEmptyVMs(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 0.01, Dist: Uniform, NumVMs: 8}, 29)
	for _, vm := range sys.VMs {
		if len(vm.Tasks) == 0 {
			t.Error("empty VM retained")
		}
	}
	if len(sys.Tasks()) == 0 {
		t.Error("tiny target should still produce at least one task")
	}
}

func TestGenerateBenchmarkFilter(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 1.0, Dist: Uniform,
		Benchmarks: []string{"swaptions"}}, 31)
	for _, task := range sys.Tasks() {
		if task.Benchmark != "swaptions" {
			t.Errorf("task %s uses %q, want swaptions only", task.ID, task.Benchmark)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rngutil.New(1)
	if _, err := Generate(Config{Platform: model.PlatformA, TargetRefUtil: 0}, rng); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Generate(Config{Platform: model.Platform{}, TargetRefUtil: 1}, rng); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := Generate(Config{Platform: model.PlatformA, TargetRefUtil: 1,
		Benchmarks: []string{"nope"}}, rng); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGenerateMaxTasksCap(t *testing.T) {
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 1e9, Dist: Uniform, MaxTasks: 50}, 37)
	if got := len(sys.Tasks()); got != 50 {
		t.Errorf("MaxTasks cap produced %d tasks, want 50", got)
	}
}

func TestGenerateWithTraceProfiles(t *testing.T) {
	sys := gen(t, Config{
		Platform:         model.PlatformA,
		TargetRefUtil:    0.5,
		Dist:             Uniform,
		UseTraceProfiles: true,
		TraceOps:         5000,
	}, 43)
	if err := sys.Validate(); err != nil {
		t.Fatalf("trace-profiled system invalid: %v", err)
	}
	// Trace-profiled tasks still have monotone tables and reference
	// utilization consistent with the target.
	for _, task := range sys.Tasks() {
		if err := task.WCET.CheckMonotone(); err != nil {
			t.Errorf("task %s: %v", task.ID, err)
		}
	}
	if sys.RefUtil() < 0.5 {
		t.Errorf("utilization %v below target", sys.RefUtil())
	}
}

func TestReferenceUtilBelowDrawnUtil(t *testing.T) {
	// s^max >= 1 implies reference utilization <= drawn utilization, so a
	// taskset's reference utilization understates its worst-case load —
	// exactly the property the baseline suffers from.
	sys := gen(t, Config{Platform: model.PlatformA, TargetRefUtil: 2.0, Dist: Uniform}, 41)
	for _, task := range sys.Tasks() {
		bm, _ := parsec.ByName(task.Benchmark)
		uMax := task.RefWCET() * bm.MaxSlowdown(model.PlatformA) / task.Period
		if task.RefUtil() > uMax+1e-12 {
			t.Errorf("task %s reference util %v above drawn util %v", task.ID, task.RefUtil(), uMax)
		}
	}
	_ = math.Pi
}

// TestConfigWireByteIdentity: generation specs submitted to the
// allocation server re-encode identically after a round trip, and the
// distribution travels as its figure name.
func TestConfigWireByteIdentity(t *testing.T) {
	in := Config{
		Platform:      model.PlatformB,
		TargetRefUtil: 2.5,
		Dist:          BimodalHeavy,
		NumVMs:        4,
		Benchmarks:    []string{"canneal", "streamcluster"},
	}
	first, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("config re-encoding drifted:\nfirst:  %s\nsecond: %s", first, second)
	}
	if !strings.Contains(string(first), `"dist":"bimodal-heavy"`) {
		t.Fatalf("distribution not name-encoded: %s", first)
	}
	var bad Config
	if err := json.Unmarshal([]byte(`{"platform":{"name":"A","m":2,"c":8,"b":8,"cmin":1,"bmin":1},"target_ref_util":1,"dist":3}`), &bad); err == nil {
		t.Error("numeric distribution encoding accepted")
	}
}
