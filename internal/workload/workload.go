// Package workload generates the random real-time tasksets used in the
// paper's schedulability evaluation (Section 5.1).
//
// Each taskset contains implicit-deadline periodic tasks with harmonic
// periods "uniformly distributed" in [100, 1100] ms. Harmonic periods are
// produced the standard way: a base period is drawn uniformly from
// [100, 137.5] and each task picks a period base*2^j with j in {0,1,2,3},
// so every period lies in [100, 1100] and every pair divides.
//
// Task utilizations follow one of four distributions (uniform [0.1, 0.4],
// or bimodal light/medium/heavy mixing [0.1, 0.4] and [0.5, 0.9]). The
// drawn utilization defines the task's maximum WCET e^max = u * p (its
// WCET with the cache disabled and worst-case bandwidth). A PARSEC
// benchmark profile is then drawn uniformly for the task; its reference
// WCET is e* = e^max / s^max and its WCET table e(c,b) = e* * s(c,b),
// preserving the benchmark's sensitivity to cache and BW. Tasks are added
// until the taskset's total reference utilization reaches the target.
package workload

import (
	"fmt"

	"vc2m/internal/model"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
)

// Distribution selects the task-utilization distribution.
type Distribution int

const (
	// Uniform draws utilizations uniformly from [0.1, 0.4].
	Uniform Distribution = iota
	// BimodalLight mixes [0.1, 0.4] and [0.5, 0.9] with probabilities 8/9
	// and 1/9.
	BimodalLight
	// BimodalMedium mixes with probabilities 6/9 and 3/9.
	BimodalMedium
	// BimodalHeavy mixes with probabilities 4/9 and 5/9.
	BimodalHeavy
)

// String returns the distribution's name as used in the figures.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case BimodalLight:
		return "bimodal-light"
	case BimodalMedium:
		return "bimodal-medium"
	case BimodalHeavy:
		return "bimodal-heavy"
	default:
		return "unknown"
	}
}

// ParseDistribution maps a name ("uniform", "light", "medium", "heavy",
// or the full "bimodal-*" forms) to a Distribution.
func ParseDistribution(name string) (Distribution, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "light", "bimodal-light":
		return BimodalLight, nil
	case "medium", "bimodal-medium":
		return BimodalMedium, nil
	case "heavy", "bimodal-heavy":
		return BimodalHeavy, nil
	}
	return 0, fmt.Errorf("workload: unknown distribution %q", name)
}

// MarshalJSON renders the distribution as its figure name, the same
// token ParseDistribution accepts, so generation specs submitted to the
// allocation server read the way the flags do.
func (d Distribution) MarshalJSON() ([]byte, error) {
	name := d.String()
	if name == "unknown" {
		return nil, fmt.Errorf("workload: cannot marshal distribution %d", int(d))
	}
	return []byte(`"` + name + `"`), nil
}

// UnmarshalJSON parses any name ParseDistribution accepts.
func (d *Distribution) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("workload: distribution must be a JSON string, got %s", data)
	}
	v, err := ParseDistribution(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// Sample draws one utilization from the distribution.
func (d Distribution) Sample(rng *rngutil.RNG) float64 {
	switch d {
	case Uniform:
		return rng.Uniform(0.1, 0.4)
	case BimodalLight:
		return rng.Bimodal(0.1, 0.4, 0.5, 0.9, 8.0/9.0)
	case BimodalMedium:
		return rng.Bimodal(0.1, 0.4, 0.5, 0.9, 6.0/9.0)
	case BimodalHeavy:
		return rng.Bimodal(0.1, 0.4, 0.5, 0.9, 4.0/9.0)
	default:
		panic("workload: unknown distribution")
	}
}

// Config parameterizes taskset generation. The JSON tags are the wire
// schema generation specs travel in when submitted to the allocation
// server; defaults (zero values) are omitted so specs stay minimal.
type Config struct {
	// Platform the tasks' WCET tables are generated for.
	Platform model.Platform `json:"platform"`
	// TargetRefUtil is the taskset's target total reference utilization
	// (the x-axis of Figures 2 and 3).
	TargetRefUtil float64 `json:"target_ref_util"`
	// Dist is the task-utilization distribution (a name on the wire,
	// e.g. "uniform" or "bimodal-light").
	Dist Distribution `json:"dist"`
	// NumVMs is the number of VMs tasks are spread across (round-robin).
	// Zero defaults to 2 — a minimal consolidation scenario. The VM count
	// does not affect the flattening or overhead-free solutions (their
	// VCPU bandwidth equals taskset utilization regardless of grouping),
	// but each extra VM multiplies the VCPU count and therefore the
	// abstraction overhead paid by the existing-CSA solutions.
	NumVMs int `json:"num_vms,omitempty"`
	// MaxTasks caps the number of generated tasks as a safety valve; zero
	// defaults to 1000.
	MaxTasks int `json:"max_tasks,omitempty"`
	// Benchmarks restricts generation to the named PARSEC profiles; empty
	// uses the full suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// UseTraceProfiles derives WCET tables by trace-driven measurement on
	// the cache simulator (parsec.TraceProfile) instead of the analytic
	// model — the "obtained by measurement on vC2M" path. Generation is
	// slower; profiles are computed once per benchmark and reused.
	UseTraceProfiles bool `json:"use_trace_profiles,omitempty"`
	// TraceOps overrides the trace length when UseTraceProfiles is set.
	TraceOps int `json:"trace_ops,omitempty"`
}

// periodBaseLo/periodBaseHi bound the harmonic base period so that
// base * 2^3 stays within the paper's [100, 1100] ms period range.
const (
	periodBaseLo = 100.0
	periodBaseHi = 137.5
	periodLevels = 4
)

// Generate produces a random taskset per the configuration. The returned
// system always validates; generation fails only for invalid configuration.
func Generate(cfg Config, rng *rngutil.RNG) (*model.System, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.TargetRefUtil <= 0 {
		return nil, fmt.Errorf("workload: target utilization %v, need > 0", cfg.TargetRefUtil)
	}
	numVMs := cfg.NumVMs
	if numVMs <= 0 {
		numVMs = 2
	}
	maxTasks := cfg.MaxTasks
	if maxTasks <= 0 {
		maxTasks = 1000
	}
	suite := parsec.All
	if len(cfg.Benchmarks) > 0 {
		suite = suite[:0:0]
		for _, name := range cfg.Benchmarks {
			bm, err := parsec.ByName(name)
			if err != nil {
				return nil, err
			}
			suite = append(suite, bm)
		}
	}

	base := rng.Uniform(periodBaseLo, periodBaseHi)

	vms := make([]*model.VM, numVMs)
	for i := range vms {
		vms[i] = &model.VM{ID: fmt.Sprintf("vm%d", i)}
	}

	// Per-benchmark slowdown profiles, computed once. The analytic model
	// is the default; trace-driven profiles replay a synthetic access
	// stream through the cache simulator instead.
	profiles := make(map[string]*model.ResourceTable, len(suite))
	profileFor := func(bm parsec.Benchmark) (*model.ResourceTable, error) {
		if p, ok := profiles[bm.Name]; ok {
			return p, nil
		}
		var p *model.ResourceTable
		if cfg.UseTraceProfiles {
			var err error
			p, err = bm.TraceProfile(cfg.Platform, parsec.TraceConfig{
				Ops:  cfg.TraceOps,
				Seed: 1,
			})
			if err != nil {
				return nil, err
			}
		} else {
			p = bm.Profile(cfg.Platform)
		}
		profiles[bm.Name] = p
		return p, nil
	}

	var totalRef float64
	for n := 0; totalRef < cfg.TargetRefUtil && n < maxTasks; n++ {
		period := base * float64(int(1)<<uint(rng.Intn(periodLevels)))
		util := cfg.Dist.Sample(rng)
		bm := suite[rng.Intn(len(suite))]

		eMax := util * period
		eRef := eMax / bm.MaxSlowdown(cfg.Platform)
		prof, err := profileFor(bm)
		if err != nil {
			return nil, err
		}
		vmIdx := n % numVMs
		task := &model.Task{
			ID:        fmt.Sprintf("t%d", n),
			VM:        vms[vmIdx].ID,
			Period:    period,
			WCET:      prof.Clone().Scale(eRef),
			Benchmark: bm.Name,
		}
		vms[vmIdx].Tasks = append(vms[vmIdx].Tasks, task)
		totalRef += eRef / period
	}

	// Drop VMs that received no tasks (tiny targets).
	kept := vms[:0]
	for _, vm := range vms {
		if len(vm.Tasks) > 0 {
			kept = append(kept, vm)
		}
	}
	return &model.System{Platform: cfg.Platform, VMs: kept}, nil
}
