package workload

import (
	"math"
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
)

// FuzzGenerate drives the taskset generator with arbitrary configurations
// and seeds: it must never panic, and every system it returns must honor
// its documented contract — the system validates, every task's period lies
// in the paper's [100, 1100] ms harmonic ladder, and the periods are
// pairwise harmonic (the property the CSA's hyperperiod short-circuit and
// the well-regulated analysis both rely on).
func FuzzGenerate(f *testing.F) {
	f.Add(1.0, 0, 2, 0, int64(7))
	f.Add(0.05, 1, 1, 3, int64(1)) // tiny target: VMs may end up empty
	f.Add(4.0, 3, 5, 0, int64(99)) // heavy bimodal across many VMs
	f.Add(math.NaN(), 0, 0, 0, int64(2))
	f.Add(-1.0, 2, 0, 0, int64(3))
	f.Fuzz(func(t *testing.T, util float64, dist int, numVMs int, maxTasks int, seed int64) {
		cfg := Config{
			Platform:      model.PlatformA,
			TargetRefUtil: util,
			// Dist is an enum, not external input: clamp to the valid
			// range rather than fuzzing Sample's panic on bad values.
			Dist:     Distribution(((dist % 4) + 4) % 4),
			NumVMs:   numVMs % 64,
			MaxTasks: maxTasks % 2048,
		}
		sys, err := Generate(cfg, rngutil.New(seed))
		if err != nil {
			return
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("Generate returned an invalid system: %v", err)
		}
		var periods []float64
		for _, vm := range sys.VMs {
			if len(vm.Tasks) == 0 {
				t.Fatalf("Generate kept empty VM %q", vm.ID)
			}
			for _, task := range vm.Tasks {
				if task.Period < 100-1e-9 || task.Period > 1100+1e-9 {
					t.Fatalf("task %s period %v outside [100, 1100] ms", task.ID, task.Period)
				}
				periods = append(periods, task.Period)
			}
		}
		if len(periods) > 0 && !csa.HarmonicPeriods(periods) {
			t.Fatalf("generated periods are not pairwise harmonic: %v", periods)
		}
	})
}
