package report_test

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"vc2m"
	"vc2m/internal/alloc"
	"vc2m/internal/report"
)

// buildRunDoc performs a complete seeded allocation (and, on success, a
// short simulation) and joins it into a run document — the in-process
// equivalent of `vc2m-sim -report-out`.
func buildRunDoc(t *testing.T, util float64, seed int64) *report.Document {
	t.Helper()
	sys, err := vc2m.GenerateWorkload(vc2m.WorkloadConfig{
		Platform: vc2m.PlatformA, TargetRefUtil: util, Seed: seed,
	})
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	prov := vc2m.NewProvenance()
	in := report.RunInput{
		Title:      fmt.Sprintf("test run (util %.1f, seed %d)", util, seed),
		Seed:       seed,
		Mode:       "flattening",
		Platform:   sys.Platform,
		Provenance: prov,
	}
	a, err := vc2m.Allocate(sys, vc2m.Options{Provenance: prov})
	if err != nil {
		in.Rejection = toRejection(err)
	} else {
		in.Allocation = a
		res, err := vc2m.Simulate(a, 500, vc2m.SimOptions{})
		if err != nil {
			t.Fatalf("Simulate: %v", err)
		}
		in.Sim = res
	}
	return report.BuildRun(in)
}

func toRejection(err error) *report.Rejection {
	rej := &report.Rejection{Reason: err.Error(), Violated: []string{"cpu"}}
	if re, ok := alloc.AsRejection(err); ok {
		rej.Stage = re.Stage
		rej.Violated = rej.Violated[:0]
		for _, r := range re.Violated {
			rej.Violated = append(rej.Violated, string(r))
		}
	}
	return rej
}

// TestReportSmoke validates a report JSON end to end. The make
// report-smoke target points VC2M_REPORT_SMOKE at a document written by
// vc2m-sim and re-runs this test against it; with the variable unset the
// test builds a document in-process, so plain `go test` covers the same
// checks.
func TestReportSmoke(t *testing.T) {
	var doc *report.Document
	if path := os.Getenv("VC2M_REPORT_SMOKE"); path != "" {
		var err error
		doc, err = report.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if doc.Sim == nil {
			t.Error("vc2m-sim -simulate report has no sim section")
		}
	} else {
		doc = buildRunDoc(t, 1.0, 7)
	}
	if err := report.Validate(doc); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if doc.Kind != report.KindRun {
		t.Errorf("kind = %q, want %q", doc.Kind, report.KindRun)
	}
	if doc.Allocation == nil {
		t.Fatal("admitted run has no allocation section")
	}
	if len(doc.Decisions) == 0 {
		t.Fatal("report has no provenance decisions")
	}
	for _, core := range doc.Allocation.Cores {
		if core.Utilization > 1+1e-9 {
			t.Errorf("core %d utilization %.6f > 1 in a schedulable allocation", core.Core, core.Utilization)
		}
	}
}

func TestValidateRejectsMalformedDocuments(t *testing.T) {
	base := func() *report.Document { return buildRunDoc(t, 1.0, 7) }

	doc := base()
	doc.Schema = "vc2m.report/v0"
	if err := report.Validate(doc); err == nil {
		t.Error("wrong schema version accepted")
	}

	doc = base()
	doc.Kind = "banana"
	if err := report.Validate(doc); err == nil {
		t.Error("unknown kind accepted")
	}

	doc = base()
	if len(doc.Decisions) >= 2 {
		doc.Decisions[1].Seq = doc.Decisions[0].Seq
		if err := report.Validate(doc); err == nil {
			t.Error("non-increasing decision seq accepted")
		}
	}

	doc = base()
	doc.Rejection = &report.Rejection{Reason: "x", Violated: []string{"gpu"}}
	doc.Allocation = nil
	if err := report.Validate(doc); err == nil {
		t.Error("invalid rejection resource accepted")
	}

	doc = base()
	doc.Rejection = &report.Rejection{Reason: "x", Violated: []string{"cpu"}}
	if err := report.Validate(doc); err == nil {
		t.Error("document with both allocation and rejection accepted")
	}
}

func TestDiffDetectsAndClears(t *testing.T) {
	a := buildRunDoc(t, 1.0, 7)
	b := buildRunDoc(t, 1.0, 7)
	if diffs := report.Diff(a, b); len(diffs) != 0 {
		t.Fatalf("identically-seeded documents differ:\n%s", strings.Join(diffs, "\n"))
	}
	b.Seed = 8
	b.Decisions[0].Reason = "tampered"
	diffs := report.Diff(a, b)
	if len(diffs) < 2 {
		t.Fatalf("tampered document produced %d diff(s): %v", len(diffs), diffs)
	}
}

// TestMarshalByteStable is the reproducibility contract: two documents
// built from independent identically-seeded runs must serialize to the
// same bytes.
func TestMarshalByteStable(t *testing.T) {
	for _, c := range []struct {
		name string
		util float64
		seed int64
	}{
		{"admitted", 1.0, 7},
		{"rejected", 4.5, 3},
	} {
		t.Run(c.name, func(t *testing.T) {
			a, err := report.Marshal(buildRunDoc(t, c.util, c.seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := report.Marshal(buildRunDoc(t, c.util, c.seed))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Error("two identically-seeded runs serialized differently")
			}
		})
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	doc := buildRunDoc(t, 1.0, 7)
	path := t.TempDir() + "/run.json"
	if err := report.Save(path, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := report.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := report.Diff(doc, loaded); len(diffs) != 0 {
		t.Fatalf("round trip changed the document:\n%s", strings.Join(diffs, "\n"))
	}
}

func TestRenderHTMLSelfContained(t *testing.T) {
	for _, c := range []struct {
		name string
		util float64
		seed int64
	}{
		{"admitted", 1.0, 7},
		{"rejected", 4.5, 3},
	} {
		t.Run(c.name, func(t *testing.T) {
			doc := buildRunDoc(t, c.util, c.seed)
			page := report.RenderHTML(doc)
			for _, banned := range []string{"http://", "https://", "<script"} {
				if strings.Contains(page, banned) {
					t.Errorf("HTML contains %q; the page must be self-contained", banned)
				}
			}
			if !strings.Contains(page, "<!DOCTYPE html>") {
				t.Error("missing doctype")
			}
			if c.util > 2 && !strings.Contains(page, "Verdict: rejected") {
				t.Error("rejected run's HTML has no rejection verdict")
			}
			if c.util <= 2 && !strings.Contains(page, "Allocation") {
				t.Error("admitted run's HTML has no allocation section")
			}
		})
	}
}

func TestExplainRejectedNamesBindingResource(t *testing.T) {
	doc := buildRunDoc(t, 4.5, 3)
	if doc.Rejection == nil {
		t.Fatal("util-4.5 workload unexpectedly admitted")
	}
	out := report.Explain(doc, "system")
	if !strings.Contains(out, "binding resource(s):") {
		t.Fatalf("explain names no binding resource:\n%s", out)
	}
	if !strings.Contains(out, "verdict: REJECTED") {
		t.Fatalf("explain has no rejection verdict:\n%s", out)
	}
}

func TestRejectionPareto(t *testing.T) {
	doc := buildRunDoc(t, 4.5, 3)
	pareto := report.RejectionPareto(doc)
	if len(pareto) == 0 {
		t.Fatal("rejected run yields an empty Pareto tally")
	}
	for i := 1; i < len(pareto); i++ {
		if pareto[i].Count > pareto[i-1].Count {
			t.Errorf("pareto not sorted: %v", pareto)
		}
	}
}
