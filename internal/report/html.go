package report

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"vc2m/internal/provenance"
)

// RenderHTML renders the document as one self-contained HTML page: inline
// CSS only, no scripts, no external URLs, so the file can be archived next
// to the run it describes and opened offline years later. The report-smoke
// make target greps the output for "http://"/"https://" to enforce this.
func RenderHTML(doc *Document) string {
	var b strings.Builder
	esc := html.EscapeString
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", esc(doc.Title))
	b.WriteString("<style>\n" + inlineCSS + "</style>\n</head>\n<body>\n")

	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(doc.Title))
	fmt.Fprintf(&b, "<p class=\"meta\">schema %s &middot; kind %s &middot; seed %d", esc(doc.Schema), esc(doc.Kind), doc.Seed)
	if doc.Mode != "" {
		fmt.Fprintf(&b, " &middot; mode %s", esc(doc.Mode))
	}
	p := doc.Platform
	fmt.Fprintf(&b, " &middot; platform %s (M=%d, C=%d, B=%d)</p>\n", esc(p.Name), p.M, p.C, p.B)

	if doc.Rejection != nil {
		b.WriteString("<h2>Verdict: rejected</h2>\n<div class=\"reject\">\n")
		fmt.Fprintf(&b, "<p><b>Stage:</b> %s</p>\n", esc(orUnknown(doc.Rejection.Stage)))
		fmt.Fprintf(&b, "<p><b>Binding resource(s):</b> %s</p>\n", esc(strings.Join(doc.Rejection.Violated, ", ")))
		fmt.Fprintf(&b, "<p>%s</p>\n</div>\n", esc(doc.Rejection.Reason))
	}
	if doc.Allocation != nil {
		renderAllocationHTML(&b, doc.Allocation, doc.Platform)
	}
	if doc.Sweep != nil {
		renderSweepHTML(&b, doc.Sweep)
	}
	if doc.Sim != nil {
		renderSimHTML(&b, doc.Sim)
	}
	if len(doc.Misses) > 0 {
		renderMissesHTML(&b, doc.Misses)
	}
	if len(doc.Decisions) > 0 {
		renderParetoHTML(&b, doc)
		renderDecisionsHTML(&b, doc.Decisions)
	}
	if len(doc.Counters) > 0 {
		renderCountersHTML(&b, doc.Counters)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

const inlineCSS = `body{font-family:sans-serif;margin:2em auto;max-width:70em;color:#222}
h1,h2{border-bottom:1px solid #ccc;padding-bottom:.2em}
.meta{color:#666}
table{border-collapse:collapse;margin:.5em 0}
td,th{border:1px solid #ccc;padding:.25em .6em;text-align:left;font-size:90%}
th{background:#f4f4f4}
.bar{display:inline-block;height:.8em;background:#4a90d9;vertical-align:middle}
.bar.hot{background:#d9534f}
.reject{background:#fdecea;border:1px solid #d9534f;padding:.5em 1em;border-radius:4px}
.ok{color:#2e7d32}
.no{color:#c62828}
details{margin:.4em 0}
summary{cursor:pointer;font-weight:bold}
pre{background:#f7f7f7;padding:.5em;overflow-x:auto;font-size:85%}
`

func renderAllocationHTML(b *strings.Builder, a *AllocSummary, p PlatformSummary) {
	esc := html.EscapeString
	b.WriteString("<h2>Allocation</h2>\n")
	verdict := "<span class=\"no\">not schedulable</span>"
	if a.Schedulable {
		verdict = "<span class=\"ok\">schedulable</span>"
	}
	fmt.Fprintf(b, "<p>solution <b>%s</b> &mdash; %s &mdash; %d core(s), %d/%d cache and %d/%d BW partitions used</p>\n",
		esc(a.Solution), verdict, len(a.Cores), a.UsedCache, p.C, a.UsedBW, p.B)
	b.WriteString("<table>\n<tr><th>core</th><th>cache</th><th>bw</th><th>utilization</th><th>vcpus</th></tr>\n")
	for _, c := range a.Cores {
		cls := "bar"
		if c.Utilization > 0.9 {
			cls = "bar hot"
		}
		width := int(c.Utilization * 120)
		if width < 1 {
			width = 1
		}
		vcpus := make([]string, 0, len(c.VCPUs))
		for _, v := range c.VCPUs {
			vcpus = append(vcpus, fmt.Sprintf("%s (bw %.3f)", esc(v.ID), v.Bandwidth))
		}
		fmt.Fprintf(b, "<tr><td>%d</td><td>%d</td><td>%d</td><td><span class=\"%s\" style=\"width:%dpx\"></span> %.3f</td><td>%s</td></tr>\n",
			c.Core, c.Cache, c.BW, cls, width, c.Utilization, strings.Join(vcpus, ", "))
	}
	b.WriteString("</table>\n")

	b.WriteString("<details><summary>Task placement</summary>\n<table>\n<tr><th>task</th><th>vcpu</th><th>core</th></tr>\n")
	for _, c := range a.Cores {
		for _, v := range c.VCPUs {
			for _, t := range v.Tasks {
				fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>\n", esc(t), esc(v.ID), c.Core)
			}
		}
	}
	b.WriteString("</table>\n</details>\n")
}

func renderSweepHTML(b *strings.Builder, s *SweepSummary) {
	esc := html.EscapeString
	b.WriteString("<h2>Schedulability sweep</h2>\n")
	fmt.Fprintf(b, "<p>%d taskset(s) analyzed across %d series</p>\n", s.Tasksets, len(s.Series))
	for _, series := range s.Series {
		fmt.Fprintf(b, "<details open><summary>%s</summary>\n<table>\n<tr><th>util</th><th>schedulable fraction</th></tr>\n", esc(series.Solution))
		for _, pt := range series.Points {
			width := int(pt.Fraction * 120)
			if width < 1 {
				width = 1
			}
			fmt.Fprintf(b, "<tr><td>%.2f</td><td><span class=\"bar\" style=\"width:%dpx\"></span> %.3f</td></tr>\n",
				pt.Util, width, pt.Fraction)
		}
		b.WriteString("</table>\n</details>\n")
	}
}

func renderSimHTML(b *strings.Builder, s *SimSummary) {
	b.WriteString("<h2>Simulation</h2>\n<table>\n")
	row := func(k string, v any) { fmt.Fprintf(b, "<tr><th>%s</th><td>%v</td></tr>\n", k, v) }
	row("horizon (ticks)", s.HorizonTicks)
	row("jobs released", s.Released)
	row("jobs completed", s.Completed)
	missCls := "ok"
	if s.Missed > 0 {
		missCls = "no"
	}
	fmt.Fprintf(b, "<tr><th>deadline misses</th><td class=\"%s\">%d</td></tr>\n", missCls, s.Missed)
	row("context switches", s.ContextSwitches)
	row("scheduler invocations", s.SchedInvocations)
	row("budget replenishments", s.BudgetReplenishments)
	row("throttle events", s.ThrottleEvents)
	row("BW replenishments", s.BWReplenishments)
	b.WriteString("</table>\n")
	if len(s.CoreBusy) > 0 {
		b.WriteString("<p>per-core busy fraction:</p>\n<table>\n<tr><th>core</th><th>busy</th></tr>\n")
		for i, f := range s.CoreBusy {
			width := int(f * 120)
			if width < 1 {
				width = 1
			}
			fmt.Fprintf(b, "<tr><td>%d</td><td><span class=\"bar\" style=\"width:%dpx\"></span> %.3f</td></tr>\n", i, width, f)
		}
		b.WriteString("</table>\n")
	}
}

func renderMissesHTML(b *strings.Builder, misses []MissSummary) {
	esc := html.EscapeString
	b.WriteString("<h2>Deadline-miss diagnosis</h2>\n<table>\n<tr><th>task</th><th>cause</th><th>misses</th></tr>\n")
	for _, m := range misses {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>\n", esc(m.Task), esc(m.Cause), m.Count)
	}
	b.WriteString("</table>\n")
}

func renderParetoHTML(b *strings.Builder, doc *Document) {
	pareto := RejectionPareto(doc)
	if len(pareto) == 0 {
		return
	}
	b.WriteString("<h2>Rejection Pareto</h2>\n<p>violated-resource tally over all rejecting decisions:</p>\n<table>\n<tr><th>resource</th><th>rejections</th></tr>\n")
	max := pareto[0].Count
	for _, e := range pareto {
		width := 1
		if max > 0 {
			width = 1 + e.Count*120/max
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td><span class=\"bar hot\" style=\"width:%dpx\"></span> %d</td></tr>\n",
			html.EscapeString(e.Resource), width, e.Count)
	}
	b.WriteString("</table>\n")
}

func renderDecisionsHTML(b *strings.Builder, decisions []provenance.Decision) {
	esc := html.EscapeString
	b.WriteString("<h2>Decision trail</h2>\n")
	// Group by stage, preserving the order stages first appear in.
	var stages []string
	byStage := map[string][]provenance.Decision{}
	for _, d := range decisions {
		s := string(d.Stage)
		if _, ok := byStage[s]; !ok {
			stages = append(stages, s)
		}
		byStage[s] = append(byStage[s], d)
	}
	for _, s := range stages {
		ds := byStage[s]
		fmt.Fprintf(b, "<details><summary>%s (%d decision(s))</summary>\n<pre>", esc(s), len(ds))
		for _, d := range ds {
			b.WriteString(esc(FormatDecision(d)) + "\n")
		}
		b.WriteString("</pre>\n</details>\n")
	}
}

func renderCountersHTML(b *strings.Builder, counters map[string]int64) {
	b.WriteString("<h2>Search-effort counters</h2>\n<table>\n<tr><th>counter</th><th>value</th></tr>\n")
	keys := make([]string, 0, len(counters))
	for k := range counters { //vc2m:ordered keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td></tr>\n", html.EscapeString(k), counters[k])
	}
	b.WriteString("</table>\n")
}
