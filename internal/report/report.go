// Package report joins vC2M's three observability streams — allocation
// decision provenance (package provenance), search-effort counters
// (package metrics) and simulation traces (package trace / hypersim) —
// into one schema-versioned document that can be saved as JSON, rendered
// as a self-contained HTML page, diffed between runs and queried with
// "explain" (why did task X land where it did / why was taskset Y
// rejected?).
//
// Determinism contract: a Document built from two identically-seeded runs
// is byte-identical after Save. To that end documents carry only
// deterministic data — metrics *counters* (never wall-clock timers or
// gauges), provenance decisions (which contain no timestamps), and
// simulation totals in simulated ticks. The golden tests assert this.
//
// The package deliberately does not import internal/alloc: callers
// translate an allocator's RejectionError into the plain Rejection
// section, which keeps report usable from any layer without a dependency
// on the heuristics it describes.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"vc2m/internal/hypersim"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/provenance"
	"vc2m/internal/trace"
)

// SchemaVersion identifies the document layout. Bump when a field changes
// meaning; Validate rejects documents from other versions.
const SchemaVersion = "vc2m.report/v1"

// Document kinds.
const (
	KindRun   = "run"   // one taskset: allocation (+ optional simulation)
	KindSweep = "sweep" // a schedulability sweep over many tasksets
)

// PlatformSummary mirrors model.Platform in the document.
type PlatformSummary struct {
	Name string `json:"name"`
	M    int    `json:"m"`
	C    int    `json:"c"`
	B    int    `json:"b"`
	Cmin int    `json:"cmin"`
	Bmin int    `json:"bmin"`
}

// VCPUSummary is one VCPU's placement in the allocation section.
type VCPUSummary struct {
	ID        string   `json:"id"`
	PeriodMs  float64  `json:"period_ms"`
	BudgetMs  float64  `json:"budget_ms"` // at the owning core's (c,b)
	Bandwidth float64  `json:"bandwidth"` // BudgetMs / PeriodMs
	Tasks     []string `json:"tasks,omitempty"`
}

// CoreSummary is one core's partition grant and load.
type CoreSummary struct {
	Core        int           `json:"core"`
	Cache       int           `json:"cache"`
	BW          int           `json:"bw"`
	Utilization float64       `json:"utilization"`
	VCPUs       []VCPUSummary `json:"vcpus,omitempty"`
}

// AllocSummary is the accepted-allocation section.
type AllocSummary struct {
	Solution    string        `json:"solution"`
	Schedulable bool          `json:"schedulable"`
	UsedCache   int           `json:"used_cache"`
	UsedBW      int           `json:"used_bw"`
	Cores       []CoreSummary `json:"cores"`
}

// Rejection is the rejected-allocation section. Callers build it from an
// alloc.RejectionError (Stage/Reason/Violated map one-to-one); Violated
// holds provenance resource names ("cpu", "cache", "bw").
type Rejection struct {
	Stage    string   `json:"stage,omitempty"`
	Reason   string   `json:"reason"`
	Violated []string `json:"violated"`
}

// MissSummary is one (task, cause) deadline-miss tally from the trace
// diagnoser.
type MissSummary struct {
	Task  string `json:"task"`
	Cause string `json:"cause"`
	Count int    `json:"count"`
}

// SimSummary holds the deterministic totals of a simulation run. All
// quantities are event counts or simulated time — never wall clock.
type SimSummary struct {
	HorizonTicks         int64     `json:"horizon_ticks"`
	Released             int       `json:"released"`
	Completed            int       `json:"completed"`
	Missed               int       `json:"missed"`
	ContextSwitches      uint64    `json:"context_switches"`
	SchedInvocations     uint64    `json:"sched_invocations"`
	BudgetReplenishments uint64    `json:"budget_replenishments"`
	ThrottleEvents       uint64    `json:"throttle_events"`
	BWReplenishments     uint64    `json:"bw_replenishments"`
	CoreBusy             []float64 `json:"core_busy,omitempty"`
}

// SweepPoint is one (utilization, schedulable-fraction) measurement.
type SweepPoint struct {
	Util     float64 `json:"util"`
	Fraction float64 `json:"fraction"`
}

// SweepSeries is one solution's schedulability curve.
type SweepSeries struct {
	Solution string       `json:"solution"`
	Points   []SweepPoint `json:"points"`
}

// SweepSummary is the sweep section: curves plus the taskset total.
type SweepSummary struct {
	Tasksets int           `json:"tasksets"`
	Series   []SweepSeries `json:"series"`
}

// Document is the unified run report.
type Document struct {
	Schema   string          `json:"schema"`
	Title    string          `json:"title"`
	Kind     string          `json:"kind"`
	Seed     int64           `json:"seed"`
	Mode     string          `json:"mode,omitempty"`
	Platform PlatformSummary `json:"platform"`

	Allocation *AllocSummary `json:"allocation,omitempty"`
	Rejection  *Rejection    `json:"rejection,omitempty"`
	Sim        *SimSummary   `json:"sim,omitempty"`
	Misses     []MissSummary `json:"misses,omitempty"`
	Sweep      *SweepSummary `json:"sweep,omitempty"`

	// Counters is the deterministic subset of the metrics snapshot.
	// Wall-clock timers and gauges are deliberately dropped so that
	// identically-seeded runs produce byte-identical documents.
	Counters map[string]int64 `json:"counters,omitempty"`

	// Decisions is the full provenance stream, in Seq order.
	Decisions []provenance.Decision `json:"decisions,omitempty"`
}

// RunInput collects the sources BuildRun joins. Every field except Title,
// Seed and Platform may be zero/nil; the corresponding section is omitted.
type RunInput struct {
	Title      string
	Seed       int64
	Mode       string
	Platform   model.Platform
	Allocation *model.Allocation // accepted allocation, nil when rejected
	Rejection  *Rejection        // rejection verdict, nil when accepted
	Sim        *hypersim.Result  // simulation totals, nil when not simulated
	Diagnosis  *trace.Report     // deadline-miss diagnoses, nil when none
	Metrics    *metrics.Recorder // search-effort counters (nil ok)
	Provenance *provenance.Recorder
}

// BuildRun assembles a KindRun document.
func BuildRun(in RunInput) *Document {
	doc := &Document{
		Schema:   SchemaVersion,
		Title:    in.Title,
		Kind:     KindRun,
		Seed:     in.Seed,
		Mode:     in.Mode,
		Platform: summarizePlatform(in.Platform),

		Allocation: summarizeAllocation(in.Allocation),
		Rejection:  in.Rejection,
		Sim:        summarizeSim(in.Sim),
		Misses:     summarizeMisses(in.Diagnosis),
		Counters:   counterSnapshot(in.Metrics),
		Decisions:  in.Provenance.Decisions(),
	}
	return doc
}

// SweepInput collects the sources BuildSweep joins.
type SweepInput struct {
	Title      string
	Seed       int64
	Mode       string
	Platform   model.Platform
	Sweep      *SweepSummary // the caller-flattened sweep curves
	Metrics    *metrics.Recorder
	Provenance *provenance.Recorder
}

// BuildSweep assembles a KindSweep document.
func BuildSweep(in SweepInput) *Document {
	return &Document{
		Schema:   SchemaVersion,
		Title:    in.Title,
		Kind:     KindSweep,
		Seed:     in.Seed,
		Mode:     in.Mode,
		Platform: summarizePlatform(in.Platform),

		Sweep:     in.Sweep,
		Counters:  counterSnapshot(in.Metrics),
		Decisions: in.Provenance.Decisions(),
	}
}

func summarizePlatform(p model.Platform) PlatformSummary {
	return PlatformSummary{Name: p.Name, M: p.M, C: p.C, B: p.B, Cmin: p.Cmin, Bmin: p.Bmin}
}

func summarizeAllocation(a *model.Allocation) *AllocSummary {
	if a == nil {
		return nil
	}
	s := &AllocSummary{
		Solution:    a.Solution,
		Schedulable: a.Schedulable,
		UsedCache:   a.UsedCache(),
		UsedBW:      a.UsedBW(),
		Cores:       make([]CoreSummary, 0, len(a.Cores)),
	}
	for _, core := range a.Cores {
		cs := CoreSummary{
			Core: core.Core, Cache: core.Cache, BW: core.BW,
			Utilization: core.Utilization(),
			VCPUs:       make([]VCPUSummary, 0, len(core.VCPUs)),
		}
		for _, v := range core.VCPUs {
			vs := VCPUSummary{
				ID:        v.ID,
				PeriodMs:  v.Period,
				BudgetMs:  v.Budget.At(core.Cache, core.BW),
				Bandwidth: v.Bandwidth(core.Cache, core.BW),
			}
			for _, t := range v.Tasks {
				vs.Tasks = append(vs.Tasks, t.ID)
			}
			cs.VCPUs = append(cs.VCPUs, vs)
		}
		s.Cores = append(s.Cores, cs)
	}
	return s
}

func summarizeSim(r *hypersim.Result) *SimSummary {
	if r == nil {
		return nil
	}
	return &SimSummary{
		HorizonTicks:         int64(r.Horizon),
		Released:             r.Released,
		Completed:            r.Completed,
		Missed:               r.Missed,
		ContextSwitches:      r.ContextSwitches,
		SchedInvocations:     r.SchedInvocations,
		BudgetReplenishments: r.BudgetReplenishments,
		ThrottleEvents:       r.ThrottleEvents,
		BWReplenishments:     r.BWReplenishments,
		CoreBusy:             r.CoreBusy,
	}
}

func summarizeMisses(rep *trace.Report) []MissSummary {
	if rep == nil || len(rep.ByTask) == 0 {
		return nil
	}
	tasks := make([]string, 0, len(rep.ByTask))
	for id := range rep.ByTask { //vc2m:ordered keys are sorted below
		tasks = append(tasks, id)
	}
	sort.Strings(tasks)
	var out []MissSummary
	for _, id := range tasks {
		counts := rep.ByTask[id]
		// Walk causes in declaration order; String falls back to
		// "cause(n)" past the last named one, which ends the walk.
		for c := trace.MissCause(0); !strings.HasPrefix(c.String(), "cause("); c++ {
			if n := counts[c]; n > 0 {
				out = append(out, MissSummary{Task: id, Cause: c.String(), Count: n})
			}
		}
	}
	return out
}

func counterSnapshot(rec *metrics.Recorder) map[string]int64 {
	if rec == nil {
		return nil
	}
	snap := rec.Snapshot()
	if len(snap.Counters) == 0 {
		return nil
	}
	return snap.Counters
}

// Save writes the document as indented JSON. The output is byte-stable
// for identical documents (encoding/json sorts map keys).
func Save(path string, doc *Document) error {
	data, err := Marshal(doc)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Marshal renders the document to its canonical JSON bytes (indented,
// trailing newline).
func Marshal(doc *Document) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// Load reads and validates a document.
func Load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("report: parse %s: %w", path, err)
	}
	if err := Validate(&doc); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &doc, nil
}

// Validate checks the document's structural invariants: the schema
// version, a known kind, monotonically increasing decision sequence
// numbers, and valid resource names in every Violated list.
func Validate(doc *Document) error {
	if doc.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", doc.Schema, SchemaVersion)
	}
	if doc.Kind != KindRun && doc.Kind != KindSweep {
		return fmt.Errorf("unknown kind %q", doc.Kind)
	}
	prev := -1
	for i, d := range doc.Decisions {
		if d.Seq <= prev {
			return fmt.Errorf("decision %d: seq %d not increasing (prev %d)", i, d.Seq, prev)
		}
		prev = d.Seq
		for _, r := range d.Violated {
			if !provenance.ValidResource(r) {
				return fmt.Errorf("decision %d (seq %d): invalid resource %q", i, d.Seq, r)
			}
		}
	}
	if doc.Rejection != nil {
		if doc.Rejection.Reason == "" {
			return fmt.Errorf("rejection section without a reason")
		}
		if len(doc.Rejection.Violated) == 0 {
			return fmt.Errorf("rejection section without a binding resource")
		}
		for _, r := range doc.Rejection.Violated {
			if !provenance.ValidResource(provenance.Resource(r)) {
				return fmt.Errorf("rejection: invalid resource %q", r)
			}
		}
	}
	if doc.Allocation != nil && doc.Rejection != nil {
		return fmt.Errorf("document has both an allocation and a rejection")
	}
	return nil
}

// Diff compares two documents section by section and returns one line per
// difference (empty means identical). Two identically-seeded runs must
// diff clean — that is the reproducibility acceptance test.
func Diff(a, b *Document) []string {
	var out []string
	diffScalar := func(name string, av, bv any) {
		aj, _ := json.Marshal(av)
		bj, _ := json.Marshal(bv)
		if string(aj) != string(bj) {
			out = append(out, fmt.Sprintf("%s: %s != %s", name, aj, bj))
		}
	}
	diffScalar("schema", a.Schema, b.Schema)
	diffScalar("title", a.Title, b.Title)
	diffScalar("kind", a.Kind, b.Kind)
	diffScalar("seed", a.Seed, b.Seed)
	diffScalar("mode", a.Mode, b.Mode)
	diffScalar("platform", a.Platform, b.Platform)
	diffScalar("allocation", a.Allocation, b.Allocation)
	diffScalar("rejection", a.Rejection, b.Rejection)
	diffScalar("sim", a.Sim, b.Sim)
	diffScalar("misses", a.Misses, b.Misses)
	diffScalar("sweep", a.Sweep, b.Sweep)
	diffScalar("counters", a.Counters, b.Counters)

	n := len(a.Decisions)
	if len(b.Decisions) != n {
		out = append(out, fmt.Sprintf("decisions: %d != %d entries", len(a.Decisions), len(b.Decisions)))
		if len(b.Decisions) < n {
			n = len(b.Decisions)
		}
	}
	const maxDecisionDiffs = 10
	shown := 0
	for i := 0; i < n && shown < maxDecisionDiffs; i++ {
		aj, _ := json.Marshal(a.Decisions[i])
		bj, _ := json.Marshal(b.Decisions[i])
		if string(aj) != string(bj) {
			out = append(out, fmt.Sprintf("decision %d: %s != %s", i, aj, bj))
			shown++
		}
	}
	return out
}

// Explain reconstructs the decision trail for a subject — a task ID, a
// VCPU ID, a core ("core 2"), or a sweep case ("u=1.00/ts=3"). Matching is
// case-sensitive substring over each decision's Subject and Target. For a
// rejected document (or matching reject decisions) the verdict names the
// binding resource(s).
func Explain(doc *Document, subject string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain %q in %s report %q (seed %d)\n", subject, doc.Kind, doc.Title, doc.Seed)
	matched := 0
	var binding []string
	seen := map[string]bool{}
	addBinding := func(rs []string) {
		for _, r := range rs {
			if !seen[r] {
				seen[r] = true
				binding = append(binding, r)
			}
		}
	}
	for _, d := range doc.Decisions {
		if !strings.Contains(d.Subject, subject) && !strings.Contains(d.Target, subject) {
			continue
		}
		matched++
		b.WriteString("  " + FormatDecision(d) + "\n")
		if !d.Accepted && len(d.Violated) > 0 {
			rs := make([]string, len(d.Violated))
			for i, r := range d.Violated {
				rs[i] = string(r)
			}
			addBinding(rs)
		}
	}
	if matched == 0 {
		fmt.Fprintf(&b, "  no decisions mention %q (the run may have been recorded without -provenance)\n", subject)
	}
	if doc.Rejection != nil {
		fmt.Fprintf(&b, "verdict: REJECTED at %s — %s\n", orUnknown(doc.Rejection.Stage), doc.Rejection.Reason)
		addBinding(doc.Rejection.Violated)
	}
	if len(binding) > 0 {
		fmt.Fprintf(&b, "binding resource(s): %s\n", strings.Join(binding, ", "))
	} else if matched > 0 {
		b.WriteString("verdict: no rejection recorded for this subject\n")
	}
	return b.String()
}

// FormatDecision renders one decision as a single stable line.
func FormatDecision(d provenance.Decision) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%04d [%s/%s]", d.Seq, d.Stage, d.Kind)
	if d.Subject != "" {
		fmt.Fprintf(&b, " %s", d.Subject)
	}
	if d.Target != "" {
		fmt.Fprintf(&b, " -> %s", d.Target)
	}
	if d.Cache != 0 || d.BW != 0 {
		fmt.Fprintf(&b, " (cache %d, bw %d)", d.Cache, d.BW)
	}
	if d.Value != 0 { //vc2m:floateq unset-field sentinel
		fmt.Fprintf(&b, " value %.4g", d.Value)
	}
	if d.Accepted {
		b.WriteString(" OK")
	} else {
		b.WriteString(" REJECTED")
	}
	if len(d.Violated) > 0 {
		rs := make([]string, len(d.Violated))
		for i, r := range d.Violated {
			rs[i] = string(r)
		}
		fmt.Fprintf(&b, " binding=%s", strings.Join(rs, ","))
	}
	if d.Reason != "" {
		fmt.Fprintf(&b, ": %s", d.Reason)
	}
	return b.String()
}

// RejectionPareto tallies the document's reject decisions by violated
// resource, most frequent first — "what binds most often?".
func RejectionPareto(doc *Document) []struct {
	Resource string
	Count    int
} {
	counts := map[string]int{}
	for _, d := range doc.Decisions {
		if d.Accepted {
			continue
		}
		for _, r := range d.Violated {
			counts[string(r)]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts { //vc2m:ordered keys are sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]struct {
		Resource string
		Count    int
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			Resource string
			Count    int
		}{k, counts[k]})
	}
	return out
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown stage)"
	}
	return s
}
