package report_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vc2m/internal/experiment"
	"vc2m/internal/model"
	"vc2m/internal/provenance"
	"vc2m/internal/report"
	"vc2m/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the explain golden files")

// TestExplainGolden locks down the `vc2m-report explain` output for one
// admitted and one rejected taskset. Each case builds its document twice
// from independent identically-seeded runs and asserts byte-stability
// before comparing against testdata/*.golden; regenerate the goldens with
// `go test ./internal/report -update` after an intentional format change.
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name    string
		util    float64
		seed    int64
		subject string
	}{
		{"explain_admitted", 1.0, 7, "t1"},
		{"explain_rejected", 4.5, 3, "system"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc := buildRunDoc(t, c.util, c.seed)
			again := buildRunDoc(t, c.util, c.seed)
			da, err := report.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			db, err := report.Marshal(again)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(da, db) {
				t.Fatal("two identically-seeded runs produced different documents; explain output would not be stable")
			}

			got := report.Explain(doc, c.subject)
			golden := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/report -update` to create the goldens)", err)
			}
			if got != string(want) {
				t.Errorf("explain output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestSweepExplainNamesBindingResource is the acceptance check for the
// rejection diagnosis: in a 50-taskset sweep at an infeasible utilization,
// every rejected case's explain output must name at least one binding
// resource.
func TestSweepExplainNamesBindingResource(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep acceptance check skipped in -short mode")
	}
	prov := provenance.New()
	res, err := experiment.RunSchedulability(experiment.SchedConfig{
		Platform:         model.PlatformA,
		Dist:             workload.Uniform,
		UtilMin:          2.0,
		UtilMax:          2.0,
		UtilStep:         1, // single point
		TasksetsPerPoint: 50,
		Seed:             1,
		Provenance:       prov,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := report.BuildSweep(report.SweepInput{
		Title: "acceptance sweep", Seed: 1, Platform: model.PlatformA,
		Sweep: res.ReportSweep(), Provenance: prov,
	})
	if err := report.Validate(doc); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rejected := 0
	for _, d := range doc.Decisions {
		if d.Stage != provenance.StageSweep || d.Accepted {
			continue
		}
		rejected++
		out := report.Explain(doc, d.Subject)
		if !strings.Contains(out, "binding resource(s):") {
			t.Fatalf("rejected case %s (-> %s): explain names no binding resource:\n%s", d.Subject, d.Target, out)
		}
	}
	if rejected == 0 {
		t.Fatal("sweep at utilization 2.0 rejected nothing; the acceptance check did not exercise the diagnosis")
	}
	t.Logf("%d rejected sweep cases, all with a named binding resource", rejected)
}
