// Package rngutil wraps math/rand with the small set of deterministic
// sampling helpers used by workload generation and the allocation
// heuristics. Every experiment in this repository is seeded, so identical
// invocations reproduce identical tasksets, cluster permutations and
// therefore identical figures.
package rngutil

import (
	"math/rand"
)

// RNG is a deterministic random source. The zero value is not usable; call
// New.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Uniform returns a sample from the uniform distribution on [lo, hi).
// It panics if hi < lo.
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rngutil: Uniform with hi < lo")
	}
	if hi == lo { //vc2m:floateq exact empty-interval guard
		return lo
	}
	return lo + g.r.Float64()*(hi-lo)
}

// Bimodal returns a sample drawn uniformly from [lo1, hi1) with probability
// pLight and uniformly from [lo2, hi2) otherwise. The schedulability
// experiments use it for the bimodal light/medium/heavy utilization
// distributions.
func (g *RNG) Bimodal(lo1, hi1, lo2, hi2, pLight float64) float64 {
	if g.r.Float64() < pLight {
		return g.Uniform(lo1, hi1)
	}
	return g.Uniform(lo2, hi2)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int {
	return g.r.Intn(n)
}

// Int63 returns a non-negative pseudo-random int64.
func (g *RNG) Int63() int64 {
	return g.r.Int63()
}

// Float64 returns a sample from [0, 1).
func (g *RNG) Float64() float64 {
	return g.r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	return g.r.Perm(n)
}

// Choice returns a uniformly chosen index weighted by the given
// non-negative weights. If all weights are zero it falls back to a uniform
// choice. It panics on an empty slice.
func (g *RNG) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("rngutil: Choice on empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.Intn(len(weights))
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using swap, like rand.Shuffle.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.r.Shuffle(n, swap)
}

// Split derives a child RNG whose stream is independent of subsequent draws
// from g. Experiments use it to give each taskset its own stream so that
// adding a solution does not perturb workload generation.
func (g *RNG) Split() *RNG {
	return New(g.r.Int63())
}
