package rngutil

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	g := New(7)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(0.1, 0.4)
		if x < 0.1 || x >= 0.4 {
			t.Fatalf("Uniform(0.1, 0.4) = %v out of range", x)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	g := New(7)
	if x := g.Uniform(3, 3); x != 3 {
		t.Errorf("Uniform(3,3) = %v, want 3", x)
	}
}

func TestUniformPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uniform(1, 0) did not panic")
		}
	}()
	New(1).Uniform(1, 0)
}

func TestBimodalRanges(t *testing.T) {
	g := New(11)
	light, heavy := 0, 0
	for i := 0; i < 10000; i++ {
		x := g.Bimodal(0.1, 0.4, 0.5, 0.9, 8.0/9.0)
		switch {
		case x >= 0.1 && x < 0.4:
			light++
		case x >= 0.5 && x < 0.9:
			heavy++
		default:
			t.Fatalf("Bimodal sample %v outside both modes", x)
		}
	}
	frac := float64(light) / 10000
	if frac < 0.85 || frac > 0.93 {
		t.Errorf("light fraction = %v, want approx 8/9", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(3)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestChoiceWeighted(t *testing.T) {
	g := New(5)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[g.Choice([]float64{1, 2, 1})]++
	}
	// Middle entry has weight 2/4 = 0.5.
	frac := float64(counts[1]) / 30000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("weighted choice fraction = %v, want approx 0.5", frac)
	}
}

func TestChoiceZeroWeightsUniform(t *testing.T) {
	g := New(5)
	counts := [4]int{}
	for i := 0; i < 4000; i++ {
		counts[g.Choice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("zero-weight Choice never picked index %d", i)
		}
	}
}

func TestChoiceNegativeWeightIgnored(t *testing.T) {
	g := New(9)
	for i := 0; i < 1000; i++ {
		if idx := g.Choice([]float64{-5, 1, 0}); idx != 1 {
			t.Fatalf("Choice picked index %d with zero/negative weight", idx)
		}
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choice(nil) did not panic")
		}
	}()
	New(1).Choice(nil)
}

func TestSplitIndependence(t *testing.T) {
	g1 := New(99)
	child1 := g1.Split()
	seq1 := []float64{child1.Float64(), child1.Float64()}

	// Recreate and interleave extra draws from the parent after splitting;
	// the child stream must be unchanged.
	g2 := New(99)
	child2 := g2.Split()
	g2.Float64()
	g2.Float64()
	seq2 := []float64{child2.Float64(), child2.Float64()}

	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("child stream perturbed by parent draws at %d", i)
		}
	}
}

func TestShuffle(t *testing.T) {
	g := New(4)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestIntn(t *testing.T) {
	g := New(8)
	for i := 0; i < 1000; i++ {
		if v := g.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}
