package interference

import (
	"testing"

	"vc2m/internal/parsec"
)

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.OpsPerTask = 30000
	return cfg
}

func bench(t *testing.T, name string) parsec.Benchmark {
	t.Helper()
	bm, err := parsec.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return bm
}

func TestCoRunErrors(t *testing.T) {
	cfg := fastCfg()
	if _, err := CoRun(cfg, nil, false, nil, nil, 1); err == nil {
		t.Error("empty benchmark list accepted")
	}
	if _, err := CoRun(cfg, []parsec.Benchmark{bench(t, "canneal")}, true, nil, nil, 1); err == nil {
		t.Error("isolation without cache counts accepted")
	}
}

func TestSoloDeterministic(t *testing.T) {
	cfg := fastCfg()
	a, err := CoRun(cfg, []parsec.Benchmark{bench(t, "dedup")}, false, nil, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoRun(cfg, []parsec.Benchmark{bench(t, "dedup")}, false, nil, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeMs[0] != b.TimeMs[0] {
		t.Errorf("same seed produced different times: %v vs %v", a.TimeMs[0], b.TimeMs[0])
	}
}

func TestInterferenceInflatesTime(t *testing.T) {
	// Co-running with streaming interferers and no isolation must be
	// slower than running alone.
	cfg := fastCfg()
	bm := bench(t, "canneal")
	solo, err := CoRun(cfg, []parsec.Benchmark{bm}, false, nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	bms := []parsec.Benchmark{bm, bench(t, "streamcluster"), bench(t, "streamcluster"), bench(t, "streamcluster")}
	shared, err := CoRun(cfg, bms, false, nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if shared.TimeMs[0] <= solo.TimeMs[0]*1.05 {
		t.Errorf("shared time %v not meaningfully above solo %v", shared.TimeMs[0], solo.TimeMs[0])
	}
	if shared.MissRate[0] < solo.MissRate[0] {
		t.Errorf("co-runners should not reduce the miss rate: %v vs %v",
			shared.MissRate[0], solo.MissRate[0])
	}
}

func TestIsolationReducesInterference(t *testing.T) {
	// The Section 3.3 headline: vC2M isolation reduces the WCET relative
	// to unregulated co-running.
	cfg := fastCfg()
	row, err := Study(cfg, "canneal", 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if row.IsolatedMs >= row.SharedMs {
		t.Errorf("isolated time %v not below shared time %v", row.IsolatedMs, row.SharedMs)
	}
	if row.SoloMs > row.SharedMs {
		t.Errorf("solo time %v above shared time %v", row.SoloMs, row.SharedMs)
	}
}

func TestComputeBoundBarelyAffected(t *testing.T) {
	// swaptions is compute-bound: interference must inflate it far less
	// than a memory-bound benchmark — "the exact relationship varies
	// across benchmarks".
	cfg := fastCfg()
	sw, err := Study(cfg, "swaptions", 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Study(cfg, "streamcluster", 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if sw.SharedSlowdown() >= sc.SharedSlowdown() {
		t.Errorf("compute-bound slowdown %v should be below memory-bound %v",
			sw.SharedSlowdown(), sc.SharedSlowdown())
	}
	// Under vC2M isolation the compute-bound benchmark recovers most of
	// the loss (its small working set fits in its partition; the residual
	// is cold-miss latency under bus contention).
	if sw.IsolatedSlowdown() >= sw.SharedSlowdown() {
		t.Errorf("swaptions isolated slowdown %v not below shared %v",
			sw.IsolatedSlowdown(), sw.SharedSlowdown())
	}
	if sw.IsolatedSlowdown() > 2.0 {
		t.Errorf("swaptions isolated slowdown %v, want < 2.0", sw.IsolatedSlowdown())
	}
}

func TestRegulationThrottlesInIsolatedMode(t *testing.T) {
	cfg := fastCfg()
	cfg.BWBudget = 5 // very tight: streaming co-runners must stall
	bms := []parsec.Benchmark{bench(t, "streamcluster"), bench(t, "streamcluster")}
	res, err := CoRun(cfg, bms, true, []int{10, 10}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttles[0] == 0 && res.Throttles[1] == 0 {
		t.Error("tight BW budget produced no throttles")
	}
}

func TestStudyRowRatios(t *testing.T) {
	row := StudyRow{Benchmark: "x", SoloMs: 2, SharedMs: 6, IsolatedMs: 3}
	if row.SharedSlowdown() != 3 {
		t.Errorf("SharedSlowdown = %v, want 3", row.SharedSlowdown())
	}
	if row.IsolatedSlowdown() != 1.5 {
		t.Errorf("IsolatedSlowdown = %v, want 1.5", row.IsolatedSlowdown())
	}
}

func TestStudyUnknownBenchmark(t *testing.T) {
	if _, err := Study(fastCfg(), "quake", 4, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
