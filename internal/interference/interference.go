// Package interference is the workbench for the paper's Section 3.3 study
// ("Impact of resource isolation on WCET"): it co-runs synthetic
// benchmark workloads on the shared-cache and memory-bus models and
// measures each task's effective execution time with and without vC2M's
// cache partitioning and bandwidth regulation.
//
// The paper runs PARSEC binaries on a Xen/vCAT prototype; here each
// benchmark becomes a synthetic memory-access process derived from its
// profile parameters: a working set of cache lines accessed uniformly at
// random (the streaming/pointer-chasing behaviour of the memory-bound
// PARSEC codes), interleaved with pure compute. Co-runners on other cores
// either share the whole cache and bus (no isolation) or receive disjoint
// cache partitions and per-core bandwidth budgets (vC2M isolation). The
// qualitative results the paper reports — isolation reduces WCET, the
// magnitude varies per benchmark, memory-bound codes gain most — emerge
// from the models directly.
package interference

import (
	"fmt"

	"vc2m/internal/cache"
	"vc2m/internal/membus"
	"vc2m/internal/parsec"
	"vc2m/internal/rngutil"
	"vc2m/internal/timeunit"
)

// Config parameterizes the workbench.
type Config struct {
	// Cache is the shared LLC geometry. The way count is the platform's
	// partition count.
	Cache cache.Config
	// Bus models per-miss latency under contention.
	Bus membus.Bus
	// HitLatency is the cost of a cache hit in ticks.
	HitLatency timeunit.Ticks
	// ComputeLatency is the cost of one non-memory operation in ticks.
	ComputeLatency timeunit.Ticks
	// RegulationPeriod and BWBudget configure per-core bandwidth
	// regulation in the isolated configuration: a core that exceeds
	// BWBudget misses within a period stalls until the period ends.
	RegulationPeriod timeunit.Ticks
	BWBudget         int64
	// OpsPerTask is the number of operations each task executes.
	OpsPerTask int
}

// DefaultConfig provides a workbench sized like the evaluation platform's
// 20-partition LLC, with a DRAM-to-hit latency ratio of about 20x and
// strong bus contention.
func DefaultConfig() Config {
	return Config{
		Cache:            cache.DefaultConfig,
		Bus:              membus.Bus{BaseLatency: 20, ContentionFactor: 0.8},
		HitLatency:       1,
		ComputeLatency:   1,
		RegulationPeriod: timeunit.FromMillis(1),
		// A memory-bound core issues roughly 15-30 misses per 1 ms period
		// under these latencies, so a budget of 8 makes streaming
		// interferers spend a large fraction of each period throttled —
		// the even-share regime the paper's isolation measurements use.
		BWBudget:   8,
		OpsPerTask: 200000,
	}
}

// taskProc is one synthetic benchmark process.
type taskProc struct {
	bm       parsec.Benchmark
	rng      *rngutil.RNG
	wsLines  int
	memFrac  float64
	opsLeft  int
	clock    timeunit.Ticks
	misses   int64
	accesses int64
	// regulation state (isolated mode)
	periodMisses int64
	curPeriod    timeunit.Ticks
	stalledUntil timeunit.Ticks
}

// lineAddr returns a random line address within the task's working set,
// offset per core so that working sets are private (no sharing between
// co-runners, matching independent tasks).
func (t *taskProc) lineAddr(core int, lineSize int) uint64 {
	line := uint64(t.rng.Intn(t.wsLines))
	base := uint64(core) << 32
	return base + line*uint64(lineSize)
}

// Result reports per-core outcomes of one co-run.
type Result struct {
	// TimeMs is each core's execution time for its OpsPerTask operations,
	// in milliseconds.
	TimeMs []float64
	// MissRate is each core's cache miss rate.
	MissRate []float64
	// Throttles counts regulation stalls per core (isolated mode only).
	Throttles []int64
}

// CoRun executes one synthetic benchmark per core concurrently and returns
// per-core execution times. With isolate set, core i receives
// cacheCounts[i] dedicated cache partitions and a bandwidth budget of
// budgets[i] misses per regulation period (0 disables regulation for that
// core; a nil slice gives every core cfg.BWBudget); otherwise all cores
// share the full cache and no regulation applies. Cores progress in
// lockstep rounds (one operation per round), approximating concurrent
// execution; bus latency stretches with the number of cores actively
// issuing requests, so a throttled core stops interfering.
func CoRun(cfg Config, bms []parsec.Benchmark, isolate bool, cacheCounts []int, budgets []int64, seed int64) (*Result, error) {
	n := len(bms)
	if n == 0 {
		return nil, fmt.Errorf("interference: no benchmarks")
	}
	if isolate && len(cacheCounts) != n {
		return nil, fmt.Errorf("interference: %d cache counts for %d cores", len(cacheCounts), n)
	}
	if budgets == nil {
		budgets = make([]int64, n)
		for i := range budgets {
			budgets[i] = cfg.BWBudget
		}
	}
	if len(budgets) != n {
		return nil, fmt.Errorf("interference: %d budgets for %d cores", len(budgets), n)
	}
	llc, err := cache.New(cfg.Cache, n)
	if err != nil {
		return nil, err
	}
	if isolate {
		if err := llc.PartitionDisjoint(cacheCounts); err != nil {
			return nil, err
		}
	}

	root := rngutil.New(seed)
	procs := make([]*taskProc, n)
	for i, bm := range bms {
		wsLines := int(bm.WorkingSet * float64(cfg.Cache.Sets))
		if wsLines < 1 {
			wsLines = 1
		}
		procs[i] = &taskProc{
			bm:      bm,
			rng:     root.Split(),
			wsLines: wsLines,
			memFrac: 1 - bm.CPUFrac,
			opsLeft: cfg.OpsPerTask,
		}
	}

	res := &Result{
		TimeMs:    make([]float64, n),
		MissRate:  make([]float64, n),
		Throttles: make([]int64, n),
	}

	// Execute in simulated-time order: always advance the core whose clock
	// is earliest (a stalled core's effective time is its stall end). Bus
	// contention at an instant counts the cores that are unfinished and
	// not inside a stall window at that instant — so a throttled core
	// genuinely stops interfering, which is the isolation effect under
	// study.
	effTime := func(p *taskProc) timeunit.Ticks {
		if p.stalledUntil > p.clock {
			return p.stalledUntil
		}
		return p.clock
	}
	for {
		core := -1
		for i, p := range procs {
			if p.opsLeft <= 0 {
				continue
			}
			if core == -1 || effTime(p) < effTime(procs[core]) {
				core = i
			}
		}
		if core == -1 {
			break
		}
		p := procs[core]
		if p.stalledUntil > p.clock {
			p.clock = p.stalledUntil
			p.periodMisses = 0
		}
		p.opsLeft--
		p.clock += cfg.ComputeLatency
		if p.rng.Float64() >= p.memFrac {
			continue
		}
		p.accesses++
		if llc.Access(core, p.lineAddr(core, cfg.Cache.LineSize)) {
			p.clock += cfg.HitLatency
			continue
		}
		active := 1
		for j, q := range procs {
			if j != core && q.opsLeft > 0 && q.stalledUntil <= p.clock {
				active++
			}
		}
		p.misses++
		p.clock += cfg.Bus.Latency(active)
		if isolate && budgets[core] > 0 {
			// Budgets replenish at every regulation-period boundary.
			if period := p.clock / cfg.RegulationPeriod; period != p.curPeriod {
				p.curPeriod = period
				p.periodMisses = 0
			}
			p.periodMisses++
			if p.periodMisses >= budgets[core] {
				// Throttle until the next regulation period boundary.
				next := p.clock - p.clock%cfg.RegulationPeriod + cfg.RegulationPeriod
				p.stalledUntil = next
				res.Throttles[core]++
			}
		}
	}

	for i, p := range procs {
		res.TimeMs[i] = p.clock.Millis()
		if p.accesses > 0 {
			res.MissRate[i] = float64(p.misses) / float64(p.accesses)
		}
	}
	return res, nil
}

// StudyRow is one benchmark's Section 3.3 measurement.
type StudyRow struct {
	Benchmark string
	// SoloMs is the execution time running alone with the full cache.
	SoloMs float64
	// SharedMs is the execution time co-running with interferers and no
	// isolation.
	SharedMs float64
	// IsolatedMs is the execution time co-running under vC2M isolation
	// (disjoint partitions + BW regulation).
	IsolatedMs float64
}

// SharedSlowdown returns SharedMs/SoloMs.
func (r StudyRow) SharedSlowdown() float64 { return r.SharedMs / r.SoloMs }

// IsolatedSlowdown returns IsolatedMs/SoloMs.
func (r StudyRow) IsolatedSlowdown() float64 { return r.IsolatedMs / r.SoloMs }

// Study reproduces the Section 3.3 experiment for the named benchmark: it
// measures the benchmark alone, co-running with nCores-1 streaming
// interferers without isolation, and co-running under vC2M isolation. The
// interferer is streamcluster, the most memory-aggressive profile. Under
// isolation, cache partitions are split evenly and the interferers are
// capped at the configured per-core budget while the measured task's
// budget is sized to its own demand (unregulated here), exactly as the
// vC2M allocator would provision the core whose WCET is being profiled.
func Study(cfg Config, bmName string, nCores int, seed int64) (StudyRow, error) {
	bm, err := parsec.ByName(bmName)
	if err != nil {
		return StudyRow{}, err
	}
	interferer, err := parsec.ByName("streamcluster")
	if err != nil {
		return StudyRow{}, err
	}

	solo, err := CoRun(cfg, []parsec.Benchmark{bm}, false, nil, nil, seed)
	if err != nil {
		return StudyRow{}, err
	}

	bms := make([]parsec.Benchmark, nCores)
	bms[0] = bm
	for i := 1; i < nCores; i++ {
		bms[i] = interferer
	}
	shared, err := CoRun(cfg, bms, false, nil, nil, seed)
	if err != nil {
		return StudyRow{}, err
	}

	counts := make([]int, nCores)
	per := cfg.Cache.Ways / nCores
	if per < 1 {
		per = 1
	}
	for i := range counts {
		counts[i] = per
	}
	budgets := make([]int64, nCores)
	for i := 1; i < nCores; i++ {
		budgets[i] = cfg.BWBudget
	}
	isolated, err := CoRun(cfg, bms, true, counts, budgets, seed)
	if err != nil {
		return StudyRow{}, err
	}

	return StudyRow{
		Benchmark:  bmName,
		SoloMs:     solo.TimeMs[0],
		SharedMs:   shared.TimeMs[0],
		IsolatedMs: isolated.TimeMs[0],
	}, nil
}
