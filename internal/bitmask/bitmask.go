// Package bitmask provides the capacity-bitmask helpers shared by the
// cache simulator and the virtual CAT layer: CAT capacity bitmasks (CBMs)
// are sets of ways encoded as bits, required by hardware to be non-empty
// and contiguous.
package bitmask

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Mask is a capacity bitmask carried across a wire boundary. On the wire
// it is the canonical lowercase hex string the CAT MSR tooling uses
// ("0xf0"), never a JSON number: 64-bit masks exceed the 53-bit integer
// range that survives float64 JSON readers, so a numeric encoding would
// be silently lossy. Encode→decode→re-encode is byte-identical for every
// value, which the round-trip tests assert.
type Mask uint64

// String returns the canonical lowercase hex form, e.g. "0xf0".
func (m Mask) String() string { return "0x" + strconv.FormatUint(uint64(m), 16) }

// MarshalJSON renders the mask as its canonical hex string.
func (m Mask) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON parses the hex string form (with or without the 0x
// prefix). Numeric encodings are rejected: they are exactly the lossy
// form the string encoding exists to prevent.
func (m *Mask) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("bitmask: mask must be a hex JSON string like \"0xf0\", got %s", data)
	}
	s := strings.TrimPrefix(string(data[1:len(data)-1]), "0x")
	if s == "" {
		return fmt.Errorf("bitmask: empty mask string")
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("bitmask: invalid mask %s: %v", data, err)
	}
	*m = Mask(v)
	return nil
}

// Full returns a mask with the n lowest bits set. n must be in [0, 64].
func Full(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Contiguous reports whether the set bits of m form one contiguous run.
// The empty mask is not contiguous (CAT rejects empty CBMs).
func Contiguous(m uint64) bool {
	if m == 0 {
		return false
	}
	shifted := m >> uint(bits.TrailingZeros64(m))
	return shifted&(shifted+1) == 0
}

// Count returns the number of set bits.
func Count(m uint64) int { return bits.OnesCount64(m) }

// Range returns a contiguous mask of count bits starting at bit base.
func Range(base, count int) uint64 {
	return Full(count) << uint(base)
}

// Within reports whether every set bit of m lies below bit n.
func Within(m uint64, n int) bool {
	return m&^Full(n) == 0
}
