// Package bitmask provides the capacity-bitmask helpers shared by the
// cache simulator and the virtual CAT layer: CAT capacity bitmasks (CBMs)
// are sets of ways encoded as bits, required by hardware to be non-empty
// and contiguous.
package bitmask

import "math/bits"

// Full returns a mask with the n lowest bits set. n must be in [0, 64].
func Full(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Contiguous reports whether the set bits of m form one contiguous run.
// The empty mask is not contiguous (CAT rejects empty CBMs).
func Contiguous(m uint64) bool {
	if m == 0 {
		return false
	}
	shifted := m >> uint(bits.TrailingZeros64(m))
	return shifted&(shifted+1) == 0
}

// Count returns the number of set bits.
func Count(m uint64) int { return bits.OnesCount64(m) }

// Range returns a contiguous mask of count bits starting at bit base.
func Range(base, count int) uint64 {
	return Full(count) << uint(base)
}

// Within reports whether every set bit of m lies below bit n.
func Within(m uint64, n int) bool {
	return m&^Full(n) == 0
}
