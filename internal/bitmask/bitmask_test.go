package bitmask

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestFull(t *testing.T) {
	cases := map[int]uint64{
		0:  0,
		1:  0b1,
		4:  0b1111,
		64: ^uint64(0),
		-3: 0,
		70: ^uint64(0),
	}
	for n, want := range cases {
		if got := Full(n); got != want {
			t.Errorf("Full(%d) = %#x, want %#x", n, got, want)
		}
	}
}

func TestContiguous(t *testing.T) {
	cases := map[uint64]bool{
		0:             false,
		0b1:           true,
		0b110:         true,
		0b101:         false,
		0b111100:      true,
		1 << 63:       true,
		(1 << 63) | 1: false,
	}
	for m, want := range cases {
		if got := Contiguous(m); got != want {
			t.Errorf("Contiguous(%#x) = %v, want %v", m, got, want)
		}
	}
}

func TestRange(t *testing.T) {
	if got := Range(3, 2); got != 0b11000 {
		t.Errorf("Range(3,2) = %#b, want 0b11000", got)
	}
	if got := Range(0, 0); got != 0 {
		t.Errorf("Range(0,0) = %#x, want 0", got)
	}
}

func TestRangeAlwaysContiguousProperty(t *testing.T) {
	f := func(baseRaw, countRaw uint8) bool {
		base := int(baseRaw % 60)
		count := int(countRaw%4) + 1
		m := Range(base, count)
		return Contiguous(m) && Count(m) == count || base+count > 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCount(t *testing.T) {
	if Count(0b1011) != 3 {
		t.Errorf("Count(0b1011) = %d, want 3", Count(0b1011))
	}
}

// TestMaskJSONByteIdentity: every mask — including full 64-bit values
// that would be truncated by a float64 JSON reader — survives
// encode → decode → re-encode with identical bytes.
func TestMaskJSONByteIdentity(t *testing.T) {
	for _, m := range []Mask{0, 1, 0xf0, 1 << 63, ^Mask(0), Mask(1<<53) + 1} {
		first, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Mask
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("decode %s: %v", first, err)
		}
		if back != m {
			t.Fatalf("mask %#x decoded as %#x", uint64(m), uint64(back))
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(second) {
			t.Fatalf("mask re-encoding drifted: %s vs %s", first, second)
		}
	}
}

func TestMaskJSONRejectsLossyForms(t *testing.T) {
	for _, bad := range []string{`240`, `""`, `"zz"`, `"0x"`, `null`, `"0x1ffffffffffffffff"`} {
		var m Mask
		if err := json.Unmarshal([]byte(bad), &m); err == nil {
			t.Errorf("accepted lossy/invalid mask encoding %s", bad)
		}
	}
}

func TestMaskJSONAcceptsBareHex(t *testing.T) {
	var m Mask
	if err := json.Unmarshal([]byte(`"f0"`), &m); err != nil {
		t.Fatal(err)
	}
	if m != 0xf0 {
		t.Fatalf("bare hex parsed as %#x", uint64(m))
	}
}

func TestWithin(t *testing.T) {
	if !Within(0b111, 3) {
		t.Error("0b111 should be within 3 bits")
	}
	if Within(0b1000, 3) {
		t.Error("0b1000 should not be within 3 bits")
	}
	if !Within(0, 0) {
		t.Error("empty mask is within any width")
	}
}
