package membus

import (
	"testing"
	"testing/quick"

	"vc2m/internal/timeunit"
)

func mkReg(t *testing.T, budgets ...int64) *Regulator {
	t.Helper()
	r, err := New(Config{Period: timeunit.FromMillis(1), Budgets: budgets})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	good := Config{Period: 1000, Budgets: []int64{100}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Period: 0, Budgets: []int64{100}},
		{Period: 1000, Budgets: nil},
		{Period: 1000, Budgets: []int64{-1}},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestBudgetEnforcement(t *testing.T) {
	r := mkReg(t, 3)
	for i := 0; i < 3; i++ {
		if !r.Request(0) {
			t.Fatalf("request %d within budget denied", i)
		}
	}
	if !r.Throttled(0) {
		t.Error("core should be throttled after exhausting its budget")
	}
	if r.Request(0) {
		t.Error("request while throttled should be denied")
	}
	st := r.Stats(0)
	if st.Requests != 3 || st.Throttles != 1 || st.DeniedRequests != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestThrottleHandlerInvoked(t *testing.T) {
	r := mkReg(t, 2)
	var throttledCore = -1
	r.OnThrottle = func(core int) {
		throttledCore = core
		if !r.Throttled(core) {
			t.Error("handler must run after the core is marked throttled")
		}
	}
	r.Request(0)
	if throttledCore != -1 {
		t.Error("handler fired before overflow")
	}
	r.Request(0)
	if throttledCore != 0 {
		t.Errorf("handler got core %d, want 0", throttledCore)
	}
}

func TestReplenishRestoresBudgets(t *testing.T) {
	r := mkReg(t, 2, 5)
	r.Request(0)
	r.Request(0) // throttles core 0
	r.Request(1)
	if !r.Throttled(0) || r.Throttled(1) {
		t.Fatal("unexpected throttle state")
	}
	var replenished []int
	var wasThrottledFlags []bool
	r.OnReplenish = func(core int, wasThrottled bool) {
		replenished = append(replenished, core)
		wasThrottledFlags = append(wasThrottledFlags, wasThrottled)
	}
	r.Replenish()
	if r.Throttled(0) {
		t.Error("core 0 still throttled after replenish")
	}
	if r.Remaining(0) != 2 || r.Remaining(1) != 5 {
		t.Errorf("remaining = %d, %d, want 2, 5", r.Remaining(0), r.Remaining(1))
	}
	if len(replenished) != 2 || !wasThrottledFlags[0] || wasThrottledFlags[1] {
		t.Errorf("replenish callbacks: cores %v throttled-flags %v", replenished, wasThrottledFlags)
	}
	if !r.Request(0) {
		t.Error("request after replenish denied")
	}
}

func TestOverflowStatusRegister(t *testing.T) {
	r := mkReg(t, 1, 1, 100)
	r.Request(0)
	r.Request(2)
	if r.OverflowStatus() != 0b001 {
		t.Errorf("overflow status = %#b, want 0b001", r.OverflowStatus())
	}
	r.Request(1)
	if r.OverflowStatus() != 0b011 {
		t.Errorf("overflow status = %#b, want 0b011", r.OverflowStatus())
	}
	r.Replenish()
	if r.OverflowStatus() != 0 {
		t.Error("overflow status not cleared by replenish")
	}
}

func TestZeroBudgetDisablesRegulation(t *testing.T) {
	r := mkReg(t, 0)
	for i := 0; i < 10000; i++ {
		if !r.Request(0) {
			t.Fatal("unregulated core was throttled")
		}
	}
	if r.Throttled(0) {
		t.Error("unregulated core marked throttled")
	}
}

func TestThrottledMask(t *testing.T) {
	r := mkReg(t, 1, 1, 1)
	r.Request(1)
	if r.ThrottledMask() != 0b010 {
		t.Errorf("mask = %#b, want 0b010", r.ThrottledMask())
	}
}

func TestCoreNeverExceedsBudgetProperty(t *testing.T) {
	// The regulator's contract: granted requests per period never exceed
	// the budget, for any request pattern.
	f := func(pattern []uint8, budgetRaw uint8) bool {
		budget := int64(budgetRaw%50) + 1
		r, err := New(Config{Period: 1000, Budgets: []int64{budget, budget}})
		if err != nil {
			return false
		}
		granted := [2]int64{}
		for _, p := range pattern {
			core := int(p) % 2
			if r.Request(core) {
				granted[core]++
			}
			if p%17 == 0 {
				r.Replenish()
				granted = [2]int64{}
			}
			if granted[0] > budget || granted[1] > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	r := mkReg(t, 10, 20, 30)
	if r.Cores() != 3 {
		t.Errorf("Cores = %d, want 3", r.Cores())
	}
	if r.Period() != 1000 {
		t.Errorf("Period = %v, want 1000 (1 ms)", r.Period())
	}
}

func TestRequestNWithinBudget(t *testing.T) {
	r := mkReg(t, 100)
	if granted := r.RequestN(0, 40); granted != 40 {
		t.Errorf("granted %d, want 40", granted)
	}
	if r.Throttled(0) {
		t.Error("core throttled within budget")
	}
	if r.Remaining(0) != 60 {
		t.Errorf("remaining = %d, want 60", r.Remaining(0))
	}
}

func TestRequestNOverflowsOnce(t *testing.T) {
	r := mkReg(t, 100)
	throttles := 0
	r.OnThrottle = func(core int) { throttles++ }
	if granted := r.RequestN(0, 250); granted != 100 {
		t.Errorf("granted %d, want 100 (budget)", granted)
	}
	if throttles != 1 {
		t.Errorf("throttle handler fired %d times, want 1 for the whole batch", throttles)
	}
	st := r.Stats(0)
	if st.Requests != 100 || st.DeniedRequests != 150 {
		t.Errorf("stats = %+v, want 100 granted / 150 denied", st)
	}
	// Further batches are denied outright.
	if granted := r.RequestN(0, 5); granted != 0 {
		t.Errorf("granted %d while throttled, want 0", granted)
	}
}

func TestRequestNEdgeCases(t *testing.T) {
	r := mkReg(t, 0, 100) // core 0 unregulated
	if granted := r.RequestN(0, 1000); granted != 1000 {
		t.Errorf("unregulated core granted %d, want 1000", granted)
	}
	if granted := r.RequestN(1, 0); granted != 0 {
		t.Errorf("zero batch granted %d, want 0", granted)
	}
	if granted := r.RequestN(1, -5); granted != 0 {
		t.Errorf("negative batch granted %d, want 0", granted)
	}
}

func TestResetStats(t *testing.T) {
	r := mkReg(t, 10)
	r.Request(0)
	r.ResetStats()
	if st := r.Stats(0); st.Requests != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestBusLatency(t *testing.T) {
	b := Bus{BaseLatency: 100, ContentionFactor: 0.5}
	if got := b.Latency(1); got != 100 {
		t.Errorf("Latency(1) = %v, want 100", got)
	}
	if got := b.Latency(3); got != 200 {
		t.Errorf("Latency(3) = %v, want 200 (1 + 0.5*2)", got)
	}
	if got := b.Latency(0); got != 100 {
		t.Errorf("Latency(0) = %v, want clamped to 100", got)
	}
}

func TestBusLatencyMonotone(t *testing.T) {
	b := Bus{BaseLatency: 80, ContentionFactor: 0.3}
	prev := timeunit.Ticks(0)
	for n := 1; n <= 8; n++ {
		cur := b.Latency(n)
		if cur < prev {
			t.Errorf("latency decreased with more contenders at n=%d", n)
		}
		prev = cur
	}
}
