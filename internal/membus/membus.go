// Package membus models the memory bus and vC2M's memory-bandwidth
// regulator (Section 3.2, Fig. 1).
//
// The regulator reproduces the paper's mechanism event-for-event, with the
// hardware pieces replaced by explicit state:
//
//   - Each core has a performance counter (PC) counting its memory requests
//     (last-level cache misses). The PC is preset so that it "overflows"
//     when the core exhausts its per-period bandwidth budget.
//   - On overflow, the (simulated) LAPIC delivers an interrupt to the BW
//     enforcer handler on that core (steps 1-2 in Fig. 1), which asks the
//     hypervisor scheduler to de-schedule the core's current VCPU and marks
//     the core throttled in a shared bitmask (step 3).
//   - A periodic timer drives the BW refiller, which replenishes every
//     core's budget, clears the overflow status, and invokes the scheduler
//     on previously throttled cores (step 4).
//
// Unlike MemGuard, throttled cores stay idle rather than busy-waiting —
// the hypervisor simply schedules nothing on them — matching vC2M's
// energy-efficiency argument.
//
// The regulator is a pure state machine; package hypersim wires its
// Replenish to a periodic simulation event and its handlers to the
// scheduler.
package membus

import (
	"fmt"

	"vc2m/internal/timeunit"
)

// Config parameterizes the regulator.
type Config struct {
	// Period is the regulation period (the paper uses a small configurable
	// interval, e.g. 1 ms).
	Period timeunit.Ticks
	// Budgets is the per-core bandwidth budget in memory requests per
	// regulation period. A zero budget disables regulation for that core
	// (the core is never throttled).
	Budgets []int64
}

// Validate reports an error for inconsistent configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("membus: regulation period %v, need > 0", c.Period)
	}
	if len(c.Budgets) == 0 {
		return fmt.Errorf("membus: no cores configured")
	}
	for i, b := range c.Budgets {
		if b < 0 {
			return fmt.Errorf("membus: core %d budget %d, need >= 0", i, b)
		}
	}
	return nil
}

// Stats counts per-core regulator activity.
type Stats struct {
	// Requests is the total number of memory requests issued.
	Requests uint64
	// Throttles counts budget-overflow events (PC overflow interrupts).
	Throttles uint64
	// DeniedRequests counts requests attempted while throttled (these
	// indicate a scheduler bug: a throttled core must not execute).
	DeniedRequests uint64
}

// Regulator is the per-core bandwidth regulation state machine.
type Regulator struct {
	cfg       Config
	remaining []int64
	throttled uint64 // bitmask of throttled cores, as in Fig. 1
	overflow  uint64 // overflow status register
	stats     []Stats

	// OnThrottle, if non-nil, is the BW enforcer handler invoked when a
	// core exhausts its budget (after the core is marked throttled). The
	// hypervisor uses it to de-schedule the core's current VCPU.
	OnThrottle func(core int)
	// OnReplenish, if non-nil, is invoked for each core by Replenish after
	// budgets are reset (after the core is un-throttled). The hypervisor
	// uses it to schedule a VCPU back onto previously throttled cores.
	OnReplenish func(core int, wasThrottled bool)
}

// New creates a regulator with full budgets.
func New(cfg Config) (*Regulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Regulator{
		cfg:       cfg,
		remaining: make([]int64, len(cfg.Budgets)),
		stats:     make([]Stats, len(cfg.Budgets)),
	}
	copy(r.remaining, cfg.Budgets)
	return r, nil
}

// Cores returns the number of regulated cores.
func (r *Regulator) Cores() int { return len(r.remaining) }

// Period returns the regulation period.
func (r *Regulator) Period() timeunit.Ticks { return r.cfg.Period }

// Throttled reports whether the core is currently throttled.
func (r *Regulator) Throttled(core int) bool {
	return r.throttled&(1<<uint(core)) != 0
}

// ThrottledMask returns the bitmask of throttled cores.
func (r *Regulator) ThrottledMask() uint64 { return r.throttled }

// Remaining returns the core's remaining budget in this period.
func (r *Regulator) Remaining(core int) int64 { return r.remaining[core] }

// Request records one memory request from the core and returns whether the
// core may proceed. When the request exhausts the budget, the core is
// marked throttled, the overflow status bit is set, and the BW enforcer
// handler runs — the PC-overflow-interrupt path of Fig. 1. Requests from an
// already-throttled core are denied and counted separately (a correctly
// integrated scheduler never issues them).
func (r *Regulator) Request(core int) bool {
	st := &r.stats[core]
	if r.Throttled(core) {
		st.DeniedRequests++
		return false
	}
	st.Requests++
	if r.cfg.Budgets[core] == 0 {
		return true // regulation disabled for this core
	}
	r.remaining[core]--
	if r.remaining[core] <= 0 {
		r.throttle(core)
	}
	return true
}

// RequestN records n memory requests from the core at once, the bulk form
// of Request used by the event-driven hypervisor simulator (which charges
// a whole execution slice's requests in one call). It returns the number of
// requests granted; if the budget is exhausted mid-batch the core throttles
// exactly once and the remainder is denied.
func (r *Regulator) RequestN(core int, n int64) int64 {
	if n <= 0 {
		return 0
	}
	st := &r.stats[core]
	if r.Throttled(core) {
		st.DeniedRequests += uint64(n)
		return 0
	}
	if r.cfg.Budgets[core] == 0 {
		st.Requests += uint64(n)
		return n
	}
	granted := n
	if granted > r.remaining[core] {
		granted = r.remaining[core]
	}
	st.Requests += uint64(granted)
	r.remaining[core] -= granted
	if r.remaining[core] <= 0 {
		r.throttle(core)
		st.DeniedRequests += uint64(n - granted)
	}
	return granted
}

// throttle is the BW enforcer path.
func (r *Regulator) throttle(core int) {
	r.throttled |= 1 << uint(core)
	r.overflow |= 1 << uint(core)
	r.stats[core].Throttles++
	if r.OnThrottle != nil {
		r.OnThrottle(core)
	}
}

// Replenish is the BW refiller: it resets every core's budget, clears the
// overflow status register, un-throttles all cores, and invokes
// OnReplenish per core. The hypervisor calls it at each regulation-period
// boundary.
func (r *Regulator) Replenish() {
	wasThrottled := r.throttled
	r.throttled = 0
	r.overflow = 0
	for core := range r.remaining {
		r.remaining[core] = r.cfg.Budgets[core]
		if r.OnReplenish != nil {
			r.OnReplenish(core, wasThrottled&(1<<uint(core)) != 0)
		}
	}
}

// OverflowStatus returns the overflow status register (bit per core whose
// PC overflowed in the current period).
func (r *Regulator) OverflowStatus() uint64 { return r.overflow }

// Stats returns the core's counters.
func (r *Regulator) Stats(core int) Stats { return r.stats[core] }

// ResetStats clears all counters.
func (r *Regulator) ResetStats() {
	for i := range r.stats {
		r.stats[i] = Stats{}
	}
}

// Bus models shared memory-bus contention for the interference workbench:
// with N cores actively issuing requests, each request's service time
// stretches by a queueing factor. It is intentionally simple — a linear
// M/D/1-flavored stretch — because the workbench only needs the
// qualitative effect (co-runners inflate memory latency; regulation bounds
// it).
type Bus struct {
	// BaseLatency is the uncontended per-request service time.
	BaseLatency timeunit.Ticks
	// ContentionFactor scales the extra latency per concurrent competitor:
	// latency(n) = BaseLatency * (1 + ContentionFactor*(n-1)).
	ContentionFactor float64
}

// Latency returns the per-request latency with n cores actively issuing
// requests (n >= 1).
func (b Bus) Latency(n int) timeunit.Ticks {
	if n < 1 {
		n = 1
	}
	stretch := 1 + b.ContentionFactor*float64(n-1)
	return b.BaseLatency.Scale(stretch)
}
