package parsec

import (
	"testing"

	"vc2m/internal/model"
)

func BenchmarkProfile(b *testing.B) {
	bm, err := ByName("streamcluster")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Profile(model.PlatformA)
	}
}

func BenchmarkTraceProfile(b *testing.B) {
	bm, err := ByName("ferret")
	if err != nil {
		b.Fatal(err)
	}
	cfg := TraceConfig{Ops: 10000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.TraceProfile(model.PlatformA, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
