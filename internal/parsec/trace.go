package parsec

import (
	"fmt"

	"vc2m/internal/cache"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
)

// TraceConfig parameterizes trace-driven profiling.
type TraceConfig struct {
	// Sets and LineSize describe the simulated LLC geometry; the way count
	// is taken from the platform's partition count. Zero values default to
	// 256 sets of 64-byte lines.
	Sets     int
	LineSize int
	// Ops is the number of operations simulated per cache allocation;
	// zero defaults to 50000.
	Ops int
	// HitLatency, MissLatency and ComputeLatency are per-event costs in
	// abstract cycles; zeros default to 1, 20 and 1.
	HitLatency     float64
	MissLatency    float64
	ComputeLatency float64
	// BWPerPartition is the number of misses one bandwidth partition can
	// serve per MissLatency-cycle; memory time is bounded below by
	// misses/(b*BWPerPartition) cycles * MissLatency. Zero defaults to
	// 0.35, which yields bandwidth saturation points comparable to the
	// analytic profiles.
	BWPerPartition float64
	// Seed drives the synthetic access stream.
	Seed int64
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Sets == 0 {
		c.Sets = 256
	}
	if c.LineSize == 0 {
		c.LineSize = 64
	}
	if c.Ops == 0 {
		c.Ops = 50000
	}
	if c.HitLatency == 0 { //vc2m:floateq unset-config sentinel
		c.HitLatency = 1
	}
	if c.MissLatency == 0 { //vc2m:floateq unset-config sentinel
		c.MissLatency = 20
	}
	if c.ComputeLatency == 0 { //vc2m:floateq unset-config sentinel
		c.ComputeLatency = 1
	}
	if c.BWPerPartition == 0 { //vc2m:floateq unset-config sentinel
		c.BWPerPartition = 0.35
	}
	return c
}

// TraceProfile derives the benchmark's slowdown table by measurement
// rather than from the closed-form model: for each cache allocation c it
// replays the benchmark's synthetic access stream (uniform references over
// its working set, interleaved with compute) through the way-partitioned
// LRU cache simulator and counts real misses; the bandwidth dimension then
// follows the standard latency-versus-bandwidth bound
//
//	memTime(c, b) = max(misses(c) * L, misses(c) / (b * R) * L)
//
// and the table is normalized to 1 at the full allocation. This is the
// "WCET values can be obtained by measurement on vC2M" path of Section
// 4.1, standing in for profiling real binaries on the prototype.
//
// Measured miss counts are monotonized (more ways never increases misses;
// residual sampling noise is clamped) so the returned table satisfies the
// model invariants the allocator relies on.
func (bm Benchmark) TraceProfile(p model.Platform, cfg TraceConfig) (*model.ResourceTable, error) {
	cfg = cfg.withDefaults()
	geo := cache.Config{Sets: cfg.Sets, Ways: p.C, LineSize: cfg.LineSize}
	if err := geo.Validate(); err != nil {
		return nil, err
	}

	wsLines := int(bm.WorkingSet * float64(cfg.Sets))
	if wsLines < 1 {
		wsLines = 1
	}
	memFrac := 1 - bm.CPUFrac

	// Measure misses at each way count with a fresh cache and an identical
	// access stream (same seed), so the c-dimension differences come from
	// capacity alone.
	misses := make([]float64, p.C+1)
	var computeOps, memOps float64
	for c := p.Cmin; c <= p.C; c++ {
		llc, err := cache.New(geo, 1)
		if err != nil {
			return nil, err
		}
		mask := uint64(1)<<uint(c) - 1
		if err := llc.SetMask(0, mask); err != nil {
			return nil, err
		}
		rng := rngutil.New(cfg.Seed)
		var cOps, mOps float64
		for op := 0; op < cfg.Ops; op++ {
			cOps++
			if rng.Float64() >= memFrac {
				continue
			}
			mOps++
			line := uint64(rng.Intn(wsLines))
			llc.Access(0, line*uint64(cfg.LineSize))
		}
		misses[c] = float64(llc.Stats(0).Misses)
		computeOps, memOps = cOps, mOps
	}
	// Monotonize: more ways never increases misses.
	for c := p.Cmin + 1; c <= p.C; c++ {
		if misses[c] > misses[c-1] {
			misses[c] = misses[c-1]
		}
	}
	_ = memOps

	time := func(c, b int) float64 {
		cpu := computeOps * cfg.ComputeLatency
		hits := (memOps - misses[c]) * cfg.HitLatency
		mem := misses[c] * cfg.MissLatency
		if bw := misses[c] / (float64(b) * cfg.BWPerPartition) * cfg.MissLatency; bw > mem {
			mem = bw
		}
		return cpu + hits + mem
	}

	ref := time(p.C, p.B)
	if ref <= 0 {
		return nil, fmt.Errorf("parsec: trace profile for %s produced non-positive reference time", bm.Name)
	}
	tab := model.NewResourceTableFor(p)
	tab.Fill(func(c, b int) float64 { return time(c, b) / ref })
	return tab, nil
}
