package parsec

import (
	"math"
	"testing"
	"testing/quick"

	"vc2m/internal/model"
)

func TestByName(t *testing.T) {
	bm, err := ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if bm.Name != "streamcluster" {
		t.Errorf("ByName returned %q", bm.Name)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(All) {
		t.Fatalf("Names() returned %d entries, want %d", len(names), len(All))
	}
	if names[0] != "blackscholes" || names[len(names)-1] != "x264" {
		t.Errorf("unexpected suite order: %v", names)
	}
}

func TestAllParametersSane(t *testing.T) {
	for _, bm := range All {
		if bm.CPUFrac <= 0 || bm.CPUFrac > 1 {
			t.Errorf("%s: CPUFrac %v outside (0,1]", bm.Name, bm.CPUFrac)
		}
		if bm.MissInflation < 1 {
			t.Errorf("%s: MissInflation %v below 1", bm.Name, bm.MissInflation)
		}
		if bm.WorkingSet <= 0 {
			t.Errorf("%s: WorkingSet %v not positive", bm.Name, bm.WorkingSet)
		}
		if bm.BWSat < 1 {
			t.Errorf("%s: BWSat %v below 1", bm.Name, bm.BWSat)
		}
		if bm.Gamma <= 0 {
			t.Errorf("%s: Gamma %v not positive", bm.Name, bm.Gamma)
		}
	}
}

func TestProfileReferenceIsOne(t *testing.T) {
	for _, p := range []model.Platform{model.PlatformA, model.PlatformB, model.PlatformC} {
		for _, bm := range All {
			prof := bm.Profile(p)
			if math.Abs(prof.Reference()-1) > 1e-12 {
				t.Errorf("%s on %s: s(C,B) = %v, want 1", bm.Name, p.Name, prof.Reference())
			}
		}
	}
}

func TestProfileMonotone(t *testing.T) {
	for _, p := range []model.Platform{model.PlatformA, model.PlatformC} {
		for _, bm := range All {
			if err := bm.Profile(p).CheckMonotone(); err != nil {
				t.Errorf("%s on %s: %v", bm.Name, p.Name, err)
			}
		}
	}
}

func TestProfileAtLeastOne(t *testing.T) {
	p := model.PlatformA
	for _, bm := range All {
		prof := bm.Profile(p)
		for c := p.Cmin; c <= p.C; c++ {
			for b := p.Bmin; b <= p.B; b++ {
				if prof.At(c, b) < 1-1e-12 {
					t.Fatalf("%s: slowdown %v < 1 at (%d,%d)", bm.Name, prof.At(c, b), c, b)
				}
			}
		}
	}
}

func TestMaxSlowdownDominatesProfile(t *testing.T) {
	// s^max (cache disabled, worst BW) must be at least the slowdown at
	// the worst allocatable configuration (Cmin, Bmin).
	p := model.PlatformA
	for _, bm := range All {
		smax := bm.MaxSlowdown(p)
		worst := bm.Profile(p).At(p.Cmin, p.Bmin)
		if smax < worst-1e-12 {
			t.Errorf("%s: MaxSlowdown %v below profile worst %v", bm.Name, smax, worst)
		}
	}
}

func TestMaxSlowdownMagnitudes(t *testing.T) {
	// Sanity band: disabling the cache entirely and taking worst-case
	// bandwidth inflates PARSEC execution times by roughly 2x-7x on the
	// reference machine. The suite mean near 4x is what positions the
	// baseline's schedulability knee around reference utilization 0.5.
	p := model.PlatformA
	var sum float64
	for _, bm := range All {
		smax := bm.MaxSlowdown(p)
		if smax < 1.5 || smax > 8.0 {
			t.Errorf("%s: MaxSlowdown %v outside plausibility band [1.5, 8]", bm.Name, smax)
		}
		sum += smax
	}
	mean := sum / float64(len(All))
	if mean < 3.0 || mean > 5.5 {
		t.Errorf("suite mean MaxSlowdown %v outside [3, 5.5]", mean)
	}
}

func TestComputeVsMemoryBoundOrdering(t *testing.T) {
	// The memory-bound benchmarks must be strictly more sensitive than the
	// compute-bound ones, which drives the clustering in the allocator.
	p := model.PlatformA
	sc, _ := ByName("streamcluster")
	sw, _ := ByName("swaptions")
	cn, _ := ByName("canneal")
	bs, _ := ByName("blackscholes")
	if sc.MaxSlowdown(p) <= sw.MaxSlowdown(p) {
		t.Error("streamcluster should be more sensitive than swaptions")
	}
	if cn.MaxSlowdown(p) <= bs.MaxSlowdown(p) {
		t.Error("canneal should be more sensitive than blackscholes")
	}
	// Compute-bound benchmarks are far less sensitive than memory-bound
	// ones (even they suffer ~2x with the cache disabled entirely, since
	// instruction fetches also miss).
	if sw.MaxSlowdown(p) > 2.0 {
		t.Errorf("swaptions MaxSlowdown = %v, want <= 2.0", sw.MaxSlowdown(p))
	}
	if prof := sw.Profile(p); prof.At(p.Cmin, p.Bmin) > 1.3 {
		t.Errorf("swaptions in-range slowdown = %v, want nearly flat (<= 1.3)",
			prof.At(p.Cmin, p.Bmin))
	}
}

func TestRawPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Raw(c, 0) did not panic")
		}
	}()
	All[0].Raw(5, 0)
}

func TestWCETTableScaling(t *testing.T) {
	p := model.PlatformA
	bm, _ := ByName("ferret")
	tab := bm.WCETTable(p, 7)
	if math.Abs(tab.Reference()-7) > 1e-9 {
		t.Errorf("WCETTable reference = %v, want 7", tab.Reference())
	}
	prof := bm.Profile(p)
	if math.Abs(tab.At(3, 2)-7*prof.At(3, 2)) > 1e-9 {
		t.Error("WCETTable is not a scaled profile")
	}
}

func TestMissFactorBounds(t *testing.T) {
	f := func(cRaw uint8) bool {
		for _, bm := range All {
			c := int(cRaw % 21)
			mu := bm.missFactor(c)
			if mu < 1-1e-12 || mu > bm.MissInflation+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBWFactorSaturates(t *testing.T) {
	for _, bm := range All {
		if got := bm.bwFactor(20); got != 1 {
			t.Errorf("%s: bwFactor(20) = %v, want 1", bm.Name, got)
		}
		if got := bm.bwFactor(1); math.Abs(got-bm.BWSat) > 1e-12 && bm.BWSat > 1 {
			t.Errorf("%s: bwFactor(1) = %v, want %v", bm.Name, got, bm.BWSat)
		}
	}
}
