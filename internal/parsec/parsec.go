// Package parsec provides synthetic stand-ins for the PARSEC benchmark
// profiles the paper measured on its Xen/vCAT prototype (Section 5.1).
//
// The paper profiles each benchmark's execution time under every cache/BW
// allocation (c, b) with c = 2..20 and b = 1..20, then derives a slowdown
// vector s_k(c,b) = e_k(c,b)/e_k(C,B) and a maximum slowdown factor
// s_k^max = e_k^max/e_k(C,B), where e_k^max is measured with the cache
// disabled and worst-case bandwidth. No such hardware is available here, so
// this package substitutes an analytic model whose parameters are set per
// benchmark from the published PARSEC characterization (Bienia et al.,
// PACT'08): compute-bound codes (swaptions, blackscholes) are nearly flat,
// streaming/memory-bound codes (streamcluster, canneal) are steep in both
// cache and bandwidth.
//
// The model decomposes normalized execution time into compute and memory
// stall components:
//
//	r(c,b) = f + (1-f) * mu(c) * lambda(b)
//
// where f is the compute fraction at full allocation, mu(c) >= 1 is the
// cache-miss inflation with c partitions (working-set curve), and
// lambda(b) >= 1 is the stall inflation when only b bandwidth partitions
// are allocated (saturating: a single core cannot consume the whole bus, so
// lambda(b) = max(1, K/b) for a per-benchmark saturation point K). The
// slowdown vector is r normalized by its value at the platform's full
// allocation, which preserves exactly the properties the allocation
// algorithms consume: s(C,B) = 1, monotone non-increasing in c and b, with
// per-benchmark shape differences.
package parsec

import (
	"fmt"
	"math"

	"vc2m/internal/model"
)

// Benchmark is a synthetic PARSEC benchmark profile.
type Benchmark struct {
	// Name is the PARSEC benchmark name.
	Name string
	// CPUFrac (f) is the fraction of execution time at full allocation
	// that is pure compute, insensitive to cache and bandwidth.
	CPUFrac float64
	// MissInflation (mu0) is the ratio of cache misses with the cache
	// effectively disabled to misses with the full cache.
	MissInflation float64
	// WorkingSet (W) is the number of cache partitions after which the
	// miss curve saturates (the benchmark's working set fits).
	WorkingSet float64
	// Gamma shapes the miss curve: mu(c) = 1 + (mu0-1)*((W-c)/W)^Gamma for
	// c < W. Larger Gamma means the benefit of additional cache
	// concentrates near the working-set size.
	Gamma float64
	// BWSat (K) is the stall inflation under the worst-case bandwidth
	// allocation (b = 1): lambda(1) = K.
	BWSat float64
	// BWRange (R) is the number of bandwidth partitions at which the
	// benchmark's memory stream saturates; stall inflation decays linearly
	// from K at b = 1 to 1 at b = R. (Memory-level parallelism flattens
	// the ideal K/b hyperbola, so a linear ramp is the better synthetic.)
	BWRange float64
	// MaxWCETFactor (S) is the measured execution-time multiplier with the
	// cache disabled and worst-case bandwidth, relative to the full
	// 20-partition allocation — the paper's s^max numerator. Disabling the
	// cache is far worse than the smallest allocatable partition count
	// (even instruction fetches go to DRAM), so S exceeds Raw(Cmin, Bmin).
	MaxWCETFactor float64
}

// All lists the thirteen PARSEC benchmarks used to generate workloads,
// ordered as in the PARSEC suite. Parameters are qualitative reproductions
// of the published characterization.
var All = []Benchmark{
	{Name: "blackscholes", CPUFrac: 0.90, MissInflation: 1.5, WorkingSet: 4, Gamma: 1.0, BWSat: 1.4, BWRange: 2, MaxWCETFactor: 2.1},
	{Name: "bodytrack", CPUFrac: 0.52, MissInflation: 2.5, WorkingSet: 16, Gamma: 0.7, BWSat: 2.3, BWRange: 7, MaxWCETFactor: 4.0},
	{Name: "canneal", CPUFrac: 0.32, MissInflation: 3.1, WorkingSet: 26, Gamma: 0.6, BWSat: 3.1, BWRange: 10, MaxWCETFactor: 6.8},
	{Name: "dedup", CPUFrac: 0.40, MissInflation: 2.8, WorkingSet: 20, Gamma: 0.7, BWSat: 2.7, BWRange: 8, MaxWCETFactor: 5.2},
	{Name: "facesim", CPUFrac: 0.36, MissInflation: 2.9, WorkingSet: 22, Gamma: 0.6, BWSat: 2.9, BWRange: 9, MaxWCETFactor: 5.8},
	{Name: "ferret", CPUFrac: 0.43, MissInflation: 2.6, WorkingSet: 18, Gamma: 0.7, BWSat: 2.5, BWRange: 8, MaxWCETFactor: 4.5},
	{Name: "fluidanimate", CPUFrac: 0.38, MissInflation: 2.8, WorkingSet: 20, Gamma: 0.7, BWSat: 2.9, BWRange: 9, MaxWCETFactor: 5.5},
	{Name: "freqmine", CPUFrac: 0.48, MissInflation: 2.5, WorkingSet: 17, Gamma: 0.7, BWSat: 2.3, BWRange: 7, MaxWCETFactor: 4.1},
	{Name: "raytrace", CPUFrac: 0.62, MissInflation: 2.1, WorkingSet: 14, Gamma: 0.8, BWSat: 2.1, BWRange: 6, MaxWCETFactor: 3.4},
	{Name: "streamcluster", CPUFrac: 0.30, MissInflation: 3.2, WorkingSet: 24, Gamma: 0.6, BWSat: 3.3, BWRange: 10, MaxWCETFactor: 7.5},
	{Name: "swaptions", CPUFrac: 0.93, MissInflation: 1.4, WorkingSet: 3, Gamma: 1.0, BWSat: 1.3, BWRange: 2, MaxWCETFactor: 1.9},
	{Name: "vips", CPUFrac: 0.42, MissInflation: 2.7, WorkingSet: 18, Gamma: 0.7, BWSat: 2.7, BWRange: 8, MaxWCETFactor: 4.8},
	{Name: "x264", CPUFrac: 0.45, MissInflation: 2.6, WorkingSet: 17, Gamma: 0.7, BWSat: 2.5, BWRange: 7, MaxWCETFactor: 4.4},
}

// ByName returns the named benchmark profile.
func ByName(name string) (Benchmark, error) {
	for _, b := range All {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("parsec: unknown benchmark %q", name)
}

// Names returns all benchmark names in suite order.
func Names() []string {
	out := make([]string, len(All))
	for i, b := range All {
		out[i] = b.Name
	}
	return out
}

// missFactor returns mu(c), the miss inflation with c cache partitions.
// c = 0 models a disabled cache: mu(0) = MissInflation.
func (bm Benchmark) missFactor(c int) float64 {
	if float64(c) >= bm.WorkingSet {
		return 1
	}
	frac := (bm.WorkingSet - float64(c)) / bm.WorkingSet
	return 1 + (bm.MissInflation-1)*math.Pow(frac, bm.Gamma)
}

// bwFactor returns lambda(b), the stall inflation with b BW partitions:
// BWSat at b = 1, decaying linearly to 1 at b = BWRange.
func (bm Benchmark) bwFactor(b int) float64 {
	if float64(b) >= bm.BWRange || bm.BWRange <= 1 {
		return 1
	}
	return 1 + (bm.BWSat-1)*(bm.BWRange-float64(b))/(bm.BWRange-1)
}

// Raw returns the un-normalized execution-time factor r(c,b). c may be 0
// (cache disabled); b must be positive.
func (bm Benchmark) Raw(c, b int) float64 {
	if b <= 0 {
		panic("parsec: Raw with non-positive bandwidth allocation")
	}
	return bm.CPUFrac + (1-bm.CPUFrac)*bm.missFactor(c)*bm.bwFactor(b)
}

// Profile returns the benchmark's slowdown table on the platform:
// s(c,b) = r(c,b) / r(C,B), so s is 1 at the full allocation and monotone
// non-increasing in both resources.
func (bm Benchmark) Profile(p model.Platform) *model.ResourceTable {
	ref := bm.Raw(p.C, p.B)
	t := model.NewResourceTableFor(p)
	t.Fill(func(c, b int) float64 { return bm.Raw(c, b) / ref })
	return t
}

// MaxSlowdown returns s^max on the platform: the execution-time ratio
// between the worst configuration the paper measures (cache disabled,
// worst-case bandwidth) and the platform's full allocation. The
// cache-disabled factor is the benchmark's MaxWCETFactor (calibrated on the
// 20-partition reference machine); it is floored at the worst allocatable
// configuration so e^max can never undercut a reachable allocation.
func (bm Benchmark) MaxSlowdown(p model.Platform) float64 {
	worst := bm.Raw(p.Cmin, p.Bmin)
	if bm.MaxWCETFactor > worst {
		worst = bm.MaxWCETFactor
	}
	return worst / bm.Raw(p.C, p.B)
}

// WCETTable builds a task WCET table on the platform from a reference WCET
// (the execution time under the full allocation): e(c,b) = eRef * s(c,b).
func (bm Benchmark) WCETTable(p model.Platform, eRef float64) *model.ResourceTable {
	return bm.Profile(p).Scale(eRef)
}
