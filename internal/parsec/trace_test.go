package parsec

import (
	"math"
	"testing"

	"vc2m/internal/model"
)

func traceProfile(t *testing.T, name string) *model.ResourceTable {
	t.Helper()
	bm, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bm.TraceProfile(model.PlatformA, TraceConfig{Ops: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTraceProfileReferenceIsOne(t *testing.T) {
	tab := traceProfile(t, "dedup")
	if math.Abs(tab.Reference()-1) > 1e-12 {
		t.Errorf("reference = %v, want 1", tab.Reference())
	}
}

func TestTraceProfileMonotone(t *testing.T) {
	for _, name := range []string{"streamcluster", "swaptions", "ferret"} {
		if err := traceProfile(t, name).CheckMonotone(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTraceProfileAtLeastOne(t *testing.T) {
	p := model.PlatformA
	tab := traceProfile(t, "canneal")
	for c := p.Cmin; c <= p.C; c += 3 {
		for b := p.Bmin; b <= p.B; b += 3 {
			if tab.At(c, b) < 1-1e-9 {
				t.Fatalf("slowdown %v < 1 at (%d,%d)", tab.At(c, b), c, b)
			}
		}
	}
}

func TestTraceProfileSensitivityOrdering(t *testing.T) {
	// The measured profiles must preserve the suite's sensitivity
	// ordering: memory-bound benchmarks slow down more at the minimum
	// allocation than compute-bound ones.
	p := model.PlatformA
	sc := traceProfile(t, "streamcluster").At(p.Cmin, p.Bmin)
	sw := traceProfile(t, "swaptions").At(p.Cmin, p.Bmin)
	if sc <= sw {
		t.Errorf("streamcluster measured slowdown %v not above swaptions %v", sc, sw)
	}
	// At a mid allocation the compute-bound benchmark is flat (its working
	// set fits; at (Cmin, Bmin) even it pays cold-miss bandwidth cost).
	if mid := traceProfile(t, "swaptions").At(5, 5); mid > 1.2 {
		t.Errorf("swaptions measured s(5,5) = %v, want nearly flat", mid)
	}
}

func TestTraceProfileAgreesWithAnalyticDirectionally(t *testing.T) {
	// Per benchmark, the measured and analytic slowdowns at a starved
	// allocation should agree within a factor of ~2.5 — the models differ
	// in detail but must tell the same story.
	p := model.PlatformA
	for _, name := range []string{"streamcluster", "ferret", "swaptions"} {
		bm, _ := ByName(name)
		analytic := bm.Profile(p).At(3, 2)
		measured := traceProfile(t, name).At(3, 2)
		ratio := measured / analytic
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: measured %v vs analytic %v at (3,2), ratio %v outside [0.4, 2.5]",
				name, measured, analytic, ratio)
		}
	}
}

func TestTraceProfileDeterministic(t *testing.T) {
	a := traceProfile(t, "vips")
	b := traceProfile(t, "vips")
	if a.At(5, 5) != b.At(5, 5) {
		t.Error("same seed produced different trace profiles")
	}
}

func TestTraceProfileUsableAsTaskWCET(t *testing.T) {
	// The measured profile must plug into the task model directly.
	tab := traceProfile(t, "facesim").Scale(12)
	task := &model.Task{ID: "measured", VM: "vm", Period: 100, WCET: tab, Benchmark: "facesim"}
	if err := task.Validate(); err != nil {
		t.Errorf("trace-profiled task invalid: %v", err)
	}
}

func TestTraceProfileInvalidGeometry(t *testing.T) {
	bm, _ := ByName("dedup")
	if _, err := bm.TraceProfile(model.PlatformA, TraceConfig{Sets: 3}); err == nil {
		t.Error("invalid geometry accepted")
	}
}
