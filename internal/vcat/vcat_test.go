package vcat

import (
	"strings"
	"testing"

	"vc2m/internal/bitmask"
	"vc2m/internal/cache"
	"vc2m/internal/model"
)

func mkHW(t *testing.T) *Hardware {
	t.Helper()
	hw, err := NewHardware(20, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return hw
}

func TestNewHardwareValidation(t *testing.T) {
	bad := [][3]int{{0, 4, 4}, {65, 4, 4}, {20, 0, 4}, {20, 4, 0}}
	for _, c := range bad {
		if _, err := NewHardware(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewHardware(%v) should fail", c)
		}
	}
}

func TestPowerOnState(t *testing.T) {
	hw := mkHW(t)
	for clos := 0; clos < hw.NumCLOS(); clos++ {
		m, err := hw.ReadCBM(clos)
		if err != nil {
			t.Fatal(err)
		}
		if m != bitmask.Full(20) {
			t.Errorf("CLOS %d CBM = %#x, want full mask at power-on", clos, m)
		}
	}
	m, err := hw.EffectiveMask(2)
	if err != nil || m != bitmask.Full(20) {
		t.Errorf("core 2 effective mask = %#x (%v), want full (CLOS 0)", m, err)
	}
}

func TestWriteCBMValidation(t *testing.T) {
	hw := mkHW(t)
	if err := hw.WriteCBM(1, 0b1111); err != nil {
		t.Errorf("valid CBM rejected: %v", err)
	}
	cases := []struct {
		clos int
		mask uint64
	}{
		{-1, 1}, {16, 1}, // bad CLOS
		{0, 0},       // empty
		{0, 0b101},   // non-contiguous
		{0, 1 << 20}, // beyond way count
	}
	for _, c := range cases {
		if err := hw.WriteCBM(c.clos, c.mask); err == nil {
			t.Errorf("WriteCBM(%d, %#x) should fail", c.clos, c.mask)
		}
	}
	// A faulting write must not change the register.
	if m, _ := hw.ReadCBM(1); m != 0b1111 {
		t.Errorf("register changed by faulting write: %#x", m)
	}
}

func TestAssociate(t *testing.T) {
	hw := mkHW(t)
	if err := hw.WriteCBM(3, 0b11<<4); err != nil {
		t.Fatal(err)
	}
	if err := hw.Associate(1, 3); err != nil {
		t.Fatal(err)
	}
	m, err := hw.EffectiveMask(1)
	if err != nil || m != 0b11<<4 {
		t.Errorf("effective mask = %#x (%v), want CLOS 3's CBM", m, err)
	}
	if err := hw.Associate(9, 0); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := hw.Associate(0, 99); err == nil {
		t.Error("out-of-range CLOS accepted")
	}
	if _, err := hw.EffectiveMask(-1); err == nil {
		t.Error("out-of-range core accepted by EffectiveMask")
	}
	if _, err := hw.ReadCBM(-1); err == nil {
		t.Error("out-of-range CLOS accepted by ReadCBM")
	}
}

func TestProgramCache(t *testing.T) {
	hw := mkHW(t)
	if err := hw.WriteCBM(0, 0b11); err != nil {
		t.Fatal(err)
	}
	if err := hw.WriteCBM(1, 0b1100); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		if err := hw.Associate(core, core%2); err != nil {
			t.Fatal(err)
		}
	}
	llc, err := cache.New(cache.Config{Sets: 16, Ways: 20, LineSize: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Program(llc); err != nil {
		t.Fatal(err)
	}
	if llc.Mask(0) != 0b11 || llc.Mask(1) != 0b1100 {
		t.Errorf("cache masks = %#x, %#x", llc.Mask(0), llc.Mask(1))
	}
}

func TestDomainLifecycle(t *testing.T) {
	hw := mkHW(t)
	m := NewManager(hw)
	if m.FreeWays() != 20 {
		t.Fatalf("FreeWays = %d, want 20", m.FreeWays())
	}
	d1, err := m.CreateDomain("vm1", 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.CreateDomain("vm2", 12)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeWays() != 0 {
		t.Errorf("FreeWays = %d, want 0", m.FreeWays())
	}
	if d1.PhysicalMask()&d2.PhysicalMask() != 0 {
		t.Error("domains overlap")
	}
	if d1.Ways() != 8 || d2.VM() != "vm2" {
		t.Error("domain metadata wrong")
	}
	if _, err := m.CreateDomain("vm3", 1); err == nil {
		t.Error("over-allocation accepted")
	}
	if _, err := m.CreateDomain("vm1", 1); err == nil {
		t.Error("duplicate domain accepted")
	}
	if _, err := m.CreateDomain("vm4", 0); err == nil {
		t.Error("zero-way domain accepted")
	}
	if d, ok := m.Domain("vm1"); !ok || d != d1 {
		t.Error("Domain lookup failed")
	}
	m.Reset()
	if m.FreeWays() != 20 {
		t.Error("Reset did not release ways")
	}
	if _, ok := m.Domain("vm1"); ok {
		t.Error("Reset did not drop domains")
	}
}

func TestDomainTranslation(t *testing.T) {
	hw := mkHW(t)
	m := NewManager(hw)
	if _, err := m.CreateDomain("vm1", 8); err != nil {
		t.Fatal(err)
	}
	d2, err := m.CreateDomain("vm2", 4)
	if err != nil {
		t.Fatal(err)
	}
	// vm2's region is ways 8..11; virtual mask 0b0011 -> physical 0b11<<8.
	phys, err := d2.Translate(0b0011)
	if err != nil {
		t.Fatal(err)
	}
	if phys != 0b11<<8 {
		t.Errorf("Translate = %#x, want %#x", phys, 0b11<<8)
	}
	// Escaping, empty and non-contiguous masks are rejected.
	for _, bad := range []uint64{0, 0b10001, 0b101, 1 << 4} {
		if _, err := d2.Translate(bad); err == nil {
			t.Errorf("Translate(%#b) should fail", bad)
		}
	}
}

func TestSetVirtualCBM(t *testing.T) {
	hw := mkHW(t)
	m := NewManager(hw)
	if _, err := m.CreateDomain("vm1", 10); err != nil {
		t.Fatal(err)
	}
	d2, err := m.CreateDomain("vm2", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.SetVirtualCBM(5, 0b111); err != nil {
		t.Fatal(err)
	}
	got, _ := hw.ReadCBM(5)
	if got != 0b111<<10 {
		t.Errorf("CBM = %#x, want %#x", got, 0b111<<10)
	}
	// A guest cannot program ways outside its domain.
	if err := d2.SetVirtualCBM(5, 0b11111111111); err == nil {
		t.Error("domain escape accepted")
	}
}

func TestApplyAllocation(t *testing.T) {
	hw := mkHW(t)
	a := &model.Allocation{
		Platform: model.PlatformA,
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 6, BW: 5},
			{Core: 1, Cache: 4, BW: 5},
			{Core: 2, Cache: 10, BW: 5},
		},
		Schedulable: true,
	}
	if err := ApplyAllocation(hw, a); err != nil {
		t.Fatal(err)
	}
	var union uint64
	for i, core := range a.Cores {
		mask, err := hw.EffectiveMask(i)
		if err != nil {
			t.Fatal(err)
		}
		if popcount(mask) != core.Cache {
			t.Errorf("core %d mask %#x has %d ways, want %d", i, mask, popcount(mask), core.Cache)
		}
		if union&mask != 0 {
			t.Errorf("core %d mask overlaps earlier cores", i)
		}
		union |= mask
	}
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func TestApplyAllocationOverflow(t *testing.T) {
	hw := mkHW(t)
	a := &model.Allocation{
		Platform: model.PlatformA,
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 15, BW: 5},
			{Core: 1, Cache: 15, BW: 5},
		},
	}
	err := ApplyAllocation(hw, a)
	if err == nil || !strings.Contains(err.Error(), "ways") {
		t.Errorf("way overflow not detected: %v", err)
	}
}

func TestApplyAllocationTooManyCores(t *testing.T) {
	hw, err := NewHardware(20, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform: model.PlatformA,
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 2, BW: 5},
			{Core: 1, Cache: 2, BW: 5},
			{Core: 2, Cache: 2, BW: 5},
		},
	}
	if err := ApplyAllocation(hw, a); err == nil {
		t.Error("CLOS exhaustion not detected")
	}
}
