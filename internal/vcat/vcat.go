// Package vcat models the dynamic cache-management layer vC2M builds on:
// vCAT (Xu et al., RTAS'17), which virtualizes Intel's Cache Allocation
// Technology (CAT) for virtual machines.
//
// The hardware interface is reproduced at the register level. CAT exposes
// a small number of classes of service (CLOS); each CLOS has a capacity
// bitmask (CBM) register restricting fills to a subset of the LLC's ways,
// and each logical core is associated with one CLOS through its
// IA32_PQR_ASSOC register. CBMs must be non-empty and contiguous, like
// real CAT.
//
// On top of the hardware model, the Manager implements vCAT's core idea:
// each VM receives a *virtual* cache domain — a contiguous region of
// physical ways — inside which the guest can program virtual CBMs as if it
// owned a private CAT. The manager translates virtual masks to physical
// masks by shifting them into the domain's region and rejects masks that
// escape it, providing isolation between VMs' cache allocations.
//
// vC2M's hypervisor-level allocator uses this layer to realize its
// per-core partition counts: ApplyAllocation programs one CLOS per core
// with a disjoint contiguous region sized to the core's cache allocation.
package vcat

import (
	"fmt"

	"vc2m/internal/bitmask"
	"vc2m/internal/cache"
	"vc2m/internal/model"
	"vc2m/internal/provenance"
)

// Hardware models a CAT-capable processor's register file.
type Hardware struct {
	ways    int
	numCLOS int
	cbm     []uint64 // IA32_L3_QOS_MASK_n
	assoc   []int    // per-core CLOS id (IA32_PQR_ASSOC)
}

// NewHardware creates a register file for a cache with the given number of
// ways, numCLOS classes of service and nCores cores. All CLOS masks start
// full (the power-on CAT state) and every core is associated with CLOS 0.
func NewHardware(ways, numCLOS, nCores int) (*Hardware, error) {
	if ways <= 0 || ways > 64 {
		return nil, fmt.Errorf("vcat: ways = %d, need 1..64", ways)
	}
	if numCLOS <= 0 {
		return nil, fmt.Errorf("vcat: numCLOS = %d, need > 0", numCLOS)
	}
	if nCores <= 0 {
		return nil, fmt.Errorf("vcat: nCores = %d, need > 0", nCores)
	}
	hw := &Hardware{
		ways:    ways,
		numCLOS: numCLOS,
		cbm:     make([]uint64, numCLOS),
		assoc:   make([]int, nCores),
	}
	full := bitmask.Full(ways)
	for i := range hw.cbm {
		hw.cbm[i] = full
	}
	return hw, nil
}

// Ways returns the LLC way count.
func (hw *Hardware) Ways() int { return hw.ways }

// NumCLOS returns the number of classes of service.
func (hw *Hardware) NumCLOS() int { return hw.numCLOS }

// WriteCBM programs the CLOS's capacity bitmask. Like real CAT, the mask
// must be non-empty, contiguous, and within the way count; violating
// writes fault (return an error) without changing the register.
func (hw *Hardware) WriteCBM(clos int, mask uint64) error {
	if clos < 0 || clos >= hw.numCLOS {
		return fmt.Errorf("vcat: CLOS %d out of range [0,%d)", clos, hw.numCLOS)
	}
	if mask == 0 {
		return fmt.Errorf("vcat: empty CBM for CLOS %d", clos)
	}
	if mask&^bitmask.Full(hw.ways) != 0 {
		return fmt.Errorf("vcat: CBM %#x exceeds %d ways", mask, hw.ways)
	}
	if !bitmask.Contiguous(mask) {
		return fmt.Errorf("vcat: CBM %#x is not contiguous", mask)
	}
	hw.cbm[clos] = mask
	return nil
}

// ReadCBM returns the CLOS's capacity bitmask.
func (hw *Hardware) ReadCBM(clos int) (uint64, error) {
	if clos < 0 || clos >= hw.numCLOS {
		return 0, fmt.Errorf("vcat: CLOS %d out of range [0,%d)", clos, hw.numCLOS)
	}
	return hw.cbm[clos], nil
}

// Associate binds the core to the CLOS (IA32_PQR_ASSOC write).
func (hw *Hardware) Associate(core, clos int) error {
	if core < 0 || core >= len(hw.assoc) {
		return fmt.Errorf("vcat: core %d out of range [0,%d)", core, len(hw.assoc))
	}
	if clos < 0 || clos >= hw.numCLOS {
		return fmt.Errorf("vcat: CLOS %d out of range [0,%d)", clos, hw.numCLOS)
	}
	hw.assoc[core] = clos
	return nil
}

// EffectiveMask returns the capacity bitmask governing the core's fills.
func (hw *Hardware) EffectiveMask(core int) (uint64, error) {
	if core < 0 || core >= len(hw.assoc) {
		return 0, fmt.Errorf("vcat: core %d out of range [0,%d)", core, len(hw.assoc))
	}
	return hw.cbm[hw.assoc[core]], nil
}

// Program pushes the current register state into the cache simulator, the
// analogue of the hardware honoring CAT on every fill.
func (hw *Hardware) Program(c *cache.Cache) error {
	for core := range hw.assoc {
		mask, err := hw.EffectiveMask(core)
		if err != nil {
			return err
		}
		if err := c.SetMask(core, mask); err != nil {
			return err
		}
	}
	return nil
}

// Domain is a VM's virtual cache: a contiguous region of physical ways
// within which the guest programs virtual CBMs.
type Domain struct {
	vm    string
	base  int // first physical way
	count int // number of ways
	mgr   *Manager
}

// VM returns the owning VM's ID.
func (d *Domain) VM() string { return d.vm }

// Ways returns the domain's virtual way count.
func (d *Domain) Ways() int { return d.count }

// PhysicalMask returns the domain's full region as a physical mask.
func (d *Domain) PhysicalMask() uint64 {
	return bitmask.Full(d.count) << uint(d.base)
}

// Translate converts a virtual CBM (over the domain's ways, bit 0 = the
// domain's first way) into the physical CBM, rejecting masks that escape
// the domain — the vCAT isolation guarantee.
func (d *Domain) Translate(virtualMask uint64) (uint64, error) {
	if virtualMask == 0 {
		return 0, fmt.Errorf("vcat: empty virtual CBM in domain %s", d.vm)
	}
	if virtualMask&^bitmask.Full(d.count) != 0 {
		return 0, fmt.Errorf("vcat: virtual CBM %#x escapes domain %s (%d ways)",
			virtualMask, d.vm, d.count)
	}
	if !bitmask.Contiguous(virtualMask) {
		return 0, fmt.Errorf("vcat: virtual CBM %#x is not contiguous", virtualMask)
	}
	return virtualMask << uint(d.base), nil
}

// SetVirtualCBM programs the CLOS with the domain-translated mask.
func (d *Domain) SetVirtualCBM(clos int, virtualMask uint64) error {
	phys, err := d.Translate(virtualMask)
	if err != nil {
		return err
	}
	return d.mgr.hw.WriteCBM(clos, phys)
}

// Manager is the hypervisor-side vCAT component: it owns the physical way
// space and carves per-VM domains out of it.
type Manager struct {
	hw      *Hardware
	domains map[string]*Domain
	nextWay int
}

// NewManager wraps the hardware.
func NewManager(hw *Hardware) *Manager {
	return &Manager{hw: hw, domains: make(map[string]*Domain)}
}

// FreeWays returns the number of unallocated physical ways.
func (m *Manager) FreeWays() int { return m.hw.ways - m.nextWay }

// CreateDomain allocates a contiguous region of ways for the VM.
func (m *Manager) CreateDomain(vmID string, ways int) (*Domain, error) {
	if _, ok := m.domains[vmID]; ok {
		return nil, fmt.Errorf("vcat: domain %s already exists", vmID)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("vcat: domain %s: ways = %d, need > 0", vmID, ways)
	}
	if ways > m.FreeWays() {
		return nil, fmt.Errorf("vcat: domain %s: %d ways requested, %d free", vmID, ways, m.FreeWays())
	}
	d := &Domain{vm: vmID, base: m.nextWay, count: ways, mgr: m}
	m.nextWay += ways
	m.domains[vmID] = d
	return d, nil
}

// Domain returns the VM's domain.
func (m *Manager) Domain(vmID string) (*Domain, bool) {
	d, ok := m.domains[vmID]
	return d, ok
}

// Reset releases all domains and restores full CBMs, the vCAT teardown
// path. (Individual destroy-and-compact, which vCAT supports via mask
// moves, is not needed by vC2M's static allocations.)
func (m *Manager) Reset() {
	m.domains = make(map[string]*Domain)
	m.nextWay = 0
	full := bitmask.Full(m.hw.ways)
	for i := range m.hw.cbm {
		m.hw.cbm[i] = full
	}
}

// ApplyAllocation realizes a vC2M allocation on the hardware: core i's
// CLOS i receives a disjoint contiguous region of exactly its allocated
// cache partitions, and the core is associated with that CLOS. It fails if
// the hardware has fewer CLOSes than cores or fewer ways than the
// allocation's partition total.
func ApplyAllocation(hw *Hardware, a *model.Allocation) error {
	return ApplyAllocationProv(hw, a, nil)
}

// ApplyAllocationProv is ApplyAllocation with decision provenance: each
// core's programmed way region is recorded on prov (nil-safe), completing
// the decision trail from abstract partition counts down to the CAT
// register values.
func ApplyAllocationProv(hw *Hardware, a *model.Allocation, prov *provenance.Recorder) error {
	if len(a.Cores) > hw.numCLOS {
		return fmt.Errorf("vcat: %d cores need %d CLOSes, hardware has %d",
			len(a.Cores), len(a.Cores), hw.numCLOS)
	}
	base := 0
	for i, core := range a.Cores {
		if base+core.Cache > hw.ways {
			return fmt.Errorf("vcat: allocation needs %d ways, hardware has %d",
				base+core.Cache, hw.ways)
		}
		mask := bitmask.Full(core.Cache) << uint(base)
		if err := hw.WriteCBM(i, mask); err != nil {
			return err
		}
		if err := hw.Associate(i, i); err != nil {
			return err
		}
		if prov.Enabled() {
			prov.Record(provenance.Decision{
				Stage: provenance.StageVCAT, Kind: provenance.KindProgram,
				Subject: fmt.Sprintf("core %d", core.Core), Target: fmt.Sprintf("CLOS %d", i),
				Cache: core.Cache, BW: core.BW, Mask: bitmask.Mask(mask), Accepted: true,
				Reason: fmt.Sprintf("CBM ways [%d,%d) programmed as a disjoint contiguous region", base, base+core.Cache),
			})
		}
		base += core.Cache
	}
	return nil
}
