package vcat_test

import (
	"fmt"

	"vc2m/internal/vcat"
)

// Example walks the vCAT flow: the hypervisor carves per-VM cache domains
// out of the physical ways, and each guest programs virtual CBMs that are
// translated — and confined — to its own region.
func Example() {
	hw, err := vcat.NewHardware(20, 16, 4)
	if err != nil {
		panic(err)
	}
	mgr := vcat.NewManager(hw)

	domA, _ := mgr.CreateDomain("vmA", 12)
	domB, _ := mgr.CreateDomain("vmB", 8)

	// vmB programs its CLOS 1 with virtual ways 0-3; physically these are
	// ways 12-15 (after vmA's region).
	if err := domB.SetVirtualCBM(1, 0b1111); err != nil {
		panic(err)
	}
	cbm, _ := hw.ReadCBM(1)
	fmt.Printf("vmA region: %#x\n", domA.PhysicalMask())
	fmt.Printf("vmB virtual 0b1111 -> physical %#x\n", cbm)

	// A guest cannot reach outside its domain.
	_, err = domB.Translate(0b111111111)
	fmt.Println("escape rejected:", err != nil)
	// Output:
	// vmA region: 0xfff
	// vmB virtual 0b1111 -> physical 0xf000
	// escape rejected: true
}
