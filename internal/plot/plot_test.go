package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out, err := Render(Config{Title: "demo", Width: 40, Height: 10},
		Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* up") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x labels + legend = 14.
	if len(lines) != 14 {
		t.Errorf("got %d lines, want 14:\n%s", len(lines), out)
	}
}

func TestRenderMonotoneSeriesShape(t *testing.T) {
	// An increasing series must place its first point lower (a later row)
	// than its last point.
	out, err := Render(Config{Width: 30, Height: 10},
		Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(out, "\n")
	var firstRow, lastRow int
	for i, row := range rows {
		idx := strings.IndexByte(row, '*')
		if idx < 0 {
			continue
		}
		if strings.Contains(row[:idx+1], "* ") {
			continue // legend line
		}
		if firstRow == 0 {
			firstRow = i
		}
		lastRow = i
	}
	if firstRow >= lastRow {
		t.Errorf("increasing series did not slope: first row %d, last row %d\n%s",
			firstRow, lastRow, out)
	}
}

func TestRenderMultipleSeriesGlyphs(t *testing.T) {
	out, err := Render(Config{Width: 30, Height: 8},
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{1, 1}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{2, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("legend glyphs wrong:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("second series not plotted")
	}
}

func TestRenderCollisionMarker(t *testing.T) {
	out, err := Render(Config{Width: 10, Height: 5},
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "&") {
		t.Errorf("overlapping points should show the collision marker:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Config{}); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Render(Config{}, Series{Name: "empty"}); err == nil {
		t.Error("all-empty series accepted")
	}
	if _, err := Render(Config{}, Series{Name: "bad", X: []float64{1}, Y: nil}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestRenderFixedYRangeClamps(t *testing.T) {
	out, err := Render(Config{Width: 20, Height: 5, YMin: 0, YMax: 1},
		Series{Name: "s", X: []float64{0, 1}, Y: []float64{-5, 5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "0.00") {
		t.Errorf("fixed y-range labels missing:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	if _, err := Render(Config{},
		Series{Name: "flat", X: []float64{2, 2}, Y: []float64{3, 3}}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderAxisLabels(t *testing.T) {
	out, err := Render(Config{XLabel: "util", YLabel: "fraction"},
		Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "x: util") || !strings.Contains(out, "y: fraction") {
		t.Error("axis labels missing")
	}
}
