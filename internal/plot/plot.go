// Package plot renders experiment series as ASCII line charts, so the
// command-line tools can display the paper's figures directly in a
// terminal. It is deliberately minimal: multiple named series over a
// shared x-axis, y scaled to the data, one character per (column, series)
// sample, distinct glyphs per series and a legend.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	// X and Y must have equal length; points are plotted in order.
	X []float64
	Y []float64
}

// Config controls rendering.
type Config struct {
	// Width and Height are the plot area's dimensions in characters;
	// zeros default to 72x20.
	Width  int
	Height int
	// YMin and YMax fix the y-range; with YMin == YMax the range is taken
	// from the data.
	YMin, YMax float64
	// Title is printed above the chart when non-empty.
	Title string
	// XLabel and YLabel annotate the axes when non-empty.
	XLabel, YLabel string
}

// glyphs assigns one marker per series, cycling if there are more series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the series into a string. Series with no points are
// skipped; an error is returned when nothing is plottable or a series has
// mismatched X/Y lengths.
func Render(cfg Config, series ...Series) (string, error) {
	w, h := cfg.Width, cfg.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	var xmin, xmax, ymin, ymax float64
	first := true
	plottable := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values",
				s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			continue
		}
		plottable++
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if plottable == 0 {
		return "", fmt.Errorf("plot: no data")
	}
	if cfg.YMin != cfg.YMax { //vc2m:floateq documented YMin==YMax "auto-range" sentinel
		ymin, ymax = cfg.YMin, cfg.YMax
	}
	if ymax == ymin { //vc2m:floateq degenerate-range guard; widened exactly
		ymax = ymin + 1
	}
	if xmax == xmin { //vc2m:floateq degenerate-range guard; widened exactly
		xmax = xmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			y := s.Y[i]
			if y < ymin {
				y = ymin
			}
			if y > ymax {
				y = ymax
			}
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if grid[row][col] == ' ' || grid[row][col] == g {
				grid[row][col] = g
			} else {
				grid[row][col] = '&' // collision marker
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yLegendTop := fmt.Sprintf("%8.2f", ymax)
	yLegendBot := fmt.Sprintf("%8.2f", ymin)
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%s |%s\n", yLegendTop, row)
		case h - 1:
			fmt.Fprintf(&b, "%s |%s\n", yLegendBot, row)
		default:
			fmt.Fprintf(&b, "%8s |%s\n", "", row)
		}
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  %-*.2f%*.2f\n", "", w/2, xmin, w-w/2, xmax)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s   y: %s\n", "", cfg.XLabel, cfg.YLabel)
	}
	for si, s := range series {
		if len(s.X) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%8s  %c %s\n", "", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String(), nil
}
