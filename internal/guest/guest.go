// Package guest models the virtual machine's side of vC2M's release
// synchronization: the LITMUS^RT modifications of Section 3.3.
//
// Inside the paper's prototype, a customized system call computes the
// delay L between a task's initialization and its first release *in the
// kernel, in VM time*, and a customized hypercall passes L together with
// the VCPU index to Xen's RTDS scheduler, which moves the VCPU's next
// release to (hypercall arrival + L). Because L is relative, the fact that
// the VM's clock and the hypervisor's clock disagree by an arbitrary
// offset is harmless — the offset cancels.
//
// This package reproduces that plumbing over the hypervisor simulator: an
// OS instance owns a guest clock, registers tasks at guest-time
// initialization points, computes their release delays in "kernel space",
// and issues the hypercalls. It exists so that the synchronization story
// can be exercised end to end (guest time in, correct VCPU releases out)
// rather than by poking the simulator's internals.
package guest

import (
	"fmt"
	"sort"

	"vc2m/internal/hypersim"
	"vc2m/internal/timeunit"
)

// Hypervisor is the hypercall surface the guest needs; *hypersim.Simulator
// implements it.
type Hypervisor interface {
	// SyncRelease sets the named VCPU's next release to now + delay.
	SyncRelease(vcpuID string, delay timeunit.Ticks) error
}

// TaskScheduler is the guest-internal scheduling surface: the guest OS
// releases its own tasks (in the simulator this sets the task's first
// release). *hypersim.Simulator implements it too, standing in for the
// guest kernel's release queue.
type TaskScheduler interface {
	SetTaskRelease(taskID string, delay timeunit.Ticks) error
}

var (
	_ Hypervisor    = (*hypersim.Simulator)(nil)
	_ TaskScheduler = (*hypersim.Simulator)(nil)
)

// OS is one guest operating system instance.
type OS struct {
	vm    string
	clock hypersim.GuestClock
	hv    Hypervisor
	tasks map[string]*taskReg
}

type taskReg struct {
	vcpuID    string
	initAt    timeunit.Ticks // guest time of initialization
	firstRel  timeunit.Ticks // guest time of first release
	hypercall bool
}

// NewOS boots a guest for the VM with the given clock offset against the
// hypervisor's wall time.
func NewOS(vm string, offset timeunit.Ticks, hv Hypervisor) *OS {
	return &OS{
		vm:    vm,
		clock: hypersim.GuestClock{Offset: offset},
		hv:    hv,
		tasks: make(map[string]*taskReg),
	}
}

// VM returns the guest's VM identifier.
func (os *OS) VM() string { return os.vm }

// InitTask registers a task at the current guest time (derived from the
// hypervisor wall time) with its first release firstIn ticks later, on the
// given (dedicated) VCPU. This is the task-creation path in the guest
// kernel.
func (os *OS) InitTask(taskID, vcpuID string, wallNow, firstIn timeunit.Ticks) error {
	if _, ok := os.tasks[taskID]; ok {
		return fmt.Errorf("guest %s: task %s already initialized", os.vm, taskID)
	}
	if firstIn < 0 {
		return fmt.Errorf("guest %s: task %s first release %v in the past", os.vm, taskID, firstIn)
	}
	now := os.clock.Now(wallNow)
	os.tasks[taskID] = &taskReg{
		vcpuID:   vcpuID,
		initAt:   now,
		firstRel: now + firstIn,
	}
	return nil
}

// ReleaseDelay is the customized system call: it computes L = (first
// release) - (initialization) in guest time — the only quantity that can
// safely cross the VM/hypervisor boundary.
func (os *OS) ReleaseDelay(taskID string) (timeunit.Ticks, error) {
	reg, ok := os.tasks[taskID]
	if !ok {
		return 0, fmt.Errorf("guest %s: unknown task %s", os.vm, taskID)
	}
	return reg.firstRel - reg.initAt, nil
}

// SyncTask is the customized hypercall path: it fetches the release delay
// via the system call and passes it, with the VCPU identifier, to the
// hypervisor scheduler; if the hypervisor also exposes the guest's task
// release queue (the simulator does), the task's own first release is set
// to the same instant, completing the synchronization. Idempotent per
// task.
func (os *OS) SyncTask(taskID string) error {
	reg, ok := os.tasks[taskID]
	if !ok {
		return fmt.Errorf("guest %s: unknown task %s", os.vm, taskID)
	}
	if reg.hypercall {
		return nil
	}
	delay, err := os.ReleaseDelay(taskID)
	if err != nil {
		return err
	}
	if err := os.hv.SyncRelease(reg.vcpuID, delay); err != nil {
		return err
	}
	if ts, ok := os.hv.(TaskScheduler); ok {
		if err := ts.SetTaskRelease(taskID, delay); err != nil {
			return err
		}
	}
	reg.hypercall = true
	return nil
}

// SyncAll issues the hypercall for every registered task, in task-ID
// order so the hypercall sequence the hypervisor observes is the same in
// every run.
func (os *OS) SyncAll() error {
	ids := make([]string, 0, len(os.tasks))
	for id := range os.tasks { //vc2m:ordered keys are sorted below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := os.SyncTask(id); err != nil {
			return err
		}
	}
	return nil
}
