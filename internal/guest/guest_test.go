package guest

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/hypersim"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// fakeHV records hypercalls.
type fakeHV struct {
	calls map[string]timeunit.Ticks
	fail  bool
}

func (f *fakeHV) SyncRelease(vcpuID string, delay timeunit.Ticks) error {
	if f.fail {
		return errFail
	}
	if f.calls == nil {
		f.calls = map[string]timeunit.Ticks{}
	}
	f.calls[vcpuID] = delay
	return nil
}

var errFail = &hvError{}

type hvError struct{}

func (*hvError) Error() string { return "hypervisor rejected" }

func TestReleaseDelayIsOffsetInvariant(t *testing.T) {
	// Identical task timing under wildly different guest-clock offsets
	// must yield identical delays — the protocol's entire point.
	for _, offset := range []timeunit.Ticks{0, 98765432, -5555555} {
		hv := &fakeHV{}
		os := NewOS("vm0", offset, hv)
		if err := os.InitTask("t1", "v1", 1000, timeunit.FromMillis(7)); err != nil {
			t.Fatal(err)
		}
		d, err := os.ReleaseDelay("t1")
		if err != nil {
			t.Fatal(err)
		}
		if d != timeunit.FromMillis(7) {
			t.Errorf("offset %v: delay = %v, want 7ms", offset, d)
		}
	}
}

func TestSyncTaskIssuesHypercallOnce(t *testing.T) {
	hv := &fakeHV{}
	os := NewOS("vm0", 42, hv)
	if err := os.InitTask("t1", "v1", 0, timeunit.FromMillis(3)); err != nil {
		t.Fatal(err)
	}
	if err := os.SyncTask("t1"); err != nil {
		t.Fatal(err)
	}
	if got := hv.calls["v1"]; got != timeunit.FromMillis(3) {
		t.Errorf("hypercall delay = %v, want 3ms", got)
	}
	// Idempotent: a second sync does not re-issue.
	hv.calls["v1"] = -1
	if err := os.SyncTask("t1"); err != nil {
		t.Fatal(err)
	}
	if hv.calls["v1"] != -1 {
		t.Error("SyncTask re-issued the hypercall")
	}
}

func TestErrors(t *testing.T) {
	hv := &fakeHV{}
	os := NewOS("vm0", 0, hv)
	if err := os.InitTask("t1", "v1", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := os.InitTask("t1", "v1", 0, 10); err == nil {
		t.Error("duplicate init accepted")
	}
	if err := os.InitTask("t2", "v2", 0, -1); err == nil {
		t.Error("negative first release accepted")
	}
	if _, err := os.ReleaseDelay("nope"); err == nil {
		t.Error("unknown task accepted")
	}
	if err := os.SyncTask("nope"); err == nil {
		t.Error("unknown task accepted by SyncTask")
	}
	hv.fail = true
	if err := os.SyncTask("t1"); err == nil {
		t.Error("hypervisor failure not propagated")
	}
	if os.VM() != "vm0" {
		t.Errorf("VM() = %q", os.VM())
	}
}

// orderHV records the sequence of hypercalls, not just their arguments.
type orderHV struct {
	seq []string
}

func (o *orderHV) SyncRelease(vcpuID string, delay timeunit.Ticks) error {
	o.seq = append(o.seq, vcpuID)
	return nil
}

func TestSyncAllHypercallOrderIsDeterministic(t *testing.T) {
	// SyncAll iterates a map of tasks; the hypercall sequence the
	// hypervisor observes must nonetheless be the same in every run —
	// sorted by task ID regardless of registration order.
	want := []string{"v-a", "v-b", "v-c", "v-d", "v-e"}
	for run := 0; run < 20; run++ {
		hv := &orderHV{}
		os := NewOS("vm0", 0, hv)
		// Register in reverse so sorted output cannot be an accident of
		// insertion order.
		for i := len(want) - 1; i >= 0; i-- {
			id := string(rune('a' + i))
			if err := os.InitTask("t-"+id, "v-"+id, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.SyncAll(); err != nil {
			t.Fatal(err)
		}
		if len(hv.seq) != len(want) {
			t.Fatalf("run %d: %d hypercalls, want %d", run, len(hv.seq), len(want))
		}
		for i := range want {
			if hv.seq[i] != want[i] {
				t.Fatalf("run %d: hypercall order %v, want %v", run, hv.seq, want)
			}
		}
	}
}

func TestSyncAllAgainstRealSimulator(t *testing.T) {
	// End to end: tasks declared with staggered guest-time releases; the
	// guest OS syncs its VCPUs via real hypercalls; the simulation shows
	// the VCPUs releasing at the right wall times (replenishment counts
	// over the horizon reflect the delayed starts).
	p := model.PlatformA
	t1 := model.SimpleTask("t1", p, 10, 1)
	t1.VM = "vm0"
	t2 := model.SimpleTask("t2", p, 10, 1)
	t2.VM = "vm0"
	v1 := csa.FlattenVCPU(t1, 0)
	v2 := csa.FlattenVCPU(t2, 1)
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v1, v2}}},
		Schedulable: true,
	}
	s, err := hypersim.New(a, hypersim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	os := NewOS("vm0", 777777, s) // arbitrary clock offset
	if err := os.InitTask("t1", v1.ID, 0, timeunit.FromMillis(50)); err != nil {
		t.Fatal(err)
	}
	if err := os.InitTask("t2", v2.ID, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.SyncAll(); err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	// v2 releases at 0 (11 replenishments in [0,100]); v1 at 50ms (~6).
	if got := res.BudgetReplenishments; got < 15 || got > 18 {
		t.Errorf("total replenishments = %d, want ~17 (11 + 6)", got)
	}
	if res.Missed != 0 {
		t.Errorf("misses = %d", res.Missed)
	}
}
