package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.StartSpan(StageRun)
	if sp != nil {
		t.Fatal("nil trace returned non-nil span")
	}
	// Every span method must be a safe no-op on nil.
	child := sp.Child(StageVMLevel)
	if child != nil {
		t.Fatal("nil span returned non-nil child")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.SetFloat("f", 1.5)
	sp.End()
	sp.End()
	if got := sp.Name(); got != "" {
		t.Fatalf("nil span Name = %q", got)
	}
	if got := sp.Duration(); got != 0 {
		t.Fatalf("nil span Duration = %v", got)
	}
	if tr.Len() != 0 || tr.Snapshot() != nil || tr.StageSet() != nil {
		t.Fatal("nil trace leaked state")
	}
	if err := tr.WriteChrome(&strings.Builder{}); err != nil {
		t.Fatalf("nil trace WriteChrome: %v", err)
	}
	if err := tr.WriteBreakdown(&strings.Builder{}); err != nil {
		t.Fatalf("nil trace WriteBreakdown: %v", err)
	}
}

func TestSpanHierarchyAndSnapshot(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(StageRun)
	vm := root.Child(StageVMLevel)
	csa := vm.Child(StageCSADerive)
	csa.SetInt("vcpus", 4)
	csa.End()
	vm.End()
	open := root.Child(StageHyper) // deliberately left open

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d spans, want 2 (only ended)", len(snap))
	}
	// Start order: vm first, then csa.
	if snap[0].Name != StageVMLevel || snap[1].Name != StageCSADerive {
		t.Fatalf("snapshot order = %q, %q", snap[0].Name, snap[1].Name)
	}
	if snap[1].Parent != snap[0].ID {
		t.Fatalf("csa parent = %d, want %d", snap[1].Parent, snap[0].ID)
	}
	if len(snap[1].Attrs) != 1 || snap[1].Attrs[0].Key != "vcpus" || snap[1].Attrs[0].Value != "4" {
		t.Fatalf("csa attrs = %+v", snap[1].Attrs)
	}
	if open.Duration() != 0 {
		t.Fatal("open span has nonzero duration")
	}
	root.End()
	open.End()
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}

	got := tr.StageSet()
	want := []string{StageHyper, StageCSADerive, StageRun, StageVMLevel}
	if len(got) != len(want) {
		t.Fatalf("StageSet = %v", got)
	}
	// StageSet is sorted.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("StageSet not sorted: %v", got)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan(StageHypersim)
	sp.End()
	d1 := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != d1 {
		t.Fatal("second End changed the duration")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(StageRun)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.Child(StageSweepPoint)
				sp.SetInt("j", int64(j))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 16*50+1 {
		t.Fatalf("Len = %d, want %d", got, 16*50+1)
	}
	if got := len(tr.Snapshot()); got != 16*50+1 {
		t.Fatalf("snapshot = %d spans", got)
	}
}

func TestWriteChromeRoundTrip(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(StageRun)
	root.SetAttr("mode", "existing")
	vm := root.Child(StageVMLevel)
	vm.End()
	sim := root.Child(StageHypersim)
	sim.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	stages, err := ReadChromeStages(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadChromeStages: %v", err)
	}
	want := []string{StageVMLevel, StageHypersim, StageRun}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v", stages)
	}
	joined := strings.Join(stages, ",")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Fatalf("stages %v missing %q", stages, w)
		}
	}
	if !strings.Contains(b.String(), `"thread_name"`) {
		t.Fatal("chrome export missing track metadata event")
	}
}

func TestBreakdownAggregates(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan(StagePhase1)
		sp.End()
	}
	sp := tr.StartSpan(StagePhase2)
	sp.End()

	stats := tr.Breakdown()
	if len(stats) != 2 {
		t.Fatalf("breakdown rows = %d", len(stats))
	}
	byStage := map[string]StageStat{}
	for _, st := range stats {
		byStage[st.Stage] = st
	}
	if byStage[StagePhase1].Count != 3 || byStage[StagePhase2].Count != 1 {
		t.Fatalf("counts = %+v", byStage)
	}
	p1 := byStage[StagePhase1]
	if p1.Min > p1.Max || p1.Mean() > p1.Max || p1.Mean() < p1.Min {
		t.Fatalf("stat ordering violated: %+v", p1)
	}

	var b strings.Builder
	if err := tr.WriteBreakdown(&b); err != nil {
		t.Fatalf("WriteBreakdown: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, StagePhase1) || !strings.Contains(out, "count") {
		t.Fatalf("breakdown table:\n%s", out)
	}
}

func TestKnownStagesCoverConstants(t *testing.T) {
	known := map[string]bool{}
	for _, s := range KnownStages() {
		known[s] = true
	}
	for _, s := range []string{
		StageRun, StageVMLevel, StageCSADerive, StageHyper,
		StagePhase1, StagePhase2, StagePhase3, StageHypersim, StageSweepPoint,
	} {
		if !known[s] {
			t.Fatalf("KnownStages missing %q", s)
		}
	}
}
