package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Trace collects one run's hierarchical wall-clock spans. Create with
// NewTrace, start a root with StartSpan, and open children with
// Span.Child; a nil *Trace disables the whole tree at the cost of one
// pointer comparison per site. A Trace may be shared by goroutines (a
// parallel sweep's point spans); span registration is mutex-protected.
type Trace struct {
	mu sync.Mutex
	//vc2m:guardedby mu
	spans []*Span
	//vc2m:guardedby mu
	tc TraceContext
}

// NewTrace returns an empty, enabled span collector.
func NewTrace() *Trace { return &Trace{} }

// NewTraceWith returns an enabled span collector adopting the given W3C
// trace context — the server uses this so a run's span file carries the
// submitting client's trace ID. An invalid context is replaced by a
// freshly minted one, so the trace always has an ID.
func NewTraceWith(tc TraceContext) *Trace {
	if !tc.Valid() {
		tc = NewTraceContext()
	}
	return &Trace{tc: tc}
}

// TraceContext returns the trace's W3C context (zero value when none was
// adopted, or on a nil trace).
func (t *Trace) TraceContext() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tc
}

// TraceID returns the adopted trace ID ("" when none).
func (t *Trace) TraceID() string { return t.TraceContext().TraceID }

// Enabled reports whether the trace actually records (i.e. is non-nil).
func (t *Trace) Enabled() bool { return t != nil }

// StartSpan opens a root span. Call End on the returned span to close it;
// only ended spans appear in Snapshot and the exports.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, -1)
}

func (t *Trace) newSpan(name string, parent int) *Span {
	s := &Span{tr: t, name: name, parent: parent, start: time.Now()} //vc2m:wallclock spans measure wall time by design
	t.mu.Lock()
	s.id = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Len returns the number of spans started so far (0 on nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot returns an immutable copy of every *ended* span, in start
// order. Unfinished spans are omitted so exports never show torn state.
func (t *Trace) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		if rec, ok := s.record(); ok {
			out = append(out, rec)
		}
	}
	return out
}

// StageSet returns the sorted set of distinct span names among the ended
// spans — the deterministic fingerprint of which pipeline stages ran,
// which the obs-smoke golden diffs (durations vary run to run; the stage
// set of a seeded run does not).
func (t *Trace) StageSet() []string {
	if t == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, rec := range t.Snapshot() {
		seen[rec.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen { //vc2m:ordered keys are sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Span is one wall-clock measurement with a parent link and key/value
// attributes. All methods are safe no-ops on a nil *Span, so instrumented
// code needs no guards: `defer sp.End()` and `sp.Child(...)` both work
// when observability is off (a nil span's children are nil).
type Span struct {
	tr     *Trace
	id     int
	parent int
	name   string
	start  time.Time

	mu sync.Mutex
	//vc2m:guardedby mu
	attrs []Attr
	//vc2m:guardedby mu
	end time.Time
	//vc2m:guardedby mu
	ended bool
}

// Attr is one span attribute. Values are pre-formatted strings so the
// record is self-describing without reflection.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is an immutable snapshot of one ended span.
type SpanRecord struct {
	// ID is the span's registration index within its trace; Parent is the
	// parent span's ID, or -1 for root spans.
	ID     int
	Parent int
	// Name is the stage name (see the Stage* constants).
	Name string
	// Start is the wall-clock start; Duration the measured elapsed time.
	Start    time.Time
	Duration time.Duration
	// Attrs are the span's attributes in the order they were set.
	Attrs []Attr
}

// Child opens a sub-span. On a nil receiver it returns nil, so a whole
// disabled subtree costs only pointer comparisons.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// End closes the span, freezing its duration. Ending twice is a no-op, so
// `defer sp.End()` composes with early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now() //vc2m:wallclock spans measure wall time by design
	}
	s.mu.Unlock()
}

// SetAttr attaches a string attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute to the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetFloat attaches a float attribute to the span.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// Name returns the span's stage name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the measured elapsed time (0 while the span is open or
// on a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// record snapshots the span if it has ended.
func (s *Span) record() (SpanRecord, bool) {
	if s == nil {
		return SpanRecord{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return SpanRecord{}, false
	}
	return SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: s.end.Sub(s.start),
		Attrs:    append([]Attr(nil), s.attrs...),
	}, true
}
