package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// PromContentType is the Prometheus text exposition content type served
// by Handler (format version 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefLatencyBuckets is the default histogram bucket layout for per-stage
// wall-clock latencies, in seconds: 100µs up to 10s, roughly
// logarithmic. The slow existing-CSA allocations sit mid-range (~4ms,
// per BENCH), sweeps and hypersim runs at the top.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// PromRegistry is a minimal, dependency-free Prometheus metric registry:
// counters, gauges, gauge callbacks and cumulative histograms, with
// labels, exposed in text format v0.0.4. Registration panics on invalid
// or duplicate names (programmer error, caught at startup); observation
// methods are cheap and safe for concurrent use.
type PromRegistry struct {
	mu sync.Mutex
	//vc2m:guardedby mu
	families map[string]*metricFamily
	//vc2m:guardedby mu
	order []string // registration order, re-sorted at exposition time
}

// NewPromRegistry returns an empty registry.
func NewPromRegistry() *PromRegistry {
	return &PromRegistry{families: map[string]*metricFamily{}}
}

type metricFamily struct {
	name       string
	help       string
	typ        string // "counter", "gauge", "histogram"
	labelNames []string
	buckets    []float64 // histograms only; sorted ascending, no +Inf

	mu sync.Mutex
	//vc2m:guardedby mu
	series map[string]*series // key: joined escaped label values
	//vc2m:guardedby mu
	keys []string
	//vc2m:guardedby mu
	gaugeFns []func() float64 // gauge callbacks (unlabeled)
}

type series struct {
	labelValues []string
	value       float64  // counter / gauge
	bucketCount []uint64 // histogram: per-bucket cumulative-at-scrape counts (stored non-cumulative)
	sum         float64  // histogram
	count       uint64   // histogram
	// exemplars holds the most recent exemplar per bucket (index
	// len(buckets) is the +Inf bucket); nil entries mean "none yet".
	// Exemplars link a latency bucket to the trace that landed in it —
	// the OpenMetrics "# {trace_id=...}" suffix on bucket lines.
	exemplars []*Exemplar
}

// Exemplar is one OpenMetrics exemplar: a small label set (conventionally
// just trace_id) and the exact observed value that landed in the bucket.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

func (r *PromRegistry) register(name, help, typ string, labelNames []string, buckets []float64) *metricFamily {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, ln := range labelNames {
		if !validLabelName(ln) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", ln, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", name))
	}
	f := &metricFamily{
		name: name, help: help, typ: typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		series:     map[string]*series{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *metricFamily) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.typ == "histogram" {
			s.bucketCount = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// Counter is a monotonically increasing metric family.
type Counter struct{ f *metricFamily }

// NewCounter registers a counter family. Counters conventionally end in
// "_total".
func (r *PromRegistry) NewCounter(name, help string, labelNames ...string) *Counter {
	return &Counter{f: r.register(name, help, "counter", labelNames, nil)}
}

// Inc adds 1 to the series identified by labelValues.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds delta (must be >= 0) to the series.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: counter %q decreased by %v", c.f.name, delta))
	}
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	s.value += delta
	c.f.mu.Unlock()
}

// Preregister materializes a zero-valued series so scrapes expose it
// before the first increment.
func (c *Counter) Preregister(labelValues ...string) { c.f.get(labelValues) }

// Gauge is a settable metric family.
type Gauge struct{ f *metricFamily }

// NewGauge registers a gauge family.
func (r *PromRegistry) NewGauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{f: r.register(name, help, "gauge", labelNames, nil)}
}

// Set stores v in the series identified by labelValues.
func (g *Gauge) Set(v float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value = v
	g.f.mu.Unlock()
}

// Add adjusts the series by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value += delta
	g.f.mu.Unlock()
}

// NewGaugeFunc registers an unlabeled gauge whose value is sampled from
// fn at every scrape (queue depth, uptime, goroutines, ...).
func (r *PromRegistry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	f.mu.Lock()
	f.gaugeFns = append(f.gaugeFns, fn)
	f.mu.Unlock()
}

// Histogram is a cumulative-bucket latency metric family.
type Histogram struct{ f *metricFamily }

// NewHistogram registers a histogram family. buckets are upper bounds in
// ascending order, excluding the implicit +Inf; nil selects
// DefLatencyBuckets.
func (r *PromRegistry) NewHistogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] { //vc2m:floateq bucket bounds must be strictly increasing
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	return &Histogram{f: r.register(name, help, "histogram", labelNames, append([]float64(nil), buckets...))}
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.observe(v, nil, labelValues)
}

// ObserveExemplar records one measurement and attaches a trace-ID
// exemplar to the bucket it lands in, replacing that bucket's previous
// exemplar — each bucket remembers the most recent offending trace, so a
// slow bucket on /metrics names a concrete run to go look at. An empty
// traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string, labelValues ...string) {
	var ex *Exemplar
	if traceID != "" {
		ex = &Exemplar{Labels: map[string]string{"trace_id": traceID}, Value: v}
	}
	h.observe(v, ex, labelValues)
}

func (h *Histogram) observe(v float64, ex *Exemplar, labelValues []string) {
	s := h.f.get(labelValues)
	h.f.mu.Lock()
	bucket := len(h.f.buckets) // +Inf slot
	for i, ub := range h.f.buckets {
		if v <= ub {
			s.bucketCount[i]++
			bucket = i
			break
		}
	}
	if ex != nil {
		if s.exemplars == nil {
			s.exemplars = make([]*Exemplar, len(h.f.buckets)+1)
		}
		s.exemplars[bucket] = ex
	}
	s.sum += v
	s.count++
	h.f.mu.Unlock()
}

// Preregister materializes a zero-observation series so scrapes expose
// the full bucket layout before the stage first runs.
func (h *Histogram) Preregister(labelValues ...string) { h.f.get(labelValues) }

// WriteText renders the whole registry in Prometheus text exposition
// format v0.0.4, families and series in sorted order so output is
// deterministic for a given state.
func (r *PromRegistry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*metricFamily, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *metricFamily) writeText(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	sort.Strings(keys)
	rows := make([]series, 0, len(keys))
	for _, k := range keys {
		s := f.series[k]
		rows = append(rows, series{
			labelValues: s.labelValues,
			value:       s.value,
			bucketCount: append([]uint64(nil), s.bucketCount...),
			sum:         s.sum,
			count:       s.count,
			exemplars:   append([]*Exemplar(nil), s.exemplars...),
		})
	}
	fns := append([]func() float64(nil), f.gaugeFns...)
	f.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, fn := range fns {
		fmt.Fprintf(b, "%s %s\n", f.name, formatPromValue(fn()))
	}
	for _, s := range rows {
		switch f.typ {
		case "histogram":
			var cum uint64
			for i, ub := range f.buckets {
				cum += s.bucketCount[i]
				fmt.Fprintf(b, "%s_bucket%s %d%s\n",
					f.name, labelString(f.labelNames, s.labelValues, "le", formatPromValue(ub)),
					cum, exemplarSuffix(s.exemplars, i))
			}
			fmt.Fprintf(b, "%s_bucket%s %d%s\n",
				f.name, labelString(f.labelNames, s.labelValues, "le", "+Inf"),
				s.count, exemplarSuffix(s.exemplars, len(f.buckets)))
			fmt.Fprintf(b, "%s_sum%s %s\n",
				f.name, labelString(f.labelNames, s.labelValues, "", ""), formatPromValue(s.sum))
			fmt.Fprintf(b, "%s_count%s %d\n",
				f.name, labelString(f.labelNames, s.labelValues, "", ""), s.count)
		default:
			fmt.Fprintf(b, "%s%s %s\n",
				f.name, labelString(f.labelNames, s.labelValues, "", ""), formatPromValue(s.value))
		}
	}
}

// Handler returns an http.Handler serving the registry as a /metrics
// scrape endpoint.
func (r *PromRegistry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = r.WriteText(w)
	})
}

// exemplarSuffix renders the OpenMetrics exemplar tail of one bucket line
// (" # {trace_id=\"...\"} value"), or "" when the bucket has none.
func exemplarSuffix(exemplars []*Exemplar, i int) string {
	if i >= len(exemplars) || exemplars[i] == nil {
		return ""
	}
	return " # " + formatExemplar(exemplars[i])
}

// formatExemplar renders an exemplar's label set (names sorted for
// deterministic output) and value.
func formatExemplar(ex *Exemplar) string {
	names := make([]string, 0, len(ex.Labels))
	for n := range ex.Labels { //vc2m:ordered names are sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(ex.Labels[n]))
		b.WriteByte('"')
	}
	b.WriteString("} ")
	b.WriteString(formatPromValue(ex.Value))
	return b.String()
}

// labelString renders {a="x",b="y"} with values escaped; extraName, when
// non-empty, appends one more pair (the histogram "le" bound). Returns ""
// when there are no pairs at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-format label escapes: backslash,
// double quote, newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp applies the HELP-line escapes: backslash and newline (quotes
// are legal in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatPromValue renders a sample value: shortest round-trip float,
// with the format's spellings for infinities and NaN.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and
// is not reserved (double-underscore prefix, or the histogram's "le").
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") || name == "le" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
