package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeSpanEvent is one Chrome trace-event record; field order fixes the
// output layout, mirroring the flight recorder's exporter
// (trace.ChromeWriter). Timestamps are microseconds relative to the
// trace's earliest span start.
type chromeSpanEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChrome exports the ended spans as a Chrome trace-event JSON
// document (open in ui.perfetto.dev or chrome://tracing). Each root span
// becomes its own thread track, with descendants nested on the same track
// as complete ("X") duration events — Perfetto renders the hierarchy from
// the overlapping durations. A nil trace writes a valid empty document.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Snapshot() // nil-safe: a nil trace snapshots to nothing
	if len(spans) == 0 {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[]}`+"\n")
		return err
	}

	// Track assignment: walk each span up to its root; one tid per root.
	byID := make(map[int]SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	rootOf := func(s SpanRecord) int {
		for s.Parent >= 0 {
			p, ok := byID[s.Parent]
			if !ok {
				break // parent never ended; treat the orphan as a root
			}
			s = p
		}
		return s.ID
	}
	origin := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(origin) {
			origin = s.Start
		}
	}

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`+"\n"); err != nil {
		return err
	}
	tids := map[int]int{} // root span ID -> tid
	first := true
	emitMeta := t.TraceContext().Valid()
	emit := func(ev chromeSpanEvent) error {
		prefix := ",\n"
		if first {
			prefix = ""
			first = false
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: chrome encode: %w", err)
		}
		if _, err := io.WriteString(w, prefix); err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	if emitMeta {
		// The trace's W3C identity rides as process metadata, so an
		// exported span file names the distributed trace it belongs to —
		// grep the file for the trace ID a /metrics exemplar pointed at.
		if err := emit(chromeSpanEvent{
			Name: "process_name", Phase: "M", PID: 0, TID: 0,
			Args: map[string]string{"trace_id": t.TraceContext().TraceID},
		}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		root := rootOf(s)
		tid, ok := tids[root]
		if !ok {
			tid = len(tids) + 1
			tids[root] = tid
			if err := emit(chromeSpanEvent{
				Name: "thread_name", Phase: "M", PID: 0, TID: tid,
				Args: map[string]string{"name": byID[root].Name},
			}); err != nil {
				return err
			}
		}
		dur := s.Duration.Microseconds()
		if dur <= 0 {
			dur = 1 // the format treats dur<=0 as malformed
		}
		var args map[string]string
		if len(s.Attrs) > 0 {
			args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		if err := emit(chromeSpanEvent{
			Name: s.Name, Cat: "span", Phase: "X",
			TS:  s.Start.Sub(origin).Microseconds(),
			Dur: dur, PID: 0, TID: tid, Args: args,
		}); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// ReadChromeStages decodes a span document written by WriteChrome and
// returns the sorted set of span stage names it contains — the obs-smoke
// golden check reads exported files back through this.
func ReadChromeStages(r io.Reader) ([]string, error) {
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: decoding span document: %w", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			seen[ev.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen { //vc2m:ordered keys are sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
