package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// Logger is a nil-safe wrapper over *slog.Logger: a nil *Logger drops
// everything, so library code can log unconditionally and CLIs that never
// opt in pay one pointer comparison. (The repo targets go1.22, which has
// no slog.DiscardHandler; Slog on a nil Logger returns a logger backed by
// the package's own discard handler.)
type Logger struct {
	sl *slog.Logger
}

// NewLogger wraps an existing slog logger (nil yields a disabled Logger).
func NewLogger(sl *slog.Logger) *Logger {
	if sl == nil {
		return nil
	}
	return &Logger{sl: sl}
}

// Enabled reports whether the logger actually emits.
func (l *Logger) Enabled() bool { return l != nil }

// Slog returns the underlying *slog.Logger; on a nil receiver it returns
// a logger that discards everything, so callers may pass it to APIs that
// require a non-nil *slog.Logger.
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return slog.New(discardHandler{})
	}
	return l.sl
}

// With returns a logger with extra attributes bound (nil stays nil).
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With(args...)}
}

// WithRun binds the run-ID correlation attribute used across server and
// CLI log lines.
func (l *Logger) WithRun(runID string) *Logger {
	if l == nil {
		return nil
	}
	return l.With(slog.String("run", runID))
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.sl.Debug(msg, args...)
}

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.sl.Info(msg, args...)
}

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.sl.Warn(msg, args...)
}

// Error logs at LevelError.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.sl.Error(msg, args...)
}

// LogAttrs logs with pre-built attributes (used by the slow-run dump).
func (l *Logger) LogAttrs(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if l == nil {
		return
	}
	l.sl.LogAttrs(ctx, level, msg, attrs...)
}

// LogSlow emits a warn-level stage breakdown for a run whose wall time
// exceeded threshold; below it (or with threshold<=0, nil logger, or nil
// trace) it is a no-op. Returns whether a line was emitted.
func (l *Logger) LogSlow(tr *Trace, runID string, elapsed, threshold time.Duration) bool {
	if l == nil {
		return false
	}
	if threshold <= 0 || elapsed < threshold || !tr.Enabled() {
		return false
	}
	attrs := []slog.Attr{
		slog.String("run", runID),
		slog.Duration("elapsed", elapsed),
		slog.Duration("threshold", threshold),
	}
	attrs = append(attrs, tr.BreakdownAttrs()...)
	l.LogAttrs(context.Background(), slog.LevelWarn, "slow run", attrs...) //vc2m:bgctx slog demands a context; the logging hooks carry none and never block
	return true
}

// discardHandler is a no-op slog.Handler (go1.22 lacks slog.DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogConfig carries the CLI logging flags shared by every vc2m command.
type LogConfig struct {
	// Level is the minimum level: "debug", "info", "warn", "error", or
	// "off" (drop everything).
	Level string
	// JSON selects slog's JSON handler instead of the text handler.
	JSON bool
}

// LogFlags registers the shared -log-level / -log-json flags on fs and
// returns the destination config. defaultLevel is typically "warn" for
// batch CLIs and "info" for the server.
func LogFlags(fs *flag.FlagSet, defaultLevel string) *LogConfig {
	cfg := &LogConfig{Level: defaultLevel}
	fs.StringVar(&cfg.Level, "log-level", defaultLevel, "log level: debug, info, warn, error, off")
	fs.BoolVar(&cfg.JSON, "log-json", false, "emit logs as JSON instead of text")
	return cfg
}

// ParseLevel maps a level name to its slog level. The second return is
// false for "off"/"none" (meaning: no logger at all).
func ParseLevel(name string) (slog.Level, bool, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "debug":
		return slog.LevelDebug, true, nil
	case "info", "":
		return slog.LevelInfo, true, nil
	case "warn", "warning":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	case "off", "none":
		return 0, false, nil
	default:
		return 0, false, fmt.Errorf("unknown log level %q (want debug, info, warn, error, or off)", name)
	}
}

// Build constructs the Logger described by the config, writing to w
// (conventionally stderr) with attrs bound to every line. Level "off"
// returns nil — the disabled logger.
func (c *LogConfig) Build(w io.Writer, attrs ...slog.Attr) (*Logger, error) {
	if c == nil {
		return nil, nil
	}
	level, on, err := ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	if !on {
		return nil, nil
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if c.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	if len(attrs) > 0 {
		h = h.WithAttrs(attrs)
	}
	return NewLogger(slog.New(h)), nil
}
