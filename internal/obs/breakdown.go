package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"time"
)

// StageStat aggregates every ended span of one stage name.
type StageStat struct {
	Stage string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration for the stage.
func (s StageStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Breakdown aggregates the trace's ended spans per stage name, sorted by
// descending total time (ties by name) — the "where did the wall clock
// go" table. Nil traces yield an empty table.
func (t *Trace) Breakdown() []StageStat {
	if t == nil {
		return nil
	}
	byStage := map[string]*StageStat{}
	for _, rec := range t.Snapshot() {
		st, ok := byStage[rec.Name]
		if !ok {
			st = &StageStat{Stage: rec.Name, Min: rec.Duration, Max: rec.Duration}
			byStage[rec.Name] = st
		}
		st.Count++
		st.Total += rec.Duration
		if rec.Duration < st.Min {
			st.Min = rec.Duration
		}
		if rec.Duration > st.Max {
			st.Max = rec.Duration
		}
	}
	out := make([]StageStat, 0, len(byStage))
	for _, st := range byStage { //vc2m:ordered rows are sorted below
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// WriteBreakdown renders the per-stage latency table as aligned text.
func (t *Trace) WriteBreakdown(w io.Writer) error {
	stats := t.Breakdown() // nil-safe
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "no ended spans")
		return err
	}
	width := len("stage")
	for _, st := range stats {
		if len(st.Stage) > width {
			width = len(st.Stage)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %6s  %12s  %12s  %12s  %12s\n",
		width, "stage", "count", "total", "min", "mean", "max"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", width+6+4*12+10)); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "%-*s  %6d  %12s  %12s  %12s  %12s\n",
			width, st.Stage, st.Count,
			fmtDur(st.Total), fmtDur(st.Min), fmtDur(st.Mean()), fmtDur(st.Max)); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur rounds durations to a readable precision for the table.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// BreakdownAttrs converts the table into slog attributes, one group per
// stage, for the slow-run log.
func (t *Trace) BreakdownAttrs() []slog.Attr {
	if t == nil {
		return nil
	}
	stats := t.Breakdown()
	attrs := make([]slog.Attr, 0, len(stats))
	for _, st := range stats {
		attrs = append(attrs, slog.Group(st.Stage,
			slog.Int("count", st.Count),
			slog.Duration("total", st.Total),
			slog.Duration("mean", st.Mean()),
			slog.Duration("max", st.Max),
		))
	}
	return attrs
}
