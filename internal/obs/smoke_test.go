package obs

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The two tests in this file are environment-gated smoke probes driven by
// the Makefile: server-smoke points VC2M_PROM_URL at a live /metrics
// endpoint, obs-smoke points VC2M_SPANS_FILE at a span export from a
// seeded vc2m-sim run. Without the variables they skip, so plain
// `go test ./...` is unaffected.

// TestPromScrapeLive scrapes a live /metrics endpoint and validates the
// whole document against the text exposition format, then asserts the
// per-stage latency histograms the acceptance criteria name.
func TestPromScrapeLive(t *testing.T) {
	url := os.Getenv("VC2M_PROM_URL")
	if url == "" {
		t.Skip("VC2M_PROM_URL not set (run via make server-smoke)")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close() //vc2m:closeflush response body close errors are uninformative by contract
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape Content-Type = %q", ct)
	}
	fams, err := ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("live /metrics is not parser-clean: %v", err)
	}
	byName := map[string]*PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"vc2m_runs_total",
		"vc2m_decisions_total",
		"vc2m_queue_depth",
		"vc2m_workers_in_flight",
		"vc2m_stage_latency_seconds",
		"vc2m_http_requests_total",
	} {
		if byName[want] == nil {
			t.Errorf("live /metrics missing family %q", want)
		}
	}
	hist := byName["vc2m_stage_latency_seconds"]
	if hist == nil {
		t.Fatal("no stage latency histogram")
	}
	if hist.Type != "histogram" {
		t.Fatalf("vc2m_stage_latency_seconds TYPE = %q", hist.Type)
	}
	stages := map[string]bool{}
	for _, s := range hist.Samples {
		if st := s.Labels["stage"]; st != "" {
			stages[st] = true
		}
	}
	for _, want := range []string{
		StagePhase1, StagePhase2, StagePhase3, StageCSADerive, StageHypersim,
	} {
		if !stages[want] {
			t.Errorf("stage latency histogram missing series for %q (have %v)", want, stages)
		}
	}

	// Exemplar contract: after at least one run, the latency buckets carry
	// OpenMetrics exemplars whose trace_id names the request trace that
	// produced the observation — the link vc2m-top renders as LAST TRACE.
	exemplars := 0
	for _, s := range hist.Samples {
		if s.Exemplar == nil {
			continue
		}
		exemplars++
		tid := s.Exemplar.Labels["trace_id"]
		if len(tid) != 32 || strings.Trim(tid, "0123456789abcdef") != "" {
			t.Errorf("bucket exemplar trace_id %q is not a 32-lower-hex trace ID", tid)
		}
	}
	if exemplars == 0 {
		t.Error("stage latency histogram carries no trace exemplars on a server that has executed runs")
	}
}

// TestSpanGoldenStages reads the Chrome span export of a seeded run and
// diffs its stage set against the committed golden — durations vary run
// to run, the stage set of a seeded workload does not.
func TestSpanGoldenStages(t *testing.T) {
	path := os.Getenv("VC2M_SPANS_FILE")
	if path == "" {
		t.Skip("VC2M_SPANS_FILE not set (run via make obs-smoke)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open span export: %v", err)
	}
	defer f.Close() //vc2m:closeflush read-only handle; the close error carries no data
	stages, err := ReadChromeStages(f)
	if err != nil {
		t.Fatalf("decode span export: %v", err)
	}
	got := strings.Join(stages, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "span_stages.golden")
	if os.Getenv("VC2M_UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (set VC2M_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(golden) {
		t.Fatalf("stage set drifted from golden.\ngot:\n%swant:\n%s\n(set VC2M_UPDATE_GOLDEN=1 to regenerate)",
			got, golden)
	}
	// The golden itself must cover the instrumented pipeline.
	for _, want := range []string{StageRun, StageVMLevel, StageHyper, StagePhase1, StageHypersim} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("seeded run produced no %q span", want)
		}
	}
	fmt.Fprintf(os.Stderr, "obs-smoke: %d stages matched golden\n", len(stages))
}
