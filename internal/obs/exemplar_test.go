package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestHistogramExemplarExposition drives ObserveExemplar end to end: the
// exposition carries OpenMetrics exemplar suffixes on exactly the buckets
// that saw exemplared observations, the document stays parser- and
// validator-clean, and each exemplar names the most recent trace.
func TestHistogramExemplarExposition(t *testing.T) {
	reg := NewPromRegistry()
	h := reg.NewHistogram("stage_seconds", "Stage latency.",
		[]float64{0.01, 0.1, 1}, "stage")
	h.ObserveExemplar(0.05, "aaaa0000aaaa0000aaaa0000aaaa0000", "run")
	h.ObserveExemplar(0.07, "bbbb0000bbbb0000bbbb0000bbbb0000", "run") // replaces the 0.1 bucket's exemplar
	h.ObserveExemplar(42, "cccc0000cccc0000cccc0000cccc0000", "run")   // +Inf bucket
	h.Observe(0.5, "run")                                              // no exemplar on the le=1 bucket
	h.ObserveExemplar(0.001, "", "run")                                // empty trace ID: plain observe

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := ValidateExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exemplar-bearing exposition is not validator-clean: %v\n%s", err, text)
	}
	if len(fams) != 1 {
		t.Fatalf("families: %d", len(fams))
	}
	byLE := map[string]*PromSample{}
	for i := range fams[0].Samples {
		s := &fams[0].Samples[i]
		if strings.HasSuffix(s.Name, "_bucket") {
			byLE[s.Labels["le"]] = s
		}
	}
	wantTrace := map[string]string{
		"0.01": "",                                 // exemplar-less (empty trace ID observation)
		"0.1":  "bbbb0000bbbb0000bbbb0000bbbb0000", // most recent wins
		"1":    "",                                 // plain Observe
		"+Inf": "cccc0000cccc0000cccc0000cccc0000",
	}
	for le, want := range wantTrace { //vc2m:ordered independent per-bucket assertions; order cannot escape
		s := byLE[le]
		if s == nil {
			t.Fatalf("no bucket le=%s in:\n%s", le, text)
		}
		got := ""
		if s.Exemplar != nil {
			got = s.Exemplar.Labels["trace_id"]
		}
		if got != want {
			t.Errorf("bucket le=%s exemplar trace %q, want %q", le, got, want)
		}
	}
	if ex := byLE["0.1"].Exemplar; ex == nil || ex.Value != 0.07 { //vc2m:floateq round-trips the exact literal observed above
		t.Errorf("le=0.1 exemplar value %+v, want 0.07", byLE["0.1"].Exemplar)
	}
	// _count must reflect all five observations.
	for _, s := range fams[0].Samples {
		if s.Name == "stage_seconds_count" && s.Value != 5 { //vc2m:floateq integer count round-trips exactly
			t.Errorf("count = %v, want 5", s.Value)
		}
	}
}
