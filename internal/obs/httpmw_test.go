package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestLogger(buf io.Writer) *Logger {
	l, err := (&LogConfig{Level: "debug"}).Build(buf)
	if err != nil {
		panic(err)
	}
	return l
}

func TestMiddlewareMintsAndEchoesRequestID(t *testing.T) {
	var seen string
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFromContext(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}), nil, nil, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if seen == "" {
		t.Fatal("no request ID in context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Fatalf("echoed ID %q != context ID %q", got, seen)
	}

	// Inbound IDs are honored.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "caller-abc")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "caller-abc" || rec.Header().Get(RequestIDHeader) != "caller-abc" {
		t.Fatalf("inbound ID not propagated: ctx=%q hdr=%q", seen, rec.Header().Get(RequestIDHeader))
	}

	// Oversized inbound IDs are replaced, not trusted.
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 4096))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if len(seen) > 128 {
		t.Fatalf("oversized inbound ID accepted: %d bytes", len(seen))
	}
}

func TestMiddlewareRecoversPanicWithStack(t *testing.T) {
	var buf bytes.Buffer
	reg := NewPromRegistry()
	m := NewHTTPMetrics(reg)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), newTestLogger(&buf), m, func(*http.Request) string { return "/boom" })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil)) // must not propagate the panic
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	out := buf.String()
	if !strings.Contains(out, "kaboom") {
		t.Fatalf("panic value not logged: %s", out)
	}
	if !strings.Contains(out, "httpmw_test.go") && !strings.Contains(out, "goroutine") {
		t.Fatalf("stack not logged: %s", out)
	}
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `vc2m_http_requests_total{route="/boom",method="GET",code="500"} 1`) {
		t.Fatalf("panic not counted as 500:\n%s", expo.String())
	}
}

func TestMiddlewareAccessLogAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	reg := NewPromRegistry()
	m := NewHTTPMetrics(reg)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}), newTestLogger(&buf), m, func(r *http.Request) string { return "/api/thing" })

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/thing?x=1", nil))
		if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
			t.Fatalf("response = %d %q", rec.Code, rec.Body.String())
		}
	}
	if got := strings.Count(buf.String(), "msg=request"); got != 3 {
		t.Fatalf("access log lines = %d\n%s", got, buf.String())
	}
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	if !strings.Contains(out, `vc2m_http_requests_total{route="/api/thing",method="GET",code="200"} 3`) {
		t.Fatalf("request counter wrong:\n%s", out)
	}
	if !strings.Contains(out, `vc2m_http_request_seconds_count{route="/api/thing"} 3`) {
		t.Fatalf("latency histogram wrong:\n%s", out)
	}
	if !strings.Contains(out, "vc2m_http_in_flight_requests 0") {
		t.Fatalf("in-flight gauge not back to zero:\n%s", out)
	}
}

// flushRecorder wraps httptest.ResponseRecorder and records Flush calls.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushed bool
}

func (f *flushRecorder) Flush() { f.flushed = true }

func TestMiddlewarePreservesFlusher(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware writer lost http.Flusher")
			return
		}
		_, _ = io.WriteString(w, "chunk")
		f.Flush()
	}), nil, nil, nil)
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !rec.flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

func TestMiddlewareConcurrentRequests(t *testing.T) {
	var buf syncBuffer
	reg := NewPromRegistry()
	m := NewHTTPMetrics(reg)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestIDFromContext(r.Context()) == "" {
			t.Error("missing request ID")
		}
		_, _ = io.WriteString(w, "ok")
	}), newTestLogger(&buf), m, func(*http.Request) string { return "/x" })

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			}
		}()
	}
	wg.Wait()
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `vc2m_http_requests_total{route="/x",method="GET",code="200"} 200`) {
		t.Fatalf("counter after hammer:\n%s", expo.String())
	}
}

// syncBuffer makes bytes.Buffer safe for the concurrent logger writes in
// the hammer test.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}
