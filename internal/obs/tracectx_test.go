package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("minted context invalid: %+v", tc)
	}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("ID lengths: trace %d span %d", len(tc.TraceID), len(tc.SpanID))
	}
	h := tc.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestTraceContextUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tc := NewTraceContext()
		if seen[tc.TraceID] {
			t.Fatalf("duplicate trace ID %s after %d mints", tc.TraceID, i)
		}
		seen[tc.TraceID] = true
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",    // bad flags hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // all-zero span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01-xx", // bad separators
	} {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
	// Valid unsampled header parses with Sampled=false.
	tc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || tc.Sampled {
		t.Fatalf("unsampled parse: %+v ok=%v", tc, ok)
	}
}

func TestContextPlumbing(t *testing.T) {
	if _, ok := TraceContextFromContext(context.Background()); ok {
		t.Fatal("empty context reports a trace context")
	}
	tc := NewTraceContext()
	ctx := ContextWithTraceContext(context.Background(), tc)
	got, ok := TraceContextFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestNewTraceWithAdoptsContext(t *testing.T) {
	tc := NewTraceContext()
	tr := NewTraceWith(tc)
	if tr.TraceContext() != tc || tr.TraceID() != tc.TraceID {
		t.Fatalf("trace did not adopt context: %+v", tr.TraceContext())
	}
	// Invalid context → a fresh one is minted.
	tr2 := NewTraceWith(TraceContext{})
	if !tr2.TraceContext().Valid() {
		t.Fatal("NewTraceWith(zero) left the trace without an ID")
	}
	// Nil-safety.
	var nilTr *Trace
	if nilTr.TraceContext().Valid() || nilTr.TraceID() != "" {
		t.Fatal("nil trace reports a context")
	}
}
