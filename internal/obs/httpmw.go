package obs

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTPMetrics bundles the registry series the HTTP middleware feeds.
type HTTPMetrics struct {
	requests *Counter
	latency  *Histogram
	inFlight *Gauge
}

// NewHTTPMetrics registers the standard HTTP server series on r.
func NewHTTPMetrics(r *PromRegistry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.NewCounter("vc2m_http_requests_total",
			"HTTP requests served, by normalized route, method and status code.",
			"route", "method", "code"),
		latency: r.NewHistogram("vc2m_http_request_seconds",
			"HTTP request latency in seconds, by normalized route.",
			nil, "route"),
		inFlight: r.NewGauge("vc2m_http_in_flight_requests",
			"HTTP requests currently being served."),
	}
}

// RequestIDHeader is the header the middleware reads and echoes.
const RequestIDHeader = "X-Request-Id"

type requestIDKey struct{}

var requestIDCounter atomic.Uint64

// ContextWithRequestID returns a context carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID minted or accepted by the
// middleware ("" when not inside a request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Middleware wraps next with the server's standard observability chain:
// request-ID minting/propagation (inbound X-Request-Id up to 128 bytes is
// honored, otherwise one is minted), panic recovery (500 + logged stack;
// the serving goroutine survives), an access log line, and per-endpoint
// latency/in-flight metrics. route normalizes the URL path to a bounded
// label set (e.g. "/v1/runs/{id}"); nil logger and nil metrics are both
// fine — the chain still recovers panics and assigns IDs.
func Middleware(next http.Handler, logger *Logger, m *HTTPMetrics, route func(*http.Request) string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" || len(reqID) > 128 {
			reqID = fmt.Sprintf("req-%06d", requestIDCounter.Add(1))
		}
		w.Header().Set(RequestIDHeader, reqID)
		ctx := ContextWithRequestID(r.Context(), reqID)
		// W3C trace-context adoption: a valid inbound traceparent joins the
		// caller's trace; a malformed one is ignored per spec — never an
		// error — and the handler starts without a trace context.
		if tc, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
			ctx = ContextWithTraceContext(ctx, tc)
		}
		r = r.WithContext(ctx)

		routeLabel := r.URL.Path
		if route != nil {
			routeLabel = route(r)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now() //vc2m:wallclock request latency is wall time by design
		if m != nil {
			m.inFlight.Add(1)
		}
		defer func() {
			elapsed := time.Since(start) //vc2m:wallclock request latency is wall time by design
			if m != nil {
				m.inFlight.Add(-1)
			}
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // net/http's own abort protocol; let it through
				}
				logger.Error("panic serving request",
					slog.String("req", reqID),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())),
				)
				if !sw.wrote {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
				if m != nil {
					m.requests.Inc(routeLabel, r.Method, strconv.Itoa(sw.Status()))
					m.latency.Observe(elapsed.Seconds(), routeLabel)
				}
				return
			}
			if m != nil {
				m.requests.Inc(routeLabel, r.Method, strconv.Itoa(sw.Status()))
				m.latency.Observe(elapsed.Seconds(), routeLabel)
			}
			logger.Info("request",
				slog.String("req", reqID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", routeLabel),
				slog.Int("code", sw.Status()),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("elapsed", elapsed),
			)
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter captures the response status and byte count while
// preserving the http.Flusher capability of the underlying writer, which
// the provenance streaming endpoint depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// chunked streaming keeps working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the response code sent (200 if the handler wrote a body
// without an explicit WriteHeader, 0 if nothing was written).
func (w *statusWriter) Status() int {
	if !w.wrote {
		return 0
	}
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
