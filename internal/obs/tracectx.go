package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
)

// This file implements W3C Trace Context propagation (the `traceparent`
// header, https://www.w3.org/TR/trace-context/) for the observability
// layer: the client mints a trace ID per request, the HTTP middleware
// adopts it, the server threads it through the run's span trace, and the
// per-stage latency histograms attach it to exemplars — so a slow bucket
// on /metrics names the exact trace (and therefore the submitting
// client's request) that landed in it. Trace IDs are pure telemetry: like
// spans, they live strictly OUTSIDE every vc2m.report/v1 document.

// TraceparentHeader is the W3C trace-context request header.
const TraceparentHeader = "traceparent"

// TraceContext is a parsed traceparent: the 16-byte trace ID and the
// 8-byte ID of the caller's span, both lower-hex. The zero value is the
// absent context; Valid reports presence.
type TraceContext struct {
	// TraceID is 32 lower-hex characters, not all zero.
	TraceID string
	// SpanID is 16 lower-hex characters, not all zero — the parent span
	// on inbound headers, the current span on outbound ones.
	SpanID string
	// Sampled is the trace-flags sampled bit. This repository records
	// spans whenever tracing is on, so the bit is carried, not obeyed.
	Sampled bool
}

// Valid reports whether the context carries a usable trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" && tc.SpanID != "" }

// Traceparent renders the context in wire form
// ("00-<trace-id>-<span-id>-<flags>"). Invalid contexts render "".
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header value. Malformed headers
// return ok=false and MUST be ignored by callers (the spec's restart
// semantics): a bad header never rejects a request, it just starts a
// fresh trace.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	// version "00": fixed layout 2-32-16-2 with dash separators.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isLowerHex(version) || !isLowerHex(traceID) || !isLowerHex(spanID) || !isLowerHex(flags) {
		return TraceContext{}, false
	}
	// Version ff is forbidden; all-zero IDs are invalid per spec.
	if version == "ff" || allZero(traceID) || allZero(spanID) {
		return TraceContext{}, false
	}
	f, err := hex.DecodeString(flags)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: spanID, Sampled: f[0]&0x01 != 0}, true
}

func isLowerHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ID minting: an 8-byte per-process random prefix plus an atomic counter.
// The prefix makes IDs unique across processes, the counter within one —
// no per-call entropy reads on the hot path, and no math/rand (the nondet
// analyzer reserves that for seeded domain randomness).
var (
	idPrefix  [8]byte
	idCounter atomic.Uint64
)

func init() {
	if _, err := crand.Read(idPrefix[:]); err != nil {
		// Entropy-less environments still get process-unique prefixes.
		binary.BigEndian.PutUint64(idPrefix[:], uint64(os.Getpid())<<32|0x76633263) // "vc2c"
	}
}

// NewTraceContext mints a fresh trace: a new trace ID and a new root span
// ID, sampled.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newTraceID(), SpanID: NewSpanID(), Sampled: true}
}

func newTraceID() string {
	var b [16]byte
	copy(b[:8], idPrefix[:])
	binary.BigEndian.PutUint64(b[8:], idCounter.Add(1))
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a process-unique 8-byte span ID.
func NewSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], binary.BigEndian.Uint32(idPrefix[4:8]))
	binary.BigEndian.PutUint32(b[4:], uint32(idCounter.Add(1)))
	return hex.EncodeToString(b[:])
}

type traceCtxKey struct{}

// ContextWithTraceContext returns a context carrying the trace context.
func ContextWithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFromContext returns the trace context adopted by the
// middleware or planted by a client (ok=false when absent).
func TraceContextFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// InjectTraceContext stamps the request with the context's traceparent
// header (a no-op for invalid contexts).
func InjectTraceContext(req *http.Request, tc TraceContext) {
	if tp := tc.Traceparent(); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
}
