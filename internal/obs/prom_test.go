package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPromCounterGaugeExposition(t *testing.T) {
	r := NewPromRegistry()
	c := r.NewCounter("vc2m_runs_total", "Runs by terminal state.", "state")
	c.Inc("succeeded")
	c.Add(2, "failed")
	c.Preregister("canceled")
	g := r.NewGauge("vc2m_queue_depth", "Queued runs.")
	g.Set(7)
	r.NewGaugeFunc("vc2m_up", "Always 1.", func() float64 { return 1 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP vc2m_runs_total Runs by terminal state.",
		"# TYPE vc2m_runs_total counter",
		`vc2m_runs_total{state="canceled"} 0`,
		`vc2m_runs_total{state="failed"} 2`,
		`vc2m_runs_total{state="succeeded"} 1`,
		"# TYPE vc2m_queue_depth gauge",
		"vc2m_queue_depth 7",
		"vc2m_up 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name in the output.
	if strings.Index(out, "vc2m_queue_depth") > strings.Index(out, "vc2m_runs_total") {
		t.Fatal("families not sorted")
	}
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own output failed validation: %v", err)
	}
}

func TestPromHistogramExposition(t *testing.T) {
	r := NewPromRegistry()
	h := r.NewHistogram("vc2m_stage_latency_seconds", "Per-stage latency.",
		[]float64{0.01, 0.1, 1}, "stage")
	h.Observe(0.005, "alloc.phase1")
	h.Observe(0.05, "alloc.phase1")
	h.Observe(5, "alloc.phase1") // above the top bucket: only +Inf
	h.Preregister("alloc.phase2")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`vc2m_stage_latency_seconds_bucket{stage="alloc.phase1",le="0.01"} 1`,
		`vc2m_stage_latency_seconds_bucket{stage="alloc.phase1",le="0.1"} 2`,
		`vc2m_stage_latency_seconds_bucket{stage="alloc.phase1",le="1"} 2`,
		`vc2m_stage_latency_seconds_bucket{stage="alloc.phase1",le="+Inf"} 3`,
		`vc2m_stage_latency_seconds_count{stage="alloc.phase1"} 3`,
		`vc2m_stage_latency_seconds_bucket{stage="alloc.phase2",le="+Inf"} 0`,
		`vc2m_stage_latency_seconds_count{stage="alloc.phase2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	fams, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("histogram output failed validation: %v", err)
	}
	if len(fams) != 1 || fams[0].Type != "histogram" {
		t.Fatalf("families = %+v", fams)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewPromRegistry()
	c := r.NewCounter("vc2m_test_total", "Escape test.", "reason")
	tricky := "a\\b\"c\nd"
	c.Inc(tricky)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `reason="a\\b\"c\nd"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	fams, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("escaped output failed validation: %v", err)
	}
	if got := fams[0].Samples[0].Labels["reason"]; got != tricky {
		t.Fatalf("round-trip = %q, want %q", got, tricky)
	}
}

func TestPromSpecialValues(t *testing.T) {
	r := NewPromRegistry()
	g := r.NewGauge("vc2m_special", "Special values.")
	g.Set(math.Inf(1))
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(b.String(), "vc2m_special +Inf") {
		t.Fatalf("infinity rendering:\n%s", b.String())
	}
}

func TestPromRegistrationPanics(t *testing.T) {
	r := NewPromRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid metric name", func() { r.NewCounter("1bad", "x") })
	mustPanic("invalid label name", func() { r.NewCounter("vc2m_ok_total", "x", "le") })
	r.NewCounter("vc2m_dup_total", "x")
	mustPanic("duplicate registration", func() { r.NewGauge("vc2m_dup_total", "x") })
	mustPanic("non-increasing buckets", func() {
		r.NewHistogram("vc2m_bad_hist", "x", []float64{1, 1})
	})
	c := r.NewCounter("vc2m_arity_total", "x", "a")
	mustPanic("label arity", func() { c.Inc("x", "y") })
	mustPanic("counter decrease", func() { c.Add(-1, "x") })
}

func TestPromHandlerContentType(t *testing.T) {
	r := NewPromRegistry()
	r.NewGaugeFunc("vc2m_up", "Always 1.", func() float64 { return 1 })
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close() //vc2m:closeflush response body close errors are uninformative by contract
	if got := resp.Header.Get("Content-Type"); got != PromContentType {
		t.Fatalf("Content-Type = %q", got)
	}
	if _, err := ValidateExposition(resp.Body); err != nil {
		t.Fatalf("served output failed validation: %v", err)
	}
}

func TestPromConcurrentScrapeRace(t *testing.T) {
	r := NewPromRegistry()
	c := r.NewCounter("vc2m_hammer_total", "Race hammer.", "worker")
	h := r.NewHistogram("vc2m_hammer_seconds", "Race hammer.", nil, "worker")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for { //vc2m:ctxfree scrape hammer; the stop channel bounds it
				select {
				case <-stop:
					return
				default:
					c.Inc(id)
					h.Observe(0.001, id)
				}
			}
		}(strings.Repeat("w", i+1))
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatalf("WriteText under load: %v", err)
		}
		if _, err := ValidateExposition(strings.NewReader(b.String())); err != nil {
			t.Fatalf("scrape %d invalid under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
