package obs

import (
	"strings"
	"testing"
)

func TestParseExpositionGood(t *testing.T) {
	doc := `# HELP vc2m_runs_total Runs by state.
# TYPE vc2m_runs_total counter
vc2m_runs_total{state="succeeded"} 3
vc2m_runs_total{state="failed"} 0
# HELP vc2m_queue_depth Queue depth.
# TYPE vc2m_queue_depth gauge
vc2m_queue_depth 2 1712000000000
`
	fams, err := ValidateExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d", len(fams))
	}
	if fams[0].Name != "vc2m_runs_total" || len(fams[0].Samples) != 2 {
		t.Fatalf("family 0 = %+v", fams[0])
	}
	if fams[1].Samples[0].Value != 2 {
		t.Fatalf("gauge value = %v", fams[1].Samples[0].Value)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": `vc2m_x_total 1
`,
		"duplicate TYPE": `# TYPE vc2m_x gauge
# TYPE vc2m_x gauge
vc2m_x 1
`,
		"TYPE after samples": `# HELP vc2m_x x
# TYPE vc2m_x gauge
vc2m_x 1
# TYPE vc2m_x counter
`,
		"unknown type": `# TYPE vc2m_x widget
vc2m_x 1
`,
		"ungrouped family": `# TYPE vc2m_a gauge
vc2m_a 1
# TYPE vc2m_b gauge
vc2m_b 1
vc2m_a 2
`,
		"bad escape": `# HELP vc2m_x x
# TYPE vc2m_x gauge
vc2m_x{l="a\qb"} 1
`,
		"unterminated label value": `# HELP vc2m_x x
# TYPE vc2m_x gauge
vc2m_x{l="a} 1
`,
		"bad value": `# HELP vc2m_x x
# TYPE vc2m_x gauge
vc2m_x hello
`,
		"invalid metric name": `# TYPE 9bad gauge
9bad 1
`,
		"reserved label name": `# HELP vc2m_x x
# TYPE vc2m_x gauge
vc2m_x{__meta="x"} 1
`,
	}
	for name, doc := range cases { //vc2m:ordered test-case map; order only affects error interleaving
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parse accepted malformed document", name)
		}
	}
}

func TestValidateExpositionHistogramInvariants(t *testing.T) {
	head := `# HELP vc2m_h Latency.
# TYPE vc2m_h histogram
`
	good := head + `vc2m_h_bucket{le="0.1"} 1
vc2m_h_bucket{le="1"} 3
vc2m_h_bucket{le="+Inf"} 4
vc2m_h_sum 2.5
vc2m_h_count 4
`
	if _, err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("good histogram rejected: %v", err)
	}
	cases := map[string]string{
		"non-cumulative buckets": head + `vc2m_h_bucket{le="0.1"} 5
vc2m_h_bucket{le="1"} 3
vc2m_h_bucket{le="+Inf"} 5
vc2m_h_sum 1
vc2m_h_count 5
`,
		"missing +Inf": head + `vc2m_h_bucket{le="1"} 3
vc2m_h_sum 1
vc2m_h_count 3
`,
		"+Inf != count": head + `vc2m_h_bucket{le="+Inf"} 4
vc2m_h_sum 1
vc2m_h_count 5
`,
		"missing sum": head + `vc2m_h_bucket{le="+Inf"} 4
vc2m_h_count 4
`,
		"non-increasing bounds": head + `vc2m_h_bucket{le="1"} 1
vc2m_h_bucket{le="0.5"} 2
vc2m_h_bucket{le="+Inf"} 2
vc2m_h_sum 1
vc2m_h_count 2
`,
	}
	for name, doc := range cases { //vc2m:ordered test-case map; order only affects error interleaving
		if _, err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validation accepted bad histogram", name)
		}
	}
}

func TestValidateExpositionRequiresHelpAndType(t *testing.T) {
	noHelp := `# TYPE vc2m_x gauge
vc2m_x 1
`
	if _, err := ValidateExposition(strings.NewReader(noHelp)); err == nil {
		t.Fatal("family without HELP accepted")
	}
}
