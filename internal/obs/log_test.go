package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	if l.Enabled() {
		t.Fatal("nil logger reports enabled")
	}
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if got := l.With("k", "v"); got != nil {
		t.Fatal("nil With returned non-nil")
	}
	if got := l.WithRun("r0001"); got != nil {
		t.Fatal("nil WithRun returned non-nil")
	}
	sl := l.Slog()
	if sl == nil {
		t.Fatal("nil logger Slog returned nil")
	}
	sl.Info("discarded") // must not panic
	if l.LogSlow(NewTrace(), "r0001", time.Second, time.Millisecond) {
		t.Fatal("nil logger claimed to emit")
	}
}

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		lvl  slog.Level
		on   bool
		fail bool
	}{
		{"debug", slog.LevelDebug, true, false},
		{"info", slog.LevelInfo, true, false},
		{"WARN", slog.LevelWarn, true, false},
		{"warning", slog.LevelWarn, true, false},
		{"error", slog.LevelError, true, false},
		{"off", 0, false, false},
		{"none", 0, false, false},
		{"loud", 0, false, true},
	}
	for _, c := range cases {
		lvl, on, err := ParseLevel(c.in)
		if c.fail {
			if err == nil {
				t.Errorf("ParseLevel(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || lvl != c.lvl || on != c.on {
			t.Errorf("ParseLevel(%q) = %v,%v,%v", c.in, lvl, on, err)
		}
	}
}

func TestLogFlagsAndBuild(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cfg := LogFlags(fs, "warn")
	if err := fs.Parse([]string{"-log-level", "info", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l, err := cfg.Build(&buf, slog.String("version", "test"))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l.Info("hello", "answer", 42)
	l.Debug("dropped")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["version"] != "test" || rec["answer"] != float64(42) {
		t.Fatalf("record = %v", rec)
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Fatal("debug line emitted at info level")
	}
}

func TestBuildOffReturnsNil(t *testing.T) {
	cfg := &LogConfig{Level: "off"}
	l, err := cfg.Build(&bytes.Buffer{})
	if err != nil || l != nil {
		t.Fatalf("Build(off) = %v, %v", l, err)
	}
	bad := &LogConfig{Level: "shout"}
	if _, err := bad.Build(&bytes.Buffer{}); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestLogSlow(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan(StagePhase1)
	sp.End()
	var buf bytes.Buffer
	l, err := (&LogConfig{Level: "warn"}).Build(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Below threshold: silent.
	if l.LogSlow(tr, "r0001", 10*time.Millisecond, time.Second) {
		t.Fatal("fast run logged as slow")
	}
	if buf.Len() != 0 {
		t.Fatalf("unexpected output: %s", buf.String())
	}
	// Above threshold: one warn line with the breakdown.
	if !l.LogSlow(tr, "r0001", 2*time.Second, time.Second) {
		t.Fatal("slow run not logged")
	}
	out := buf.String()
	if !strings.Contains(out, "slow run") || !strings.Contains(out, "r0001") ||
		!strings.Contains(out, StagePhase1) {
		t.Fatalf("slow-run line = %s", out)
	}
	// Threshold 0 disables.
	buf.Reset()
	if l.LogSlow(tr, "r0001", time.Hour, 0) {
		t.Fatal("zero threshold logged")
	}
}
