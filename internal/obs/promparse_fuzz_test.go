package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPromParse fuzzes the text-exposition parser for panics and for
// parse→write→parse round-trip stability: any document the parser
// accepts must render through WriteExposition into a document that (a)
// parses again and (b) re-renders byte-identically — the canonical form
// is a fixed point.
func FuzzPromParse(f *testing.F) {
	// A real registry document, exemplars included.
	reg := NewPromRegistry()
	c := reg.NewCounter("vc2m_runs_total", "Runs by state.", "state")
	c.Inc("done")
	c.Preregister("failed")
	h := reg.NewHistogram("vc2m_stage_latency_seconds", "Stage latency.",
		[]float64{0.001, 0.1, 1}, "stage")
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736", "run")
	h.ObserveExemplar(25, "00f067aa0ba902b700f067aa0ba902b7", "run")
	reg.NewGaugeFunc("vc2m_queue_depth", "Queue depth.", func() float64 { return 3 })
	var live bytes.Buffer
	if err := reg.WriteText(&live); err != nil {
		f.Fatal(err)
	}
	f.Add(live.String())

	f.Add("# HELP a b\n# TYPE a counter\na 1\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2 # {trace_id=\"ab\"} 1.5\nh_sum 3\nh_count 2\n")
	f.Add("# TYPE g gauge\ng{x=\"a\\\\b\\\"c\\nd\"} NaN 1234\n")
	f.Add("# TYPE u untyped\nu{q=\"v\"} -Inf\n")
	f.Add("a 1\n")         // sample without TYPE: must error, not panic
	f.Add("# HELP solo\n") // HELP-only family
	f.Add("# TYPE e counter\ne 5 # {} 2 1.5\n")

	f.Fuzz(func(t *testing.T, input string) {
		fams, err := ParseExposition(strings.NewReader(input))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var out1 bytes.Buffer
		if err := WriteExposition(&out1, fams); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		fams2, err := ParseExposition(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of written exposition failed: %v\ninput:\n%s\nwritten:\n%s",
				err, input, out1.String())
		}
		var out2 bytes.Buffer
		if err := WriteExposition(&out2, fams2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("canonical form is not a fixed point.\nfirst:\n%s\nsecond:\n%s",
				out1.String(), out2.String())
		}
		// Sample population must survive the round trip family-by-family
		// (families that carry nothing expressible may be dropped).
		count := func(fs []*PromFamily) int {
			n := 0
			for _, fam := range fs {
				n += len(fam.Samples)
			}
			return n
		}
		if count(fams) != count(fams2) {
			t.Fatalf("round trip changed sample count: %d -> %d", count(fams), count(fams2))
		}
	})
}
