package obs

import (
	"log/slog"
	"runtime"
	"runtime/debug"
)

// version is the release stamp, overridable at link time:
//
//	go build -ldflags "-X vc2m/internal/obs.version=v1.2.3"
var version = "dev"

// BuildInfo describes the running binary for /healthz, -version flags and
// root logger attributes.
type BuildInfo struct {
	// Version is the link-time stamp ("dev" for unstamped builds).
	Version string `json:"version"`
	// Commit is the VCS revision embedded by the go tool, when built from
	// a checkout ("" otherwise); Dirty marks uncommitted modifications.
	Commit string `json:"commit,omitempty"`
	Dirty  bool   `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// GetBuildInfo resolves the binary's build identity from the link-time
// stamp plus the toolchain's embedded VCS metadata.
func GetBuildInfo() BuildInfo {
	bi := BuildInfo{Version: version, GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.Commit = s.Value
			case "vcs.modified":
				bi.Dirty = s.Value == "true"
			}
		}
	}
	return bi
}

// String renders "version (commit, go1.xx)" for -version output.
func (b BuildInfo) String() string {
	s := b.Version
	commit := b.Commit
	if len(commit) > 12 {
		commit = commit[:12]
	}
	if commit != "" {
		if b.Dirty {
			commit += "+dirty"
		}
		s += " (" + commit + ", " + b.GoVersion + ")"
	} else {
		s += " (" + b.GoVersion + ")"
	}
	return s
}

// LogAttrs returns the attributes bound to a root logger so every line
// carries the build identity.
func (b BuildInfo) LogAttrs() []slog.Attr {
	attrs := []slog.Attr{slog.String("version", b.Version)}
	if b.Commit != "" {
		commit := b.Commit
		if len(commit) > 12 {
			commit = commit[:12]
		}
		attrs = append(attrs, slog.String("commit", commit))
	}
	return attrs
}
