// Package obs is vC2M's zero-dependency observability layer: hierarchical
// wall-clock spans, structured logging on log/slog, and Prometheus
// text-format metric exposition. It exists so that "where does the time
// go" questions — the order-of-magnitude running-time gap between CSA
// modes in the paper's Figure 4, or the slow existing-CSA path that bounds
// sweep and server throughput — are answerable from telemetry instead of
// ad-hoc timers.
//
// The package deliberately separates three signals that the repository
// already distinguishes elsewhere:
//
//   - Spans (Trace, Span) measure *wall-clock* stage latency: how long the
//     allocator's VM level, CSA interface derivation, hypervisor-level
//     phases 1-3, the hypervisor simulator and each sweep point actually
//     took on this machine. Spans are nondeterministic by nature and live
//     strictly OUTSIDE every vc2m.report/v1 document — identically-seeded
//     runs stay byte-identical with spans enabled, which a regression test
//     guards.
//   - The flight recorder (package trace) records *simulated-time* events:
//     what the modeled hypervisor did at which tick. Deterministic,
//     diffable, part of the determinism contract.
//   - The metrics recorder (package metrics) counts *search effort*
//     deterministically (dbf evaluations, packings, grants); its counters
//     are comparable across machines, unlike span durations.
//
// Every hook in this package follows the repository's nil-safety contract:
// a nil *Trace, *Span or *Logger is the disabled state, every method on it
// is a safe no-op, and instrumented code pays one pointer comparison when
// observability is off. The nilsafe lint analyzer enforces this.
package obs

// Span stage names recorded by the instrumented pipeline. The server's
// per-stage latency histograms pre-register these, so a scrape exposes
// every stage even before it has been exercised.
const (
	// StageRun is the conventional root span of one allocation run (the
	// vc2m-sim driver and the allocation server both use it).
	StageRun = "run"
	// StageVMLevel covers the tasks-to-VCPUs mapping across all VMs
	// (Section 4.2).
	StageVMLevel = "alloc.vmlevel"
	// StageCSADerive covers one VCPU's interface derivation (budget
	// table computation) by the selected analysis.
	StageCSADerive = "csa.derive"
	// StageHyper covers the hypervisor-level search (Section 4.3).
	StageHyper = "alloc.hyper"
	// StagePhase1, StagePhase2 and StagePhase3 cover the search's inner
	// phases: packing, incremental resource allocation, load balancing.
	StagePhase1 = "alloc.phase1"
	StagePhase2 = "alloc.phase2"
	StagePhase3 = "alloc.phase3"
	// StageIncremental covers one warm-start re-allocation of a churn
	// delta (departures, arrivals, and any repack fallback).
	StageIncremental = "alloc.incremental"
	// StageHypersim covers one hypervisor-simulator execution.
	StageHypersim = "hypersim.run"
	// StageSweepPoint covers one utilization point of a schedulability
	// sweep (all tasksets, all solutions).
	StageSweepPoint = "experiment.point"
)

// KnownStages lists every stage name above, in pipeline order. The server
// pre-registers its per-stage latency histogram series from this list.
func KnownStages() []string {
	return []string{
		StageRun, StageVMLevel, StageCSADerive, StageHyper,
		StagePhase1, StagePhase2, StagePhase3,
		StageIncremental, StageHypersim, StageSweepPoint,
	}
}
