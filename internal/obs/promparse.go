package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the verification half of the exposition story: a strict
// parser for the Prometheus text format used by tests (and server-smoke)
// to prove that what /metrics serves is ingestible by a real scraper —
// HELP/TYPE pairing, label escaping, and histogram invariants included.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix for histogram series.
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the sample's OpenMetrics exemplar ("# {trace_id=...} v"
	// after the value), nil when absent. The registry attaches them to
	// histogram buckets so a latency bucket names a recent trace.
	Exemplar *Exemplar
}

// PromFamily is one parsed metric family: its HELP/TYPE metadata and
// every sample line grouped under it.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseExposition parses Prometheus text format v0.0.4 strictly: every
// sample must belong to a family whose # TYPE line precedes it, HELP and
// TYPE appear at most once per family, families are contiguous, and
// names, labels and values are well-formed. It returns families in input
// order.
func ParseExposition(r io.Reader) ([]*PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		fams  []*PromFamily
		byNm  = map[string]*PromFamily{}
		cur   *PromFamily
		line  int
		sawNm = map[string]bool{} // families already closed (contiguity check)
	)
	getFamily := func(name string) *PromFamily {
		if f, ok := byNm[name]; ok {
			return f
		}
		f := &PromFamily{Name: name}
		byNm[name] = f
		fams = append(fams, f)
		return f
	}
	switchTo := func(f *PromFamily) error {
		if cur == f {
			return nil
		}
		if cur != nil {
			sawNm[cur.Name] = true
		}
		if sawNm[f.Name] {
			return fmt.Errorf("line %d: family %q reopened after other families (lines must be grouped)", line, f.Name)
		}
		cur = f
		return nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.SplitN(trimmed, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in %s line", line, name, fields[1])
			}
			f := getFamily(name)
			if err := switchTo(f); err != nil {
				return nil, err
			}
			switch fields[1] {
			case "HELP":
				if f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %q", line, name)
				}
				if len(fields) == 4 {
					help, err := unescapeHelp(fields[3])
					if err != nil {
						return nil, fmt.Errorf("line %d: %w", line, err)
					}
					f.Help = help
				}
			case "TYPE":
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", line, name)
				}
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE line for %q missing type", line, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = fields[3]
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", line, fields[3], name)
				}
			}
			continue
		}
		sample, err := parseSampleLine(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		famName := sampleFamilyName(sample.Name, byNm)
		f, ok := byNm[famName]
		if !ok || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE line", line, sample.Name)
		}
		if err := switchTo(f); err != nil {
			return nil, err
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return fams, nil
}

// sampleFamilyName maps a sample name to its family: exact match first,
// then the histogram/summary suffixes.
func sampleFamilyName(name string, known map[string]*PromFamily) string {
	if _, ok := known[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := known[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return name
}

func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// An OpenMetrics exemplar may trail the value (and its optional
	// timestamp): " # {labels} value [timestamp]". The '#' cannot belong
	// to anything else here — label values were consumed above.
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		ex, err := parseExemplar(rest[i+1:])
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Exemplar = ex
		rest = strings.TrimSpace(rest[:i])
	}
	// An optional timestamp may follow the value; we accept and drop it.
	valueField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valueField = rest[:i]
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[i+1:]), 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", s.Name, rest[i+1:])
		}
	}
	v, err := parsePromValue(valueField)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseExemplar parses the text after a sample line's '#': a label block,
// the exemplar value, and an optional (dropped) seconds timestamp.
func parseExemplar(rest string) (*Exemplar, error) {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "{") {
		return nil, fmt.Errorf("exemplar must start with a label block, got %q", rest)
	}
	end, labels, err := parseLabels(rest)
	if err != nil {
		return nil, fmt.Errorf("exemplar labels: %w", err)
	}
	rest = strings.TrimSpace(rest[end:])
	if rest == "" {
		return nil, fmt.Errorf("exemplar has no value")
	}
	valueField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valueField = rest[:i]
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest[i+1:]), 64); err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", rest[i+1:])
		}
	}
	v, err := parsePromValue(valueField)
	if err != nil {
		return nil, fmt.Errorf("exemplar value: %w", err)
	}
	return &Exemplar{Labels: labels, Value: v}, nil
}

// parseLabels consumes a {name="value",...} block starting at rest[0]=='{'
// and returns the index one past the closing brace.
func parseLabels(rest string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(rest) && rest[i] == ' ' {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(rest) && rest[i] != '=' {
			i++
		}
		if i >= len(rest) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(rest[start:i])
		if name != "le" && name != "quantile" && !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		i++ // past '='
		if i >= len(rest) || rest[i] != '"' {
			return 0, nil, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(rest) {
				return 0, nil, fmt.Errorf("label %q value unterminated", name)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, nil, fmt.Errorf("label %q value ends in backslash", name)
				}
				switch rest[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %q has invalid escape \\%c", name, rest[i+1])
				}
				i += 2
				continue
			}
			if c == '\n' {
				return 0, nil, fmt.Errorf("label %q value contains raw newline", name)
			}
			b.WriteByte(c)
			i++
		}
		labels[name] = b.String()
		for i < len(rest) && rest[i] == ' ' {
			i++
		}
		if i < len(rest) && rest[i] == ',' {
			i++
			continue
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, labels, nil
		}
		return 0, nil, fmt.Errorf("malformed label block near %q", rest[i:])
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func unescapeHelp(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("HELP text ends in backslash")
		}
		switch s[i+1] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("HELP text has invalid escape \\%c", s[i+1])
		}
		i++
	}
	return b.String(), nil
}

// WriteExposition renders parsed families back into text exposition
// format — the inverse of ParseExposition, used by the round-trip fuzz
// target and by tools that filter or merge scraped documents. Label names
// (and exemplar label names) are written sorted, so output is
// deterministic for a given parse; a second parse→write cycle of the
// result is byte-identical.
func WriteExposition(w io.Writer, fams []*PromFamily) error {
	var b strings.Builder
	for _, f := range fams {
		help := strings.TrimRight(f.Help, " \t\r")
		if help == "" && f.Type == "" && len(f.Samples) == 0 {
			continue // nothing expressible survived the parse
		}
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(help))
		}
		if f.Type != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			b.WriteString(sortedLabelString(s.Labels))
			b.WriteByte(' ')
			b.WriteString(formatPromValue(s.Value))
			if s.Exemplar != nil {
				b.WriteString(" # ")
				b.WriteString(formatExemplar(s.Exemplar))
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedLabelString renders a parsed label map as {a="x",b="y"} with
// names sorted ("" for an empty map).
func sortedLabelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels { //vc2m:ordered names are sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[n]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ValidateExposition parses the document and enforces the invariants a
// scraper relies on beyond raw syntax: every family has both HELP and
// TYPE, and every histogram's bucket series are monotone cumulative with
// a +Inf bucket equal to its _count. Returns the parsed families.
func ValidateExposition(r io.Reader) ([]*PromFamily, error) {
	fams, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has no TYPE line", f.Name)
		}
		if f.Help == "" {
			return nil, fmt.Errorf("family %q has no HELP line", f.Name)
		}
		if f.Type == "histogram" {
			if err := validateHistogramFamily(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// validateHistogramFamily groups bucket series by their non-le labels and
// checks cumulative monotonicity, the +Inf bucket, and _sum/_count.
func validateHistogramFamily(f *PromFamily) error {
	type hseries struct {
		les      []float64
		counts   []float64
		infCount float64
		sawInf   bool
		count    float64
		sawCount bool
		sawSum   bool
	}
	groups := map[string]*hseries{}
	keyOf := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels { //vc2m:ordered parts are sorted below
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	get := func(labels map[string]string) *hseries {
		k := keyOf(labels)
		g, ok := groups[k]
		if !ok {
			g = &hseries{}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %q bucket missing le label", f.Name)
			}
			g := get(s.Labels)
			if le == "+Inf" {
				g.sawInf = true
				g.infCount = s.Value
				continue
			}
			ub, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("histogram %q: bad le %q", f.Name, le)
			}
			g.les = append(g.les, ub)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_sum":
			get(s.Labels).sawSum = true
		case f.Name + "_count":
			g := get(s.Labels)
			g.sawCount = true
			g.count = s.Value
		default:
			return fmt.Errorf("histogram %q has stray sample %q", f.Name, s.Name)
		}
	}
	for key, g := range groups { //vc2m:ordered validation order is irrelevant
		label := f.Name
		if key != "" {
			label += "{" + key + "}"
		}
		if !g.sawInf {
			return fmt.Errorf("histogram %s missing +Inf bucket", label)
		}
		if !g.sawSum || !g.sawCount {
			return fmt.Errorf("histogram %s missing _sum or _count", label)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] { //vc2m:floateq bucket bounds must strictly increase
				return fmt.Errorf("histogram %s bucket bounds not increasing at le=%v", label, g.les[i])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("histogram %s bucket counts not cumulative at le=%v", label, g.les[i])
			}
		}
		if len(g.counts) > 0 && g.infCount < g.counts[len(g.counts)-1] {
			return fmt.Errorf("histogram %s +Inf bucket below last finite bucket", label)
		}
		if g.infCount != g.count { //vc2m:floateq +Inf bucket must equal _count exactly
			return fmt.Errorf("histogram %s +Inf bucket (%v) != _count (%v)", label, g.infCount, g.count)
		}
	}
	return nil
}
