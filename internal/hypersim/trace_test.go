package hypersim

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

// TestTraceStreamConsistency: the typed event stream agrees with the
// aggregate Result counters event-for-event, and the Result.Trace slice
// view is exactly the stream's exec-slice projection.
func TestTraceStreamConsistency(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 3}, [2]float64{20, 5})
	sink := trace.NewMemory()
	s, err := New(a, Config{RecordTrace: true, Trace: sink})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(200))

	counts := trace.CountByType(res.Events)
	if counts["job_release"] != res.Released {
		t.Errorf("job_release events %d != released %d", counts["job_release"], res.Released)
	}
	if counts["job_complete"] != res.Completed {
		t.Errorf("job_complete events %d != completed %d", counts["job_complete"], res.Completed)
	}
	if counts["deadline_miss"] != res.Missed {
		t.Errorf("deadline_miss events %d != missed %d", counts["deadline_miss"], res.Missed)
	}
	if uint64(counts["context_switch"]) != res.ContextSwitches {
		t.Errorf("context_switch events %d != switches %d", counts["context_switch"], res.ContextSwitches)
	}
	if uint64(counts["vcpu_replenish"]) != res.BudgetReplenishments {
		t.Errorf("vcpu_replenish events %d != replenishments %d", counts["vcpu_replenish"], res.BudgetReplenishments)
	}

	// The external sink saw the identical stream.
	ext := sink.Events()
	if len(ext) != len(res.Events) {
		t.Fatalf("external sink got %d events, internal %d", len(ext), len(res.Events))
	}
	for i := range ext {
		if ext[i] != res.Events[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, ext[i], res.Events[i])
		}
	}

	// Result.Trace is the exec-slice projection of the stream.
	slices := SlicesFromEvents(res.Events)
	if len(slices) != len(res.Trace) {
		t.Fatalf("projection has %d slices, Trace %d", len(slices), len(res.Trace))
	}
	for i := range slices {
		if slices[i] != res.Trace[i] {
			t.Fatalf("slice %d differs: %+v vs %+v", i, slices[i], res.Trace[i])
		}
	}

	// Events are in non-decreasing time order.
	for i := 1; i < len(ext); i++ {
		if ext[i].Time < ext[i-1].Time {
			t.Fatalf("stream goes backwards at %d: %v after %v", i, ext[i].Time, ext[i-1].Time)
		}
	}
}

// TestTraceSinkWithoutRecordTrace: an external sink receives the stream
// even when the in-memory Result views are off, and the Result then
// retains nothing.
func TestTraceSinkWithoutRecordTrace(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 3})
	sink := trace.NewMemory()
	s, err := New(a, Config{Trace: sink})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if sink.Len() == 0 {
		t.Fatal("external sink received nothing")
	}
	if res.Events != nil || res.Trace != nil {
		t.Error("Result retained trace data without RecordTrace")
	}
}

// TestDiagnoseThrottleScenario: a memory-hungry task under a tight BW
// budget misses because its core is throttled most of each period; every
// miss must be attributed to the throttle.
func TestDiagnoseThrottleScenario(t *testing.T) {
	// WCET 5 ms per 10 ms period, but 1000 req/ms against a budget of
	// 100 req per 1 ms regulation period: the core runs ~0.1 ms then sits
	// throttled ~0.9 ms, so the task can only progress ~1 ms per period.
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 5})
	s, err := New(a, Config{
		RecordTrace:      true,
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{100},
		MemRate:          map[string]float64{taskName(0): 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.Missed == 0 {
		t.Fatal("throttling scenario produced no misses")
	}
	if res.ThrottleEvents == 0 {
		t.Fatal("no throttle events")
	}
	rep := trace.Diagnose(res.Events)
	if len(rep.Misses) != res.Missed {
		t.Fatalf("diagnosed %d of %d misses", len(rep.Misses), res.Missed)
	}
	for _, d := range rep.Misses {
		if d.Cause != trace.CauseThrottled {
			t.Errorf("miss at %v attributed to %v, want %v: %s", d.At, d.Cause, trace.CauseThrottled, d)
		}
		if d.ThrottledFrac < 0.5 {
			t.Errorf("throttled fraction %v, want > 0.5: %s", d.ThrottledFrac, d)
		}
	}
}

// TestDiagnoseOverrunScenario: a task overrunning its declared WCET
// (Config.OverrunFactor) misses its own deadlines; every miss must be
// attributed to the overrun, and a well-behaved task on the same core
// must not miss at all (the containment property).
func TestDiagnoseOverrunScenario(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 3}, [2]float64{20, 4})
	s, err := New(a, Config{
		RecordTrace:   true,
		OverrunFactor: map[string]float64{taskName(0): 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(200))
	if res.Tasks[taskName(0)].Missed == 0 {
		t.Fatal("overrunning task did not miss")
	}
	if res.Tasks[taskName(1)].Missed != 0 {
		t.Fatal("overrun leaked into the other VCPU's task")
	}
	rep := trace.Diagnose(res.Events)
	if len(rep.Misses) != res.Missed {
		t.Fatalf("diagnosed %d of %d misses", len(rep.Misses), res.Missed)
	}
	for _, d := range rep.Misses {
		if d.Task != taskName(0) {
			t.Errorf("unexpected miss for %s", d.Task)
		}
		if d.Cause != trace.CauseOverrun {
			t.Errorf("miss at %v attributed to %v, want %v: %s", d.At, d.Cause, trace.CauseOverrun, d)
		}
	}
	counts := rep.ByTask[taskName(0)]
	if counts[trace.CauseOverrun] != res.Tasks[taskName(0)].Missed {
		t.Errorf("per-task aggregation %v != %d misses", counts, res.Tasks[taskName(0)].Missed)
	}
}

// TestDiagnoseSharedServerVictim: two tasks share a well-regulated VCPU;
// one overruns and drains the whole server. The overrunner is diagnosed
// as the overrun, its victim as out-of-budget — the analyzer separates
// the faulty task from the task it starved.
func TestDiagnoseSharedServerVictim(t *testing.T) {
	p := model.PlatformA
	hog := model.SimpleTask("hog", p, 10, 2)
	hog.VM = "vm"
	victim := model.SimpleTask("victim", p, 10, 2)
	victim.VM = "vm"
	v, err := csa.WellRegulatedVCPU([]*model.Task{hog, victim}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	s, err := New(a, Config{
		RecordTrace:   true,
		OverrunFactor: map[string]float64{"hog": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.Tasks["hog"].Missed == 0 || res.Tasks["victim"].Missed == 0 {
		t.Fatalf("expected both tasks to miss: %+v", res.Tasks)
	}
	rep := trace.Diagnose(res.Events)
	for _, d := range rep.Misses {
		want := trace.CauseOverrun
		if d.Task == "victim" {
			want = trace.CauseNoBudget
		}
		if d.Cause != want {
			t.Errorf("%s miss at %v attributed to %v, want %v: %s", d.Task, d.At, d.Cause, want, d)
		}
	}
}

// TestDiagnosePreemptionScenario: two flattened VCPUs overload one core;
// the EDF tie-break always favors the lower-index VCPU, so the other
// task's misses are due to preemption.
func TestDiagnosePreemptionScenario(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 6}, [2]float64{10, 6})
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.Tasks[taskName(0)].Missed != 0 {
		t.Fatalf("tie-break-preferred task missed: %+v", res.Tasks)
	}
	if res.Tasks[taskName(1)].Missed == 0 {
		t.Fatal("starved task did not miss")
	}
	rep := trace.Diagnose(res.Events)
	for _, d := range rep.Misses {
		if d.Cause != trace.CausePreempted {
			t.Errorf("miss at %v attributed to %v, want %v: %s", d.At, d.Cause, trace.CausePreempted, d)
		}
	}
}

// TestTraceRingSink: a bounded ring on Config.Trace keeps only the tail
// of the stream — the flight-recorder configuration.
func TestTraceRingSink(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 3})
	ring := trace.NewRing(16)
	s, err := New(a, Config{Trace: ring})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(timeunit.FromMillis(500))
	if ring.Len() != 16 || !ring.Dropped() {
		t.Fatalf("ring len=%d dropped=%v", ring.Len(), ring.Dropped())
	}
	events := ring.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("ring reordered events")
		}
	}
}
