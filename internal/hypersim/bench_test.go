package hypersim

import (
	"fmt"
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// benchAlloc builds n flattened VCPUs spread over 4 cores at ~80% load.
func benchAlloc(b *testing.B, n int) *model.Allocation {
	b.Helper()
	p := model.PlatformA
	perCore := make([][]*model.VCPU, 4)
	for i := 0; i < n; i++ {
		core := i % 4
		period := 10.0 * float64(int(1)<<uint(i%3))
		share := 0.8 / float64((n+3)/4)
		task := model.SimpleTask(fmt.Sprintf("t%d", i), p, period, period*share)
		task.VM = "vm"
		perCore[core] = append(perCore[core], csa.FlattenVCPU(task, i))
	}
	cores := make([]*model.CoreAlloc, 4)
	for c := range cores {
		cores[c] = &model.CoreAlloc{Core: c, Cache: 5, BW: 5, VCPUs: perCore[c]}
	}
	return &model.Allocation{Platform: p, Cores: cores, Schedulable: true}
}

// BenchmarkSimulateSecond measures the wall cost of simulating one second
// of a 24-VCPU system.
func BenchmarkSimulateSecond(b *testing.B) {
	a := benchAlloc(b, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(a, Config{})
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run(timeunit.FromMillis(1000))
		if res.Missed != 0 {
			b.Fatalf("unexpected misses: %d", res.Missed)
		}
	}
}

// BenchmarkSimulateRegulated adds bandwidth regulation at a 1 ms period.
func BenchmarkSimulateRegulated(b *testing.B) {
	a := benchAlloc(b, 24)
	rates := map[string]float64{}
	for i := 0; i < 24; i++ {
		rates[fmt.Sprintf("t%d", i)] = 500
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(a, Config{
			RegulationPeriod: timeunit.FromMillis(1),
			BWBudgets:        []int64{400, 400, 400, 400},
			MemRate:          rates,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run(timeunit.FromMillis(1000))
	}
}
