// Package hypersim is a discrete-event simulator of the vC2M hypervisor
// design (Section 3): an RTDS-style partitioned-EDF scheduler with
// periodic-server VCPUs, task/VCPU release synchronization via a
// hypercall, well-regulated VCPU execution (harmonic periods, common
// release offset, deterministic EDF tie-breaking), and MemGuard-style
// memory-bandwidth regulation with a BW enforcer and a BW refiller.
//
// The paper's prototype modifies Xen 4.8 and runs on Intel hardware; this
// simulator substitutes for that path (see DESIGN.md). It is used three
// ways:
//
//   - to validate allocations end-to-end: an allocation the analysis calls
//     schedulable must produce zero deadline misses over the hyperperiod;
//   - to measure the scheduler and regulator handler costs that stand in
//     for the paper's Tables 1 and 2;
//   - to demonstrate the release-synchronization and regulation mechanisms
//     in the examples.
//
// Time is in integer microsecond ticks. Task execution demands are rounded
// down and VCPU budgets rounded up, so quantization can only make a
// workload easier than the analysis assumed — the simulator validates the
// analysis' guarantee ("jobs needing at most e(c,b) meet deadlines"), not
// the reverse direction.
package hypersim

import (
	"fmt"
	"time"

	"vc2m/internal/membus"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/sim"
	"vc2m/internal/stats"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

// Config parameterizes a simulation.
type Config struct {
	// RegulationPeriod enables memory-bandwidth regulation with the given
	// period (e.g. 1 ms) when positive.
	RegulationPeriod timeunit.Ticks
	// BWBudgets is the per-core bandwidth budget in memory requests per
	// regulation period; required when RegulationPeriod is set. A zero
	// entry disables regulation for that core.
	BWBudgets []int64
	// MemRate maps task IDs to memory request rates (requests per
	// millisecond of execution). Tasks without an entry issue no requests.
	// Only meaningful with regulation enabled.
	MemRate map[string]float64
	// MeasureOverheads records the wall-clock duration of every scheduler
	// and regulator handler invocation (the Tables 1-2 instrumentation).
	MeasureOverheads bool
	// RecordTrace keeps the per-core execution trace (used by tests that
	// verify the well-regulated execution pattern).
	RecordTrace bool
	// DesyncTasks gives every task the given release offset while leaving
	// VCPU releases at zero — deliberately breaking the release
	// synchronization of Theorem 1 to demonstrate its necessity. The
	// offset is per task index i: offset = DesyncTasks * (i+1).
	DesyncTasks timeunit.Ticks
	// ContextSwitchCost injects a per-context-switch overhead: whenever a
	// different VCPU takes the core, the first ContextSwitchCost ticks of
	// its slice drain budget without advancing the task — the intra-core
	// overhead that the analysis-side inflation (csa.Overheads) must
	// cover. Zero disables injection.
	ContextSwitchCost timeunit.Ticks
	// CollectResponses retains every job's response time so that the
	// result can report per-task percentiles, not just the maximum.
	CollectResponses bool
	// OverrunFactor injects WCET overruns: a task listed here demands
	// factor times its declared WCET per job (factor > 1 models a faulty
	// or mis-profiled task). The periodic-server architecture contains
	// the fault: an overrunning task exhausts its own VCPU's budget and
	// misses its own deadlines, but tasks on other VCPUs — even on the
	// same core — keep their guarantees.
	OverrunFactor map[string]float64
	// ContinueLateJobs keeps executing a job past its missed deadline
	// instead of discarding it (the next release is then skipped while
	// the late job runs). Use it to measure tardiness under overload:
	// TaskMetrics.MaxLateness reports how late jobs finished. The default
	// (discard) isolates miss counting from cascade effects.
	ContinueLateJobs bool
	// Metrics, when non-nil, receives the run's aggregate event counters
	// (context switches, scheduler invocations, replenishments, throttle
	// events, deadline misses — see the Metric* constants) at the end of
	// Run. Nil disables recording at no cost.
	Metrics *metrics.Recorder
	// Trace, when non-nil, receives the typed flight-recorder event
	// stream: every job release/completion/miss, VCPU replenishment,
	// context switch, execution slice, throttle and BW replenishment,
	// stamped with tick time, core, VCPU and task. Nil disables emission
	// at no cost (one pointer check per site). RecordTrace composes with
	// it: the Result.Trace slice view is rebuilt from the same stream.
	Trace trace.Sink
	// LinearDispatch selects the reference dispatch implementation: the
	// scheduler picks the next VCPU and task by scanning the full list
	// instead of reading the top of the ready heaps. Both implementations
	// realize the same strict total order (EDF with the deterministic
	// tie-breaking rule), so traces are byte-identical either way; the
	// linear path is retained as the oracle for differential tests and
	// the performance baseline for the bench harness.
	LinearDispatch bool
	// Span, when non-nil, is the parent under which Run opens one
	// hypersim.run wall-clock span annotated with the run's volume
	// (engine steps, jobs, misses). Nil disables at no cost; spans never
	// influence the simulation result.
	Span *obs.Span
}

// Counter names recorded on Config.Metrics at the end of Run. They mirror
// the Result fields so that simulator activity lands in the same report as
// the allocators' search-effort counters.
const (
	MetricContextSwitches  = "hypersim.context_switches"
	MetricSchedInvocations = "hypersim.sched_invocations"
	MetricBudgetReplenish  = "hypersim.budget_replenishments"
	MetricThrottleEvents   = "hypersim.throttle_events"
	MetricBWReplenish      = "hypersim.bw_replenishments"
	MetricJobsReleased     = "hypersim.jobs_released"
	MetricJobsCompleted    = "hypersim.jobs_completed"
	MetricDeadlineMisses   = "hypersim.deadline_misses"
)

// taskState is a task's runtime state.
type taskState struct {
	spec     *model.Task
	index    int
	wcet     timeunit.Ticks // execution demand at the core's allocation
	declared timeunit.Ticks // declared WCET (wcet before overrun injection)
	period   timeunit.Ticks
	offset   timeunit.Ticks
	vcpu     *vcpuState

	nextRelease timeunit.Ticks
	deadline    timeunit.Ticks
	remaining   timeunit.Ticks
	active      bool

	released  int
	completed int
	missed    int
	maxLate   timeunit.Ticks
	maxResp   timeunit.Ticks
	responses *stats.Sample // nil unless Config.CollectResponses

	// heapIdx is the task's position in its VCPU's ready heap, -1 when
	// the task is not active (maintained by taskHeap.Swap/Push/Pop).
	heapIdx int
}

// vcpuState is a VCPU's runtime state (a periodic server).
type vcpuState struct {
	spec   *model.VCPU
	core   int
	period timeunit.Ticks
	budget timeunit.Ticks // at the core's allocation
	offset timeunit.Ticks

	nextRelease timeunit.Ticks
	deadline    timeunit.Ticks
	remaining   timeunit.Ticks
	released    bool

	tasks []*taskState

	// readyTasks is the EDF min-heap of active tasks (heap dispatch);
	// heapIdx is this VCPU's position in its core's ready heap, -1 when
	// the VCPU is not runnable.
	readyTasks taskHeap
	heapIdx    int

	replenishments uint64
	execTicks      timeunit.Ticks
}

// idleConsume reports whether the server consumes budget while no task is
// active: well-regulated VCPUs must (their execution pattern has to repeat
// every period), ordinary servers yield.
func (v *vcpuState) idleConsume() bool { return v.spec.WellRegulated }

// coreState is a physical core.
type coreState struct {
	id            int
	vcpus         []*vcpuState
	ready         vcpuHeap // runnable VCPUs in EDF order (heap dispatch)
	current       *vcpuState
	curTask       *taskState
	runStart      timeunit.Ticks
	sliceGen      uint64 // invalidates stale slice-end events
	throttled     bool
	needsResched  bool
	reqCarry      float64        // fractional memory requests carried across slices
	overheadUntil timeunit.Ticks // context-switch overhead window of the current slice

	contextSwitches  uint64
	schedInvocations uint64
	busyTicks        timeunit.Ticks
}

// TraceEntry records one execution slice for trace-based tests.
type TraceEntry struct {
	Core  int
	VCPU  string
	Task  string // empty for idle budget consumption
	Start timeunit.Ticks
	End   timeunit.Ticks
}

// Simulator runs one allocation on the simulated hypervisor.
type Simulator struct {
	cfg    Config
	engine sim.Engine
	cores  []*coreState
	vcpus  []*vcpuState
	tasks  []*taskState
	reg    *membus.Regulator

	// vcpuByID and taskByID resolve the public string IDs without a
	// linear scan; the first VCPU/task with a given ID wins, matching
	// the scan order the lookups replaced.
	vcpuByID map[string]*vcpuState
	taskByID map[string]*taskState

	// sink receives the typed event stream (nil when tracing is off);
	// mem is the internal memory sink backing Result.Trace when
	// Config.RecordTrace is set, and feeds into sink.
	sink trace.Sink
	mem  *trace.Memory

	// overhead samples, keyed like the paper's tables
	overheads map[string]*stats.Sample

	throttleEvents uint64
	regReplenishes uint64
	ran            bool
}

// overhead sample keys.
const (
	OvThrottle        = "bw-throttle"
	OvBWReplenish     = "bw-replenish"
	OvBudgetReplenish = "cpu-budget-replenish"
	OvSchedule        = "scheduling"
	OvContextSwitch   = "context-switch"
)

// New builds a simulator for a schedulable allocation. Task WCETs and VCPU
// budgets are taken at each core's (cache, BW) allocation.
func New(alloc *model.Allocation, cfg Config) (*Simulator, error) {
	if alloc == nil {
		return nil, fmt.Errorf("hypersim: nil allocation")
	}
	// Structural validation only: simulating an overloaded allocation and
	// observing its deadline misses is a legitimate use.
	if err := alloc.ValidateStructure(nil); err != nil {
		return nil, fmt.Errorf("hypersim: invalid allocation: %w", err)
	}
	if cfg.RegulationPeriod > 0 && len(cfg.BWBudgets) < len(alloc.Cores) {
		return nil, fmt.Errorf("hypersim: %d BW budgets for %d cores", len(cfg.BWBudgets), len(alloc.Cores))
	}

	s := &Simulator{cfg: cfg, overheads: map[string]*stats.Sample{
		OvThrottle:        {},
		OvBWReplenish:     {},
		OvBudgetReplenish: {},
		OvSchedule:        {},
		OvContextSwitch:   {},
	},
		vcpuByID: make(map[string]*vcpuState),
		taskByID: make(map[string]*taskState),
	}
	s.sink = cfg.Trace
	if cfg.RecordTrace {
		s.mem = trace.NewMemory()
		s.sink = trace.Multi(s.mem, cfg.Trace)
	}

	taskIdx := 0
	for _, ca := range alloc.Cores {
		// Cores are indexed by their position in the allocation; the
		// regulator and BWBudgets use the same positional index.
		core := &coreState{id: len(s.cores)}
		for _, v := range ca.VCPUs {
			budgetMs := v.Budget.At(ca.Cache, ca.BW)
			vs := &vcpuState{
				spec:    v,
				core:    len(s.cores),
				period:  timeunit.FromMillis(v.Period),
				budget:  timeunit.FromMillisCeil(budgetMs),
				heapIdx: -1,
			}
			if _, ok := s.vcpuByID[v.ID]; !ok {
				s.vcpuByID[v.ID] = vs
			}
			if vs.period <= 0 {
				return nil, fmt.Errorf("hypersim: VCPU %s period below tick resolution", v.ID)
			}
			for _, task := range v.Tasks {
				demand := task.WCET.At(ca.Cache, ca.BW)
				declared := demand
				if f, ok := cfg.OverrunFactor[task.ID]; ok && f > 0 {
					demand *= f
				}
				ts := &taskState{
					spec:     task,
					index:    taskIdx,
					wcet:     timeunit.FromMillisFloor(demand),
					declared: timeunit.FromMillisFloor(declared),
					period:   timeunit.FromMillis(task.Period),
					vcpu:     vs,
					heapIdx:  -1,
				}
				if _, ok := s.taskByID[task.ID]; !ok {
					s.taskByID[task.ID] = ts
				}
				if cfg.DesyncTasks > 0 {
					ts.offset = cfg.DesyncTasks * timeunit.Ticks(taskIdx+1)
				}
				taskIdx++
				vs.tasks = append(vs.tasks, ts)
				s.tasks = append(s.tasks, ts)
			}
			if v.SyncedRelease && len(vs.tasks) == 1 {
				// Theorem 1: the VCPU's release follows its task's (the
				// release-synchronization hypercall).
				vs.offset = vs.tasks[0].offset
			}
			core.vcpus = append(core.vcpus, vs)
			s.vcpus = append(s.vcpus, vs)
		}
		s.cores = append(s.cores, core)
	}

	if cfg.RegulationPeriod > 0 {
		reg, err := membus.New(membus.Config{
			Period:  cfg.RegulationPeriod,
			Budgets: cfg.BWBudgets[:len(s.cores)],
		})
		if err != nil {
			return nil, err
		}
		s.reg = reg
		reg.OnThrottle = s.onThrottle
		reg.OnReplenish = s.onBWReplenish
	}
	return s, nil
}

// SyncRelease is the release-synchronization hypercall (Section 3.2): it
// sets the VCPU's next release to now + delay, as the modified RTDS
// scheduler does when the guest passes the task's first-release delay L.
func (s *Simulator) SyncRelease(vcpuID string, delay timeunit.Ticks) error {
	if v, ok := s.vcpuByID[vcpuID]; ok {
		v.offset = s.engine.Now() + delay
		return nil
	}
	return fmt.Errorf("hypersim: unknown VCPU %q", vcpuID)
}

// SetTaskRelease sets a task's first release to now + delay — the
// guest-side timing that the synchronization hypercall mirrors on the
// VCPU. Must be called before Run.
func (s *Simulator) SetTaskRelease(taskID string, delay timeunit.Ticks) error {
	if delay < 0 {
		return fmt.Errorf("hypersim: negative release delay %v", delay)
	}
	if t, ok := s.taskByID[taskID]; ok {
		t.offset = s.engine.Now() + delay
		return nil
	}
	return fmt.Errorf("hypersim: unknown task %q", taskID)
}

// measure wraps a handler invocation, recording its wall-clock cost in
// microseconds when overhead measurement is enabled.
func (s *Simulator) measure(key string, fn func()) {
	if !s.cfg.MeasureOverheads {
		fn()
		return
	}
	start := time.Now() //vc2m:wallclock overhead measurement is wall time by design
	fn()
	s.overheads[key].Add(float64(time.Since(start).Nanoseconds()) / 1000.0) //vc2m:wallclock
}
