package hypersim

import (
	"errors"
	"testing"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
	"vc2m/internal/workload"
)

// invariantAllocs generates allocations across random workloads for the
// property tests below, skipping seeds the allocator rejects. It returns
// at least minOK allocations or fails the test.
func invariantAllocs(t *testing.T, minOK int) []*model.Allocation {
	t.Helper()
	h := &alloc.Heuristic{Mode: alloc.Flattening}
	var out []*model.Allocation
	for seed := int64(1); seed <= 3*int64(minOK) && len(out) < minOK; seed++ {
		sys, err := workload.Generate(workload.Config{
			Platform:      model.PlatformA,
			TargetRefUtil: 0.7 + 0.1*float64(seed%5),
			Dist:          workload.Uniform,
		}, rngutil.New(1000+seed))
		if err != nil {
			t.Fatal(err)
		}
		a, err := h.Allocate(sys, rngutil.New(seed))
		if errors.Is(err, model.ErrNotSchedulable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	if len(out) < minOK {
		t.Fatalf("only %d of %d schedulable allocations generated; property tests have no power", len(out), minOK)
	}
	return out
}

// TestInvariantsAcrossRandomWorkloads checks the simulator's structural
// invariants over a population of random schedulable workloads:
//
//   - event timestamps never regress (the engine's total order is honored
//     by every handler);
//   - execution slices are well-formed (Start <= End) and, per core,
//     non-overlapping in stream order;
//   - VCPU budgets never go negative: every charged slice reports a
//     non-negative budget remainder, and no slice outruns the budget its
//     server was last replenished with;
//   - Result.Trace is exactly the EvExecSlice projection of Result.Events
//     (checked against an independent inline projection, not the library's
//     own SlicesFromEvents).
func TestInvariantsAcrossRandomWorkloads(t *testing.T) {
	for i, a := range invariantAllocs(t, 10) {
		s, err := New(a, Config{RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(timeunit.FromMillis(800))
		checkEventInvariants(t, i, res)
	}
}

// TestInvariantsUnderRegulation re-checks the same invariants with
// memory-bandwidth regulation enabled, so the throttle/replenish handlers
// participate in the property.
func TestInvariantsUnderRegulation(t *testing.T) {
	for i, a := range invariantAllocs(t, 5) {
		budgets := make([]int64, len(a.Cores))
		memRate := map[string]float64{}
		for bi := range budgets {
			budgets[bi] = 40
		}
		for _, ca := range a.Cores {
			for _, v := range ca.VCPUs {
				for _, task := range v.Tasks {
					memRate[task.ID] = 25
				}
			}
		}
		s, err := New(a, Config{
			RecordTrace:      true,
			RegulationPeriod: timeunit.FromMillis(1),
			BWBudgets:        budgets,
			MemRate:          memRate,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(timeunit.FromMillis(500))
		checkEventInvariants(t, i, res)
	}
}

func checkEventInvariants(t *testing.T, seed int, res *Result) {
	t.Helper()
	if len(res.Events) == 0 {
		t.Fatalf("workload %d: no events recorded", seed)
	}

	var prev timeunit.Ticks
	lastEnd := map[int]timeunit.Ticks{}       // core -> end of its last slice
	lastBudget := map[string]timeunit.Ticks{} // vcpu -> budget at last replenishment
	var projected []TraceEntry

	for i, ev := range res.Events {
		if ev.Time < prev {
			t.Fatalf("workload %d: event %d timestamp regresses: %v after %v (%+v)", seed, i, ev.Time, prev, ev)
		}
		prev = ev.Time

		switch ev.Type {
		case trace.EvVCPUReplenish:
			if ev.Budget < 0 {
				t.Fatalf("workload %d: event %d: negative replenished budget %v", seed, i, ev.Budget)
			}
			lastBudget[ev.VCPU] = ev.Budget
		case trace.EvExecSlice:
			if ev.Start > ev.Time {
				t.Fatalf("workload %d: event %d: slice ends before it starts: [%v,%v)", seed, i, ev.Start, ev.Time)
			}
			if ev.Budget < 0 {
				t.Fatalf("workload %d: event %d: VCPU %s budget went negative: %v", seed, i, ev.VCPU, ev.Budget)
			}
			if full, ok := lastBudget[ev.VCPU]; ok && ev.Time-ev.Start > full {
				t.Fatalf("workload %d: event %d: slice of %v outruns VCPU %s budget %v", seed, i, ev.Time-ev.Start, ev.VCPU, full)
			}
			if end, ok := lastEnd[ev.Core]; ok && ev.Start < end {
				t.Fatalf("workload %d: event %d: core %d slices overlap: starts %v before previous end %v", seed, i, ev.Core, ev.Start, end)
			}
			lastEnd[ev.Core] = ev.Time
			projected = append(projected, TraceEntry{
				Core: ev.Core, VCPU: ev.VCPU, Task: ev.Task,
				Start: ev.Start, End: ev.Time,
			})
		}
	}

	if len(projected) != len(res.Trace) {
		t.Fatalf("workload %d: Trace has %d entries, Events project to %d", seed, len(res.Trace), len(projected))
	}
	for i := range projected {
		if projected[i] != res.Trace[i] {
			t.Fatalf("workload %d: Trace[%d] = %+v but Events project %+v", seed, i, res.Trace[i], projected[i])
		}
	}
}

// TestHeapAndLinearDispatchIdentical: the heap-based ready queues and the
// retained linear-scan dispatch realize the same strict total order, so
// identical seeds must yield bit-identical flight-recorder streams — the
// differential guarantee the bench harness and Config.LinearDispatch's
// doc comment promise.
func TestHeapAndLinearDispatchIdentical(t *testing.T) {
	for i, a := range invariantAllocs(t, 10) {
		run := func(linear bool) *Result {
			s, err := New(a, Config{RecordTrace: true, LinearDispatch: linear})
			if err != nil {
				t.Fatal(err)
			}
			return s.Run(timeunit.FromMillis(800))
		}
		rh, rl := run(false), run(true)
		if len(rh.Events) != len(rl.Events) {
			t.Fatalf("workload %d: event counts differ: heap %d, linear %d", i, len(rh.Events), len(rl.Events))
		}
		for j := range rh.Events {
			if rh.Events[j] != rl.Events[j] {
				t.Fatalf("workload %d: dispatch paths diverge at event %d:\nheap:   %+v\nlinear: %+v",
					i, j, rh.Events[j], rl.Events[j])
			}
		}
		if rh.Released != rl.Released || rh.Completed != rl.Completed || rh.Missed != rl.Missed ||
			rh.ContextSwitches != rl.ContextSwitches || rh.SchedInvocations != rl.SchedInvocations {
			t.Fatalf("workload %d: aggregate metrics differ between dispatch paths", i)
		}
	}
}
