package hypersim

import (
	"strings"
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

func TestRenderGanttBasic(t *testing.T) {
	trace := []TraceEntry{
		{Core: 0, VCPU: "v1", Task: "t1", Start: 0, End: 500},
		{Core: 0, VCPU: "v2", Task: "", Start: 500, End: 1000},
		{Core: 1, VCPU: "v3", Task: "t3", Start: 0, End: 1000},
	}
	out := RenderGantt(trace, 0, 1000, 20)
	if !strings.Contains(out, "core 0:") || !strings.Contains(out, "core 1:") {
		t.Errorf("core headers missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("task execution glyph missing")
	}
	if !strings.Contains(out, ".") {
		t.Error("idle budget glyph missing")
	}
	// v1 occupies the first half of its row, v2 the second.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "v1") {
			bar := line[strings.Index(line, "|")+1:]
			if bar[0] != '#' || bar[15] != ' ' {
				t.Errorf("v1 row misplaced: %q", line)
			}
		}
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	if out := RenderGantt(nil, 0, 100, 10); !strings.Contains(out, "no execution") {
		t.Errorf("empty trace: %q", out)
	}
	if out := RenderGantt(nil, 100, 100, 10); !strings.Contains(out, "empty window") {
		t.Errorf("empty window: %q", out)
	}
}

func TestRenderGanttWindowClipping(t *testing.T) {
	trace := []TraceEntry{
		{Core: 0, VCPU: "v", Task: "t", Start: 0, End: 10000},
	}
	out := RenderGantt(trace, 2000, 3000, 10)
	bar := out[strings.Index(out, "|")+1:]
	bar = bar[:strings.Index(bar, "|")]
	if bar != "##########" {
		t.Errorf("full-window slice should fill the row: %q", bar)
	}
	// Entries entirely outside the window leave the VCPU's row blank —
	// the row itself must survive so windows stay comparable.
	out = RenderGantt(trace, 20000, 21000, 10)
	bar = out[strings.Index(out, "|")+1:]
	bar = bar[:strings.Index(bar, "|")]
	if bar != strings.Repeat(" ", 10) {
		t.Errorf("out-of-window slice should leave a blank row: %q", bar)
	}
	if !strings.Contains(out, "v") {
		t.Errorf("VCPU row missing from out-of-window rendering:\n%s", out)
	}
}

// TestRenderGanttIdleVCPURow: a VCPU idle for a whole window still gets an
// (empty) row there, so side-by-side window comparisons line up.
func TestRenderGanttIdleVCPURow(t *testing.T) {
	trace := []TraceEntry{
		{Core: 0, VCPU: "v1", Task: "t1", Start: 0, End: 1000},
		{Core: 0, VCPU: "v2", Task: "t2", Start: 0, End: 400},
		// v2 never runs again; v1 keeps running in the second window.
		{Core: 0, VCPU: "v1", Task: "t1", Start: 1000, End: 2000},
	}
	w1 := RenderGantt(trace, 0, 1000, 10)
	w2 := RenderGantt(trace, 1000, 2000, 10)
	countRows := func(s string) int {
		n := 0
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "|") {
				n++
			}
		}
		return n
	}
	if countRows(w1) != 2 || countRows(w2) != 2 {
		t.Fatalf("windows have different row sets:\n%s\nvs\n%s", w1, w2)
	}
	for _, line := range strings.Split(w2, "\n") {
		if strings.Contains(line, "v2") {
			bar := line[strings.Index(line, "|")+1:]
			bar = bar[:strings.Index(bar, "|")]
			if strings.TrimSpace(bar) != "" {
				t.Errorf("idle v2 row should be blank: %q", line)
			}
		}
	}
}

func TestRenderGanttFromSimulation(t *testing.T) {
	// The integration path: simulate well-regulated VCPUs, render, and
	// check that two consecutive periods render identically.
	p := model.PlatformA
	t1 := model.SimpleTask("t1", p, 10, 3)
	t1.VM = "vm"
	t2 := model.SimpleTask("t2", p, 10, 4)
	t2.VM = "vm2"
	v1, err := csa.WellRegulatedVCPU([]*model.Task{t1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := csa.WellRegulatedVCPU([]*model.Task{t2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v1, v2}}},
		Schedulable: true,
	}
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	period := timeunit.FromMillis(10)
	g1 := RenderGantt(res.Trace, 3*period, 4*period, 40)
	g2 := RenderGantt(res.Trace, 4*period, 5*period, 40)
	// Strip the window header before comparing shapes.
	body := func(s string) string { return s[strings.Index(s, "\n")+1:] }
	if body(g1) != body(g2) {
		t.Errorf("well-regulated periods render differently:\n%s\nvs\n%s", g1, g2)
	}
}
