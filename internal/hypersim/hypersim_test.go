package hypersim

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// flatAlloc builds a one-core allocation with flattened VCPUs for the
// given (period, wcet) pairs in ms.
func flatAlloc(t *testing.T, p model.Platform, cache, bw int, tasks ...[2]float64) *model.Allocation {
	t.Helper()
	var vcpus []*model.VCPU
	for i, pe := range tasks {
		task := model.SimpleTask(taskName(i), p, pe[0], pe[1])
		task.VM = "vm"
		vcpus = append(vcpus, csa.FlattenVCPU(task, i))
	}
	return &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: cache, BW: bw, VCPUs: vcpus}},
		Schedulable: true,
	}
}

func taskName(i int) string { return string(rune('a'+i)) + "-task" }

func run(t *testing.T, a *model.Allocation, cfg Config, ms float64) *Result {
	t.Helper()
	s, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(timeunit.FromMillis(ms))
}

func TestSingleTaskMeetsDeadlines(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	res := run(t, a, Config{}, 1000)
	if res.Missed != 0 {
		t.Errorf("misses = %d, want 0", res.Missed)
	}
	tm := res.Tasks[taskName(0)]
	if tm.Released < 100 || tm.Released > 101 {
		t.Errorf("released = %d, want 100-101 (horizon/period, boundary release included)", tm.Released)
	}
	if tm.Completed < 99 {
		t.Errorf("completed = %d, want >= 99", tm.Completed)
	}
	if tm.MaxResponse != timeunit.FromMillis(1) {
		t.Errorf("max response = %v, want 1ms (runs immediately)", tm.MaxResponse)
	}
}

func TestFullUtilizationEDF(t *testing.T) {
	// Two tasks with total utilization exactly 1 are EDF-schedulable on
	// one core; the flattened VCPUs must deliver that.
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 5}, [2]float64{20, 10})
	res := run(t, a, Config{}, 2000)
	if res.Missed != 0 {
		t.Errorf("misses = %d, want 0 at utilization 1.0", res.Missed)
	}
	busy := res.CoreBusy[0]
	if busy < 0.99 {
		t.Errorf("core busy fraction = %v, want ~1.0", busy)
	}
}

func TestOverloadMissesDeadlines(t *testing.T) {
	// Utilization 1.2: someone must miss.
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 6}, [2]float64{10, 6})
	res := run(t, a, Config{}, 1000)
	if res.Missed == 0 {
		t.Error("overloaded core produced no deadline misses")
	}
}

func TestMultiCoreIndependence(t *testing.T) {
	p := model.PlatformA
	t1 := model.SimpleTask("t1", p, 10, 9)
	t1.VM = "vm"
	t2 := model.SimpleTask("t2", p, 10, 9)
	t2.VM = "vm"
	a := &model.Allocation{
		Platform: p,
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 5, BW: 5, VCPUs: []*model.VCPU{csa.FlattenVCPU(t1, 0)}},
			{Core: 1, Cache: 5, BW: 5, VCPUs: []*model.VCPU{csa.FlattenVCPU(t2, 1)}},
		},
		Schedulable: true,
	}
	res := run(t, a, Config{}, 1000)
	if res.Missed != 0 {
		t.Errorf("misses = %d, want 0 (each core runs one 0.9-utilization task)", res.Missed)
	}
}

func TestWellRegulatedTheorem2(t *testing.T) {
	// A harmonic taskset on a well-regulated VCPU with bandwidth equal to
	// the taskset utilization must meet all deadlines (Theorem 2).
	p := model.PlatformA
	mk := func(id string, period, wcet float64) *model.Task {
		task := model.SimpleTask(id, p, period, wcet)
		task.VM = "vm"
		return task
	}
	tasks := []*model.Task{mk("t1", 10, 2), mk("t2", 20, 4), mk("t3", 40, 8)}
	// Utilization 0.2 + 0.2 + 0.2 = 0.6; VCPU (10, 6).
	v, err := csa.WellRegulatedVCPU(tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A competing well-regulated VCPU takes the rest of the core.
	other := model.SimpleTask("other", p, 10, 4)
	other.VM = "vm2"
	v2, err := csa.WellRegulatedVCPU([]*model.Task{other}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v, v2}}},
		Schedulable: true,
	}
	res := run(t, a, Config{}, 4000)
	if res.Missed != 0 {
		t.Errorf("misses = %d, want 0 under Theorem 2", res.Missed)
	}
}

func TestWellRegulatedPatternRepeats(t *testing.T) {
	// The defining property of a well-regulated VCPU: it executes at time
	// t iff it executes at t + k*Pi. Check the trace over several periods.
	p := model.PlatformA
	t1 := model.SimpleTask("t1", p, 10, 3)
	t1.VM = "vm"
	t2 := model.SimpleTask("t2", p, 20, 8)
	t2.VM = "vm2"
	v1, err := csa.WellRegulatedVCPU([]*model.Task{t1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := csa.WellRegulatedVCPU([]*model.Task{t2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v1, v2}}},
		Schedulable: true,
	}
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(400))

	// Build v1's execution pattern per 10ms period, as a set of intervals
	// relative to the period start, and verify all periods agree (skip
	// the first two periods of transient).
	period := timeunit.FromMillis(10)
	patterns := map[int64][][2]timeunit.Ticks{}
	for _, e := range res.Trace {
		if e.VCPU != v1.ID {
			continue
		}
		k := int64(e.Start / period)
		if int64(e.End/period) != k && e.End%period != 0 {
			t.Fatalf("slice %v-%v crosses a period boundary", e.Start, e.End)
		}
		patterns[k] = append(patterns[k], [2]timeunit.Ticks{e.Start % period, e.Start%period + (e.End - e.Start)})
	}
	var ref [][2]timeunit.Ticks
	for k := int64(2); k < 38; k++ {
		pat := merge(patterns[k])
		if ref == nil {
			ref = pat
			continue
		}
		if len(pat) != len(ref) {
			t.Fatalf("period %d pattern %v differs from reference %v", k, pat, ref)
		}
		for i := range pat {
			if pat[i] != ref[i] {
				t.Fatalf("period %d pattern %v differs from reference %v", k, pat, ref)
			}
		}
	}
	if res.Missed != 0 {
		t.Errorf("misses = %d, want 0", res.Missed)
	}
}

// merge coalesces adjacent trace intervals.
func merge(in [][2]timeunit.Ticks) [][2]timeunit.Ticks {
	var out [][2]timeunit.Ticks
	for _, iv := range in {
		if n := len(out); n > 0 && out[n-1][1] == iv[0] {
			out[n-1][1] = iv[1]
			continue
		}
		out = append(out, iv)
	}
	return out
}

func TestWellRegulatedHarmonizedSimulation(t *testing.T) {
	// A non-harmonic taskset on a harmonized well-regulated VCPU: the
	// budget is computed for the shrunk periods, which dominates the
	// original demand — the simulation must show zero misses even with a
	// competing VCPU taking the rest of the core.
	p := model.PlatformA
	mk := func(id string, period, wcet float64) *model.Task {
		task := model.SimpleTask(id, p, period, wcet)
		task.VM = "vm"
		return task
	}
	tasks := []*model.Task{mk("t1", 100, 10), mk("t2", 150, 15), mk("t3", 300, 30)}
	v, err := csa.WellRegulatedVCPUHarmonized(tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	other := model.SimpleTask("other", p, 75, 30)
	other.VM = "vm2"
	v2, err := csa.WellRegulatedVCPU([]*model.Task{other}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.RefBandwidth()+v2.RefBandwidth() > 1+1e-9 {
		t.Fatalf("test setup overloads the core: %v + %v", v.RefBandwidth(), v2.RefBandwidth())
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v, v2}}},
		Schedulable: true,
	}
	res := run(t, a, Config{}, 3000)
	if res.Missed != 0 {
		t.Errorf("harmonized well-regulated VCPU missed %d deadlines", res.Missed)
	}
	if res.Completed == 0 {
		t.Error("nothing completed")
	}
}

func TestDeterministicTieBreaking(t *testing.T) {
	// Two identical VCPUs with equal deadlines and periods: the one with
	// the smaller index must run first, every time.
	p := model.PlatformA
	t1 := model.SimpleTask("t1", p, 10, 3)
	t1.VM = "vm"
	t2 := model.SimpleTask("t2", p, 10, 3)
	t2.VM = "vm"
	v1, _ := csa.WellRegulatedVCPU([]*model.Task{t1}, 0)
	v2, _ := csa.WellRegulatedVCPU([]*model.Task{t2}, 1)
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v2, v1}}},
		Schedulable: true,
	}
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	period := timeunit.FromMillis(10)
	for _, e := range res.Trace {
		rel := e.Start % period
		switch e.VCPU {
		case v1.ID:
			if rel >= timeunit.FromMillis(3) {
				t.Fatalf("lower-index VCPU ran at offset %v, want [0,3ms)", rel)
			}
		case v2.ID:
			if rel < timeunit.FromMillis(3) {
				t.Fatalf("higher-index VCPU ran at offset %v, want [3ms,6ms)", rel)
			}
		}
	}
}

func TestSyncReleaseHypercall(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SyncRelease(a.Cores[0].VCPUs[0].ID, timeunit.FromMillis(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncRelease("nope", 0); err == nil {
		t.Error("unknown VCPU accepted")
	}
	res := s.Run(timeunit.FromMillis(100))
	// VCPU released at 5ms: 10 periods fit in [5, 100].
	if got := res.BudgetReplenishments; got < 9 || got > 11 {
		t.Errorf("replenishments = %d, want ~10 after delayed release", got)
	}
}

func TestDesyncInflatesResponseTime(t *testing.T) {
	// A task on a well-regulated VCPU whose release is synchronized with
	// the VCPU's executes within one budget slot: response = WCET. If the
	// task's release drifts from the VCPU's (no synchronization
	// hypercall), it arrives mid-slot, loses part of the budget to idle
	// consumption, and must wait for the next period's slot — exactly the
	// "wait until the VCPU's budget is replenished" overhead described in
	// Section 3.2.
	mkRes := func(desync timeunit.Ticks) *Result {
		p := model.PlatformA
		task := model.SimpleTask("t1", p, 10, 5)
		task.VM = "vm"
		v, err := csa.WellRegulatedVCPU([]*model.Task{task}, 0)
		if err != nil {
			t.Fatal(err)
		}
		a := &model.Allocation{
			Platform:    p,
			Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
			Schedulable: true,
		}
		s, err := New(a, Config{DesyncTasks: desync})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(timeunit.FromMillis(1000))
	}
	synced := mkRes(0)
	if synced.Missed != 0 {
		t.Fatalf("synced run missed %d deadlines, want 0", synced.Missed)
	}
	sResp := synced.Tasks["t1"].MaxResponse
	if sResp != timeunit.FromMillis(5) {
		t.Errorf("synchronized response = %v, want 5ms (the WCET)", sResp)
	}
	desynced := mkRes(timeunit.FromMillis(3))
	dResp := desynced.Tasks["t1"].MaxResponse
	if dResp <= sResp {
		t.Errorf("desynchronized response %v not above synchronized %v", dResp, sResp)
	}
}

func TestBudgetReplenishmentCount(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	res := run(t, a, Config{}, 1000)
	// Releases at 0, 10, ..., 1000.
	if res.BudgetReplenishments < 100 || res.BudgetReplenishments > 101 {
		t.Errorf("replenishments = %d, want ~100", res.BudgetReplenishments)
	}
}

func TestRunTwicePanics(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(timeunit.FromMillis(10))
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	s.Run(timeunit.FromMillis(10))
}

func TestNewRejectsInvalidInput(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil allocation accepted")
	}
	bad := &model.Allocation{
		Platform: model.PlatformA,
		Cores:    []*model.CoreAlloc{{Core: 0, Cache: 1, BW: 1}}, // cache below Cmin
	}
	if _, err := New(bad, Config{}); err == nil {
		t.Error("invalid allocation accepted")
	}
	good := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	if _, err := New(good, Config{RegulationPeriod: 1000}); err == nil {
		t.Error("regulation without budgets accepted")
	}
}

func TestBudgetsAtCoreAllocation(t *testing.T) {
	// The simulator must take WCET/budget at the core's (cache, BW), not
	// the reference: a resource-sensitive task on a starved core overruns
	// a schedule that would work at full allocation.
	p := model.PlatformA
	task := &model.Task{ID: "t", VM: "vm", Period: 10,
		WCET: model.FuncTable(p, func(c, b int) float64 {
			if c >= 10 {
				return 4
			}
			return 12 // exceeds the period on a starved core
		})}
	v := csa.FlattenVCPU(task, 0)
	starved := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 2, BW: 2, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	res := run(t, starved, Config{}, 500)
	if res.Missed == 0 {
		t.Error("starved core should miss deadlines (WCET 12 > period 10)")
	}
}
