package hypersim

import (
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

func TestContinueLateJobsReportsTardiness(t *testing.T) {
	// Utilization 1.2: in default mode late jobs are discarded at their
	// deadline (MaxLateness stays 0); in tardiness mode they finish late
	// and MaxLateness becomes positive.
	mk := func(continueLate bool) *Result {
		a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 6}, [2]float64{10, 6})
		s, err := New(a, Config{ContinueLateJobs: continueLate})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(timeunit.FromMillis(500))
	}
	drop := mk(false)
	if drop.Missed == 0 {
		t.Fatal("overload produced no misses")
	}
	for id, tm := range drop.Tasks {
		if tm.MaxLateness != 0 {
			t.Errorf("%s: lateness %v in discard mode, want 0", id, tm.MaxLateness)
		}
	}

	late := mk(true)
	if late.Missed == 0 {
		t.Fatal("tardiness mode produced no misses")
	}
	var sawLate bool
	for _, tm := range late.Tasks {
		if tm.MaxLateness > 0 {
			sawLate = true
		}
	}
	if !sawLate {
		t.Error("tardiness mode reported no positive lateness")
	}
	// Backlog bounded at one job: release counts do not explode.
	for id, tm := range late.Tasks {
		if tm.Released > 51 {
			t.Errorf("%s: %d releases over 500 ms at period 10, backlog not bounded", id, tm.Released)
		}
	}
}

func TestContinueLateJobsHarmlessWhenSchedulable(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 4}, [2]float64{20, 8})
	s, err := New(a, Config{ContinueLateJobs: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(1000))
	if res.Missed != 0 {
		t.Errorf("schedulable system missed %d in tardiness mode", res.Missed)
	}
}
