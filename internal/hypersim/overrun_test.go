package hypersim

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// TestOverrunIsContainedByVCPUBudget is the temporal-isolation property of
// the periodic-server architecture: a task that overruns its declared WCET
// exhausts its own VCPU's budget and misses its own deadlines, while the
// other VCPU sharing the core keeps every deadline.
func TestOverrunIsContainedByVCPUBudget(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10,
		[2]float64{10, 5}, // a-task: will overrun
		[2]float64{10, 5}, // b-task: well-behaved
	)
	s, err := New(a, Config{
		OverrunFactor: map[string]float64{taskName(0): 1.6}, // demands 8 ms, budget 5 ms
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(1000))

	faulty := res.Tasks[taskName(0)]
	healthy := res.Tasks[taskName(1)]
	if faulty.Missed == 0 {
		t.Error("overrunning task missed no deadlines")
	}
	if healthy.Missed != 0 {
		t.Errorf("well-behaved task missed %d deadlines; the overrun leaked across VCPUs",
			healthy.Missed)
	}
}

// TestOverrunWithinBudgetHarmless: an overrun that still fits inside the
// VCPU's budget (because the budget has slack at this allocation) hurts
// nobody.
func TestOverrunWithinBudgetHarmless(t *testing.T) {
	p := model.PlatformA
	task := model.SimpleTask("t", p, 10, 4)
	task.VM = "vm"
	v := csa.FlattenVCPU(task, 0)
	v.Budget = model.ConstTable(p, 6) // slack above the declared WCET
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	s, err := New(a, Config{OverrunFactor: map[string]float64{"t": 1.4}}) // 5.6 < 6
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(500))
	if res.Missed != 0 {
		t.Errorf("overrun within budget slack missed %d deadlines", res.Missed)
	}
}

// TestOverrunInsideSharedVCPU: tasks sharing a well-regulated VCPU are NOT
// isolated from each other (only VCPUs are isolation boundaries); the
// overrun can steal their common budget.
func TestOverrunInsideSharedVCPU(t *testing.T) {
	p := model.PlatformA
	t1 := model.SimpleTask("greedy", p, 10, 3)
	t1.VM = "vm"
	t2 := model.SimpleTask("victim", p, 10, 3)
	t2.VM = "vm"
	v, err := csa.WellRegulatedVCPU([]*model.Task{t1, t2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	s, err := New(a, Config{OverrunFactor: map[string]float64{"greedy": 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(1000))
	if res.Tasks["victim"].Missed == 0 && res.Tasks["greedy"].Missed == 0 {
		t.Error("a 1.5x overrun inside a budget-exact shared VCPU should cause misses")
	}
}
