package hypersim

import (
	"fmt"
	"math"
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// TestExactSchedulerMetrics pins down the scheduler counters for a fully
// deterministic scenario: one task (10, 4) alone on a core over 100 ms.
func TestExactSchedulerMetrics(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 4})
	res := run(t, a, Config{}, 100)

	// Releases at 0,10,...,100: 11 replenishments; the job released at
	// 100 does not execute.
	if res.BudgetReplenishments != 11 {
		t.Errorf("replenishments = %d, want 11", res.BudgetReplenishments)
	}
	tm := res.Tasks[taskName(0)]
	if tm.Released != 11 || tm.Completed != 10 || tm.Missed != 0 {
		t.Errorf("task metrics = %+v, want 11 released / 10 completed / 0 missed", tm)
	}
	// Busy 4 ms per 10 ms period.
	if math.Abs(res.CoreBusy[0]-0.4) > 0.01 {
		t.Errorf("core busy = %v, want 0.40", res.CoreBusy[0])
	}
	if busy := res.VCPUBusy[a.Cores[0].VCPUs[0].ID]; math.Abs(busy-0.4) > 0.01 {
		t.Errorf("VCPU busy = %v, want 0.40", busy)
	}
	// Each period: run 4 ms then idle — 2 context-switch transitions
	// (to the VCPU, to idle) and a bounded number of scheduling passes.
	if res.ContextSwitches < 20 || res.ContextSwitches > 23 {
		t.Errorf("context switches = %d, want ~2 per period", res.ContextSwitches)
	}
	if res.SchedInvocations < res.ContextSwitches {
		t.Errorf("scheduling passes (%d) below context switches (%d)",
			res.SchedInvocations, res.ContextSwitches)
	}
}

// TestLargeSystemStress: 96 flattened VCPUs across 4 cores at ~80% load,
// 2 simulated seconds — no misses, conservation holds, and the run stays
// fast enough for CI.
func TestLargeSystemStress(t *testing.T) {
	p := model.PlatformA
	perCore := make([][]*model.VCPU, 4)
	for i := 0; i < 96; i++ {
		core := i % 4
		period := 10.0 * float64(int(1)<<uint(i%3))
		share := 0.8 / 24
		task := model.SimpleTask(fmt.Sprintf("s%d", i), p, period, period*share)
		task.VM = "vm"
		perCore[core] = append(perCore[core], csa.FlattenVCPU(task, i))
	}
	cores := make([]*model.CoreAlloc, 4)
	for c := range cores {
		cores[c] = &model.CoreAlloc{Core: c, Cache: 5, BW: 5, VCPUs: perCore[c]}
	}
	a := &model.Allocation{Platform: p, Cores: cores, Schedulable: true}
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(2000))
	if res.Missed != 0 {
		t.Errorf("stress run missed %d deadlines", res.Missed)
	}
	if res.Completed < 96*2000/40 {
		t.Errorf("completed %d jobs, implausibly few", res.Completed)
	}
	for c, busy := range res.CoreBusy {
		if busy > 0.85 {
			t.Errorf("core %d busy %v, want ~0.8", c, busy)
		}
	}
}
