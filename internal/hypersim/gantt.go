package hypersim

import (
	"fmt"
	"sort"
	"strings"

	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

// SlicesFromEvents projects a typed event stream onto the execution-slice
// view consumed by RenderGantt: one TraceEntry per EvExecSlice, in stream
// order. It is how Result.Trace is rebuilt from the flight recorder, and
// how the trace CLI renders Gantt charts from captured JSONL streams.
func SlicesFromEvents(events []trace.Event) []TraceEntry {
	var out []TraceEntry
	for _, ev := range events {
		if ev.Type != trace.EvExecSlice {
			continue
		}
		out = append(out, TraceEntry{
			Core: ev.Core, VCPU: ev.VCPU, Task: ev.Task,
			Start: ev.Start, End: ev.Time,
		})
	}
	return out
}

// RenderGantt converts an execution trace into per-core ASCII timelines:
// one row per VCPU, one column per time bin, a glyph where the VCPU held
// the core. It makes the well-regulated execution pattern of Theorem 2
// directly visible — every period shows the same shape.
//
// The window [from, to) is divided into width bins; a bin is marked if the
// VCPU ran at any point inside it ('#' while executing a task, '.' while
// consuming budget idle). Injected context-switch overhead renders as part
// of the incoming slice (the VCPU holds the core either way). Rows are
// grouped by core and sorted by VCPU ID.
//
// Every VCPU that appears anywhere in the trace gets a row in every
// window, blank when it did not run there — so two windows rendered side
// by side always have the same rows and an idle VCPU is visibly idle
// rather than silently absent.
func RenderGantt(entries []TraceEntry, from, to timeunit.Ticks, width int) string {
	if width <= 0 {
		width = 80
	}
	if to <= from {
		return "(empty window)\n"
	}
	span := to - from

	type key struct {
		core int
		vcpu string
	}
	rows := map[key][]byte{}
	for _, e := range entries {
		if _, ok := rows[key{e.Core, e.VCPU}]; !ok {
			rows[key{e.Core, e.VCPU}] = []byte(strings.Repeat(" ", width))
		}
	}
	for _, e := range entries {
		if e.End <= from || e.Start >= to {
			continue
		}
		row := rows[key{e.Core, e.VCPU}]
		start, end := e.Start, e.End
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		c0 := int(int64(start-from) * int64(width) / int64(span))
		c1 := int((int64(end-from)*int64(width) + int64(span) - 1) / int64(span))
		if c1 > width {
			c1 = width
		}
		glyph := byte('#')
		if e.Task == "" {
			glyph = '.'
		}
		for c := c0; c < c1; c++ {
			if row[c] == ' ' || row[c] == '.' {
				row[c] = glyph
			}
		}
	}
	if len(rows) == 0 {
		return "(no execution in window)\n"
	}

	keys := make([]key, 0, len(rows))
	for k := range rows { //vc2m:ordered keys are sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].core != keys[b].core {
			return keys[a].core < keys[b].core
		}
		return keys[a].vcpu < keys[b].vcpu
	})

	var b strings.Builder
	fmt.Fprintf(&b, "window %v .. %v ('#' task running, '.' idle budget burn)\n", from, to)
	lastCore := -1
	for _, k := range keys {
		if k.core != lastCore {
			fmt.Fprintf(&b, "core %d:\n", k.core)
			lastCore = k.core
		}
		fmt.Fprintf(&b, "  %-22s |%s|\n", k.vcpu, rows[k])
	}
	return b.String()
}
