package hypersim

import (
	"reflect"
	"testing"
)

func TestResultTaskIDsSorted(t *testing.T) {
	r := &Result{Tasks: map[string]TaskMetrics{
		"zeta": {}, "alpha": {}, "mid": {}, "alpha2": {},
	}}
	want := []string{"alpha", "alpha2", "mid", "zeta"}
	// Repeat so a map-iteration-order accident cannot pass by luck.
	for run := 0; run < 20; run++ {
		if got := r.TaskIDs(); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: TaskIDs() = %v, want %v", run, got, want)
		}
	}
	empty := &Result{}
	if got := empty.TaskIDs(); len(got) != 0 {
		t.Errorf("empty Result TaskIDs() = %v, want empty", got)
	}
}
