package hypersim

import (
	"math"

	"vc2m/internal/sim"
	"vc2m/internal/stats"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

// vcpuHeap is the per-core ready queue: a min-heap of runnable VCPUs under
// the EDF order with vC2M's deterministic tie-breaking (vcpuLess). The top
// of the heap is exactly the VCPU the reference linear scan would pick,
// because vcpuLess is a strict total order (the VCPU index breaks every
// tie), so heap dispatch and linear dispatch produce byte-identical traces.
// Like the sim engine's event queue it is hand-rolled rather than built on
// container/heap: sift steps are direct calls on a concrete slice instead
// of interface dispatches, which is what makes the queue cheaper than the
// linear scan it replaces at realistic VCPU counts.
type vcpuHeap []*vcpuState

func (h *vcpuHeap) push(v *vcpuState) {
	v.heapIdx = len(*h)
	*h = append(*h, v)
	h.siftUp(v.heapIdx)
}

// fix restores the heap property after the key of the element at i changed.
func (h *vcpuHeap) fix(i int) {
	if !h.siftDown(i) {
		h.siftUp(i)
	}
}

// remove deletes the element at index i.
func (h *vcpuHeap) remove(i int) {
	q := *h
	n := len(q) - 1
	q[i].heapIdx = -1
	if i != n {
		q[i] = q[n]
		q[i].heapIdx = i
	}
	q[n] = nil
	*h = q[:n]
	if i != n {
		h.fix(i)
	}
}

func (h *vcpuHeap) siftUp(i int) {
	q := *h
	for i > 0 {
		parent := (i - 1) / 2
		if !vcpuLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		q[i].heapIdx = i
		q[parent].heapIdx = parent
		i = parent
	}
}

func (h *vcpuHeap) siftDown(i int) bool {
	q := *h
	n := len(q)
	moved := false
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return moved
		}
		child := l
		if r < n && vcpuLess(q[r], q[l]) {
			child = r
		}
		if !vcpuLess(q[child], q[i]) {
			return moved
		}
		q[i], q[child] = q[child], q[i]
		q[i].heapIdx = i
		q[child].heapIdx = child
		i = child
		moved = true
	}
}

// taskHeap is the per-VCPU ready queue of active tasks in EDF order with
// the task-index tie-break (taskLess) — again a strict total order, so the
// top equals the linear scan's pick. Hand-rolled for the same reason as
// vcpuHeap.
type taskHeap []*taskState

func (h *taskHeap) push(t *taskState) {
	t.heapIdx = len(*h)
	*h = append(*h, t)
	h.siftUp(t.heapIdx)
}

func (h *taskHeap) fix(i int) {
	if !h.siftDown(i) {
		h.siftUp(i)
	}
}

func (h *taskHeap) remove(i int) {
	q := *h
	n := len(q) - 1
	q[i].heapIdx = -1
	if i != n {
		q[i] = q[n]
		q[i].heapIdx = i
	}
	q[n] = nil
	*h = q[:n]
	if i != n {
		h.fix(i)
	}
}

func (h *taskHeap) siftUp(i int) {
	q := *h
	for i > 0 {
		parent := (i - 1) / 2
		if !taskLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		q[i].heapIdx = i
		q[parent].heapIdx = parent
		i = parent
	}
}

func (h *taskHeap) siftDown(i int) bool {
	q := *h
	n := len(q)
	moved := false
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return moved
		}
		child := l
		if r < n && taskLess(q[r], q[l]) {
			child = r
		}
		if !taskLess(q[child], q[i]) {
			return moved
		}
		q[i], q[child] = q[child], q[i]
		q[i].heapIdx = i
		q[child].heapIdx = child
		i = child
		moved = true
	}
}

// vcpuRunnable is the ready-queue membership predicate: released, with
// budget remaining, and either holding an active task or required to
// consume budget while idle (well-regulated servers). It mirrors the
// linear scan's skip conditions exactly.
func vcpuRunnable(v *vcpuState) bool {
	return v.released && v.remaining > 0 && (v.idleConsume() || len(v.readyTasks) > 0)
}

// syncVCPUReady reconciles v's membership and position in its core's ready
// heap. It must be called after any change to the VCPU's release state,
// budget, deadline, or active-task set — and after syncTaskReady for the
// affected task, since runnability reads the task heap's size. keyChanged
// must be true when the heap key (the EDF deadline) may have moved; most
// mutations (budget decrements, task-set changes) only affect membership,
// and skipping the heap.Fix for those keeps the common path O(1).
func (s *Simulator) syncVCPUReady(v *vcpuState, keyChanged bool) {
	if s.cfg.LinearDispatch {
		return
	}
	core := s.cores[v.core]
	if vcpuRunnable(v) {
		if v.heapIdx < 0 {
			core.ready.push(v)
		} else if keyChanged {
			core.ready.fix(v.heapIdx)
		}
	} else if v.heapIdx >= 0 {
		core.ready.remove(v.heapIdx)
	}
}

// syncTaskReady reconciles t's membership and position in its VCPU's ready
// heap after any change to the task's active flag or deadline. keyChanged
// follows the same contract as syncVCPUReady's.
func (s *Simulator) syncTaskReady(t *taskState, keyChanged bool) {
	if s.cfg.LinearDispatch {
		return
	}
	v := t.vcpu
	if t.active {
		if t.heapIdx < 0 {
			v.readyTasks.push(t)
		} else if keyChanged {
			v.readyTasks.fix(t.heapIdx)
		}
	} else if t.heapIdx >= 0 {
		v.readyTasks.remove(t.heapIdx)
	}
}

// charge accounts the elapsed execution of the core's current slice: it
// debits the running VCPU's budget and task's remaining demand, issues the
// slice's memory requests to the regulator, detects task completion, and
// records the trace entry. It is safe to call repeatedly; after charging,
// the slice restarts from the current instant.
func (s *Simulator) charge(core *coreState) {
	now := s.engine.Now()
	elapsed := now - core.runStart
	v := core.current
	if v == nil || elapsed <= 0 {
		core.runStart = now
		return
	}
	v.remaining -= elapsed
	if v.remaining < 0 {
		v.remaining = 0
	}
	v.execTicks += elapsed
	core.busyTicks += elapsed

	// Context-switch overhead drains budget without advancing the task.
	taskElapsed := elapsed
	if core.overheadUntil > core.runStart {
		ovh := core.overheadUntil - core.runStart
		if ovh > elapsed {
			ovh = elapsed
		}
		taskElapsed -= ovh
	}

	task := core.curTask
	if s.sink != nil {
		name := ""
		if task != nil {
			name = task.spec.ID
		}
		s.sink.Record(trace.Event{
			Type: trace.EvExecSlice, Time: now, Core: core.id,
			VCPU: v.spec.ID, Task: name,
			Start: core.runStart, Budget: v.remaining,
		})
	}

	if task != nil && taskElapsed > 0 {
		task.remaining -= taskElapsed
		if s.reg != nil {
			if rate := s.cfg.MemRate[task.spec.ID]; rate > 0 {
				perTick := rate / float64(timeunit.TicksPerMilli)
				exact := taskElapsed.Count()*perTick + core.reqCarry
				whole := math.Floor(exact)
				core.reqCarry = exact - whole
				s.reg.RequestN(core.id, int64(whole))
			}
		}
		if task.remaining <= 0 {
			s.completeTask(task)
			core.curTask = nil
		}
	}
	core.runStart = now
	s.syncVCPUReady(v, false) // the budget decrement may have drained the VCPU
}

// completeTask marks the current job finished.
func (s *Simulator) completeTask(task *taskState) {
	task.remaining = 0
	task.active = false
	task.completed++
	s.syncTaskReady(task, false)
	s.syncVCPUReady(task.vcpu, false)
	now := s.engine.Now()
	if late := now - task.deadline; late > task.maxLate {
		task.maxLate = late
	}
	// Response time relative to the job's release (deadline - period for
	// implicit-deadline tasks). Release desynchronization shows up here as
	// an inflated worst-case response — the abstraction overhead the
	// synchronization hypercall removes.
	resp := now - (task.deadline - task.period)
	if resp > task.maxResp {
		task.maxResp = resp
	}
	if s.cfg.CollectResponses {
		if task.responses == nil {
			task.responses = &stats.Sample{}
		}
		task.responses.Add(resp.Millis())
	}
	if s.sink != nil {
		s.sink.Record(trace.Event{
			Type: trace.EvJobComplete, Time: now,
			Core: task.vcpu.core, VCPU: task.vcpu.spec.ID, Task: task.spec.ID,
			Start: task.deadline - task.period, Deadline: task.deadline,
		})
	}
}

// requestReschedule queues a scheduling pass for the core at the current
// instant, after all simultaneous releases and replenishments have been
// processed (sim.PrioSchedule orders it last). Repeated requests coalesce,
// matching a real scheduler that handles one interrupt batch with one
// scheduling decision.
func (s *Simulator) requestReschedule(core *coreState) {
	if core.needsResched {
		return
	}
	core.needsResched = true
	s.engine.At(s.engine.Now(), sim.PrioSchedule, func() {
		core.needsResched = false
		s.doSchedule(core)
	})
}

// doSchedule is the core-local scheduling pass of the modified RTDS
// scheduler: charge the outgoing slice, pick the next VCPU by EDF with the
// deterministic tie-breaking rule (earliest deadline, then smaller period,
// then smaller VCPU index), pick its task by EDF, and start the slice.
// Throttled cores run nothing until the BW refiller reinstates them.
func (s *Simulator) doSchedule(core *coreState) {
	s.charge(core)

	var next *vcpuState
	var nextTask *taskState
	s.measure(OvSchedule, func() {
		core.schedInvocations++
		if !core.throttled {
			next = s.pickVCPU(core)
			if next != nil {
				nextTask = s.pickTask(next)
			}
		}
	})

	prev := core.current
	switched := next != prev
	if switched {
		s.measure(OvContextSwitch, func() {
			core.contextSwitches++
			// A real context switch saves and restores VCPU state; the
			// bookkeeping below is this simulator's equivalent.
			core.current = next
		})
		if s.sink != nil {
			ev := trace.Event{
				Type: trace.EvContextSwitch,
				Time: s.engine.Now(), Core: core.id,
			}
			if next != nil {
				ev.VCPU = next.spec.ID
				if nextTask != nil {
					ev.Task = nextTask.spec.ID
				}
			}
			if prev != nil {
				ev.From = prev.spec.ID
			}
			s.sink.Record(ev)
		}
	} else {
		core.current = next
	}
	core.curTask = nextTask
	core.runStart = s.engine.Now()
	core.sliceGen++
	core.overheadUntil = core.runStart

	if next == nil {
		return
	}

	// Injected context-switch overhead: the slice's first ticks drain
	// budget without task progress (see Config.ContextSwitchCost).
	var overhead timeunit.Ticks
	if switched && s.cfg.ContextSwitchCost > 0 {
		overhead = s.cfg.ContextSwitchCost
		if overhead > next.remaining {
			overhead = next.remaining
		}
		core.overheadUntil = core.runStart + overhead
	}

	dur := next.remaining
	if nextTask != nil && overhead+nextTask.remaining < dur {
		dur = overhead + nextTask.remaining
	}
	if d := s.ticksUntilThrottle(core, nextTask); d >= 0 && overhead+d < dur {
		dur = overhead + d
	}
	if dur <= 0 {
		dur = 1 // defensive: always make progress
	}
	gen := core.sliceGen
	s.engine.After(dur, sim.PrioDefault, func() {
		if core.sliceGen == gen {
			s.sliceEnd(core)
		}
	})
}

// ticksUntilThrottle bounds the slice by the instant the core's memory
// request budget will overflow, or -1 when regulation does not bound it.
func (s *Simulator) ticksUntilThrottle(core *coreState, task *taskState) timeunit.Ticks {
	if s.reg == nil || task == nil {
		return -1
	}
	rate := s.cfg.MemRate[task.spec.ID]
	if rate <= 0 {
		return -1
	}
	left := s.reg.Remaining(core.id)
	if s.cfg.BWBudgets[core.id] == 0 {
		return -1
	}
	perTick := rate / float64(timeunit.TicksPerMilli)
	d := timeunit.FromCount(math.Ceil((float64(left) - core.reqCarry) / perTick))
	if d < 1 {
		d = 1
	}
	return d
}

// sliceEnd fires when the running slice exhausts its bound (task
// completion, budget exhaustion, or throttle instant).
func (s *Simulator) sliceEnd(core *coreState) {
	s.requestReschedule(core)
}

// pickVCPU returns the EDF-minimal runnable VCPU on the core: released,
// with budget remaining, and either holding an active task or required to
// consume budget while idle (well-regulated servers). Ties break first by
// smaller period, then by smaller VCPU index — the deterministic rule that
// makes well-regulated execution reproducible (Section 3.2). The default
// implementation peeks at the core's ready heap; Config.LinearDispatch
// selects the reference scan over all VCPUs instead.
func (s *Simulator) pickVCPU(core *coreState) *vcpuState {
	if s.cfg.LinearDispatch {
		return pickVCPULinear(core)
	}
	if len(core.ready) == 0 {
		return nil
	}
	return core.ready[0]
}

// pickVCPULinear is the reference linear-scan dispatch, kept as the oracle
// for differential tests and the bench harness's before/after comparison.
func pickVCPULinear(core *coreState) *vcpuState {
	var best *vcpuState
	for _, v := range core.vcpus {
		if !v.released || v.remaining <= 0 {
			continue
		}
		if !v.idleConsume() && !hasActiveTask(v) {
			continue
		}
		if best == nil || vcpuLess(v, best) {
			best = v
		}
	}
	return best
}

func hasActiveTask(v *vcpuState) bool {
	for _, t := range v.tasks {
		if t.active {
			return true
		}
	}
	return false
}

// vcpuLess is the EDF order with vC2M's deterministic tie-breaking.
func vcpuLess(a, b *vcpuState) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.period != b.period {
		return a.period < b.period
	}
	return a.spec.Index < b.spec.Index
}

// taskLess is the guest-EDF order: earliest deadline, ties by task index.
func taskLess(a, b *taskState) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.index < b.index
}

// pickTask returns the EDF-minimal active task on the VCPU (the guest OS
// also schedules under EDF), breaking ties by task index. Like pickVCPU it
// peeks at the ready heap unless Config.LinearDispatch selects the scan.
func (s *Simulator) pickTask(v *vcpuState) *taskState {
	if s.cfg.LinearDispatch {
		return pickTaskLinear(v)
	}
	if len(v.readyTasks) == 0 {
		return nil
	}
	return v.readyTasks[0]
}

// pickTaskLinear is the reference linear-scan task dispatch.
func pickTaskLinear(v *vcpuState) *taskState {
	var best *taskState
	for _, t := range v.tasks {
		if !t.active {
			continue
		}
		if best == nil || taskLess(t, best) {
			best = t
		}
	}
	return best
}
