package hypersim

import (
	"math"

	"vc2m/internal/sim"
	"vc2m/internal/stats"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

// charge accounts the elapsed execution of the core's current slice: it
// debits the running VCPU's budget and task's remaining demand, issues the
// slice's memory requests to the regulator, detects task completion, and
// records the trace entry. It is safe to call repeatedly; after charging,
// the slice restarts from the current instant.
func (s *Simulator) charge(core *coreState) {
	now := s.engine.Now()
	elapsed := now - core.runStart
	v := core.current
	if v == nil || elapsed <= 0 {
		core.runStart = now
		return
	}
	v.remaining -= elapsed
	if v.remaining < 0 {
		v.remaining = 0
	}
	v.execTicks += elapsed
	core.busyTicks += elapsed

	// Context-switch overhead drains budget without advancing the task.
	taskElapsed := elapsed
	if core.overheadUntil > core.runStart {
		ovh := core.overheadUntil - core.runStart
		if ovh > elapsed {
			ovh = elapsed
		}
		taskElapsed -= ovh
	}

	task := core.curTask
	if s.sink != nil {
		name := ""
		if task != nil {
			name = task.spec.ID
		}
		s.sink.Record(trace.Event{
			Type: trace.EvExecSlice, Time: now, Core: core.id,
			VCPU: v.spec.ID, Task: name,
			Start: core.runStart, Budget: v.remaining,
		})
	}

	if task != nil && taskElapsed > 0 {
		task.remaining -= taskElapsed
		if s.reg != nil {
			if rate := s.cfg.MemRate[task.spec.ID]; rate > 0 {
				perTick := rate / float64(timeunit.TicksPerMilli)
				exact := taskElapsed.Count()*perTick + core.reqCarry
				whole := math.Floor(exact)
				core.reqCarry = exact - whole
				s.reg.RequestN(core.id, int64(whole))
			}
		}
		if task.remaining <= 0 {
			s.completeTask(task)
			core.curTask = nil
		}
	}
	core.runStart = now
}

// completeTask marks the current job finished.
func (s *Simulator) completeTask(task *taskState) {
	task.remaining = 0
	task.active = false
	task.completed++
	now := s.engine.Now()
	if late := now - task.deadline; late > task.maxLate {
		task.maxLate = late
	}
	// Response time relative to the job's release (deadline - period for
	// implicit-deadline tasks). Release desynchronization shows up here as
	// an inflated worst-case response — the abstraction overhead the
	// synchronization hypercall removes.
	resp := now - (task.deadline - task.period)
	if resp > task.maxResp {
		task.maxResp = resp
	}
	if s.cfg.CollectResponses {
		if task.responses == nil {
			task.responses = &stats.Sample{}
		}
		task.responses.Add(resp.Millis())
	}
	if s.sink != nil {
		s.sink.Record(trace.Event{
			Type: trace.EvJobComplete, Time: now,
			Core: task.vcpu.core, VCPU: task.vcpu.spec.ID, Task: task.spec.ID,
			Start: task.deadline - task.period, Deadline: task.deadline,
		})
	}
}

// requestReschedule queues a scheduling pass for the core at the current
// instant, after all simultaneous releases and replenishments have been
// processed (sim.PrioSchedule orders it last). Repeated requests coalesce,
// matching a real scheduler that handles one interrupt batch with one
// scheduling decision.
func (s *Simulator) requestReschedule(core *coreState) {
	if core.needsResched {
		return
	}
	core.needsResched = true
	s.engine.At(s.engine.Now(), sim.PrioSchedule, func() {
		core.needsResched = false
		s.doSchedule(core)
	})
}

// doSchedule is the core-local scheduling pass of the modified RTDS
// scheduler: charge the outgoing slice, pick the next VCPU by EDF with the
// deterministic tie-breaking rule (earliest deadline, then smaller period,
// then smaller VCPU index), pick its task by EDF, and start the slice.
// Throttled cores run nothing until the BW refiller reinstates them.
func (s *Simulator) doSchedule(core *coreState) {
	s.charge(core)

	var next *vcpuState
	var nextTask *taskState
	s.measure(OvSchedule, func() {
		core.schedInvocations++
		if !core.throttled {
			next = s.pickVCPU(core)
			if next != nil {
				nextTask = pickTask(next)
			}
		}
	})

	prev := core.current
	switched := next != prev
	if switched {
		s.measure(OvContextSwitch, func() {
			core.contextSwitches++
			// A real context switch saves and restores VCPU state; the
			// bookkeeping below is this simulator's equivalent.
			core.current = next
		})
		if s.sink != nil {
			ev := trace.Event{
				Type: trace.EvContextSwitch,
				Time: s.engine.Now(), Core: core.id,
			}
			if next != nil {
				ev.VCPU = next.spec.ID
				if nextTask != nil {
					ev.Task = nextTask.spec.ID
				}
			}
			if prev != nil {
				ev.From = prev.spec.ID
			}
			s.sink.Record(ev)
		}
	} else {
		core.current = next
	}
	core.curTask = nextTask
	core.runStart = s.engine.Now()
	core.sliceGen++
	core.overheadUntil = core.runStart

	if next == nil {
		return
	}

	// Injected context-switch overhead: the slice's first ticks drain
	// budget without task progress (see Config.ContextSwitchCost).
	var overhead timeunit.Ticks
	if switched && s.cfg.ContextSwitchCost > 0 {
		overhead = s.cfg.ContextSwitchCost
		if overhead > next.remaining {
			overhead = next.remaining
		}
		core.overheadUntil = core.runStart + overhead
	}

	dur := next.remaining
	if nextTask != nil && overhead+nextTask.remaining < dur {
		dur = overhead + nextTask.remaining
	}
	if d := s.ticksUntilThrottle(core, nextTask); d >= 0 && overhead+d < dur {
		dur = overhead + d
	}
	if dur <= 0 {
		dur = 1 // defensive: always make progress
	}
	gen := core.sliceGen
	s.engine.After(dur, sim.PrioDefault, func() {
		if core.sliceGen == gen {
			s.sliceEnd(core)
		}
	})
}

// ticksUntilThrottle bounds the slice by the instant the core's memory
// request budget will overflow, or -1 when regulation does not bound it.
func (s *Simulator) ticksUntilThrottle(core *coreState, task *taskState) timeunit.Ticks {
	if s.reg == nil || task == nil {
		return -1
	}
	rate := s.cfg.MemRate[task.spec.ID]
	if rate <= 0 {
		return -1
	}
	left := s.reg.Remaining(core.id)
	if s.cfg.BWBudgets[core.id] == 0 {
		return -1
	}
	perTick := rate / float64(timeunit.TicksPerMilli)
	d := timeunit.FromCount(math.Ceil((float64(left) - core.reqCarry) / perTick))
	if d < 1 {
		d = 1
	}
	return d
}

// sliceEnd fires when the running slice exhausts its bound (task
// completion, budget exhaustion, or throttle instant).
func (s *Simulator) sliceEnd(core *coreState) {
	s.requestReschedule(core)
}

// pickVCPU returns the EDF-minimal runnable VCPU on the core: released,
// with budget remaining, and either holding an active task or required to
// consume budget while idle (well-regulated servers). Ties break first by
// smaller period, then by smaller VCPU index — the deterministic rule that
// makes well-regulated execution reproducible (Section 3.2).
func (s *Simulator) pickVCPU(core *coreState) *vcpuState {
	var best *vcpuState
	for _, v := range core.vcpus {
		if !v.released || v.remaining <= 0 {
			continue
		}
		if !v.idleConsume() && !hasActiveTask(v) {
			continue
		}
		if best == nil || vcpuLess(v, best) {
			best = v
		}
	}
	return best
}

func hasActiveTask(v *vcpuState) bool {
	for _, t := range v.tasks {
		if t.active {
			return true
		}
	}
	return false
}

// vcpuLess is the EDF order with vC2M's deterministic tie-breaking.
func vcpuLess(a, b *vcpuState) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.period != b.period {
		return a.period < b.period
	}
	return a.spec.Index < b.spec.Index
}

// pickTask returns the EDF-minimal active task on the VCPU (the guest OS
// also schedules under EDF), breaking ties by task index.
func pickTask(v *vcpuState) *taskState {
	var best *taskState
	for _, t := range v.tasks {
		if !t.active {
			continue
		}
		if best == nil || t.deadline < best.deadline ||
			(t.deadline == best.deadline && t.index < best.index) {
			best = t
		}
	}
	return best
}
