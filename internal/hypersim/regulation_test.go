package hypersim

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// regAlloc builds a one-core allocation with a single flattened task.
func regAlloc(t *testing.T, period, wcet float64) *model.Allocation {
	t.Helper()
	p := model.PlatformA
	task := model.SimpleTask("memtask", p, period, wcet)
	task.VM = "vm"
	return &model.Allocation{
		Platform: p,
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{csa.FlattenVCPU(task, 0)}},
		},
		Schedulable: true,
	}
}

func TestRegulationThrottlesHungryCore(t *testing.T) {
	// Task issues 1000 requests/ms; the budget allows 500 per 1 ms period:
	// the core must throttle every period and spend half its time idle.
	a := regAlloc(t, 10, 9)
	s, err := New(a, Config{
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{500},
		MemRate:          map[string]float64{"memtask": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.ThrottleEvents == 0 {
		t.Fatal("no throttle events for a bandwidth-hungry task")
	}
	// ~100 regulation periods; the task is active 90% of the time, so
	// most periods throttle.
	if res.ThrottleEvents < 50 {
		t.Errorf("throttle events = %d, want most of ~100 periods", res.ThrottleEvents)
	}
	if res.BWReplenishments < 99 {
		t.Errorf("BW replenishments = %d, want ~100", res.BWReplenishments)
	}
	// Throttled half the time: the 0.9-utilization task can only get
	// ~0.5 and must miss deadlines.
	if res.Missed == 0 {
		t.Error("a task needing 0.9 CPU under a 0.5-effective-bandwidth cap should miss")
	}
}

func TestRegulationHarmlessWithinBudget(t *testing.T) {
	// Same task, generous budget: no throttling, no misses.
	a := regAlloc(t, 10, 9)
	s, err := New(a, Config{
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{2000},
		MemRate:          map[string]float64{"memtask": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.ThrottleEvents != 0 {
		t.Errorf("throttle events = %d, want 0 within budget", res.ThrottleEvents)
	}
	if res.Missed != 0 {
		t.Errorf("misses = %d, want 0", res.Missed)
	}
}

func TestRegulationBudgetNeverExceeded(t *testing.T) {
	// The regulator's contract on top of the scheduler: granted requests
	// per period never exceed the budget. With rate 800/ms and budget 300,
	// every 1 ms period grants at most 300.
	a := regAlloc(t, 10, 8)
	s, err := New(a, Config{
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{300},
		MemRate:          map[string]float64{"memtask": 800},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(50))
	granted := s.reg.Stats(0).Requests
	// 50 periods, at most 300 each.
	if granted > 50*300+300 {
		t.Errorf("granted %d requests, budget allows at most %d", granted, 50*300+300)
	}
	if s.reg.Stats(0).DeniedRequests != 0 {
		t.Errorf("denied requests = %d: scheduler ran a throttled core",
			s.reg.Stats(0).DeniedRequests)
	}
	if res.ThrottleEvents == 0 {
		t.Error("expected throttling")
	}
}

func TestThrottledCoreStaysIdle(t *testing.T) {
	// vC2M keeps throttled cores idle (unlike MemGuard's busy-wait): core
	// busy fraction must drop to roughly the throttle-bounded share.
	a := regAlloc(t, 10, 10) // wants 100% CPU
	s, err := New(a, Config{
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{250},
		MemRate:          map[string]float64{"memtask": 1000}, // throttles at 0.25 ms
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.CoreBusy[0] > 0.35 {
		t.Errorf("core busy = %v, want ~0.25 (idle while throttled)", res.CoreBusy[0])
	}
}

func TestPerCoreBudgetsIndependent(t *testing.T) {
	// Two regulated cores with different budgets: each is throttled
	// according to its own budget only.
	p := model.PlatformA
	mkTask := func(id string) *model.Task {
		task := model.SimpleTask(id, p, 10, 8)
		task.VM = "vm"
		return task
	}
	a := &model.Allocation{
		Platform: p,
		Cores: []*model.CoreAlloc{
			{Core: 0, Cache: 5, BW: 5, VCPUs: []*model.VCPU{csa.FlattenVCPU(mkTask("tight"), 0)}},
			{Core: 1, Cache: 5, BW: 5, VCPUs: []*model.VCPU{csa.FlattenVCPU(mkTask("loose"), 1)}},
		},
		Schedulable: true,
	}
	s, err := New(a, Config{
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{200, 5000},
		MemRate:          map[string]float64{"tight": 1000, "loose": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	if res.Tasks["tight"].Missed == 0 {
		t.Error("tight-budget core should miss deadlines")
	}
	if res.Tasks["loose"].Missed != 0 {
		t.Errorf("loose-budget core missed %d deadlines; budgets leaked across cores",
			res.Tasks["loose"].Missed)
	}
	if res.CoreBusy[0] >= res.CoreBusy[1] {
		t.Errorf("tight core busy %v should be below loose core %v",
			res.CoreBusy[0], res.CoreBusy[1])
	}
}

func TestOverheadMeasurement(t *testing.T) {
	a := regAlloc(t, 10, 5)
	s, err := New(a, Config{
		RegulationPeriod: timeunit.FromMillis(1),
		BWBudgets:        []int64{300},
		MemRate:          map[string]float64{"memtask": 1000},
		MeasureOverheads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	for _, key := range []string{OvThrottle, OvBWReplenish, OvBudgetReplenish, OvSchedule, OvContextSwitch} {
		sum, ok := res.Overheads[key]
		if !ok {
			t.Fatalf("missing overhead sample %q", key)
		}
		if sum.N() == 0 {
			t.Errorf("overhead %q recorded no samples", key)
		}
		if sum.Min() < 0 {
			t.Errorf("overhead %q has negative duration", key)
		}
	}
}

func TestOverheadsAbsentWithoutMeasurement(t *testing.T) {
	a := regAlloc(t, 10, 5)
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Run(timeunit.FromMillis(10)); res.Overheads != nil {
		t.Error("overheads populated without MeasureOverheads")
	}
}
