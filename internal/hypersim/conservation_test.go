package hypersim

import (
	"errors"
	"testing"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/timeunit"
	"vc2m/internal/workload"
)

// TestBudgetConservation verifies the periodic-server contract from the
// execution trace: within each of its periods, a VCPU never executes for
// more than its budget, and cores never run two VCPUs at once.
func TestBudgetConservation(t *testing.T) {
	sys, err := workload.Generate(workload.Config{
		Platform:      model.PlatformA,
		TargetRefUtil: 1.0,
		Dist:          workload.Uniform,
	}, rngutil.New(321))
	if err != nil {
		t.Fatal(err)
	}
	h := &alloc.Heuristic{Mode: alloc.OverheadFree}
	a, err := h.Allocate(sys, rngutil.New(1))
	if errors.Is(err, model.ErrNotSchedulable) {
		t.Skip("workload unschedulable at this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(2200))

	// Collect each VCPU's period and budget (at its core's allocation).
	type spec struct {
		period timeunit.Ticks
		budget timeunit.Ticks
	}
	specs := map[string]spec{}
	for _, core := range a.Cores {
		for _, v := range core.VCPUs {
			specs[v.ID] = spec{
				period: timeunit.FromMillis(v.Period),
				budget: timeunit.FromMillisCeil(v.Budget.At(core.Cache, core.BW)),
			}
		}
	}

	// Per (VCPU, period index): executed time must not exceed the budget.
	execPerPeriod := map[string]map[int64]timeunit.Ticks{}
	for _, e := range res.Trace {
		sp, ok := specs[e.VCPU]
		if !ok {
			t.Fatalf("trace mentions unknown VCPU %s", e.VCPU)
		}
		if execPerPeriod[e.VCPU] == nil {
			execPerPeriod[e.VCPU] = map[int64]timeunit.Ticks{}
		}
		// Split the slice across period boundaries.
		for start := e.Start; start < e.End; {
			k := int64(start / sp.period)
			boundary := timeunit.Ticks(k+1) * sp.period
			end := e.End
			if boundary < end {
				end = boundary
			}
			execPerPeriod[e.VCPU][k] += end - start
			start = end
		}
	}
	for vcpu, periods := range execPerPeriod {
		for k, exec := range periods {
			if exec > specs[vcpu].budget {
				t.Errorf("VCPU %s period %d executed %v, budget is %v",
					vcpu, k, exec, specs[vcpu].budget)
			}
		}
	}

	// No two slices on the same core may overlap.
	type slice struct{ start, end timeunit.Ticks }
	perCore := map[int][]slice{}
	for _, e := range res.Trace {
		perCore[e.Core] = append(perCore[e.Core], slice{e.Start, e.End})
	}
	for core, slices := range perCore {
		for i := 1; i < len(slices); i++ {
			if slices[i].start < slices[i-1].end {
				t.Errorf("core %d has overlapping slices: %v and %v",
					core, slices[i-1], slices[i])
			}
		}
	}
	if res.Missed != 0 {
		t.Errorf("schedulable allocation missed %d deadlines", res.Missed)
	}
}
