package hypersim

import (
	"errors"
	"testing"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/timeunit"
	"vc2m/internal/workload"
)

// TestAnalysisImpliesZeroMisses is the analysis<->simulation differential
// oracle: over a population of random workloads, every allocation the CSA
// declares schedulable must run without a single deadline miss over (two)
// hyperperiods of simulation. The simulator quantizes demands down and
// budgets up, so it can only be easier than the analysis assumed — a miss
// is therefore always an analysis or simulator bug, never noise.
//
// Both CSA variants the paper's heuristic uses are exercised: the
// flattening analysis and the existing (overhead-aware) CSA.
func TestAnalysisImpliesZeroMisses(t *testing.T) {
	modes := []struct {
		name string
		mode alloc.CSAMode
	}{
		{"flattening", alloc.Flattening},
		{"existing-csa", alloc.ExistingCSA},
	}
	const seeds = 50
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			h := &alloc.Heuristic{Mode: m.mode}
			schedulable := 0
			for seed := int64(0); seed < seeds; seed++ {
				sys, err := workload.Generate(workload.Config{
					Platform:      model.PlatformA,
					TargetRefUtil: 0.6 + 0.1*float64(seed%6),
					Dist:          workload.Uniform,
				}, rngutil.New(7000+seed))
				if err != nil {
					t.Fatal(err)
				}
				a, err := h.Allocate(sys, rngutil.New(seed))
				if errors.Is(err, model.ErrNotSchedulable) {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				schedulable++

				// Harmonic ladder: the hyperperiod is the maximum period.
				var hyper float64
				for _, vm := range sys.VMs {
					for _, task := range vm.Tasks {
						if task.Period > hyper {
							hyper = task.Period
						}
					}
				}
				s, err := New(a, Config{})
				if err != nil {
					t.Fatal(err)
				}
				res := s.Run(2 * timeunit.FromMillis(hyper))
				if res.Missed != 0 {
					t.Errorf("seed %d: analysis (%s) schedulable but simulation missed %d deadlines (%d released)",
						seed, m.name, res.Missed, res.Released)
				}
				if res.Released == 0 {
					t.Errorf("seed %d: no jobs released over two hyperperiods", seed)
				}
			}
			if schedulable < seeds/3 {
				t.Fatalf("only %d of %d seeds schedulable; oracle has no power", schedulable, seeds)
			}
			t.Logf("%s: %d of %d seeds schedulable, all miss-free", m.name, schedulable, seeds)
		})
	}
}
