package hypersim

import (
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

func TestGuestClockNow(t *testing.T) {
	g := GuestClock{Offset: 500}
	if g.Now(1000) != 1500 {
		t.Errorf("Now(1000) = %v, want 1500", g.Now(1000))
	}
	neg := GuestClock{Offset: -300}
	if neg.Now(1000) != 700 {
		t.Errorf("Now(1000) = %v, want 700", neg.Now(1000))
	}
}

func TestSyncReleaseFromGuestOffsetCancels(t *testing.T) {
	// The protocol's point: wildly different guest-clock offsets produce
	// the same VCPU release time, because only the relative delay L
	// crosses the hypercall boundary.
	for _, offset := range []timeunit.Ticks{0, 12345678, -999999} {
		a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
		s, err := New(a, Config{})
		if err != nil {
			t.Fatal(err)
		}
		clock := GuestClock{Offset: offset}
		// Task initialized at guest time X, first release X + 5 ms.
		vt0 := clock.Now(0)
		if err := s.SyncReleaseFromGuest(a.Cores[0].VCPUs[0].ID, clock,
			vt0, vt0+timeunit.FromMillis(5)); err != nil {
			t.Fatal(err)
		}
		res := s.Run(timeunit.FromMillis(100))
		// VCPU released at 5 ms: ~10 replenishments in [5, 100].
		if got := res.BudgetReplenishments; got < 9 || got > 11 {
			t.Errorf("offset %v: replenishments = %d, want ~10", offset, got)
		}
	}
}

func TestSyncReleaseFromGuestRejectsBackwardRelease(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SyncReleaseFromGuest(a.Cores[0].VCPUs[0].ID, GuestClock{}, 100, 50); err == nil {
		t.Error("release before initialization accepted")
	}
}

func TestSyncReleaseFromGuestUnknownVCPU(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 1})
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SyncReleaseFromGuest("nope", GuestClock{}, 0, 10); err == nil {
		t.Error("unknown VCPU accepted")
	}
}
