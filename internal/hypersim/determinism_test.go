package hypersim

import (
	"errors"
	"testing"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/timeunit"
	"vc2m/internal/workload"
)

// TestSimulationDeterminism: identical allocations simulated twice produce
// identical traces and metrics — the reproducibility property the
// well-regulated analysis (and every experiment in this repository)
// relies on.
func TestSimulationDeterminism(t *testing.T) {
	sys, err := workload.Generate(workload.Config{
		Platform:      model.PlatformA,
		TargetRefUtil: 1.0,
		Dist:          workload.Uniform,
	}, rngutil.New(555))
	if err != nil {
		t.Fatal(err)
	}
	h := &alloc.Heuristic{Mode: alloc.Flattening}
	a, err := h.Allocate(sys, rngutil.New(2))
	if errors.Is(err, model.ErrNotSchedulable) {
		t.Skip("unschedulable at this seed")
	}
	if err != nil {
		t.Fatal(err)
	}

	run := func() *Result {
		s, err := New(a, Config{RecordTrace: true, CollectResponses: true})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(timeunit.FromMillis(1500))
	}
	r1, r2 := run(), run()

	if r1.Released != r2.Released || r1.Completed != r2.Completed || r1.Missed != r2.Missed {
		t.Fatalf("aggregate metrics differ: %d/%d/%d vs %d/%d/%d",
			r1.Released, r1.Completed, r1.Missed, r2.Released, r2.Completed, r2.Missed)
	}
	if r1.ContextSwitches != r2.ContextSwitches || r1.SchedInvocations != r2.SchedInvocations {
		t.Fatal("scheduler activity differs between identical runs")
	}
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i] != r2.Trace[i] {
			t.Fatalf("trace diverges at entry %d: %+v vs %+v", i, r1.Trace[i], r2.Trace[i])
		}
	}
	// The full typed flight-recorder stream — every release, completion,
	// replenishment, context switch and slice — must be bit-identical,
	// not just the slice projection.
	if len(r1.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("event stream lengths differ: %d vs %d", len(r1.Events), len(r2.Events))
	}
	for i := range r1.Events {
		if r1.Events[i] != r2.Events[i] {
			t.Fatalf("event stream diverges at %d: %+v vs %+v", i, r1.Events[i], r2.Events[i])
		}
	}
	for id, m1 := range r1.Tasks {
		if m2 := r2.Tasks[id]; m1 != m2 {
			t.Fatalf("task %s metrics differ: %+v vs %+v", id, m1, m2)
		}
	}
}

// TestResponsePercentiles exercises the CollectResponses path.
func TestResponsePercentiles(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 2}, [2]float64{20, 8})
	s, err := New(a, Config{CollectResponses: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(2000))
	for id, tm := range res.Tasks {
		if tm.Completed == 0 {
			continue
		}
		if tm.ResponseP50Ms <= 0 {
			t.Errorf("%s: P50 missing", id)
		}
		if tm.ResponseP50Ms > tm.ResponseP95Ms+1e-9 || tm.ResponseP95Ms > tm.ResponseP99Ms+1e-9 {
			t.Errorf("%s: percentiles not ordered: %v %v %v",
				id, tm.ResponseP50Ms, tm.ResponseP95Ms, tm.ResponseP99Ms)
		}
		if tm.ResponseP99Ms > tm.MaxResponse.Millis()+1e-9 {
			t.Errorf("%s: P99 %v exceeds max %v", id, tm.ResponseP99Ms, tm.MaxResponse.Millis())
		}
	}
	// Without collection the percentile fields stay zero.
	s2, err := New(flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 2}), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res2 := s2.Run(timeunit.FromMillis(100))
	for id, tm := range res2.Tasks {
		if tm.ResponseP50Ms != 0 {
			t.Errorf("%s: percentiles populated without CollectResponses", id)
		}
	}
}
