package hypersim

import (
	"sort"

	"vc2m/internal/obs"
	"vc2m/internal/sim"
	"vc2m/internal/stats"
	"vc2m/internal/timeunit"
	"vc2m/internal/trace"
)

// TaskMetrics summarizes one task's behaviour over a run.
type TaskMetrics struct {
	// Released is the number of jobs released.
	Released int
	// Completed is the number of jobs that finished.
	Completed int
	// Missed is the number of jobs unfinished at their deadline (such jobs
	// are discarded, so one overload does not cascade into later jobs).
	Missed int
	// MaxLateness is the largest completion time past a deadline observed
	// (0 when every job met its deadline), in ticks.
	MaxLateness timeunit.Ticks
	// MaxResponse is the largest observed job response time (completion
	// minus release), in ticks.
	MaxResponse timeunit.Ticks
	// ResponseP50, ResponseP95 and ResponseP99 are response-time
	// percentiles in ticks — the same unit as MaxResponse/MaxLateness,
	// so the fields compare directly. Populated only when
	// Config.CollectResponses is set and the task completed jobs.
	ResponseP50 timeunit.Ticks
	ResponseP95 timeunit.Ticks
	ResponseP99 timeunit.Ticks
	// ResponseP50Ms, ResponseP95Ms and ResponseP99Ms are the same
	// percentiles in milliseconds, kept for render paths that report ms;
	// convert tick fields with Ticks.Millis rather than mixing units.
	ResponseP50Ms float64
	ResponseP95Ms float64
	ResponseP99Ms float64
}

// Result summarizes a simulation run.
type Result struct {
	// Horizon is the simulated duration.
	Horizon timeunit.Ticks
	// Released, Completed and Missed aggregate job counts over all tasks.
	Released  int
	Completed int
	Missed    int
	// Tasks maps task ID to its metrics.
	Tasks map[string]TaskMetrics
	// ContextSwitches, SchedInvocations and BudgetReplenishments count
	// scheduler activity across all cores (Table 2's rows).
	ContextSwitches      uint64
	SchedInvocations     uint64
	BudgetReplenishments uint64
	// ThrottleEvents and BWReplenishments count regulator activity
	// (Table 1's rows).
	ThrottleEvents   uint64
	BWReplenishments uint64
	// EngineSteps is the number of discrete events the underlying engine
	// executed — the denominator for events/sec throughput in the bench
	// harness.
	EngineSteps uint64
	// Overheads holds wall-clock handler cost summaries in microseconds,
	// keyed by the Ov* constants; only populated with MeasureOverheads.
	Overheads map[string]stats.Summary
	// CoreBusy is each core's busy fraction of the horizon.
	CoreBusy []float64
	// VCPUBusy is each VCPU's executed share of the horizon (its observed
	// bandwidth consumption), keyed by VCPU ID.
	VCPUBusy map[string]float64
	// Trace is the execution-slice trace (the RenderGantt input); only
	// populated with RecordTrace. It is a projection of Events.
	Trace []TraceEntry
	// Events is the full typed flight-recorder stream; only populated
	// with RecordTrace. Feed it to trace.Diagnose, trace.WriteChrome or
	// a JSONL writer. Streaming sinks passed via Config.Trace receive
	// the same events without this retained copy.
	Events []trace.Event
}

// TaskIDs returns the keys of Tasks in sorted order — the deterministic
// iteration order every report and rendering should use, so output is
// byte-identical run to run.
func (r *Result) TaskIDs() []string {
	ids := make([]string, 0, len(r.Tasks))
	for id := range r.Tasks { //vc2m:ordered keys are sorted below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// vcpuRelease is the periodic-server replenishment: at each period
// boundary the VCPU's budget is reset to its full value and its deadline
// moves one period ahead. This is the "CPU budget replenishment" handler
// of Table 2.
func (s *Simulator) vcpuRelease(v *vcpuState) {
	core := s.cores[v.core]
	s.charge(core) // account the in-flight slice before mutating budgets
	s.measure(OvBudgetReplenish, func() {
		now := s.engine.Now()
		v.released = true
		v.remaining = v.budget
		v.deadline = now + v.period
		v.replenishments++
	})
	s.syncVCPUReady(v, true) // replenishment moves the EDF deadline
	if s.sink != nil {
		s.sink.Record(trace.Event{
			Type: trace.EvVCPUReplenish, Time: s.engine.Now(),
			Core: v.core, VCPU: v.spec.ID,
			Budget: v.budget, Deadline: v.deadline,
		})
	}
	s.engine.After(v.period, sim.PrioReplenish, func() { s.vcpuRelease(v) })
	s.requestReschedule(core)
}

// taskRelease releases the task's next job. A job still unfinished at its
// implicit deadline (the next release) counts as a deadline miss and is
// discarded.
func (s *Simulator) taskRelease(t *taskState, v *vcpuState) {
	core := s.cores[v.core]
	s.charge(core)
	now := s.engine.Now()
	if t.active && t.remaining > 0 {
		t.missed++
		if s.sink != nil {
			s.sink.Record(trace.Event{
				Type: trace.EvDeadlineMiss, Time: now,
				Core: v.core, VCPU: v.spec.ID, Task: t.spec.ID,
				Deadline: t.deadline, Demand: t.remaining,
			})
		}
		if s.cfg.ContinueLateJobs {
			// Tardiness mode: the late job keeps running; this release is
			// skipped (its work is shed rather than queued, bounding the
			// backlog at one job).
			s.engine.After(t.period, sim.PrioRelease, func() { s.taskRelease(t, v) })
			s.requestReschedule(core)
			return
		}
		if core.curTask == t {
			core.curTask = nil
		}
	}
	t.released++
	t.remaining = t.wcet
	t.deadline = now + t.period
	t.active = t.remaining > 0
	s.syncTaskReady(t, true) // the release moves the job deadline
	s.syncVCPUReady(v, false)
	if s.sink != nil {
		s.sink.Record(trace.Event{
			Type: trace.EvJobRelease, Time: now,
			Core: v.core, VCPU: v.spec.ID, Task: t.spec.ID,
			Deadline: t.deadline, Demand: t.wcet, WCET: t.declared,
		})
	}
	if !t.active {
		t.completed++ // zero-demand job completes instantly
		if s.sink != nil {
			s.sink.Record(trace.Event{
				Type: trace.EvJobComplete, Time: now,
				Core: v.core, VCPU: v.spec.ID, Task: t.spec.ID,
				Start: now, Deadline: t.deadline,
			})
		}
	}
	s.engine.After(t.period, sim.PrioRelease, func() { s.taskRelease(t, v) })
	s.requestReschedule(core)
}

// onThrottle is the BW enforcer handler (Fig. 1 step 3): invoked from the
// simulated PC-overflow interrupt, it marks the core throttled and asks
// the scheduler to de-schedule the running VCPU, leaving the core idle.
func (s *Simulator) onThrottle(coreID int) {
	core := s.cores[coreID]
	s.measure(OvThrottle, func() {
		core.throttled = true
		s.throttleEvents++
	})
	if s.sink != nil {
		ev := trace.Event{
			Type: trace.EvThrottle, Time: s.engine.Now(), Core: coreID,
		}
		if core.current != nil {
			ev.VCPU = core.current.spec.ID
			if core.curTask != nil {
				ev.Task = core.curTask.spec.ID
			}
		}
		s.sink.Record(ev)
	}
	s.requestReschedule(core)
}

// onBWReplenish is invoked by the regulator for each core during the
// periodic refill; previously throttled cores get a scheduling pass so a
// VCPU runs again (Fig. 1 step 4).
func (s *Simulator) onBWReplenish(coreID int, wasThrottled bool) {
	core := s.cores[coreID]
	core.throttled = false
	if s.sink != nil {
		s.sink.Record(trace.Event{
			Type: trace.EvBWReplenish, Time: s.engine.Now(),
			Core: coreID, Throttled: wasThrottled,
		})
	}
	if wasThrottled {
		s.requestReschedule(core)
	}
}

// regTick is the BW refiller timer handler (Table 1's "memory BW budget
// replenishment"): it replenishes every core's budget and re-arms itself.
func (s *Simulator) regTick() {
	for _, core := range s.cores {
		s.charge(core) // account in-flight requests before the refill
	}
	s.measure(OvBWReplenish, func() {
		s.reg.Replenish()
		s.regReplenishes++
	})
	s.engine.After(s.cfg.RegulationPeriod, sim.PrioRegulator, s.regTick)
}

// Run simulates the allocation for the given horizon and returns the
// aggregated result. Run may only be called once per Simulator; further
// calls panic (re-running would double-register every release event).
func (s *Simulator) Run(horizon timeunit.Ticks) *Result {
	if s.ran {
		panic("hypersim: Run called twice on the same Simulator")
	}
	s.ran = true
	sp := s.cfg.Span.Child(obs.StageHypersim)
	for _, v := range s.vcpus {
		v := v
		s.engine.At(v.offset, sim.PrioReplenish, func() { s.vcpuRelease(v) })
		for _, t := range v.tasks {
			t := t
			s.engine.At(t.offset, sim.PrioRelease, func() { s.taskRelease(t, v) })
		}
	}
	if s.reg != nil {
		s.engine.At(s.cfg.RegulationPeriod, sim.PrioRegulator, s.regTick)
	}

	s.engine.RunUntil(horizon)
	for _, core := range s.cores {
		s.charge(core)
	}

	res := &Result{
		Horizon:          horizon,
		Tasks:            make(map[string]TaskMetrics, len(s.tasks)),
		ThrottleEvents:   s.throttleEvents,
		BWReplenishments: s.regReplenishes,
		EngineSteps:      s.engine.Steps(),
		CoreBusy:         make([]float64, len(s.cores)),
	}
	if s.mem != nil {
		// The slice view consumed by RenderGantt is a projection of the
		// typed event stream, so both render the same execution.
		res.Events = s.mem.Events()
		res.Trace = SlicesFromEvents(res.Events)
	}
	for _, t := range s.tasks {
		tm := TaskMetrics{
			Released:    t.released,
			Completed:   t.completed,
			Missed:      t.missed,
			MaxLateness: t.maxLate,
			MaxResponse: t.maxResp,
		}
		if t.responses != nil && t.responses.N() > 0 {
			tm.ResponseP50Ms = t.responses.Percentile(50)
			tm.ResponseP95Ms = t.responses.Percentile(95)
			tm.ResponseP99Ms = t.responses.Percentile(99)
			tm.ResponseP50 = timeunit.FromMillis(tm.ResponseP50Ms)
			tm.ResponseP95 = timeunit.FromMillis(tm.ResponseP95Ms)
			tm.ResponseP99 = timeunit.FromMillis(tm.ResponseP99Ms)
		}
		res.Tasks[t.spec.ID] = tm
		res.Released += t.released
		res.Completed += t.completed
		res.Missed += t.missed
	}
	for i, core := range s.cores {
		res.ContextSwitches += core.contextSwitches
		res.SchedInvocations += core.schedInvocations
		if horizon > 0 {
			res.CoreBusy[i] = timeunit.Ratio(core.busyTicks, horizon)
		}
	}
	res.VCPUBusy = make(map[string]float64, len(s.vcpus))
	for _, v := range s.vcpus {
		res.BudgetReplenishments += v.replenishments
		if horizon > 0 {
			res.VCPUBusy[v.spec.ID] = timeunit.Ratio(v.execTicks, horizon)
		}
	}
	if s.cfg.MeasureOverheads {
		res.Overheads = make(map[string]stats.Summary, len(s.overheads))
		for k, sample := range s.overheads { //vc2m:ordered map-to-map copy
			res.Overheads[k] = sample.Summary()
		}
	}
	if rec := s.cfg.Metrics; rec != nil {
		rec.Add(MetricContextSwitches, int64(res.ContextSwitches))
		rec.Add(MetricSchedInvocations, int64(res.SchedInvocations))
		rec.Add(MetricBudgetReplenish, int64(res.BudgetReplenishments))
		rec.Add(MetricThrottleEvents, int64(res.ThrottleEvents))
		rec.Add(MetricBWReplenish, int64(res.BWReplenishments))
		rec.Add(MetricJobsReleased, int64(res.Released))
		rec.Add(MetricJobsCompleted, int64(res.Completed))
		rec.Add(MetricDeadlineMisses, int64(res.Missed))
	}
	sp.SetInt("engine_steps", int64(res.EngineSteps))
	sp.SetInt("released", int64(res.Released))
	sp.SetInt("missed", int64(res.Missed))
	sp.End()
	return res
}
