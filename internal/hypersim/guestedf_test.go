package hypersim

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// TestGuestEDFOrdersTasksWithinVCPU verifies the guest-OS side of the
// hierarchy: among active tasks inside one VCPU, the earliest-deadline
// job runs first.
func TestGuestEDFOrdersTasksWithinVCPU(t *testing.T) {
	p := model.PlatformA
	short := model.SimpleTask("short", p, 10, 2)
	short.VM = "vm"
	long := model.SimpleTask("long", p, 40, 8)
	long.VM = "vm"
	v, err := csa.WellRegulatedVCPU([]*model.Task{short, long}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(400))
	if res.Missed != 0 {
		t.Fatalf("missed %d deadlines", res.Missed)
	}
	// At every VCPU period start both tasks may be active; "short"
	// (deadline +10) must always precede "long" (deadline +40) within the
	// same period window.
	period := timeunit.FromMillis(10)
	firstInPeriod := map[int64]string{}
	for _, e := range res.Trace {
		if e.Task == "" {
			continue
		}
		k := int64(e.Start / period)
		if _, ok := firstInPeriod[k]; !ok {
			firstInPeriod[k] = e.Task
		}
	}
	for k, task := range firstInPeriod {
		// In periods where "short" has a fresh job (every period), it
		// must run before "long".
		if task != "short" {
			// "long" may legitimately start a period if "short" finished
			// within a previous slice that crossed the boundary — but with
			// synchronized releases at every 10 ms, short is always fresh.
			t.Fatalf("period %d started with %q, want the earliest-deadline task \"short\"", k, task)
		}
	}
}

// TestGuestEDFTieBreakByIndex: equal deadlines inside a VCPU resolve by
// task index, deterministically.
func TestGuestEDFTieBreakByIndex(t *testing.T) {
	p := model.PlatformA
	t1 := model.SimpleTask("first", p, 10, 2)
	t1.VM = "vm"
	t2 := model.SimpleTask("second", p, 10, 2)
	t2.VM = "vm"
	v, err := csa.WellRegulatedVCPU([]*model.Task{t1, t2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	s, err := New(a, Config{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(100))
	period := timeunit.FromMillis(10)
	for _, e := range res.Trace {
		if e.Task == "" {
			continue
		}
		off := e.Start % period
		switch e.Task {
		case "first":
			if off >= timeunit.FromMillis(2) {
				t.Fatalf("lower-index task ran at offset %v, want [0, 2ms)", off)
			}
		case "second":
			if off < timeunit.FromMillis(2) {
				t.Fatalf("higher-index task ran at offset %v, want [2ms, 4ms)", off)
			}
		}
	}
}
