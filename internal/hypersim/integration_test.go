package hypersim

import (
	"errors"
	"testing"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/timeunit"
	"vc2m/internal/workload"
)

// TestScheduleImpliesNoMisses is the end-to-end soundness check: for
// randomly generated workloads, any allocation the vC2M solutions declare
// schedulable must produce zero deadline misses when executed on the
// hypervisor simulator for two hyperperiods.
func TestScheduleImpliesNoMisses(t *testing.T) {
	solutions := []alloc.Allocator{
		&alloc.Heuristic{Mode: alloc.Flattening},
		&alloc.Heuristic{Mode: alloc.OverheadFree},
		alloc.EvenlyPartition{},
	}
	checked := 0
	for seed := int64(0); seed < 8; seed++ {
		sys, err := workload.Generate(workload.Config{
			Platform:      model.PlatformA,
			TargetRefUtil: 0.8 + 0.1*float64(seed%4),
			Dist:          workload.Uniform,
		}, rngutil.New(4000+seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, sol := range solutions {
			a, err := sol.Allocate(sys, rngutil.New(seed))
			if errors.Is(err, model.ErrNotSchedulable) {
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sol.Name(), err)
			}
			// Hyperperiod = max period <= 1100 ms; simulate two.
			var maxP float64
			for _, task := range sys.Tasks() {
				if task.Period > maxP {
					maxP = task.Period
				}
			}
			s, err := New(a, Config{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sol.Name(), err)
			}
			res := s.Run(2 * timeunit.FromMillis(maxP))
			if res.Missed != 0 {
				t.Errorf("seed %d %s: allocation declared schedulable but missed %d deadlines",
					seed, sol.Name(), res.Missed)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable allocations were produced to check")
	}
}

// TestExistingCSAAllocationsAlsoHold checks the same property for the
// existing-CSA solutions: their budgets are conservative (at least the
// overhead-free budget), so simulated deadlines must hold too.
func TestExistingCSAAllocationsAlsoHold(t *testing.T) {
	solutions := []alloc.Allocator{
		&alloc.Heuristic{Mode: alloc.ExistingCSA},
		alloc.Baseline{},
	}
	checked := 0
	for seed := int64(0); seed < 6; seed++ {
		sys, err := workload.Generate(workload.Config{
			Platform:      model.PlatformA,
			TargetRefUtil: 0.5,
			Dist:          workload.Uniform,
		}, rngutil.New(5000+seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, sol := range solutions {
			a, err := sol.Allocate(sys, rngutil.New(seed))
			if errors.Is(err, model.ErrNotSchedulable) {
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sol.Name(), err)
			}
			s, err := New(a, Config{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sol.Name(), err)
			}
			res := s.Run(timeunit.FromMillis(2200))
			if res.Missed != 0 {
				t.Errorf("seed %d %s: schedulable allocation missed %d deadlines",
					seed, sol.Name(), res.Missed)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no schedulable allocations were produced to check")
	}
}
