package hypersim

import (
	"testing"

	"vc2m/internal/metrics"
	"vc2m/internal/model"
)

// TestRunRecordsMetrics checks that a run with a recorder attached mirrors
// its Result counters into the recorder, and that the counters match the
// deterministic single-task scenario of TestExactSchedulerMetrics.
func TestRunRecordsMetrics(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 4})
	rec := metrics.New()
	res := run(t, a, Config{Metrics: rec}, 100)

	want := map[string]int64{
		MetricContextSwitches:  int64(res.ContextSwitches),
		MetricSchedInvocations: int64(res.SchedInvocations),
		MetricBudgetReplenish:  int64(res.BudgetReplenishments),
		MetricThrottleEvents:   int64(res.ThrottleEvents),
		MetricBWReplenish:      int64(res.BWReplenishments),
		MetricJobsReleased:     int64(res.Released),
		MetricJobsCompleted:    int64(res.Completed),
		MetricDeadlineMisses:   int64(res.Missed),
	}
	for name, w := range want {
		if got := rec.Counter(name); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	if rec.Counter(MetricBudgetReplenish) != 11 {
		t.Errorf("budget replenishments = %d, want 11", rec.Counter(MetricBudgetReplenish))
	}
	if rec.Counter(MetricJobsReleased) != 11 || rec.Counter(MetricJobsCompleted) != 10 {
		t.Errorf("jobs = %d released / %d completed, want 11 / 10",
			rec.Counter(MetricJobsReleased), rec.Counter(MetricJobsCompleted))
	}
	if rec.Counter(MetricDeadlineMisses) != 0 {
		t.Errorf("deadline misses = %d, want 0", rec.Counter(MetricDeadlineMisses))
	}
}

// TestRunNilMetrics checks that the default nil recorder changes nothing.
func TestRunNilMetrics(t *testing.T) {
	a := flatAlloc(t, model.PlatformA, 10, 10, [2]float64{10, 4})
	res := run(t, a, Config{}, 100)
	if res.Missed != 0 {
		t.Fatalf("missed = %d, want 0", res.Missed)
	}
}
