package hypersim

import (
	"testing"

	"vc2m/internal/csa"
	"vc2m/internal/model"
	"vc2m/internal/timeunit"
)

// twoTaskAlloc builds one core with two flattened tasks; inflate adds the
// analysis-side budget inflation that should cover the injected overhead.
func twoTaskAlloc(t *testing.T, wcet float64, inflate csa.Overheads) *model.Allocation {
	t.Helper()
	p := model.PlatformA
	var vcpus []*model.VCPU
	for i, id := range []string{"t1", "t2"} {
		task := model.SimpleTask(id, p, 10, wcet)
		task.VM = "vm"
		vcpus = append(vcpus, inflate.InflateVCPU(csa.FlattenVCPU(task, i)))
	}
	return &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: vcpus}},
		Schedulable: true,
	}
}

func TestContextSwitchCostZeroIsNoop(t *testing.T) {
	a := twoTaskAlloc(t, 5, csa.Overheads{})
	s, err := New(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(1000))
	if res.Missed != 0 {
		t.Errorf("utilization 1.0 without overhead missed %d deadlines", res.Missed)
	}
}

func TestContextSwitchCostCausesMissesAtFullLoad(t *testing.T) {
	// Utilization exactly 1.0 leaves no slack: any injected overhead must
	// produce misses.
	a := twoTaskAlloc(t, 5, csa.Overheads{})
	s, err := New(a, Config{ContextSwitchCost: timeunit.FromMillis(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(1000))
	if res.Missed == 0 {
		t.Error("injected context-switch cost at utilization 1.0 produced no misses")
	}
}

func TestOverheadInflationCoversInjectedCost(t *testing.T) {
	// The paper's accounting ([17]): inflating each VCPU's budget by the
	// per-period preemption/completion overhead makes the analysis safe
	// against the injected cost. Budgets 4 + 0.5 each (utilization 0.9
	// task demand + inflation headroom = 1.0 total) with a 0.2 ms switch
	// cost: at most 2 switch pairs per 10 ms window on this core, covered
	// by 2 x 0.5 ms of inflation.
	a := twoTaskAlloc(t, 4, csa.Overheads{VCPUPreemption: 0.5})
	s, err := New(a, Config{ContextSwitchCost: timeunit.FromMillis(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(1000))
	if res.Missed != 0 {
		t.Errorf("inflated budgets should absorb the injected cost; missed %d", res.Missed)
	}
}

func TestContextSwitchCostChargedToBudgetNotTask(t *testing.T) {
	// A single task alone on its core: the initial switch-in costs budget
	// but the task still completes (its budget has headroom from the
	// WCET=budget equality plus the cost being bounded by the budget).
	p := model.PlatformA
	task := model.SimpleTask("t1", p, 10, 5)
	task.VM = "vm"
	v := csa.FlattenVCPU(task, 0)
	v.Budget = model.ConstTable(p, 6) // headroom for the switch-in
	a := &model.Allocation{
		Platform:    p,
		Cores:       []*model.CoreAlloc{{Core: 0, Cache: 10, BW: 10, VCPUs: []*model.VCPU{v}}},
		Schedulable: true,
	}
	s, err := New(a, Config{ContextSwitchCost: timeunit.FromMillis(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(timeunit.FromMillis(200))
	tm := res.Tasks["t1"]
	if tm.Missed != 0 {
		t.Errorf("missed %d deadlines", tm.Missed)
	}
	// Response time includes the switch-in overhead: 5.5 ms, not 5 ms.
	want := timeunit.FromMillis(5.5)
	if tm.MaxResponse != want {
		t.Errorf("max response = %v, want %v (WCET + switch-in)", tm.MaxResponse, want)
	}
}
