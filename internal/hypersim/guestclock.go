package hypersim

import (
	"fmt"

	"vc2m/internal/timeunit"
)

// GuestClock models a virtual machine's clock, which is generally not
// synchronized with the hypervisor's: guest time = wall time + Offset.
// Section 3.2's release-synchronization design exists precisely because of
// this: the guest cannot simply pass an absolute release time to the
// hypervisor.
type GuestClock struct {
	// Offset is the guest clock's displacement from wall time; it may be
	// negative.
	Offset timeunit.Ticks
}

// Now returns the guest-time reading at the given wall time.
func (g GuestClock) Now(wall timeunit.Ticks) timeunit.Ticks {
	return wall + g.Offset
}

// SyncReleaseFromGuest is the full release-synchronization protocol of
// Section 3.2, including the guest side. When a task is initialized at
// guest time vt0 with its first release at guest time vtr, the guest
// kernel computes the delay L = vtr - vt0 — a *relative* quantity, so the
// unknown clock offset cancels — and issues the hypercall with L. The
// hypervisor, receiving the hypercall at its own time xt0, sets the
// VCPU's next release to xt0 + L.
//
// vtInit and vtRelease are in guest time (per clock); the hypercall is
// modeled as arriving now. The paper notes the hypercall delay makes the
// VCPU release trail the task's slightly and ignores it in the analysis;
// here the delay is zero.
func (s *Simulator) SyncReleaseFromGuest(vcpuID string, clock GuestClock, vtInit, vtRelease timeunit.Ticks) error {
	if vtRelease < vtInit {
		return fmt.Errorf("hypersim: release %v before initialization %v (guest time)", vtRelease, vtInit)
	}
	delay := vtRelease - vtInit
	return s.SyncRelease(vcpuID, delay)
}
