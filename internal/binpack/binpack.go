// Package binpack provides the one-dimensional bin-packing heuristics used
// by the baseline solutions in the paper's evaluation (best-fit decreasing
// for packing tasks onto VCPUs and VCPUs onto cores) and by tests that
// compare against the vC2M heuristics.
//
// Items are abstract: the caller supplies sizes, and capacity is 1.0 by
// convention (utilization packing). All functions return, for each item, the
// index of the bin it was placed in, or report failure when an item fits in
// no bin.
package binpack

import (
	"sort"
)

// Strategy selects the placement rule.
type Strategy int

const (
	// BestFit places each item in the feasible bin with the least remaining
	// capacity (tightest fit).
	BestFit Strategy = iota
	// FirstFit places each item in the lowest-indexed feasible bin.
	FirstFit
	// WorstFit places each item in the feasible bin with the most remaining
	// capacity, which balances load across bins.
	WorstFit
)

// String returns the conventional name of the strategy.
func (s Strategy) String() string {
	switch s {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return "unknown"
	}
}

// Result describes a packing.
type Result struct {
	// Assign maps item index -> bin index, or -1 if the item did not fit.
	Assign []int
	// Loads holds the total size placed in each bin.
	Loads []float64
	// OK reports whether every item was placed.
	OK bool
}

// Pack places items of the given sizes into nbins bins of the given
// capacity using the strategy, considering items in the order provided.
// Sizes must be non-negative; an item larger than capacity makes the packing
// fail (its Assign entry is -1) but remaining items are still placed.
func Pack(sizes []float64, nbins int, capacity float64, strat Strategy) Result {
	loads := make([]float64, nbins)
	assign := make([]int, len(sizes))
	ok := true
	for i, sz := range sizes {
		bin := pick(loads, sz, capacity, strat)
		if bin < 0 {
			assign[i] = -1
			ok = false
			continue
		}
		assign[i] = bin
		loads[bin] += sz
	}
	return Result{Assign: assign, Loads: loads, OK: ok}
}

// PackDecreasing sorts items by decreasing size before packing (the
// "-decreasing" family, e.g. best-fit decreasing), then reports assignments
// in the original item order. Ties are broken by original index so the
// result is deterministic.
func PackDecreasing(sizes []float64, nbins int, capacity float64, strat Strategy) Result {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	loads := make([]float64, nbins)
	assign := make([]int, len(sizes))
	ok := true
	for _, idx := range order {
		bin := pick(loads, sizes[idx], capacity, strat)
		if bin < 0 {
			assign[idx] = -1
			ok = false
			continue
		}
		assign[idx] = bin
		loads[bin] += sizes[idx]
	}
	return Result{Assign: assign, Loads: loads, OK: ok}
}

// MinBins packs with an unbounded number of bins, opening a new bin whenever
// an item fits nowhere, and returns the packing. It is used to compute the
// number of VCPUs the baseline needs. Items larger than capacity still fail.
func MinBins(sizes []float64, capacity float64, strat Strategy) Result {
	var loads []float64
	assign := make([]int, len(sizes))
	ok := true
	for i, sz := range sizes {
		if sz > capacity {
			assign[i] = -1
			ok = false
			continue
		}
		bin := pick(loads, sz, capacity, strat)
		if bin < 0 {
			loads = append(loads, 0)
			bin = len(loads) - 1
		}
		assign[i] = bin
		loads[bin] += sz
	}
	return Result{Assign: assign, Loads: loads, OK: ok}
}

// MinBinsDecreasing is MinBins on items sorted by decreasing size, with
// assignments reported in original order.
func MinBinsDecreasing(sizes []float64, capacity float64, strat Strategy) Result {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] { //vc2m:floateq exact tie-break keeps the sort a strict weak order
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	var loads []float64
	assign := make([]int, len(sizes))
	ok := true
	for _, idx := range order {
		sz := sizes[idx]
		if sz > capacity {
			assign[idx] = -1
			ok = false
			continue
		}
		bin := pick(loads, sz, capacity, strat)
		if bin < 0 {
			loads = append(loads, 0)
			bin = len(loads) - 1
		}
		assign[idx] = bin
		loads[bin] += sz
	}
	return Result{Assign: assign, Loads: loads, OK: ok}
}

// pick returns the bin index chosen by the strategy, or -1 if the item fits
// in no bin. A small epsilon absorbs float accumulation error so that items
// that exactly fill a bin are accepted.
func pick(loads []float64, size, capacity float64, strat Strategy) int {
	const eps = 1e-9
	best := -1
	for b, load := range loads {
		if load+size > capacity+eps {
			continue
		}
		if best == -1 {
			best = b
			if strat == FirstFit {
				return b
			}
			continue
		}
		switch strat {
		case BestFit:
			if loads[b] > loads[best] {
				best = b
			}
		case WorstFit:
			if loads[b] < loads[best] {
				best = b
			}
		}
	}
	return best
}
