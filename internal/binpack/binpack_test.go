package binpack

import (
	"testing"
	"testing/quick"
)

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		BestFit:      "best-fit",
		FirstFit:     "first-fit",
		WorstFit:     "worst-fit",
		Strategy(99): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestPackBestFitPrefersTightBin(t *testing.T) {
	// 0.6 -> bin 0; 0.5 cannot join bin 0, so -> bin 1; the 0.35 item fits
	// in both and best-fit must pick bin 0 (tightest remaining capacity).
	r := Pack([]float64{0.6, 0.5, 0.35}, 2, 1.0, BestFit)
	if !r.OK {
		t.Fatalf("packing failed: %+v", r)
	}
	if r.Assign[2] != 0 {
		t.Errorf("best-fit placed 0.35 in bin %d, want 0 (tightest)", r.Assign[2])
	}
}

func TestPackWorstFitBalances(t *testing.T) {
	r := Pack([]float64{0.6, 0.3, 0.35}, 2, 1.0, WorstFit)
	if !r.OK {
		t.Fatalf("packing failed: %+v", r)
	}
	if r.Assign[2] != 1 {
		t.Errorf("worst-fit placed 0.35 in bin %d, want 1 (emptiest)", r.Assign[2])
	}
}

func TestPackFirstFit(t *testing.T) {
	r := Pack([]float64{0.5, 0.5, 0.5}, 2, 1.0, FirstFit)
	if !r.OK {
		t.Fatal("first-fit should place all three items")
	}
	want := []int{0, 0, 1}
	for i, w := range want {
		if r.Assign[i] != w {
			t.Errorf("Assign[%d] = %d, want %d", i, r.Assign[i], w)
		}
	}
}

func TestPackFailure(t *testing.T) {
	r := Pack([]float64{0.9, 0.9, 0.9}, 2, 1.0, BestFit)
	if r.OK {
		t.Error("packing three 0.9 items into two unit bins should fail")
	}
	if r.Assign[2] != -1 {
		t.Errorf("unplaced item should have assignment -1, got %d", r.Assign[2])
	}
	// The first two must still be placed.
	if r.Assign[0] == -1 || r.Assign[1] == -1 {
		t.Error("placeable items were not placed")
	}
}

func TestPackOversizedItem(t *testing.T) {
	r := Pack([]float64{1.5, 0.2}, 2, 1.0, BestFit)
	if r.OK || r.Assign[0] != -1 {
		t.Error("oversized item must fail")
	}
	if r.Assign[1] == -1 {
		t.Error("remaining items must still be placed after a failure")
	}
}

func TestPackExactFill(t *testing.T) {
	// Items that sum exactly to capacity must fit despite float arithmetic.
	r := Pack([]float64{0.1, 0.2, 0.3, 0.4}, 1, 1.0, FirstFit)
	if !r.OK {
		t.Errorf("exact fill rejected: %+v", r)
	}
}

func TestPackDecreasingOrder(t *testing.T) {
	// Classic case where first-fit fails but first-fit decreasing succeeds.
	sizes := []float64{0.3, 0.3, 0.3, 0.7, 0.7, 0.7}
	plain := Pack(sizes, 3, 1.0, FirstFit)
	if plain.OK {
		t.Error("first-fit in given order should fail for this instance")
	}
	dec := PackDecreasing(sizes, 3, 1.0, FirstFit)
	if !dec.OK {
		t.Errorf("first-fit decreasing should succeed: %+v", dec)
	}
}

func TestPackDecreasingReportsOriginalOrder(t *testing.T) {
	sizes := []float64{0.2, 0.9}
	r := PackDecreasing(sizes, 2, 1.0, BestFit)
	if !r.OK {
		t.Fatal("packing failed")
	}
	// Item 1 (0.9) is packed first into bin 0; item 0 joins a bin after.
	if r.Assign[1] != 0 {
		t.Errorf("largest item should land in bin 0, got %d", r.Assign[1])
	}
}

func TestMinBins(t *testing.T) {
	r := MinBins([]float64{0.5, 0.5, 0.5, 0.5}, 1.0, FirstFit)
	if !r.OK {
		t.Fatal("MinBins failed")
	}
	if len(r.Loads) != 2 {
		t.Errorf("MinBins opened %d bins, want 2", len(r.Loads))
	}
}

func TestMinBinsOversized(t *testing.T) {
	r := MinBins([]float64{2.0}, 1.0, BestFit)
	if r.OK || r.Assign[0] != -1 {
		t.Error("MinBins must reject an item larger than capacity")
	}
}

func TestMinBinsDecreasingNoWorseThanPlain(t *testing.T) {
	f := func(raw []uint8) bool {
		sizes := make([]float64, 0, len(raw))
		for _, v := range raw {
			sizes = append(sizes, float64(v%100)/100.0)
		}
		plain := MinBins(sizes, 1.0, BestFit)
		dec := MinBinsDecreasing(sizes, 1.0, BestFit)
		if !plain.OK || !dec.OK {
			return plain.OK == dec.OK // both handle only feasible items here
		}
		return len(dec.Loads) <= len(plain.Loads)+1 // FFD is near-optimal; allow slack of 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoadsMatchAssignments(t *testing.T) {
	f := func(raw []uint8, binsRaw uint8) bool {
		sizes := make([]float64, 0, len(raw))
		for _, v := range raw {
			sizes = append(sizes, float64(v%90)/100.0)
		}
		nbins := int(binsRaw%5) + 1
		for _, strat := range []Strategy{BestFit, FirstFit, WorstFit} {
			r := Pack(sizes, nbins, 1.0, strat)
			loads := make([]float64, nbins)
			for i, b := range r.Assign {
				if b == -1 {
					continue
				}
				if b < 0 || b >= nbins {
					return false
				}
				loads[b] += sizes[i]
			}
			for b := range loads {
				if diff := loads[b] - r.Loads[b]; diff > 1e-9 || diff < -1e-9 {
					return false
				}
				if r.Loads[b] > 1.0+1e-9 {
					return false // capacity respected
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZeroItems(t *testing.T) {
	r := Pack(nil, 3, 1.0, BestFit)
	if !r.OK || len(r.Assign) != 0 {
		t.Errorf("empty packing should trivially succeed: %+v", r)
	}
}

func TestZeroBins(t *testing.T) {
	r := Pack([]float64{0.1}, 0, 1.0, BestFit)
	if r.OK {
		t.Error("packing into zero bins must fail")
	}
}
