package binpack

import "testing"

func benchSizes(n int) []float64 {
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 0.05 + float64((i*37)%60)/100
	}
	return sizes
}

func BenchmarkPackBestFit(b *testing.B) {
	sizes := benchSizes(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(sizes, 40, 1.0, BestFit)
	}
}

func BenchmarkPackDecreasing(b *testing.B) {
	sizes := benchSizes(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackDecreasing(sizes, 40, 1.0, BestFit)
	}
}

func BenchmarkMinBins(b *testing.B) {
	sizes := benchSizes(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinBins(sizes, 1.0, BestFit)
	}
}
