// Package timeunit provides the fixed-point time representation shared by
// the analysis code and the discrete-event simulators.
//
// The schedulability analysis (package csa) works in float64 milliseconds,
// which matches the units used in the paper (periods in [100, 1100] ms).
// The simulators (packages sim, hypersim, membus) need a totally ordered,
// drift-free clock, so they use integer ticks of one microsecond. This
// package converts between the two and supplies the integer arithmetic
// (GCD/LCM for hyperperiods, saturating operations) that both sides need.
package timeunit

import (
	"fmt"
	"math"
)

// Ticks is a point in (or span of) simulated time, in microseconds.
type Ticks int64

// TicksPerMilli is the number of Ticks in one millisecond.
const TicksPerMilli Ticks = 1000

// MaxTicks is the largest representable time value. It is used as an
// "infinite" horizon by the simulators.
const MaxTicks Ticks = math.MaxInt64

// FromMillis converts a duration in milliseconds to Ticks, rounding to the
// nearest microsecond. Fractional WCETs produced by workload generation are
// therefore quantized at 1 us, which is far below the 100 ms-scale periods
// used in the experiments.
func FromMillis(ms float64) Ticks {
	return Ticks(math.Round(ms * float64(TicksPerMilli)))
}

// FromMillisCeil converts milliseconds to Ticks rounding up. The simulators
// use it for budgets and WCETs so that quantization never makes a workload
// easier than the analysis assumed.
func FromMillisCeil(ms float64) Ticks {
	return Ticks(math.Ceil(ms * float64(TicksPerMilli)))
}

// FromMillisFloor converts milliseconds to Ticks rounding down. The
// hypervisor simulator floors task execution demands (jobs may take any
// time up to their WCET) while ceiling VCPU budgets, so tick quantization
// can never manufacture a spurious deadline miss.
func FromMillisFloor(ms float64) Ticks {
	return Ticks(math.Floor(ms * float64(TicksPerMilli)))
}

// Millis converts t to floating-point milliseconds.
func (t Ticks) Millis() float64 {
	return float64(t) / float64(TicksPerMilli)
}

// Count returns the raw number of ticks as a float64 — a dimensionless
// count for per-tick rate arithmetic (requests = rate * elapsed.Count()).
// Unlike Millis it performs no unit conversion; use it only where the
// surrounding math is explicitly per-tick, never where the value meets
// millisecond-valued numbers.
func (t Ticks) Count() float64 {
	return float64(t)
}

// FromCount converts a dimensionless tick count — typically produced by
// per-tick rate arithmetic on Count values — back to Ticks, truncating
// toward zero. It is the inverse of Count, NOT a millisecond conversion;
// milliseconds enter through FromMillis and friends.
func FromCount(f float64) Ticks {
	return Ticks(f)
}

// Ratio returns a/b — the dimensionless fraction of two time spans
// (utilizations, busy fractions, deprivation shares). The division is
// performed directly on the tick counts, so the result is bit-identical
// to float64(a)/float64(b) with no intermediate unit conversion.
func Ratio(a, b Ticks) float64 {
	return float64(a) / float64(b)
}

// Scale multiplies t by a dimensionless factor, truncating toward zero —
// bit-compatible with the Ticks(float64(t) * f) pattern it replaces
// (e.g. stretching a base latency by a contention factor).
func (t Ticks) Scale(f float64) Ticks {
	return Ticks(float64(t) * f)
}

// String formats the time in milliseconds with microsecond precision.
func (t Ticks) String() string {
	return fmt.Sprintf("%.3fms", t.Millis())
}

// GCD returns the greatest common divisor of a and b. GCD(0, x) = x.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 if either is 0.
// It panics on overflow, which cannot occur for the period ranges used in
// the experiments (harmonic periods below 2^20 ticks).
func LCM(a, b int64) int64 {
	r, ok := LCMChecked(a, b)
	if !ok {
		panic("timeunit: LCM overflow")
	}
	return r
}

// LCMChecked returns the least common multiple of a and b and reports
// whether it is representable in int64. Either input being 0 yields (0,
// true).
func LCMChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	g := GCD(a, b)
	q := a / g
	r := q * b
	if r/b != q {
		return 0, false
	}
	if r < 0 {
		return -r, true
	}
	return r, true
}

// LCMAll returns the least common multiple of all values, or 0 for an empty
// input. It is used to compute hyperperiods. It panics on overflow; use
// LCMAllChecked when the inputs are not known to be harmonic.
func LCMAll(vs []int64) int64 {
	l, ok := LCMAllChecked(vs)
	if !ok {
		panic("timeunit: LCMAll overflow")
	}
	return l
}

// LCMAllChecked returns the least common multiple of all values and reports
// whether it is representable in int64.
func LCMAllChecked(vs []int64) (int64, bool) {
	var l int64
	for i, v := range vs {
		if i == 0 {
			l = v
			if l < 0 {
				l = -l
			}
			continue
		}
		var ok bool
		l, ok = LCMChecked(l, v)
		if !ok {
			return 0, false
		}
	}
	return l, true
}

// Hyperperiod returns the least common multiple of the given tick values.
func Hyperperiod(periods []Ticks) Ticks {
	vs := make([]int64, len(periods))
	for i, p := range periods {
		vs[i] = int64(p)
	}
	return Ticks(LCMAll(vs))
}

// AlmostEqual reports whether a and b differ by at most eps. The analysis
// code uses it to compare float64 utilizations and budgets.
func AlmostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// Harmonic reports whether every pair of values divides one another, i.e.
// for all i, j either v[i] | v[j] or v[j] | v[i]. The overhead-free analysis
// (Theorem 2) requires harmonic task periods.
func Harmonic(vs []int64) bool {
	for i := range vs {
		if vs[i] <= 0 {
			return false
		}
		for j := i + 1; j < len(vs); j++ {
			if vs[i]%vs[j] != 0 && vs[j]%vs[i] != 0 {
				return false
			}
		}
	}
	return true
}

// HarmonicTicks is Harmonic for Ticks values.
func HarmonicTicks(vs []Ticks) bool {
	raw := make([]int64, len(vs))
	for i, v := range vs {
		raw[i] = int64(v)
	}
	return Harmonic(raw)
}
