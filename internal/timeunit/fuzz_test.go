package timeunit

import (
	"math"
	"testing"
)

// FuzzMillisConversions checks the unit-conversion invariants over
// arbitrary millisecond values: the three rounding modes must bracket each
// other (Floor <= Round <= Ceil), differ by at most one tick, and invert
// through Millis to within half a tick. Non-finite and out-of-range inputs
// are skipped — float-to-int conversion is implementation-defined there,
// and no caller produces them (periods and WCETs are validated positive
// and finite upstream).
func FuzzMillisConversions(f *testing.F) {
	f.Add(0.0)
	f.Add(1.0)
	f.Add(0.0004)  // below half a tick
	f.Add(0.0005)  // exactly half a tick
	f.Add(1100.25) // paper-scale period with a fractional tick part
	f.Add(-3.25)   // spans are signed
	f.Add(1.0 / 3) // not representable in ticks
	f.Fuzz(func(t *testing.T, ms float64) {
		if math.IsNaN(ms) || math.IsInf(ms, 0) || math.Abs(ms) > 1e12 {
			t.Skip("outside the conversion domain")
		}
		lo, mid, hi := FromMillisFloor(ms), FromMillis(ms), FromMillisCeil(ms)
		if lo > mid || mid > hi {
			t.Fatalf("ms=%v: rounding modes out of order: floor %d, round %d, ceil %d", ms, lo, mid, hi)
		}
		if hi-lo > 1 {
			t.Fatalf("ms=%v: floor %d and ceil %d differ by more than one tick", ms, lo, hi)
		}
		if diff := math.Abs(mid.Millis() - ms); diff > 0.5/float64(TicksPerMilli)+1e-9 {
			t.Fatalf("ms=%v: round trip through ticks moved by %v ms", ms, diff)
		}
	})
}

// FuzzTickRoundTrips checks the dimensionless tick arithmetic: Count and
// FromCount must invert each other exactly, Scale by 1 must be the
// identity, and Ratio of a span with itself must be exactly 1 — for every
// tick value float64 can represent exactly (|t| < 2^53, which covers
// ~285 years of simulated time).
func FuzzTickRoundTrips(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1))
	f.Add(int64(-1))
	f.Add(int64(1) << 52)
	f.Add(int64(123456789))
	f.Fuzz(func(t *testing.T, raw int64) {
		if raw > 1<<53 || raw < -(1<<53) {
			t.Skip("not exactly representable in float64")
		}
		ticks := Ticks(raw)
		if back := FromCount(ticks.Count()); back != ticks {
			t.Fatalf("FromCount(Count(%d)) = %d", ticks, back)
		}
		if scaled := ticks.Scale(1); scaled != ticks {
			t.Fatalf("Scale(%d, 1) = %d", ticks, scaled)
		}
		if ticks != 0 {
			if r := Ratio(ticks, ticks); r != 1 { //vc2m:floateq x/x is exactly 1 for finite nonzero x
				t.Fatalf("Ratio(%d, %d) = %v", ticks, ticks, r)
			}
		}
	})
}

// FuzzGCDLCM checks the number-theoretic helpers behind hyperperiod
// computation: GCD must be non-negative and divide both inputs, and
// whenever LCMChecked reports success its result must be a non-negative
// common multiple consistent with a*b = gcd*lcm.
func FuzzGCDLCM(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(100000), int64(400000))
	f.Add(int64(-6), int64(4))
	f.Add(int64(1)<<40, int64(3))
	f.Fuzz(func(t *testing.T, a, b int64) {
		if a == math.MinInt64 || b == math.MinInt64 {
			t.Skip("magnitude not representable") // |MinInt64| overflows int64
		}
		g := GCD(a, b)
		if g < 0 {
			t.Fatalf("GCD(%d, %d) = %d < 0", a, b, g)
		}
		if g == 0 {
			if a != 0 || b != 0 {
				t.Fatalf("GCD(%d, %d) = 0 with nonzero input", a, b)
			}
		} else {
			if a%g != 0 || b%g != 0 {
				t.Fatalf("GCD(%d, %d) = %d does not divide both", a, b, g)
			}
		}
		l, ok := LCMChecked(a, b)
		if !ok {
			return
		}
		if a == 0 || b == 0 {
			if l != 0 {
				t.Fatalf("LCMChecked(%d, %d) = %d, want 0", a, b, l)
			}
			return
		}
		if l <= 0 {
			t.Fatalf("LCMChecked(%d, %d) = %d, want positive", a, b, l)
		}
		if l%a != 0 || l%b != 0 {
			t.Fatalf("LCMChecked(%d, %d) = %d is not a common multiple", a, b, l)
		}
	})
}
