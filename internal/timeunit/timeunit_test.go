package timeunit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromMillisRoundTrip(t *testing.T) {
	cases := []struct {
		ms   float64
		want Ticks
	}{
		{0, 0},
		{1, 1000},
		{0.001, 1},
		{0.0004, 0},   // rounds down
		{0.0006, 1},   // rounds up
		{100, 100000}, // typical task period
		{1100, 1100000},
		{5.5, 5500},
	}
	for _, c := range cases {
		if got := FromMillis(c.ms); got != c.want {
			t.Errorf("FromMillis(%v) = %v, want %v", c.ms, got, c.want)
		}
	}
}

func TestFromMillisCeilNeverUndershoots(t *testing.T) {
	f := func(raw uint32) bool {
		ms := float64(raw) / 97.0 // arbitrary fractional milliseconds
		got := FromMillisCeil(ms)
		return got.Millis() >= ms-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMillisFloor(t *testing.T) {
	cases := []struct {
		ms   float64
		want Ticks
	}{
		{1.0009, 1000},
		{0.0004, 0},
		{0.9999, 999},
		{5.5, 5500},
	}
	for _, c := range cases {
		if got := FromMillisFloor(c.ms); got != c.want {
			t.Errorf("FromMillisFloor(%v) = %v, want %v", c.ms, got, c.want)
		}
	}
	// Floor never exceeds round, never below round-1.
	f := func(raw uint32) bool {
		ms := float64(raw) / 131.0
		fl, rd := FromMillisFloor(ms), FromMillis(ms)
		return fl <= rd && fl >= rd-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMOverflow(t *testing.T) {
	big := int64(1) << 62
	if _, ok := LCMChecked(big, big-1); ok {
		t.Error("LCMChecked accepted an overflowing pair")
	}
	if _, ok := LCMAllChecked([]int64{big, big - 1, 7}); ok {
		t.Error("LCMAllChecked accepted an overflowing sequence")
	}
	defer func() {
		if recover() == nil {
			t.Error("LCM did not panic on overflow")
		}
	}()
	LCM(big, big-1)
}

func TestLCMAllPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LCMAll did not panic on overflow")
		}
	}()
	LCMAll([]int64{1 << 62, (1 << 62) - 1})
}

func TestLCMCheckedZero(t *testing.T) {
	if v, ok := LCMChecked(0, 5); !ok || v != 0 {
		t.Errorf("LCMChecked(0,5) = %v, %v", v, ok)
	}
	if v, ok := LCMChecked(-4, 6); !ok || v != 12 {
		t.Errorf("LCMChecked(-4,6) = %v, %v, want 12", v, ok)
	}
}

func TestMillis(t *testing.T) {
	if got := Ticks(5500).Millis(); got != 5.5 {
		t.Errorf("Ticks(5500).Millis() = %v, want 5.5", got)
	}
}

func TestString(t *testing.T) {
	if got := Ticks(1234).String(); got != "1.234ms" {
		t.Errorf("String() = %q, want \"1.234ms\"", got)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 18, 6},
		{18, 12, 6},
		{0, 7, 7},
		{7, 0, 7},
		{0, 0, 0},
		{-12, 18, 6},
		{12, -18, 6},
		{13, 7, 1},
		{100, 100, 100},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{4, 6, 12},
		{0, 5, 0},
		{5, 0, 0},
		{100, 200, 200},
		{100, 400, 400},
		{3, 7, 21},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		l := LCM(x, y)
		return l%x == 0 && l%y == 0 && l >= x && l >= y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMAll(t *testing.T) {
	if got := LCMAll([]int64{100, 200, 400, 800}); got != 800 {
		t.Errorf("LCMAll harmonic = %d, want 800", got)
	}
	if got := LCMAll(nil); got != 0 {
		t.Errorf("LCMAll(nil) = %d, want 0", got)
	}
	if got := LCMAll([]int64{6, 10, 15}); got != 30 {
		t.Errorf("LCMAll([6,10,15]) = %d, want 30", got)
	}
}

func TestHyperperiod(t *testing.T) {
	got := Hyperperiod([]Ticks{100000, 200000, 400000})
	if got != 400000 {
		t.Errorf("Hyperperiod = %v, want 400000", got)
	}
}

func TestHarmonic(t *testing.T) {
	cases := []struct {
		vs   []int64
		want bool
	}{
		{[]int64{100, 200, 400}, true},
		{[]int64{100}, true},
		{nil, true},
		{[]int64{100, 300, 600}, true},
		{[]int64{100, 150}, false},
		{[]int64{2, 3}, false},
		{[]int64{0, 2}, false},  // non-positive periods are not harmonic
		{[]int64{-2, 4}, false}, // negative periods rejected
		{[]int64{7, 7, 7}, true},
	}
	for _, c := range cases {
		if got := Harmonic(c.vs); got != c.want {
			t.Errorf("Harmonic(%v) = %v, want %v", c.vs, got, c.want)
		}
	}
}

func TestHarmonicTicks(t *testing.T) {
	if !HarmonicTicks([]Ticks{1000, 2000, 8000}) {
		t.Error("HarmonicTicks([1000 2000 8000]) = false, want true")
	}
	if HarmonicTicks([]Ticks{1000, 3000, 2000}) {
		t.Error("HarmonicTicks([1000 3000 2000]) = true, want false")
	}
}

func TestHarmonicChainProperty(t *testing.T) {
	// A doubling chain from any positive base is always harmonic.
	f := func(base uint16, n uint8) bool {
		b := int64(base) + 1
		k := int(n%5) + 1
		vs := make([]int64, k)
		for i := range vs {
			vs[i] = b << uint(i)
		}
		return Harmonic(vs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("AlmostEqual should accept tiny differences")
	}
	if AlmostEqual(1.0, 1.1, 1e-9) {
		t.Error("AlmostEqual should reject large differences")
	}
	if !AlmostEqual(-1, -1, 0) {
		t.Error("AlmostEqual exact match failed")
	}
}

func TestMaxTicks(t *testing.T) {
	if MaxTicks != Ticks(math.MaxInt64) {
		t.Error("MaxTicks is not MaxInt64")
	}
}

func TestDimensionlessHelpers(t *testing.T) {
	// Count/FromCount/Ratio/Scale are the blessed dimensionless escape
	// hatches; each must stay bit-identical to the raw conversion it
	// replaces, so swapping one in never perturbs simulation results.
	for _, v := range []Ticks{0, 1, 999, 123456789, -42} {
		if got := v.Count(); got != float64(v) {
			t.Errorf("Ticks(%d).Count() = %v, want %v", int64(v), got, float64(v))
		}
	}
	for _, f := range []float64{0, 1, 0.4, 0.6, 1234.9, -7.5} {
		if got := FromCount(f); got != Ticks(f) {
			t.Errorf("FromCount(%v) = %v, want %v", f, got, Ticks(f))
		}
	}
	if got := Ratio(1, 3); got != float64(1)/float64(3) {
		t.Errorf("Ratio(1, 3) = %v", got)
	}
	if got := Ratio(0, 7); got != 0 {
		t.Errorf("Ratio(0, 7) = %v, want 0", got)
	}
	for _, c := range []struct {
		t Ticks
		f float64
	}{{1000, 1.5}, {7, 0.1}, {123456, 0.9999}, {-10, 2.5}} {
		if got, want := c.t.Scale(c.f), Ticks(float64(c.t)*c.f); got != want {
			t.Errorf("Ticks(%d).Scale(%v) = %v, want %v", int64(c.t), c.f, got, want)
		}
	}
}
