package experiment

import (
	"fmt"
	"strings"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// VMCountConfig parameterizes the abstraction-overhead-versus-VM-count
// study. This experiment is not in the paper; it isolates the paper's
// central claim directly: under the existing compositional analysis every
// additional VM adds VCPUs, and every VCPU pays a bandwidth premium over
// its tasks' utilization — while the vC2M analyses are invariant to how
// tasks are grouped into VMs, because their VCPU bandwidth equals taskset
// utilization exactly.
type VMCountConfig struct {
	// Platform for the workloads.
	Platform model.Platform
	// Util is the taskset reference utilization (a moderate fixed load).
	Util float64
	// VMCounts are the VM counts to sweep; nil defaults to 1, 2, 4, 8.
	VMCounts []int
	// TasksetsPerPoint is the number of tasksets per VM count; zero
	// defaults to 20.
	TasksetsPerPoint int
	// Seed makes the study reproducible.
	Seed int64
}

// VMCountResult holds the per-VM-count schedulable fractions.
type VMCountResult struct {
	Config   VMCountConfig
	VMCounts []int
	// Fractions maps solution name to one fraction per VM count.
	Fractions map[string][]float64
	order     []string
}

// RunVMCount sweeps the VM count at a fixed utilization for the
// flattening, overhead-free and existing-CSA heuristics.
func RunVMCount(cfg VMCountConfig) (*VMCountResult, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Util <= 0 {
		return nil, fmt.Errorf("experiment: utilization %v, need > 0", cfg.Util)
	}
	counts := cfg.VMCounts
	if counts == nil {
		counts = []int{1, 2, 4, 8}
	}
	per := cfg.TasksetsPerPoint
	if per == 0 {
		per = 20
	}
	solutions := []alloc.Allocator{
		&alloc.Heuristic{Mode: alloc.Flattening},
		&alloc.Heuristic{Mode: alloc.OverheadFree},
		&alloc.Heuristic{Mode: alloc.ExistingCSA},
	}

	res := &VMCountResult{
		Config:    cfg,
		VMCounts:  counts,
		Fractions: make(map[string][]float64, len(solutions)),
	}
	for _, sol := range solutions {
		res.order = append(res.order, sol.Name())
		res.Fractions[sol.Name()] = make([]float64, len(counts))
	}

	root := rngutil.New(cfg.Seed)
	for ci, numVMs := range counts {
		schedulable := make([]int, len(solutions))
		for ts := 0; ts < per; ts++ {
			genRNG := root.Split()
			allocRNG := root.Split()
			sys, err := workload.Generate(workload.Config{
				Platform:      cfg.Platform,
				TargetRefUtil: cfg.Util,
				Dist:          workload.Uniform,
				NumVMs:        numVMs,
			}, genRNG)
			if err != nil {
				return nil, err
			}
			for si, sol := range solutions {
				if _, err := sol.Allocate(sys, rngutil.New(allocRNG.Int63())); err == nil {
					schedulable[si]++
				}
			}
		}
		for si, sol := range solutions {
			res.Fractions[sol.Name()][ci] = float64(schedulable[si]) / float64(per)
		}
	}
	return res, nil
}

// Table renders the study: one row per solution, one column per VM count.
func (r *VMCountResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "abstraction overhead vs VM count (platform %s, utilization %.2f)\n",
		r.Config.Platform.Name, r.Config.Util)
	fmt.Fprintf(&b, "%-36s", "solution \\ VMs")
	for _, n := range r.VMCounts {
		fmt.Fprintf(&b, " %6d", n)
	}
	b.WriteByte('\n')
	for _, name := range r.order {
		fmt.Fprintf(&b, "%-36s", name)
		for _, f := range r.Fractions[name] {
			fmt.Fprintf(&b, " %6.2f", f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
