package experiment

import (
	"fmt"
	"strings"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// VMCountConfig parameterizes the abstraction-overhead-versus-VM-count
// study. This experiment is not in the paper; it isolates the paper's
// central claim directly: under the existing compositional analysis every
// additional VM adds VCPUs, and every VCPU pays a bandwidth premium over
// its tasks' utilization — while the vC2M analyses are invariant to how
// tasks are grouped into VMs, because their VCPU bandwidth equals taskset
// utilization exactly.
type VMCountConfig struct {
	// Platform for the workloads.
	Platform model.Platform
	// Util is the taskset reference utilization (a moderate fixed load).
	Util float64
	// VMCounts are the VM counts to sweep; nil defaults to 1, 2, 4, 8.
	VMCounts []int
	// TasksetsPerPoint is the number of tasksets per VM count; zero
	// defaults to 20.
	TasksetsPerPoint int
	// Seed makes the study reproducible.
	Seed int64
	// Parallel runs up to this many tasksets concurrently per VM count
	// (0 or 1 = serial). Results are identical for every worker count:
	// all RNG streams are split off the root in order before the workers
	// start, and per-taskset outcomes are reduced in taskset order.
	Parallel int
}

// VMCountResult holds the per-VM-count schedulable fractions.
type VMCountResult struct {
	Config   VMCountConfig
	VMCounts []int
	// Fractions maps solution name to one fraction per VM count.
	Fractions map[string][]float64
	order     []string
}

// RunVMCount sweeps the VM count at a fixed utilization for the
// flattening, overhead-free and existing-CSA heuristics.
func RunVMCount(cfg VMCountConfig) (*VMCountResult, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Util <= 0 {
		return nil, fmt.Errorf("experiment: utilization %v, need > 0", cfg.Util)
	}
	counts := cfg.VMCounts
	if counts == nil {
		counts = []int{1, 2, 4, 8}
	}
	per := cfg.TasksetsPerPoint
	if per == 0 {
		per = 20
	}
	solutions := []alloc.Allocator{
		&alloc.Heuristic{Mode: alloc.Flattening},
		&alloc.Heuristic{Mode: alloc.OverheadFree},
		&alloc.Heuristic{Mode: alloc.ExistingCSA},
	}

	res := &VMCountResult{
		Config:    cfg,
		VMCounts:  counts,
		Fractions: make(map[string][]float64, len(solutions)),
	}
	for _, sol := range solutions {
		res.order = append(res.order, sol.Name())
		res.Fractions[sol.Name()] = make([]float64, len(counts))
	}

	root := rngutil.New(cfg.Seed)
	for ci, numVMs := range counts {
		// Split each taskset's streams in order before the workers start,
		// matching the serial consumption exactly.
		type job struct {
			gen   *rngutil.RNG
			seeds []int64
			oks   []bool
			err   error
		}
		jobs := make([]job, per)
		for ts := range jobs {
			genRNG := root.Split()
			allocRNG := root.Split()
			seeds := make([]int64, len(solutions))
			for si := range seeds {
				seeds[si] = allocRNG.Int63()
			}
			jobs[ts] = job{gen: genRNG, seeds: seeds}
		}
		runIndexed(per, cfg.Parallel, func(ts int) {
			j := &jobs[ts]
			sys, err := workload.Generate(workload.Config{
				Platform:      cfg.Platform,
				TargetRefUtil: cfg.Util,
				Dist:          workload.Uniform,
				NumVMs:        numVMs,
			}, j.gen)
			if err != nil {
				j.err = err
				return
			}
			j.oks = make([]bool, len(solutions))
			for si, sol := range solutions {
				_, err := sol.Allocate(sys, rngutil.New(j.seeds[si]))
				j.oks[si] = err == nil
			}
		})
		schedulable := make([]int, len(solutions))
		for ts := range jobs {
			if jobs[ts].err != nil {
				return nil, jobs[ts].err
			}
			for si := range solutions {
				if jobs[ts].oks[si] {
					schedulable[si]++
				}
			}
		}
		for si, sol := range solutions {
			res.Fractions[sol.Name()][ci] = float64(schedulable[si]) / float64(per)
		}
	}
	return res, nil
}

// Table renders the study: one row per solution, one column per VM count.
func (r *VMCountResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "abstraction overhead vs VM count (platform %s, utilization %.2f)\n",
		r.Config.Platform.Name, r.Config.Util)
	fmt.Fprintf(&b, "%-36s", "solution \\ VMs")
	for _, n := range r.VMCounts {
		fmt.Fprintf(&b, " %6d", n)
	}
	b.WriteByte('\n')
	for _, name := range r.order {
		fmt.Fprintf(&b, "%-36s", name)
		for _, f := range r.Fractions[name] {
			fmt.Fprintf(&b, " %6.2f", f)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
