package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vc2m/internal/metrics"
)

// WriteFractionsCSV writes the schedulable-fraction series as CSV: a
// header row of "util" plus one column per solution, then one row per
// utilization point — the machine-readable form of Figures 2 and 3 for
// external plotting tools.
func (r *SchedResult) WriteFractionsCSV(w io.Writer) error {
	return r.writeCSV(w, func(p SchedPoint) string {
		return strconv.FormatFloat(p.Fraction, 'f', 4, 64)
	})
}

// WriteRuntimesCSV writes the mean analysis-time series (seconds), the
// machine-readable form of Figure 4.
func (r *SchedResult) WriteRuntimesCSV(w io.Writer) error {
	return r.writeCSV(w, func(p SchedPoint) string {
		return strconv.FormatFloat(p.AvgSeconds, 'f', 6, 64)
	})
}

func (r *SchedResult) writeCSV(w io.Writer, cell func(SchedPoint) string) error {
	cw := csv.NewWriter(w)
	header := []string{"util"}
	for _, s := range r.Series {
		header = append(header, s.Solution)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < r.minPoints(); i++ {
		row := []string{strconv.FormatFloat(r.Series[0].Points[i].Util, 'f', 2, 64)}
		for _, s := range r.Series {
			row = append(row, cell(s.Points[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMetricsCSV writes every series' search-effort snapshot as CSV rows
// of (scope, kind, name, value, n, min_sec, mean_sec, max_sec), with the
// solution name as the scope. Series without metrics contribute no rows.
func (r *SchedResult) WriteMetricsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(metrics.CSVHeader()); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, row := range s.Metrics.CSVRows(s.Solution) {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the isolation study rows as CSV.
func (r *IsolationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "solo_ms", "shared_ms", "vc2m_ms",
		"shared_slowdown", "vc2m_slowdown"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Benchmark,
			fmt.Sprintf("%.3f", row.SoloMs),
			fmt.Sprintf("%.3f", row.SharedMs),
			fmt.Sprintf("%.3f", row.IsolatedMs),
			fmt.Sprintf("%.3f", row.SharedSlowdown()),
			fmt.Sprintf("%.3f", row.IsolatedSlowdown()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the overhead summaries as CSV rows of
// (handler, min, avg, max) in microseconds.
func (r *OverheadResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"handler", "min_us", "avg_us", "max_us"}); err != nil {
		return err
	}
	rows := []struct {
		name string
		s    interface {
			Min() float64
			Mean() float64
			Max() float64
		}
	}{
		{"throttle", &r.Throttle},
		{"bw_replenish", &r.BWReplenish},
		{"cpu_budget_replenish", &r.BudgetReplenish},
		{"scheduling", &r.Scheduling},
		{"context_switch", &r.ContextSwitch},
	}
	for _, row := range rows {
		if err := cw.Write([]string{
			row.name,
			fmt.Sprintf("%.4f", row.s.Min()),
			fmt.Sprintf("%.4f", row.s.Mean()),
			fmt.Sprintf("%.4f", row.s.Max()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
