package experiment

import (
	"strings"
	"testing"

	"vc2m/internal/model"
)

func TestRunOnline(t *testing.T) {
	res, err := RunOnline(OnlineConfig{
		Arrivals: 8,
		Trials:   4,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlineAdmitted <= 0 {
		t.Fatal("online controller admitted nothing")
	}
	// The online controller cannot beat the offline upper bound by more
	// than noise (the offline comparator is a prefix bound, so small
	// inversions are possible when the online controller skips a VM the
	// prefix rule must stop at; allow one VM of slack).
	if res.OnlineAdmitted > res.OfflineAdmitted+1.0 {
		t.Errorf("online %v far above offline bound %v", res.OnlineAdmitted, res.OfflineAdmitted)
	}
	// And it should achieve a reasonable share of it.
	if res.OnlineAdmitted < 0.5*res.OfflineAdmitted {
		t.Errorf("online admitted %v, below half the offline %v",
			res.OnlineAdmitted, res.OfflineAdmitted)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "online (Admit)") || !strings.Contains(tbl, "offline") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestRunOnlineDefaults(t *testing.T) {
	res, err := RunOnline(OnlineConfig{Trials: 1, Arrivals: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Platform.Name != model.PlatformA.Name {
		t.Errorf("default platform = %s, want A", res.Config.Platform.Name)
	}
	if res.Config.VMUtil != 0.35 {
		t.Errorf("default VM util = %v", res.Config.VMUtil)
	}
}
