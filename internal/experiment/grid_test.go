package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/workload"
)

// TestUtilGridExact checks the sweep grid is generated from min + i*step
// rather than accumulation: every point must be within one ulp-scale
// tolerance of the ideal value and the endpoint must be included.
func TestUtilGridExact(t *testing.T) {
	cases := []struct {
		min, max, step float64
		want           int
	}{
		{0.1, 2.0, 0.05, 39},
		{0.1, 2.0, 0.025, 77},
		{0, 1, 0.1, 11},
		{0.5, 0.5, 0.1, 1},
		{0.2, 2.0, 0.2, 10},
	}
	for _, c := range cases {
		got := utilGrid(c.min, c.max, c.step)
		if len(got) != c.want {
			t.Errorf("utilGrid(%v,%v,%v): %d points, want %d", c.min, c.max, c.step, len(got), c.want)
			continue
		}
		for i, u := range got {
			ideal := c.min + float64(i)*c.step
			if math.Abs(u-ideal) > 1e-12 {
				t.Errorf("utilGrid(%v,%v,%v)[%d] = %v, want %v", c.min, c.max, c.step, i, u, ideal)
			}
		}
		if last := got[len(got)-1]; math.Abs(last-c.max) > 1e-9 {
			t.Errorf("utilGrid(%v,%v,%v) ends at %v, want the endpoint", c.min, c.max, c.step, last)
		}
	}
}

// TestUtilGridNoDuplicates is the regression for the accumulated-and-
// rounded grid: with step 0.025, rounding to two decimals used to collapse
// neighbouring points into duplicates.
func TestUtilGridNoDuplicates(t *testing.T) {
	got := utilGrid(0.1, 2.0, 0.025)
	seen := map[float64]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatalf("duplicate grid point %v", u)
		}
		seen[u] = true
	}
}

// TestWithDefaultsUtilMinZero checks an explicit sweep starting at 0 is
// honoured: UtilMin defaults to 0.1 only when the whole range is unset.
func TestWithDefaultsUtilMinZero(t *testing.T) {
	c := SchedConfig{UtilMin: 0, UtilMax: 0.4, UtilStep: 0.2}.withDefaults()
	if c.UtilMin != 0 {
		t.Errorf("explicit UtilMin 0 rewritten to %v", c.UtilMin)
	}
	d := SchedConfig{}.withDefaults()
	if d.UtilMin != 0.1 || d.UtilMax != 2.0 || d.UtilStep != 0.05 {
		t.Errorf("zero config defaults = (%v, %v, %v), want (0.1, 2.0, 0.05)",
			d.UtilMin, d.UtilMax, d.UtilStep)
	}
}

// TestRunSchedulabilityRejectsBadRange checks the new validation errors.
func TestRunSchedulabilityRejectsBadRange(t *testing.T) {
	base := SchedConfig{Platform: model.PlatformA, TasksetsPerPoint: 1}
	bad := base
	bad.UtilMin, bad.UtilMax, bad.UtilStep = 1.0, 2.0, -0.1
	if _, err := RunSchedulability(bad); err == nil {
		t.Error("negative UtilStep accepted")
	}
	bad = base
	bad.UtilMin, bad.UtilMax, bad.UtilStep = 2.0, 1.0, 0.1
	if _, err := RunSchedulability(bad); err == nil {
		t.Error("UtilMax < UtilMin accepted")
	}
}

// raggedResult builds a hand-assembled result whose series have different
// lengths — the shape that used to panic table() and writeCSV().
func raggedResult() *SchedResult {
	return &SchedResult{
		Platform: model.PlatformA,
		Dist:     workload.Uniform,
		Series: []SchedSeries{
			{Solution: "long", Points: []SchedPoint{{Util: 0.2, Fraction: 1}, {Util: 0.4, Fraction: 0.5}}},
			{Solution: "short", Points: []SchedPoint{{Util: 0.2, Fraction: 1}}},
		},
	}
}

// TestTableRagged checks ragged series render the common prefix instead of
// panicking.
func TestTableRagged(t *testing.T) {
	r := raggedResult()
	got := r.FractionTable()
	if !strings.Contains(got, "0.20") {
		t.Errorf("common row missing:\n%s", got)
	}
	if strings.Contains(got, "0.40") {
		t.Errorf("row beyond the shortest series rendered:\n%s", got)
	}
}

// TestWriteCSVRagged checks the CSV writer on the same ragged result.
func TestWriteCSVRagged(t *testing.T) {
	r := raggedResult()
	var buf bytes.Buffer
	if err := r.WriteFractionsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 { // header + one common row
		t.Errorf("got %d CSV lines, want 2:\n%s", len(lines), buf.String())
	}
}

// TestCollectMetricsParallel runs a metered sweep with parallel workers
// twice and requires bit-identical counters: int64 counter sums commute,
// so worker interleaving must not show up in the snapshot.
func TestCollectMetricsParallel(t *testing.T) {
	runOnce := func() *SchedResult {
		t.Helper()
		res, err := RunSchedulability(SchedConfig{
			Platform:         model.PlatformA,
			Dist:             workload.Uniform,
			UtilMin:          0.4,
			UtilMax:          0.8,
			UtilStep:         0.4,
			TasksetsPerPoint: 4,
			Seed:             1,
			Parallel:         4,
			CollectMetrics:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	for si := range a.Series {
		if a.Series[si].Metrics.Empty() {
			t.Fatalf("series %s collected no metrics", a.Series[si].Solution)
		}
		ca, cb := a.Series[si].Metrics.Counters, b.Series[si].Metrics.Counters
		if len(ca) != len(cb) {
			t.Fatalf("series %s: counter sets differ", a.Series[si].Solution)
		}
		for name, v := range ca {
			if cb[name] != v {
				t.Errorf("series %s: %s = %d vs %d across runs",
					a.Series[si].Solution, name, v, cb[name])
			}
		}
		if ca[MetricPoints] != 2 || ca[MetricTasksets] != 8 {
			t.Errorf("series %s: points/tasksets = %d/%d, want 2/8",
				a.Series[si].Solution, ca[MetricPoints], ca[MetricTasksets])
		}
	}
	if !strings.Contains(a.MetricsTable(), "## ") {
		t.Errorf("MetricsTable missing solution headers:\n%s", a.MetricsTable())
	}
	var buf bytes.Buffer
	if err := a.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got < 6 {
		t.Errorf("metrics CSV has %d lines, want rows for every solution:\n%s", got, buf.String())
	}
}
