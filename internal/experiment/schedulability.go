// Package experiment contains the harnesses that regenerate the paper's
// evaluation artifacts: the schedulability curves of Figures 2 and 3, the
// running-time curves of Figure 4, the overhead measurements of Tables 1
// and 2, and the Section 3.3 WCET-isolation study. Each harness prints the
// same rows/series the paper reports; EXPERIMENTS.md records paper-versus-
// measured values.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"vc2m/internal/alloc"
	"vc2m/internal/metrics"
	"vc2m/internal/model"
	"vc2m/internal/obs"
	"vc2m/internal/provenance"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// Counter and timer names recorded per solution when
// SchedConfig.CollectMetrics is set.
const (
	// MetricPoints counts utilization points completed; MetricTasksets
	// counts tasksets analyzed.
	MetricPoints   = "experiment.points"
	MetricTasksets = "experiment.tasksets"
	// MetricPointSeconds observes, per utilization point, the solution's
	// total allocation time across the point's tasksets.
	MetricPointSeconds = "experiment.point.seconds"
)

// SchedConfig parameterizes a schedulability experiment (Sections 5.2-5.3).
type SchedConfig struct {
	// Platform is the hardware configuration (A, B or C).
	Platform model.Platform
	// Dist is the task-utilization distribution.
	Dist workload.Distribution
	// UtilMin, UtilMax and UtilStep define the x-axis sweep; zero values
	// default to the paper's 0.1..2.0 step 0.05.
	UtilMin, UtilMax, UtilStep float64
	// TasksetsPerPoint is the number of independent tasksets per
	// utilization (50 in the paper); zero defaults to 50.
	TasksetsPerPoint int
	// Seed makes the experiment reproducible.
	Seed int64
	// Solutions are the allocators to compare; nil defaults to the five
	// solutions of the paper's evaluation.
	Solutions []alloc.Allocator
	// Progress, if non-nil, is called after each utilization point.
	Progress func(done, total int)
	// Parallel runs up to this many tasksets concurrently per utilization
	// point (0 or 1 = serial). Results are bit-identical to the serial
	// run — every taskset's RNG streams are split off sequentially before
	// the workers start — but the per-taskset running times (Figure 4's
	// data) include scheduler contention, so keep Parallel at 1 when
	// measuring running time.
	Parallel int
	// CollectMetrics attaches a search-effort recorder to every solution
	// that supports one (alloc.MetricsSetter); each series then carries a
	// metrics snapshot in SchedSeries.Metrics. Counters are deterministic
	// across runs regardless of Parallel; timer values are wall-clock and
	// are not.
	CollectMetrics bool
	// Provenance, when non-nil, records one decision per (taskset,
	// solution) case — accepted or rejected, with the rejection's binding
	// resources taken from the allocator's diagnosis. Decisions are
	// recorded in the serial reduction loop, so the stream is
	// deterministic at any Parallel. Nil disables recording.
	Provenance *provenance.Recorder
	// ProvenanceLabel prefixes every recorded subject (e.g. a figure
	// name) so multiple sweeps can share one recorder.
	ProvenanceLabel string
	// Context, when non-nil, makes the sweep interruptible: it is polled
	// before each utilization point, and once canceled the sweep stops and
	// RunSchedulability returns the points completed so far TOGETHER WITH
	// the context's error — callers flush the partial curves instead of
	// discarding completed work. It is also threaded into every
	// context-aware solution, so the in-flight point aborts promptly.
	//vc2m:ctxfield optional cancellation hook on a config struct; nil runs to completion
	Context context.Context
	// Span, when non-nil, is the parent under which one experiment.point
	// wall-clock span is opened per utilization point (annotated with the
	// utilization and taskset count). Spans stay at point granularity —
	// per-taskset spans would swamp the trace — and never influence the
	// sweep's results. Nil disables at no cost.
	Span *obs.Span
}

// withDefaults fills the paper's defaults. The utilization range defaults
// as a unit — UtilMin defaults to 0.1 only when UtilMax is also unset — so
// that an explicit sweep starting at 0 (UtilMin: 0, UtilMax: x) is
// representable and not silently rewritten.
func (c SchedConfig) withDefaults() SchedConfig {
	if c.UtilMin == 0 && c.UtilMax == 0 { //vc2m:floateq unset-config sentinel
		c.UtilMin = 0.1
	}
	if c.UtilMax == 0 { //vc2m:floateq unset-config sentinel
		c.UtilMax = 2.0
	}
	if c.UtilStep == 0 { //vc2m:floateq unset-config sentinel
		c.UtilStep = 0.05
	}
	if c.TasksetsPerPoint == 0 {
		c.TasksetsPerPoint = 50
	}
	if c.Solutions == nil {
		c.Solutions = alloc.PaperSolutions()
	}
	return c
}

// utilGrid returns the utilization sweep min, min+step, ..., up to and
// including max (within a relative tolerance for the endpoint). Each point
// is generated as min + i*step rather than by repeated addition, so the
// grid carries one rounding error per point instead of an accumulated one
// — with step 0.025, accumulation followed by rounding to two decimals
// used to collapse neighbouring points.
func utilGrid(min, max, step float64) []float64 {
	n := int(math.Floor((max-min)/step + 1e-9))
	if n < 0 {
		return nil
	}
	out := make([]float64, n+1)
	for i := range out {
		out[i] = min + float64(i)*step
	}
	return out
}

// SchedPoint is one (utilization, solution) measurement.
type SchedPoint struct {
	// Util is the taskset reference utilization (x-axis).
	Util float64
	// Fraction is the fraction of schedulable tasksets (Figures 2-3).
	Fraction float64
	// AvgSeconds is the mean allocator running time (Figure 4).
	AvgSeconds float64
}

// SchedSeries is one solution's curve.
type SchedSeries struct {
	Solution string
	Points   []SchedPoint
	// Metrics is the solution's search-effort snapshot; populated only
	// when SchedConfig.CollectMetrics is set and the solution supports
	// recording.
	Metrics metrics.Snapshot
}

// SchedResult holds a full schedulability experiment.
type SchedResult struct {
	Platform model.Platform
	Dist     workload.Distribution
	Series   []SchedSeries
	// Tasksets is the total number of tasksets analyzed.
	Tasksets int
}

// RunSchedulability executes the experiment: for each utilization point it
// generates TasksetsPerPoint tasksets and analyzes each with every
// solution, recording the schedulable fraction and the mean analysis time.
// Workload generation draws from a dedicated RNG stream per taskset, so
// every solution sees identical tasksets.
func RunSchedulability(cfg SchedConfig) (*SchedResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.UtilStep < 0 {
		return nil, fmt.Errorf("experiment: negative UtilStep %v", cfg.UtilStep)
	}
	if cfg.UtilMax < cfg.UtilMin {
		return nil, fmt.Errorf("experiment: UtilMax %v below UtilMin %v", cfg.UtilMax, cfg.UtilMin)
	}

	utils := utilGrid(cfg.UtilMin, cfg.UtilMax, cfg.UtilStep)

	res := &SchedResult{Platform: cfg.Platform, Dist: cfg.Dist}
	recorders := make([]*metrics.Recorder, len(cfg.Solutions))
	for si, sol := range cfg.Solutions {
		res.Series = append(res.Series, SchedSeries{Solution: sol.Name()})
		if cfg.CollectMetrics {
			if ms, ok := sol.(alloc.MetricsSetter); ok {
				recorders[si] = metrics.New()
				ms.SetMetrics(recorders[si])
			}
		}
		if cfg.Context != nil {
			if cs, ok := sol.(alloc.ContextSetter); ok {
				cs.SetContext(cfg.Context)
			}
		}
	}

	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}

	root := rngutil.New(cfg.Seed)

	// partial snapshots whatever metrics exist and returns the completed
	// points together with the interruption error, so callers can flush
	// finished work (an interrupted 40-point sweep still yields its
	// completed curves) instead of discarding it.
	partial := func(cause error) (*SchedResult, error) {
		for si, rec := range recorders {
			if rec != nil {
				res.Series[si].Metrics = rec.Snapshot()
			}
		}
		return res, fmt.Errorf("experiment: sweep interrupted after %d of %d utilization points: %w",
			res.minPoints(), len(utils), cause)
	}

	for ui, u := range utils {
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				return partial(err)
			}
		}
		// Split every taskset's RNG streams up front, in order, so the
		// generated workloads are independent of the worker count.
		type job struct {
			gen   *rngutil.RNG
			seeds []int64
			oks   []bool
			secs  []float64
			errs  []error
			err   error
		}
		psp := cfg.Span.Child(obs.StageSweepPoint)
		psp.SetFloat("util", u)
		psp.SetInt("tasksets", int64(cfg.TasksetsPerPoint))
		jobs := make([]job, cfg.TasksetsPerPoint)
		for ts := range jobs {
			genRNG := root.Split()
			allocRNG := root.Split()
			seeds := make([]int64, len(cfg.Solutions))
			for si := range seeds {
				seeds[si] = allocRNG.Int63()
			}
			jobs[ts] = job{gen: genRNG, seeds: seeds}
		}

		// Each worker writes only its own job's slots; the reduction below
		// runs serially in taskset order, so counts and float sums are
		// identical for every worker count.
		runIndexed(len(jobs), workers, func(ts int) {
			j := &jobs[ts]
			sys, err := workload.Generate(workload.Config{
				Platform:      cfg.Platform,
				TargetRefUtil: u,
				Dist:          cfg.Dist,
			}, j.gen)
			if err != nil {
				j.err = err
				return
			}
			j.oks = make([]bool, len(cfg.Solutions))
			j.secs = make([]float64, len(cfg.Solutions))
			j.errs = make([]error, len(cfg.Solutions))
			for si, sol := range cfg.Solutions {
				start := time.Now() //vc2m:wallclock Figure 4 measures solution wall time
				_, err := sol.Allocate(sys, rngutil.New(j.seeds[si]))
				j.secs[si] = time.Since(start).Seconds() //vc2m:wallclock
				j.oks[si] = err == nil
				j.errs[si] = err
			}
		})
		// A cancellation mid-point leaves some allocations aborted with the
		// context's error; discard the incomplete point rather than reduce
		// corrupted fractions into the curves.
		if cfg.Context != nil {
			if err := cfg.Context.Err(); err != nil {
				psp.End()
				return partial(err)
			}
		}
		schedulable := make([]int, len(cfg.Solutions))
		elapsed := make([]float64, len(cfg.Solutions))
		for ts := range jobs {
			if jobs[ts].err != nil {
				psp.End()
				return nil, jobs[ts].err
			}
			for si := range cfg.Solutions {
				if jobs[ts].oks[si] {
					schedulable[si]++
				}
				elapsed[si] += jobs[ts].secs[si]
				recordSweepCase(cfg, u, ts, cfg.Solutions[si].Name(), jobs[ts].errs[si])
			}
		}
		res.Tasksets += cfg.TasksetsPerPoint

		for si := range cfg.Solutions {
			res.Series[si].Points = append(res.Series[si].Points, SchedPoint{
				Util:       u,
				Fraction:   float64(schedulable[si]) / float64(cfg.TasksetsPerPoint),
				AvgSeconds: elapsed[si] / float64(cfg.TasksetsPerPoint),
			})
			if rec := recorders[si]; rec != nil {
				rec.Inc(MetricPoints)
				rec.Add(MetricTasksets, int64(cfg.TasksetsPerPoint))
				rec.Observe(MetricPointSeconds, elapsed[si])
			}
		}
		psp.End()
		if cfg.Progress != nil {
			cfg.Progress(ui+1, len(utils))
		}
	}
	for si, rec := range recorders {
		if rec != nil {
			res.Series[si].Metrics = rec.Snapshot()
		}
	}
	return res, nil
}

// recordSweepCase records one (taskset, solution) verdict on the sweep's
// provenance recorder (no-op when none is configured). A rejection carries
// the allocator's binding-resource diagnosis; an undiagnosed
// not-schedulable error falls back to CPU, the resource every infeasible
// packing is short of.
func recordSweepCase(cfg SchedConfig, util float64, ts int, solution string, err error) {
	if cfg.Provenance == nil {
		return
	}
	label := cfg.ProvenanceLabel
	if label != "" && !strings.HasSuffix(label, "/") {
		label += "/"
	}
	d := provenance.Decision{
		Stage: provenance.StageSweep, Kind: provenance.KindTaskset,
		Subject:  fmt.Sprintf("%su=%.2f/ts=%d", label, util, ts),
		Target:   solution,
		Value:    util,
		Accepted: err == nil,
	}
	if err != nil {
		d.Reason = err.Error()
		if re, ok := alloc.AsRejection(err); ok {
			d.Violated = re.Violated
		} else if errors.Is(err, model.ErrNotSchedulable) {
			d.Violated = []provenance.Resource{provenance.CPU}
		}
	}
	cfg.Provenance.Record(d)
}

// MetricsTable renders every series' search-effort snapshot as aligned
// text, one block per solution; empty when no metrics were collected.
func (r *SchedResult) MetricsTable() string {
	var b strings.Builder
	for _, s := range r.Series {
		if s.Metrics.Empty() {
			continue
		}
		fmt.Fprintf(&b, "## %s\n%s", s.Solution, s.Metrics.Table())
	}
	return b.String()
}

// Knee returns the largest utilization at which the solution still
// schedules every taskset (the point "after which tasksets start to become
// unschedulable" in Section 5.2), or 0 if it never schedules everything.
func (r *SchedResult) Knee(solution string) float64 {
	for _, s := range r.Series {
		if s.Solution != solution {
			continue
		}
		knee := 0.0
		for _, p := range s.Points {
			if p.Fraction >= 1-1e-9 {
				knee = p.Util
			} else {
				break
			}
		}
		return knee
	}
	return 0
}

// FractionTable renders the schedulable-fraction series as an aligned text
// table, one row per utilization — the data behind Figures 2 and 3.
func (r *SchedResult) FractionTable() string {
	return r.table(func(p SchedPoint) string { return fmt.Sprintf("%.2f", p.Fraction) })
}

// RuntimeTable renders the mean running-time series (seconds), the data
// behind Figure 4.
func (r *SchedResult) RuntimeTable() string {
	return r.table(func(p SchedPoint) string { return fmt.Sprintf("%.4f", p.AvgSeconds) })
}

func (r *SchedResult) table(cell func(SchedPoint) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# platform %s, %s distribution\n", r.Platform.Name, r.Dist)
	fmt.Fprintf(&b, "%-6s", "util")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " | %-38s", s.Solution)
	}
	b.WriteByte('\n')
	for i := 0; i < r.minPoints(); i++ {
		fmt.Fprintf(&b, "%-6.2f", r.Series[0].Points[i].Util)
		for _, s := range r.Series {
			fmt.Fprintf(&b, " | %-38s", cell(s.Points[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// minPoints returns the shortest series length — the number of rows every
// series can contribute to. Hand-assembled results may be ragged; indexing
// all series by the first one's length used to panic on them.
func (r *SchedResult) minPoints() int {
	if len(r.Series) == 0 {
		return 0
	}
	min := len(r.Series[0].Points)
	for _, s := range r.Series[1:] {
		if len(s.Points) < min {
			min = len(s.Points)
		}
	}
	return min
}

// FractionSeries converts the result into plottable (x, y) series of
// schedulable fractions, one per solution — Figures 2 and 3's curves.
func (r *SchedResult) FractionSeries() []struct {
	Name string
	X, Y []float64
} {
	out := make([]struct {
		Name string
		X, Y []float64
	}, len(r.Series))
	for i, s := range r.Series {
		out[i].Name = s.Solution
		for _, p := range s.Points {
			out[i].X = append(out[i].X, p.Util)
			out[i].Y = append(out[i].Y, p.Fraction)
		}
	}
	return out
}

// SolutionNames returns the series names in order.
func (r *SchedResult) SolutionNames() []string {
	out := make([]string, len(r.Series))
	for i, s := range r.Series {
		out[i] = s.Solution
	}
	return out
}

// Summary reports, for each solution, the knee and the weighted
// schedulability area (the fraction of all analyzed tasksets that were
// schedulable), sorted by area descending — a compact comparison used by
// the commands.
func (r *SchedResult) Summary() string {
	type row struct {
		name string
		knee float64
		area float64
	}
	var rows []row
	for _, s := range r.Series {
		var area float64
		for _, p := range s.Points {
			area += p.Fraction
		}
		if len(s.Points) > 0 {
			area /= float64(len(s.Points))
		}
		rows = append(rows, row{s.Solution, r.Knee(s.Solution), area})
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].area > rows[b].area })
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %-8s %s\n", "solution", "knee", "mean fraction")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-40s %-8.2f %.3f\n", row.name, row.knee, row.area)
	}
	return b.String()
}
