package experiment

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"vc2m/internal/model"
	"vc2m/internal/workload"
)

func TestWriteFractionsCSV(t *testing.T) {
	res := smallSched(t, model.PlatformA, workload.Uniform)
	var buf bytes.Buffer
	if err := res.WriteFractionsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 4 utilization rows.
	if len(records) != 5 {
		t.Fatalf("got %d CSV rows, want 5", len(records))
	}
	if records[0][0] != "util" || len(records[0]) != 6 {
		t.Errorf("header = %v", records[0])
	}
	for _, row := range records[1:] {
		for _, cell := range row {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Errorf("non-numeric cell %q", cell)
			}
		}
	}
}

func TestWriteRuntimesCSV(t *testing.T) {
	res := smallSched(t, model.PlatformA, workload.Uniform)
	var buf bytes.Buffer
	if err := res.WriteRuntimesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("got %d rows, want 5", len(records))
	}
}

func TestIsolationWriteCSV(t *testing.T) {
	res, err := RunIsolation(IsolationConfig{
		Benchmarks: []string{"swaptions"},
		Ops:        10000,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[1][0] != "swaptions" {
		t.Errorf("records = %v", records)
	}
}

func TestOverheadWriteCSV(t *testing.T) {
	res, err := RunOverhead(OverheadConfig{VCPUs: 8, HorizonMs: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("got %d rows, want 6 (header + 5 handlers)", len(records))
	}
	if records[1][0] != "throttle" {
		t.Errorf("first handler = %q", records[1][0])
	}
}
