package experiment

import "vc2m/internal/report"

// ReportSweep flattens the schedulability result into the unified report's
// sweep section: one (utilization, fraction) series per solution. Running
// times are deliberately excluded — report documents carry only
// deterministic data.
func (r *SchedResult) ReportSweep() *report.SweepSummary {
	s := &report.SweepSummary{Tasksets: r.Tasksets}
	for _, series := range r.Series {
		rs := report.SweepSeries{Solution: series.Solution}
		for _, p := range series.Points {
			rs.Points = append(rs.Points, report.SweepPoint{Util: p.Util, Fraction: p.Fraction})
		}
		s.Series = append(s.Series, rs)
	}
	return s
}
