package experiment

import (
	"reflect"
	"testing"

	"vc2m/internal/model"
)

// The harnesses promise worker-count-independent results: every RNG stream
// is split off the root before the workers start and reductions run in
// index order. These tests pin that promise by diffing serial against
// 4-way-parallel runs. Run them under -race to also certify the workers
// share no mutable state.

func TestRunVMCountParallelMatchesSerial(t *testing.T) {
	base := VMCountConfig{
		Platform:         model.PlatformA,
		Util:             1.0,
		VMCounts:         []int{1, 2},
		TasksetsPerPoint: 6,
		Seed:             7,
	}
	serial, err := RunVMCount(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	parallel, err := RunVMCount(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Fractions, parallel.Fractions) {
		t.Errorf("fractions differ:\nserial   %v\nparallel %v",
			serial.Fractions, parallel.Fractions)
	}
	if serial.Table() != parallel.Table() {
		t.Error("rendered tables differ between serial and parallel runs")
	}
}

func TestRunPartitionSweepParallelMatchesSerial(t *testing.T) {
	base := PartitionSweepConfig{
		Cores:            2,
		Partitions:       []int{8, 12},
		Util:             1.2,
		TasksetsPerPoint: 6,
		Seed:             3,
	}
	serial, err := RunPartitionSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	parallel, err := RunPartitionSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Heuristic, parallel.Heuristic) ||
		!reflect.DeepEqual(serial.Evenly, parallel.Evenly) {
		t.Errorf("fractions differ:\nserial   %v / %v\nparallel %v / %v",
			serial.Heuristic, serial.Evenly, parallel.Heuristic, parallel.Evenly)
	}
}

func TestRunOnlineParallelMatchesSerial(t *testing.T) {
	base := OnlineConfig{Arrivals: 5, Trials: 4, Seed: 11}
	serial, err := RunOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	parallel, err := RunOnline(par)
	if err != nil {
		t.Fatal(err)
	}
	if serial.OnlineAdmitted != parallel.OnlineAdmitted || //vc2m:floateq identical runs must agree exactly
		serial.OfflineAdmitted != parallel.OfflineAdmitted { //vc2m:floateq identical runs must agree exactly
		t.Errorf("admission counts differ: serial %v/%v, parallel %v/%v",
			serial.OnlineAdmitted, serial.OfflineAdmitted,
			parallel.OnlineAdmitted, parallel.OfflineAdmitted)
	}
}

func TestRunSchedulabilityParallelMatchesSerial(t *testing.T) {
	base := SchedConfig{
		Platform:         model.PlatformA,
		UtilMin:          0.4,
		UtilMax:          0.8,
		UtilStep:         0.2,
		TasksetsPerPoint: 4,
		Seed:             5,
	}
	serial, err := RunSchedulability(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	parallel, err := RunSchedulability(par)
	if err != nil {
		t.Fatal(err)
	}
	// Fractions are deterministic; AvgSeconds is wall-clock and is not.
	if serial.FractionTable() != parallel.FractionTable() {
		t.Errorf("fraction tables differ:\nserial:\n%s\nparallel:\n%s",
			serial.FractionTable(), parallel.FractionTable())
	}
}
