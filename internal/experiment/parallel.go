package experiment

import "sync"

// runIndexed runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 1 runs inline). Determinism contract: fn must write only to
// index-i slots of pre-sized result slices — never to shared accumulators —
// and the caller reduces those slots in index order afterwards. Combined
// with splitting all RNG streams off the root before the workers start,
// this makes every harness's output independent of the worker count and of
// goroutine scheduling.
func runIndexed(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx { //vc2m:ctxfree the feeder closes idx after the last index; cancellation is the caller's job between points
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
