package experiment

import (
	"fmt"
	"strings"

	"vc2m/internal/interference"
	"vc2m/internal/parsec"
)

// IsolationConfig parameterizes the Section 3.3 WCET-isolation study.
type IsolationConfig struct {
	// Cores is the number of co-running cores; zero defaults to 4.
	Cores int
	// Benchmarks to measure; nil defaults to the full suite.
	Benchmarks []string
	// Ops is the per-task operation count; zero uses the workbench
	// default.
	Ops int
	// Seed makes the runs reproducible.
	Seed int64
}

// IsolationResult holds one study row per benchmark.
type IsolationResult struct {
	Rows []interference.StudyRow
}

// RunIsolation measures every benchmark's execution time alone, co-running
// without isolation, and co-running under vC2M isolation.
func RunIsolation(cfg IsolationConfig) (*IsolationResult, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	names := cfg.Benchmarks
	if names == nil {
		names = parsec.Names()
	}
	wcfg := interference.DefaultConfig()
	if cfg.Ops > 0 {
		wcfg.OpsPerTask = cfg.Ops
	}
	res := &IsolationResult{}
	for _, name := range names {
		row, err := interference.Study(wcfg, name, cfg.Cores, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the study in the form the paper discusses: per-benchmark
// execution time alone, under unregulated co-running, and under vC2M
// isolation, with the resulting slowdown factors.
func (r *IsolationResult) Table() string {
	var b strings.Builder
	b.WriteString("Section 3.3: impact of cache+BW isolation on WCET\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %9s %9s\n",
		"benchmark", "solo(ms)", "shared(ms)", "vc2m(ms)", "shared-x", "vc2m-x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f %9.2f %9.2f\n",
			row.Benchmark, row.SoloMs, row.SharedMs, row.IsolatedMs,
			row.SharedSlowdown(), row.IsolatedSlowdown())
	}
	return b.String()
}
