package experiment

import (
	"fmt"
	"strings"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// PartitionSweepConfig parameterizes the partition-count sensitivity
// study: how does schedulability change as the platform's cache/BW
// partition count grows? The paper compares three fixed platforms
// (Figures 2a-c); this sweep fills in the curve between them and shows
// the diminishing returns of additional partitions.
type PartitionSweepConfig struct {
	// Cores is the core count (partitions sweep around it); zero
	// defaults to 4.
	Cores int
	// Partitions are the C = B values to sweep; nil defaults to
	// 8, 12, 16, 20, 28, 40.
	Partitions []int
	// Util is the fixed taskset reference utilization; zero defaults
	// to 1.8 (near the vC2M knee, where partition count matters most).
	Util float64
	// TasksetsPerPoint defaults to 20.
	TasksetsPerPoint int
	// Seed makes the sweep reproducible.
	Seed int64
	// Parallel runs up to this many tasksets concurrently per partition
	// count (0 or 1 = serial). Results are identical for every worker
	// count: all RNG streams are split off the root in order before the
	// workers start, and outcomes are reduced in taskset order.
	Parallel int
}

// PartitionSweepResult holds per-partition-count schedulable fractions
// for the vC2M heuristic and the evenly-partition baseline.
type PartitionSweepResult struct {
	Config     PartitionSweepConfig
	Partitions []int
	Heuristic  []float64
	Evenly     []float64
}

// RunPartitionSweep executes the study. Workloads are regenerated per
// platform size (WCET tables depend on the partition range), with the
// same seeds, so the task population is comparable across points.
func RunPartitionSweep(cfg PartitionSweepConfig) (*PartitionSweepResult, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.Partitions == nil {
		cfg.Partitions = []int{8, 12, 16, 20, 28, 40}
	}
	if cfg.Util == 0 { //vc2m:floateq unset-config sentinel
		cfg.Util = 1.8
	}
	if cfg.TasksetsPerPoint == 0 {
		cfg.TasksetsPerPoint = 20
	}

	res := &PartitionSweepResult{
		Config:     cfg,
		Partitions: cfg.Partitions,
		Heuristic:  make([]float64, len(cfg.Partitions)),
		Evenly:     make([]float64, len(cfg.Partitions)),
	}
	heur := &alloc.Heuristic{Mode: alloc.OverheadFree}
	even := alloc.EvenlyPartition{}

	for pi, parts := range cfg.Partitions {
		plat := model.Platform{
			Name: fmt.Sprintf("%dp", parts),
			M:    cfg.Cores, C: parts, B: parts, Cmin: 2, Bmin: 1,
		}
		if err := plat.Validate(); err != nil {
			return nil, err
		}
		root := rngutil.New(cfg.Seed)
		type job struct {
			gen      *rngutil.RNG
			seed     int64
			okH, okE bool
			err      error
		}
		jobs := make([]job, cfg.TasksetsPerPoint)
		for ts := range jobs {
			genRNG := root.Split()
			allocRNG := root.Split()
			jobs[ts] = job{gen: genRNG, seed: allocRNG.Int63()}
		}
		runIndexed(len(jobs), cfg.Parallel, func(ts int) {
			j := &jobs[ts]
			sys, err := workload.Generate(workload.Config{
				Platform:      plat,
				TargetRefUtil: cfg.Util,
				Dist:          workload.Uniform,
			}, j.gen)
			if err != nil {
				j.err = err
				return
			}
			_, errH := heur.Allocate(sys, rngutil.New(j.seed))
			j.okH = errH == nil
			_, errE := even.Allocate(sys, nil)
			j.okE = errE == nil
		})
		okH, okE := 0, 0
		for ts := range jobs {
			if jobs[ts].err != nil {
				return nil, jobs[ts].err
			}
			if jobs[ts].okH {
				okH++
			}
			if jobs[ts].okE {
				okE++
			}
		}
		res.Heuristic[pi] = float64(okH) / float64(cfg.TasksetsPerPoint)
		res.Evenly[pi] = float64(okE) / float64(cfg.TasksetsPerPoint)
	}
	return res, nil
}

// Table renders the sweep.
func (r *PartitionSweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedulable fraction vs partition count (%d cores, utilization %.2f)\n",
		r.Config.Cores, r.Config.Util)
	fmt.Fprintf(&b, "%-12s", "partitions")
	for _, p := range r.Partitions {
		fmt.Fprintf(&b, " %6d", p)
	}
	fmt.Fprintf(&b, "\n%-12s", "heuristic")
	for _, f := range r.Heuristic {
		fmt.Fprintf(&b, " %6.2f", f)
	}
	fmt.Fprintf(&b, "\n%-12s", "even-split")
	for _, f := range r.Evenly {
		fmt.Fprintf(&b, " %6.2f", f)
	}
	b.WriteByte('\n')
	return b.String()
}

// RegPeriodSweepConfig parameterizes the regulation-period trade-off
// study: a shorter regulation period bounds bandwidth interference at a
// finer granularity but pays the BW-refiller overhead more often (the
// paper fixes 1 ms; Table 1 quantifies the refill cost).
type RegPeriodSweepConfig struct {
	// PeriodsMs are the regulation periods to sweep; nil defaults to
	// 0.25, 0.5, 1, 2, 5.
	PeriodsMs []float64
	// VCPUs sized as in the overhead experiment; zero defaults to 24.
	VCPUs int
	// HorizonMs defaults to 1000.
	HorizonMs float64
	// Seed makes the sweep reproducible.
	Seed int64
}

// RegPeriodPoint is one period's measurement.
type RegPeriodPoint struct {
	PeriodMs float64
	// Replenishments is the number of BW refills over the horizon.
	Replenishments uint64
	// ThrottleEvents counts throttles over the horizon.
	ThrottleEvents uint64
	// AvgReplenishUs is the mean refill handler cost.
	AvgReplenishUs float64
	// OverheadShare approximates the fraction of one core's time spent in
	// the refiller: replenishments * avg cost / horizon.
	OverheadShare float64
}

// RunRegPeriodSweep executes the study.
func RunRegPeriodSweep(cfg RegPeriodSweepConfig) ([]RegPeriodPoint, error) {
	if cfg.PeriodsMs == nil {
		cfg.PeriodsMs = []float64{0.25, 0.5, 1, 2, 5}
	}
	if cfg.VCPUs == 0 {
		cfg.VCPUs = 24
	}
	if cfg.HorizonMs == 0 { //vc2m:floateq unset-config sentinel
		cfg.HorizonMs = 1000
	}
	var out []RegPeriodPoint
	for _, period := range cfg.PeriodsMs {
		res, err := RunOverhead(OverheadConfig{
			VCPUs:              cfg.VCPUs,
			HorizonMs:          cfg.HorizonMs,
			RegulationPeriodMs: period,
			// Budget scales with the period so the bandwidth *rate* is
			// constant across the sweep.
			BWBudget: int64(400 * period),
			Seed:     cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		avgUs := res.BWReplenish.Mean()
		out = append(out, RegPeriodPoint{
			PeriodMs:       period,
			Replenishments: res.BWReplenishments,
			ThrottleEvents: res.ThrottleEvents,
			AvgReplenishUs: avgUs,
			OverheadShare:  float64(res.BWReplenishments) * avgUs / (cfg.HorizonMs * 1000),
		})
	}
	return out, nil
}

// RegPeriodTable renders the sweep.
func RegPeriodTable(points []RegPeriodPoint) string {
	var b strings.Builder
	b.WriteString("regulation-period trade-off (constant bandwidth rate)\n")
	fmt.Fprintf(&b, "%10s %12s %10s %14s %14s\n",
		"period(ms)", "refills", "throttles", "avg-refill(us)", "ovh-share")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f %12d %10d %14.3f %14.6f\n",
			p.PeriodMs, p.Replenishments, p.ThrottleEvents, p.AvgReplenishUs, p.OverheadShare)
	}
	return b.String()
}
