package experiment

import (
	"strings"
	"testing"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/workload"
)

// smallSched runs a reduced sweep that still exercises the full pipeline.
func smallSched(t *testing.T, plat model.Platform, dist workload.Distribution) *SchedResult {
	t.Helper()
	res, err := RunSchedulability(SchedConfig{
		Platform:         plat,
		Dist:             dist,
		UtilMin:          0.4,
		UtilMax:          1.6,
		UtilStep:         0.4,
		TasksetsPerPoint: 6,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSchedulabilityShape(t *testing.T) {
	res := smallSched(t, model.PlatformA, workload.Uniform)
	if len(res.Series) != 5 {
		t.Fatalf("got %d series, want 5 solutions", len(res.Series))
	}
	// 0.4, 0.8, 1.2, 1.6 = 4 points.
	for _, s := range res.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %s has %d points, want 4", s.Solution, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Fraction < 0 || p.Fraction > 1 {
				t.Errorf("%s fraction %v out of [0,1]", s.Solution, p.Fraction)
			}
			if p.AvgSeconds < 0 {
				t.Errorf("%s negative runtime", s.Solution)
			}
		}
	}
	if res.Tasksets != 24 {
		t.Errorf("analyzed %d tasksets, want 24", res.Tasksets)
	}
}

func TestSchedulabilityOrdering(t *testing.T) {
	// The paper's headline ordering must hold: vC2M (flattening) beats
	// the baseline in schedulable-area, and at low utilization everyone
	// schedules everything.
	res := smallSched(t, model.PlatformA, workload.Uniform)
	area := map[string]float64{}
	for _, s := range res.Series {
		var a float64
		for _, p := range s.Points {
			a += p.Fraction
		}
		area[s.Solution] = a
		if s.Points[0].Fraction < 1 {
			t.Errorf("%s does not schedule everything at utilization 0.4", s.Solution)
		}
	}
	flat := area["Heuristic (flattening)"]
	base := area["Baseline (existing CSA)"]
	if flat <= base {
		t.Errorf("flattening area %v not above baseline %v", flat, base)
	}
}

func TestSchedulabilityMonotoneFractions(t *testing.T) {
	// Fractions must not increase with utilization (statistically; with
	// common random numbers per point this holds for the step sizes
	// used here).
	res := smallSched(t, model.PlatformA, workload.Uniform)
	for _, s := range res.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Fraction > s.Points[i-1].Fraction+0.35 {
				t.Errorf("%s fraction jumps up from %v to %v",
					s.Solution, s.Points[i-1].Fraction, s.Points[i].Fraction)
			}
		}
	}
}

func TestKnee(t *testing.T) {
	res := smallSched(t, model.PlatformA, workload.Uniform)
	for _, s := range res.Series {
		knee := res.Knee(s.Solution)
		if knee < 0.4 {
			t.Errorf("%s knee %v below the first (fully schedulable) point", s.Solution, knee)
		}
	}
	if res.Knee("no-such-solution") != 0 {
		t.Error("unknown solution should have zero knee")
	}
}

func TestTablesRender(t *testing.T) {
	res := smallSched(t, model.PlatformC, workload.BimodalLight)
	ft := res.FractionTable()
	if !strings.Contains(ft, "platform C") || !strings.Contains(ft, "bimodal-light") {
		t.Errorf("fraction table header missing metadata:\n%s", ft)
	}
	if !strings.Contains(ft, "Heuristic (flattening)") {
		t.Error("fraction table missing solution column")
	}
	rt := res.RuntimeTable()
	if len(strings.Split(rt, "\n")) < 4 {
		t.Error("runtime table too short")
	}
	sum := res.Summary()
	if !strings.Contains(sum, "knee") {
		t.Error("summary missing knee column")
	}
	if got := len(res.SolutionNames()); got != 5 {
		t.Errorf("SolutionNames returned %d names", got)
	}
}

func TestRunSchedulabilityDeterministic(t *testing.T) {
	cfg := SchedConfig{
		Platform: model.PlatformA, Dist: workload.Uniform,
		UtilMin: 0.8, UtilMax: 0.8, UtilStep: 1, TasksetsPerPoint: 5, Seed: 42,
	}
	a, err := RunSchedulability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSchedulability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		if a.Series[i].Points[0].Fraction != b.Series[i].Points[0].Fraction {
			t.Errorf("series %s fraction differs between identical runs", a.Series[i].Solution)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The parallel sweep must produce bit-identical fractions to the
	// serial one: RNG streams are split before the workers start.
	mk := func(parallel int) *SchedResult {
		res, err := RunSchedulability(SchedConfig{
			Platform: model.PlatformA, Dist: workload.Uniform,
			UtilMin: 0.6, UtilMax: 1.4, UtilStep: 0.4,
			TasksetsPerPoint: 6, Seed: 77, Parallel: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mk(1)
	parallel := mk(4)
	for si := range serial.Series {
		for pi := range serial.Series[si].Points {
			a := serial.Series[si].Points[pi].Fraction
			b := parallel.Series[si].Points[pi].Fraction
			if a != b {
				t.Fatalf("series %s point %d: serial %v != parallel %v",
					serial.Series[si].Solution, pi, a, b)
			}
		}
	}
}

func TestRunSchedulabilityCustomSolutions(t *testing.T) {
	res, err := RunSchedulability(SchedConfig{
		Platform: model.PlatformA, Dist: workload.Uniform,
		UtilMin: 0.5, UtilMax: 0.5, UtilStep: 1, TasksetsPerPoint: 3, Seed: 2,
		Solutions: []alloc.Allocator{&alloc.Heuristic{Mode: alloc.Flattening}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Errorf("got %d series, want 1", len(res.Series))
	}
}

func TestRunSchedulabilityProgress(t *testing.T) {
	calls := 0
	_, err := RunSchedulability(SchedConfig{
		Platform: model.PlatformA, Dist: workload.Uniform,
		UtilMin: 0.4, UtilMax: 0.8, UtilStep: 0.4, TasksetsPerPoint: 2, Seed: 3,
		Solutions: []alloc.Allocator{alloc.Baseline{}},
		Progress:  func(done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("progress called %d times, want 2", calls)
	}
}

func TestRunSchedulabilityInvalidPlatform(t *testing.T) {
	if _, err := RunSchedulability(SchedConfig{Platform: model.Platform{}}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestRunOverhead(t *testing.T) {
	res, err := RunOverhead(OverheadConfig{VCPUs: 24, HorizonMs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThrottleEvents == 0 {
		t.Error("overhead run produced no throttle events; Table 1 would be empty")
	}
	if res.BWReplenishments < 299 {
		t.Errorf("BW replenishments = %d, want ~300 (1 per ms)", res.BWReplenishments)
	}
	for name, s := range map[string]interface{ N() int }{
		"throttle":         &res.Throttle,
		"bw-replenish":     &res.BWReplenish,
		"budget-replenish": &res.BudgetReplenish,
		"scheduling":       &res.Scheduling,
		"context-switch":   &res.ContextSwitch,
	} {
		if s.N() == 0 {
			t.Errorf("no samples for %s", name)
		}
	}
	t1 := res.Table1()
	if !strings.Contains(t1, "Throttle") || !strings.Contains(t1, "replenish") {
		t.Errorf("Table1 malformed:\n%s", t1)
	}
	t2 := res.Table2Row()
	if !strings.Contains(t2, "24 VCPUs") || !strings.Contains(t2, "Context switching") {
		t.Errorf("Table2Row malformed:\n%s", t2)
	}
}

func TestRunOverheadRejectsZeroVCPUs(t *testing.T) {
	if _, err := RunOverhead(OverheadConfig{}); err == nil {
		t.Error("zero VCPUs accepted")
	}
}

func TestRunIsolation(t *testing.T) {
	res, err := RunIsolation(IsolationConfig{
		Benchmarks: []string{"swaptions", "streamcluster"},
		Ops:        20000,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SoloMs <= 0 || row.SharedMs < row.SoloMs {
			t.Errorf("%s: implausible times %+v", row.Benchmark, row)
		}
		if row.IsolatedMs >= row.SharedMs {
			t.Errorf("%s: isolation did not reduce the co-run WCET", row.Benchmark)
		}
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "streamcluster") || !strings.Contains(tbl, "vc2m-x") {
		t.Errorf("isolation table malformed:\n%s", tbl)
	}
}

func TestRunIsolationUnknownBenchmark(t *testing.T) {
	if _, err := RunIsolation(IsolationConfig{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
