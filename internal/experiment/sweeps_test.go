package experiment

import (
	"strings"
	"testing"
)

func TestRunPartitionSweep(t *testing.T) {
	res, err := RunPartitionSweep(PartitionSweepConfig{
		Partitions:       []int{8, 20, 40},
		Util:             1.2,
		TasksetsPerPoint: 6,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heuristic) != 3 || len(res.Evenly) != 3 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	// More partitions never hurt (statistically; the sweep shares seeds).
	if res.Heuristic[2] < res.Heuristic[0]-0.2 {
		t.Errorf("heuristic fraction dropped with 5x partitions: %v", res.Heuristic)
	}
	// The heuristic dominates the even split at every point.
	for i := range res.Partitions {
		if res.Heuristic[i] < res.Evenly[i]-1e-9 {
			t.Errorf("partitions=%d: heuristic %v below even split %v",
				res.Partitions[i], res.Heuristic[i], res.Evenly[i])
		}
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "heuristic") || !strings.Contains(tbl, "even-split") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestRunRegPeriodSweep(t *testing.T) {
	points, err := RunRegPeriodSweep(RegPeriodSweepConfig{
		PeriodsMs: []float64{0.5, 2},
		HorizonMs: 400,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	// Shorter period => proportionally more refills.
	if points[0].Replenishments <= points[1].Replenishments {
		t.Errorf("0.5ms period should refill more often than 2ms: %d vs %d",
			points[0].Replenishments, points[1].Replenishments)
	}
	ratio := float64(points[0].Replenishments) / float64(points[1].Replenishments)
	if ratio < 3 || ratio > 5 {
		t.Errorf("refill ratio = %v, want ~4 (period ratio)", ratio)
	}
	tbl := RegPeriodTable(points)
	if !strings.Contains(tbl, "period(ms)") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}
