package experiment

import (
	"strings"
	"testing"

	"vc2m/internal/model"
)

func TestRunVMCount(t *testing.T) {
	res, err := RunVMCount(VMCountConfig{
		Platform:         model.PlatformA,
		Util:             1.0,
		VMCounts:         []int{1, 4},
		TasksetsPerPoint: 8,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fractions) != 3 {
		t.Fatalf("got %d solutions, want 3", len(res.Fractions))
	}
	for name, fs := range res.Fractions {
		if len(fs) != 2 {
			t.Fatalf("%s: %d points, want 2", name, len(fs))
		}
		for _, f := range fs {
			if f < 0 || f > 1 {
				t.Errorf("%s: fraction %v out of range", name, f)
			}
		}
	}
}

func TestVMCountInvarianceOfOverheadFreeAnalyses(t *testing.T) {
	// The core claim: flattening and overhead-free schedulability do not
	// degrade with VM count, while the existing CSA's does.
	res, err := RunVMCount(VMCountConfig{
		Platform:         model.PlatformA,
		Util:             1.0,
		VMCounts:         []int{1, 8},
		TasksetsPerPoint: 10,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat := res.Fractions["Heuristic (flattening)"]
	if flat[1] < flat[0]-0.11 {
		t.Errorf("flattening degraded with VM count: %v -> %v", flat[0], flat[1])
	}
	ex := res.Fractions["Heuristic (existing CSA)"]
	if ex[1] >= ex[0] && ex[0] > 0 {
		// At utilization 1.0 with 8 VMs the existing CSA has ~32 VCPUs of
		// overhead; it must schedule strictly less than with 1 VM.
		t.Errorf("existing CSA did not degrade with VM count: %v -> %v", ex[0], ex[1])
	}
}

func TestVMCountTable(t *testing.T) {
	res, err := RunVMCount(VMCountConfig{
		Platform:         model.PlatformA,
		Util:             0.6,
		VMCounts:         []int{1, 2},
		TasksetsPerPoint: 4,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "existing CSA") || !strings.Contains(tbl, "VMs") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestRunVMCountValidation(t *testing.T) {
	if _, err := RunVMCount(VMCountConfig{Platform: model.Platform{}, Util: 1}); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := RunVMCount(VMCountConfig{Platform: model.PlatformA, Util: 0}); err == nil {
		t.Error("zero utilization accepted")
	}
}
