package experiment

import (
	"fmt"
	"strings"

	"vc2m/internal/alloc"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/workload"
)

// OnlineConfig parameterizes the online admission study: VMs arrive one at
// a time and each is either admitted onto the running allocation (no
// migration of placed VCPUs, partitions only grow) or rejected. The
// offline comparator applies the same greedy accept/skip policy but
// re-runs the full heuristic (with complete migration freedom) on every
// decision — isolating exactly what the online controller gives up by
// never moving placed VCPUs.
type OnlineConfig struct {
	// Platform for the study; zero value defaults to Platform A.
	Platform model.Platform
	// VMUtil is each arriving VM's reference utilization; zero defaults
	// to 0.35.
	VMUtil float64
	// Arrivals is the number of arriving VMs per trial; zero defaults
	// to 12.
	Arrivals int
	// Trials defaults to 10.
	Trials int
	// Seed makes the study reproducible.
	Seed int64
	// Parallel runs up to this many trials concurrently (0 or 1 = serial).
	// Results are identical for every worker count: each trial's RNG
	// stream is split off the root in trial order before the workers
	// start, every trial works on private state, and per-trial admission
	// counts are reduced in trial order.
	Parallel int
}

// OnlineResult summarizes the study.
type OnlineResult struct {
	Config OnlineConfig
	// OnlineAdmitted is the mean number of VMs admitted online.
	OnlineAdmitted float64
	// OfflineAdmitted is the mean number of VMs the greedy
	// re-allocation comparator places.
	OfflineAdmitted float64
}

// RunOnline executes the study. Each trial draws a stream of small VM
// workloads; the online controller admits greedily with alloc.Admit, the
// offline comparator finds the longest schedulable prefix by re-running
// the full heuristic.
func RunOnline(cfg OnlineConfig) (*OnlineResult, error) {
	if cfg.Platform.M == 0 {
		cfg.Platform = model.PlatformA
	}
	if cfg.VMUtil == 0 { //vc2m:floateq unset-config sentinel
		cfg.VMUtil = 0.35
	}
	if cfg.Arrivals == 0 {
		cfg.Arrivals = 12
	}
	if cfg.Trials == 0 {
		cfg.Trials = 10
	}

	// Each trial owns one RNG stream, split off the root in trial order.
	// (Trials used to interleave decision-dependent splits on one shared
	// root, which made the stream — and thus the workloads — depend on how
	// many admission decisions earlier trials took; per-trial streams make
	// every trial self-contained and order-independent.)
	root := rngutil.New(cfg.Seed)
	type trialResult struct {
		online, offline int
		err             error
	}
	rngs := make([]*rngutil.RNG, cfg.Trials)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	results := make([]trialResult, cfg.Trials)
	runIndexed(cfg.Trials, cfg.Parallel, func(trial int) {
		online, offline, err := runOnlineTrial(cfg, trial, rngs[trial])
		results[trial] = trialResult{online: online, offline: offline, err: err}
	})

	var onlineSum, offlineSum float64
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		onlineSum += float64(r.online)
		offlineSum += float64(r.offline)
	}
	return &OnlineResult{
		Config:          cfg,
		OnlineAdmitted:  onlineSum / float64(cfg.Trials),
		OfflineAdmitted: offlineSum / float64(cfg.Trials),
	}, nil
}

// runOnlineTrial draws one arrival stream and plays it through the online
// controller and the offline comparator. All state — the RNG stream, the
// heuristic, the working allocations — is private to the trial, so trials
// are safe to run concurrently and their outcomes do not depend on
// execution order.
func runOnlineTrial(cfg OnlineConfig, trial int, rng *rngutil.RNG) (online, offline int, err error) {
	stream := make([]*model.VM, cfg.Arrivals)
	for i := range stream {
		sys, err := workload.Generate(workload.Config{
			Platform:      cfg.Platform,
			TargetRefUtil: cfg.VMUtil,
			Dist:          workload.Uniform,
			NumVMs:        1,
		}, rng.Split())
		if err != nil {
			return 0, 0, err
		}
		vm := sys.VMs[0]
		vm.ID = fmt.Sprintf("trial%d-vm%d", trial, i)
		for _, t := range vm.Tasks {
			t.VM = vm.ID
			t.ID = vm.ID + "/" + t.ID
		}
		stream[i] = vm
	}

	// Online: start from the first VM's offline allocation, then admit
	// greedily.
	h := &alloc.Heuristic{Mode: alloc.Flattening}
	var current *model.Allocation
	for _, vm := range stream {
		if current == nil {
			sys := &model.System{Platform: cfg.Platform, VMs: []*model.VM{vm}}
			a, err := h.Allocate(sys, rng.Split())
			if err != nil {
				break
			}
			current = a
			online++
			continue
		}
		next, err := alloc.Admit(current, vm, alloc.Flattening, rng.Split())
		if err != nil {
			continue // rejected; later smaller VMs may still fit
		}
		current = next
		online++
	}

	// Offline comparator: same greedy accept/skip policy, but every
	// decision re-allocates all accepted VMs from scratch.
	var accepted []*model.VM
	for _, vm := range stream {
		cand := append(append([]*model.VM(nil), accepted...), vm)
		sys := &model.System{Platform: cfg.Platform, VMs: cand}
		if _, err := h.Allocate(sys, rng.Split()); err != nil {
			continue
		}
		accepted = cand
		offline++
	}
	return online, offline, nil
}

// Table renders the study.
func (r *OnlineResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "online admission vs offline re-allocation (platform %s, VM util %.2f, %d arrivals)\n",
		r.Config.Platform.Name, r.Config.VMUtil, r.Config.Arrivals)
	fmt.Fprintf(&b, "%-24s %6.2f VMs\n", "online (Admit)", r.OnlineAdmitted)
	fmt.Fprintf(&b, "%-24s %6.2f VMs\n", "offline (re-allocate)", r.OfflineAdmitted)
	if r.OfflineAdmitted > 0 {
		fmt.Fprintf(&b, "%-24s %6.1f%%\n", "online efficiency", 100*r.OnlineAdmitted/r.OfflineAdmitted)
	}
	return b.String()
}
