package experiment

import (
	"fmt"
	"strings"

	"vc2m/internal/csa"
	"vc2m/internal/hypersim"
	"vc2m/internal/model"
	"vc2m/internal/rngutil"
	"vc2m/internal/stats"
	"vc2m/internal/timeunit"
)

// OverheadConfig parameterizes the run-time overhead measurement of
// Section 3.3 (Tables 1 and 2).
type OverheadConfig struct {
	// VCPUs is the number of flattened VCPUs (the paper measures 24 and
	// 96).
	VCPUs int
	// Cores is the number of physical cores to spread them over; zero
	// defaults to 4.
	Cores int
	// HorizonMs is the simulated duration; zero defaults to 2000 ms.
	HorizonMs float64
	// RegulationPeriodMs is the BW regulation period; zero defaults to
	// the paper's 1 ms.
	RegulationPeriodMs float64
	// BWBudget is the per-core request budget per period; zero defaults
	// to 400 (low enough that memory-heavy tasks throttle regularly, so
	// the throttle path is exercised).
	BWBudget int64
	// Seed makes the workload reproducible.
	Seed int64
}

func (c OverheadConfig) withDefaults() OverheadConfig {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.HorizonMs == 0 { //vc2m:floateq unset-config sentinel
		c.HorizonMs = 2000
	}
	if c.RegulationPeriodMs == 0 { //vc2m:floateq unset-config sentinel
		c.RegulationPeriodMs = 1
	}
	if c.BWBudget == 0 {
		c.BWBudget = 400
	}
	return c
}

// OverheadResult holds the measured handler costs in microseconds of
// wall-clock time per invocation. The absolute values measure this
// simulator's handlers, not Xen's interrupt paths; the comparisons the
// paper draws (throttling is far cheaper than replenishment; scheduling
// cost grows slowly with the VCPU count) are the reproducible content.
type OverheadResult struct {
	Config OverheadConfig
	// Table 1 rows.
	Throttle    stats.Summary
	BWReplenish stats.Summary
	// Table 2 rows.
	BudgetReplenish stats.Summary
	Scheduling      stats.Summary
	ContextSwitch   stats.Summary
	// Activity counters for sanity checking.
	ThrottleEvents   uint64
	BWReplenishments uint64
	Misses           int
}

// RunOverhead builds a synthetic system of VCPUs flattened 1:1 from
// periodic tasks, spreads them across cores, and measures every handler
// invocation over the horizon.
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.VCPUs <= 0 {
		return nil, fmt.Errorf("experiment: VCPUs = %d, need > 0", cfg.VCPUs)
	}
	p := model.PlatformA
	if cfg.Cores > p.M {
		p.M = cfg.Cores
	}
	rng := rngutil.New(cfg.Seed)

	// Build per-core VCPU lists: harmonic periods, utilization sized so
	// each core lands near 80% busy.
	perCore := make([][]*model.VCPU, cfg.Cores)
	memRate := make(map[string]float64, cfg.VCPUs)
	for i := 0; i < cfg.VCPUs; i++ {
		core := i % cfg.Cores
		period := 10.0 * float64(int(1)<<uint(rng.Intn(3))) // 10/20/40 ms
		share := 0.8 / float64((cfg.VCPUs+cfg.Cores-1)/cfg.Cores)
		wcet := period * share
		task := model.SimpleTask(fmt.Sprintf("t%d", i), p, period, wcet)
		task.VM = fmt.Sprintf("vm%d", core)
		perCore[core] = append(perCore[core], csa.FlattenVCPU(task, i))
		// Memory-request rate: mix of light and heavy tasks so the
		// regulator throttles some cores in some periods.
		memRate[task.ID] = 100 + float64(rng.Intn(900))
	}

	allocCores := make([]*model.CoreAlloc, cfg.Cores)
	cachePer := p.C / cfg.Cores
	if cachePer < p.Cmin {
		cachePer = p.Cmin
	}
	bwPer := p.B / cfg.Cores
	if bwPer < p.Bmin {
		bwPer = p.Bmin
	}
	for c := range allocCores {
		allocCores[c] = &model.CoreAlloc{Core: c, Cache: cachePer, BW: bwPer, VCPUs: perCore[c]}
	}
	a := &model.Allocation{Platform: p, Cores: allocCores, Schedulable: true}

	budgets := make([]int64, cfg.Cores)
	for i := range budgets {
		budgets[i] = cfg.BWBudget
	}
	s, err := hypersim.New(a, hypersim.Config{
		RegulationPeriod: timeunit.FromMillis(cfg.RegulationPeriodMs),
		BWBudgets:        budgets,
		MemRate:          memRate,
		MeasureOverheads: true,
	})
	if err != nil {
		return nil, err
	}
	res := s.Run(timeunit.FromMillis(cfg.HorizonMs))
	return &OverheadResult{
		Config:           cfg,
		Throttle:         res.Overheads[hypersim.OvThrottle],
		BWReplenish:      res.Overheads[hypersim.OvBWReplenish],
		BudgetReplenish:  res.Overheads[hypersim.OvBudgetReplenish],
		Scheduling:       res.Overheads[hypersim.OvSchedule],
		ContextSwitch:    res.Overheads[hypersim.OvContextSwitch],
		ThrottleEvents:   res.ThrottleEvents,
		BWReplenishments: res.BWReplenishments,
		Misses:           res.Missed,
	}, nil
}

// Table1 renders the memory-bandwidth regulator's overhead in the layout
// of the paper's Table 1 (min | avg | max, microseconds).
func (r *OverheadResult) Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: Memory bandwidth regulator's overhead (us)\n")
	fmt.Fprintf(&b, "%-28s %s\n", "Throttle", r.Throttle.Row("%.3f"))
	fmt.Fprintf(&b, "%-28s %s\n", "Memory BW budget replenish.", r.BWReplenish.Row("%.3f"))
	return b.String()
}

// Table2Row renders one column group of the paper's Table 2 for this
// VCPU count.
func (r *OverheadResult) Table2Row() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d VCPUs (min | avg | max, us)\n", r.Config.VCPUs)
	fmt.Fprintf(&b, "  %-24s %s\n", "CPU budget replenish.", r.BudgetReplenish.Row("%.3f"))
	fmt.Fprintf(&b, "  %-24s %s\n", "Scheduling", r.Scheduling.Row("%.3f"))
	fmt.Fprintf(&b, "  %-24s %s\n", "Context switching", r.ContextSwitch.Row("%.3f"))
	return b.String()
}
